// Command rff runs the Reads-From Fuzzer (or one of the baseline
// concurrency testing strategies) on a benchmark program.
//
// Usage:
//
//	rff list                                   # list benchmark programs
//	rff tools [-q] [-json]                     # list registered strategy specs
//	rff run -prog CS/reorder_100 [-tools rff] [-budget 2000] [-seed 1] [-trials 1]
//	        [-workers N] [-shards N] [-shard-fast] [-trial-timeout DUR]
//	        [-v] [-minimize] [-races] [-out DIR]
//	        [-metrics out.json] [-events out.jsonl] [-progress 10s]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	rff explore -prog CS/account [-budget 100000]   # exhaustive enumeration
//	rff replay -artifact crashes/crash-000.json [-trace]
//	rff regress -corpus triage-corpus             # replay the regression corpus
//
// Strategies are named by parameterized specs resolved through the
// internal/strategy registry — `-tools pos,pct:7,rff` runs three tools
// in one invocation. See `rff tools` (or the README's tool-spec grammar
// table) for the registered specs: rff, rff:nofb, pos, pct:<depth>,
// random, qlearn[:key=value...], period[:<bound>], genmc.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"rff/internal/bench"
	budgetpkg "rff/internal/budget"
	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/fleet"
	"rff/internal/minimize"
	"rff/internal/perf"
	"rff/internal/progen"
	"rff/internal/race"
	"rff/internal/report"
	"rff/internal/sched"
	"rff/internal/shard"
	"rff/internal/strategy"
	"rff/internal/systematic"
	"rff/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "tools":
		cmdTools(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "explore":
		cmdExplore(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "regress":
		cmdRegress(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rff <list|tools|run|explore|replay|regress> [flags]")
	fmt.Fprintln(os.Stderr, "  rff list")
	fmt.Fprintln(os.Stderr, "  rff tools [-q] [-json]")
	fmt.Fprintln(os.Stderr, "  rff run -prog NAME [-tools SPEC[,SPEC...]] [-budget N] [-seed S] [-trials K] [-workers N] [-trial-timeout DUR] [-v] [-minimize] [-out DIR] [-metrics FILE] [-events FILE] [-progress DUR]")
	fmt.Fprintln(os.Stderr, "  rff explore -prog NAME [-budget N]")
	fmt.Fprintln(os.Stderr, "  rff replay -artifact FILE [-trace]")
	fmt.Fprintln(os.Stderr, "  rff regress -corpus DIR [-maxsteps N]")
	fmt.Fprintf(os.Stderr, "strategy specs: %s (see `rff tools`)\n", strings.Join(strategy.Names(), ", "))
}

func cmdList() {
	fmt.Printf("%-50s %-9s %-8s %s\n", "PROGRAM", "SUITE", "BUG", "THREADS")
	for _, p := range bench.All() {
		fmt.Printf("%-50s %-9s %-8s %d\n", p.Name, p.Suite, p.Bug, p.Threads)
	}
}

// cmdTools lists the strategy registry: every spec the -tools flag
// accepts, with its grammar and the canonical tool name it resolves to.
// -json emits the machine-readable listing — the same encoder the
// daemon's GET /v1/tools endpoint uses, so scripts parse one format.
func cmdTools(args []string) {
	fs := flag.NewFlagSet("tools", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print one registered spec name per line (for scripting)")
	asJSON := fs.Bool("json", false, "print the registry as JSON (same shape as rffd's GET /v1/tools)")
	fs.Parse(args)
	if *asJSON {
		if err := strategy.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rff: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *quiet {
		for _, e := range strategy.Entries() {
			fmt.Println(e.Name)
		}
		return
	}
	fmt.Printf("%-40s %-18s %s\n", "USAGE", "TOOL", "SUMMARY")
	for _, e := range strategy.Entries() {
		tl, err := strategy.Resolve(e.Name, strategy.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rff: resolving %q: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-40s %-18s %s\n", e.Usage, tl.Name(), e.Summary)
	}
}

// resolveProgram finds a benchmark by exact name, falling back to a
// unique suite-less suffix match so `-prog reorder_10` resolves to
// "CS/reorder_10".
func resolveProgram(name string) (bench.Program, bool) {
	if p, ok := bench.Get(name); ok {
		return p, true
	}
	var matches []bench.Program
	for _, p := range bench.All() {
		if strings.HasSuffix(p.Name, "/"+name) {
			matches = append(matches, p)
		}
	}
	if len(matches) == 1 {
		return matches[0], true
	}
	if len(matches) > 1 {
		fmt.Fprintf(os.Stderr, "rff: program %q is ambiguous:\n", name)
		for _, p := range matches {
			fmt.Fprintf(os.Stderr, "  %s\n", p.Name)
		}
	}
	return bench.Program{}, false
}

// telemetrySession wires the -metrics/-events/-progress flags into a
// Hub plus a teardown that flushes and persists everything.
type telemetrySession struct {
	hub      *telemetry.Hub
	reporter *telemetry.Reporter
	events   *os.File
	metrics  string
}

// startTelemetry builds the session; a session with no flags set has a
// nil hub and a no-op close.
func startTelemetry(metricsPath, eventsPath string, progress time.Duration) (*telemetrySession, error) {
	s := &telemetrySession{metrics: metricsPath}
	if metricsPath == "" && eventsPath == "" && progress <= 0 {
		return s, nil
	}
	s.hub = telemetry.NewHub()
	if metricsPath != "" {
		// Fail fast on an unwritable path rather than silently losing the
		// snapshot after the whole campaign has run.
		f, err := os.Create(metricsPath)
		if err != nil {
			return nil, fmt.Errorf("creating metrics file: %w", err)
		}
		f.Close()
	}
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, fmt.Errorf("creating events file: %w", err)
		}
		s.events = f
		s.hub.Events = telemetry.NewEventWriter(f)
	}
	s.reporter = telemetry.StartReporter(progress, func() {
		fmt.Fprintf(os.Stderr, "progress: %s\n", telemetry.ProgressLine(s.hub.Snapshot()))
		s.hub.Flush()
	})
	return s, nil
}

// sink returns the session's hub as a Sink, or nil when disabled.
func (s *telemetrySession) sink() telemetry.Sink {
	if s.hub == nil {
		return nil
	}
	return s.hub
}

// close emits the campaign-done event, flushes the event stream, and
// writes the metrics snapshot.
func (s *telemetrySession) close() {
	if s.hub == nil {
		return
	}
	s.reporter.Stop()
	snap := s.hub.Snapshot()
	s.hub.Emit(telemetry.EvCampaignDone, telemetry.Fields{
		"schedules": snap.Total(telemetry.MSchedulesExecuted),
		"crashes":   snap.Total(telemetry.MSchedulesCrashed),
	})
	s.hub.Flush()
	if s.events != nil {
		if err := s.hub.Events.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "rff: event stream: %v (%d events dropped)\n", err, s.hub.Events.Dropped())
		}
		s.events.Close()
	}
	if s.metrics != "" {
		data, err := snap.MarshalJSONIndent()
		if err == nil {
			err = os.WriteFile(s.metrics, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rff: writing metrics snapshot: %v\n", err)
		}
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	prog := fs.String("prog", "", "benchmark program name (see `rff list`)")
	toolsFlag := fs.String("tools", "", "comma-separated strategy specs to run (see `rff tools`; default rff)")
	tool := fs.String("tool", "", "single strategy spec (legacy synonym for -tools)")
	budget := fs.Int("budget", 2000, "schedule budget per trial")
	seed := fs.Int64("seed", 1, "base random seed")
	trials := fs.Int("trials", 1, "number of trials")
	maxSteps := fs.Int("maxsteps", 0, "per-execution step budget (0 = default)")
	verbose := fs.Bool("v", false, "print the failing schedule details (rff tool only)")
	doMin := fs.Bool("minimize", false, "delta-debug the failing schedule to minimal context switches (rff tool only)")
	outDir := fs.String("out", "", "directory to write crash artifacts to (rff tool only)")
	races := fs.Bool("races", false, "run the happens-before race detector over every execution (rff tool only)")
	workers := fs.Int("workers", 0, "run trials concurrently on this many fleet workers; per-trial results are identical at any count (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "shard each rff trial's fuzz loop across this many work-stealing workers; deterministic — results are identical at any shard count, though not to the unsharded loop (0 = unsharded)")
	shardFast := fs.Bool("shard-fast", false, "drop the sharded runner's deterministic epoch barrier: fastest throughput, nondeterministic results (requires -shards)")
	budgetPolicy := fs.String("budget-policy", "",
		fmt.Sprintf("adaptive budget policy reallocating the campaign's execution pool across (tool, trial) cells at epoch barriers (%s; empty = fixed per-trial budgets)", strings.Join(budgetpkg.Policies(), "|")))
	budgetEpochs := fs.Int("budget-epochs", budgetpkg.DefaultEpochs, "allocation epochs under -budget-policy")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-trial wall-clock deadline; a timed-out trial stops within one scheduling step and records an error (0 = none)")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot to this file at campaign end")
	eventsPath := fs.String("events", "", "stream campaign events to this file as JSON Lines")
	progress := fs.Duration("progress", 0, "print a progress line at this interval (e.g. 10s; 0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	fs.Parse(args)

	p, ok := resolveProgram(*prog)
	if !ok {
		fmt.Fprintf(os.Stderr, "rff: unknown program %q (see `rff list`)\n", *prog)
		os.Exit(1)
	}
	specText := *toolsFlag
	if specText == "" {
		specText = *tool
	}
	if specText == "" {
		specText = "rff"
	}
	specs, err := strategy.ParseSpecs(specText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	// Canonicalize up front so aliases warn exactly once and later
	// resolutions are warning-free.
	for i, s := range specs {
		if specs[i], err = strategy.Canonical(s); err != nil {
			fmt.Fprintf(os.Stderr, "rff: %v\n", err)
			os.Exit(1)
		}
	}
	stopCPU, err := perf.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		stopCPU()
		if err := perf.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		}
	}()
	ts, err := startTelemetry(*metricsPath, *eventsPath, *progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	defer ts.close()
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "rff: -shards must be >= 0")
		os.Exit(1)
	}
	if *shardFast && *shards < 1 {
		fmt.Fprintln(os.Stderr, "rff: -shard-fast requires -shards >= 1")
		os.Exit(1)
	}
	tools, err := strategy.ResolveAll(specs, strategy.Config{Telemetry: ts.sink(), Shards: *shards, ShardFast: *shardFast})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, len(tools))
	for i, tl := range tools {
		names[i] = tl.Name()
	}
	if s := ts.sink(); s != nil {
		s.Emit(telemetry.EvCampaignStart, telemetry.Fields{
			"program": p.Name, "tools": strings.Join(names, ","), "budget": *budget, "trials": *trials,
		})
	}
	// Interrupts cancel in-flight trials gracefully: every strategy
	// observes ctx within one scheduling step, so ^C still reaches the
	// deferred telemetry flush with whatever completed so far.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *budgetPolicy != "" {
		runBudgeted(ctx, p, specs, ts, budgetedRunFlags{
			policy: *budgetPolicy, epochs: *budgetEpochs,
			trials: *trials, budget: *budget, maxSteps: *maxSteps,
			seed: *seed, workers: *workers, trialTimeout: *trialTimeout,
			shards:       *shards,
			wantsVerbose: *verbose || *doMin || *outDir != "" || *races,
		})
		return
	}

	canon, _ := strategy.Canonical(specs[0])
	if (*verbose || *doMin || *outDir != "" || *races) && len(tools) == 1 && canon == "rff" {
		tl := tools[0]
		raceKeys := make(map[string]struct{})
		opts := core.Options{
			// Derive the same seed the trial loop gives trial 0, so the
			// verbose path reproduces trial 1 of a plain run.
			Budget: *budget, Seed: campaign.TrialSeed(*seed, tl.Name(), p.Name, 0),
			MaxSteps: *maxSteps, StopAtFirstBug: true,
			Telemetry: ts.sink(),
		}
		if *races {
			if *shards >= 1 {
				// The sharded runner recycles traces on its shards before the
				// barrier, so there is nothing for a TraceObserver to see.
				fmt.Fprintln(os.Stderr, "rff: -races is incompatible with -shards; run the race detector unsharded")
				os.Exit(1)
			}
			opts.TraceObserver = func(t *exec.Trace) {
				for _, k := range race.DistinctKeys(race.Detect(t)) {
					raceKeys[k] = struct{}{}
				}
			}
		}
		var rep *core.Report
		if *shards >= 1 {
			rep = shard.FuzzContext(ctx, p.Name, p.Body, shard.Options{
				Budget: opts.Budget, Seed: opts.Seed, MaxSteps: opts.MaxSteps,
				StopAtFirstBug: true, Telemetry: ts.sink(),
				Shards: *shards, Fast: *shardFast,
			})
		} else {
			rep = core.NewFuzzer(p.Name, p.Body, opts).RunContext(ctx)
		}
		if *races {
			defer func() {
				keys := make([]string, 0, len(raceKeys))
				for k := range raceKeys {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				fmt.Printf("  data races (happens-before, %d distinct):\n", len(keys))
				for _, k := range keys {
					fmt.Printf("    %s\n", k)
				}
			}()
		}
		if !rep.FoundBug() {
			fmt.Printf("%s: no bug in %d schedules (%d rf pairs, %d combos, corpus %d)\n",
				p.Name, rep.Executions, rep.UniquePairs, rep.UniqueSigs, rep.CorpusSize)
			return
		}
		f := rep.Failures[0]
		fmt.Printf("%s: bug at schedule %d\n", p.Name, rep.FirstBug)
		fmt.Printf("  failure:  %v\n", f.Failure)
		fmt.Printf("  abstract: %v\n", f.Schedule)
		fmt.Printf("  seed:     %d\n", f.Seed)
		if *doMin {
			res := minimize.Minimize(p.Name, p.Body, f.Decisions, f.Failure, minimize.Options{MaxSteps: *maxSteps})
			if res == nil {
				fmt.Println("  minimize: original schedule did not reproduce")
				return
			}
			fmt.Printf("  minimize: %d -> %d context switches (%d preemptions) in %d probes\n",
				res.OriginalSwitches, res.MinimalSwitches, res.Preemptions, res.Probes)
			for _, sw := range res.Switches {
				fmt.Printf("    after t%d's event %d -> run t%d\n", sw.After, sw.Count, sw.Thread)
			}
		}
		if *outDir != "" {
			paths, err := core.SaveFailures(*outDir, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rff: saving artifacts: %v\n", err)
				os.Exit(1)
			}
			for _, path := range paths {
				fmt.Printf("  artifact: %s\n", path)
			}
		}
		return
	}

	// Trials are independent cells: each draws its seed from the cell
	// identity (campaign.TrialSeed), so a fleet pool runs them
	// concurrently with per-trial results identical at any -workers
	// count (only completion timing differs; output stays in (tool,
	// trial) order via the deterministic merge).
	type cellKey struct {
		tool  campaign.Tool
		trial int
	}
	var (
		cells []fleet.Cell[campaign.Outcome]
		keys  []cellKey
	)
	for _, tl := range tools {
		tl := tl
		nTrials := *trials
		if tl.Deterministic() {
			nTrials = 1
		}
		for tr := 0; tr < nTrials; tr++ {
			tr := tr
			cells = append(cells, fleet.Cell[campaign.Outcome]{
				ID:   fmt.Sprintf("%s/%s[%d]", tl.Name(), p.Name, tr),
				Spec: tl.Name(),
				Run: func(ctx context.Context, sc *fleet.Scratch) (campaign.Outcome, error) {
					out := tl.Run(ctx, p, *budget, *maxSteps, campaign.TrialSeed(*seed, tl.Name(), p.Name, tr))
					if s := ts.sink(); s != nil && !out.Errored() {
						s.Emit(telemetry.EvTrialDone, telemetry.Fields{
							"tool": tl.Name(), "program": p.Name, "trial": tr,
							"executions": out.Executions, "first_bug": out.FirstBug,
							"worker": sc.Worker,
						})
					}
					return out, nil
				},
			})
			keys = append(keys, cellKey{tool: tl, trial: tr})
		}
	}
	results := fleet.Run(ctx, cells, fleet.Options{
		Workers:     *workers,
		CellTimeout: *trialTimeout,
		Telemetry:   ts.sink(),
	})
	var (
		curName string
		found   int
		ran     int
	)
	summary := func() {
		if curName != "" {
			fmt.Printf("%s on %s: %d/%d trials found the bug\n", curName, p.Name, found, ran)
		}
	}
	for i, r := range results {
		k := keys[i]
		tl, out := k.tool, r.Value
		if tl.Name() != curName {
			summary()
			curName, found, ran = tl.Name(), 0, 0
		}
		ran++
		if s := ts.sink(); s != nil {
			s.Add(telemetry.MTrialsDone, 1, telemetry.L("tool", tl.Name()), telemetry.L("program", p.Name))
		}
		errMsg := ""
		switch {
		case r.Err != nil:
			errMsg = r.Err.Error()
			if s := ts.sink(); s != nil {
				s.Add(telemetry.MTrialPanics, 1, telemetry.L("tool", tl.Name()), telemetry.L("program", p.Name))
				s.Emit(telemetry.EvTrialError, telemetry.Fields{
					"tool": tl.Name(), "program": p.Name, "trial": k.trial,
					"error": errMsg, "stack": r.Stack,
				})
			}
		case out.Errored():
			// In-tool abort (per-trial deadline or ^C observed mid-run).
			errMsg = out.Err
		}
		switch {
		case errMsg != "":
			fmt.Printf("trial %d: %s aborted: %s\n", k.trial+1, tl.Name(), errMsg)
		case out.Found():
			found++
			fmt.Printf("trial %d: %s found the bug after %d schedules\n", k.trial+1, tl.Name(), out.FirstBug)
		default:
			fmt.Printf("trial %d: %s found no bug in %d schedules\n", k.trial+1, tl.Name(), out.Executions)
		}
	}
	summary()
}

// budgetedRunFlags carries the `rff run` flags the adaptive-budget
// path consumes.
type budgetedRunFlags struct {
	policy       string
	epochs       int
	trials       int
	budget       int
	maxSteps     int
	seed         int64
	workers      int
	trialTimeout time.Duration
	shards       int
	wantsVerbose bool
}

// runBudgeted executes `rff run -budget-policy`: the program's (tool,
// trial) cells share one execution pool of budget x trials per tool,
// reallocated every epoch by the policy. Prints per-trial outcomes in
// deterministic (tool, trial) order plus the allocation accounting.
func runBudgeted(ctx context.Context, p bench.Program, specs []string, ts *telemetrySession, f budgetedRunFlags) {
	bcfg := &budgetpkg.Config{Policy: f.policy, Epochs: f.epochs}
	if err := bcfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	if f.shards >= 1 {
		fmt.Fprintln(os.Stderr, "rff: -budget-policy is incompatible with -shards (the shard runner's observer sees only failures)")
		os.Exit(1)
	}
	if f.wantsVerbose {
		fmt.Fprintln(os.Stderr, "rff: -budget-policy is incompatible with -v/-minimize/-out/-races")
		os.Exit(1)
	}
	m, err := strategy.RunMatrix(ctx, specs, []bench.Program{p}, strategy.Config{
		Telemetry:    ts.sink(),
		Trials:       f.trials,
		Budget:       f.budget,
		MaxSteps:     f.maxSteps,
		BaseSeed:     f.seed,
		Workers:      f.workers,
		TrialTimeout: f.trialTimeout,
		Budgeter:     bcfg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	for _, toolName := range m.Tools {
		outs := m.Outcomes[toolName][p.Name]
		found := 0
		for tr, o := range outs {
			switch {
			case o.Errored():
				fmt.Printf("trial %d: %s aborted: %s\n", tr+1, toolName, o.Err)
			case o.Found():
				found++
				fmt.Printf("trial %d: %s found the bug after %d schedules\n", tr+1, toolName, o.FirstBug)
			default:
				fmt.Printf("trial %d: %s found no bug in %d schedules\n", tr+1, toolName, o.Executions)
			}
		}
		fmt.Printf("%s on %s: %d/%d trials found the bug\n", toolName, p.Name, found, len(outs))
	}
	br := m.BudgetReport
	fmt.Printf("budget policy %s: %d epochs, %d/%d executions spent, %d reallocations\n",
		br.Policy, br.Epochs, br.Spent, br.Pool, br.Reallocations)
	for _, c := range br.Cells {
		status := ""
		if c.Bug {
			status = fmt.Sprintf(", first bug at global execution %d", c.FirstBug)
		}
		fmt.Printf("  %s: spent %d of %d allocated (%.1f%% share, %d new rf-pairs%s)\n",
			c.Tool, c.Spent, c.Allocated, c.SharePct, c.NewPairs, status)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	artifact := fs.String("artifact", "", "crash artifact JSON (from `rff run -out`)")
	showTrace := fs.Bool("trace", false, "dump the replayed event trace")
	fs.Parse(args)
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "rff replay: -artifact is required")
		os.Exit(2)
	}
	os.Exit(runReplay(*artifact, *showTrace, os.Stdout, os.Stderr))
}

// runReplay is cmdReplay's testable core: it loads an artifact, replays
// its decision sequence, and returns the process exit code. Every
// failure mode — unreadable file, malformed or truncated JSON, unknown
// program, non-reproducing schedule — yields a readable message on
// stderr and a non-zero code, never a panic or a silent success.
func runReplay(artifactPath string, showTrace bool, stdout, stderr io.Writer) int {
	a, err := core.LoadArtifact(artifactPath)
	if err != nil {
		fmt.Fprintf(stderr, "rff: %v\n", err)
		return 1
	}
	p, ok := bench.Get(a.Program)
	if !ok {
		// Generated programs ("gen/s<seed>/<index>") are not in the bench
		// registry; regenerate them from the name instead.
		if gp, gok := progen.FromName(a.Program); gok {
			p, ok = gp.Bench(), true
		}
	}
	if !ok {
		fmt.Fprintf(stderr, "rff: artifact references unknown program %q\n", a.Program)
		return 1
	}
	res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewReplay(a.ThreadOrder())})
	if res.Failure == nil {
		fmt.Fprintf(stdout, "%s: replay did NOT reproduce (expected %s: %s)\n", a.Program, a.FailureKind, a.FailureMsg)
		return 1
	}
	fmt.Fprintf(stdout, "%s: reproduced %v\n", a.Program, res.Failure)
	if showTrace {
		fmt.Fprint(stdout, report.Timeline(res.Trace))
	}
	return 0
}

func cmdExplore(args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	prog := fs.String("prog", "", "benchmark program name")
	budget := fs.Int("budget", 100000, "max schedules to enumerate")
	fs.Parse(args)
	p, ok := resolveProgram(*prog)
	if !ok {
		fmt.Fprintf(os.Stderr, "rff: unknown program %q\n", *prog)
		os.Exit(1)
	}
	rep := systematic.Explore(p.Name, p.Body, systematic.ExploreOptions{MaxExecutions: *budget})
	status := "INCOMPLETE (budget exhausted)"
	if rep.Complete {
		status = "complete"
	}
	fmt.Printf("%s: %d schedules enumerated (%s), %d reads-from classes\n",
		p.Name, rep.Executions, status, rep.Classes)
	if rep.FirstBug > 0 {
		fmt.Printf("first bug at schedule %d: %v\n", rep.FirstBug, rep.FirstFailure)
	} else {
		fmt.Println("no bug found")
	}
}
