// Command rff runs the Reads-From Fuzzer (or one of the baseline
// concurrency testing tools) on a benchmark program.
//
// Usage:
//
//	rff list                                   # list benchmark programs
//	rff run -prog CS/reorder_100 [-tool rff] [-budget 2000] [-seed 1] [-trials 1]
//	        [-v] [-minimize] [-races] [-out DIR]
//	rff explore -prog CS/account [-budget 100000]   # exhaustive enumeration
//	rff replay -artifact crashes/crash-000.json [-trace]
//
// Tools: rff, rff-nofb, pos, pct3, random, qlearn, period, genmc.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/minimize"
	"rff/internal/race"
	"rff/internal/report"
	"rff/internal/sched"
	"rff/internal/systematic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "run":
		cmdRun(os.Args[2:])
	case "explore":
		cmdExplore(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rff <list|run|explore|replay> [flags]")
	fmt.Fprintln(os.Stderr, "  rff list")
	fmt.Fprintln(os.Stderr, "  rff run -prog NAME [-tool rff|rff-nofb|pos|pct3|random|qlearn|period|genmc] [-budget N] [-seed S] [-trials K] [-v] [-minimize] [-out DIR]")
	fmt.Fprintln(os.Stderr, "  rff explore -prog NAME [-budget N]")
	fmt.Fprintln(os.Stderr, "  rff replay -artifact FILE [-trace]")
}

func cmdList() {
	fmt.Printf("%-50s %-9s %-8s %s\n", "PROGRAM", "SUITE", "BUG", "THREADS")
	for _, p := range bench.All() {
		fmt.Printf("%-50s %-9s %-8s %d\n", p.Name, p.Suite, p.Bug, p.Threads)
	}
}

func toolByName(name string) (campaign.Tool, bool) {
	switch name {
	case "rff":
		return campaign.RFFTool{}, true
	case "rff-nofb":
		return campaign.RFFTool{NoFeedback: true}, true
	case "pos":
		return campaign.NewPOSTool(), true
	case "pct3":
		return campaign.NewPCTTool(3), true
	case "random":
		return campaign.NewRandomTool(), true
	case "qlearn":
		return campaign.NewQLearnTool(), true
	case "period":
		return campaign.PeriodTool{}, true
	case "genmc":
		return campaign.GenMCTool{}, true
	}
	return nil, false
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	prog := fs.String("prog", "", "benchmark program name (see `rff list`)")
	tool := fs.String("tool", "rff", "testing tool")
	budget := fs.Int("budget", 2000, "schedule budget per trial")
	seed := fs.Int64("seed", 1, "base random seed")
	trials := fs.Int("trials", 1, "number of trials")
	maxSteps := fs.Int("maxsteps", 0, "per-execution step budget (0 = default)")
	verbose := fs.Bool("v", false, "print the failing schedule details (rff tool only)")
	doMin := fs.Bool("minimize", false, "delta-debug the failing schedule to minimal context switches (rff tool only)")
	outDir := fs.String("out", "", "directory to write crash artifacts to (rff tool only)")
	races := fs.Bool("races", false, "run the happens-before race detector over every execution (rff tool only)")
	fs.Parse(args)

	p, ok := bench.Get(*prog)
	if !ok {
		fmt.Fprintf(os.Stderr, "rff: unknown program %q (see `rff list`)\n", *prog)
		os.Exit(1)
	}
	tl, ok := toolByName(*tool)
	if !ok {
		fmt.Fprintf(os.Stderr, "rff: unknown tool %q\n", *tool)
		os.Exit(1)
	}

	if (*verbose || *doMin || *outDir != "" || *races) && *tool == "rff" {
		raceKeys := make(map[string]struct{})
		opts := core.Options{
			Budget: *budget, Seed: *seed, MaxSteps: *maxSteps, StopAtFirstBug: true,
		}
		if *races {
			opts.TraceObserver = func(t *exec.Trace) {
				for _, k := range race.DistinctKeys(race.Detect(t)) {
					raceKeys[k] = struct{}{}
				}
			}
		}
		rep := core.NewFuzzer(p.Name, p.Body, opts).Run()
		if *races {
			defer func() {
				keys := make([]string, 0, len(raceKeys))
				for k := range raceKeys {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				fmt.Printf("  data races (happens-before, %d distinct):\n", len(keys))
				for _, k := range keys {
					fmt.Printf("    %s\n", k)
				}
			}()
		}
		if !rep.FoundBug() {
			fmt.Printf("%s: no bug in %d schedules (%d rf pairs, %d combos, corpus %d)\n",
				p.Name, rep.Executions, rep.UniquePairs, rep.UniqueSigs, rep.CorpusSize)
			return
		}
		f := rep.Failures[0]
		fmt.Printf("%s: bug at schedule %d\n", p.Name, rep.FirstBug)
		fmt.Printf("  failure:  %v\n", f.Failure)
		fmt.Printf("  abstract: %v\n", f.Schedule)
		fmt.Printf("  seed:     %d\n", f.Seed)
		if *doMin {
			res := minimize.Minimize(p.Name, p.Body, f.Decisions, f.Failure, minimize.Options{MaxSteps: *maxSteps})
			if res == nil {
				fmt.Println("  minimize: original schedule did not reproduce")
				return
			}
			fmt.Printf("  minimize: %d -> %d context switches (%d preemptions) in %d probes\n",
				res.OriginalSwitches, res.MinimalSwitches, res.Preemptions, res.Probes)
			for _, sw := range res.Switches {
				fmt.Printf("    after t%d's event %d -> run t%d\n", sw.After, sw.Count, sw.Thread)
			}
		}
		if *outDir != "" {
			paths, err := core.SaveFailures(*outDir, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rff: saving artifacts: %v\n", err)
				os.Exit(1)
			}
			for _, path := range paths {
				fmt.Printf("  artifact: %s\n", path)
			}
		}
		return
	}

	found := 0
	for tr := 0; tr < *trials; tr++ {
		out := tl.Run(p, *budget, *maxSteps, *seed+int64(tr)*7919)
		if out.Found() {
			found++
			fmt.Printf("trial %d: %s found the bug after %d schedules\n", tr+1, tl.Name(), out.FirstBug)
		} else {
			fmt.Printf("trial %d: %s found no bug in %d schedules\n", tr+1, tl.Name(), out.Executions)
		}
		if tl.Deterministic() {
			break
		}
	}
	fmt.Printf("%s on %s: %d/%d trials found the bug\n", tl.Name(), p.Name, found, *trials)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	artifact := fs.String("artifact", "", "crash artifact JSON (from `rff run -out`)")
	showTrace := fs.Bool("trace", false, "dump the replayed event trace")
	fs.Parse(args)
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "rff replay: -artifact is required")
		os.Exit(2)
	}
	a, err := core.LoadArtifact(*artifact)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rff: %v\n", err)
		os.Exit(1)
	}
	p, ok := bench.Get(a.Program)
	if !ok {
		fmt.Fprintf(os.Stderr, "rff: artifact references unknown program %q\n", a.Program)
		os.Exit(1)
	}
	res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewReplay(a.ThreadOrder())})
	if res.Failure == nil {
		fmt.Printf("%s: replay did NOT reproduce (expected %s: %s)\n", a.Program, a.FailureKind, a.FailureMsg)
		os.Exit(1)
	}
	fmt.Printf("%s: reproduced %v\n", a.Program, res.Failure)
	if *showTrace {
		fmt.Print(report.Timeline(res.Trace))
	}
}

func cmdExplore(args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	prog := fs.String("prog", "", "benchmark program name")
	budget := fs.Int("budget", 100000, "max schedules to enumerate")
	fs.Parse(args)
	p, ok := bench.Get(*prog)
	if !ok {
		fmt.Fprintf(os.Stderr, "rff: unknown program %q\n", *prog)
		os.Exit(1)
	}
	rep := systematic.Explore(p.Name, p.Body, systematic.ExploreOptions{MaxExecutions: *budget})
	status := "INCOMPLETE (budget exhausted)"
	if rep.Complete {
		status = "complete"
	}
	fmt.Printf("%s: %d schedules enumerated (%s), %d reads-from classes\n",
		p.Name, rep.Executions, status, rep.Classes)
	if rep.FirstBug > 0 {
		fmt.Printf("first bug at schedule %d: %v\n", rep.FirstBug, rep.FirstFailure)
	} else {
		fmt.Println("no bug found")
	}
}
