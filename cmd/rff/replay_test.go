package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
)

// saveCrash fuzzes a known-buggy program to its first failure and
// writes the crash artifact, returning its path.
func saveCrash(t *testing.T) string {
	t.Helper()
	p := bench.MustGet("CS/reorder_5")
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget: 1000, Seed: 21, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		t.Fatal("no failure to serialize")
	}
	paths, err := core.SaveFailures(t.TempDir(), rep)
	if err != nil {
		t.Fatal(err)
	}
	return paths[0]
}

// replayOut runs the replay core and captures its streams.
func replayOut(path string) (code int, stdout, stderr string) {
	var out, errb strings.Builder
	code = runReplay(path, false, &out, &errb)
	return code, out.String(), errb.String()
}

func TestReplayReproduces(t *testing.T) {
	code, stdout, stderr := replayOut(saveCrash(t))
	if code != 0 {
		t.Fatalf("replay exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "reproduced") {
		t.Fatalf("replay output missing confirmation: %q", stdout)
	}
}

// TestReplayCorruptArtifacts: damaged crash files produce a readable
// error and a failing exit code — not a panic, not a silent success.
func TestReplayCorruptArtifacts(t *testing.T) {
	good, err := os.ReadFile(saveCrash(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"truncated", good[:len(good)/2], "malformed artifact JSON"},
		{"empty", nil, "malformed artifact JSON"},
		{"not-json", []byte("schedule garbage\n"), "malformed artifact JSON"},
		{"no-decisions", []byte(`{"program": "CS/reorder_5", "failure_kind": "assertion failure", "decisions": []}`), "invalid artifact"},
		{"bad-thread-id", []byte(`{"program": "CS/reorder_5", "failure_kind": "assertion failure", "decisions": [0]}`), "invalid artifact"},
		{"unknown-program", []byte(`{"program": "no/such_prog", "failure_kind": "assertion failure", "decisions": [1]}`), "unknown program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			code, stdout, stderr := replayOut(path)
			if code == 0 {
				t.Fatalf("corrupt artifact replayed successfully: %q", stdout)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.wantErr)
			}
		})
	}
	t.Run("missing-file", func(t *testing.T) {
		code, _, stderr := replayOut(filepath.Join(dir, "does-not-exist.json"))
		if code == 0 || !strings.Contains(stderr, "no such file") {
			t.Fatalf("missing file: code %d, stderr %q", code, stderr)
		}
	})
}
