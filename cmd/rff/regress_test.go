package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/triage"
)

// buildCorpus triages one real crash into a regression corpus directory.
func buildCorpus(t *testing.T) string {
	t.Helper()
	p := bench.MustGet("CS/reorder_5")
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget: 1000, Seed: 21, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		t.Fatal("no failure to triage")
	}
	paths, err := core.SaveFailures(t.TempDir(), rep)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.LoadArtifact(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	tr := triage.New(triage.Config{Budget: 64})
	if _, err := tr.Add(a, "rff"); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := triage.SaveCorpus(tr, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRegressCleanCorpus(t *testing.T) {
	dir := buildCorpus(t)
	var out, errb strings.Builder
	if code := runRegress(dir, 0, &out, &errb); code != 0 {
		t.Fatalf("regress exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "1/1 cluster(s) reproduced") {
		t.Fatalf("regress output missing summary: %q", out.String())
	}
}

// TestRegressFlagsNonReproducingEntry: a corpus whose recorded failure
// no longer matches the replay must fail loudly with the cluster named.
func TestRegressFlagsNonReproducingEntry(t *testing.T) {
	dir := buildCorpus(t)
	data, err := os.ReadFile(filepath.Join(dir, "corpus.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	clusters := f["clusters"].([]any)
	c := clusters[0].(map[string]any)
	id := c["id"].(string)
	// Rewrite the canonical artifact's recorded failure kind so the
	// replay (which still reproduces the original assertion) mismatches.
	artPath := filepath.Join(dir, "artifacts", id+".json")
	a, err := core.LoadArtifact(artPath)
	if err != nil {
		t.Fatal(err)
	}
	a.FailureKind = "deadlock"
	enc, err := core.EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artPath, enc, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := runRegress(dir, 0, &out, &errb); code == 0 {
		t.Fatalf("regress passed on a tampered corpus: %s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL "+id) {
		t.Fatalf("regress output does not name the failing cluster: %q", out.String())
	}
}

func TestRegressMissingCorpus(t *testing.T) {
	var out, errb strings.Builder
	if code := runRegress(filepath.Join(t.TempDir(), "nope"), 0, &out, &errb); code == 0 {
		t.Fatal("regress passed with no corpus present")
	}
	if errb.Len() == 0 {
		t.Fatal("regress reported no error for a missing corpus")
	}
}
