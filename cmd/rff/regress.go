package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rff/internal/triage"
)

func cmdRegress(args []string) {
	fs := flag.NewFlagSet("regress", flag.ExitOnError)
	corpus := fs.String("corpus", "", "regression corpus directory (from `rffbench triage` or rffd -triage)")
	maxSteps := fs.Int("maxsteps", 0, "per-replay step budget (0 = engine default)")
	fs.Parse(args)
	if *corpus == "" {
		fmt.Fprintln(os.Stderr, "rff regress: -corpus is required")
		os.Exit(2)
	}
	os.Exit(runRegress(*corpus, *maxSteps, os.Stdout, os.Stderr))
}

// runRegress is cmdRegress's testable core: it replays every cluster's
// canonical minimal artifact from the corpus and returns the process
// exit code — 0 only when every cluster still reproduces its recorded
// failure, so CI can gate on regressions escaping the corpus.
func runRegress(dir string, maxSteps int, stdout, stderr io.Writer) int {
	failures, total, err := triage.Regress(dir, maxSteps)
	if err != nil {
		fmt.Fprintf(stderr, "rff: %v\n", err)
		return 1
	}
	for _, f := range failures {
		fmt.Fprintf(stdout, "FAIL %s: %s\n", f.ClusterID, f.Reason)
	}
	if len(failures) > 0 {
		fmt.Fprintf(stdout, "regress: %d/%d cluster(s) no longer reproduce\n", len(failures), total)
		return 1
	}
	fmt.Fprintf(stdout, "regress: %d/%d cluster(s) reproduced\n", total, total)
	return 0
}
