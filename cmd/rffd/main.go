// Command rffd is the campaign service daemon: an HTTP/JSON API that
// queues fuzzing campaigns, runs them through the strategy registry on
// the fleet pool, streams live telemetry over SSE, and serves results
// from a content-addressed store (identical re-submissions are cache
// hits). See DESIGN.md §12 and the README's "Running rffd".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rff/internal/service"
	"rff/internal/store"
	"rff/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rffd:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("rffd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7717", "listen address")
	dataDir := fs.String("data", "rffd-data", "data directory (artifact store, index, persisted queue)")
	maxJobs := fs.Int("max-jobs", 0, "max concurrently running campaigns (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue-cap", 64, "max queued-but-not-running jobs before 503")
	jobDeadline := fs.Duration("job-deadline", 0, "per-job wall-clock deadline (0 = none)")
	shards := fs.Int("shards", 0, "default worker-shard count for RFF trials of submissions that leave shards unset; part of the cache key (0 = unsharded)")
	drainWait := fs.Duration("drain-wait", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	eventLog := fs.String("event-log", "", "append daemon events (request log) as JSONL to this file (default stderr)")
	triageOn := fs.Bool("triage", false, "triage every completed job's artifacts into a regression corpus under <data>/triage and serve /v1/clusters")
	triageBudget := fs.Int("triage-budget", 0, "minimization probe budget per triaged artifact (0 = triage default)")
	fs.Parse(argv)

	logger := log.New(os.Stderr, "rffd: ", log.LstdFlags)

	st, err := store.Open(*dataDir)
	if err != nil {
		return err
	}

	// The daemon-level hub carries operational metrics and the
	// structured request log; per-job campaign telemetry has its own
	// stream (GET /v1/jobs/{id}/events).
	hub := telemetry.NewHub()
	logDest := os.Stderr
	if *eventLog != "" {
		f, err := os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		logDest = f
	}
	hub.Events = telemetry.NewEventWriter(logDest)
	defer hub.Events.Flush()

	opts := service.Options{
		Store:         st,
		MaxJobs:       *maxJobs,
		QueueCap:      *queueCap,
		JobDeadline:   *jobDeadline,
		Telemetry:     hub,
		DefaultShards: *shards,
		TriageBudget:  *triageBudget,
		Logf:          logger.Printf,
	}
	if *triageOn {
		opts.TriageDir = filepath.Join(*dataDir, "triage")
	}
	srv, err := service.New(opts)
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Printf("listening on http://%s (data dir %s)", ln.Addr(), *dataDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Printf("shutting down: draining jobs (up to %s)", *drainWait)

	// Stop accepting connections first, then drain the scheduler:
	// running jobs get drainWait to finish; stragglers are cancelled
	// and requeued, and the untouched queue persists for the next run.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Printf("drained cleanly")
	return nil
}
