// Command rffbench regenerates the paper's evaluation artifacts:
//
//	rffbench table-b  [-trials 5] [-budget 2000]      # Appendix B table (E2)
//	rffbench fig4     [-trials 5] [-budget 2000]      # Figure 4 curves (E1)
//	rffbench fig5     [-n 10000] [-prog SafeStack]    # Figure 5 histograms (E3, E6)
//	rffbench rq1      [-trials 5] [-budget 2000]      # bugs-found comparison + Mann-Whitney
//	rffbench rq2      [-trials 5] [-budget 2000]      # RFF vs POS ablation + log-rank wins
//	rffbench rq4      [-trials 5] [-budget 2000]      # Q-Learning-RF comparison
//	rffbench classes  -prog CS/reorder_3 [-budget N]  # E8 rf-class reduction
//	rffbench conformance [-programs 50] [-seed 1] [-tools ...]  # differential conformance
//	rffbench sched-eval  [-programs 12] [-seeds 1,2,3] [-policies uniform,ucb,...]  # adaptive budget policy evaluation
//	rffbench perf     [-budget 2000] [-out BENCH_perf.json]  # hot-path throughput
//	rffbench triage   -in DIR | -store DIR | -progen-seed S  # cluster crashes into a regression corpus
//
// Matrix commands decompose into (tool, program, trial) cells and run on
// a fleet worker pool: `-workers N` bounds the pool (default GOMAXPROCS)
// and results are bit-identical at any worker count. table-b/fig4/rq1/all
// take `-tools SPEC[,SPEC...]` — strategy specs resolved through the
// internal/strategy registry (see `rff tools`), defaulting to the paper's
// panel. They also take `-json summary.json` (machine-readable per-cell
// summary, for tracking benchmark trajectories across PRs) and
// `-metrics out.json` (telemetry snapshot of the run). Every command
// takes `-cpuprofile FILE` / `-memprofile FILE` to capture pprof
// profiles of the run.
//
// Budgets default to laptop-scale settings; raise -trials/-budget toward
// the paper's 20 trials for tighter statistics (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/campaign"
	"rff/internal/fleet"
	"rff/internal/perf"
	"rff/internal/report"
	"rff/internal/stats"
	"rff/internal/strategy"
	"rff/internal/systematic"
	"rff/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "table-b":
		cmdMatrix(args, renderTableB)
	case "fig4":
		cmdMatrix(args, renderFig4)
	case "rq1":
		cmdMatrix(args, renderRQ1)
	case "all":
		cmdMatrix(args, func(m *campaign.MatrixResult) {
			renderTableB(m)
			fmt.Println()
			renderFig4(m)
			fmt.Println()
			renderRQ1(m)
		})
	case "rq2":
		cmdRQ2(args)
	case "rq4":
		cmdRQ4(args)
	case "fig5":
		cmdFig5(args)
	case "conformance":
		cmdConformance(args)
	case "sched-eval":
		cmdSchedEval(args)
	case "classes":
		cmdClasses(args)
	case "perf":
		cmdPerf(args)
	case "triage":
		cmdTriage(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rffbench <table-b|fig4|fig5|rq1|rq2|rq4|classes|conformance|sched-eval|perf|triage> [flags]")
}

// profileFlags holds the pprof flags every subcommand accepts.
type profileFlags struct {
	cpu, mem string
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	pf := &profileFlags{}
	fs.StringVar(&pf.cpu, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&pf.mem, "memprofile", "", "write a pprof heap profile to this file at exit")
	return pf
}

// start begins CPU profiling; the returned stop ends it and writes the
// heap profile. Profile errors are fatal up front — a requested profile
// that cannot be opened should not surface only after a long run.
func (pf *profileFlags) start() (stop func()) {
	stopCPU, err := perf.StartCPUProfile(pf.cpu)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(1)
	}
	return func() {
		stopCPU()
		if err := perf.WriteHeapProfile(pf.mem); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// matrixFlags holds the common evaluation-matrix flags.
type matrixFlags struct {
	trials       int
	budget       int
	maxSteps     int
	seed         int64
	workers      int
	suite        string
	progs        string
	quiet        bool
	jsonPath     string
	metricsPath  string
	budgetPolicy string
	budgetEpochs int
	prof         *profileFlags
}

func addMatrixFlags(fs *flag.FlagSet) *matrixFlags {
	mf := &matrixFlags{prof: addProfileFlags(fs)}
	fs.IntVar(&mf.trials, "trials", 5, "trials per (tool, program); the paper uses 20")
	fs.IntVar(&mf.budget, "budget", 2000, "schedule budget per trial")
	fs.IntVar(&mf.maxSteps, "maxsteps", 5000, "per-execution step budget")
	fs.Int64Var(&mf.seed, "seed", 1, "base seed")
	fs.IntVar(&mf.workers, "workers", 0, "concurrent fleet workers; results are identical at any count (0 = GOMAXPROCS)")
	fs.StringVar(&mf.suite, "suite", "", "restrict to one suite (CS, Chess, ConVul, ...)")
	fs.StringVar(&mf.progs, "progs", "", "comma-separated program list (default: all)")
	fs.BoolVar(&mf.quiet, "q", false, "suppress progress output")
	fs.StringVar(&mf.jsonPath, "json", "", "write the experiment summary as machine-readable JSON to this file")
	fs.StringVar(&mf.metricsPath, "metrics", "", "write a JSON telemetry snapshot to this file")
	fs.StringVar(&mf.budgetPolicy, "budget-policy", "",
		fmt.Sprintf("adaptive budget policy reallocating the matrix pool across (tool, program) cells at epoch barriers (%s; empty = fixed per-cell budgets)", strings.Join(budget.Policies(), "|")))
	fs.IntVar(&mf.budgetEpochs, "budget-epochs", budget.DefaultEpochs, "allocation epochs under -budget-policy")
	return mf
}

// budgeter maps the -budget-policy flags onto a strategy.Config field,
// validating up front so a typo fails before the run starts.
func (mf *matrixFlags) budgeter() *budget.Config {
	if mf.budgetPolicy == "" {
		return nil
	}
	cfg := &budget.Config{Policy: mf.budgetPolicy, Epochs: mf.budgetEpochs}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	return cfg
}

func (mf *matrixFlags) programs() []bench.Program {
	if mf.progs != "" {
		var out []bench.Program
		for _, n := range strings.Split(mf.progs, ",") {
			out = append(out, bench.MustGet(strings.TrimSpace(n)))
		}
		return out
	}
	if mf.suite != "" {
		return bench.BySuite(mf.suite)
	}
	// The default matrix is the paper's subject set; the Extras suite is
	// opt-in via -suite Extras.
	var out []bench.Program
	for _, p := range bench.All() {
		if p.Suite != "Extras" {
			out = append(out, p)
		}
	}
	return out
}

func (mf *matrixFlags) run(specs []string) *campaign.MatrixResult {
	progress := func(done, total int) {
		if !mf.quiet && (done%25 == 0 || done == total) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var hub *telemetry.Hub
	var sink telemetry.Sink
	if mf.metricsPath != "" {
		hub = telemetry.NewHub()
		sink = hub
	}
	stopProf := mf.prof.start()
	start := time.Now()
	// The registry threads the sink into every resolved tool exactly
	// once, so the snapshot carries engine/fuzzer series without any
	// per-tool retrofitting here.
	m, err := strategy.RunMatrix(context.Background(), specs, mf.programs(), strategy.Config{
		Telemetry: sink,
		Trials:    mf.trials,
		Budget:    mf.budget,
		MaxSteps:  mf.maxSteps,
		BaseSeed:  mf.seed,
		Workers:   mf.workers,
		Progress:  progress,
		Budgeter:  mf.budgeter(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(1)
	}
	stopProf()
	if !mf.quiet {
		fmt.Fprintf(os.Stderr, "matrix completed in %v\n", time.Since(start).Round(time.Millisecond))
		if br := m.BudgetReport; br != nil {
			fmt.Fprintf(os.Stderr, "budget policy %s: %d epochs, %d/%d executions spent, %d reallocations\n",
				br.Policy, br.Epochs, br.Spent, br.Pool, br.Reallocations)
		}
	}
	if errs := m.TrialErrors(); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d trials aborted with errors:\n", len(errs))
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
	}
	if hub != nil {
		if err := writeMetrics(mf.metricsPath, hub); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	}
	if mf.jsonPath != "" {
		if err := writeSummaryJSON(mf.jsonPath, m); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	}
	return m
}

// writeMetrics persists a hub's snapshot as indented JSON.
func writeMetrics(path string, hub *telemetry.Hub) error {
	data, err := hub.Snapshot().MarshalJSONIndent()
	if err != nil {
		return fmt.Errorf("marshaling metrics snapshot: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// cellSummary is one (tool, program) cell of the JSON experiment summary.
type cellSummary struct {
	Tool    string `json:"tool"`
	Program string `json:"program"`
	Trials  int    `json:"trials"`
	// Found is how many trials exposed the bug.
	Found int `json:"found"`
	// MeanSchedulesToBug/StdSchedulesToBug summarize the bug-finding
	// trials only (0 when the bug was never found).
	MeanSchedulesToBug float64 `json:"mean_schedules_to_bug"`
	StdSchedulesToBug  float64 `json:"std_schedules_to_bug"`
	// Errors counts trials aborted by infrastructure failures.
	Errors int `json:"errors,omitempty"`
}

// matrixSummary is the machine-readable form of an evaluation matrix —
// the per-PR benchmark trajectory record behind `-json`.
type matrixSummary struct {
	Budget   int      `json:"budget"`
	Trials   int      `json:"trials"`
	Tools    []string `json:"tools"`
	Programs []string `json:"programs"`
	// BugsFoundMean is the mean number of programs each tool found a
	// bug in, over its trials (the RQ1 headline number).
	BugsFoundMean map[string]float64 `json:"bugs_found_mean"`
	Cells         []cellSummary      `json:"cells"`
}

func writeSummaryJSON(path string, m *campaign.MatrixResult) error {
	s := matrixSummary{
		Budget:        m.Budget,
		Trials:        0,
		Tools:         m.Tools,
		Programs:      m.Programs,
		BugsFoundMean: make(map[string]float64, len(m.Tools)),
	}
	for _, tool := range m.Tools {
		s.BugsFoundMean[tool] = stats.Mean(m.BugsFoundPerTrial(tool))
		for _, p := range m.Programs {
			outs := m.Outcomes[tool][p]
			if len(outs) > s.Trials {
				s.Trials = len(outs)
			}
			cell := cellSummary{Tool: tool, Program: p, Trials: len(outs)}
			for _, o := range outs {
				if o.Found() {
					cell.Found++
				}
				if o.Errored() {
					cell.Errors++
				}
			}
			mean, std, _ := m.MeanStd(tool, p)
			if cell.Found > 0 {
				cell.MeanSchedulesToBug, cell.StdSchedulesToBug = mean, std
			}
			s.Cells = append(s.Cells, cell)
		}
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling summary: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func cmdMatrix(args []string, render func(*campaign.MatrixResult)) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	mf := addMatrixFlags(fs)
	toolsFlag := fs.String("tools", strings.Join(strategy.DefaultSpecs(), ","),
		"comma-separated strategy specs (see `rff tools`)")
	fs.Parse(args)
	specs, err := strategy.ParseSpecs(*toolsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	render(mf.run(specs))
}

func renderTableB(m *campaign.MatrixResult) {
	fmt.Println("Mean Number of Schedules to 1st Bug (Appendix B reproduction)")
	fmt.Println("(\"-\" = bug never found; \"*\" = missed in at least one trial)")
	fmt.Println()
	fmt.Print(report.AppendixB(m))
	fmt.Println()
	fmt.Println("Side-by-side with the paper's Appendix B:")
	fmt.Println()
	fmt.Print(report.AppendixBVsPaper(m))
	fmt.Println()
	fmt.Println("Shape checks:")
	fmt.Print(report.ShapeChecks(m))
}

func renderFig4(m *campaign.MatrixResult) {
	tools := []string{"RFF", "POS", "PCT3", "PERIOD*", "QLearning-RF"}
	tools = intersect(tools, m.Tools)
	fmt.Println("Figure 4: Total Bugs Discovered After Log(# Schedules) Across All Trials")
	fmt.Println()
	fmt.Print(report.Fig4ASCII(m, tools))
	fmt.Println()
	fmt.Println("CSV data:")
	fmt.Print(report.Fig4CSV(m, tools))
}

func renderRQ1(m *campaign.MatrixResult) {
	fmt.Println("RQ1: bugs found per trial (mean over trials) and pairwise significance")
	fmt.Println()
	for _, tool := range m.Tools {
		counts := m.BugsFoundPerTrial(tool)
		fmt.Printf("  %-14s mean bugs found: %5.1f / %d programs\n",
			tool, stats.Mean(counts), len(m.Programs))
	}
	fmt.Println()
	rff := m.BugsFoundPerTrial("RFF")
	for _, tool := range m.Tools {
		if tool == "RFF" || tool == "GenMC*" {
			continue
		}
		_, p := stats.MannWhitneyU(rff, m.BugsFoundPerTrial(tool))
		fmt.Printf("  Mann-Whitney U (RFF vs %s): p = %.4g\n", tool, p)
	}
	for _, other := range []string{"PERIOD*", "POS"} {
		aw, bw := m.SignificantWins("RFF", other, 0.05)
		fmt.Printf("  log-rank: RFF significantly fewer schedules than %s on %d/%d programs; "+
			"%s better on %d\n", other, aw, len(m.Programs), other, bw)
	}
}

func cmdRQ2(args []string) {
	fs := flag.NewFlagSet("rq2", flag.ExitOnError)
	mf := addMatrixFlags(fs)
	fs.Parse(args)
	m := mf.run([]string{"rff", "pos"})
	fmt.Println("RQ2: contribution of the abstract schedule (RFF vs its POS fallback)")
	fmt.Println()
	fmt.Printf("  RFF mean bugs found: %.1f\n", stats.Mean(m.BugsFoundPerTrial("RFF")))
	fmt.Printf("  POS mean bugs found: %.1f\n", stats.Mean(m.BugsFoundPerTrial("POS")))
	aw, bw := m.SignificantWins("RFF", "POS", 0.05)
	fmt.Printf("  RFF significantly fewer schedules on %d/%d programs (log-rank, p<0.05)\n",
		aw, len(m.Programs))
	fmt.Printf("  POS significantly fewer schedules on %d/%d programs\n", bw, len(m.Programs))
	fmt.Println()
	fmt.Print(report.AppendixB(m))
}

func cmdRQ4(args []string) {
	fs := flag.NewFlagSet("rq4", flag.ExitOnError)
	mf := addMatrixFlags(fs)
	fs.Parse(args)
	m := mf.run([]string{"rff", "qlearn"})
	fmt.Println("RQ4: greybox fuzzing vs Q-Learning over the same reads-from information")
	fmt.Println()
	fmt.Printf("  RFF          mean bugs found: %.1f\n", stats.Mean(m.BugsFoundPerTrial("RFF")))
	fmt.Printf("  QLearning-RF mean bugs found: %.1f\n", stats.Mean(m.BugsFoundPerTrial("QLearning-RF")))
	aw, _ := m.SignificantWins("RFF", "QLearning-RF", 0.05)
	fmt.Printf("  RFF significantly fewer schedules on %d/%d programs\n", aw, len(m.Programs))
	// One-shot successes: programs where the first schedule of trial 0 hit the bug.
	oneShot := func(tool string) int {
		n := 0
		for _, p := range m.Programs {
			outs := m.Outcomes[tool][p]
			if len(outs) > 0 && outs[0].FirstBug == 1 {
				n++
			}
		}
		return n
	}
	fmt.Printf("  first-schedule successes: RFF %d, QLearning-RF %d\n",
		oneShot("RFF"), oneShot("QLearning-RF"))
}

func cmdFig5(args []string) {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	n := fs.Int("n", 10000, "schedules per configuration (paper: 10000)")
	prog := fs.String("prog", "SafeStack", "program to profile")
	seed := fs.Int64("seed", 1, "seed")
	maxSteps := fs.Int("maxsteps", 5000, "per-execution step budget")
	bars := fs.Int("bars", 40, "bars to draw")
	csv := fs.Bool("csv", false, "emit CSV instead of ASCII bars")
	nofb := fs.Bool("nofeedback", false, "profile RFF without greybox feedback instead of POS (RQ3 ablation)")
	workers := fs.Int("workers", 0, "profile the two configurations concurrently (0 = GOMAXPROCS)")
	pf := addProfileFlags(fs)
	fs.Parse(args)
	p := bench.MustGet(*prog)
	defer pf.start()()

	// The two configurations are independent fixed-seed profiles — ideal
	// fleet cells: identical output at any worker count, half the
	// wall-clock with two cores.
	cells := []fleet.Cell[*campaign.Distribution]{
		{ID: "fig5/top", Run: func(context.Context, *fleet.Scratch) (*campaign.Distribution, error) {
			if *nofb {
				return campaign.RFDistributionRFF(p, *n, *seed, *maxSteps, false), nil
			}
			return campaign.RFDistributionPOS(p, *n, *seed, *maxSteps), nil
		}},
		{ID: "fig5/bottom", Run: func(context.Context, *fleet.Scratch) (*campaign.Distribution, error) {
			return campaign.RFDistributionRFF(p, *n, *seed, *maxSteps, true), nil
		}},
	}
	results := fleet.Run(context.Background(), cells, fleet.Options{Workers: *workers})
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %s: %v\n%s", r.Cell, r.Err, r.Stack)
			os.Exit(1)
		}
	}
	top, bottom := results[0].Value, results[1].Value

	fmt.Printf("Figure 5: reads-from combination frequencies on %s (%d schedules)\n\n", p.Name, *n)
	if *csv {
		fmt.Print(report.Fig5CSV(top))
		fmt.Print(report.Fig5CSV(bottom))
		return
	}
	fmt.Print(report.Fig5ASCII(top, *bars))
	fmt.Println()
	fmt.Print(report.Fig5ASCII(bottom, *bars))
}

func cmdClasses(args []string) {
	fs := flag.NewFlagSet("classes", flag.ExitOnError)
	prog := fs.String("prog", "Extras/reorder_2", "program to enumerate")
	budget := fs.Int("budget", 500000, "max schedules")
	pf := addProfileFlags(fs)
	fs.Parse(args)
	p := bench.MustGet(*prog)
	defer pf.start()()
	rep := systematic.Explore(p.Name, p.Body, systematic.ExploreOptions{MaxExecutions: *budget})
	fmt.Printf("E8: %s — %d schedules enumerated", p.Name, rep.Executions)
	if rep.Complete {
		fmt.Print(" (complete)")
	} else {
		fmt.Print(" (budget exhausted)")
	}
	fmt.Printf(", %d reads-from equivalence classes\n", rep.Classes)
	if rep.Executions > 0 {
		fmt.Printf("reduction factor: %.0fx\n", float64(rep.Executions)/float64(max(rep.Classes, 1)))
	}
}

// cmdPerf runs the hot-path throughput harness: one full fuzzing campaign
// per program, reporting execs/sec and allocations per execution, plus the
// fleet matrix-scaling record (wall-clock and speedup at several worker
// counts on a table-b smoke subset), persisted as BENCH_perf.json for
// cross-PR comparison.
func cmdPerf(args []string) {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	progs := fs.String("progs", strings.Join(perf.DefaultPrograms, ","),
		"comma-separated programs to measure")
	budget := fs.Int("budget", 2000, "schedules per program")
	maxSteps := fs.Int("maxsteps", 5000, "per-execution step budget")
	seed := fs.Int64("seed", 1, "campaign seed")
	out := fs.String("out", "BENCH_perf.json", "output JSON file (empty = stdout only)")
	matrix := fs.Bool("matrix", true, "also measure matrix wall-clock scaling across fleet worker counts")
	matrixWorkers := fs.String("matrix-workers", "1,2,4,8", "comma-separated worker counts (first is the speedup baseline)")
	matrixTrials := fs.Int("matrix-trials", 2, "trials per cell of the scaling matrix")
	matrixBudget := fs.Int("matrix-budget", 300, "schedule budget per trial of the scaling matrix")
	shardCounts := fs.String("shards", "1,2,4", "comma-separated shard counts for single-campaign shard scaling (first is the speedup baseline; empty = skip)")
	shardProgs := fs.String("shard-progs", "CS/twostage_20", "comma-separated programs for the shard-scaling curves")
	shardBudget := fs.Int("shard-budget", 4000, "schedule budget per shard-scaling campaign")
	shardAssert := fs.Float64("shard-assert-speedup", 0, "fail unless some program reaches this execs/sec speedup at the highest shard count (0 = no assert; skipped on 1 CPU)")
	pf := addProfileFlags(fs)
	fs.Parse(args)

	var ps []bench.Program
	for _, n := range strings.Split(*progs, ",") {
		ps = append(ps, bench.MustGet(strings.TrimSpace(n)))
	}
	stopProf := pf.start()
	rep := perf.Run(ps, *budget, *maxSteps, *seed)
	if *matrix {
		var counts []int
		for _, w := range strings.Split(*matrixWorkers, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || c <= 0 {
				fmt.Fprintf(os.Stderr, "rffbench: bad -matrix-workers entry %q\n", w)
				os.Exit(2)
			}
			counts = append(counts, c)
		}
		// The scaling workload is the table-b smoke subset: the full
		// tool lineup on the throughput programs, at a budget small
		// enough to iterate on.
		tools, err := strategy.ResolveAll(strategy.DefaultSpecs(), strategy.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		rep.Matrix = perf.MeasureMatrix(tools, ps,
			*matrixTrials, *matrixBudget, *maxSteps, *seed, counts)
	}
	if *shardCounts != "" {
		var counts []int
		for _, w := range strings.Split(*shardCounts, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || c <= 0 {
				fmt.Fprintf(os.Stderr, "rffbench: bad -shards entry %q\n", w)
				os.Exit(2)
			}
			counts = append(counts, c)
		}
		for _, n := range strings.Split(*shardProgs, ",") {
			p := bench.MustGet(strings.TrimSpace(n))
			rep.Shards = append(rep.Shards,
				perf.MeasureShards(p, *shardBudget, *maxSteps, *seed, counts, false))
		}
	}
	stopProf()

	fmt.Printf("hot-path throughput (%d schedules each, seed %d):\n", *budget, *seed)
	for _, r := range rep.Programs {
		fmt.Printf("  %-20s %9.0f execs/sec  %7.1f allocs/exec  %9.0f B/exec\n",
			r.Program, r.ExecsPerSec, r.AllocsPerExec, r.BytesPerExec)
	}
	if m := rep.Matrix; m != nil {
		fmt.Printf("matrix scaling (%d tools x %d programs x %d trials, budget %d):\n",
			len(m.Tools), len(m.Programs), m.Trials, m.Budget)
		for _, pt := range m.Points {
			fmt.Printf("  %2d workers  %8.2fs  %5.2fx\n",
				pt.Workers, float64(pt.WallNS)/1e9, pt.Speedup)
		}
		if !m.ResultsIdentical {
			fmt.Fprintln(os.Stderr, "rffbench: WARNING: matrix results diverged across worker counts")
			os.Exit(1)
		}
		fmt.Println("  results bit-identical at every worker count")
	}
	bestSpeedup := 0.0
	for _, sc := range rep.Shards {
		fmt.Printf("shard scaling: %s (budget %d, %d CPUs):\n", sc.Program, sc.Budget, sc.NumCPU)
		for _, pt := range sc.Points {
			fmt.Printf("  %2d shards  %9.0f execs/sec  %5.2fx  %7.1f allocs/exec\n",
				pt.Shards, pt.ExecsPerSec, pt.Speedup, pt.AllocsPerExec)
		}
		if !sc.ResultsIdentical {
			fmt.Fprintf(os.Stderr, "rffbench: WARNING: %s reports diverged across shard counts\n", sc.Program)
			os.Exit(1)
		}
		fmt.Println("  reports bit-identical at every shard count")
		if n := len(sc.Points); n > 0 && sc.Points[n-1].Speedup > bestSpeedup {
			bestSpeedup = sc.Points[n-1].Speedup
		}
	}
	if *shardAssert > 0 && len(rep.Shards) > 0 {
		if runtime.NumCPU() == 1 {
			fmt.Println("shard speedup assert skipped: 1 CPU (scaling is not expected)")
		} else if bestSpeedup < *shardAssert {
			fmt.Fprintf(os.Stderr, "rffbench: shard scaling below target: best %.2fx at the highest shard count, want >= %.2fx\n",
				bestSpeedup, *shardAssert)
			os.Exit(1)
		} else {
			fmt.Printf("shard speedup assert passed: %.2fx >= %.2fx\n", bestSpeedup, *shardAssert)
		}
	}
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func intersect(want, have []string) []string {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	var out []string
	for _, w := range want {
		if set[w] {
			out = append(out, w)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
