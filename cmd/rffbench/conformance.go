package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	budgetpkg "rff/internal/budget"
	"rff/internal/conformance"
	"rff/internal/progen"
	"rff/internal/strategy"
	"rff/internal/telemetry"
)

// cmdConformance runs the differential conformance harness: generated
// programs cross-checked against systematic ground truth, every
// registered strategy held to the soundness and replay invariants. The
// run is a pure function of (seed, flags): identical invocations print
// identical summaries and write identical result files. Exits 1 on any
// violation.
func cmdConformance(args []string) {
	fs := flag.NewFlagSet("conformance", flag.ExitOnError)
	programs := fs.Int("programs", 50, "generated programs to check")
	seed := fs.Int64("seed", 1, "generator and trial seed")
	toolsFlag := fs.String("tools", strings.Join(strategy.Names(), ","),
		"comma-separated strategy specs (default: every registered strategy)")
	trials := fs.Int("trials", 1, "trials per (program, spec) for randomized strategies")
	budget := fs.Int("budget", 300, "schedule budget per trial")
	gtBudget := fs.Int("gt-budget", 60000, "ground-truth enumeration budget per program")
	grammar := fs.String("grammar", "core",
		"progen grammar to draw programs from ("+strings.Join(progen.Grammars(), ", ")+")")
	maxSteps := fs.Int("maxsteps", 4096, "per-execution step budget")
	workers := fs.Int("workers", 1, "fleet workers per program; results identical at any count")
	budgetPolicy := fs.String("budget-policy", "",
		fmt.Sprintf("adaptive budget policy: each program's (spec, trial) cells share a reallocated pool (%s; empty = fixed per-cell budgets)", strings.Join(budgetpkg.Policies(), "|")))
	budgetEpochs := fs.Int("budget-epochs", budgetpkg.DefaultEpochs, "allocation epochs under -budget-policy")
	out := fs.String("out", "", "directory for summary.txt, coverage.txt, and report.json (e.g. results/conformance)")
	metricsPath := fs.String("metrics", "", "write a JSON telemetry snapshot to this file")
	quiet := fs.Bool("q", false, "suppress progress output")
	pf := addProfileFlags(fs)
	fs.Parse(args)

	specs, err := strategy.ParseSpecs(*toolsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	if _, err := progen.ParseGrammar(*grammar); err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	if *budgetPolicy != "" {
		bc := budgetpkg.Config{Policy: *budgetPolicy, Epochs: *budgetEpochs}
		if err := bc.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(2)
		}
	}

	var hub *telemetry.Hub
	var sink telemetry.Sink
	if *metricsPath != "" {
		hub = telemetry.NewHub()
		sink = hub
	}
	progress := func(done, total int) {
		if !*quiet && (done%5 == 0 || done == total) {
			fmt.Fprintf(os.Stderr, "\r%d/%d programs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	stopProf := pf.start()
	start := time.Now()
	rep := conformance.RunContext(context.Background(), conformance.Options{
		Programs:     *programs,
		Seed:         *seed,
		Specs:        specs,
		Trials:       *trials,
		Budget:       *budget,
		GTBudget:     *gtBudget,
		MaxSteps:     *maxSteps,
		Workers:      *workers,
		Grammar:      *grammar,
		BudgetPolicy: *budgetPolicy,
		BudgetEpochs: *budgetEpochs,
		Telemetry:    sink,
		Progress:     progress,
	})
	stopProf()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "conformance completed in %v\n", time.Since(start).Round(time.Millisecond))
	}

	fmt.Print(rep.Summary())
	fmt.Println()
	fmt.Print(rep.CoverageCurves())

	if hub != nil {
		if err := writeMetrics(*metricsPath, hub); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		if err := writeConformanceResults(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// writeConformanceResults persists the run into dir: the deterministic
// text summary, the coverage curves, and the full machine-readable
// report.
func writeConformanceResults(dir string, rep *conformance.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(rep.Summary()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "coverage.txt"), []byte(rep.CoverageCurves()), 0o644); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling conformance report: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, "report.json"), append(data, '\n'), 0o644)
}
