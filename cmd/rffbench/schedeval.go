package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	budgetpkg "rff/internal/budget"
	"rff/internal/progen"
	"rff/internal/schedeval"
	"rff/internal/strategy"
	"rff/internal/telemetry"
)

// cmdSchedEval runs the adaptive-budget statistical harness: a seeded
// progen workload evaluated once per budget policy (uniform baseline
// first), with Mann-Whitney comparisons of the coverage and
// time-to-first-bug distributions. The run is a pure function of
// (seeds, flags): identical invocations print identical summaries and
// write identical result files, at any -workers. Exits 1 when any
// adaptive policy is significantly worse than uniform (or, with
// -assert-ttfb, when the best adaptive policy's median
// time-to-first-bug is worse than uniform's).
func cmdSchedEval(args []string) {
	fs := flag.NewFlagSet("sched-eval", flag.ExitOnError)
	programs := fs.Int("programs", 12, "checked programs per seed")
	seedsFlag := fs.String("seeds", "1", "comma-separated workload seeds")
	toolsFlag := fs.String("tools", strings.Join(strategy.Names(), ","),
		"comma-separated strategy specs (default: every registered strategy)")
	policiesFlag := fs.String("policies", strings.Join(append([]string{"uniform"}, budgetpkg.AdaptivePolicies()...), ","),
		"comma-separated budget policies to compare; uniform is the baseline")
	trials := fs.Int("trials", 1, "trials per (spec, program) for randomized strategies")
	budget := fs.Int("budget", 300, "per-cell execution entitlement (pool = budget x cells)")
	epochs := fs.Int("budget-epochs", budgetpkg.DefaultEpochs, "allocation epochs per campaign")
	gtBudget := fs.Int("gt-budget", 60000, "ground-truth enumeration budget per program")
	grammar := fs.String("grammar", "core",
		"progen grammar to draw programs from ("+strings.Join(progen.Grammars(), ", ")+")")
	maxSteps := fs.Int("maxsteps", 4096, "per-execution step budget")
	workers := fs.Int("workers", 1, "fleet workers per campaign; results identical at any count")
	alpha := fs.Float64("alpha", 0.05, "Mann-Whitney significance level")
	assertTTFB := fs.Bool("assert-ttfb", false,
		"additionally fail when the best adaptive policy's median time-to-first-bug is worse than uniform's (ties pass)")
	out := fs.String("out", "", "directory for summary.txt, coverage.txt, and report.json")
	metricsPath := fs.String("metrics", "", "write a JSON telemetry snapshot to this file")
	quiet := fs.Bool("q", false, "suppress progress output")
	pf := addProfileFlags(fs)
	fs.Parse(args)

	specs, err := strategy.ParseSpecs(*toolsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	var seeds []int64
	for _, s := range strings.Split(*seedsFlag, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: bad -seeds entry %q\n", s)
			os.Exit(2)
		}
		seeds = append(seeds, v)
	}
	var policies []string
	for _, p := range strings.Split(*policiesFlag, ",") {
		p = strings.TrimSpace(p)
		if !budgetpkg.ValidPolicy(p) {
			fmt.Fprintf(os.Stderr, "rffbench: unknown budget policy %q (registered: %s)\n",
				p, strings.Join(budgetpkg.Policies(), ", "))
			os.Exit(2)
		}
		policies = append(policies, p)
	}
	if _, err := progen.ParseGrammar(*grammar); err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}

	var hub *telemetry.Hub
	var sink telemetry.Sink
	if *metricsPath != "" {
		hub = telemetry.NewHub()
		sink = hub
	}
	progress := func(done, total int) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%d/%d campaigns", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	stopProf := pf.start()
	start := time.Now()
	rep := schedeval.RunContext(context.Background(), schedeval.Options{
		Programs:   *programs,
		Seeds:      seeds,
		Specs:      specs,
		Policies:   policies,
		Trials:     *trials,
		Budget:     *budget,
		Epochs:     *epochs,
		GTBudget:   *gtBudget,
		MaxSteps:   *maxSteps,
		Workers:    *workers,
		Grammar:    *grammar,
		Alpha:      *alpha,
		AssertTTFB: *assertTTFB,
		Telemetry:  sink,
		Progress:   progress,
	})
	stopProf()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sched-eval completed in %v\n", time.Since(start).Round(time.Millisecond))
	}

	fmt.Print(rep.Summary())
	fmt.Println()
	fmt.Print(rep.CoverageCurves())

	if hub != nil {
		if err := writeMetrics(*metricsPath, hub); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		if err := writeSchedEvalResults(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// writeSchedEvalResults persists the run into dir: the deterministic
// text summary, the coverage curves, and the machine-readable report.
func writeSchedEvalResults(dir string, rep *schedeval.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(rep.Summary()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "coverage.txt"), []byte(rep.CoverageCurves()), 0o644); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling sched-eval report: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, "report.json"), append(data, '\n'), 0o644)
}
