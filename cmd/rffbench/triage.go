package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/progen"
	"rff/internal/store"
	"rff/internal/strategy"
	"rff/internal/triage"
)

// triageCollector records an artifact for every failing execution a
// campaign-mode tool observes.
type triageCollector struct {
	arts []*core.Artifact
}

func (c *triageCollector) observe(res *exec.Result) {
	if res.Failure == nil {
		return
	}
	f := *res.Failure
	a := &core.Artifact{
		Program:     res.Program,
		Seed:        res.Seed,
		FailureKind: f.Kind.String(),
		FailureMsg:  f.Msg,
		FailureLoc:  f.Loc,
		Thread:      int32(f.Thread),
	}
	for _, d := range res.Trace.ThreadOrder() {
		a.Decisions = append(a.Decisions, int32(d))
	}
	c.arts = append(c.arts, a)
}

// cmdTriage minimizes and clusters crash artifacts into a regression
// corpus and prints the ranked report. Three input modes: a crash
// directory (-in), an rffd data directory (-store), or campaign mode
// (-progen-seed: generate programs, fuzz them, triage the failures —
// the CI smoke path). Identical inputs produce byte-identical
// corpus.json and report.json.
func cmdTriage(args []string) {
	fs := flag.NewFlagSet("triage", flag.ExitOnError)
	in := fs.String("in", "", "triage crash artifacts (*.json) under this directory")
	storeDir := fs.String("store", "", "triage artifacts recorded in this rffd data directory")
	progenSeed := fs.Int64("progen-seed", 0, "campaign mode: generate programs from this seed, fuzz them, and triage the failures")
	progenCount := fs.Int("progen-count", 8, "campaign mode: programs to generate")
	progenGrammar := fs.String("progen-grammar", "core", "campaign mode: progen grammar to draw from (core, chan, sync, all)")
	toolsFlag := fs.String("tools", "rff", "campaign mode: comma-separated strategy specs")
	campBudget := fs.Int("campaign-budget", 300, "campaign mode: schedules per trial")
	trials := fs.Int("trials", 1, "campaign mode: trials per (tool, program)")
	seed := fs.Int64("seed", 1, "campaign mode: base seed")
	toolLabel := fs.String("tool", "", "tool to attribute -in artifacts to (default: unknown)")
	out := fs.String("out", "triage-corpus", "regression corpus directory (replayed by `rff regress`)")
	reportPath := fs.String("report", "", "also write the ranked report as JSON to this file")
	budget := fs.Int("budget", 0, "minimization probe budget per artifact (0 = triage default)")
	maxSteps := fs.Int("maxsteps", 0, "per-replay step budget (0 = engine default)")
	pf := addProfileFlags(fs)
	fs.Parse(args)

	modes := 0
	for _, set := range []bool{*in != "", *storeDir != "", *progenSeed != 0} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "rffbench triage: exactly one of -in, -store, -progen-seed is required")
		os.Exit(2)
	}
	defer pf.start()()

	tr := triage.New(triage.Config{Budget: *budget, MaxSteps: *maxSteps})
	var skipped []string
	switch {
	case *in != "":
		sk, err := triage.FromDir(tr, *in, *toolLabel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		skipped = sk
	case *storeDir != "":
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		idx, err := store.OpenIndex(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
		skipped, err = triage.FromStore(tr, st, idx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	default:
		skipped = triageCampaign(tr, *progenSeed, *progenCount, *progenGrammar, *toolsFlag, *campBudget, *trials, *maxSteps, *seed)
	}

	if err := triage.SaveCorpus(tr, *out); err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(1)
	}
	rep := triage.BuildReport(tr, *out, skipped)
	if *reportPath != "" {
		data, err := rep.Encode()
		if err == nil {
			err = os.WriteFile(*reportPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(1)
		}
	}
	rep.Render(os.Stdout)
	fmt.Printf("corpus: %s (replay with `rff regress -corpus %s`)\n", *out, *out)
}

// triageCampaign fuzzes progen-generated programs with each tool and
// feeds every observed failure through the triager, in a deterministic
// (tool, program, content) order.
func triageCampaign(tr *triage.Triager, progenSeed int64, count int, grammar, toolsFlag string, budget, trials, maxSteps int, seed int64) []string {
	specs, err := strategy.ParseSpecs(toolsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	feats, err := progen.ParseGrammar(grammar)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
		os.Exit(2)
	}
	gen := progen.NewGenerator(progenSeed, progen.Options{Features: feats})
	var programs []bench.Program
	for i := 0; i < count; i++ {
		programs = append(programs, gen.Next().Bench())
	}

	type tagged struct {
		art  *core.Artifact
		tool string
		data []byte
	}
	var arts []tagged
	for _, spec := range specs {
		col := &triageCollector{}
		tool, err := strategy.Resolve(spec, strategy.Config{
			Observer: campaign.ResultObserver(col.observe),
			Budget:   budget,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rffbench: %v\n", err)
			os.Exit(2)
		}
		runs := trials
		if tool.Deterministic() {
			runs = 1
		}
		for _, p := range programs {
			for trial := 0; trial < runs; trial++ {
				tool.Run(context.Background(), p, budget, maxSteps,
					campaign.TrialSeed(seed, tool.Name(), p.Name, trial))
			}
		}
		for _, a := range col.arts {
			data, err := core.EncodeArtifact(a)
			if err != nil {
				continue
			}
			arts = append(arts, tagged{art: a, tool: tool.Name(), data: data})
		}
	}
	// Fix the ingestion order so first-seen ordinals (and therefore the
	// report) are a pure function of the campaign parameters.
	sort.Slice(arts, func(i, j int) bool {
		if arts[i].tool != arts[j].tool {
			return arts[i].tool < arts[j].tool
		}
		if arts[i].art.Program != arts[j].art.Program {
			return arts[i].art.Program < arts[j].art.Program
		}
		return string(arts[i].data) < string(arts[j].data)
	})
	var skipped []string
	for _, ta := range arts {
		if _, err := tr.Add(ta.art, ta.tool); err != nil {
			skipped = append(skipped, fmt.Sprintf("%s %s: %v", ta.tool, ta.art.Program, err))
		}
	}
	return skipped
}
