module rff

go 1.22
