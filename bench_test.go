// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation as testing.B benchmarks. Each benchmark
// reports, besides ns/op, the evaluation metrics as custom units:
//
//	BenchmarkTableB/*        — Appendix B: schedules-to-first-bug per
//	                           (tool, program) cell
//	BenchmarkFig4/*          — Figure 4: cumulative bugs per tool over a
//	                           mini-matrix (bugs and mean schedules)
//	BenchmarkFig5/*          — Figure 5: reads-from combination evenness
//	                           on SafeStack (distinct combos, max share)
//	BenchmarkRQ2_Ablation    — RQ2: RFF vs POS significant-win counts
//	BenchmarkRQ4_QLearning   — RQ4: RFF vs Q-Learning-RF bug counts
//	BenchmarkE8_RFClasses    — §3: schedules vs reads-from classes
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale reproduction (paper-sized budgets) lives in cmd/rffbench;
// these benches use reduced budgets so the whole suite completes in
// minutes. See EXPERIMENTS.md for recorded full-scale results.
package repro

import (
	"context"
	"fmt"
	"testing"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/minimize"
	"rff/internal/race"
	"rff/internal/sched"
	"rff/internal/stats"
	"rff/internal/strategy"
	"rff/internal/systematic"
)

// mustTools resolves strategy specs into the benchmark tool lineups.
func mustTools(specs ...string) []campaign.Tool {
	tools, err := strategy.ResolveAll(specs, strategy.Config{})
	if err != nil {
		panic(err)
	}
	return tools
}

// tableBCells is a representative slice of the Appendix B matrix: one
// program per suite plus the headline subjects.
var tableBCells = []string{
	"CS/reorder_100",
	"CS/twostage_50",
	"CS/account",
	"Chess/WorkStealQueue",
	"ConVul-CVE-Benchmarks/CVE-2016-9806",
	"Inspect_benchmarks/boundedBuffer",
	"CB/pbzip2-0.9.4",
	"Splash2/fft",
	"RADBench/bug6",
}

var tableBTools = mustTools("rff", "pos", "pct:3", "period", "qlearn")

// BenchmarkTableB regenerates Appendix B cells: one sub-benchmark per
// (tool, program), reporting mean schedules-to-bug and the find rate.
func BenchmarkTableB(b *testing.B) {
	const budget = 1500
	for _, tool := range tableBTools {
		for _, name := range tableBCells {
			p := bench.MustGet(name)
			b.Run(tool.Name()+"/"+p.Name, func(b *testing.B) {
				var schedules []float64
				found := 0
				for i := 0; i < b.N; i++ {
					out := tool.Run(context.Background(), p, budget, 5000, int64(i)+1)
					if out.Found() {
						found++
						schedules = append(schedules, float64(out.FirstBug))
					}
				}
				if len(schedules) > 0 {
					b.ReportMetric(stats.Mean(schedules), "schedules-to-bug")
				}
				b.ReportMetric(float64(found)/float64(b.N), "find-rate")
			})
		}
	}
}

// BenchmarkFig4 runs a mini evaluation matrix per tool and reports the
// cumulative-bugs statistics behind the Figure 4 curves.
func BenchmarkFig4(b *testing.B) {
	programs := []bench.Program{
		bench.MustGet("CS/reorder_20"),
		bench.MustGet("CS/twostage_20"),
		bench.MustGet("CS/account"),
		bench.MustGet("CS/bluetooth_driver"),
		bench.MustGet("ConVul-CVE-Benchmarks/CVE-2015-7550"),
		bench.MustGet("Chess/InterlockedWorkStealQueue"),
	}
	for _, tool := range tableBTools {
		tool := tool
		b.Run(tool.Name(), func(b *testing.B) {
			totalBugs, totalSched := 0.0, 0.0
			for i := 0; i < b.N; i++ {
				m := campaign.RunMatrix([]campaign.Tool{tool}, programs, campaign.MatrixOptions{
					Trials: 2, Budget: 600, MaxSteps: 5000, BaseSeed: int64(i) + 1,
				})
				curve := m.CumulativeCurve(tool.Name())
				if len(curve) > 0 {
					totalBugs += float64(curve[len(curve)-1].Bugs)
					totalSched += float64(curve[len(curve)-1].Schedules)
				}
			}
			b.ReportMetric(totalBugs/float64(b.N), "bugs-found")
			b.ReportMetric(totalSched/float64(b.N), "last-bug-at-schedule")
		})
	}
}

// BenchmarkFig5 regenerates the Figure 5 evenness measurement on
// SafeStack for POS, feedback-less RFF, and full RFF.
func BenchmarkFig5(b *testing.B) {
	p := bench.MustGet("SafeStack")
	const n = 1500
	b.Run("POS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := campaign.RFDistributionPOS(p, n, int64(i)+1, 5000)
			b.ReportMetric(float64(d.Combinations()), "rf-combinations")
			b.ReportMetric(d.MaxShare()*100, "max-share-%")
		}
	})
	b.Run("RFF-nofeedback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := campaign.RFDistributionRFF(p, n, int64(i)+1, 5000, false)
			b.ReportMetric(float64(d.Combinations()), "rf-combinations")
			b.ReportMetric(d.MaxShare()*100, "max-share-%")
		}
	})
	b.Run("RFF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := campaign.RFDistributionRFF(p, n, int64(i)+1, 5000, true)
			b.ReportMetric(float64(d.Combinations()), "rf-combinations")
			b.ReportMetric(d.MaxShare()*100, "max-share-%")
		}
	})
}

// BenchmarkRQ2_Ablation measures the abstract-schedule contribution: RFF
// vs its own POS fallback on the programs where the structure matters.
func BenchmarkRQ2_Ablation(b *testing.B) {
	programs := []bench.Program{
		bench.MustGet("CS/reorder_10"),
		bench.MustGet("CS/reorder_50"),
		bench.MustGet("CS/twostage_20"),
		bench.MustGet("CS/wronglock"),
	}
	for i := 0; i < b.N; i++ {
		m := campaign.RunMatrix(
			mustTools("rff", "pos"),
			programs,
			campaign.MatrixOptions{Trials: 3, Budget: 800, MaxSteps: 5000, BaseSeed: int64(i) + 1},
		)
		rffWins, posWins := m.SignificantWins("RFF", "POS", 0.05)
		b.ReportMetric(float64(rffWins), "rff-sig-wins")
		b.ReportMetric(float64(posWins), "pos-sig-wins")
		b.ReportMetric(stats.Mean(m.BugsFoundPerTrial("RFF")), "rff-bugs")
		b.ReportMetric(stats.Mean(m.BugsFoundPerTrial("POS")), "pos-bugs")
	}
}

// BenchmarkRQ4_QLearning compares the fuzzing loop against the Q-Learning
// framework over the same reads-from information.
func BenchmarkRQ4_QLearning(b *testing.B) {
	programs := []bench.Program{
		bench.MustGet("CS/reorder_10"),
		bench.MustGet("CS/twostage"),
		bench.MustGet("CS/queue"),
		bench.MustGet("ConVul-CVE-Benchmarks/CVE-2013-1792"),
	}
	for i := 0; i < b.N; i++ {
		m := campaign.RunMatrix(
			mustTools("rff", "qlearn"),
			programs,
			campaign.MatrixOptions{Trials: 3, Budget: 800, MaxSteps: 5000, BaseSeed: int64(i) + 1},
		)
		b.ReportMetric(stats.Mean(m.BugsFoundPerTrial("RFF")), "rff-bugs")
		b.ReportMetric(stats.Mean(m.BugsFoundPerTrial("QLearning-RF")), "qlearn-bugs")
	}
}

// BenchmarkE8_RFClasses regenerates the Section 3 reduction claim: the
// number of reads-from classes is exponentially smaller than the number
// of schedules.
func BenchmarkE8_RFClasses(b *testing.B) {
	reorder2 := bench.MustGet("CS/reorder_3")
	for i := 0; i < b.N; i++ {
		rep := systematic.Explore(reorder2.Name, reorder2.Body, systematic.ExploreOptions{
			MaxExecutions: 20000,
		})
		b.ReportMetric(float64(rep.Executions), "schedules")
		b.ReportMetric(float64(rep.Classes), "rf-classes")
	}
}

// BenchmarkEngineThroughput measures raw engine speed: schedules/sec on a
// mid-size program, the quantity that determines how far a wall-clock
// budget goes.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, name := range []string{"CS/account", "CS/reorder_10", "CS/reorder_100", "SafeStack"} {
		p := bench.MustGet(name)
		b.Run(name, func(b *testing.B) {
			tool := strategy.MustResolve("pos", strategy.Config{})
			for i := 0; i < b.N; i++ {
				tool.Run(context.Background(), p, 1, 5000, int64(i))
			}
		})
	}
}

// BenchmarkProactiveOverhead compares the proactive scheduler against
// plain POS on the same program — the cost of constraint machines.
func BenchmarkProactiveOverhead(b *testing.B) {
	p := bench.MustGet("CS/reorder_10")
	b.Run("POS", func(b *testing.B) {
		tool := strategy.MustResolve("pos", strategy.Config{})
		for i := 0; i < b.N; i++ {
			tool.Run(context.Background(), p, 1, 5000, int64(i))
		}
	})
	b.Run("RFF", func(b *testing.B) {
		tool := campaign.RFFTool{}
		for i := 0; i < b.N; i++ {
			tool.Run(context.Background(), p, 1, 5000, int64(i))
		}
	})
}

// Example of scaling: ensure the headline subjects stay cheap enough for
// CI-style runs.
func BenchmarkReorderFamily(b *testing.B) {
	for _, n := range []int{3, 10, 50, 100} {
		name := fmt.Sprintf("CS/reorder_%d", n)
		p := bench.MustGet(name)
		b.Run(name, func(b *testing.B) {
			var found, sched float64
			for i := 0; i < b.N; i++ {
				out := campaign.RFFTool{}.Run(context.Background(), p, 500, 5000, int64(i)+1)
				if out.Found() {
					found++
					sched += float64(out.FirstBug)
				}
			}
			if found > 0 {
				b.ReportMetric(sched/found, "schedules-to-bug")
			}
			b.ReportMetric(found/float64(b.N), "find-rate")
		})
	}
}

// BenchmarkRaceDetector measures the happens-before analysis cost per
// trace on a mid-size subject.
func BenchmarkRaceDetector(b *testing.B) {
	p := bench.MustGet("CS/twostage_20")
	res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewPOS(), Seed: 7})
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		races = len(race.Detect(res.Trace))
	}
	b.ReportMetric(float64(races), "races")
	b.ReportMetric(float64(res.Trace.Len()), "events")
}

// BenchmarkMinimize measures schedule minimization end to end on the
// reorder_10 failure.
func BenchmarkMinimize(b *testing.B) {
	p := bench.MustGet("CS/reorder_10")
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget: 1000, Seed: 13, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		b.Fatal("no failure to minimize")
	}
	fr := rep.Failures[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := minimize.Minimize(p.Name, p.Body, fr.Decisions, fr.Failure, minimize.Options{})
		if res == nil {
			b.Fatal("minimization lost the failure")
		}
		b.ReportMetric(float64(res.MinimalSwitches), "switches")
		b.ReportMetric(float64(res.Probes), "probes")
	}
}
