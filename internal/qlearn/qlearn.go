// Package qlearn implements the paper's "Reads-From Q-Learning" baseline
// (Section 5.5): a reinforcement-learning scheduler that leverages the same
// reads-from information as RFF inside a Q-Learning framework instead of a
// greybox fuzzing loop.
//
// The state of a partial execution is a commutative running hash of the
// reads-from pairs observed so far; an action is the abstract event chosen
// at a scheduling point. Visited (state, action) pairs receive a constant
// negative reward (as in Mukherjee et al., OOPSLA'20), pushing the sampler
// toward under-visited scheduling decisions. The Q-table persists across
// executions of a campaign.
package qlearn

import (
	"math/rand"

	"rff/internal/exec"
)

// Config tunes the learner; zero values select the defaults used in the
// evaluation.
type Config struct {
	// Alpha is the learning rate (default 0.5).
	Alpha float64
	// Gamma is the discount factor (default 0.7).
	Gamma float64
	// Epsilon is the exploration rate of the ε-greedy policy
	// (default 0.1).
	Epsilon float64
	// Reward is the constant reward applied to every visited
	// (state, action) pair (default -1).
	Reward float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Gamma == 0 {
		c.Gamma = 0.7
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Reward == 0 {
		c.Reward = -1
	}
	return c
}

// Scheduler is the Q-Learning-RF scheduler. It implements exec.Scheduler
// and keeps its Q-table across executions; build one per campaign.
//
// Actions are raw scheduling decisions — which thread runs next — as in
// the paper's "considering each scheduling decision to be an action";
// only the *state* abstraction uses reads-from information. This is what
// distinguishes the baseline from RFF, which acts on abstract events.
type Scheduler struct {
	cfg Config
	rng *rand.Rand

	// q maps state-hash -> thread action -> value.
	q map[uint64]map[exec.ThreadID]float64

	state uint64 // commutative hash of rf pairs seen so far this run
	// writeAbs resolves executed write event IDs to abstract events;
	// trace IDs are dense, so a reused slice beats a per-run map.
	writeAbs []exec.AbstractEvent

	// prev is the (state, action) awaiting its TD update once the next
	// state is known.
	prev struct {
		valid  bool
		state  uint64
		action exec.ThreadID
	}
}

// New returns a Q-Learning-RF scheduler.
func New(cfg Config) *Scheduler {
	return &Scheduler{
		cfg: cfg.withDefaults(),
		q:   make(map[uint64]map[exec.ThreadID]float64),
	}
}

// Name implements exec.Scheduler.
func (s *Scheduler) Name() string { return "QLearning-RF" }

// Begin implements exec.Scheduler.
func (s *Scheduler) Begin(seed int64) {
	s.rng = rand.New(rand.NewSource(seed))
	s.state = 0
	s.writeAbs = s.writeAbs[:0]
	s.prev.valid = false
}

// qval reads Q(s, a), defaulting unseen pairs to zero (optimistic relative
// to the negative rewards, so fresh actions are preferred).
func (s *Scheduler) qval(state uint64, a exec.ThreadID) float64 {
	return s.q[state][a]
}

// setq writes Q(s, a).
func (s *Scheduler) setq(state uint64, a exec.ThreadID, v float64) {
	m := s.q[state]
	if m == nil {
		m = make(map[exec.ThreadID]float64)
		s.q[state] = m
	}
	m[a] = v
}

// maxq returns max_a' Q(s, a') over the available actions.
func (s *Scheduler) maxq(state uint64, actions []exec.Pending) float64 {
	best := 0.0
	first := true
	for _, p := range actions {
		v := s.qval(state, p.Thread)
		if first || v > best {
			best = v
			first = false
		}
	}
	return best
}

// Pick implements exec.Scheduler: finish the pending TD update with the
// now-known successor state, then choose ε-greedily among enabled events.
func (s *Scheduler) Pick(v *exec.View) int {
	if s.prev.valid {
		old := s.qval(s.prev.state, s.prev.action)
		target := s.cfg.Reward + s.cfg.Gamma*s.maxq(s.state, v.Enabled)
		s.setq(s.prev.state, s.prev.action, old+s.cfg.Alpha*(target-old))
		s.prev.valid = false
	}

	var idx int
	if s.rng.Float64() < s.cfg.Epsilon {
		idx = s.rng.Intn(len(v.Enabled))
	} else {
		// Argmax with uniform tie-breaking.
		best := s.qval(s.state, v.Enabled[0].Thread)
		ties := []int{0}
		for i := 1; i < len(v.Enabled); i++ {
			val := s.qval(s.state, v.Enabled[i].Thread)
			switch {
			case val > best:
				best = val
				ties = ties[:0]
				ties = append(ties, i)
			case val == best:
				ties = append(ties, i)
			}
		}
		idx = ties[s.rng.Intn(len(ties))]
	}

	s.prev.valid = true
	s.prev.state = s.state
	s.prev.action = v.Enabled[idx].Thread
	return idx
}

// Executed implements exec.Scheduler: track reads-from pairs to advance the
// commutative state hash.
func (s *Scheduler) Executed(ev exec.Event) {
	if ev.Op.ActsAsWrite() {
		for len(s.writeAbs) <= int(ev.ID) {
			s.writeAbs = append(s.writeAbs, exec.AbstractEvent{})
		}
		s.writeAbs[ev.ID] = ev.Abstract()
	}
	if ev.Op.ReadsFrom() && ev.RF != 0 && ev.RF < len(s.writeAbs) {
		if writer := s.writeAbs[ev.RF]; !writer.IsZero() {
			pair := exec.RFPair{Write: writer, Read: ev.Abstract()}
			s.state ^= exec.HashRFPair(pair) // XOR: commutative, as required
		}
	}
}

// End implements exec.Scheduler: apply the final reward to the last action.
func (s *Scheduler) End(t *exec.Trace) {
	if s.prev.valid {
		old := s.qval(s.prev.state, s.prev.action)
		s.setq(s.prev.state, s.prev.action, old+s.cfg.Alpha*(s.cfg.Reward-old))
		s.prev.valid = false
	}
}

// States reports the number of distinct states in the Q-table (diagnostic).
func (s *Scheduler) States() int { return len(s.q) }
