package qlearn_test

import (
	"reflect"
	"testing"

	"rff/internal/exec"
	"rff/internal/qlearn"
	"rff/internal/sched"
)

func racer(t *exec.Thread) {
	x := t.NewVar("x", 0)
	a := t.Go("a", func(w *exec.Thread) { w.Write(x, 1) })
	b := t.Go("b", func(w *exec.Thread) {
		if w.Read(x) == 1 {
			w.Assert(false, "observed the write")
		}
	})
	t.JoinAll(a, b)
}

func TestQLearnDeterministicPerSeed(t *testing.T) {
	r1 := exec.Run("p", racer, exec.Config{Scheduler: qlearn.New(qlearn.Config{}), Seed: 5})
	r2 := exec.Run("p", racer, exec.Config{Scheduler: qlearn.New(qlearn.Config{}), Seed: 5})
	if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
		t.Fatal("fresh learners with equal seeds must coincide")
	}
}

func TestQLearnAccumulatesStates(t *testing.T) {
	s := qlearn.New(qlearn.Config{})
	for i := int64(0); i < 30; i++ {
		exec.Run("p", racer, exec.Config{Scheduler: s, Seed: i})
	}
	if s.States() < 2 {
		t.Fatalf("Q-table should accumulate states across runs, got %d", s.States())
	}
}

func TestQLearnDivergesFromVisitedSchedules(t *testing.T) {
	// The constant negative reward must push the learner to new behavior:
	// across repeated runs it should find the bug of a simple race at
	// least as reliably as a blind walk.
	s := qlearn.New(qlearn.Config{})
	found := false
	for i := int64(0); i < 100 && !found; i++ {
		res := exec.Run("p", racer, exec.Config{Scheduler: s, Seed: i})
		found = res.Buggy()
	}
	if !found {
		t.Fatal("Q-Learning-RF missed a trivial race in 100 runs")
	}
}

func TestQLearnHandlesLocksAndConds(t *testing.T) {
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		c := t.NewVar("c", 0)
		mk := func(w *exec.Thread) {
			w.Lock(m)
			w.Add(c, 1)
			w.Unlock(m)
		}
		a, b := t.Go("a", mk), t.Go("b", mk)
		t.JoinAll(a, b)
		t.Assert(t.Read(c) == 2, "locked counter")
	}
	s := qlearn.New(qlearn.Config{})
	for i := int64(0); i < 50; i++ {
		res := exec.Run("p", prog, exec.Config{Scheduler: s, Seed: i})
		if res.Buggy() {
			t.Fatalf("seed %d: correct program failed under Q-Learning: %v", i, res.Failure)
		}
	}
}

func TestQLearnComparableToPOSOnEasyBug(t *testing.T) {
	// Sanity: both find the easy bug; neither hangs.
	countQL, countPOS := 0, 0
	ql := qlearn.New(qlearn.Config{})
	pos := sched.NewPOS()
	for i := int64(0); i < 60; i++ {
		if exec.Run("p", racer, exec.Config{Scheduler: ql, Seed: i}).Buggy() {
			countQL++
		}
		if exec.Run("p", racer, exec.Config{Scheduler: pos, Seed: i}).Buggy() {
			countPOS++
		}
	}
	if countQL == 0 || countPOS == 0 {
		t.Fatalf("easy bug missed entirely: QL=%d POS=%d", countQL, countPOS)
	}
}
