package conformance

import (
	"reflect"
	"testing"
)

// TestCheckpoints pins the sampling-point schedule for the budget edge
// cases the coverage curves must survive: the degenerate budgets 0 and
// 1, a non-power-of-two budget, and an exact power of two (which must
// not be emitted twice).
func TestCheckpoints(t *testing.T) {
	cases := []struct {
		budget int
		want   []int
	}{
		{0, []int{0}},
		{1, []int{1}},
		{2, []int{1, 2}},
		{7, []int{1, 2, 4, 7}},
		{8, []int{1, 2, 4, 8}},
		{300, []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 300}},
	}
	for _, c := range cases {
		if got := Checkpoints(c.budget); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Checkpoints(%d) = %v, want %v", c.budget, got, c.want)
		}
	}
}

// TestCheckpointsMonotone: every schedule is strictly increasing and
// ends exactly at the budget, for a sweep of budgets.
func TestCheckpointsMonotone(t *testing.T) {
	for budget := 1; budget <= 1024; budget++ {
		cp := Checkpoints(budget)
		if cp[len(cp)-1] != budget {
			t.Fatalf("Checkpoints(%d) ends at %d", budget, cp[len(cp)-1])
		}
		for i := 1; i < len(cp); i++ {
			if cp[i] <= cp[i-1] {
				t.Fatalf("Checkpoints(%d) not strictly increasing: %v", budget, cp)
			}
		}
	}
}

// TestCoverageAt pins the fold of first-cover times into fractions.
func TestCoverageAt(t *testing.T) {
	cp := []int{1, 2, 4, 7}
	covers := []int{1, 3, 3, 7}

	got := CoverageAt(cp, covers, 8)
	want := []float64{1.0 / 8, 1.0 / 8, 3.0 / 8, 4.0 / 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CoverageAt = %v, want %v", got, want)
	}

	// Empty ground truth: all zeros — nothing to cover, no credit.
	if got := CoverageAt(cp, nil, 0); !reflect.DeepEqual(got, []float64{0, 0, 0, 0}) {
		t.Fatalf("CoverageAt with empty GT = %v, want zeros", got)
	}
	// Even observed covers against an empty GT stay zero (the covers
	// would be violations, not coverage).
	if got := CoverageAt(cp, covers, 0); !reflect.DeepEqual(got, []float64{0, 0, 0, 0}) {
		t.Fatalf("CoverageAt(covers, gt=0) = %v, want zeros", got)
	}

	// No covers at all: zeros of the right length.
	if got := CoverageAt(cp, nil, 5); !reflect.DeepEqual(got, []float64{0, 0, 0, 0}) {
		t.Fatalf("CoverageAt with no covers = %v, want zeros", got)
	}

	// Empty checkpoint list (budget never filled): empty, not nil panic.
	if got := CoverageAt(nil, covers, 8); len(got) != 0 {
		t.Fatalf("CoverageAt with no checkpoints = %v, want empty", got)
	}

	// Full coverage before the first checkpoint.
	if got := CoverageAt([]int{1}, []int{1, 1}, 2); got[0] != 1.0 {
		t.Fatalf("full early coverage = %v, want [1]", got)
	}
}

// TestNewTTFB pins the shared TTFB summary schema.
func TestNewTTFB(t *testing.T) {
	if got := NewTTFB(nil); got != (TTFB{}) {
		t.Fatalf("NewTTFB(nil) = %+v, want zero", got)
	}
	if got := NewTTFB(nil).String(); got != "-" {
		t.Fatalf("zero TTFB renders %q, want \"-\"", got)
	}
	got := NewTTFB([]float64{10, 30, 20})
	if got.Samples != 3 || got.Mean != 20 || got.Median != 20 {
		t.Fatalf("NewTTFB = %+v, want {3 20 20}", got)
	}
	if got.String() != "20.0" {
		t.Fatalf("TTFB renders %q", got.String())
	}
	even := NewTTFB([]float64{10, 20})
	if even.Median != 15 {
		t.Fatalf("even-sample median = %v, want 15", even.Median)
	}
}
