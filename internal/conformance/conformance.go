// Package conformance is the differential correctness backstop for every
// scheduling strategy in the registry: it generates small concurrent
// programs (internal/progen), enumerates each program's complete
// behavior set with the systematic explorer — every reachable reads-from
// pair, failure, and final state — and then runs every strategy spec
// against the program, checking three invariants:
//
//   - Soundness: anything a randomized strategy observes (rf-pairs,
//     failures, final states) must be inside the enumerated set. Every
//     strategy execution is a leaf of the same scheduling decision tree,
//     so on a completely enumerated program this inclusion is exact, not
//     statistical.
//
//   - No false bugs: every failure a strategy reports must replay
//     deterministically from its serialized Artifact decision sequence,
//     reproducing the same failure kind, message, location, and thread.
//
//   - Convergence telemetry: the fraction of ground-truth rf-pairs each
//     strategy covers per schedule budget, logged through
//     internal/telemetry and summarized in the report — the
//     coverage-vs-budget curves EXPERIMENTS.md interprets.
//
// Candidate programs whose decision tree does not enumerate within the
// ground-truth budget are skipped deterministically (the generator
// stream continues), so a run checks exactly Options.Programs programs
// and remains a pure function of (seed, options).
package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/fleet"
	"rff/internal/progen"
	"rff/internal/sched"
	"rff/internal/strategy"
	"rff/internal/systematic"
	"rff/internal/telemetry"
)

// Options configures a conformance run. The zero value of every field
// selects the default noted on it.
type Options struct {
	// Programs is the number of generated programs to check (default 50).
	Programs int
	// Seed drives the program generator and every trial seed.
	Seed int64
	// Specs are the strategy specs to check (default: every registered
	// strategy, i.e. strategy.Names()).
	Specs []string
	// Trials per (program, spec) for randomized strategies; deterministic
	// ones always run once (default 1).
	Trials int
	// Budget is the schedule budget per trial (default 300).
	Budget int
	// GTBudget caps the ground-truth enumeration per program; programs
	// that do not enumerate completely within it are skipped
	// (default 60000).
	GTBudget int
	// MaxSteps bounds every execution, ground truth and trials alike
	// (default 4096).
	MaxSteps int
	// Workers bounds the fleet pool running a program's (spec, trial)
	// cells (default 1; results are identical at any worker count).
	Workers int
	// MaxCandidates caps generator candidates consumed, guarding against
	// a pathological skip rate (default 6x Programs).
	MaxCandidates int
	// Gen bounds the program grammar (see progen.Options).
	Gen progen.Options
	// Grammar names the progen grammar to draw from ("core", "chan",
	// "sync", "all"; default "core"). A non-empty value overrides
	// Gen.Features.
	Grammar string
	// BudgetPolicy, when non-empty, replaces the fixed per-cell budget
	// with an adaptive epoch allocator (see internal/budget): each
	// program's (spec, trial) cells share a pool of Budget x cells
	// executions, reallocated every epoch by the named policy. Results
	// stay a pure function of (seed, options) at any worker count.
	BudgetPolicy string
	// BudgetEpochs is the number of allocation epochs under BudgetPolicy
	// (default budget.DefaultEpochs).
	BudgetEpochs int
	// Telemetry, if non-nil, receives conformance metrics and events.
	Telemetry telemetry.Sink
	// Progress, if non-nil, is called after each checked program.
	Progress func(done, total int)
}

func (o *Options) fill() {
	if o.Programs <= 0 {
		o.Programs = 50
	}
	if len(o.Specs) == 0 {
		o.Specs = strategy.Names()
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Budget <= 0 {
		o.Budget = 300
	}
	if o.GTBudget <= 0 {
		o.GTBudget = 60000
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4096
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 6 * o.Programs
	}
	if o.Grammar != "" {
		f, err := progen.ParseGrammar(o.Grammar)
		if err != nil {
			panic(fmt.Sprintf("conformance: %v", err))
		}
		o.Gen.Features = f
	}
	if o.BudgetPolicy == "" {
		o.BudgetEpochs = 0
	} else {
		bc := budget.Config{Policy: o.BudgetPolicy, Epochs: o.BudgetEpochs}
		if err := bc.Validate(); err != nil {
			panic(fmt.Sprintf("conformance: %v", err))
		}
		if o.BudgetEpochs <= 0 {
			o.BudgetEpochs = budget.DefaultEpochs
		}
	}
}

// behaviorSet is one program's enumerated ground truth.
type behaviorSet struct {
	pairs     map[string]struct{} // RFPair strings
	failures  map[string]struct{} // failureKey strings
	finals    map[string]struct{} // finalKey strings
	execs     int
	truncated bool
}

func newBehaviorSet() *behaviorSet {
	return &behaviorSet{
		pairs:    make(map[string]struct{}),
		failures: make(map[string]struct{}),
		finals:   make(map[string]struct{}),
	}
}

// add folds one enumerated execution into the set.
func (b *behaviorSet) add(res *exec.Result) {
	b.execs++
	for _, p := range res.Trace.RFPairs() {
		b.pairs[p.String()] = struct{}{}
	}
	switch {
	case res.Failure != nil:
		b.failures[failureKey(res.Failure)] = struct{}{}
	case res.Truncated:
		b.truncated = true
	default:
		b.finals[finalKey(res.Trace)] = struct{}{}
	}
}

// failureKey canonicalizes a failure for set membership. Every component
// is deterministic for a fixed schedule: kinds and locations trivially,
// messages because assert messages are rendered from the AST and
// deadlock messages from the blocked threads' deterministic state.
func failureKey(f *exec.Failure) string {
	return fmt.Sprintf("%s|t%d|%s|%s", f.Kind, f.Thread, f.Loc, f.Msg)
}

// finalKey canonicalizes a terminated execution's final state: the
// values of main's sequential post-join reads (progen emits one per
// variable at loc "main.final.<i>").
func finalKey(tr *exec.Trace) string {
	var b strings.Builder
	for _, e := range tr.Events {
		if e.Op.IsRead() && strings.HasPrefix(e.Loc, "main.final.") {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%d", e.VarStr, e.Val)
		}
	}
	return b.String()
}

// Violation is one invariant breach.
type Violation struct {
	// Program and Tool locate the breach; Tool is empty for generator-
	// level breaches.
	Program string
	Tool    string
	// Kind is "rf-pair", "failure", "final-state", "replay", or
	// "trial-error".
	Kind string
	// Detail describes the offending behavior.
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", v.Program, v.Tool, v.Kind, v.Detail)
}

// observedFailure is one failure a trial reported, with everything the
// replay check needs.
type observedFailure struct {
	failure   exec.Failure
	decisions []exec.ThreadID
	seed      int64
	execution int
}

// collector is the per-(program, spec, trial) result observer: it
// checks soundness online and records coverage and failures.
type collector struct {
	gt         *behaviorSet
	execs      int
	seen       map[string]struct{} // all distinct pairs observed
	coverTimes []int               // first-cover execution index, GT pairs only
	violations []Violation
	failures   []observedFailure
	program    string
	tool       string
}

func newCollector(gt *behaviorSet, program, tool string) *collector {
	return &collector{gt: gt, seen: make(map[string]struct{}), program: program, tool: tool}
}

// observe implements campaign.ResultObserver. It must copy everything it
// keeps: the trace is recycled after it returns.
func (c *collector) observe(res *exec.Result) {
	c.execs++
	for _, p := range res.Trace.RFPairs() {
		key := p.String()
		if _, dup := c.seen[key]; dup {
			continue
		}
		c.seen[key] = struct{}{}
		if _, ok := c.gt.pairs[key]; ok {
			c.coverTimes = append(c.coverTimes, c.execs)
		} else {
			c.violations = append(c.violations, Violation{
				Program: c.program, Tool: c.tool, Kind: "rf-pair",
				Detail: fmt.Sprintf("observed %s outside the enumerated set", key),
			})
		}
	}
	switch {
	case res.Failure != nil:
		key := failureKey(res.Failure)
		if _, ok := c.gt.failures[key]; !ok {
			c.violations = append(c.violations, Violation{
				Program: c.program, Tool: c.tool, Kind: "failure",
				Detail: fmt.Sprintf("observed failure %q outside the enumerated set", key),
			})
		}
		c.failures = append(c.failures, observedFailure{
			failure:   *res.Failure,
			decisions: res.Trace.ThreadOrder(),
			seed:      res.Seed,
			execution: c.execs,
		})
	case res.Truncated:
		// A truncated run is a tree-path prefix: its rf-pairs are inside
		// the enumerated set (checked above), but it reaches no final
		// state to check.
	default:
		key := finalKey(res.Trace)
		if _, ok := c.gt.finals[key]; !ok {
			c.violations = append(c.violations, Violation{
				Program: c.program, Tool: c.tool, Kind: "final-state",
				Detail: fmt.Sprintf("reached final state {%s} outside the enumerated set", key),
			})
		}
	}
}

// replayCheck verifies the no-false-bugs invariant for every failure the
// trial observed: serialize a crash artifact, decode it back, replay its
// decision sequence, and demand the identical failure.
func (c *collector) replayCheck(body exec.Program, maxSteps int) (replays, failed int) {
	for _, of := range c.failures {
		replays++
		f := of.failure
		art := core.NewArtifact(c.program, core.FailureRecord{
			Seed:      of.seed,
			Execution: of.execution,
			Failure:   &f,
			Decisions: of.decisions,
		})
		data, err := json.Marshal(art)
		if err != nil {
			failed++
			c.violations = append(c.violations, Violation{
				Program: c.program, Tool: c.tool, Kind: "replay",
				Detail: fmt.Sprintf("artifact marshal failed: %v", err),
			})
			continue
		}
		art2, err := core.DecodeArtifact(data)
		if err != nil {
			failed++
			c.violations = append(c.violations, Violation{
				Program: c.program, Tool: c.tool, Kind: "replay",
				Detail: fmt.Sprintf("artifact round-trip failed: %v", err),
			})
			continue
		}
		res := exec.Run(c.program, body, exec.Config{
			Scheduler: sched.NewReplay(art2.ThreadOrder()),
			MaxSteps:  maxSteps,
		})
		if res.Failure == nil || failureKey(res.Failure) != failureKey(&f) {
			failed++
			got := "no failure"
			if res.Failure != nil {
				got = failureKey(res.Failure)
			}
			c.violations = append(c.violations, Violation{
				Program: c.program, Tool: c.tool, Kind: "replay",
				Detail: fmt.Sprintf("decisions replayed to %q, want %q", got, failureKey(&f)),
			})
		}
	}
	return replays, failed
}

// cellResult is one (spec, trial) cell's contribution to the report.
type cellResult struct {
	tool           string
	executions     int
	foundBug       bool
	replays        int
	replayFailures int
	violations     []Violation
	// coverage[i] is the fraction (0..1) of ground-truth rf-pairs
	// covered by checkpoint i.
	coverage []float64
	// firstBug is the 1-based execution index of the cell's first
	// observed failure; 0 if the cell found no bug.
	firstBug int
	// allocated is the execution budget the adaptive allocator granted
	// the cell; 0 under fixed budgets.
	allocated int64
}

// Checkpoints returns the coverage sampling points for a budget: powers
// of two up to the budget, then the budget itself. A non-positive
// budget yields the single checkpoint [budget].
func Checkpoints(budget int) []int {
	var cp []int
	for b := 1; b < budget; b *= 2 {
		cp = append(cp, b)
	}
	return append(cp, budget)
}

// CoverageAt folds first-cover execution indexes into per-checkpoint
// covered fractions (0..1). An empty ground truth yields all zeros:
// there is nothing to cover, so no tool gets credit.
func CoverageAt(cp []int, coverTimes []int, gtPairs int) []float64 {
	out := make([]float64, len(cp))
	if gtPairs == 0 {
		return out
	}
	for i, bound := range cp {
		n := 0
		for _, t := range coverTimes {
			if t <= bound {
				n++
			}
		}
		out[i] = float64(n) / float64(gtPairs)
	}
	return out
}

// EnumeratePairs enumerates a program's complete rf-pair ground truth
// with the systematic explorer. ok is false when the decision tree did
// not enumerate completely within gtBudget (or an execution truncated
// at maxSteps) — such programs must be skipped, not compared against.
func EnumeratePairs(ctx context.Context, name string, body exec.Program, gtBudget, maxSteps int) (pairs map[string]struct{}, ok bool) {
	gt := newBehaviorSet()
	gtRep := systematic.ExploreContext(ctx, name, body, systematic.ExploreOptions{
		MaxExecutions: gtBudget,
		MaxSteps:      maxSteps,
		OnExecution:   gt.add,
	})
	if !gtRep.Complete || gt.truncated {
		return nil, false
	}
	return gt.pairs, true
}

// firstBugOf extracts a collector's first-bug execution index (0 when
// the cell observed no failure).
func firstBugOf(col *collector) int {
	if len(col.failures) == 0 {
		return 0
	}
	return col.failures[0].execution
}

// toolSlot is one resolved strategy spec of a run.
type toolSlot struct {
	spec   string
	name   string
	det    bool
	trials int
}

// progCellID addresses one (spec, trial) cell of one program.
type progCellID struct{ slot, trial int }

// runProgramBudgeted runs one program's (spec, trial) cells under an
// adaptive epoch allocator instead of fixed per-cell budgets. The
// cells share a pool of Budget x len(ids) executions; each epoch the
// policy reallocates the epoch's slice by observed reward (marginal
// ground-truth rf-pair coverage and first-bug events). Collectors
// persist across epochs, so coverage first-cover indexes remain
// cumulative per cell and the returned cellResults slot into the same
// merge loop as the fixed path. Cells stop (and release their budget)
// on their first failure, infrastructure error, or recovered panic.
//
// The allocator and every epoch's trial seeds derive from (Seed,
// program, cell) alone, so the result is a pure function of (seed,
// options) at any worker count.
func runProgramBudgeted(ctx context.Context, opts Options, cp []int, slots []toolSlot, ids []progCellID, bp bench.Program, gt *behaviorSet) []fleet.Result[cellResult] {
	cols := make([]*collector, len(ids))
	for i, id := range ids {
		cols[i] = newCollector(gt, bp.Name, slots[id.slot].name)
	}
	done := make([]bool, len(ids))
	cellErr := make([]error, len(ids))
	bugSeen := make([]bool, len(ids))
	prevExecs := make([]int, len(ids))
	prevCovers := make([]int, len(ids))

	// fill() validated the config; New cannot fail here.
	allocSeed := campaign.TrialSeed(opts.Seed, "budget-allocator", bp.Name, 0)
	alloc, err := budget.New(len(ids), allocSeed, budget.Config{
		Policy: opts.BudgetPolicy,
		Epochs: opts.BudgetEpochs,
	})
	if err != nil {
		panic(fmt.Sprintf("conformance: %v", err))
	}
	epochs := alloc.Config().Epochs
	total := int64(opts.Budget) * int64(len(ids))
	basePool := total / int64(epochs)
	extra := total % int64(epochs)

	for e := 0; e < epochs && ctx.Err() == nil && alloc.Active() > 0; e++ {
		pool := basePool
		if int64(e) < extra {
			pool++
		}
		shares := alloc.Allocate(int(pool))

		type job struct{ cell, share int }
		var jobs []job
		for i, s := range shares {
			if s > 0 {
				jobs = append(jobs, job{i, s})
			}
		}
		cells := make([]fleet.Cell[campaign.Outcome], len(jobs))
		for k, j := range jobs {
			j := j
			id := ids[j.cell]
			slot := slots[id.slot]
			col := cols[j.cell]
			cells[k] = fleet.Cell[campaign.Outcome]{
				ID:   fmt.Sprintf("%s/%s[%d]@e%d", slot.name, bp.Name, id.trial, e),
				Spec: slot.name,
				Run: func(cctx context.Context, _ *fleet.Scratch) (campaign.Outcome, error) {
					tool, err := strategy.Resolve(slot.spec, strategy.Config{Observer: col.observe})
					if err != nil {
						return campaign.Outcome{}, err
					}
					seed := budget.EpochSeed(campaign.TrialSeed(opts.Seed, slot.name, bp.Name, id.trial), e)
					return tool.Run(cctx, bp, j.share, opts.MaxSteps, seed), nil
				},
			}
		}
		res := fleet.Run(ctx, cells, fleet.Options{Workers: opts.Workers})

		// Epoch barrier: fold outcomes and feed the allocator, both in
		// deterministic cell order.
		for k, r := range res {
			i := jobs[k].cell
			if r.Err != nil {
				cellErr[i] = r.Err
				done[i] = true
				continue
			}
			if out := r.Value; out.Errored() {
				cols[i].violations = append(cols[i].violations, Violation{
					Program: bp.Name, Tool: cols[i].tool, Kind: "trial-error", Detail: out.Err,
				})
				done[i] = true
			}
		}
		for i := range ids {
			if alloc.Done(i) {
				continue
			}
			col := cols[i]
			first := false
			if !bugSeen[i] && len(col.failures) > 0 {
				bugSeen[i] = true
				first = true
				done[i] = true
			}
			alloc.Observe(i, budget.Reward{
				Executions: col.execs - prevExecs[i],
				NewPairs:   len(col.coverTimes) - prevCovers[i],
				FirstBug:   first,
			})
			prevExecs[i] = col.execs
			prevCovers[i] = len(col.coverTimes)
			if done[i] {
				alloc.MarkDone(i)
			}
		}
	}

	states := alloc.Cells()
	out := make([]fleet.Result[cellResult], len(ids))
	for i := range ids {
		if cellErr[i] != nil {
			out[i] = fleet.Result[cellResult]{Err: cellErr[i]}
			continue
		}
		col := cols[i]
		replays, failedReplays := col.replayCheck(bp.Body, opts.MaxSteps)
		out[i] = fleet.Result[cellResult]{Value: cellResult{
			tool:           col.tool,
			executions:     col.execs,
			foundBug:       len(col.failures) > 0,
			replays:        replays,
			replayFailures: failedReplays,
			violations:     col.violations,
			coverage:       CoverageAt(cp, col.coverTimes, len(gt.pairs)),
			firstBug:       firstBugOf(col),
			allocated:      states[i].Allocated,
		}}
	}
	return out
}

// Run executes a conformance run to completion.
func Run(opts Options) *Report { return RunContext(context.Background(), opts) }

// RunContext executes a conformance run under ctx. Cancellation stops
// the run between executions; the returned report covers the programs
// completed so far and records the abort. For a fixed (seed, options)
// an uninterrupted run's report is bit-identical across repetitions and
// worker counts.
func RunContext(ctx context.Context, opts Options) *Report {
	opts.fill()
	rep := &Report{
		Seed:         opts.Seed,
		Grammar:      progen.GrammarName(opts.Gen.Features),
		Budget:       opts.Budget,
		GTBudget:     opts.GTBudget,
		Trials:       opts.Trials,
		BudgetPolicy: opts.BudgetPolicy,
		BudgetEpochs: opts.BudgetEpochs,
		Checkpoints:  Checkpoints(opts.Budget),
	}

	// Resolve every spec once up front: validates them, fixes the
	// canonical tool-name order of the report, and fails fast on an
	// unknown spec.
	var slots []toolSlot
	for _, spec := range opts.Specs {
		t, err := strategy.Resolve(spec, strategy.Config{})
		if err != nil {
			rep.Err = err.Error()
			return rep
		}
		trials := opts.Trials
		if t.Deterministic() {
			trials = 1
		}
		slots = append(slots, toolSlot{spec: spec, name: t.Name(), det: t.Deterministic(), trials: trials})
		rep.Tools = append(rep.Tools, ToolReport{
			Tool:     t.Name(),
			Spec:     spec,
			Coverage: make([]float64, len(rep.Checkpoints)),
		})
	}

	gen := progen.NewGenerator(opts.Seed, opts.Gen)
	coverSamples := make([]int, len(slots))    // per-tool (program, trial) sample counts
	ttfbTimes := make([][]float64, len(slots)) // per-tool first-bug execution indexes

	for rep.Programs < opts.Programs {
		if ctx.Err() != nil {
			rep.Err = fmt.Sprintf("aborted after %d programs: %v", rep.Programs, ctx.Err())
			break
		}
		if rep.Programs+rep.Skipped >= opts.MaxCandidates {
			rep.Err = fmt.Sprintf("gave up after %d candidates (%d checked, %d skipped): decision trees too wide for the ground-truth budget %d",
				opts.MaxCandidates, rep.Programs, rep.Skipped, opts.GTBudget)
			break
		}
		p := gen.Next()
		bp := p.Bench()

		// Ground truth: enumerate the complete behavior set.
		gt := newBehaviorSet()
		gtRep := systematic.ExploreContext(ctx, bp.Name, bp.Body, systematic.ExploreOptions{
			MaxExecutions: opts.GTBudget,
			MaxSteps:      opts.MaxSteps,
			OnExecution:   gt.add,
		})
		if !gtRep.Complete || gt.truncated {
			rep.Skipped++
			if t := opts.Telemetry; t != nil {
				t.Add(telemetry.MConformanceSkipped, 1)
			}
			continue
		}
		rep.GTExecutions += int64(gt.execs)
		rep.GTPairs += int64(len(gt.pairs))
		rep.GTFailures += int64(len(gt.failures))
		rep.GTFinals += int64(len(gt.finals))

		// Every (spec, trial) cell, on the fleet pool; merge in cell
		// order keeps the report deterministic at any worker count.
		var ids []progCellID
		for si, slot := range slots {
			for tr := 0; tr < slot.trials; tr++ {
				ids = append(ids, progCellID{si, tr})
			}
		}
		var results []fleet.Result[cellResult]
		if opts.BudgetPolicy != "" {
			results = runProgramBudgeted(ctx, opts, rep.Checkpoints, slots, ids, bp, gt)
		} else {
			var cells []fleet.Cell[cellResult]
			for _, id := range ids {
				id := id
				slot := slots[id.slot]
				cells = append(cells, fleet.Cell[cellResult]{
					ID:   fmt.Sprintf("%s/%s[%d]", slot.name, bp.Name, id.trial),
					Spec: slot.name,
					Run: func(cctx context.Context, _ *fleet.Scratch) (cellResult, error) {
						col := newCollector(gt, bp.Name, slot.name)
						tool, err := strategy.Resolve(slot.spec, strategy.Config{Observer: col.observe})
						if err != nil {
							return cellResult{}, err
						}
						seed := campaign.TrialSeed(opts.Seed, slot.name, bp.Name, id.trial)
						out := tool.Run(cctx, bp, opts.Budget, opts.MaxSteps, seed)
						if out.Errored() {
							col.violations = append(col.violations, Violation{
								Program: bp.Name, Tool: slot.name, Kind: "trial-error", Detail: out.Err,
							})
						}
						replays, failedReplays := col.replayCheck(bp.Body, opts.MaxSteps)
						return cellResult{
							tool:           slot.name,
							executions:     col.execs,
							foundBug:       len(col.failures) > 0,
							replays:        replays,
							replayFailures: failedReplays,
							violations:     col.violations,
							coverage:       CoverageAt(rep.Checkpoints, col.coverTimes, len(gt.pairs)),
							firstBug:       firstBugOf(col),
						}, nil
					},
				})
			}
			results = fleet.Run(ctx, cells, fleet.Options{Workers: opts.Workers})
		}

		// Merge barrier: fold cells into the report in deterministic
		// cell order.
		for i, r := range results {
			tr := &rep.Tools[ids[i].slot]
			if r.Err != nil {
				rep.Violations = append(rep.Violations, Violation{
					Program: bp.Name, Tool: slots[ids[i].slot].name, Kind: "trial-error",
					Detail: r.Err.Error(),
				})
				continue
			}
			c := r.Value
			tr.TrialsRun++
			tr.Executions += int64(c.executions)
			if c.foundBug {
				tr.BugsFound++
			}
			tr.Replays += c.replays
			tr.ReplayFailures += c.replayFailures
			tr.Allocated += c.allocated
			if c.firstBug > 0 {
				ttfbTimes[ids[i].slot] = append(ttfbTimes[ids[i].slot], float64(c.firstBug))
			}
			rep.Violations = append(rep.Violations, c.violations...)
			for j, f := range c.coverage {
				tr.Coverage[j] += f
			}
			coverSamples[ids[i].slot]++
			if t := opts.Telemetry; t != nil {
				lbl := telemetry.L("tool", c.tool)
				if n := len(c.violations); n > 0 {
					t.Add(telemetry.MConformanceViolations, int64(n), lbl)
				}
				if c.replays > 0 {
					t.Add(telemetry.MConformanceReplays, int64(c.replays), lbl)
				}
				if c.replayFailures > 0 {
					t.Add(telemetry.MConformanceReplayFailures, int64(c.replayFailures), lbl)
				}
				t.Observe(telemetry.MConformanceCoverage, int64(c.coverage[len(c.coverage)-1]*100), lbl)
			}
		}

		rep.Programs++
		if t := opts.Telemetry; t != nil {
			t.Add(telemetry.MConformancePrograms, 1)
			t.Emit(telemetry.EvConformanceProgram, telemetry.Fields{
				"program":     bp.Name,
				"threads":     len(p.Threads),
				"gt_execs":    gt.execs,
				"gt_pairs":    len(gt.pairs),
				"gt_failures": len(gt.failures),
				"gt_finals":   len(gt.finals),
			})
		}
		if opts.Progress != nil {
			opts.Progress(rep.Programs, opts.Programs)
		}
	}

	// Normalize coverage sums into means, and fold first-bug times into
	// the shared TTFB summary.
	for si := range rep.Tools {
		if n := coverSamples[si]; n > 0 {
			for j := range rep.Tools[si].Coverage {
				rep.Tools[si].Coverage[j] = rep.Tools[si].Coverage[j] / float64(n) * 100
			}
		}
		rep.Tools[si].TTFB = NewTTFB(ttfbTimes[si])
	}
	if t := opts.Telemetry; t != nil {
		for _, v := range rep.Violations {
			t.Emit(telemetry.EvConformanceViolation, telemetry.Fields{
				"program": v.Program,
				"tool":    v.Tool,
				"kind":    v.Kind,
				"detail":  v.Detail,
			})
		}
	}
	return rep
}
