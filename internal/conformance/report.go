package conformance

import (
	"fmt"
	"strings"

	"rff/internal/stats"
)

// TTFB summarizes time-to-first-bug, in executions, across the cells
// that found a bug. It is the report schema shared by the conformance
// harness and the sched-eval budget-policy evaluation: both express
// "how fast does this configuration reach its first failure" as the
// same three numbers.
type TTFB struct {
	// Samples is the number of cells that found a bug; zero means the
	// Mean and Median carry no information.
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	Median  float64 `json:"median"`
}

// NewTTFB folds first-bug execution indexes into the shared summary.
func NewTTFB(times []float64) TTFB {
	if len(times) == 0 {
		return TTFB{}
	}
	return TTFB{Samples: len(times), Mean: stats.Mean(times), Median: stats.Median(times)}
}

// String renders the summary compactly ("median 41 (n=12)" or "-").
func (t TTFB) String() string {
	if t.Samples == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", t.Median)
}

// ToolReport aggregates one strategy's results across every checked
// program.
type ToolReport struct {
	// Tool is the canonical tool name ("RFF", "PCT3", ...); Spec the
	// spec string it was resolved from.
	Tool string `json:"tool"`
	Spec string `json:"spec"`
	// TrialsRun counts completed (program, trial) cells.
	TrialsRun int `json:"trials_run"`
	// Executions is the total schedules the tool ran.
	Executions int64 `json:"executions"`
	// BugsFound counts trials that observed at least one failure.
	BugsFound int `json:"bugs_found"`
	// Replays counts failure replay checks; ReplayFailures the ones
	// that did not reproduce the original failure.
	Replays        int `json:"replays"`
	ReplayFailures int `json:"replay_failures"`
	// Coverage[i] is the mean percentage of ground-truth rf-pairs
	// covered by Report.Checkpoints[i] schedules, averaged over every
	// (program, trial).
	Coverage []float64 `json:"coverage_pct"`
	// TTFB summarizes time-to-first-bug in executions across the cells
	// that found a bug.
	TTFB TTFB `json:"ttfb"`
	// Allocated is the total execution budget granted to this tool's
	// cells by the adaptive allocator; zero under fixed budgets.
	Allocated int64 `json:"allocated,omitempty"`
}

// Report is the outcome of one conformance run.
type Report struct {
	Seed int64 `json:"seed"`
	// Grammar names the progen grammar the run drew programs from.
	Grammar  string `json:"grammar,omitempty"`
	Budget   int    `json:"budget"`
	GTBudget int    `json:"gt_budget"`
	Trials   int    `json:"trials"`
	// BudgetPolicy names the adaptive allocation policy the run used;
	// empty means the classic fixed per-cell budget.
	BudgetPolicy string `json:"budget_policy,omitempty"`
	BudgetEpochs int    `json:"budget_epochs,omitempty"`
	// Programs counts checked programs; Skipped the candidates whose
	// decision tree did not enumerate within GTBudget.
	Programs int `json:"programs"`
	Skipped  int `json:"skipped"`
	// Ground-truth totals across the checked programs.
	GTExecutions int64 `json:"gt_executions"`
	GTPairs      int64 `json:"gt_pairs"`
	GTFailures   int64 `json:"gt_failures"`
	GTFinals     int64 `json:"gt_finals"`
	// Checkpoints are the schedule counts the coverage curves sample.
	Checkpoints []int `json:"checkpoints"`
	// Tools is one entry per spec, in spec order.
	Tools []ToolReport `json:"tools"`
	// Violations lists every invariant breach (empty on a clean run).
	Violations []Violation `json:"violations,omitempty"`
	// Err records an aborted run (cancellation, unknown spec, or a
	// pathological skip rate).
	Err string `json:"error,omitempty"`
}

// OK reports whether the run completed with zero violations.
func (r *Report) OK() bool { return r.Err == "" && len(r.Violations) == 0 }

// Summary renders the deterministic human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	grammar := r.Grammar
	if grammar == "" {
		grammar = "core"
	}
	fmt.Fprintf(&b, "conformance: seed %d, grammar %s, %d programs checked (%d skipped), budget %d, gt-budget %d\n",
		r.Seed, grammar, r.Programs, r.Skipped, r.Budget, r.GTBudget)
	if r.BudgetPolicy != "" {
		fmt.Fprintf(&b, "budget policy: %s (%d epochs)\n", r.BudgetPolicy, r.BudgetEpochs)
	}
	fmt.Fprintf(&b, "ground truth: %d executions enumerated; %d rf-pairs, %d failure behaviors, %d final states\n",
		r.GTExecutions, r.GTPairs, r.GTFailures, r.GTFinals)
	if len(r.Checkpoints) > 0 {
		fmt.Fprintf(&b, "%-18s %7s %9s %5s %8s %8s %9s %s\n",
			"tool", "trials", "execs", "bugs", "ttfb-med", "replays", "replay-ok", fmt.Sprintf("rf-coverage%%@%d", r.Checkpoints[len(r.Checkpoints)-1]))
	}
	for _, t := range r.Tools {
		cov := 0.0
		if len(t.Coverage) > 0 {
			cov = t.Coverage[len(t.Coverage)-1]
		}
		ok := t.Replays - t.ReplayFailures
		fmt.Fprintf(&b, "%-18s %7d %9d %5d %8s %8d %9d %.1f\n",
			t.Tool, t.TrialsRun, t.Executions, t.BugsFound, t.TTFB.String(), t.Replays, ok, cov)
	}
	switch {
	case len(r.Violations) == 0:
		b.WriteString("violations: none\n")
	default:
		fmt.Fprintf(&b, "violations: %d\n", len(r.Violations))
		max := len(r.Violations)
		if max > 20 {
			max = 20
		}
		for _, v := range r.Violations[:max] {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		if max < len(r.Violations) {
			fmt.Fprintf(&b, "  ... and %d more\n", len(r.Violations)-max)
		}
	}
	if r.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", r.Err)
	}
	return b.String()
}

// CoverageCurves renders the per-tool coverage-vs-budget series as
// aligned columns — the convergence view of the run.
func (r *Report) CoverageCurves() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "schedules")
	for _, cp := range r.Checkpoints {
		fmt.Fprintf(&b, " %7d", cp)
	}
	b.WriteByte('\n')
	for _, t := range r.Tools {
		fmt.Fprintf(&b, "%-18s", t.Tool)
		for _, c := range t.Coverage {
			fmt.Fprintf(&b, " %7.1f", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
