package conformance

import (
	"encoding/json"
	"reflect"
	"testing"

	"rff/internal/telemetry"
)

// smallOpts is the PR-time matrix: a handful of programs against every
// registered strategy, kept small enough for ordinary test runs. The
// nightly CI job runs the full 50-program matrix through rffbench.
func smallOpts(seed int64) Options {
	return Options{
		Programs: 4,
		Seed:     seed,
		Budget:   120,
		GTBudget: 60000,
	}
}

// TestSmallMatrix runs the in-test conformance matrix: every registered
// strategy against generated programs, demanding zero violations.
func TestSmallMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix is slow under -short")
	}
	rep := Run(smallOpts(1))
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	if rep.Programs != 4 {
		t.Fatalf("checked %d programs, want 4", rep.Programs)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("conformance violations:\n%s", rep.Summary())
	}
	if rep.GTPairs == 0 {
		t.Fatal("ground truth enumerated zero rf-pairs")
	}
	for _, tr := range rep.Tools {
		if tr.TrialsRun == 0 {
			t.Fatalf("tool %s ran no trials", tr.Tool)
		}
		if tr.Executions == 0 {
			t.Fatalf("tool %s observed no executions — observer not plumbed", tr.Tool)
		}
		if tr.ReplayFailures != 0 {
			t.Fatalf("tool %s: %d replay failures", tr.Tool, tr.ReplayFailures)
		}
		final := tr.Coverage[len(tr.Coverage)-1]
		if final <= 0 || final > 100 {
			t.Fatalf("tool %s: implausible final coverage %.1f%%", tr.Tool, final)
		}
	}
}

// TestDeterministicReport: identical (seed, options) runs produce
// byte-identical reports, and worker count does not change the result.
func TestDeterministicReport(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix is slow under -short")
	}
	opts := smallOpts(2)
	opts.Programs = 2
	a := Run(opts)
	b := Run(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs diverged:\n%s\nvs\n%s", mustJSON(a), mustJSON(b))
	}
	opts.Workers = 4
	c := Run(opts)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("worker count changed the report:\n%s\nvs\n%s", mustJSON(a), mustJSON(c))
	}
	if a.Summary() != b.Summary() {
		t.Fatal("summaries diverged between identical runs")
	}
}

// TestTelemetryCounters: the conformance metrics land in the sink.
func TestTelemetryCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix is slow under -short")
	}
	hub := telemetry.NewHub()
	opts := smallOpts(3)
	opts.Programs = 2
	opts.Telemetry = hub
	rep := Run(opts)
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	snap := hub.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == telemetry.MConformancePrograms {
			found = true
			if m.Value != int64(rep.Programs) {
				t.Fatalf("programs counter %d, report says %d", m.Value, rep.Programs)
			}
		}
	}
	if !found {
		t.Fatalf("no %s metric in snapshot", telemetry.MConformancePrograms)
	}
}

// TestUnknownSpecFails: a bad spec aborts the run with an error instead
// of panicking or silently passing.
func TestUnknownSpecFails(t *testing.T) {
	opts := smallOpts(1)
	opts.Specs = []string{"no-such-strategy"}
	rep := Run(opts)
	if rep.Err == "" {
		t.Fatal("unknown spec did not abort the run")
	}
	if rep.OK() {
		t.Fatal("aborted run reports OK")
	}
}

func mustJSON(v any) string {
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		panic(err)
	}
	return string(b)
}
