package conformance

import (
	"context"
	"reflect"
	"testing"

	"rff/internal/budget"
)

// budgetedSmallOpts mirrors smallOpts with an adaptive budget policy.
func budgetedSmallOpts(seed int64, policy string) Options {
	o := smallOpts(seed)
	o.Programs = 2
	o.BudgetPolicy = policy
	o.BudgetEpochs = 4
	return o
}

// TestBudgetedConformanceClean: a budgeted conformance run upholds the
// same invariants as the fixed-budget one — zero violations, every
// replay reproduces — and additionally accounts the allocated budget.
func TestBudgetedConformanceClean(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix is slow under -short")
	}
	rep := Run(budgetedSmallOpts(1, "ucb"))
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("budgeted conformance violations:\n%s", rep.Summary())
	}
	if rep.BudgetPolicy != "ucb" || rep.BudgetEpochs != 4 {
		t.Fatalf("report lost the budget config: %q/%d", rep.BudgetPolicy, rep.BudgetEpochs)
	}
	var allocated, execs int64
	for _, tr := range rep.Tools {
		if tr.TrialsRun == 0 {
			t.Fatalf("tool %s ran no trials", tr.Tool)
		}
		if tr.ReplayFailures != 0 {
			t.Fatalf("tool %s: %d replay failures", tr.Tool, tr.ReplayFailures)
		}
		allocated += tr.Allocated
		execs += tr.Executions
	}
	if allocated == 0 {
		t.Fatal("no tool reports an allocated budget")
	}
	if execs > allocated {
		t.Fatalf("executions %d exceed allocated budget %d", execs, allocated)
	}
}

// TestBudgetedConformanceDeterministic: a budgeted run is a pure
// function of (seed, options) — bit-identical on rerun and at any
// worker count — for every registered policy.
func TestBudgetedConformanceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix is slow under -short")
	}
	for _, policy := range budget.AdaptivePolicies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			opts := budgetedSmallOpts(2, policy)
			a := Run(opts)
			b := Run(opts)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("identical budgeted runs diverged:\n%s\nvs\n%s", mustJSON(a), mustJSON(b))
			}
			opts.Workers = 4
			c := Run(opts)
			if !reflect.DeepEqual(a, c) {
				t.Fatalf("worker count changed the budgeted report:\n%s\nvs\n%s", mustJSON(a), mustJSON(c))
			}
		})
	}
}

// TestBudgetedUniformTTFBSchemaShared: the fixed path populates the
// same TTFB field the budgeted path does, so sched-eval can read either
// report shape. Uses a seed whose programs contain reachable failures.
func TestBudgetedUniformTTFBSchemaShared(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance matrix is slow under -short")
	}
	fixed := Run(smallOpts(1))
	anyBug := false
	for _, tr := range fixed.Tools {
		if tr.BugsFound > 0 {
			anyBug = true
			if tr.TTFB.Samples == 0 {
				t.Fatalf("tool %s found %d bugs but reports no TTFB samples", tr.Tool, tr.BugsFound)
			}
			if tr.TTFB.Median <= 0 || tr.TTFB.Median > float64(fixed.Budget) {
				t.Fatalf("tool %s: implausible TTFB median %.1f", tr.Tool, tr.TTFB.Median)
			}
		} else if tr.TTFB.Samples != 0 {
			t.Fatalf("tool %s found no bugs but reports TTFB samples", tr.Tool)
		}
	}
	if !anyBug {
		t.Skip("seed 1 programs exposed no bugs; TTFB schema not exercised")
	}
}

// TestBudgetedInvalidPolicyPanics: fill() rejects an unknown policy
// loudly — entry points validate before calling Run.
func TestBudgetedInvalidPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid budget policy did not panic")
		}
	}()
	o := budgetedSmallOpts(1, "no-such-policy")
	_ = RunContext(context.Background(), o)
}
