package triage

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// ReportEntry is one cluster's row in the ranked triage report.
type ReportEntry struct {
	Rank    int     `json:"rank"`
	Cluster Cluster `json:"cluster"`
	// Replay is the command that reproduces the cluster's canonical
	// minimal artifact.
	Replay string `json:"replay"`
}

// Report is the ranked triage report: clusters ordered by
// novelty/frequency — rarely-hit clusters first (a bug every tool trips
// over constantly needs less attention than one a single tool found
// once), newest first within equal hit counts, cluster ID as the final
// total-order tiebreak.
type Report struct {
	// Clusters is the ranked cluster list.
	Clusters []ReportEntry `json:"clusters"`
	// Artifacts counts distinct artifacts ingested (dedup'd by content).
	Artifacts int `json:"artifacts"`
	// Skipped lists inputs that could not be triaged (unknown program,
	// non-reproducing failure), sorted.
	Skipped []string `json:"skipped,omitempty"`
}

// BuildReport ranks the triager's clusters. corpusDir, when non-empty,
// is the corpus root the replay commands reference; skipped lists
// untriageable inputs the caller accumulated during ingestion.
func BuildReport(t *Triager, corpusDir string, skipped []string) *Report {
	clusters := t.Clusters()
	sort.SliceStable(clusters, func(i, j int) bool {
		a, b := clusters[i], clusters[j]
		if a.Hits != b.Hits {
			return a.Hits < b.Hits
		}
		if a.FirstSeen != b.FirstSeen {
			return a.FirstSeen > b.FirstSeen
		}
		return a.ID < b.ID
	})
	rep := &Report{Skipped: append([]string(nil), skipped...)}
	sort.Strings(rep.Skipped)
	t.mu.Lock()
	rep.Artifacts = len(t.members)
	t.mu.Unlock()
	for i, c := range clusters {
		replay := fmt.Sprintf("rff replay %s", filepath.Join(corpusDir, "artifacts", c.ID+".json"))
		if corpusDir == "" {
			replay = fmt.Sprintf("rff replay artifacts/%s.json", c.ID)
		}
		rep.Clusters = append(rep.Clusters, ReportEntry{Rank: i + 1, Cluster: *c, Replay: replay})
	}
	return rep
}

// Encode renders the canonical report bytes (what CI diffs for
// byte-identity).
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("triage report: %w", err)
	}
	return append(data, '\n'), nil
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "triage: %d artifacts → %d clusters", r.Artifacts, len(r.Clusters))
	if len(r.Skipped) > 0 {
		fmt.Fprintf(w, " (%d skipped)", len(r.Skipped))
	}
	fmt.Fprintln(w)
	for _, e := range r.Clusters {
		c := e.Cluster
		tools := make([]string, 0, len(c.HitsByTool))
		for tool := range c.HitsByTool {
			tools = append(tools, tool)
		}
		sort.Strings(tools)
		parts := make([]string, len(tools))
		for i, tool := range tools {
			parts[i] = fmt.Sprintf("%s×%d", tool, c.HitsByTool[tool])
		}
		fmt.Fprintf(w, "#%d %s  %s  %s\n", e.Rank, c.ID, c.Signature.Program, c.Signature.Kind)
		detail := c.Signature.Msg
		if detail == "" {
			detail = strings.Join(c.Signature.Locs, " ")
		}
		fmt.Fprintf(w, "    %s | threads=%d preemptions=%d switches %d→%d\n",
			detail, c.Signature.Threads, c.Preemptions, c.OriginalSwitches, c.MinimalSwitches)
		fmt.Fprintf(w, "    hits=%d (%s) first-seen=#%d\n", c.Hits, strings.Join(parts, " "), c.FirstSeen)
		fmt.Fprintf(w, "    replay: %s\n", e.Replay)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(w, "skipped: %s\n", s)
	}
}
