package triage_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/triage"
)

// artifactsFor fuzzes a benchmark program at several seeds and returns
// one artifact per seed that found the bug.
func artifactsFor(t *testing.T, name string, seeds ...int64) []*core.Artifact {
	t.Helper()
	p := bench.MustGet(name)
	var out []*core.Artifact
	for _, seed := range seeds {
		rep := core.NewFuzzer(p.Name, p.Body, core.Options{
			Budget: 3000, Seed: seed, StopAtFirstBug: true,
		}).Run()
		if !rep.FoundBug() {
			continue
		}
		out = append(out, core.NewArtifact(p.Name, rep.Failures[0]))
	}
	if len(out) < 2 {
		t.Fatalf("%s: found the bug at only %d/%d seeds", name, len(out), len(seeds))
	}
	return out
}

func TestSameBugAcrossSeedsOneCluster(t *testing.T) {
	arts := artifactsFor(t, "CS/reorder_10", 13, 29, 57)
	tr := triage.New(triage.Config{})
	var cluster string
	for i, a := range arts {
		out, err := tr.Add(a, "rff")
		if err != nil {
			t.Fatalf("artifact %d: %v", i, err)
		}
		if out.Dedup {
			t.Fatalf("artifact %d unexpectedly deduped", i)
		}
		if cluster == "" {
			cluster = out.ClusterID
		} else if out.ClusterID != cluster {
			t.Fatalf("artifact %d split into cluster %s, first went to %s", i, out.ClusterID, cluster)
		}
	}
	if tr.Len() != 1 {
		t.Fatalf("expected 1 cluster, got %d", tr.Len())
	}
	c := tr.Cluster(cluster)
	if c == nil || c.Hits != len(arts) || c.HitsByTool["rff"] != len(arts) {
		t.Fatalf("bad cluster accounting: %+v", c)
	}
	if c.Canonical == nil || c.MinimalSwitches > c.OriginalSwitches {
		t.Fatalf("bad canonical: %+v", c)
	}
	// Re-adding an identical artifact is a dedup, not a new hit.
	out, err := tr.Add(arts[0], "rff")
	if err != nil || !out.Dedup {
		t.Fatalf("re-add: out=%+v err=%v", out, err)
	}
	if tr.Cluster(cluster).Hits != len(arts) {
		t.Fatal("dedup incremented hits")
	}
}

func TestDeadlockClustersAcrossSeeds(t *testing.T) {
	arts := artifactsFor(t, "CS/deadlock01", 7, 21, 35)
	tr := triage.New(triage.Config{})
	for i, a := range arts {
		if _, err := tr.Add(a, "pos"); err != nil {
			t.Fatalf("artifact %d: %v", i, err)
		}
	}
	if tr.Len() != 1 {
		for _, c := range tr.Clusters() {
			t.Logf("cluster %s: %+v", c.ID, c.Signature)
		}
		t.Fatalf("deadlock artifacts split into %d clusters", tr.Len())
	}
}

func TestAddRejectsNonReproducingArtifact(t *testing.T) {
	arts := artifactsFor(t, "CS/reorder_10", 13, 29)
	a := *arts[0]
	a.FailureKind = "deadlock" // recorded kind contradicts the schedule
	a.FailureLoc = ""
	tr := triage.New(triage.Config{})
	if _, err := tr.Add(&a, ""); err == nil {
		t.Fatal("artifact with a wrong failure kind must not triage")
	}
	if _, err := tr.Add(&core.Artifact{Program: "no/such/program", FailureKind: "deadlock", Decisions: []int32{1}}, ""); err == nil {
		t.Fatal("unknown program must not triage")
	}
}

// writeArtifactDir saves artifacts as a crash directory.
func writeArtifactDir(t *testing.T, arts []*core.Artifact) string {
	t.Helper()
	dir := t.TempDir()
	for i, a := range arts {
		if err := a.Save(filepath.Join(dir, "crash-"+string(rune('a'+i))+".json")); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDirTriageDeterministicCorpusAndReport(t *testing.T) {
	arts := append(artifactsFor(t, "CS/reorder_10", 13, 29),
		artifactsFor(t, "CS/deadlock01", 7, 21)...)
	dir := writeArtifactDir(t, arts)

	run := func() (corpusJSON, artifactFiles, reportJSON []byte) {
		tr := triage.New(triage.Config{})
		skipped, err := triage.FromDir(tr, dir, "rff")
		if err != nil || len(skipped) != 0 {
			t.Fatalf("FromDir: err=%v skipped=%v", err, skipped)
		}
		cdir := t.TempDir()
		if err := triage.SaveCorpus(tr, cdir); err != nil {
			t.Fatal(err)
		}
		corpusJSON, err = os.ReadFile(filepath.Join(cdir, "corpus.json"))
		if err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(filepath.Join(cdir, "artifacts"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(cdir, "artifacts", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			artifactFiles = append(artifactFiles, []byte(e.Name())...)
			artifactFiles = append(artifactFiles, b...)
		}
		reportJSON, err = triage.BuildReport(tr, "corpus", nil).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	c1, a1, r1 := run()
	c2, a2, r2 := run()
	if !bytes.Equal(c1, c2) {
		t.Errorf("corpus.json differs between identical runs:\n%s\nvs\n%s", c1, c2)
	}
	if !bytes.Equal(a1, a2) {
		t.Error("canonical artifacts differ between identical runs")
	}
	if !bytes.Equal(r1, r2) {
		t.Errorf("report differs between identical runs:\n%s\nvs\n%s", r1, r2)
	}
}

func TestCorpusRoundTripMergeAndRegress(t *testing.T) {
	arts := artifactsFor(t, "CS/reorder_10", 13, 29, 57)
	tr := triage.New(triage.Config{})
	for _, a := range arts[:2] {
		if _, err := tr.Add(a, "rff"); err != nil {
			t.Fatal(err)
		}
	}
	cdir := t.TempDir()
	if err := triage.SaveCorpus(tr, cdir); err != nil {
		t.Fatal(err)
	}

	// Reload and merge: the already-seen artifact dedups, a new one for
	// the same bug joins the existing cluster.
	tr2, err := triage.LoadCorpus(cdir, triage.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 1 {
		t.Fatalf("reloaded corpus has %d clusters, want 1", tr2.Len())
	}
	out, err := tr2.Add(arts[0], "rff")
	if err != nil || !out.Dedup {
		t.Fatalf("reloaded corpus did not dedup a stored artifact: %+v err=%v", out, err)
	}
	out, err = tr2.Add(arts[2], "pct:3")
	if err != nil || out.Dedup || out.New {
		t.Fatalf("third artifact should join the existing cluster: %+v err=%v", out, err)
	}
	c := tr2.Clusters()[0]
	if c.Hits != 3 || c.HitsByTool["pct:3"] != 1 {
		t.Fatalf("merge accounting wrong: %+v", c)
	}
	if err := triage.SaveCorpus(tr2, cdir); err != nil {
		t.Fatal(err)
	}

	// Every corpus entry replays to its recorded failure.
	bad, total, err := triage.Regress(cdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 || len(bad) != 0 {
		t.Fatalf("regress: total=%d bad=%v", total, bad)
	}

	// Corrupt the canonical artifact's recorded kind: regress must flag it.
	a, err := core.LoadArtifact(filepath.Join(cdir, "artifacts", c.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	a.FailureKind = "deadlock"
	a.FailureLoc = ""
	if err := a.Save(filepath.Join(cdir, "artifacts", c.ID+".json")); err != nil {
		t.Fatal(err)
	}
	bad, _, err = triage.Regress(cdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("regress missed a non-reproducing entry: %v", bad)
	}
}
