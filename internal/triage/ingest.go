package triage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
	"rff/internal/store"
)

// FromDir ingests every *.json artifact under dir (recursively), in
// sorted path order so the resulting corpus is deterministic. tool
// attributes the artifacts ("" = "unknown"). Inputs that fail to
// decode or triage are returned as "path: reason" strings, not errors —
// bulk triage reports broken inputs instead of stopping on them.
func FromDir(t *Triager, dir, tool string) (skipped []string, err error) {
	var paths []string
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("triage: %w", err)
	}
	sort.Strings(paths)
	for _, path := range paths {
		a, err := core.LoadArtifact(path)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		if _, err := t.Add(a, tool); err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", path, err))
		}
	}
	return skipped, nil
}

// storedReport is the slice of the service's report blob triage needs:
// the artifact references with their tool attribution. Parsing it
// locally keeps triage importable by the service (no cycle).
type storedReport struct {
	Artifacts []struct {
		ID   store.ID `json:"id"`
		Tool string   `json:"tool"`
	} `json:"artifacts"`
}

// FromStore ingests every artifact referenced by a campaign index, in
// sorted key order, attributing each to the tool its report records.
// Unreadable blobs and untriageable artifacts are returned as skipped
// strings.
func FromStore(t *Triager, s *store.Store, idx *store.Index) (skipped []string, err error) {
	for _, e := range idx.Entries() {
		tools := map[store.ID]string{}
		if data, err := s.Get(e.Report); err == nil {
			var rep storedReport
			if json.Unmarshal(data, &rep) == nil {
				for _, ref := range rep.Artifacts {
					tools[ref.ID] = ref.Tool
				}
			}
		}
		for _, id := range e.Artifacts {
			data, err := s.Get(id)
			if err != nil {
				skipped = append(skipped, fmt.Sprintf("%s: %v", id, err))
				continue
			}
			a, err := core.DecodeArtifact(data)
			if err != nil {
				skipped = append(skipped, fmt.Sprintf("%s: %v", id, err))
				continue
			}
			if _, err := t.Add(a, tools[id]); err != nil {
				skipped = append(skipped, fmt.Sprintf("%s: %v", id, err))
			}
		}
	}
	return skipped, nil
}

// RegressFailure is one corpus entry that no longer reproduces as
// recorded.
type RegressFailure struct {
	ClusterID string
	// Reason explains the mismatch (did not fail, kind changed, ...).
	Reason string
}

// Regress replays every canonical artifact of the corpus at dir and
// reports the entries whose recorded failure no longer reproduces —
// the CI gate that keeps known bugs reproducible. maxSteps bounds each
// replay (0 = engine default). A nil slice with a nil error means every
// cluster reproduced.
func Regress(dir string, maxSteps int) ([]RegressFailure, int, error) {
	data, err := os.ReadFile(filepath.Join(dir, "corpus.json"))
	if err != nil {
		return nil, 0, fmt.Errorf("triage regress: %w", err)
	}
	var f corpusFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, 0, fmt.Errorf("triage regress: malformed corpus: %w", err)
	}
	sort.Slice(f.Clusters, func(i, j int) bool { return f.Clusters[i].ID < f.Clusters[j].ID })
	var bad []RegressFailure
	for _, c := range f.Clusters {
		a, err := core.LoadArtifact(filepath.Join(dir, "artifacts", c.ID+".json"))
		if err != nil {
			bad = append(bad, RegressFailure{ClusterID: c.ID, Reason: err.Error()})
			continue
		}
		if reason := replayArtifact(a, maxSteps); reason != "" {
			bad = append(bad, RegressFailure{ClusterID: c.ID, Reason: reason})
		}
	}
	return bad, len(f.Clusters), nil
}

// replayArtifact re-executes an artifact's decision sequence and checks
// the recorded failure kind (and location, when recorded) reproduces.
// Returns "" on success, else the mismatch reason.
func replayArtifact(a *core.Artifact, maxSteps int) string {
	prog, err := resolveProgram(a.Program)
	if err != nil {
		return err.Error()
	}
	res := exec.Run(a.Program, prog, exec.Config{
		Scheduler: sched.NewReplay(a.ThreadOrder()),
		MaxSteps:  maxSteps,
	})
	switch {
	case res.Failure == nil:
		return fmt.Sprintf("replay of %s completed cleanly, expected %s", a.Program, a.FailureKind)
	case res.Failure.Kind.String() != a.FailureKind:
		return fmt.Sprintf("replay of %s failed with %s, expected %s", a.Program, res.Failure.Kind, a.FailureKind)
	case a.FailureLoc != "" && res.Failure.Loc != a.FailureLoc:
		return fmt.Sprintf("replay of %s failed at %s, expected %s", a.Program, res.Failure.Loc, a.FailureLoc)
	}
	return ""
}
