// Package triage is the back half of the fuzzing pipeline: it turns the
// raw stream of failing artifacts a campaign (or a fleet of campaigns)
// produces into a bounded set of distinct, minimized, reproducible
// bugs.
//
// Every ingested core.Artifact is replayed and minimized through
// minimize.Minimize under a probe budget, then hashed into a cluster by
// a stable signature — failure kind, normalized location set, and the
// participating-thread shape of the minimal switch set — so the same
// underlying bug found by different tools at different seeds lands in
// one cluster. Each cluster keeps one canonical minimal artifact (the
// smallest reproduction seen) plus metadata: first-seen ordinal, hit
// counts per tool, preemption bound, and minimization ratio. The
// cluster set persists as a deterministic regression corpus (see
// Corpus) that CI replays, and renders as a ranked report (see Report).
//
// Determinism: ingesting the same artifact set in the same order
// produces a byte-identical corpus and report. Batch ingestion (FromDir,
// FromStore) sorts its inputs, so two runs over the same directory or
// store agree byte-for-byte.
package triage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/minimize"
	"rff/internal/progen"
	"rff/internal/store"
	"rff/internal/telemetry"
)

// Config bounds the triage pipeline. The zero value is usable.
type Config struct {
	// Budget is the per-artifact minimization probe budget
	// (0 = 256 — triage favors throughput over perfectly minimal
	// reproductions; a negative budget skips minimization entirely and
	// clusters on the unminimized schedule).
	Budget int
	// MaxSteps bounds each replay execution (0 = engine default).
	MaxSteps int
	// Sink receives triage_* telemetry; nil disables it.
	Sink telemetry.Sink
}

func (c Config) budget() int {
	if c.Budget == 0 {
		return 256
	}
	return c.Budget
}

// Signature is the clustering key of a failure, derived from the
// *minimized* reproduction so incidental schedule noise cannot split a
// bug across clusters.
type Signature struct {
	// Program names the program the failure occurs in; bugs in
	// different programs are always distinct.
	Program string `json:"program"`
	// Kind is the failure class ("assertion violation", "deadlock", ...).
	Kind string `json:"kind"`
	// Locs is the normalized location set: the failing operation's
	// source location for asserts/memory/panic, or the sorted set of
	// blocked operations ("lock(m0)", thread ids and locations dropped,
	// joins excluded) for deadlocks.
	Locs []string `json:"locs,omitempty"`
	// Msg is the normalized failure message (empty for deadlocks, whose
	// raw messages enumerate schedule-dependent bystander threads).
	Msg string `json:"msg,omitempty"`
	// Threads is the shape of the minimal reproduction: the number of
	// distinct worker threads participating in the canonical artifact's
	// minimal switch set. It is descriptive, not identifying — see Key.
	Threads int `json:"threads"`
}

// Key renders the clustering key as an unambiguous string for hashing.
// Threads is deliberately excluded: delta debugging under a budget does
// not converge to one unique switch-set shape across seeds (a bystander
// thread survives in some minimal sets and not others), so keying on
// shape splits one bug into several clusters — the signature-stability
// property test demonstrates this. The shape still describes the
// cluster (it tracks the canonical, i.e. smallest, reproduction) and
// feeds report ranking; it just doesn't define identity.
func (s Signature) Key() string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%s",
		s.Program, s.Kind, strings.Join(s.Locs, "\x01"), s.Msg)
}

// ClusterID derives the cluster's stable identifier from the signature.
func (s Signature) ClusterID() string {
	h := sha256.Sum256([]byte(s.Key()))
	return "c-" + hex.EncodeToString(h[:])[:12]
}

// normalizeDeadlockLocs extracts the stable core of a deadlock message.
// The engine reports every blocked thread ("t2(w2) blocked at
// lock(m0)@w2.3, t3(w3) blocked at lock(m1)@w3.1, t1(main) blocked at
// join"), but which bystanders happen to be blocked — and where main's
// join sits — varies by schedule. What identifies the deadlock is the
// set of contended operations, so we keep "op(var)" for every non-join
// item, sorted and deduplicated, and drop thread ids and locations.
func normalizeDeadlockLocs(msg string) []string {
	seen := map[string]bool{}
	var out []string
	for _, item := range strings.Split(msg, ", ") {
		_, op, ok := strings.Cut(item, " blocked at ")
		if !ok {
			continue
		}
		if at := strings.IndexByte(op, '@'); at >= 0 {
			op = op[:at]
		}
		if op == "join" || op == "" || seen[op] {
			continue
		}
		seen[op] = true
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// signatureOf computes the cluster signature from a minimized
// reproduction.
func signatureOf(program string, f *exec.Failure, switches []minimize.Switch) Signature {
	sig := Signature{Program: program, Kind: f.Kind.String()}
	if f.Kind == exec.FailDeadlock {
		sig.Locs = normalizeDeadlockLocs(f.Msg)
	} else {
		if f.Loc != "" {
			sig.Locs = []string{f.Loc}
		}
		sig.Msg = f.Msg
	}
	threads := map[exec.ThreadID]bool{}
	for _, sw := range switches {
		if sw.Thread != 0 {
			threads[sw.Thread] = true
		}
		if sw.After != 0 {
			threads[sw.After] = true
		}
	}
	sig.Threads = len(threads)
	return sig
}

// Cluster is one distinct bug: its signature, its canonical minimal
// reproduction, and the accumulated evidence.
type Cluster struct {
	// ID is the signature-derived cluster identifier ("c-<12 hex>").
	ID string `json:"id"`
	// Signature is the clustering key.
	Signature Signature `json:"signature"`
	// FirstSeen is the ingestion ordinal (0-based) at which the cluster
	// was created — an ordinal, not a wall clock, so corpora stay
	// deterministic.
	FirstSeen int `json:"first_seen"`
	// Hits counts distinct artifacts that landed in this cluster.
	Hits int `json:"hits"`
	// HitsByTool splits Hits by the tool that found each artifact
	// ("unknown" when ingested without attribution).
	HitsByTool map[string]int `json:"hits_by_tool"`
	// Preemptions is the minimum preemption count over all minimized
	// members — the cluster's bug-depth bound.
	Preemptions int `json:"preemptions"`
	// OriginalSwitches and MinimalSwitches describe the canonical
	// artifact's minimization (ratio = minimal/original).
	OriginalSwitches int `json:"original_switches"`
	MinimalSwitches  int `json:"minimal_switches"`
	// Artifact is the content address of the canonical minimal artifact
	// JSON; ArtifactIDs lists every distinct member artifact, sorted.
	Artifact    store.ID   `json:"artifact"`
	ArtifactIDs []store.ID `json:"artifact_ids"`

	// Canonical is the minimal member artifact (the replayable
	// reproduction stored in the corpus).
	Canonical *core.Artifact `json:"-"`
	// canonicalBytes is Canonical's encoding (what Artifact addresses).
	canonicalBytes []byte
	// canonicalDecisions is the decision count of Canonical, the
	// second-order minimality tiebreak.
	canonicalDecisions int
}

// clone deep-copies the cluster for safe hand-out.
func (c *Cluster) clone() *Cluster {
	cp := *c
	cp.Signature.Locs = append([]string(nil), c.Signature.Locs...)
	cp.HitsByTool = make(map[string]int, len(c.HitsByTool))
	for k, v := range c.HitsByTool {
		cp.HitsByTool[k] = v
	}
	cp.ArtifactIDs = append([]store.ID(nil), c.ArtifactIDs...)
	cp.canonicalBytes = append([]byte(nil), c.canonicalBytes...)
	return &cp
}

// Triager accumulates artifacts into clusters. Safe for concurrent use;
// determinism of the resulting corpus is up to the caller's ingestion
// order (the batch helpers in ingest.go sort their inputs).
type Triager struct {
	cfg Config

	mu       sync.Mutex
	clusters map[string]*Cluster // by cluster ID
	members  map[store.ID]string // artifact content ID → cluster ID
	ordinal  int                 // next ingestion ordinal
}

// New builds an empty triager.
func New(cfg Config) *Triager {
	return &Triager{
		cfg:      cfg,
		clusters: make(map[string]*Cluster),
		members:  make(map[store.ID]string),
	}
}

// Outcome reports what happened to one ingested artifact.
type Outcome struct {
	// ClusterID is the cluster the artifact landed in.
	ClusterID string
	// New reports whether the artifact created the cluster.
	New bool
	// Dedup reports whether the exact artifact content had been
	// ingested before (no counts were changed).
	Dedup bool
}

// encodeArtifact renders the canonical artifact JSON (the content that
// gets addressed and stored).
func encodeArtifact(a *core.Artifact) ([]byte, error) {
	return core.EncodeArtifact(a)
}

// resolveProgram finds the executable body for an artifact's program
// name: generated programs regenerate from the name, benchmark programs
// resolve through the registry.
func resolveProgram(name string) (exec.Program, error) {
	if p, ok := progen.FromName(name); ok {
		return p.Body(), nil
	}
	if p, ok := bench.Get(name); ok {
		return p.Body, nil
	}
	return nil, fmt.Errorf("triage: unknown program %q", name)
}

// Add ingests one artifact found by tool (""  = "unknown"): replays and
// minimizes it, computes its signature, and files it into a cluster.
// A nil error with Outcome.Dedup set means the identical artifact had
// already been ingested. An artifact that fails to reproduce its
// recorded failure is an error — the caller decides whether that is
// fatal (regression replay) or just reportable (bulk triage).
func (t *Triager) Add(a *core.Artifact, tool string) (Outcome, error) {
	if tool == "" {
		tool = "unknown"
	}
	if err := a.Validate(); err != nil {
		return Outcome{}, fmt.Errorf("triage: invalid artifact: %w", err)
	}
	data, err := encodeArtifact(a)
	if err != nil {
		return Outcome{}, fmt.Errorf("triage: %w", err)
	}
	id := store.SumID(data)

	t.mu.Lock()
	if cid, ok := t.members[id]; ok {
		t.mu.Unlock()
		if t.cfg.Sink != nil {
			t.cfg.Sink.Add(telemetry.MTriageDedupHits, 1)
		}
		return Outcome{ClusterID: cid, Dedup: true}, nil
	}
	t.mu.Unlock()

	prog, err := resolveProgram(a.Program)
	if err != nil {
		return Outcome{}, err
	}
	original := &exec.Failure{
		Kind:   failureKindOf(a.FailureKind),
		Msg:    a.FailureMsg,
		Thread: exec.ThreadID(a.Thread),
		Loc:    a.FailureLoc,
	}
	if original.Kind == 0 {
		return Outcome{}, fmt.Errorf("triage: artifact has unknown failure kind %q", a.FailureKind)
	}
	res := minimize.Minimize(a.Program, prog, a.ThreadOrder(), original, minimize.Options{
		Budget:   t.cfg.budget(),
		MaxSteps: t.cfg.MaxSteps,
		MatchLoc: true,
	})
	if res == nil {
		return Outcome{}, fmt.Errorf("triage: artifact for %s does not reproduce its %s", a.Program, a.FailureKind)
	}
	if t.cfg.Sink != nil {
		t.cfg.Sink.Add(telemetry.MTriageMinimizeSteps, int64(res.Probes))
	}

	// The stored reproduction is the *minimized* artifact: same program
	// and seed provenance, minimal decision sequence.
	min := &core.Artifact{
		Program:     a.Program,
		Seed:        a.Seed,
		Execution:   a.Execution,
		FailureKind: res.Failure.Kind.String(),
		FailureMsg:  res.Failure.Msg,
		FailureLoc:  res.Failure.Loc,
		Thread:      int32(res.Failure.Thread),
	}
	for _, d := range res.Decisions {
		min.Decisions = append(min.Decisions, int32(d))
	}
	minData, err := encodeArtifact(min)
	if err != nil {
		return Outcome{}, fmt.Errorf("triage: %w", err)
	}

	sig := signatureOf(a.Program, res.Failure, res.Switches)
	cid := sig.ClusterID()

	t.mu.Lock()
	defer t.mu.Unlock()
	if prior, ok := t.members[id]; ok { // raced with an identical Add
		if t.cfg.Sink != nil {
			t.cfg.Sink.Add(telemetry.MTriageDedupHits, 1)
		}
		return Outcome{ClusterID: prior, Dedup: true}, nil
	}
	t.members[id] = cid
	c, ok := t.clusters[cid]
	isNew := !ok
	if !ok {
		c = &Cluster{
			ID:          cid,
			Signature:   sig,
			FirstSeen:   t.ordinal,
			HitsByTool:  make(map[string]int),
			Preemptions: res.Preemptions,
		}
		t.clusters[cid] = c
	} else {
		if t.cfg.Sink != nil {
			t.cfg.Sink.Add(telemetry.MTriageDedupHits, 1)
		}
		if res.Preemptions < c.Preemptions {
			c.Preemptions = res.Preemptions
		}
	}
	t.ordinal++
	c.Hits++
	c.HitsByTool[tool]++
	c.ArtifactIDs = insertID(c.ArtifactIDs, id)
	if betterCanonical(c, res, minData) {
		c.Canonical = min
		c.canonicalBytes = minData
		c.canonicalDecisions = len(min.Decisions)
		c.OriginalSwitches = res.OriginalSwitches
		c.MinimalSwitches = res.MinimalSwitches
		c.Artifact = store.SumID(minData)
		// The shape follows the canonical reproduction, so it stays a
		// pure function of the artifact set (canonical selection is a
		// total order, independent of ingestion order).
		c.Signature.Threads = sig.Threads
	}
	if t.cfg.Sink != nil {
		t.cfg.Sink.Set(telemetry.MTriageClusters, int64(len(t.clusters)))
	}
	return Outcome{ClusterID: cid, New: isNew}, nil
}

// betterCanonical decides whether a new minimized member should replace
// the cluster's canonical artifact: fewer switches, then fewer
// decisions, then lexicographically smaller bytes — a total order, so
// the canonical pick is independent of ingestion order.
func betterCanonical(c *Cluster, res *minimize.Result, minData []byte) bool {
	if c.Canonical == nil {
		return true
	}
	if res.MinimalSwitches != c.MinimalSwitches {
		return res.MinimalSwitches < c.MinimalSwitches
	}
	if len(res.Decisions) != c.canonicalDecisions {
		return len(res.Decisions) < c.canonicalDecisions
	}
	return string(minData) < string(c.canonicalBytes)
}

// insertID inserts id into a sorted ID slice, keeping it sorted and
// deduplicated.
func insertID(ids []store.ID, id store.ID) []store.ID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// failureKindOf inverts exec.FailureKind.String.
func failureKindOf(s string) exec.FailureKind {
	for k := exec.FailAssert; int(k) < exec.NumFailureKinds; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Clusters returns a deep copy of every cluster, sorted by ID.
func (t *Triager) Clusters() []*Cluster {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Cluster, 0, len(t.clusters))
	for _, c := range t.clusters {
		out = append(out, c.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cluster returns a deep copy of one cluster, or nil if absent.
func (t *Triager) Cluster(id string) *Cluster {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.clusters[id]
	if !ok {
		return nil
	}
	return c.clone()
}

// Len returns the number of clusters.
func (t *Triager) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.clusters)
}

// Observer returns a campaign.ResultObserver-shaped hook that triages
// every failing execution live (the rffd integration point). Failures
// that cannot be triaged are dropped — the campaign outcome still
// records them.
func (t *Triager) Observer(tool string) func(res *exec.Result) {
	return func(res *exec.Result) {
		if res.Failure == nil {
			return
		}
		f := *res.Failure
		a := &core.Artifact{
			Program:     res.Program,
			Seed:        res.Seed,
			FailureKind: f.Kind.String(),
			FailureMsg:  f.Msg,
			FailureLoc:  f.Loc,
			Thread:      int32(f.Thread),
		}
		for _, d := range res.Trace.ThreadOrder() {
			a.Decisions = append(a.Decisions, int32(d))
		}
		t.Add(a, tool)
	}
}
