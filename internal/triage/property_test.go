package triage_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/progen"
	"rff/internal/strategy"
	"rff/internal/triage"
)

// collector records one artifact per failing execution it observes.
type collector struct {
	mu   sync.Mutex
	arts []*core.Artifact
}

func (c *collector) observe(res *exec.Result) {
	if res.Failure == nil {
		return
	}
	f := *res.Failure
	a := &core.Artifact{
		Program:     res.Program,
		Seed:        res.Seed,
		FailureKind: f.Kind.String(),
		FailureMsg:  f.Msg,
		FailureLoc:  f.Loc,
		Thread:      int32(f.Thread),
	}
	for _, d := range res.Trace.ThreadOrder() {
		a.Decisions = append(a.Decisions, int32(d))
	}
	c.mu.Lock()
	c.arts = append(c.arts, a)
	c.mu.Unlock()
}

// originKey is the ground-truth bug identity of an *unminimized*
// artifact: progen failure messages and locations are properties of the
// violated statement, not of the schedule, so equal (kind, loc, msg)
// means the same assert bug. Deadlock messages are schedule-dependent,
// but a progen program draws at most two mutexes, so any two deadlock
// manifestations in one program share the same contended cycle.
func originKey(a *core.Artifact) string {
	if a.FailureKind == "deadlock" {
		return "deadlock"
	}
	return fmt.Sprintf("%s|%s|%s", a.FailureKind, a.FailureLoc, a.FailureMsg)
}

// TestClusterSignatureStability is the satellite property test: the
// same progen-generated bug found by rff, pos, and pct:3 at three
// different seeds must land in one cluster. It scans the generator
// stream until at least 10 programs contribute a bug found under
// multiple (tool, seed) configurations, and asserts every artifact
// group with equal ground-truth identity maps to exactly one cluster.
func TestClusterSignatureStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tool property sweep")
	}
	specs := []string{"rff", "pos", "pct:3"}
	seeds := []int64{101, 202, 303}
	gen := progen.NewGenerator(5, progen.Options{})
	tr := triage.New(triage.Config{})
	checked := 0
	for scanned := 0; checked < 10 && scanned < 120; scanned++ {
		p := gen.Next()
		col := &collector{}
		for _, spec := range specs {
			tool, err := strategy.Resolve(spec, strategy.Config{
				Observer: campaign.ResultObserver(col.observe),
				Budget:   300,
			})
			if err != nil {
				t.Fatalf("resolve %s: %v", spec, err)
			}
			for _, seed := range seeds {
				tool.Run(context.Background(), p.Bench(), 300, 0, seed)
			}
		}
		groups := map[string][]*core.Artifact{}
		for _, a := range col.arts {
			groups[originKey(a)] = append(groups[originKey(a)], a)
		}
		counted := false
		for key, arts := range groups {
			if len(arts) < 2 {
				continue // a bug one configuration found proves nothing
			}
			clusters := map[string]bool{}
			for _, a := range arts {
				out, err := tr.Add(a, "test")
				if err != nil {
					t.Fatalf("%s %s: %v", p.Name, key, err)
				}
				clusters[out.ClusterID] = true
			}
			if len(clusters) != 1 {
				t.Errorf("%s: bug %q split into %d clusters from %d artifacts",
					p.Name, key, len(clusters), len(arts))
			}
			counted = true
		}
		if counted {
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d programs contributed multi-config bugs; need 10", checked)
	}
	t.Logf("checked %d programs, %d clusters total", checked, tr.Len())
}
