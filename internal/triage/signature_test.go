package triage

import (
	"reflect"
	"testing"
)

func TestNormalizeDeadlockLocs(t *testing.T) {
	cases := []struct {
		msg  string
		want []string
	}{
		{
			// Thread ids, locations, and main's join are schedule noise;
			// the contended operations identify the deadlock.
			"t2(w2) blocked at lock(m0)@w2.3, t3(w3) blocked at lock(m1)@w3.1, t1(main) blocked at join",
			[]string{"lock(m0)", "lock(m1)"},
		},
		{
			// Same deadlock reported with the threads in another order
			// and a bystander blocked on an already-listed mutex.
			"t3(w3) blocked at lock(m1)@w3.1, t4(w4) blocked at lock(m0)@w4.0, t2(w2) blocked at lock(m0)@w2.3",
			[]string{"lock(m0)", "lock(m1)"},
		},
		{"t1(main) blocked at join", nil},
		{"", nil},
	}
	for _, c := range cases {
		if got := normalizeDeadlockLocs(c.msg); !reflect.DeepEqual(got, c.want) {
			t.Errorf("normalizeDeadlockLocs(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}

func TestSignatureKeyStability(t *testing.T) {
	a := Signature{Program: "p", Kind: "deadlock", Locs: []string{"lock(m0)", "lock(m1)"}, Threads: 2}
	b := Signature{Program: "p", Kind: "deadlock", Locs: []string{"lock(m0)", "lock(m1)"}, Threads: 2}
	if a.ClusterID() != b.ClusterID() {
		t.Fatal("equal signatures produced different cluster IDs")
	}
	// Shape is descriptive, not identifying: a different thread count
	// must NOT produce a different cluster (minimal switch sets do not
	// converge to one shape across seeds).
	c := a
	c.Threads = 3
	if a.ClusterID() != c.ClusterID() {
		t.Fatal("shape participated in cluster identity")
	}
	d := a
	d.Locs = []string{"lock(m0)|lock(m1)"} // join ambiguity must not collide
	if a.ClusterID() == d.ClusterID() {
		t.Fatal("ambiguous loc join collided")
	}
}
