package triage_test

import (
	"strings"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/progen"
	"rff/internal/triage"
)

// chanArtifact scans the chan-grammar progen stream for a program whose
// fuzzing campaign crashes with the wanted failure kind, and returns the
// artifact plus the generated program's name. The artifact's program
// name round-trips through progen.FromName, so triage can regenerate
// the body during minimization and regression replay.
func chanArtifact(t *testing.T, want exec.FailureKind) (*core.Artifact, string) {
	t.Helper()
	feats, err := progen.ParseGrammar("chan")
	if err != nil {
		t.Fatal(err)
	}
	gen := progen.NewGenerator(5, progen.Options{Features: feats})
	for i := 0; i < 80; i++ {
		p := gen.Next()
		rep := core.NewFuzzer(p.Name, p.Body(), core.Options{
			Budget: 300, Seed: 1, StopAtFirstBug: true,
		}).Run()
		if !rep.FoundBug() || rep.Failures[0].Failure.Kind != want {
			continue
		}
		return core.NewArtifact(p.Name, rep.Failures[0]), p.Name
	}
	t.Fatalf("no chan-grammar program crashing with %v in 80 candidates", want)
	return nil, ""
}

// TestChanFailuresTriageEndToEnd is the acceptance check for the channel
// failure kinds: a progen-generated send-on-closed crash and a channel
// deadlock each minimize, land in distinct clusters with channel-aware
// signatures, and replay from the saved regression corpus.
func TestChanFailuresTriageEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("progen campaign scan is not -short friendly")
	}
	sendClosed, scName := chanArtifact(t, exec.FailSendClosed)
	deadlock, dlName := chanArtifact(t, exec.FailDeadlock)

	tr := triage.New(triage.Config{})
	scOut, err := tr.Add(sendClosed, "rff")
	if err != nil {
		t.Fatalf("triaging send-on-closed artifact: %v", err)
	}
	dlOut, err := tr.Add(deadlock, "rff")
	if err != nil {
		t.Fatalf("triaging channel-deadlock artifact: %v", err)
	}
	if scOut.ClusterID == dlOut.ClusterID {
		t.Fatal("send-on-closed and deadlock landed in one cluster")
	}

	sc := tr.Cluster(scOut.ClusterID)
	if sc.Signature.Kind != exec.FailSendClosed.String() {
		t.Fatalf("send-on-closed cluster kind = %q", sc.Signature.Kind)
	}
	if sc.Signature.Program != scName || len(sc.Signature.Locs) != 1 {
		t.Fatalf("send-on-closed signature not anchored to the failing send: %+v", sc.Signature)
	}
	if sc.MinimalSwitches > sc.OriginalSwitches {
		t.Fatalf("minimization grew the schedule: %+v", sc)
	}

	dl := tr.Cluster(dlOut.ClusterID)
	if dl.Signature.Kind != exec.FailDeadlock.String() || dl.Signature.Program != dlName {
		t.Fatalf("deadlock signature wrong: %+v", dl.Signature)
	}
	// The normalized location set must name the contended channel ops
	// ("send(ch0)", "recv(ch1)", "select(ch0,ch1)", "wgwait(wg)", ...),
	// with thread ids and source locations stripped.
	chanOps := 0
	for _, loc := range dl.Signature.Locs {
		if strings.ContainsAny(loc, "@") {
			t.Fatalf("deadlock loc %q kept a source location", loc)
		}
		for _, op := range []string{"send(", "recv(", "select(", "wgwait("} {
			if strings.HasPrefix(loc, op) {
				chanOps++
			}
		}
	}
	if chanOps == 0 {
		t.Fatalf("deadlock signature has no channel ops: %v (msg %q)",
			dl.Signature.Locs, deadlock.FailureMsg)
	}

	// Both clusters replay from a saved corpus: the regression gate holds
	// for the channel vocabulary.
	cdir := t.TempDir()
	if err := triage.SaveCorpus(tr, cdir); err != nil {
		t.Fatal(err)
	}
	bad, total, err := triage.Regress(cdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(bad) != 0 {
		t.Fatalf("regress: total=%d bad=%v", total, bad)
	}
}
