package triage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rff/internal/core"
	"rff/internal/store"
)

// Corpus is the on-disk regression corpus:
//
//	<dir>/corpus.json                 (cluster index, sorted by ID)
//	<dir>/artifacts/<clusterID>.json  (canonical minimal artifact)
//
// The index is a pure function of the ingested artifact set and order —
// no timestamps — so re-triaging the same inputs rewrites byte-identical
// files, and CI can diff corpora across runs.
type corpusFile struct {
	// Version guards the layout for future migrations.
	Version int `json:"version"`
	// Clusters is the full cluster index, sorted by cluster ID.
	Clusters []*Cluster `json:"clusters"`
}

const corpusVersion = 1

// SaveCorpus writes the triager's cluster set as a regression corpus
// rooted at dir, atomically replacing any prior index.
func SaveCorpus(t *Triager, dir string) error {
	clusters := t.Clusters()
	artDir := filepath.Join(dir, "artifacts")
	if err := os.MkdirAll(artDir, 0o755); err != nil {
		return fmt.Errorf("triage corpus: %w", err)
	}
	for _, c := range clusters {
		if c.Canonical == nil {
			return fmt.Errorf("triage corpus: cluster %s has no canonical artifact", c.ID)
		}
		path := filepath.Join(artDir, c.ID+".json")
		if err := writeFileAtomic(path, c.canonicalBytes); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(corpusFile{Version: corpusVersion, Clusters: clusters}, "", "  ")
	if err != nil {
		return fmt.Errorf("triage corpus: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, "corpus.json"), append(data, '\n'))
}

// LoadCorpus reads a regression corpus back into a triager, restoring
// cluster metadata and canonical artifacts so new artifacts merge into
// the existing cluster set (the rffd incremental-triage path). A
// missing corpus.json yields an empty triager.
func LoadCorpus(dir string, cfg Config) (*Triager, error) {
	t := New(cfg)
	data, err := os.ReadFile(filepath.Join(dir, "corpus.json"))
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return nil, fmt.Errorf("triage corpus: %w", err)
	}
	var f corpusFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("triage corpus %s: malformed: %w", dir, err)
	}
	if f.Version != corpusVersion {
		return nil, fmt.Errorf("triage corpus %s: unsupported version %d", dir, f.Version)
	}
	for _, c := range f.Clusters {
		art, err := core.LoadArtifact(filepath.Join(dir, "artifacts", c.ID+".json"))
		if err != nil {
			return nil, fmt.Errorf("triage corpus: cluster %s: %w", c.ID, err)
		}
		bytes, err := encodeArtifact(art)
		if err != nil {
			return nil, fmt.Errorf("triage corpus: cluster %s: %w", c.ID, err)
		}
		if got := store.SumID(bytes); got != c.Artifact {
			return nil, fmt.Errorf("triage corpus: cluster %s: canonical artifact is %s, index says %s", c.ID, got, c.Artifact)
		}
		c.Canonical = art
		c.canonicalBytes = bytes
		c.canonicalDecisions = len(art.Decisions)
		if c.HitsByTool == nil {
			c.HitsByTool = make(map[string]int)
		}
		t.clusters[c.ID] = c
		for _, id := range c.ArtifactIDs {
			t.members[id] = c.ID
		}
		if c.FirstSeen >= t.ordinal {
			t.ordinal = c.FirstSeen + 1
		}
		if c.Hits > 0 {
			// Ordinals must keep advancing past every counted ingestion,
			// not just cluster births, so merged corpora stay ordered.
			if n := c.FirstSeen + c.Hits; n > t.ordinal {
				t.ordinal = n
			}
		}
	}
	sort.Slice(f.Clusters, func(i, j int) bool { return f.Clusters[i].ID < f.Clusters[j].ID })
	return t, nil
}

// writeFileAtomic writes data via a temp file + rename so readers never
// observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("triage corpus: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("triage corpus: %w", err)
	}
	return nil
}
