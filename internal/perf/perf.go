// Package perf measures the fuzzer's hot-path throughput — executions per
// second and allocation cost per execution — on a fixed program set, so
// optimisation work has a number to move and regressions have a number to
// trip on. The JSON report (BENCH_perf.json) is the per-PR performance
// trajectory record, the throughput analogue of `rffbench -json`.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/core"
)

// ProgramResult is the measured cost of one fuzzing campaign.
type ProgramResult struct {
	Program    string `json:"program"`
	Executions int    `json:"executions"`
	WallNS     int64  `json:"wall_ns"`
	// ExecsPerSec is the headline throughput number.
	ExecsPerSec float64 `json:"execs_per_sec"`
	// AllocsPerExec and BytesPerExec are heap-allocation counts per
	// schedule, from runtime.MemStats deltas around the campaign (they
	// include the campaign's own bookkeeping, which is the point: the
	// whole loop is the hot path).
	AllocsPerExec float64 `json:"allocs_per_exec"`
	BytesPerExec  float64 `json:"bytes_per_exec"`
	// FirstBug and UniqueSigs tie the measurement to campaign behaviour:
	// a perf change that shifts these changed semantics, not just speed.
	FirstBug   int `json:"first_bug"`
	UniqueSigs int `json:"unique_sigs"`
}

// Report is the full perf-harness output.
type Report struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Timestamp  string          `json:"timestamp"`
	Budget     int             `json:"budget"`
	MaxSteps   int             `json:"max_steps"`
	Seed       int64           `json:"seed"`
	Programs   []ProgramResult `json:"programs"`
	// Matrix, when present, is the fleet-orchestration scaling record:
	// the same evaluation matrix timed at several worker counts.
	Matrix *MatrixPerf `json:"matrix,omitempty"`
	// Shards, when present, records single-campaign shard scaling: one
	// curve per program, execs/sec at several shard counts.
	Shards []*ShardScaling `json:"shards,omitempty"`
}

// MatrixPoint is one worker count's measurement of the matrix.
type MatrixPoint struct {
	Workers int   `json:"workers"`
	WallNS  int64 `json:"wall_ns"`
	// Speedup is wall-clock relative to the first measured point (the
	// convention is to measure 1 worker first, making this speedup over
	// sequential).
	Speedup float64 `json:"speedup"`
	// AllocsPerExec and BytesPerExec are heap-allocation deltas across
	// the whole matrix run divided by its counted executions — the
	// worker-scaling analogue of ProgramResult's per-schedule numbers.
	AllocsPerExec float64 `json:"allocs_per_exec"`
	BytesPerExec  float64 `json:"bytes_per_exec"`
}

// MatrixPerf records how matrix wall-clock scales with fleet workers on
// a fixed (tools, programs, trials, budget) workload.
type MatrixPerf struct {
	Tools    []string `json:"tools"`
	Programs []string `json:"programs"`
	Trials   int      `json:"trials"`
	Budget   int      `json:"budget"`
	// NumCPU and GOMAXPROCS pin the hardware/runtime parallelism the
	// scaling points were measured under — a speedup curve is
	// meaningless without them.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// ResultsIdentical reports whether every worker count produced a
	// byte-identical MatrixResult — the fleet determinism contract,
	// re-verified on every perf run.
	ResultsIdentical bool          `json:"results_identical"`
	Points           []MatrixPoint `json:"points"`

	baselineNS int64 // wall-clock of the first measured point
}

// MeasureMatrix times the evaluation matrix at each worker count in
// turn (measure workerCounts[0] = 1 first to make Speedup "versus
// sequential") and cross-checks that all runs merged to identical
// results.
func MeasureMatrix(tools []campaign.Tool, progs []bench.Program, trials, budget, maxSteps int, seed int64, workerCounts []int) *MatrixPerf {
	mp := &MatrixPerf{
		Trials:           trials,
		Budget:           budget,
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ResultsIdentical: true,
	}
	for _, p := range progs {
		mp.Programs = append(mp.Programs, p.Name)
	}
	for _, tl := range tools {
		mp.Tools = append(mp.Tools, tl.Name())
	}
	var baseline []byte
	for _, w := range workerCounts {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{
			Trials:   trials,
			Budget:   budget,
			MaxSteps: maxSteps,
			BaseSeed: seed,
			Workers:  w,
		})
		wall := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		pt := MatrixPoint{Workers: w, WallNS: wall, Speedup: 1}
		execs := 0
		for _, progOuts := range m.Outcomes {
			for _, outs := range progOuts {
				for _, o := range outs {
					execs += o.Executions
				}
			}
		}
		if execs > 0 {
			pt.AllocsPerExec = float64(after.Mallocs-before.Mallocs) / float64(execs)
			pt.BytesPerExec = float64(after.TotalAlloc-before.TotalAlloc) / float64(execs)
		}
		data, err := json.Marshal(m)
		if err != nil {
			data = nil
		}
		if baseline == nil {
			baseline = data
			mp.baselineNS = wall
		} else {
			if wall > 0 {
				pt.Speedup = float64(mp.baselineNS) / float64(wall)
			}
			if string(data) != string(baseline) {
				mp.ResultsIdentical = false
			}
		}
		mp.Points = append(mp.Points, pt)
	}
	return mp
}

// DefaultPrograms is the measurement set: a narrow program, a wide one,
// and the paper's running real-world example.
var DefaultPrograms = []string{"CS/reorder_10", "CS/twostage_20", "SafeStack"}

// Measure runs one full fuzzing campaign (bugs do not stop it) and
// returns its throughput and allocation profile.
func Measure(p bench.Program, budget, maxSteps int, seed int64) ProgramResult {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget:   budget,
		MaxSteps: maxSteps,
		Seed:     seed,
	}).Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	n := rep.Executions
	res := ProgramResult{
		Program:    p.Name,
		Executions: n,
		WallNS:     wall.Nanoseconds(),
		FirstBug:   rep.FirstBug,
		UniqueSigs: rep.UniqueSigs,
	}
	if n > 0 {
		res.ExecsPerSec = float64(n) / wall.Seconds()
		res.AllocsPerExec = float64(after.Mallocs-before.Mallocs) / float64(n)
		res.BytesPerExec = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	}
	return res
}

// Run measures every program and assembles the report.
func Run(progs []bench.Program, budget, maxSteps int, seed int64) *Report {
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Budget:     budget,
		MaxSteps:   maxSteps,
		Seed:       seed,
	}
	for _, p := range progs {
		rep.Programs = append(rep.Programs, Measure(p, budget, maxSteps, seed))
	}
	return rep
}

// WriteJSON persists the report as indented JSON.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling perf report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
