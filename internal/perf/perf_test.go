package perf_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rff/internal/bench"
	"rff/internal/perf"
	"rff/internal/strategy"
)

func TestMeasureAndWriteJSON(t *testing.T) {
	p := bench.MustGet("CS/reorder_10")
	rep := perf.Run([]bench.Program{p}, 50, 5000, 1)
	if len(rep.Programs) != 1 {
		t.Fatalf("want 1 program result, got %d", len(rep.Programs))
	}
	r := rep.Programs[0]
	if r.Executions != 50 {
		t.Errorf("Executions = %d, want 50", r.Executions)
	}
	if r.ExecsPerSec <= 0 || r.AllocsPerExec <= 0 || r.BytesPerExec <= 0 {
		t.Errorf("non-positive measurements: %+v", r)
	}
	if r.UniqueSigs == 0 {
		t.Error("campaign observed no combinations")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back perf.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written JSON does not parse: %v", err)
	}
	if back.Budget != 50 || len(back.Programs) != 1 {
		t.Errorf("roundtrip mismatch: %+v", back)
	}
}

func TestProfileHelpersNoOpOnEmptyPath(t *testing.T) {
	stop, err := perf.StartCPUProfile("")
	if err != nil {
		t.Fatalf("empty cpu profile path: %v", err)
	}
	stop()
	if err := perf.WriteHeapProfile(""); err != nil {
		t.Fatalf("empty mem profile path: %v", err)
	}
}

func TestProfileFilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := perf.StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	perf.Measure(bench.MustGet("CS/reorder_10"), 20, 5000, 1)
	stop()
	if err := perf.WriteHeapProfile(mem); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestMeasureMatrixScaling(t *testing.T) {
	tools, err := strategy.ResolveAll([]string{"rff", "pos"}, strategy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	progs := []bench.Program{bench.MustGet("CS/account"), bench.MustGet("CS/lazy01")}
	mp := perf.MeasureMatrix(tools, progs, 2, 100, 5000, 1, []int{1, 2})
	if len(mp.Points) != 2 {
		t.Fatalf("want 2 scaling points, got %+v", mp.Points)
	}
	if mp.Points[0].Workers != 1 || mp.Points[0].Speedup != 1 {
		t.Fatalf("first point must be the 1-worker baseline: %+v", mp.Points[0])
	}
	if mp.Points[1].WallNS <= 0 || mp.Points[1].Speedup <= 0 {
		t.Fatalf("bad second point: %+v", mp.Points[1])
	}
	// The fleet determinism contract, re-verified on every perf run.
	if !mp.ResultsIdentical {
		t.Fatal("matrix results diverged between 1 and 2 workers")
	}
	if len(mp.Tools) != 2 || len(mp.Programs) != 2 || mp.Trials != 2 || mp.Budget != 100 {
		t.Fatalf("workload metadata lost: %+v", mp)
	}
}
