package perf

import (
	"encoding/json"
	"runtime"
	"time"

	"rff/internal/bench"
	"rff/internal/shard"
)

// ShardPoint is one shard count's measurement of a single-program
// sharded campaign.
type ShardPoint struct {
	Shards      int     `json:"shards"`
	Executions  int     `json:"executions"`
	WallNS      int64   `json:"wall_ns"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Speedup is throughput relative to the first measured point
	// (measure 1 shard first to make this speedup over one shard).
	Speedup float64 `json:"speedup"`
	// AllocsPerExec and BytesPerExec are heap-allocation deltas across
	// the campaign divided by counted executions.
	AllocsPerExec float64 `json:"allocs_per_exec"`
	BytesPerExec  float64 `json:"bytes_per_exec"`
}

// ShardScaling is one program's shard-count scaling curve: how a single
// campaign's execs/sec moves as its fuzz loop spreads over worker
// shards, and whether the merged report stayed bit-identical while it
// did (the deterministic-mode contract).
type ShardScaling struct {
	Program string `json:"program"`
	Budget  int    `json:"budget"`
	Fast    bool   `json:"fast,omitempty"`
	// NumCPU and GOMAXPROCS pin the parallelism the curve was measured
	// under; a speedup at 4 shards is not expected on 1 vCPU.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// ResultsIdentical reports whether every shard count merged to a
	// byte-identical core.Report. Always expected in deterministic mode;
	// meaningless (and typically false) with Fast.
	ResultsIdentical bool         `json:"results_identical"`
	Points           []ShardPoint `json:"points"`
}

// MeasureShards runs the same single-program campaign at each shard
// count in turn (first count is the speedup baseline) and cross-checks
// that all runs merged to identical reports.
func MeasureShards(p bench.Program, budget, maxSteps int, seed int64, shardCounts []int, fast bool) *ShardScaling {
	sc := &ShardScaling{
		Program:          p.Name,
		Budget:           budget,
		Fast:             fast,
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ResultsIdentical: true,
	}
	var baseline []byte
	var baseRate float64
	for _, w := range shardCounts {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		rep := shard.Fuzz(p.Name, p.Body, shard.Options{
			Budget:   budget,
			MaxSteps: maxSteps,
			Seed:     seed,
			Shards:   w,
			Fast:     fast,
		})
		wall := time.Since(start)
		runtime.ReadMemStats(&after)

		pt := ShardPoint{Shards: w, Executions: rep.Executions, WallNS: wall.Nanoseconds(), Speedup: 1}
		if rep.Executions > 0 && wall > 0 {
			pt.ExecsPerSec = float64(rep.Executions) / wall.Seconds()
			pt.AllocsPerExec = float64(after.Mallocs-before.Mallocs) / float64(rep.Executions)
			pt.BytesPerExec = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Executions)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			data = nil
		}
		if baseline == nil {
			baseline = data
			baseRate = pt.ExecsPerSec
		} else {
			if baseRate > 0 {
				pt.Speedup = pt.ExecsPerSec / baseRate
			}
			if string(data) != string(baseline) {
				sc.ResultsIdentical = false
			}
		}
		sc.Points = append(sc.Points, pt)
	}
	return sc
}
