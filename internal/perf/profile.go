package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins CPU profiling into the given file and returns the
// function that stops profiling and closes it. An empty path is a no-op.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("starting cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile (after a final GC, so the
// numbers reflect live + cumulative allocation sites, not garbage timing).
// An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("writing mem profile: %w", err)
	}
	return nil
}
