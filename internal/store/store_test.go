package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"hello":"world"}`)
	id, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Valid() {
		t.Fatalf("Put returned invalid id %q", id)
	}
	if id != SumID(data) {
		t.Fatalf("Put id %s != SumID %s", id, SumID(data))
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	if !s.Has(id) {
		t.Fatal("Has(id) = false after Put")
	}
}

func TestPutDeduplicates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("same content")
	id1, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("dedup broken: %s != %s", id1, id2)
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("expected 1 stored blob, got %d", len(ids))
	}
}

func TestGetRejectsBadIDs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ID{
		"",
		"sha256:short",
		"md5:0000000000000000000000000000000000000000000000000000000000000000",
		"sha256:../../../../etc/passwd0000000000000000000000000000000000000000",
		ID("sha256:" + "Z0000000000000000000000000000000000000000000000000000000000000000"[:64]),
	} {
		if _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%q) succeeded, want error", bad)
		}
		if s.Has(bad) {
			t.Errorf("Has(%q) = true", bad)
		}
	}
	// Valid shape but absent content.
	absent := SumID([]byte("never stored"))
	if _, err := s.Get(absent); err == nil {
		t.Error("Get of absent blob succeeded")
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Put([]byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	h := string(id)[len("sha256:"):]
	obj := filepath.Join(dir, "objects", h[:2], h)
	if err := os.WriteFile(obj, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); err == nil {
		t.Fatal("Get of corrupted blob succeeded")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers, blobs = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers*blobs)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < blobs; i++ {
				// Writers collide on every blob: dedup + atomic rename
				// must keep each object intact.
				data := []byte(fmt.Sprintf("blob-%d", i))
				id, err := s.Put(data)
				if err != nil {
					errs <- err
					return
				}
				got, err := s.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("blob %d: got %q", i, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != blobs {
		t.Fatalf("expected %d blobs, got %d", blobs, len(ids))
	}
}

func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	key := SumID([]byte("canonical request"))
	if idx.Get(key) != nil {
		t.Fatal("Get on empty index returned an entry")
	}
	rep, _ := s.Put([]byte("report"))
	art, _ := s.Put([]byte("artifact"))
	e := &Entry{
		Key:       key,
		Request:   []byte(`{"program":"CS/account"}`),
		Report:    rep,
		Artifacts: []ID{art},
		CreatedAt: "2026-08-08T00:00:00Z",
	}
	if err := idx.Put(e); err != nil {
		t.Fatal(err)
	}
	// A fresh Index over the same root sees the persisted entry.
	idx2, err := OpenIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	got := idx2.Get(key)
	if got == nil {
		t.Fatal("persisted entry not found after reopen")
	}
	if got.Report != rep || len(got.Artifacts) != 1 || got.Artifacts[0] != art {
		t.Fatalf("entry mismatch: %+v", got)
	}
	// Mutating the returned copy must not leak into the index.
	got.Artifacts[0] = "sha256:0000000000000000000000000000000000000000000000000000000000000000"
	if idx2.Get(key).Artifacts[0] != art {
		t.Fatal("Get returned a shared slice")
	}
}

func TestIndexWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rep, _ := s.Put([]byte(fmt.Sprintf("report-%d", i)))
		err := idx.Put(&Entry{
			Key:     SumID([]byte(fmt.Sprintf("key-%d", i))),
			Request: []byte(`{}`),
			Report:  rep,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// No temp file left behind and the index parses.
	if _, err := os.Stat(filepath.Join(dir, "index.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("index temp file left behind")
	}
	idx2, err := OpenIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Len() != 5 {
		t.Fatalf("expected 5 entries, got %d", idx2.Len())
	}
}

func TestListEmptyAndPopulated(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty store: fn never called.
	calls := 0
	if err := s.List(func(ID) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("List on empty store visited %d ids", calls)
	}
	// Populated store: every blob visited exactly once, in sorted order.
	want := map[ID]bool{}
	for i := 0; i < 7; i++ {
		id, err := s.Put([]byte(fmt.Sprintf("blob-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = true
	}
	var seen []ID
	if err := s.List(func(id ID) error { seen = append(seen, id); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("List visited %d ids, want %d", len(seen), len(want))
	}
	for i, id := range seen {
		if !want[id] {
			t.Fatalf("List visited unknown id %s", id)
		}
		if i > 0 && seen[i-1] >= id {
			t.Fatalf("List out of order: %s before %s", seen[i-1], id)
		}
	}
	// An fn error stops the walk and propagates.
	stop := fmt.Errorf("stop here")
	calls = 0
	err = s.List(func(ID) error {
		calls++
		if calls == 3 {
			return stop
		}
		return nil
	})
	if err != stop {
		t.Fatalf("List error = %v, want %v", err, stop)
	}
	if calls != 3 {
		t.Fatalf("List kept walking after error: %d calls", calls)
	}
}

func TestIndexEntriesAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	var keys []ID
	for i := 0; i < 4; i++ {
		key := SumID([]byte(fmt.Sprintf("req-%d", i)))
		keys = append(keys, key)
		if err := idx.Put(&Entry{Key: key, Report: SumID([]byte("report"))}); err != nil {
			t.Fatal(err)
		}
	}
	got := idx.Entries()
	if len(got) != 4 {
		t.Fatalf("Entries returned %d, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatalf("Entries out of order: %s before %s", got[i-1].Key, got[i].Key)
		}
	}
	// Mutating a returned entry must not touch the index.
	got[0].Artifacts = append(got[0].Artifacts, SumID([]byte("rogue")))
	if e := idx.Get(got[0].Key); len(e.Artifacts) != 0 {
		t.Fatal("Entries leaked a mutable reference into the index")
	}
	if err := idx.Delete(keys[1]); err != nil {
		t.Fatal(err)
	}
	if idx.Get(keys[1]) != nil {
		t.Fatal("entry still present after Delete")
	}
	// Delete persists: a fresh open must not see the entry.
	idx2, err := OpenIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Len() != 3 || idx2.Get(keys[1]) != nil {
		t.Fatalf("Delete did not persist: len=%d", idx2.Len())
	}
	// Deleting an absent key is a no-op.
	if err := idx.Delete(SumID([]byte("never-stored"))); err != nil {
		t.Fatal(err)
	}
}
