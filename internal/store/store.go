// Package store is the campaign service's persistence layer: a
// content-addressed, filesystem-backed blob store plus a small JSON
// index mapping campaign cache keys to stored results.
//
// Blobs are keyed by the SHA-256 of their content ("sha256:<hex>"), so
// identical artifacts written by different campaigns deduplicate to one
// file and a fetched blob can always be verified against its own name.
// Writes are atomic (temp file + rename into place) and idempotent:
// re-putting existing content is a no-op that returns the same ID.
//
// The index (see Index) is what makes campaigns resumable: a campaign
// request canonicalizes to a cache key, and a completed run records its
// report/artifact/event blob IDs under that key, so an identical
// re-submission returns the stored result instead of re-fuzzing.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ID is a content address: "sha256:" followed by 64 lowercase hex
// digits of the blob's SHA-256.
type ID string

const idPrefix = "sha256:"

// SumID computes the content address of a byte slice.
func SumID(data []byte) ID {
	h := sha256.Sum256(data)
	return ID(idPrefix + hex.EncodeToString(h[:]))
}

// Valid reports whether the ID is syntactically a content address. It
// guards path construction: an invalid ID never touches the filesystem.
func (id ID) Valid() bool {
	s := string(id)
	if !strings.HasPrefix(s, idPrefix) || len(s) != len(idPrefix)+64 {
		return false
	}
	for _, c := range s[len(idPrefix):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// hexPart returns the hex digest portion of a valid ID.
func (id ID) hexPart() string { return string(id)[len(idPrefix):] }

// Store is a content-addressed blob store rooted at a directory:
//
//	<root>/objects/<aa>/<sha256-hex>   (aa = first two hex digits)
//	<root>/tmp/                        (staging for atomic writes)
//
// All methods are safe for concurrent use; cross-process writers are
// also safe because visibility is a single rename of complete content.
type Store struct {
	root string

	mu sync.Mutex // serializes temp-file naming only
	n  int        // temp-file counter
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// path maps a valid ID to its object file.
func (s *Store) path(id ID) string {
	h := id.hexPart()
	return filepath.Join(s.root, "objects", h[:2], h)
}

// Put writes a blob and returns its content address. Existing content
// deduplicates: the write is skipped and the same ID returned. The blob
// becomes visible atomically — readers never observe partial content.
func (s *Store) Put(data []byte) (ID, error) {
	id := SumID(data)
	dst := s.path(id)
	if _, err := os.Stat(dst); err == nil {
		return id, nil // dedup: content already present
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.n++
	tmp := filepath.Join(s.root, "tmp", fmt.Sprintf("put-%d-%d", os.Getpid(), s.n))
	s.mu.Unlock()
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("store: %w", err)
	}
	return id, nil
}

// Get reads a blob back, verifying its content against the address; a
// corrupted object file is an error, never silently wrong bytes.
func (s *Store) Get(id ID) ([]byte, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("store: invalid content id %q", id)
	}
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: no blob %s", id)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	if got := SumID(data); got != id {
		return nil, fmt.Errorf("store: blob %s is corrupt (content hashes to %s)", id, got)
	}
	return data, nil
}

// Has reports whether a blob is present.
func (s *Store) Has(id ID) bool {
	if !id.Valid() {
		return false
	}
	_, err := os.Stat(s.path(id))
	return err == nil
}

// List calls fn for every stored blob's address in sorted order,
// stopping early (and returning fn's error) if fn fails. It is the
// streaming counterpart of IDs for scanners — triage, garbage checks —
// that want to visit blobs without materializing the whole address
// list first.
func (s *Store) List(fn func(ID) error) error {
	ids, err := s.IDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := fn(id); err != nil {
			return err
		}
	}
	return nil
}

// IDs lists every stored blob's address, sorted.
func (s *Store) IDs() ([]ID, error) {
	var out []ID
	objRoot := filepath.Join(s.root, "objects")
	err := filepath.Walk(objRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if id := ID(idPrefix + filepath.Base(path)); id.Valid() {
			out = append(out, id)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
