package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Entry records one completed campaign's stored result: the blob IDs of
// everything a client can fetch back, keyed by the campaign's cache key.
// Timestamps and other non-deterministic metadata live here — never
// inside the report blob itself, which must stay a pure function of the
// campaign request so identical requests share identical content.
type Entry struct {
	// Key is the campaign cache key (SumID of the canonical request).
	Key ID `json:"key"`
	// Request is the canonical request JSON the key was derived from,
	// kept for inspection and for re-validating hits.
	Request json.RawMessage `json:"request"`
	// Report is the campaign result blob (service.CampaignResult JSON).
	Report ID `json:"report"`
	// Events is the campaign's full telemetry event history as JSONL
	// (the SSE replay source and coverage-curve record), if captured.
	Events ID `json:"events,omitempty"`
	// Artifacts are the crash artifact blobs (core.Artifact JSON), in
	// deterministic (tool, program, content) order.
	Artifacts []ID `json:"artifacts,omitempty"`
	// CreatedAt is when the entry was recorded (RFC 3339, UTC).
	CreatedAt string `json:"created_at"`
}

// Index maps campaign cache keys to result entries, persisted as one
// JSON file next to the blob store. Updates rewrite the file atomically
// (temp + rename), so a crashed daemon leaves either the old or the new
// index, never a torn one. All methods are safe for concurrent use.
type Index struct {
	path string

	mu      sync.Mutex
	entries map[ID]*Entry
}

// indexFile is the on-disk shape: entries sorted by key for stable
// serialization.
type indexFile struct {
	Entries []*Entry `json:"entries"`
}

// OpenIndex loads (or initializes) the index file under the store root.
func OpenIndex(s *Store) (*Index, error) {
	idx := &Index{
		path:    filepath.Join(s.Root(), "index.json"),
		entries: make(map[ID]*Entry),
	}
	data, err := os.ReadFile(idx.path)
	if os.IsNotExist(err) {
		return idx, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store index: %w", err)
	}
	var f indexFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("store index %s: malformed: %w", idx.path, err)
	}
	for _, e := range f.Entries {
		if !e.Key.Valid() {
			return nil, fmt.Errorf("store index %s: invalid key %q", idx.path, e.Key)
		}
		idx.entries[e.Key] = e
	}
	return idx, nil
}

// Get returns the entry for a cache key, or nil when the campaign has
// not been run (and recorded) before.
func (idx *Index) Get(key ID) *Entry {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	e, ok := idx.entries[key]
	if !ok {
		return nil
	}
	cp := *e
	cp.Artifacts = append([]ID(nil), e.Artifacts...)
	return &cp
}

// Put records (or replaces) an entry and persists the index atomically.
func (idx *Index) Put(e *Entry) error {
	if !e.Key.Valid() {
		return fmt.Errorf("store index: invalid key %q", e.Key)
	}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	cp := *e
	cp.Artifacts = append([]ID(nil), e.Artifacts...)
	idx.entries[e.Key] = &cp
	return idx.flushLocked()
}

// Entries returns copies of every recorded entry, sorted by key — the
// same order the index file serializes in.
func (idx *Index) Entries() []*Entry {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	out := make([]*Entry, 0, len(idx.entries))
	for _, e := range idx.entries {
		cp := *e
		cp.Artifacts = append([]ID(nil), e.Artifacts...)
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Delete removes an entry and persists the index atomically. Deleting
// an absent key is a no-op.
func (idx *Index) Delete(key ID) error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if _, ok := idx.entries[key]; !ok {
		return nil
	}
	delete(idx.entries, key)
	return idx.flushLocked()
}

// Len returns the number of recorded campaigns.
func (idx *Index) Len() int {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return len(idx.entries)
}

// flushLocked rewrites the index file atomically.
func (idx *Index) flushLocked() error {
	f := indexFile{Entries: make([]*Entry, 0, len(idx.entries))}
	for _, e := range idx.entries {
		f.Entries = append(f.Entries, e)
	}
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Key < f.Entries[j].Key })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("store index: %w", err)
	}
	tmp := idx.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store index: %w", err)
	}
	if err := os.Rename(tmp, idx.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store index: %w", err)
	}
	return nil
}
