// Package stats implements the descriptive and inferential statistics the
// paper's evaluation relies on: mean/std summaries for the Appendix B
// table, the Mann-Whitney U test for the RQ1 bugs-found comparison, and
// the log-rank (Mantel) test for per-program schedules-to-bug comparisons
// with right-censoring (a trial that never finds the bug is censored at
// its budget).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 values).
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// normalSF is the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// chi2SF1 is the chi-square (1 dof) survival function P(X > x).
func chi2SF1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}

// MannWhitneyU performs a two-sided Mann-Whitney U test on independent
// samples xs and ys, returning the U statistic (for xs) and the normal-
// approximation p-value with tie correction. The paper uses this test for
// the statistical significance of RFF's bugs-found advantage (p < 0.001).
func MannWhitneyU(xs, ys []float64) (u, p float64) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range xs {
		all = append(all, obs{x, 0})
	}
	for _, y := range ys {
		all = append(all, obs{y, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie bookkeeping.
	ranks := make([]float64, len(all))
	tieCorrection := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u = r1 - float64(n1*(n1+1))/2

	n := float64(n1 + n2)
	mu := float64(n1) * float64(n2) / 2
	sigma2 := float64(n1) * float64(n2) / 12 * ((n + 1) - tieCorrection/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1
	}
	z := math.Abs(u-mu) / math.Sqrt(sigma2)
	return u, 2 * normalSF(z)
}

// Sample is one survival observation: a time-to-event (schedules to first
// bug) and whether the event occurred; Observed=false means the trial was
// right-censored at Time (budget exhausted without a bug).
type Sample struct {
	Time     float64
	Observed bool
}

// LogRank performs the two-group log-rank (Mantel) test on survival data,
// returning the chi-square statistic (1 dof) and p-value. The paper uses
// it for the per-program "finds the bug in significantly fewer schedules"
// comparisons (p < 0.05).
func LogRank(a, b []Sample) (chi2, p float64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 1
	}
	// Gather distinct event times across both groups.
	timesSet := make(map[float64]struct{})
	for _, s := range a {
		if s.Observed {
			timesSet[s.Time] = struct{}{}
		}
	}
	for _, s := range b {
		if s.Observed {
			timesSet[s.Time] = struct{}{}
		}
	}
	if len(timesSet) == 0 {
		return 0, 1 // no events anywhere
	}
	times := make([]float64, 0, len(timesSet))
	for t := range timesSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	atRisk := func(group []Sample, t float64) (n, events float64) {
		for _, s := range group {
			if s.Time >= t {
				n++
			}
			if s.Observed && s.Time == t {
				events++
			}
		}
		return
	}

	var oMinusE, varSum float64
	for _, t := range times {
		n1, d1 := atRisk(a, t)
		n2, d2 := atRisk(b, t)
		n := n1 + n2
		d := d1 + d2
		if n < 2 || d == 0 {
			continue
		}
		e1 := d * n1 / n
		oMinusE += d1 - e1
		varSum += d * (n1 / n) * (n2 / n) * (n - d) / (n - 1)
	}
	if varSum <= 0 {
		return 0, 1
	}
	chi2 = oMinusE * oMinusE / varSum
	return chi2, chi2SF1(chi2)
}

// SignificantlyFewer reports whether group a finds bugs in significantly
// fewer schedules than group b: a log-rank p below alpha with a's mean
// observed time smaller (direction check).
func SignificantlyFewer(a, b []Sample, alpha float64) bool {
	_, p := LogRank(a, b)
	if p >= alpha {
		return false
	}
	score := func(g []Sample) float64 {
		// Censored trials count at their censoring time, which is always
		// beyond any observed time in the same experiment.
		var xs []float64
		for _, s := range g {
			xs = append(xs, s.Time)
		}
		return Mean(xs)
	}
	return score(a) < score(b)
}
