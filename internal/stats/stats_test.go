package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rff/internal/stats"
)

func TestDescriptives(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := stats.Mean(xs); m != 5 {
		t.Fatalf("mean: want 5, got %v", m)
	}
	if s := stats.Std(xs); math.Abs(s-2.138) > 0.001 {
		t.Fatalf("std: want ~2.138, got %v", s)
	}
	if md := stats.Median(xs); md != 4.5 {
		t.Fatalf("median: want 4.5, got %v", md)
	}
	if stats.Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if stats.Mean(nil) != 0 || stats.Std(nil) != 0 || stats.Median(nil) != 0 {
		t.Fatal("empty-input defaults")
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Classic worked example: U for the first sample against the second.
	x := []float64{7, 3, 6, 2, 4, 3, 5, 5}
	y := []float64{3, 5, 6, 4, 6, 5, 7, 5}
	u, p := stats.MannWhitneyU(x, y)
	// R's wilcox.test(x, y) gives W = 23, p ≈ 0.4 (normal approx with ties).
	if u != 23 {
		t.Fatalf("U: want 23, got %v", u)
	}
	if p < 0.3 || p > 0.6 {
		t.Fatalf("p out of plausible range: %v", p)
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	_, p := stats.MannWhitneyU(x, y)
	if p > 0.001 {
		t.Fatalf("fully separated samples must be significant, p=%v", p)
	}
	_, p = stats.MannWhitneyU(x, x)
	if p < 0.99 {
		t.Fatalf("identical samples must not be significant, p=%v", p)
	}
}

func TestMannWhitneyUSymmetry(t *testing.T) {
	// Property: U1 + U2 = n1*n2, and p is symmetric.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2 := 3+r.Intn(10), 3+r.Intn(10)
		xs := make([]float64, n1)
		ys := make([]float64, n2)
		for i := range xs {
			xs[i] = float64(r.Intn(20))
		}
		for i := range ys {
			ys[i] = float64(r.Intn(20))
		}
		u1, p1 := stats.MannWhitneyU(xs, ys)
		u2, p2 := stats.MannWhitneyU(ys, xs)
		return math.Abs(u1+u2-float64(n1*n2)) < 1e-9 && math.Abs(p1-p2) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLogRankIdenticalGroups(t *testing.T) {
	g := []stats.Sample{{1, true}, {5, true}, {9, true}, {14, true}}
	chi, p := stats.LogRank(g, g)
	if chi > 1e-9 || p < 0.99 {
		t.Fatalf("identical groups: chi=%v p=%v", chi, p)
	}
}

func TestLogRankSeparatedGroups(t *testing.T) {
	fast := make([]stats.Sample, 20)
	slow := make([]stats.Sample, 20)
	for i := range fast {
		fast[i] = stats.Sample{Time: float64(1 + i), Observed: true}
		slow[i] = stats.Sample{Time: float64(1000 + i), Observed: true}
	}
	_, p := stats.LogRank(fast, slow)
	if p > 0.001 {
		t.Fatalf("separated survival must be significant, p=%v", p)
	}
	if !stats.SignificantlyFewer(fast, slow, 0.05) {
		t.Fatal("fast group must be significantly fewer")
	}
	if stats.SignificantlyFewer(slow, fast, 0.05) {
		t.Fatal("direction check failed")
	}
}

func TestLogRankCensoring(t *testing.T) {
	// One group always finds the bug, the other never does (censored at
	// budget): strongly significant.
	found := make([]stats.Sample, 20)
	never := make([]stats.Sample, 20)
	for i := range found {
		found[i] = stats.Sample{Time: float64(2 + i), Observed: true}
		never[i] = stats.Sample{Time: 5000, Observed: false}
	}
	_, p := stats.LogRank(found, never)
	if p > 0.001 {
		t.Fatalf("found-vs-censored must be significant, p=%v", p)
	}
	// All-censored on both sides: no events, no verdict.
	if _, p := stats.LogRank(never, never); p < 0.99 {
		t.Fatalf("no events anywhere must be non-significant, p=%v", p)
	}
}

func TestLogRankSymmetryProperty(t *testing.T) {
	// Property: chi-square is symmetric in group order.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() []stats.Sample {
			n := 5 + r.Intn(10)
			g := make([]stats.Sample, n)
			for i := range g {
				g[i] = stats.Sample{Time: float64(1 + r.Intn(30)), Observed: r.Intn(4) != 0}
			}
			return g
		}
		a, b := mk(), mk()
		c1, p1 := stats.LogRank(a, b)
		c2, p2 := stats.LogRank(b, a)
		return math.Abs(c1-c2) < 1e-9 && math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
