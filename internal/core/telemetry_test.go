package core_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/telemetry"
)

// runWithHub runs a fuzzing campaign with a fully wired telemetry hub and
// returns the report, the final snapshot, and the decoded event stream.
func runWithHub(t *testing.T, prog exec.Program, opts core.Options) (*core.Report, telemetry.Snapshot, []telemetry.Event) {
	t.Helper()
	var buf bytes.Buffer
	hub := telemetry.NewHub()
	hub.Events = telemetry.NewEventWriter(&buf)
	opts.Telemetry = hub
	rep := core.NewFuzzer("prog", prog, opts).Run()
	hub.Flush()

	var evs []telemetry.Event
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return rep, hub.Snapshot(), evs
}

func TestFuzzerTelemetryCounters(t *testing.T) {
	rep, snap, evs := runWithHub(t, reorder(5), core.Options{Budget: 60, Seed: 11})
	prog := telemetry.L("program", "prog")

	if got := snap.Value(telemetry.MSchedulesExecuted, prog); got != int64(rep.Executions) {
		t.Fatalf("schedules_executed = %d, want %d", got, rep.Executions)
	}
	if got := snap.Value(telemetry.MRFPairsNew, prog); got != int64(rep.UniquePairs) {
		t.Fatalf("rf_pairs_new = %d, want %d (UniquePairs)", got, rep.UniquePairs)
	}
	if got := snap.Value(telemetry.MRFCombosNew, prog); got != int64(rep.UniqueSigs) {
		t.Fatalf("rf_combos_new = %d, want %d (UniqueSigs)", got, rep.UniqueSigs)
	}
	if got := snap.Value(telemetry.MCorpusSize, prog); got != int64(rep.CorpusSize) {
		t.Fatalf("corpus_size gauge = %d, want %d", got, rep.CorpusSize)
	}
	// Every execution flows through the engine: the steps histogram must
	// have one observation per schedule and a positive event total.
	hd := snap.Histogram(telemetry.MStepsPerSchedule)
	if hd == nil || hd.Count != int64(rep.Executions) || hd.Sum <= 0 {
		t.Fatalf("steps_per_schedule histogram = %+v, want count %d", hd, rep.Executions)
	}
	if got := snap.Value(telemetry.MEngineExecutions); got != int64(rep.Executions) {
		t.Fatalf("engine_executions = %d, want %d", got, rep.Executions)
	}
	// The power schedule assigned energy at least once per stage.
	if hd := snap.Histogram(telemetry.MEnergyAssigned, prog); hd == nil || hd.Count == 0 {
		t.Fatalf("energy_assigned histogram missing: %+v", hd)
	}

	// Corpus additions produced interesting-schedule events; reorder(5)
	// crashes within the budget, producing exactly one first-bug event.
	var interesting, firstBug int
	for _, ev := range evs {
		switch ev.Kind {
		case telemetry.EvInteresting:
			interesting++
		case telemetry.EvFirstBug:
			firstBug++
		}
	}
	if interesting == 0 {
		t.Fatal("no interesting-schedule events emitted")
	}
	if !rep.FoundBug() {
		t.Fatalf("reorder(5) should crash within 60 schedules")
	}
	if firstBug != 1 {
		t.Fatalf("first-bug events = %d, want 1", firstBug)
	}
	if got := snap.Value(telemetry.MSchedulesCrashed, prog); got != int64(len(rep.Failures)) {
		t.Fatalf("schedules_crashed = %d, want %d", got, len(rep.Failures))
	}
}

func TestFuzzerTelemetryConstraints(t *testing.T) {
	// With the proactive scheduler on, a bug-finding reorder campaign
	// must witness positive constraints along the way.
	_, snap, _ := runWithHub(t, reorder(5), core.Options{Budget: 200, Seed: 5})
	if got := snap.Value(telemetry.MConstraintSatisfied, telemetry.L("program", "prog")); got == 0 {
		t.Fatal("constraint_satisfied never incremented over 200 schedules")
	}
}

func TestFuzzerNilTelemetryUnchanged(t *testing.T) {
	// A nil sink must not alter campaign behaviour: identical reports
	// with and without telemetry under the same seed.
	opts := core.Options{Budget: 80, Seed: 4}
	plain := core.NewFuzzer("prog", reorder(3), opts).Run()
	wired, _, _ := runWithHub(t, reorder(3), opts)
	if plain.Executions != wired.Executions || plain.FirstBug != wired.FirstBug ||
		plain.CorpusSize != wired.CorpusSize || plain.UniquePairs != wired.UniquePairs {
		t.Fatalf("telemetry changed campaign behaviour: %+v vs %+v", plain, wired)
	}
}

func TestTraceObserverPanicDoesNotCorruptCorpus(t *testing.T) {
	// An observer that panics on every trace must not kill the campaign:
	// the fuzzer still runs to its budget, keeps feeding the corpus, and
	// counts the recovered panics.
	calls := 0
	opts := core.Options{
		Budget: 40, Seed: 9,
		TraceObserver: func(tr *exec.Trace) {
			calls++
			panic("observer exploded")
		},
	}
	rep, snap, _ := runWithHub(t, reorder(3), opts)
	if rep.Executions != 40 {
		t.Fatalf("campaign stopped early at %d/40 executions", rep.Executions)
	}
	if calls != rep.Executions {
		t.Fatalf("observer fired %d times, want once per %d executions", calls, rep.Executions)
	}
	if rep.CorpusSize < 1 {
		t.Fatalf("corpus corrupted: size %d", rep.CorpusSize)
	}
	if got := snap.Value(telemetry.MObserverPanics, telemetry.L("program", "prog")); got != int64(rep.Executions) {
		t.Fatalf("observer_panics = %d, want %d", got, rep.Executions)
	}

	// The surviving campaign must match a panic-free observer run:
	// recovery may not perturb feedback, mutation, or corpus state.
	clean := core.NewFuzzer("prog", reorder(3), core.Options{
		Budget: 40, Seed: 9,
		TraceObserver: func(tr *exec.Trace) {},
	}).Run()
	if clean.CorpusSize != rep.CorpusSize || clean.UniquePairs != rep.UniquePairs ||
		clean.FirstBug != rep.FirstBug {
		t.Fatalf("panicking observer perturbed the campaign: %+v vs %+v", rep, clean)
	}
}
