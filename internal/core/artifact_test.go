package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

func TestArtifactRoundTrip(t *testing.T) {
	rep := core.NewFuzzer("reorder_5", reorder(5), core.Options{
		Budget: 500, Seed: 21, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		t.Fatal("no failure to serialize")
	}
	dir := t.TempDir()
	paths, err := core.SaveFailures(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(rep.Failures) {
		t.Fatalf("want %d artifacts, got %d", len(rep.Failures), len(paths))
	}

	a, err := core.LoadArtifact(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Program != "reorder_5" || a.Execution != rep.Failures[0].Execution {
		t.Fatalf("metadata mismatch: %+v", a)
	}
	sched2, err := a.AbstractSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched2.Key() != rep.Failures[0].Schedule.Key() {
		t.Fatalf("schedule round-trip mismatch:\n%v\n%v", sched2, rep.Failures[0].Schedule)
	}

	// The deserialized decisions replay to the same failure.
	rr := exec.Run("replay", reorder(5), exec.Config{Scheduler: sched.NewReplay(a.ThreadOrder())})
	if rr.Failure == nil || rr.Failure.Kind.String() != a.FailureKind {
		t.Fatalf("replay mismatch: %v vs %s", rr.Failure, a.FailureKind)
	}
}

func TestArtifactNegatedConstraints(t *testing.T) {
	fr := core.FailureRecord{
		Schedule: core.NewSchedule(core.Constraint{
			Write:   exec.AbstractEvent{Op: exec.OpVarInit, Var: "x", Loc: "a.go:1"},
			Read:    exec.AbstractEvent{Op: exec.OpLock, Var: "x", Loc: "a.go:2"},
			Negated: true,
		}),
		Seed:      7,
		Execution: 3,
		Failure:   &exec.Failure{Kind: exec.FailDeadlock, Msg: "stuck"},
		Decisions: []exec.ThreadID{1, 2, 1},
	}
	a := core.NewArtifact("p", fr)
	path := filepath.Join(t.TempDir(), "crash.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := core.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.AbstractSchedule()
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Constraints()
	if len(cs) != 1 || !cs[0].Negated || cs[0].Read.Op != exec.OpLock || cs[0].Write.Op != exec.OpVarInit {
		t.Fatalf("negated lock constraint mangled: %v", cs)
	}
	if got := b.ThreadOrder(); len(got) != 3 || got[1] != 2 {
		t.Fatalf("decisions mangled: %v", got)
	}
}

func TestLoadArtifactErrors(t *testing.T) {
	if _, err := core.LoadArtifact(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestArtifactSaveLoadSaveByteIdentical: the serialized form is a fixed
// point — saving a loaded artifact reproduces the original file byte
// for byte, so crash files survive triage round trips without diff
// noise.
func TestArtifactSaveLoadSaveByteIdentical(t *testing.T) {
	rep := core.NewFuzzer("reorder_5", reorder(5), core.Options{
		Budget: 500, Seed: 21, StopAtFirstBug: true,
	}).Run()
	if !rep.FoundBug() {
		t.Fatal("no failure to serialize")
	}
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	if err := core.NewArtifact("reorder_5", rep.Failures[0]).Save(first); err != nil {
		t.Fatal(err)
	}
	a, err := core.LoadArtifact(first)
	if err != nil {
		t.Fatal(err)
	}
	second := filepath.Join(dir, "second.json")
	if err := a.Save(second); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("save/load/save changed the bytes:\n%s\nvs\n%s", b1, b2)
	}
}
