package core

import (
	"rff/internal/exec"
	"rff/internal/sched"
)

// machinePhase tracks a constraint state machine through one execution.
// The explicit q1..q6 states of Figure 2 collapse onto a phase plus the
// live engine state (is the target write currently the last write? is the
// read enabled?), which together determine the prioritization votes.
type machinePhase uint8

const (
	// phaseActive: the constraint still steers scheduling.
	phaseActive machinePhase = iota
	// phaseSatisfied: a positive constraint was witnessed and retired
	// (existential semantics — Figure 2a's accept).
	phaseSatisfied
	// phaseRejected: a negative constraint was unavoidably violated
	// (Figure 2b's REJECT); it stops influencing the run.
	phaseRejected
)

// machine drives one reads-from constraint of the abstract schedule,
// implementing the Figure 2 prioritization rules.
type machine struct {
	c     Constraint
	phase machinePhase
}

// vote adds this machine's priority votes for the enabled pendings:
// +1 boosts, -1 deprioritizes. lastWriteMatches reports whether the
// constraint's write is currently the last write on its variable.
func (m *machine) vote(v *exec.View, votes []int) {
	if m.phase != phaseActive {
		return
	}
	lw, _, ok := v.LastWrite(m.c.Read.Var)
	writeIsLast := ok && lw == m.c.Write

	for i, p := range v.Enabled {
		instRead := p.IsReadLike() && p.Abstract() == m.c.Read
		wAbs, isWrite := p.AbstractWrite()
		instWrite := isWrite && wAbs == m.c.Write
		otherWrite := isWrite && !instRead && p.VarName == m.c.Read.Var && wAbs != m.c.Write

		if !m.c.Negated {
			// Positive w -rf-> r (Figure 2a).
			if writeIsLast {
				// Blue states: w executed and still visible — rush the
				// read, hold off overwriters.
				if instRead {
					votes[i]++
				}
				if otherWrite {
					votes[i]--
				}
			} else if m.readEnabled(v) {
				// Red states: the read is ready too early — delay it and
				// pull the target write forward.
				if instRead {
					votes[i]--
				}
				if instWrite {
					votes[i]++
				}
			}
			// Green states (read not enabled, write not last): no bias.
		} else {
			// Negative w -/rf/-> r (Figure 2b).
			if writeIsLast {
				// Yellow states: reading now would violate — delay the
				// read and push any other write to bury w.
				if instRead {
					votes[i]--
				}
				if otherWrite {
					votes[i]++
				}
			} else {
				// Purple states: reading now is safe — do it greedily,
				// and keep w out of the picture.
				if instRead {
					votes[i]++
				}
				if instWrite {
					votes[i]--
				}
			}
		}
	}
}

// readEnabled reports whether some enabled pending instantiates the
// constraint's read.
func (m *machine) readEnabled(v *exec.View) bool {
	for _, p := range v.Enabled {
		if p.IsReadLike() && p.Abstract() == m.c.Read {
			return true
		}
	}
	return false
}

// observe advances the machine on an executed read event (writerAbs is the
// abstract event of the write it observed).
func (m *machine) observe(readAbs, writerAbs exec.AbstractEvent) {
	if m.phase != phaseActive || readAbs != m.c.Read {
		return
	}
	if writerAbs == m.c.Write {
		if m.c.Negated {
			m.phase = phaseRejected // REJECT: violated for the whole run
		} else {
			m.phase = phaseSatisfied // existential: witnessed once, retire
		}
	}
	// A positive constraint whose read observed a different writer simply
	// reverts to its initial behaviour (Figure 2a's fallback to q1): the
	// same abstract read may recur later in the run.
}

// Proactive is RFF's proactive reads-from scheduler: it biases scheduling
// decisions toward instantiating a target abstract schedule, one state
// machine per constraint, and degrades to POS whenever the machines are
// indifferent or in conflict (Section 3, "Proactive Scheduling of
// Reads-from Constraints").
//
// Set the target via SetSchedule before each execution; the fuzzer does
// this with every mutant it wants tested.
type Proactive struct {
	pos      *sched.POS
	target   Schedule
	machines []machine
	// writeAbs resolves executed write event IDs to their abstract events
	// so reads can be matched to the writer they observed. Trace IDs are
	// dense and monotonic, so a slice indexed by ID replaces the previous
	// per-execution map; its backing array is reused across executions.
	writeAbs []exec.AbstractEvent

	votes    []int
	restrict []bool
}

// NewProactive returns a proactive scheduler with an empty target schedule
// (pure POS behaviour until SetSchedule is called).
func NewProactive() *Proactive {
	return &Proactive{pos: sched.NewPOS()}
}

// SetSchedule installs the abstract schedule the next execution should be
// driven toward.
func (s *Proactive) SetSchedule(target Schedule) { s.target = target }

// Name implements exec.Scheduler.
func (s *Proactive) Name() string { return "RFF" }

// Begin implements exec.Scheduler: rebuilds one machine per constraint.
func (s *Proactive) Begin(seed int64) {
	s.pos.Begin(seed)
	cs := s.target.Constraints()
	s.machines = s.machines[:0]
	for _, c := range cs {
		s.machines = append(s.machines, machine{c: c})
	}
	s.writeAbs = s.writeAbs[:0]
}

// Pick implements exec.Scheduler: sum machine votes per enabled event, keep
// the maximum-vote class, and let POS choose within it. With no active
// machines every vote is zero and the behaviour is exactly POS.
func (s *Proactive) Pick(v *exec.View) int {
	n := len(v.Enabled)
	if cap(s.votes) < n {
		s.votes = make([]int, n)
		s.restrict = make([]bool, n)
	}
	votes := s.votes[:n]
	restrict := s.restrict[:n]
	for i := range votes {
		votes[i] = 0
	}
	for i := range s.machines {
		s.machines[i].vote(v, votes)
	}
	max := votes[0]
	for _, x := range votes[1:] {
		if x > max {
			max = x
		}
	}
	for i, x := range votes {
		restrict[i] = x == max
	}
	idx := s.pos.ArgMax(v.Enabled, restrict)
	s.pos.ResetRacing(v.Enabled, v.Enabled[idx])
	return idx
}

// Executed implements exec.Scheduler: tracks writer abstractions and
// advances constraint machines on reads.
func (s *Proactive) Executed(ev exec.Event) {
	if ev.Op.ActsAsWrite() {
		for len(s.writeAbs) <= int(ev.ID) {
			s.writeAbs = append(s.writeAbs, exec.AbstractEvent{})
		}
		s.writeAbs[ev.ID] = ev.Abstract()
	}
	if ev.Op.ReadsFrom() && ev.RF != 0 {
		if ev.RF >= len(s.writeAbs) {
			return
		}
		writer := s.writeAbs[ev.RF]
		if writer.IsZero() {
			return
		}
		readAbs := ev.Abstract()
		for i := range s.machines {
			s.machines[i].observe(readAbs, writer)
		}
	}
}

// End implements exec.Scheduler.
func (s *Proactive) End(*exec.Trace) {}

// SatisfiedCount returns how many positive constraints were witnessed in
// the last execution — useful for tests and diagnostics.
func (s *Proactive) SatisfiedCount() int {
	n := 0
	for _, m := range s.machines {
		if m.phase == phaseSatisfied {
			n++
		}
	}
	return n
}

// RejectedCount returns how many negative constraints were violated in the
// last execution.
func (s *Proactive) RejectedCount() int {
	n := 0
	for _, m := range s.machines {
		if m.phase == phaseRejected {
			n++
		}
	}
	return n
}
