// Package core implements the paper's primary contribution: the RFF
// ("Reads-From Fuzzer") greybox schedule fuzzer. It contains
//
//   - abstract schedules — sets of positive and negative reads-from
//     constraints over abstract events (Section 3, "Abstract events and
//     schedules"), with the four mutation operators insert/swap/delete/
//     negate;
//   - the proactive reads-from scheduler — per-constraint state machines
//     (Figure 2a/2b) that bias a POS scheduler toward satisfying an
//     abstract schedule;
//   - reads-from feedback — the isInteresting predicate (new reads-from
//     pair, or crash) and the frequency bookkeeping behind it;
//   - the cut-off exponential power schedule (Section 4.2);
//   - the fuzzing loop itself (Algorithm 1).
package core

import (
	"math/rand"
	"strings"

	"rff/internal/exec"
)

// Constraint is one reads-from constraint of an abstract schedule: the
// paper's C+ = w --rf--> r (Negated=false) or C- = w -/rf/-> r
// (Negated=true). Write and Read are abstract events over the same shared
// variable; Write may be the variable's synthetic initial write.
type Constraint struct {
	Write   exec.AbstractEvent
	Read    exec.AbstractEvent
	Negated bool
}

// Negate returns the constraint with flipped polarity (the paper's ¬C).
func (c Constraint) Negate() Constraint {
	c.Negated = !c.Negated
	return c
}

// String renders the constraint as "w(x)@l1 -rf-> r(x)@l2" or with -/rf/->
// for negated constraints.
func (c Constraint) String() string {
	arrow := " -rf-> "
	if c.Negated {
		arrow = " -/rf/-> "
	}
	return c.Write.String() + arrow + c.Read.String()
}

// Schedule is an abstract schedule: a set of reads-from constraints. A
// concrete execution instantiates the schedule when every positive
// constraint is witnessed by some reads-from pair and no negative
// constraint is. The zero value is the empty schedule ε, which every
// execution instantiates.
type Schedule struct {
	constraints []Constraint
}

// EmptySchedule returns ε, the initial corpus member of Algorithm 1.
func EmptySchedule() Schedule { return Schedule{} }

// NewSchedule builds a schedule from the given constraints (duplicates
// collapse).
func NewSchedule(cs ...Constraint) Schedule {
	var s Schedule
	for _, c := range cs {
		s.insert(c)
	}
	return s
}

// Constraints returns a copy of the constraint set in insertion order.
func (s Schedule) Constraints() []Constraint {
	out := make([]Constraint, len(s.constraints))
	copy(out, s.constraints)
	return out
}

// Len returns the number of constraints.
func (s Schedule) Len() int { return len(s.constraints) }

// Contains reports whether the schedule includes the exact constraint.
func (s Schedule) Contains(c Constraint) bool {
	for _, x := range s.constraints {
		if x == c {
			return true
		}
	}
	return false
}

// clone returns an independent copy.
func (s Schedule) clone() Schedule {
	return Schedule{constraints: append([]Constraint(nil), s.constraints...)}
}

// insert adds c if not already present (set semantics).
func (s *Schedule) insert(c Constraint) {
	if !s.Contains(c) {
		s.constraints = append(s.constraints, c)
	}
}

// removeAt deletes the i-th constraint.
func (s *Schedule) removeAt(i int) {
	s.constraints = append(s.constraints[:i], s.constraints[i+1:]...)
}

// String renders the schedule as {C1, C2, ...}.
func (s Schedule) String() string {
	if len(s.constraints) == 0 {
		return "{ε}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range s.constraints {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns a canonical representation usable as a map key (constraints
// sorted), so reads-from–identical schedules compare equal regardless of
// construction order.
func (s Schedule) Key() string {
	cs := s.Constraints()
	// Insertion sort by rendered form: schedules are small (≤ tens).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].String() < cs[j-1].String(); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	var b strings.Builder
	for _, c := range cs {
		b.WriteString(c.String())
		b.WriteByte(';')
	}
	return b.String()
}

// InstantiatedBy reports whether the trace satisfies the schedule: every
// positive constraint appears among the trace's reads-from pairs, and no
// negative constraint does (Section 3's instantiation conditions).
func (s Schedule) InstantiatedBy(t *exec.Trace) bool {
	pairs := make(map[exec.RFPair]struct{})
	for _, p := range t.RFPairs() {
		pairs[p] = struct{}{}
	}
	for _, c := range s.constraints {
		_, present := pairs[exec.RFPair{Write: c.Write, Read: c.Read}]
		if c.Negated && present {
			return false
		}
		if !c.Negated && !present {
			return false
		}
	}
	return true
}

// MutationOp enumerates the paper's four mutation operators.
type MutationOp uint8

const (
	// MutInsert adds a fresh constraint drawn from the event pool.
	MutInsert MutationOp = iota
	// MutSwap replaces one constraint with a fresh one.
	MutSwap
	// MutDelete removes one constraint.
	MutDelete
	// MutNegate flips one constraint's polarity.
	MutNegate
	numMutationOps
)

// String names the operator.
func (m MutationOp) String() string {
	switch m {
	case MutInsert:
		return "insert"
	case MutSwap:
		return "swap"
	case MutDelete:
		return "delete"
	case MutNegate:
		return "negate"
	}
	return "mut?"
}

// MutatorConfig tunes Mutate.
type MutatorConfig struct {
	// MaxConstraints caps schedule growth; inserts degrade to swaps at
	// the cap. Zero means DefaultMaxConstraints.
	MaxConstraints int
	// NegatedInsertProb is the probability a freshly drawn constraint is
	// negated. Zero means DefaultNegatedInsertProb.
	NegatedInsertProb float64
	// Disabled removes mutation operators from the draw (for operator
	// ablation studies); disabling everything is a configuration error
	// handled by falling back to insert.
	Disabled []MutationOp
}

func (c MutatorConfig) disabled(op MutationOp) bool {
	for _, d := range c.Disabled {
		if d == op {
			return true
		}
	}
	return false
}

// DefaultMaxConstraints bounds abstract-schedule size.
const DefaultMaxConstraints = 16

// DefaultNegatedInsertProb is the chance a drawn constraint is negated.
const DefaultNegatedInsertProb = 0.25

func (c MutatorConfig) maxConstraints() int {
	if c.MaxConstraints <= 0 {
		return DefaultMaxConstraints
	}
	return c.MaxConstraints
}

func (c MutatorConfig) negProb() float64 {
	if c.NegatedInsertProb <= 0 {
		return DefaultNegatedInsertProb
	}
	return c.NegatedInsertProb
}

// Mutate implements mutateSchedule(σ, S): pick one of the four operators
// uniformly, drawing any needed constraints from the pool of potentially
// conflicting events observed so far. If the chosen operator is
// inapplicable (e.g. delete on ε, insert with an empty pool) it falls back
// sensibly so that a mutation always makes progress when possible.
func Mutate(s Schedule, pool *EventPool, rng *rand.Rand, cfg MutatorConfig) Schedule {
	out := s.clone()
	allowed := make([]MutationOp, 0, numMutationOps)
	for o := MutationOp(0); o < numMutationOps; o++ {
		if !cfg.disabled(o) {
			allowed = append(allowed, o)
		}
	}
	if len(allowed) == 0 {
		allowed = append(allowed, MutInsert) // disabling everything is a config error
	}
	op := allowed[rng.Intn(len(allowed))]

	draw := func() (Constraint, bool) {
		c, ok := pool.RandomConstraint(rng)
		if !ok {
			return Constraint{}, false
		}
		if rng.Float64() < cfg.negProb() {
			c.Negated = true
		}
		return c, ok
	}

	// Degrade inapplicable choices: shrink ops need a non-empty schedule,
	// insert needs pool material and headroom.
	if out.Len() == 0 && (op == MutSwap || op == MutDelete || op == MutNegate) {
		op = MutInsert
	}
	if op == MutInsert && out.Len() >= cfg.maxConstraints() {
		// No headroom: degrade to the first allowed shrinking/replacing
		// operator; with all of them disabled the mutation is a no-op.
		switch {
		case !cfg.disabled(MutSwap):
			op = MutSwap
		case !cfg.disabled(MutDelete):
			op = MutDelete
		case !cfg.disabled(MutNegate):
			op = MutNegate
		default:
			return out
		}
	}

	switch op {
	case MutInsert:
		if c, ok := draw(); ok {
			out.insert(c)
		}
	case MutSwap:
		if c, ok := draw(); ok && out.Len() > 0 {
			out.removeAt(rng.Intn(out.Len()))
			out.insert(c)
		}
	case MutDelete:
		out.removeAt(rng.Intn(out.Len()))
	case MutNegate:
		i := rng.Intn(out.Len())
		out.constraints[i] = out.constraints[i].Negate()
	}
	return out
}
