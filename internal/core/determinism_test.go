package core_test

// Campaign-level determinism: two fuzzing campaigns with the same program
// and seed must produce identical feedback state — the property the
// interning and buffer-recycling layers must preserve, since corpus
// decisions, power-schedule energy, and every reported statistic flow from
// it.

import (
	"reflect"
	"testing"

	"rff/internal/core"
)

func TestCampaignDeterministicWithInterning(t *testing.T) {
	runOnce := func() *core.Report {
		return core.NewFuzzer("reorder", reorder(4), core.Options{
			Budget: 150,
			Seed:   11,
		}).Run()
	}
	a, b := runOnce(), runOnce()

	if a.FirstBug != b.FirstBug {
		t.Errorf("FirstBug diverges: %d vs %d", a.FirstBug, b.FirstBug)
	}
	if a.CorpusSize != b.CorpusSize {
		t.Errorf("CorpusSize diverges: %d vs %d", a.CorpusSize, b.CorpusSize)
	}
	if a.UniquePairs != b.UniquePairs {
		t.Errorf("UniquePairs diverges: %d vs %d", a.UniquePairs, b.UniquePairs)
	}
	if a.UniqueSigs != b.UniqueSigs {
		t.Errorf("UniqueSigs diverges: %d vs %d", a.UniqueSigs, b.UniqueSigs)
	}
	if !reflect.DeepEqual(a.SigFrequencies, b.SigFrequencies) {
		t.Errorf("SigFrequencies diverge:\n  a: %v\n  b: %v", a.SigFrequencies, b.SigFrequencies)
	}
	if a.UniqueSigs == 0 {
		t.Error("campaign observed no combinations")
	}
}
