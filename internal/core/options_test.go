package core_test

import (
	"math/rand"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

func TestInitialCorpusSeedsAlgorithm(t *testing.T) {
	// Seed the corpus with the known violating schedule: the fuzzer's
	// very first mutations start in the right neighborhood and find the
	// bug essentially immediately.
	probe := exec.Run("probe", reorder(10), exec.Config{Scheduler: sched.NewPOS(), Seed: 1})
	var setterA, readerA exec.AbstractEvent
	var initB, readerB exec.AbstractEvent
	for _, e := range probe.Trace.Events {
		switch {
		case e.Op == exec.OpWrite && e.VarStr == "a":
			setterA = e.Abstract()
		case e.Op == exec.OpVarInit && e.VarStr == "b":
			initB = e.Abstract()
		case e.Op == exec.OpRead && e.VarStr == "a":
			readerA = e.Abstract()
		case e.Op == exec.OpRead && e.VarStr == "b":
			readerB = e.Abstract()
		}
	}
	violation := core.NewSchedule(
		core.Constraint{Write: setterA, Read: readerA},
		core.Constraint{Write: initB, Read: readerB},
	)
	rep := core.NewFuzzer("reorder_10", reorder(10), core.Options{
		Budget: 50, Seed: 2, StopAtFirstBug: true,
		InitialCorpus: []core.Schedule{violation},
	}).Run()
	if !rep.FoundBug() || rep.FirstBug > 10 {
		t.Fatalf("seeded corpus should crack reorder_10 immediately, got %d", rep.FirstBug)
	}
}

func TestMutatorDisabledOps(t *testing.T) {
	pool := core.NewEventPool()
	res := exec.Run("probe", reorder(2), exec.Config{Scheduler: sched.NewPOS(), Seed: 3})
	pool.AddTrace(res.Trace)
	rng := rand.New(rand.NewSource(9))

	// Disable everything but insert: schedules only ever grow (up to the
	// cap) and no constraint is ever negated.
	cfg := core.MutatorConfig{
		Disabled: []core.MutationOp{core.MutSwap, core.MutDelete, core.MutNegate},
	}
	s := core.EmptySchedule()
	for i := 0; i < 200; i++ {
		next := core.Mutate(s, pool, rng, cfg)
		if next.Len() < s.Len() {
			t.Fatalf("delete happened with delete disabled: %d -> %d", s.Len(), next.Len())
		}
		s = next
	}
	if s.Len() == 0 {
		t.Fatal("insert-only mutation never grew the schedule")
	}
}

func TestTraceObserverSeesEveryExecution(t *testing.T) {
	var traces, events int
	rep := core.NewFuzzer("wr", writerReader, core.Options{
		Budget: 25, Seed: 3,
		TraceObserver: func(tr *exec.Trace) {
			traces++
			events += tr.Len()
		},
	}).Run()
	if traces != rep.Executions {
		t.Fatalf("observer saw %d traces, fuzzer ran %d", traces, rep.Executions)
	}
	if events == 0 {
		t.Fatal("observer saw empty traces")
	}
}
