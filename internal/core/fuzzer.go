package core

import (
	"context"
	"math/rand"

	"rff/internal/exec"
	"rff/internal/telemetry"
)

// Options configures a fuzzing campaign on one program.
type Options struct {
	// Budget is the maximum number of schedules (executions) to try.
	// Required.
	Budget int
	// MaxSteps bounds each execution's event count (0 = engine default).
	MaxSteps int
	// Seed makes the whole campaign deterministic.
	Seed int64
	// Power tunes the power schedule.
	Power PowerConfig
	// Mutator tunes schedule mutation.
	Mutator MutatorConfig
	// DisableFeedback ablates the greybox feedback (RQ3): the corpus is
	// never extended and every stage gets unit energy, leaving only the
	// abstract-schedule mutation structure over POS.
	DisableFeedback bool
	// DisableProactive ablates the proactive constraint scheduler:
	// mutants are still generated and fed back, but executions run under
	// plain POS with no steering — isolating the Figure 2 machines'
	// contribution from the rest of the loop.
	DisableProactive bool
	// StopAtFirstBug ends the campaign at the first failing schedule —
	// the setting used for the schedules-to-first-bug experiments.
	StopAtFirstBug bool
	// InitialCorpus is Algorithm 1's S_init; when empty the corpus is
	// seeded with the empty schedule ε.
	InitialCorpus []Schedule
	// TraceObserver, if non-nil, is invoked with every executed trace —
	// the hook auxiliary analyses (e.g. the happens-before race
	// detector) use to piggyback on the fuzzing campaign. A panicking
	// observer is recovered per execution: the campaign and its corpus
	// continue unharmed. The trace's backing arrays are recycled into the
	// next execution, so observers must finish with the trace before
	// returning and must not retain it (copy what they keep).
	TraceObserver func(t *exec.Trace)
	// ResultObserver, if non-nil, is invoked with every counted execution's
	// full result (trace plus failure/truncation verdict) — the hook the
	// conformance harness uses to compare observed behaviors against the
	// systematically enumerated set. Unlike TraceObserver it is part of the
	// verification machinery, so a panic propagates instead of being
	// contained. The same retention rule applies: the result's trace is
	// recycled after the observer returns, so copy anything kept.
	ResultObserver func(res *exec.Result)
	// Telemetry, if non-nil, receives the campaign's metrics (schedules
	// executed, new reads-from pairs/combinations, corpus growth, power-
	// schedule energy, constraint outcomes) and events (first-bug,
	// interesting-schedule). A nil sink costs one branch per
	// instrumentation point.
	Telemetry telemetry.Sink
	// Recycle, if non-nil, supplies the trace-buffer recycler — a
	// parallel campaign driver threads one per worker so buffers survive
	// across the trials that worker runs. Recyclers carry only capacity
	// hints, never schedule state, so sharing one across sequential
	// campaigns cannot change results. Nil allocates a fresh recycler.
	Recycle *exec.Recycler
}

// FailureRecord captures one crashing schedule (Algorithm 1's S_fail
// members) with everything needed to replay it.
type FailureRecord struct {
	// Schedule is the abstract schedule that was being driven.
	Schedule Schedule
	// Seed reproduces the execution together with the schedule.
	Seed int64
	// Execution is the 1-based schedule count at which the bug fired.
	Execution int
	// Failure describes the bug.
	Failure *exec.Failure
	// Decisions replays the exact concrete schedule via sched.NewReplay.
	Decisions []exec.ThreadID
}

// Report summarizes one campaign.
type Report struct {
	Program    string
	Executions int
	// FirstBug is the schedule count of the first failure (0 = none).
	FirstBug int
	Failures []FailureRecord
	// CorpusSize, UniquePairs and UniqueSigs describe the final feedback
	// state.
	CorpusSize  int
	UniquePairs int
	UniqueSigs  int
	// SigFrequencies is the per-combination observation count series in
	// first-observation order (Figure 5's data).
	SigFrequencies []int
}

// FoundBug reports whether any schedule crashed.
func (r *Report) FoundBug() bool { return r.FirstBug > 0 }

// Fuzzer runs Algorithm 1 — the greybox concurrency fuzzing loop — on one
// program: pick a corpus schedule and its energy, mutate it that many
// times, execute each mutant under the proactive scheduler, and feed
// interesting mutants back into the corpus.
type Fuzzer struct {
	name string
	prog exec.Program
	opts Options

	fb     *Feedback
	corpus *Corpus
	pool   *EventPool
	sched  *Proactive
	rng    *rand.Rand

	// intern is the campaign-shared abstract-event table: every
	// execution's trace summary resolves events to the same dense IDs,
	// keeping feedback and pool keys comparable as plain integers.
	intern *exec.InternTable
	// recycler reuses trace backing arrays and engine size hints across
	// the campaign's executions (reset-don't-reallocate).
	recycler *exec.Recycler

	tel    telemetry.Sink
	labels []telemetry.Label // {program: name}, reused across calls

	// Incremental-run state: the fuzzing loop is resumable in slices of
	// N executions (RunN), so a sharded or quota-driven driver can
	// interleave several campaigns' stages. rep accumulates across
	// calls; curEntry/energyLeft carry the in-progress fuzzing stage
	// over a RunN boundary, keeping any chunking of the budget
	// bit-identical to one uninterrupted Run.
	rep        *Report
	curEntry   *Entry
	energyLeft int
	stopped    bool // StopAtFirstBug tripped
}

// NewFuzzer builds a campaign for the program with the given options.
func NewFuzzer(name string, prog exec.Program, opts Options) *Fuzzer {
	if opts.Budget <= 0 {
		panic("core.NewFuzzer: Options.Budget must be positive")
	}
	recycler := opts.Recycle
	if recycler == nil {
		recycler = exec.NewRecycler()
	}
	return &Fuzzer{
		name:     name,
		prog:     prog,
		opts:     opts,
		fb:       NewFeedback(),
		corpus:   NewCorpus(opts.InitialCorpus...),
		pool:     NewEventPool(),
		sched:    NewProactive(),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		intern:   exec.NewInternTable(),
		recycler: recycler,
		tel:      opts.Telemetry,
		labels:   []telemetry.Label{{Name: "program", Value: name}},
	}
}

// Run executes the campaign to its budget (or first bug, if configured)
// and returns the report.
func (f *Fuzzer) Run() *Report { return f.RunContext(context.Background()) }

// RunContext executes the campaign under ctx: cancellation (or a
// deadline) stops the current execution within one scheduling step and
// returns the report of everything completed so far. A cancelled
// partial execution is discarded — it never reaches the feedback state,
// so an interrupted campaign's report is a prefix of the uninterrupted
// one.
func (f *Fuzzer) RunContext(ctx context.Context) *Report {
	for !f.Done() && ctx.Err() == nil {
		// Any chunk size gives the same results; 64 keeps the
		// cancellation poll of the chunk loop reasonably fresh.
		f.RunN(ctx, 64)
	}
	return f.Finish()
}

// report returns the campaign's accumulating report, creating it on
// first use.
func (f *Fuzzer) report() *Report {
	if f.rep == nil {
		f.rep = &Report{Program: f.name}
	}
	return f.rep
}

// Done reports whether the campaign is over: the budget is exhausted or
// StopAtFirstBug ended it.
func (f *Fuzzer) Done() bool {
	return f.stopped || f.report().Executions >= f.opts.Budget
}

// RunN advances the campaign by up to n counted executions and returns
// how many actually ran. It is the resumable core of the fuzzing loop:
// an in-progress fuzzing stage (picked entry plus remaining energy)
// survives across calls, so splitting the budget into RunN slices of
// any size reproduces Run's results bit for bit. RunN returns early —
// possibly with 0 executions — when the campaign is Done or ctx is
// cancelled; the cancelled partial execution is discarded as in
// RunContext.
func (f *Fuzzer) RunN(ctx context.Context, n int) int {
	rep := f.report()
	executed := 0
	for executed < n && !f.Done() {
		if ctx.Err() != nil {
			return executed
		}
		if f.energyLeft <= 0 {
			entry := f.corpus.PickNext()
			energy := 1
			if !f.opts.DisableFeedback {
				energy = f.corpus.Energy(entry, f.fb, f.opts.Power)
			}
			if t := f.tel; t != nil {
				// Bucket 0 counts skipped stages (energy 0).
				t.Observe(telemetry.MEnergyAssigned, int64(energy), f.labels...)
			}
			// Zero energy skips the stage: loop around to the next pick,
			// exactly like the sequential loop's empty inner stage.
			f.curEntry, f.energyLeft = entry, energy
			continue
		}
		f.energyLeft--
		crashed, cancelled := f.fuzzOne(ctx, f.curEntry, rep)
		if cancelled {
			return executed
		}
		executed++
		if crashed && f.opts.StopAtFirstBug {
			f.stopped = true
		}
	}
	return executed
}

// Finish finalizes the report with the current feedback statistics and
// returns it. It may be called repeatedly; later executions refresh the
// statistics on the same report.
func (f *Fuzzer) Finish() *Report {
	rep := f.report()
	f.finish(rep)
	return rep
}

// fuzzOne performs one iteration of the inner loop: mutate, execute,
// observe. Reports whether the execution crashed and whether it was
// abandoned to a cancelled ctx (in which case nothing was observed).
func (f *Fuzzer) fuzzOne(ctx context.Context, entry *Entry, rep *Report) (crashed, cancelled bool) {
	mut := Mutate(entry.Schedule, f.pool, f.rng, f.opts.Mutator)
	seed := f.rng.Int63()
	if f.opts.DisableProactive {
		f.sched.SetSchedule(EmptySchedule()) // machines off: pure POS
	} else {
		f.sched.SetSchedule(mut)
	}
	res := exec.Run(f.name, f.prog, exec.Config{
		Scheduler: f.sched,
		Seed:      seed,
		Ctx:       ctx,
		MaxSteps:  f.opts.MaxSteps,
		Telemetry: f.opts.Telemetry,
		Intern:    f.intern,
		Recycle:   f.recycler,
	})
	// The trace's backing arrays return to the recycler once everything
	// below has observed it.
	defer f.recycler.Reclaim(res.Trace)
	if res.Cancelled {
		// The execution was abandoned mid-run; its partial trace must not
		// perturb the feedback state or count against the budget.
		return false, true
	}
	rep.Executions++
	if f.opts.TraceObserver != nil {
		f.observeTrace(res.Trace)
	}
	if f.opts.ResultObserver != nil {
		f.opts.ResultObserver(res)
	}

	obs := f.fb.Observe(res.Trace)
	f.pool.AddTrace(res.Trace)
	if entry.Sig == 0 {
		// Seed entries (ε) carry no signature until first executed; bind
		// them to their observed combination so the power schedule can
		// skip them once that combination is over-explored.
		entry.Sig = obs.Sig
	}

	crashed = res.Buggy()
	if t := f.tel; t != nil {
		t.Add(telemetry.MSchedulesExecuted, 1, f.labels...)
		if obs.NewPairs > 0 {
			t.Add(telemetry.MRFPairsNew, int64(obs.NewPairs), f.labels...)
		}
		if obs.NewSig {
			t.Add(telemetry.MRFCombosNew, 1, f.labels...)
		}
		if !f.opts.DisableProactive {
			if n := f.sched.SatisfiedCount(); n > 0 {
				t.Add(telemetry.MConstraintSatisfied, int64(n), f.labels...)
			}
			if n := f.sched.RejectedCount(); n > 0 {
				t.Add(telemetry.MConstraintRejected, int64(n), f.labels...)
			}
		}
		if crashed {
			t.Add(telemetry.MSchedulesCrashed, 1, f.labels...)
		}
	}
	if crashed {
		rep.Failures = append(rep.Failures, FailureRecord{
			Schedule:  mut,
			Seed:      seed,
			Execution: rep.Executions,
			Failure:   res.Failure,
			Decisions: res.Trace.ThreadOrder(),
		})
		if rep.FirstBug == 0 {
			rep.FirstBug = rep.Executions
			if t := f.tel; t != nil {
				t.Emit(telemetry.EvFirstBug, telemetry.Fields{
					"program":   f.name,
					"execution": rep.Executions,
					"kind":      res.Failure.Kind.String(),
					"msg":       res.Failure.Msg,
				})
			}
		}
	}
	if !f.opts.DisableFeedback && f.fb.Interesting(obs, crashed) {
		if _, added := f.corpus.Add(&Entry{Schedule: mut, Sig: obs.Sig, Perf: obs.NewPairs}); added {
			if t := f.tel; t != nil {
				t.Add(telemetry.MCorpusAdds, 1, f.labels...)
				t.Set(telemetry.MCorpusSize, int64(f.corpus.Len()), f.labels...)
				t.Emit(telemetry.EvInteresting, telemetry.Fields{
					"program":     f.name,
					"execution":   rep.Executions,
					"new_pairs":   obs.NewPairs,
					"new_combo":   obs.NewSig,
					"crashed":     crashed,
					"corpus_size": f.corpus.Len(),
				})
			}
		}
	}
	return crashed, false
}

// observeTrace invokes the user's TraceObserver, containing any panic it
// raises: a broken auxiliary analysis must not kill the campaign or
// corrupt the corpus mid-update.
func (f *Fuzzer) observeTrace(tr *exec.Trace) {
	defer func() {
		if r := recover(); r != nil {
			if t := f.tel; t != nil {
				t.Add(telemetry.MObserverPanics, 1, f.labels...)
			}
		}
	}()
	f.opts.TraceObserver(tr)
}

// finish copies final feedback statistics into the report.
func (f *Fuzzer) finish(rep *Report) {
	if t := f.tel; t != nil {
		t.Set(telemetry.MCorpusSize, int64(f.corpus.Len()), f.labels...)
	}
	rep.CorpusSize = f.corpus.Len()
	rep.UniquePairs = f.fb.UniquePairs()
	rep.UniqueSigs = f.fb.UniqueSigs()
	rep.SigFrequencies = f.fb.SigFrequencies()
}

// Feedback exposes the campaign's feedback state (read-only use).
func (f *Fuzzer) Feedback() *Feedback { return f.fb }

// Corpus exposes the campaign's corpus (read-only use).
func (f *Fuzzer) Corpus() *Corpus { return f.corpus }

// Pool exposes the campaign's event pool (read-only use).
func (f *Fuzzer) Pool() *EventPool { return f.pool }

// Intern exposes the campaign's abstract-event intern table — the table
// the feedback state's PairIDs resolve through. A cross-campaign merge
// (the sharded runner's fast mode) remaps through it into a global
// table.
func (f *Fuzzer) Intern() *exec.InternTable { return f.intern }
