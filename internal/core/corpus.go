package core

// Entry is one corpus member: an interesting abstract schedule together
// with the bookkeeping the power schedule needs.
type Entry struct {
	// Schedule is the abstract schedule saved when its execution was
	// deemed interesting.
	Schedule Schedule
	// Sig is the reads-from combination its originating execution
	// exercised; f(α) is looked up through it.
	Sig uint64
	// Perf is the performance score γ(α): the number of new reads-from
	// pairs the originating execution contributed (at least 1).
	Perf int
	// ChosenSince is s(α): how many times the entry has been chosen
	// since it was last skipped by the power schedule.
	ChosenSince int
}

// Corpus is the working set S of interesting schedules. PickNext cycles
// through entries round-robin; the power schedule decides each entry's
// energy when its turn comes.
type Corpus struct {
	entries []*Entry
	next    int
	keys    map[string]int // canonical schedule key -> insertion index
}

// NewCorpus returns a corpus seeded with the given schedules (Algorithm
// 1's S_init; the empty schedule when none are given).
func NewCorpus(seed ...Schedule) *Corpus {
	c := &Corpus{keys: make(map[string]int)}
	if len(seed) == 0 {
		seed = []Schedule{EmptySchedule()}
	}
	for _, s := range seed {
		c.Add(&Entry{Schedule: s, Perf: 1})
	}
	return c
}

// Add appends an entry unless an identical schedule is already present.
// It returns the entry's stable insertion index — the position of the
// (new or pre-existing) entry holding that schedule — and whether the
// entry was added. The index is stable because the corpus only ever
// appends: merge and replication logic can key on it without depending
// on map iteration order.
func (c *Corpus) Add(e *Entry) (index int, added bool) {
	k := e.Schedule.Key()
	if i, dup := c.keys[k]; dup {
		return i, false
	}
	if e.Perf < 1 {
		e.Perf = 1
	}
	index = len(c.entries)
	c.keys[k] = index
	c.entries = append(c.entries, e)
	return index, true
}

// Merge folds other's entries into c in other's insertion order,
// skipping schedules already present; it returns the number of entries
// added. Entries are inserted as copies with a reset exponential ramp
// (ChosenSince), so power-schedule bookkeeping on the merged corpus
// never aliases the source corpus. Iterating the insertion-ordered
// entry slice — never a map — keeps the merged order, and therefore
// every later round-robin pick, deterministic.
func (c *Corpus) Merge(other *Corpus) int {
	added := 0
	for _, e := range other.entries {
		cp := *e
		cp.ChosenSince = 0
		if _, ok := c.Add(&cp); ok {
			added++
		}
	}
	return added
}

// Len returns the corpus size.
func (c *Corpus) Len() int { return len(c.entries) }

// Entries returns the corpus contents (shared slice; callers must not
// mutate entries' schedules).
func (c *Corpus) Entries() []*Entry { return c.entries }

// PickNext returns the next entry in round-robin order.
func (c *Corpus) PickNext() *Entry {
	e := c.entries[c.next%len(c.entries)]
	c.next++
	return e
}

// PowerConfig tunes the cut-off exponential power schedule of Section 4.2.
type PowerConfig struct {
	// Beta is the γ(α) divisor β. Zero means DefaultBeta.
	Beta float64
	// MaxEnergy is M, the maximum iterations per fuzzing stage. Zero
	// means DefaultMaxEnergy.
	MaxEnergy int
}

// DefaultBeta is the power schedule's β hyperparameter.
const DefaultBeta = 2.0

// DefaultMaxEnergy is M, the cap on energy per stage.
const DefaultMaxEnergy = 64

func (p PowerConfig) beta() float64 {
	if p.Beta <= 0 {
		return DefaultBeta
	}
	return p.Beta
}

func (p PowerConfig) maxEnergy() int {
	if p.MaxEnergy <= 0 {
		return DefaultMaxEnergy
	}
	return p.MaxEnergy
}

// Energy implements the paper's cut-off exponential power schedule:
//
//	p(α) = 0                            if f(α) > μ
//	     = min(γ(α)/β · 2^s(α), M)      otherwise
//	μ    = Σ_{α∈S+} f(α) / |S+|
//
// Schedules whose reads-from combination is over-observed relative to the
// corpus average are skipped entirely (resetting s(α)); under-explored
// combinations receive exponentially growing energy until they too become
// over-explored. This is what drives the even exploration of Figure 5.
func (c *Corpus) Energy(e *Entry, fb *Feedback, cfg PowerConfig) int {
	total := 0
	for _, x := range c.entries {
		total += fb.SigFrequency(x.Sig)
	}
	mu := float64(total) / float64(len(c.entries))
	fa := float64(fb.SigFrequency(e.Sig))
	if fa > mu {
		e.ChosenSince = 0 // skipped: restart the exponential ramp
		return 0
	}
	s := e.ChosenSince
	e.ChosenSince++
	if s > 30 {
		s = 30 // 2^s would overflow long before mattering past M
	}
	energy := float64(e.Perf) / cfg.beta() * float64(int64(1)<<uint(s))
	if m := float64(cfg.maxEnergy()); energy > m {
		energy = m
	}
	if energy < 1 {
		energy = 1
	}
	return int(energy)
}
