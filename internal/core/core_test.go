package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// reorder builds the paper's Figure 1 program with n setter threads.
func reorder(n int) exec.Program {
	return func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		threads := make([]*exec.Thread, 0, n+1)
		for i := 0; i < n; i++ {
			threads = append(threads, t.Go("set", func(w *exec.Thread) {
				w.Write(a, 1)
				w.Write(b, -1)
			}))
		}
		threads = append(threads, t.Go("check", func(w *exec.Thread) {
			av := w.Read(a)
			bv := w.Read(b)
			w.Assert((av == 0 && bv == 0) || (av == 1 && bv == -1), "reorder")
		}))
		t.JoinAll(threads...)
	}
}

// writerReader is a minimal one-writer one-reader program used to probe
// the proactive scheduler directly.
func writerReader(t *exec.Thread) {
	a := t.NewVar("a", 0)
	w := t.Go("w", func(w *exec.Thread) { w.Write(a, 1) })
	r := t.Go("r", func(w *exec.Thread) { w.Read(a) })
	t.JoinAll(w, r)
}

// tracePairs runs the program once under POS and returns its rf pairs so
// tests can build constraints from real abstract events.
func tracePairs(t *testing.T, prog exec.Program) []exec.RFPair {
	t.Helper()
	res := exec.Run("probe", prog, exec.Config{Scheduler: sched.NewPOS(), Seed: 1})
	return res.Trace.RFPairs()
}

func TestScheduleSetSemantics(t *testing.T) {
	pairs := tracePairs(t, writerReader)
	if len(pairs) != 1 {
		t.Fatalf("want exactly one rf pair, got %v", pairs)
	}
	c := core.Constraint{Write: pairs[0].Write, Read: pairs[0].Read}
	s := core.NewSchedule(c, c) // duplicate collapses
	if s.Len() != 1 {
		t.Fatalf("duplicate insert should collapse, len=%d", s.Len())
	}
	if !s.Contains(c) {
		t.Fatal("Contains failed")
	}
	if s.Contains(c.Negate()) {
		t.Fatal("negated constraint should be distinct")
	}
	if s.Key() != core.NewSchedule(c).Key() {
		t.Fatal("keys of equal schedules differ")
	}
}

func TestNegateRoundTrip(t *testing.T) {
	c := core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "x", Loc: "f:1"},
		Read:  exec.AbstractEvent{Op: exec.OpRead, Var: "x", Loc: "f:2"},
	}
	if c.Negate().Negate() != c {
		t.Fatal("double negation must be identity")
	}
	if !c.Negate().Negated {
		t.Fatal("negate must flip polarity")
	}
}

func TestInstantiatedBy(t *testing.T) {
	res := exec.Run("probe", writerReader, exec.Config{Scheduler: sched.NewRoundRobin(), Seed: 1})
	pairs := res.Trace.RFPairs()
	if len(pairs) != 1 {
		t.Fatalf("want 1 pair, got %v", pairs)
	}
	pos := core.NewSchedule(core.Constraint{Write: pairs[0].Write, Read: pairs[0].Read})
	if !pos.InstantiatedBy(res.Trace) {
		t.Fatal("trace must instantiate its own rf pair")
	}
	neg := core.NewSchedule(core.Constraint{Write: pairs[0].Write, Read: pairs[0].Read, Negated: true})
	if neg.InstantiatedBy(res.Trace) {
		t.Fatal("negated pair present in trace must not instantiate")
	}
	if !core.EmptySchedule().InstantiatedBy(res.Trace) {
		t.Fatal("empty schedule instantiated by everything")
	}
	// A constraint mentioning an absent pair: positive fails, negative holds.
	ghost := core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "a", Loc: "nowhere:1"},
		Read:  pairs[0].Read,
	}
	if core.NewSchedule(ghost).InstantiatedBy(res.Trace) {
		t.Fatal("absent positive pair must not instantiate")
	}
	if !core.NewSchedule(ghost.Negate()).InstantiatedBy(res.Trace) {
		t.Fatal("absent negative pair must instantiate")
	}
}

func TestEventPoolConflictingPairs(t *testing.T) {
	pool := core.NewEventPool()
	rng := rand.New(rand.NewSource(1))
	if _, ok := pool.RandomConstraint(rng); ok {
		t.Fatal("empty pool must not produce constraints")
	}
	res := exec.Run("probe", reorder(2), exec.Config{Scheduler: sched.NewPOS(), Seed: 3})
	pool.AddTrace(res.Trace)
	if pool.Size() == 0 {
		t.Fatal("pool empty after trace")
	}
	for i := 0; i < 100; i++ {
		c, ok := pool.RandomConstraint(rng)
		if !ok {
			t.Fatal("pool with conflicting events must produce constraints")
		}
		if c.Write.Var != c.Read.Var {
			t.Fatalf("constraint vars differ: %v", c)
		}
		if !c.Write.Op.IsWrite() || !c.Read.Op.IsRead() {
			t.Fatalf("constraint ops wrong: %v", c)
		}
	}
	vars := pool.Vars()
	if len(vars) != 2 { // a and b both have reads and writes
		t.Fatalf("want paired vars [a b], got %v", vars)
	}
}

func TestMutationOperators(t *testing.T) {
	pool := core.NewEventPool()
	res := exec.Run("probe", reorder(2), exec.Config{Scheduler: sched.NewPOS(), Seed: 3})
	pool.AddTrace(res.Trace)
	rng := rand.New(rand.NewSource(7))

	// Mutating ε must eventually insert (the only applicable operator).
	m := core.Mutate(core.EmptySchedule(), pool, rng, core.MutatorConfig{})
	if m.Len() != 1 {
		t.Fatalf("mutation of empty schedule should insert one constraint, got %v", m)
	}
	// Repeated mutation respects the constraint cap.
	cfg := core.MutatorConfig{MaxConstraints: 4}
	s := core.EmptySchedule()
	for i := 0; i < 500; i++ {
		s = core.Mutate(s, pool, rng, cfg)
		if s.Len() > 4 {
			t.Fatalf("cap exceeded: %d", s.Len())
		}
	}
	// Mutation never aliases the input.
	before := core.NewSchedule(core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "a", Loc: "x:1"},
		Read:  exec.AbstractEvent{Op: exec.OpRead, Var: "a", Loc: "x:2"},
	})
	key := before.Key()
	for i := 0; i < 100; i++ {
		core.Mutate(before, pool, rng, core.MutatorConfig{})
	}
	if before.Key() != key {
		t.Fatal("Mutate mutated its input schedule")
	}
}

func TestMutateEmptyPoolIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := core.Mutate(core.EmptySchedule(), core.NewEventPool(), rng, core.MutatorConfig{})
	if m.Len() != 0 {
		t.Fatalf("no pool material: mutation must stay empty, got %v", m)
	}
}

func TestProactiveSatisfiesPositiveConstraint(t *testing.T) {
	// Find the writer's abstract write and the reader's abstract read.
	pairs := tracePairs(t, writerReader)
	var read exec.AbstractEvent
	for _, p := range pairs {
		read = p.Read
	}
	// Build the positive constraint targeting the real write (not init).
	res := exec.Run("probe", writerReader, exec.Config{Scheduler: sched.NewPOS(), Seed: 2})
	var write exec.AbstractEvent
	for _, ae := range res.Trace.AbstractEvents() {
		if ae.Op == exec.OpWrite {
			write = ae
		}
	}
	if write.IsZero() || read.IsZero() {
		t.Fatalf("probe failed: write=%v read=%v", write, read)
	}

	target := core.NewSchedule(core.Constraint{Write: write, Read: read})
	p := core.NewProactive()
	p.SetSchedule(target)
	for seed := int64(0); seed < 100; seed++ {
		r := exec.Run("wr", writerReader, exec.Config{Scheduler: p, Seed: seed})
		if !target.InstantiatedBy(r.Trace) {
			t.Fatalf("seed %d: proactive failed to satisfy %v:\n%s", seed, target, r.Trace)
		}
		if p.SatisfiedCount() != 1 {
			t.Fatalf("seed %d: machine not satisfied", seed)
		}
	}
}

func TestProactiveAvoidsNegativeConstraint(t *testing.T) {
	res := exec.Run("probe", writerReader, exec.Config{Scheduler: sched.NewPOS(), Seed: 2})
	var write, read exec.AbstractEvent
	for _, ae := range res.Trace.AbstractEvents() {
		switch ae.Op {
		case exec.OpWrite:
			write = ae
		case exec.OpRead:
			read = ae
		}
	}
	target := core.NewSchedule(core.Constraint{Write: write, Read: read, Negated: true})
	p := core.NewProactive()
	p.SetSchedule(target)
	for seed := int64(0); seed < 100; seed++ {
		r := exec.Run("wr", writerReader, exec.Config{Scheduler: p, Seed: seed})
		if !target.InstantiatedBy(r.Trace) {
			t.Fatalf("seed %d: proactive violated negative constraint:\n%s", seed, r.Trace)
		}
		if p.RejectedCount() != 0 {
			t.Fatalf("seed %d: machine rejected", seed)
		}
	}
}

func TestProactiveDegradesToPOS(t *testing.T) {
	// With an empty abstract schedule, the proactive scheduler must be
	// bit-identical to plain POS under the same seed.
	for seed := int64(0); seed < 20; seed++ {
		p := core.NewProactive()
		r1 := exec.Run("reorder", reorder(3), exec.Config{Scheduler: p, Seed: seed})
		r2 := exec.Run("reorder", reorder(3), exec.Config{Scheduler: sched.NewPOS(), Seed: seed})
		if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
			t.Fatalf("seed %d: empty-schedule proactive diverged from POS", seed)
		}
	}
}

func TestFeedbackNovelty(t *testing.T) {
	fb := core.NewFeedback()
	res := exec.Run("wr", writerReader, exec.Config{Scheduler: sched.NewRoundRobin(), Seed: 1})
	obs1 := fb.Observe(res.Trace)
	if obs1.NewPairs == 0 || !obs1.NewSig {
		t.Fatalf("first observation must be novel: %+v", obs1)
	}
	obs2 := fb.Observe(res.Trace)
	if obs2.NewPairs != 0 || obs2.NewSig {
		t.Fatalf("repeat observation must not be novel: %+v", obs2)
	}
	if fb.SigFrequency(obs1.Sig) != 2 {
		t.Fatalf("sig frequency want 2, got %d", fb.SigFrequency(obs1.Sig))
	}
	if !fb.Interesting(obs1, false) || fb.Interesting(obs2, false) {
		t.Fatal("Interesting must follow pair novelty")
	}
	if !fb.Interesting(obs2, true) {
		t.Fatal("crashes are always interesting")
	}
	if got := fb.SigFrequencies(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SigFrequencies want [2], got %v", got)
	}
}

func TestPowerScheduleSkipsOverObserved(t *testing.T) {
	fb := core.NewFeedback()
	corp := core.NewCorpus()
	// Simulate two corpus entries, one over-observed, one fresh.
	r1 := exec.Run("wr", writerReader, exec.Config{Scheduler: sched.NewRoundRobin(), Seed: 1})
	var hot core.Entry
	for i := 0; i < 10; i++ {
		obs := fb.Observe(r1.Trace)
		hot = core.Entry{Schedule: core.EmptySchedule(), Sig: obs.Sig, Perf: 1}
	}
	// A second, different rf combination observed once: force a different
	// trace via a schedule that reads from init.
	r2 := exec.Run("wr", writerReader, exec.Config{Scheduler: sched.NewRandom(), Seed: 4})
	if r2.Trace.RFSignature() == r1.Trace.RFSignature() {
		// find a seed with different rf
		for seed := int64(5); seed < 200; seed++ {
			r2 = exec.Run("wr", writerReader, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
			if r2.Trace.RFSignature() != r1.Trace.RFSignature() {
				break
			}
		}
	}
	obs2 := fb.Observe(r2.Trace)
	cold := core.Entry{Schedule: core.EmptySchedule(), Sig: obs2.Sig, Perf: 1}

	// The corpus seeds ε; give the two probe entries distinct schedules
	// so all three coexist.
	corpus := corp
	hot.Schedule = core.NewSchedule(core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "a", Loc: "h:1"},
		Read:  exec.AbstractEvent{Op: exec.OpRead, Var: "a", Loc: "h:2"},
	})
	if _, added := corpus.Add(&hot); !added {
		t.Fatal("add hot")
	}
	cold.Schedule = core.NewSchedule(core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "a", Loc: "c:1"},
		Read:  exec.AbstractEvent{Op: exec.OpRead, Var: "a", Loc: "c:2"},
	})
	if _, added := corpus.Add(&cold); !added {
		t.Fatal("add cold")
	}

	cfg := core.PowerConfig{}
	// hot: f=10, cold: f=1, ε (seed): f=0 → μ = 11/3 ≈ 3.67.
	if e := corpus.Energy(&hot, fb, cfg); e != 0 {
		t.Fatalf("over-observed entry must be skipped, got energy %d", e)
	}
	if hot.ChosenSince != 0 {
		t.Fatal("skip must reset ChosenSince")
	}
	e1 := corpus.Energy(&cold, fb, cfg)
	e2 := corpus.Energy(&cold, fb, cfg)
	e3 := corpus.Energy(&cold, fb, cfg)
	if !(e1 >= 1 && e2 >= e1 && e3 >= e2) {
		t.Fatalf("energy must ramp: %d %d %d", e1, e2, e3)
	}
	for i := 0; i < 20; i++ {
		if e := corpus.Energy(&cold, fb, cfg); e > core.DefaultMaxEnergy {
			t.Fatalf("energy must be capped at M=%d, got %d", core.DefaultMaxEnergy, e)
		}
	}
}

func TestCorpusDeduplicates(t *testing.T) {
	corpus := core.NewCorpus()
	if corpus.Len() != 1 { // seeded with ε
		t.Fatalf("want seeded corpus, len=%d", corpus.Len())
	}
	if idx, added := corpus.Add(&core.Entry{Schedule: core.EmptySchedule()}); added || idx != 0 {
		t.Fatalf("duplicate ε must be rejected with its original index, got (%d, %v)", idx, added)
	}
	c := core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "a", Loc: "x:1"},
		Read:  exec.AbstractEvent{Op: exec.OpRead, Var: "a", Loc: "x:2"},
	}
	if idx, added := corpus.Add(&core.Entry{Schedule: core.NewSchedule(c)}); !added || idx != 1 {
		t.Fatalf("fresh schedule must be accepted at index 1, got (%d, %v)", idx, added)
	}
	if idx, added := corpus.Add(&core.Entry{Schedule: core.NewSchedule(c)}); added || idx != 1 {
		t.Fatalf("duplicate schedule must be rejected with index 1, got (%d, %v)", idx, added)
	}
	// Round-robin cycles.
	a := corpus.PickNext()
	b := corpus.PickNext()
	c2 := corpus.PickNext()
	if a == b || a != c2 {
		t.Fatal("PickNext must cycle round-robin")
	}
}

func TestFuzzerFindsReorderBug(t *testing.T) {
	fz := core.NewFuzzer("reorder_10", reorder(10), core.Options{
		Budget: 500, Seed: 42, StopAtFirstBug: true,
	})
	rep := fz.Run()
	if !rep.FoundBug() {
		t.Fatalf("RFF failed to find reorder_10 bug within %d schedules", rep.Executions)
	}
	if rep.FirstBug > 100 {
		t.Errorf("RFF needed %d schedules for reorder_10; paper reports ~6", rep.FirstBug)
	}
	fr := rep.Failures[0]
	if fr.Failure.Kind != exec.FailAssert {
		t.Fatalf("unexpected failure kind %v", fr.Failure)
	}
	// The recorded decisions replay to the same failure.
	rr := exec.Run("replay", reorder(10), exec.Config{Scheduler: sched.NewReplay(fr.Decisions)})
	if rr.Failure == nil || rr.Failure.Kind != exec.FailAssert {
		t.Fatalf("failure replay diverged: %v", rr.Failure)
	}
}

func TestFuzzerDeterminism(t *testing.T) {
	opts := core.Options{Budget: 60, Seed: 9}
	r1 := core.NewFuzzer("reorder_3", reorder(3), opts).Run()
	r2 := core.NewFuzzer("reorder_3", reorder(3), opts).Run()
	if r1.FirstBug != r2.FirstBug || r1.UniquePairs != r2.UniquePairs ||
		r1.UniqueSigs != r2.UniqueSigs || r1.CorpusSize != r2.CorpusSize {
		t.Fatalf("campaign not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestFuzzerFeedbackAblation(t *testing.T) {
	opts := core.Options{Budget: 200, Seed: 5, DisableFeedback: true}
	rep := core.NewFuzzer("reorder_3", reorder(3), opts).Run()
	if rep.CorpusSize != 1 {
		t.Fatalf("feedback disabled: corpus must stay at ε, got %d", rep.CorpusSize)
	}
	if rep.Executions != 200 {
		t.Fatalf("must run to budget, got %d", rep.Executions)
	}
}

func TestFuzzerBudgetRespected(t *testing.T) {
	rep := core.NewFuzzer("wr", writerReader, core.Options{Budget: 37, Seed: 1}).Run()
	if rep.Executions != 37 {
		t.Fatalf("budget 37, ran %d", rep.Executions)
	}
}
