package core

import "rff/internal/exec"

// Feedback is the fuzzer's greybox feedback state: which abstract
// reads-from pairs have ever been observed (the novelty signal behind
// isInteresting) and how often each whole reads-from combination — the
// signature of an execution's ≡rf equivalence class — has been exercised
// (the f(α) frequency driving the power schedule and the Figure 5
// distribution).
//
// Pairs are keyed by their interned PairID — a single integer — rather
// than the 6-string RFPair struct, so the per-execution map traffic of
// Observe hashes 8 bytes instead of re-hashing every Var/Loc string.
type Feedback struct {
	// intern is the table the PairID keys resolve through, adopted from
	// the first observed trace (the campaign's shared table when the
	// executions run with exec.Config.Intern set).
	intern    *exec.InternTable
	pairCount map[exec.PairID]int
	pairOrder []exec.PairID // first-observation order, for deterministic merges
	sigCount  map[uint64]int
	sigOrder  []uint64 // first-observation order, for deterministic reports
}

// feedbackSizeHint pre-sizes the feedback maps: campaigns on the
// evaluation suite typically accumulate tens of pairs and combinations,
// so one up-front allocation absorbs the growth path entirely.
const feedbackSizeHint = 128

// NewFeedback returns empty feedback state.
func NewFeedback() *Feedback {
	return &Feedback{
		pairCount: make(map[exec.PairID]int, feedbackSizeHint),
		pairOrder: make([]exec.PairID, 0, feedbackSizeHint),
		sigCount:  make(map[uint64]int, feedbackSizeHint),
		sigOrder:  make([]uint64, 0, feedbackSizeHint),
	}
}

// Observation summarizes what one execution contributed.
type Observation struct {
	// NewPairs is the number of reads-from pairs never seen before this
	// execution — the paper's novelty measure.
	NewPairs int
	// Sig is the execution's reads-from combination signature.
	Sig uint64
	// NewSig reports whether the combination itself was first seen now.
	NewSig bool
}

// Observe folds one trace into the feedback state and reports its novelty.
// The trace's memoized Summary supplies pairs and signature in one shot,
// so calling Observe never re-derives them.
func (f *Feedback) Observe(t *exec.Trace) Observation {
	s := t.Summary()
	if f.intern == nil {
		f.intern = s.Table
	}
	var obs Observation
	if s.Table == f.intern {
		for _, pid := range s.PairIDs {
			f.countPair(pid, &obs)
		}
	} else {
		// The trace was summarized against a foreign table (an execution
		// run without the campaign's shared Config.Intern): re-intern its
		// pairs so the IDs stay comparable. Slow path, correctness only.
		for _, p := range s.Pairs {
			f.countPair(exec.MakePairID(f.intern.Intern(p.Write), f.intern.Intern(p.Read)), &obs)
		}
	}
	f.countSig(s.Sig, &obs)
	return obs
}

// ObserveIDs folds one execution's pre-interned summary — its PairIDs
// and signature — into the feedback state, exactly as Observe would
// have from the live trace. This is the sharded campaign's merge-fold
// entry point: the trace itself was summarized (and its buffers
// recycled) on a shard, and its shard-local IDs were remapped into the
// table this feedback keys on before the call.
func (f *Feedback) ObserveIDs(pairIDs []exec.PairID, sig uint64) Observation {
	var obs Observation
	for _, pid := range pairIDs {
		f.countPair(pid, &obs)
	}
	f.countSig(sig, &obs)
	return obs
}

// countPair folds one pair observation into the state.
func (f *Feedback) countPair(pid exec.PairID, obs *Observation) {
	if f.pairCount[pid] == 0 {
		obs.NewPairs++
		f.pairOrder = append(f.pairOrder, pid)
	}
	f.pairCount[pid]++
}

// countSig folds one signature observation into the state.
func (f *Feedback) countSig(sig uint64, obs *Observation) {
	obs.Sig = sig
	if f.sigCount[sig] == 0 {
		obs.NewSig = true
		f.sigOrder = append(f.sigOrder, sig)
	}
	f.sigCount[sig]++
}

// Merge folds other's pair and signature counts into f, translating
// other's PairIDs through remap (nil = the tables are already shared).
// Both first-observation orders are extended in other's insertion order
// — never map iteration order — so merging the same feedback states in
// the same order always yields identical SigFrequencies series.
func (f *Feedback) Merge(other *Feedback, remap func(exec.PairID) exec.PairID) {
	for _, pid := range other.pairOrder {
		mapped := pid
		if remap != nil {
			mapped = remap(pid)
		}
		if f.pairCount[mapped] == 0 {
			f.pairOrder = append(f.pairOrder, mapped)
		}
		f.pairCount[mapped] += other.pairCount[pid]
	}
	for _, sig := range other.sigOrder {
		if f.sigCount[sig] == 0 {
			f.sigOrder = append(f.sigOrder, sig)
		}
		f.sigCount[sig] += other.sigCount[sig]
	}
}

// Interesting implements isInteresting(σmut, S): true when the execution
// exhibited a never-before-seen reads-from pair, realized a reads-from
// combination no corpus schedule has realized before, or crashed. The
// combination clause is what keeps the corpus growing after individual
// pairs saturate, giving the power schedule distinct neighborhoods to
// ramp or skip — the mechanism behind Figure 5's even exploration.
func (f *Feedback) Interesting(obs Observation, crashed bool) bool {
	return obs.NewPairs > 0 || obs.NewSig || crashed
}

// SigFrequency returns how often the given reads-from combination has been
// observed (the paper's f(α)).
func (f *Feedback) SigFrequency(sig uint64) int { return f.sigCount[sig] }

// UniquePairs returns the number of distinct reads-from pairs seen.
func (f *Feedback) UniquePairs() int { return len(f.pairCount) }

// UniqueSigs returns the number of distinct reads-from combinations seen.
func (f *Feedback) UniqueSigs() int { return len(f.sigCount) }

// SigFrequencies returns the observation counts of every distinct
// reads-from combination in first-observation order — the series plotted
// by Figure 5.
func (f *Feedback) SigFrequencies() []int {
	out := make([]int, len(f.sigOrder))
	for i, sig := range f.sigOrder {
		out[i] = f.sigCount[sig]
	}
	return out
}
