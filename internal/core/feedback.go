package core

import "rff/internal/exec"

// Feedback is the fuzzer's greybox feedback state: which abstract
// reads-from pairs have ever been observed (the novelty signal behind
// isInteresting) and how often each whole reads-from combination — the
// signature of an execution's ≡rf equivalence class — has been exercised
// (the f(α) frequency driving the power schedule and the Figure 5
// distribution).
type Feedback struct {
	pairCount map[exec.RFPair]int
	sigCount  map[uint64]int
	sigOrder  []uint64 // first-observation order, for deterministic reports
}

// NewFeedback returns empty feedback state.
func NewFeedback() *Feedback {
	return &Feedback{
		pairCount: make(map[exec.RFPair]int),
		sigCount:  make(map[uint64]int),
	}
}

// Observation summarizes what one execution contributed.
type Observation struct {
	// NewPairs is the number of reads-from pairs never seen before this
	// execution — the paper's novelty measure.
	NewPairs int
	// Sig is the execution's reads-from combination signature.
	Sig uint64
	// NewSig reports whether the combination itself was first seen now.
	NewSig bool
}

// Observe folds one trace into the feedback state and reports its novelty.
func (f *Feedback) Observe(t *exec.Trace) Observation {
	var obs Observation
	for _, p := range t.RFPairs() {
		if f.pairCount[p] == 0 {
			obs.NewPairs++
		}
		f.pairCount[p]++
	}
	obs.Sig = t.RFSignature()
	if f.sigCount[obs.Sig] == 0 {
		obs.NewSig = true
		f.sigOrder = append(f.sigOrder, obs.Sig)
	}
	f.sigCount[obs.Sig]++
	return obs
}

// Interesting implements isInteresting(σmut, S): true when the execution
// exhibited a never-before-seen reads-from pair, realized a reads-from
// combination no corpus schedule has realized before, or crashed. The
// combination clause is what keeps the corpus growing after individual
// pairs saturate, giving the power schedule distinct neighborhoods to
// ramp or skip — the mechanism behind Figure 5's even exploration.
func (f *Feedback) Interesting(obs Observation, crashed bool) bool {
	return obs.NewPairs > 0 || obs.NewSig || crashed
}

// SigFrequency returns how often the given reads-from combination has been
// observed (the paper's f(α)).
func (f *Feedback) SigFrequency(sig uint64) int { return f.sigCount[sig] }

// UniquePairs returns the number of distinct reads-from pairs seen.
func (f *Feedback) UniquePairs() int { return len(f.pairCount) }

// UniqueSigs returns the number of distinct reads-from combinations seen.
func (f *Feedback) UniqueSigs() int { return len(f.sigCount) }

// SigFrequencies returns the observation counts of every distinct
// reads-from combination in first-observation order — the series plotted
// by Figure 5.
func (f *Feedback) SigFrequencies() []int {
	out := make([]int, len(f.sigOrder))
	for i, sig := range f.sigOrder {
		out[i] = f.sigCount[sig]
	}
	return out
}
