package core_test

import (
	"encoding/json"
	"testing"

	"rff/internal/core"
)

// validArtifactJSON is a well-formed crash file used to seed the fuzz
// corpus and anchor the round-trip property.
const validArtifactJSON = `{
  "program": "CS/reorder_5",
  "seed": 21,
  "execution": 7,
  "failure_kind": "assertion failure",
  "failure_msg": "a1 >= 1",
  "failure_loc": "checker.assert",
  "thread": 6,
  "schedule": [
    {
      "write": {"op": "write", "var": "a1", "loc": "setter.write"},
      "read": {"op": "read", "var": "a1", "loc": "checker.read"},
      "negated": true
    }
  ],
  "decisions": [1, 2, 2, 3, 1]
}`

// FuzzArtifactDecode: DecodeArtifact never panics, malformed input
// errors cleanly, and anything that decodes re-encodes to an artifact
// that decodes to the same value.
func FuzzArtifactDecode(f *testing.F) {
	f.Add([]byte(validArtifactJSON))
	f.Add([]byte(validArtifactJSON[:len(validArtifactJSON)/2])) // truncated
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"program": "p", "failure_kind": "assertion failure", "decisions": [0]}`))
	f.Add([]byte(`{"program": "p", "failure_kind": "k", "decisions": [1], "schedule": [{"write": {"op": "bogus"}}]}`))
	f.Add([]byte(`{"decisions": "not-an-array"}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := core.DecodeArtifact(data)
		if err != nil {
			if a != nil {
				t.Fatalf("error %v returned non-nil artifact", err)
			}
			return
		}
		// A decoded artifact is valid by construction and survives a
		// re-encode/decode cycle intact.
		if err := a.Validate(); err != nil {
			t.Fatalf("decoded artifact fails validation: %v", err)
		}
		out, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("re-encoding decoded artifact: %v", err)
		}
		b, err := core.DecodeArtifact(out)
		if err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		if a.Program != b.Program || a.FailureKind != b.FailureKind ||
			len(a.Decisions) != len(b.Decisions) || len(a.Schedule) != len(b.Schedule) {
			t.Fatalf("round trip changed the artifact:\n%+v\n%+v", a, b)
		}
	})
}
