package core_test

import (
	"math/rand"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

func TestFuzzerProactiveAblation(t *testing.T) {
	// With the proactive scheduler disabled, reorder_20 becomes out of
	// reach (it is exactly the steering that cracks it); with it on, the
	// bug falls in a handful of schedules.
	on := core.NewFuzzer("reorder_20", reorder(20), core.Options{
		Budget: 400, Seed: 11, StopAtFirstBug: true,
	}).Run()
	if !on.FoundBug() || on.FirstBug > 100 {
		t.Fatalf("steering on: want quick bug, got %+v", on.FirstBug)
	}
	off := core.NewFuzzer("reorder_20", reorder(20), core.Options{
		Budget: 400, Seed: 11, StopAtFirstBug: true, DisableProactive: true,
	}).Run()
	if off.FoundBug() {
		t.Fatalf("steering off: POS-driven mutants should miss reorder_20 in 400 schedules, found at %d", off.FirstBug)
	}
}

func TestMutationOperatorDistribution(t *testing.T) {
	// Over many mutations of a non-trivial schedule all four operators
	// must manifest: schedules must grow, shrink, flip polarity and swap.
	pool := core.NewEventPool()
	res := exec.Run("probe", reorder(3), exec.Config{Scheduler: sched.NewPOS(), Seed: 1})
	pool.AddTrace(res.Trace)
	rng := rand.New(rand.NewSource(3))

	base := core.EmptySchedule()
	for i := 0; i < 6; i++ { // grow a base schedule
		base = core.Mutate(base, pool, rng, core.MutatorConfig{})
	}
	if base.Len() == 0 {
		t.Fatal("failed to grow base schedule")
	}
	var sawGrow, sawShrink, sawNegate, sawSame bool
	for i := 0; i < 500; i++ {
		m := core.Mutate(base, pool, rng, core.MutatorConfig{})
		switch {
		case m.Len() > base.Len():
			sawGrow = true
		case m.Len() < base.Len():
			sawShrink = true
		default:
			sawSame = true
			neg, pos := 0, 0
			for _, c := range m.Constraints() {
				if c.Negated {
					neg++
				} else {
					pos++
				}
			}
			baseNeg := 0
			for _, c := range base.Constraints() {
				if c.Negated {
					baseNeg++
				}
			}
			if neg != baseNeg && pos+neg == base.Len() {
				sawNegate = true
			}
		}
	}
	if !sawGrow || !sawShrink || !sawSame || !sawNegate {
		t.Fatalf("operator coverage: grow=%v shrink=%v same=%v negate=%v",
			sawGrow, sawShrink, sawSame, sawNegate)
	}
}

func TestProactiveSteersLockOrder(t *testing.T) {
	// A reads-from constraint over the mutex word must control which
	// thread acquires the lock first (the mechanism behind twostage_100).
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		order := t.NewVar("order", 0)
		a := t.Go("a", func(w *exec.Thread) {
			w.Lock(m)
			if w.Read(order) == 0 {
				w.Write(order, 1)
			}
			w.Unlock(m)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.Lock(m)
			if w.Read(order) == 0 {
				w.Write(order, 2)
			}
			w.Unlock(m)
		})
		t.JoinAll(a, b)
	}
	// Probe for thread b's lock abstract event and the mutex init.
	probe := exec.Run("probe", prog, exec.Config{Scheduler: sched.NewPOS(), Seed: 1})
	var mInit, bLock exec.AbstractEvent
	for _, e := range probe.Trace.Events {
		if e.Op == exec.OpVarInit && e.VarStr == "m" {
			mInit = e.Abstract()
		}
		if e.Op == exec.OpLock && e.Thread == 3 {
			bLock = e.Abstract()
		}
	}
	if mInit.IsZero() || bLock.IsZero() {
		t.Skip("probe did not surface both lock events")
	}
	// Constraint: b's acquisition reads-from the mutex initializer, i.e.
	// b locks first.
	target := core.NewSchedule(core.Constraint{Write: mInit, Read: bLock})
	p := core.NewProactive()
	p.SetSchedule(target)
	wins := 0
	for seed := int64(0); seed < 100; seed++ {
		res := exec.Run("p", prog, exec.Config{Scheduler: p, Seed: seed})
		final := int64(0)
		for _, e := range res.Trace.Events {
			if e.Op == exec.OpWrite && e.VarStr == "order" {
				final = e.Val
			}
		}
		if final == 2 {
			wins++
		}
	}
	if wins < 85 {
		t.Fatalf("lock-order steering too weak: b won only %d/100", wins)
	}
}

func TestProactiveHandlesRMWConstraints(t *testing.T) {
	// Constraints whose write side is the store half of a CAS must be
	// matched through Pending.AbstractWrite.
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		a := t.Go("a", func(w *exec.Thread) { w.CAS(x, 0, 1) })
		b := t.Go("b", func(w *exec.Thread) { w.Read(x) })
		t.JoinAll(a, b)
	}
	probe := exec.Run("probe", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	var casWrite, read exec.AbstractEvent
	for _, e := range probe.Trace.Events {
		if e.Op == exec.OpWrite && e.VarStr == "x" {
			casWrite = e.Abstract()
		}
		if e.Op == exec.OpRead && e.Thread == 3 {
			read = e.Abstract()
		}
	}
	if casWrite.IsZero() || read.IsZero() {
		t.Fatalf("probe incomplete: %v %v", casWrite, read)
	}
	target := core.NewSchedule(core.Constraint{Write: casWrite, Read: read})
	p := core.NewProactive()
	p.SetSchedule(target)
	for seed := int64(0); seed < 50; seed++ {
		res := exec.Run("p", prog, exec.Config{Scheduler: p, Seed: seed})
		if !target.InstantiatedBy(res.Trace) {
			t.Fatalf("seed %d: CAS-write constraint unsatisfied:\n%s", seed, res.Trace)
		}
	}
}
