package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rff/internal/exec"
)

// AbstractEventJSON is the serialized form of an abstract event.
type AbstractEventJSON struct {
	Op  string `json:"op"`
	Var string `json:"var"`
	Loc string `json:"loc"`
}

// ConstraintJSON is the serialized form of one reads-from constraint.
type ConstraintJSON struct {
	Write   AbstractEventJSON `json:"write"`
	Read    AbstractEventJSON `json:"read"`
	Negated bool              `json:"negated,omitempty"`
}

// Artifact is the on-disk form of one failing schedule: everything needed
// to reproduce and triage the bug — the program name, the abstract
// schedule that was being driven, the failure, and the exact decision
// sequence for deterministic replay. This is the fuzzer's analogue of a
// crash file in AFL's output directory (Algorithm 1's S_fail).
type Artifact struct {
	Program     string           `json:"program"`
	Seed        int64            `json:"seed"`
	Execution   int              `json:"execution"`
	FailureKind string           `json:"failure_kind"`
	FailureMsg  string           `json:"failure_msg"`
	FailureLoc  string           `json:"failure_loc,omitempty"`
	Thread      int32            `json:"thread"`
	Schedule    []ConstraintJSON `json:"schedule"`
	Decisions   []int32          `json:"decisions"`
}

// opFromString inverts Op.String for the ops that appear in abstract
// events.
func opFromString(s string) (exec.Op, error) {
	for op := exec.Op(1); int(op) < exec.NumOps; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return exec.OpNone, fmt.Errorf("unknown op %q", s)
}

// NewArtifact converts a FailureRecord into its serializable form.
func NewArtifact(program string, fr FailureRecord) *Artifact {
	a := &Artifact{
		Program:     program,
		Seed:        fr.Seed,
		Execution:   fr.Execution,
		FailureKind: fr.Failure.Kind.String(),
		FailureMsg:  fr.Failure.Msg,
		FailureLoc:  fr.Failure.Loc,
		Thread:      int32(fr.Failure.Thread),
	}
	for _, c := range fr.Schedule.Constraints() {
		a.Schedule = append(a.Schedule, ConstraintJSON{
			Write:   AbstractEventJSON{Op: c.Write.Op.String(), Var: c.Write.Var, Loc: c.Write.Loc},
			Read:    AbstractEventJSON{Op: c.Read.Op.String(), Var: c.Read.Var, Loc: c.Read.Loc},
			Negated: c.Negated,
		})
	}
	for _, d := range fr.Decisions {
		a.Decisions = append(a.Decisions, int32(d))
	}
	return a
}

// AbstractSchedule reconstructs the constraint set.
func (a *Artifact) AbstractSchedule() (Schedule, error) {
	var cs []Constraint
	for _, c := range a.Schedule {
		wop, err := opFromString(c.Write.Op)
		if err != nil {
			return Schedule{}, err
		}
		rop, err := opFromString(c.Read.Op)
		if err != nil {
			return Schedule{}, err
		}
		cs = append(cs, Constraint{
			Write:   exec.AbstractEvent{Op: wop, Var: c.Write.Var, Loc: c.Write.Loc},
			Read:    exec.AbstractEvent{Op: rop, Var: c.Read.Var, Loc: c.Read.Loc},
			Negated: c.Negated,
		})
	}
	return NewSchedule(cs...), nil
}

// ThreadOrder reconstructs the replayable decision sequence.
func (a *Artifact) ThreadOrder() []exec.ThreadID {
	out := make([]exec.ThreadID, len(a.Decisions))
	for i, d := range a.Decisions {
		out[i] = exec.ThreadID(d)
	}
	return out
}

// Validate checks the structural invariants every replayable artifact
// satisfies: a program name, a failure kind, a non-empty decision
// sequence of valid thread IDs, and a parseable abstract schedule. It
// guards the replay path against truncated or hand-edited crash files.
func (a *Artifact) Validate() error {
	if a.Program == "" {
		return fmt.Errorf("missing program name")
	}
	if a.FailureKind == "" {
		return fmt.Errorf("missing failure kind")
	}
	if len(a.Decisions) == 0 {
		return fmt.Errorf("empty decision sequence — nothing to replay")
	}
	for i, d := range a.Decisions {
		if d < 1 {
			return fmt.Errorf("decision %d: invalid thread id %d", i, d)
		}
	}
	if _, err := a.AbstractSchedule(); err != nil {
		return fmt.Errorf("abstract schedule: %w", err)
	}
	return nil
}

// DecodeArtifact parses and validates artifact JSON. Malformed input —
// syntactically broken JSON, wrong field types, or a structurally
// invalid artifact — returns a descriptive error; it never panics.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("malformed artifact JSON: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("invalid artifact: %w", err)
	}
	return &a, nil
}

// EncodeArtifact renders the canonical artifact bytes: pretty-printed
// JSON with a trailing newline. Every producer (Save, the service's
// blob store, the triage corpus) encodes through here, so identical
// artifacts hash to identical content addresses everywhere.
func EncodeArtifact(a *Artifact) ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the artifact as pretty-printed JSON.
func (a *Artifact) Save(path string) error {
	data, err := EncodeArtifact(a)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadArtifact reads an artifact back, validating it on the way in.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	a, err := DecodeArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("artifact %s: %w", path, err)
	}
	return a, nil
}

// SaveFailures writes every failure of a report into dir as
// crash-000.json, crash-001.json, ... and returns the paths.
func SaveFailures(dir string, rep *Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for i, fr := range rep.Failures {
		p := filepath.Join(dir, fmt.Sprintf("crash-%03d.json", i))
		if err := NewArtifact(rep.Program, fr).Save(p); err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
