package core_test

import (
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
)

// mergeSched builds a one-constraint schedule distinguished by loc, so tests
// can mint arbitrarily many distinct corpus keys.
func mergeSched(loc string) core.Schedule {
	return core.NewSchedule(core.Constraint{
		Write: exec.AbstractEvent{Op: exec.OpWrite, Var: "v", Loc: loc + ":w"},
		Read:  exec.AbstractEvent{Op: exec.OpRead, Var: "v", Loc: loc + ":r"},
	})
}

func TestCorpusAddReturnsStableIndex(t *testing.T) {
	c := core.NewCorpus() // index 0 is ε
	for i := 1; i <= 5; i++ {
		idx, added := c.Add(&core.Entry{Schedule: mergeSched(string(rune('a' + i)))})
		if !added || idx != i {
			t.Fatalf("add %d: got (%d, %v), want (%d, true)", i, idx, added, i)
		}
	}
	// Re-adding any schedule returns its original insertion index.
	for i := 1; i <= 5; i++ {
		idx, added := c.Add(&core.Entry{Schedule: mergeSched(string(rune('a' + i)))})
		if added || idx != i {
			t.Fatalf("re-add %d: got (%d, %v), want (%d, false)", i, idx, added, i)
		}
	}
	// Indices identify entries positionally.
	for i, e := range c.Entries() {
		idx, added := c.Add(&core.Entry{Schedule: e.Schedule})
		if added || idx != i {
			t.Fatalf("entry %d: index lookup gave (%d, %v)", i, idx, added)
		}
	}
}

func TestCorpusMergeDeterministicOrder(t *testing.T) {
	// Two shard corpora with overlapping membership.
	a := core.NewCorpus()
	a.Add(&core.Entry{Schedule: mergeSched("s1"), Sig: 11, Perf: 2})
	a.Add(&core.Entry{Schedule: mergeSched("s2"), Sig: 12, Perf: 3})

	b := core.NewCorpus()
	b.Add(&core.Entry{Schedule: mergeSched("s2"), Sig: 99, Perf: 9}) // dup of a's s2
	b.Add(&core.Entry{Schedule: mergeSched("s3"), Sig: 13, Perf: 4, ChosenSince: 7})

	added := a.Merge(b)
	if added != 1 {
		t.Fatalf("merge added %d entries, want 1 (only s3 is new)", added)
	}
	if a.Len() != 4 { // ε, s1, s2, s3
		t.Fatalf("merged corpus has %d entries, want 4", a.Len())
	}
	// The duplicate keeps the receiver's entry untouched.
	if e := a.Entries()[2]; e.Sig != 12 || e.Perf != 3 {
		t.Fatalf("duplicate merge overwrote receiver entry: %+v", e)
	}
	// The new entry is appended last, copied, with its ramp reset.
	last := a.Entries()[3]
	if last.Sig != 13 || last.Perf != 4 {
		t.Fatalf("merged entry lost its payload: %+v", last)
	}
	if last.ChosenSince != 0 {
		t.Fatalf("merged entry must reset ChosenSince, got %d", last.ChosenSince)
	}
	if last == b.Entries()[1] {
		t.Fatal("merge must copy entries, not alias the source corpus")
	}

	// Merging identical corpora in the same order produces the same
	// entry sequence every time (no map-iteration dependence).
	mergeKeys := func() []string {
		dst := core.NewCorpus()
		for _, src := range []*core.Corpus{a, b} {
			dst.Merge(src)
		}
		var keys []string
		for _, e := range dst.Entries() {
			keys = append(keys, e.Schedule.Key())
		}
		return keys
	}
	first := mergeKeys()
	for i := 0; i < 10; i++ {
		got := mergeKeys()
		if len(got) != len(first) {
			t.Fatalf("merge order unstable: %d vs %d entries", len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("merge order unstable at %d: %q vs %q", j, got[j], first[j])
			}
		}
	}
}

func TestCorpusMergeIsIdempotent(t *testing.T) {
	a := core.NewCorpus()
	a.Add(&core.Entry{Schedule: mergeSched("x"), Sig: 1})
	b := core.NewCorpus()
	b.Add(&core.Entry{Schedule: mergeSched("y"), Sig: 2})

	if added := a.Merge(b); added != 1 {
		t.Fatalf("first merge added %d, want 1", added)
	}
	if added := a.Merge(b); added != 0 {
		t.Fatalf("second merge added %d, want 0", added)
	}
}
