package core

import (
	"math/rand"
	"sort"

	"rff/internal/exec"
)

// EventPool is the fuzzer's set E of abstract events observed across all
// executions so far, organized per shared variable so that mutation can
// draw *potentially conflicting* (write, read) pairs to form reads-from
// constraints. Events are kept in first-observation order, which is
// deterministic for a deterministic campaign.
//
// Membership is tracked by interned EventID — integer map keys — with the
// per-variable lists still holding AbstractEvent values for the mutator.
type EventPool struct {
	// intern is the table the EventID keys resolve through, adopted from
	// the first added trace.
	intern *exec.InternTable
	seen   map[exec.EventID]struct{}
	reads  map[string][]exec.AbstractEvent // var name -> read abstract events
	writes map[string][]exec.AbstractEvent // var name -> write abstract events (incl. init)
	// pairedVars lists variables that have at least one read and one
	// write in the pool, i.e. can produce a constraint.
	pairedVars []string
	isPaired   map[string]bool
}

// NewEventPool returns an empty pool.
func NewEventPool() *EventPool {
	return &EventPool{
		seen:     make(map[exec.EventID]struct{}, 128),
		reads:    make(map[string][]exec.AbstractEvent, 16),
		writes:   make(map[string][]exec.AbstractEvent, 16),
		isPaired: make(map[string]bool, 16),
	}
}

// AddTrace folds a trace's abstract events into the pool, reusing the
// trace's memoized Summary (shared with Feedback.Observe) instead of
// re-deriving the event set.
func (p *EventPool) AddTrace(t *exec.Trace) {
	s := t.Summary()
	if p.intern == nil {
		p.intern = s.Table
	}
	if s.Table == p.intern {
		for i, id := range s.EventIDs {
			p.add(id, s.Events[i])
		}
	} else {
		// Foreign table (trace executed without the campaign's shared
		// intern table): re-intern for comparable IDs. Slow path.
		for _, ae := range s.Events {
			p.add(p.intern.Intern(ae), ae)
		}
	}
}

// AddEvent folds one already-interned abstract event into the pool —
// the sharded campaign's merge path, where events arrive remapped into
// the campaign-global table instead of via a live trace summary. The id
// must resolve to ae in the table the pool's other ids came from.
func (p *EventPool) AddEvent(id exec.EventID, ae exec.AbstractEvent) { p.add(id, ae) }

func (p *EventPool) add(id exec.EventID, ae exec.AbstractEvent) {
	if _, dup := p.seen[id]; dup {
		return
	}
	// Lock acquisitions are both reads-from sinks and sources (the lock
	// word is read and overwritten), so they join both lists; unlocks,
	// waits and initializers are sources only.
	sink := ae.Op.ReadsFrom()
	source := ae.Op.ActsAsWrite()
	if !sink && !source {
		return // pure sync markers (signal, spawn, ...) form no constraints
	}
	p.seen[id] = struct{}{}
	if sink {
		p.reads[ae.Var] = append(p.reads[ae.Var], ae)
	}
	if source {
		p.writes[ae.Var] = append(p.writes[ae.Var], ae)
	}
	if !p.isPaired[ae.Var] && len(p.reads[ae.Var]) > 0 && len(p.writes[ae.Var]) > 0 {
		p.isPaired[ae.Var] = true
		p.pairedVars = append(p.pairedVars, ae.Var)
	}
}

// Size returns the number of distinct abstract events in the pool.
func (p *EventPool) Size() int { return len(p.seen) }

// Vars returns the variables that can currently produce constraints,
// sorted for deterministic inspection.
func (p *EventPool) Vars() []string {
	out := append([]string(nil), p.pairedVars...)
	sort.Strings(out)
	return out
}

// RandomConstraint draws a uniformly random positive constraint
// w --rf--> r over a random variable with conflicting events. ok is false
// while the pool has no (write, read) pair on any variable.
func (p *EventPool) RandomConstraint(rng *rand.Rand) (Constraint, bool) {
	if len(p.pairedVars) == 0 {
		return Constraint{}, false
	}
	v := p.pairedVars[rng.Intn(len(p.pairedVars))]
	ws := p.writes[v]
	rs := p.reads[v]
	return Constraint{
		Write: ws[rng.Intn(len(ws))],
		Read:  rs[rng.Intn(len(rs))],
	}, true
}
