// Package fleet is the parallel campaign orchestrator: it decomposes a
// batch of independent work items ("cells") onto a bounded worker pool
// and deterministically merges the results back into submission order.
//
// A cell is one (tool, program, trial) trial of the evaluation matrix,
// one distribution profile, or any other self-contained unit whose
// result depends only on its own inputs. The pool guarantees:
//
//   - Deterministic merge: Run returns results indexed exactly like the
//     submitted cells, whatever order workers completed them in. A
//     caller whose cells are themselves deterministic (fixed seeds, no
//     shared mutable state) gets bit-identical output at any worker
//     count.
//   - Isolation: every worker owns a Scratch — reusable allocation
//     caches built once per worker — that is never shared across
//     workers and never accessed concurrently.
//   - Containment: a panicking cell is recovered with its stack and
//     reported as that cell's error; sibling cells are unaffected.
//   - Cancellation: the pool's context cancels unstarted cells, and
//     Options.CellTimeout arms a per-cell deadline that context-aware
//     cells observe mid-run.
//
// Telemetry under concurrency follows one rule: per-cell series
// (duration histogram, busy gauge) are updated live through the sink's
// atomic registry, while aggregate counters (cells completed per
// worker) are accumulated locally and merged at the barrier, so a
// snapshot taken after Run is independent of scheduling order.
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rff/internal/telemetry"
)

// Scratch is a worker's reusable state, handed to every cell the worker
// runs. Cells on the same worker execute sequentially, so the state
// needs no locking; cells on different workers never see the same
// Scratch.
type Scratch struct {
	// Worker is the owning worker's index in [0, workers).
	Worker int
	// State is whatever Options.NewState built for this worker —
	// typically allocation caches (e.g. an exec.Recycler) that are
	// unsafe to share across threads but profit from reuse across
	// cells. Nil when no NewState hook is set.
	State any
}

// Cell is one independent unit of work.
type Cell[T any] struct {
	// ID names the cell in telemetry and results ("RFF/CS/account[2]").
	ID string
	// Spec, if non-empty, is the canonical strategy name behind the cell
	// (e.g. "PCT3"); the pool labels the cell's duration series with it,
	// so a snapshot separates per-strategy timing.
	Spec string
	// Run executes the cell. ctx carries the pool's cancellation and,
	// when Options.CellTimeout is set, this cell's deadline; cells that
	// cannot observe ctx mid-run simply ignore it. scratch is the
	// owning worker's state.
	Run func(ctx context.Context, scratch *Scratch) (T, error)
}

// Result is the outcome of one cell.
type Result[T any] struct {
	// Cell echoes the cell's ID.
	Cell string
	// Value is Run's return value (the zero value when the cell errored,
	// panicked, or was cancelled before starting).
	Value T
	// Err is the cell's failure: Run's returned error, the recovered
	// panic, or ctx.Err() when the pool was cancelled first.
	Err error
	// Panicked reports whether Err came from a recovered panic.
	Panicked bool
	// Stack is the panic stack, scrubbed of its nondeterministic
	// "goroutine N" header (empty unless Panicked).
	Stack string
	// Worker is the index of the worker that ran the cell.
	Worker int
	// Duration is the cell's wall-clock time (zero if never started).
	Duration time.Duration
}

// Options configures a pool run.
type Options struct {
	// Workers bounds concurrent cells (0 = GOMAXPROCS). The pool never
	// spawns more workers than cells.
	Workers int
	// CellTimeout, if positive, arms a deadline on each cell's context.
	// Cells already past the deadline when a worker reaches them fail
	// immediately with context.DeadlineExceeded; running cells must
	// observe ctx themselves to stop early.
	CellTimeout time.Duration
	// NewState, if non-nil, builds each worker's Scratch.State once,
	// before its first cell.
	NewState func(worker int) any
	// OnDone, if non-nil, is called after each completed cell with the
	// running completion count. Calls are serialized and the count is
	// strictly increasing, but cells complete in any order.
	OnDone func(done, total int)
	// Telemetry, if non-nil, receives the fleet metrics: the
	// fleet_cells_done counter and fleet_cell_duration histogram,
	// the fleet_workers_busy live gauge, and the fleet_utilization_pct
	// gauge set at the barrier.
	Telemetry telemetry.Sink
}

// Run executes every cell on a bounded worker pool and returns their
// results in cell order. It blocks until all cells have completed (or
// been skipped by cancellation); it never returns early.
func Run[T any](ctx context.Context, cells []Cell[T], opts Options) []Result[T] {
	n := len(cells)
	results := make([]Result[T], n)
	if n == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next       atomic.Int64 // index of the next unclaimed cell
		busy       atomic.Int64 // workers currently inside a cell
		busyNS     atomic.Int64 // total nanoseconds spent inside cells
		progressMu sync.Mutex
		done       int
		wg         sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := &Scratch{Worker: w}
			if opts.NewState != nil {
				scratch.State = opts.NewState(w)
			}
			var cellsDone int64
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if t := opts.Telemetry; t != nil {
					t.Set(telemetry.MFleetWorkersBusy, busy.Add(1))
				}
				res := runCell(ctx, cells[i], scratch, opts.CellTimeout)
				if t := opts.Telemetry; t != nil {
					t.Set(telemetry.MFleetWorkersBusy, busy.Add(-1))
					if spec := cells[i].Spec; spec != "" {
						t.Observe(telemetry.MFleetCellDuration, res.Duration.Microseconds(), telemetry.L("spec", spec))
					} else {
						t.Observe(telemetry.MFleetCellDuration, res.Duration.Microseconds())
					}
				}
				busyNS.Add(res.Duration.Nanoseconds())
				cellsDone++
				results[i] = res
				if opts.OnDone != nil {
					progressMu.Lock()
					done++
					opts.OnDone(done, n)
					progressMu.Unlock()
				}
			}
			// Aggregate counters merge at the barrier: one Add per
			// worker, so a post-Run snapshot sees the same totals at
			// any worker count and completion order.
			if t := opts.Telemetry; t != nil && cellsDone > 0 {
				t.Add(telemetry.MFleetCellsDone, cellsDone)
			}
		}(w)
	}
	wg.Wait()
	if t := opts.Telemetry; t != nil {
		t.Set(telemetry.MFleetWorkersBusy, 0)
		if wall := time.Since(start).Nanoseconds(); wall > 0 {
			util := busyNS.Load() * 100 / (wall * int64(workers))
			if util > 100 {
				util = 100 // rounding at tiny wall-clocks
			}
			t.Set(telemetry.MFleetUtilization, util)
		}
	}
	return results
}

// runCell executes one cell with panic containment and its deadline.
func runCell[T any](ctx context.Context, c Cell[T], scratch *Scratch, timeout time.Duration) (res Result[T]) {
	res.Cell = c.ID
	res.Worker = scratch.Worker
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	start := time.Now()
	defer func() {
		res.Duration = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("panic: %v", r)
			res.Panicked = true
			res.Stack = scrubStack(debug.Stack())
		}
	}()
	res.Value, res.Err = c.Run(ctx, scratch)
	return res
}

// scrubStack drops the "goroutine N [running]:" header from a
// debug.Stack dump; goroutine numbers vary across runs and worker
// counts, and everything after the header is the deterministic frame
// list (modulo argument pointer values).
func scrubStack(b []byte) string {
	s := string(b)
	if strings.HasPrefix(s, "goroutine ") {
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			s = s[i+1:]
		}
	}
	return s
}
