package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rff/internal/fleet"
	"rff/internal/telemetry"
)

// squareCells builds n deterministic cells; cell i returns i*i.
func squareCells(n int) []fleet.Cell[int] {
	cells := make([]fleet.Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = fleet.Cell[int]{
			ID: fmt.Sprintf("sq[%d]", i),
			Run: func(context.Context, *fleet.Scratch) (int, error) {
				// Skew cell durations so completion order differs from
				// submission order under concurrency.
				if i%3 == 0 {
					time.Sleep(time.Millisecond)
				}
				return i * i, nil
			},
		}
	}
	return cells
}

func TestRunMergesInCellOrder(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		results := fleet.Run(context.Background(), squareCells(n), fleet.Options{Workers: workers})
		if len(results) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), n)
		}
		for i, r := range results {
			if r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: results[%d] = %+v, want value %d", workers, i, r, i*i)
			}
			if r.Cell != fmt.Sprintf("sq[%d]", i) {
				t.Fatalf("workers=%d: results[%d] carries wrong cell id %q", workers, i, r.Cell)
			}
		}
	}
}

func TestPanicContainment(t *testing.T) {
	cells := squareCells(9)
	cells[4].Run = func(context.Context, *fleet.Scratch) (int, error) {
		panic("cell blew up")
	}
	results := fleet.Run(context.Background(), cells, fleet.Options{Workers: 3})
	for i, r := range results {
		if i == 4 {
			if !r.Panicked || r.Err == nil || !strings.Contains(r.Err.Error(), "cell blew up") {
				t.Fatalf("panicking cell not contained: %+v", r)
			}
			if !strings.Contains(r.Stack, "TestPanicContainment") {
				t.Fatalf("stack does not reach the panic site:\n%s", r.Stack)
			}
			if strings.HasPrefix(r.Stack, "goroutine ") {
				t.Fatalf("stack kept its nondeterministic goroutine header:\n%s", r.Stack)
			}
			continue
		}
		if r.Err != nil || r.Value != i*i {
			t.Fatalf("sibling cell %d harmed by panic: %+v", i, r)
		}
	}
}

func TestCellError(t *testing.T) {
	boom := errors.New("boom")
	cells := []fleet.Cell[int]{{ID: "bad", Run: func(context.Context, *fleet.Scratch) (int, error) {
		return 0, boom
	}}}
	results := fleet.Run(context.Background(), cells, fleet.Options{})
	if !errors.Is(results[0].Err, boom) || results[0].Panicked {
		t.Fatalf("cell error mangled: %+v", results[0])
	}
}

func TestWorkerScratchIsolationAndReuse(t *testing.T) {
	type state struct{ worker int }
	const n, workers = 40, 4
	var mu sync.Mutex
	made := 0
	seen := make([]*state, n)
	cells := make([]fleet.Cell[*state], n)
	for i := range cells {
		i := i
		cells[i] = fleet.Cell[*state]{Run: func(_ context.Context, s *fleet.Scratch) (*state, error) {
			st := s.State.(*state)
			if st.worker != s.Worker {
				t.Errorf("cell %d: scratch of worker %d handed to worker %d", i, st.worker, s.Worker)
			}
			mu.Lock()
			seen[i] = st
			mu.Unlock()
			return st, nil
		}}
	}
	results := fleet.Run(context.Background(), cells, fleet.Options{
		Workers: workers,
		NewState: func(w int) any {
			mu.Lock()
			made++
			mu.Unlock()
			return &state{worker: w}
		},
	})
	if made > workers {
		t.Fatalf("NewState called %d times for %d workers", made, workers)
	}
	// Scratch state is stable across every cell a worker ran.
	for i, r := range results {
		if seen[i] == nil || r.Value != seen[i] {
			t.Fatalf("cell %d: scratch changed between run and result", i)
		}
	}
}

func TestCancelledContextSkipsUnstartedCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	cells := []fleet.Cell[int]{
		{ID: "running", Run: func(context.Context, *fleet.Scratch) (int, error) {
			close(started)
			<-release
			return 1, nil
		}},
		{ID: "skipped", Run: func(context.Context, *fleet.Scratch) (int, error) {
			return 2, nil
		}},
	}
	go func() {
		<-started
		cancel()
		close(release)
	}()
	results := fleet.Run(ctx, cells, fleet.Options{Workers: 1})
	if results[0].Err != nil || results[0].Value != 1 {
		t.Fatalf("in-flight cell should finish: %+v", results[0])
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Fatalf("unstarted cell should report cancellation: %+v", results[1])
	}
}

func TestCellTimeout(t *testing.T) {
	cells := []fleet.Cell[int]{{ID: "slow", Run: func(ctx context.Context, _ *fleet.Scratch) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(10 * time.Second):
			return 1, nil
		}
	}}}
	start := time.Now()
	results := fleet.Run(context.Background(), cells, fleet.Options{CellTimeout: 10 * time.Millisecond})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("deadline not delivered: %+v", results[0])
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cell deadline did not interrupt the cell")
	}
}

func TestProgressSerializedAndMonotone(t *testing.T) {
	const n = 30
	var calls []int
	results := fleet.Run(context.Background(), squareCells(n), fleet.Options{
		Workers: 4,
		// OnDone calls are serialized by the pool, so appending without
		// a lock here is race-free by contract (the race detector run in
		// CI would flag a violation).
		OnDone: func(done, total int) {
			if total != n {
				t.Errorf("OnDone total = %d, want %d", total, n)
			}
			calls = append(calls, done)
		},
	})
	if len(results) != n || len(calls) != n {
		t.Fatalf("%d results, %d progress calls, want %d of each", len(results), len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress counts not strictly increasing: %v", calls)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// Seed-style mixing in each cell: any cross-cell leakage or merge
	// reordering shows up as a value mismatch.
	mk := func() []fleet.Cell[uint64] {
		cells := make([]fleet.Cell[uint64], 64)
		for i := range cells {
			i := i
			cells[i] = fleet.Cell[uint64]{Run: func(context.Context, *fleet.Scratch) (uint64, error) {
				z := uint64(i) * 0x9E3779B97F4A7C15
				for k := 0; k < 1000; k++ {
					z ^= z >> 13
					z *= 0xBF58476D1CE4E5B9
				}
				return z, nil
			}}
		}
		return cells
	}
	base := fleet.Run(context.Background(), mk(), fleet.Options{Workers: 1})
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := fleet.Run(context.Background(), mk(), fleet.Options{Workers: workers})
		for i := range base {
			if got[i].Value != base[i].Value {
				t.Fatalf("workers=%d: cell %d diverged", workers, i)
			}
		}
	}
}

func TestFleetTelemetry(t *testing.T) {
	hub := telemetry.NewHub()
	const n = 20
	fleet.Run(context.Background(), squareCells(n), fleet.Options{Workers: 4, Telemetry: hub})
	snap := hub.Snapshot()
	if got := snap.Total(telemetry.MFleetCellsDone); got != n {
		t.Fatalf("fleet_cells_done = %d, want %d", got, n)
	}
	if h := snap.Histogram(telemetry.MFleetCellDuration); h == nil || h.Count != n {
		t.Fatalf("fleet_cell_duration = %+v, want %d observations", h, n)
	}
	if got := snap.Value(telemetry.MFleetWorkersBusy); got != 0 {
		t.Fatalf("fleet_workers_busy = %d after the barrier, want 0", got)
	}
	if util := snap.Value(telemetry.MFleetUtilization); util < 0 || util > 100 {
		t.Fatalf("fleet_utilization_pct = %d, want 0-100", util)
	}
}

func TestEmptyAndOversizedPool(t *testing.T) {
	if got := fleet.Run[int](context.Background(), nil, fleet.Options{Workers: 8}); len(got) != 0 {
		t.Fatalf("empty cell list produced %d results", len(got))
	}
	// More workers than cells must not deadlock or drop results.
	results := fleet.Run(context.Background(), squareCells(3), fleet.Options{Workers: 64})
	for i, r := range results {
		if r.Err != nil || r.Value != i*i {
			t.Fatalf("oversized pool broke cell %d: %+v", i, r)
		}
	}
}
