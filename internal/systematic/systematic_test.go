package systematic_test

import (
	"testing"

	"rff/internal/bench"
	"rff/internal/exec"
	"rff/internal/systematic"
)

// tiny: two threads, two interleaving-relevant writes, one reachable bug.
func tiny(t *exec.Thread) {
	x := t.NewVar("x", 0)
	a := t.Go("a", func(w *exec.Thread) { w.Write(x, 1) })
	b := t.Go("b", func(w *exec.Thread) {
		if w.Read(x) == 1 {
			w.Assert(false, "b saw a's write")
		}
	})
	t.JoinAll(a, b)
}

func TestExploreFindsBugAndCompletes(t *testing.T) {
	rep := systematic.Explore("tiny", tiny, systematic.ExploreOptions{MaxExecutions: 10000})
	if rep.FirstBug == 0 {
		t.Fatal("exhaustive exploration missed a reachable bug")
	}
	if !rep.Complete {
		t.Fatal("tiny program should be fully enumerable")
	}
	if rep.Classes < 2 {
		t.Fatalf("tiny program has at least 2 rf classes, got %d", rep.Classes)
	}
	if rep.FirstFailure.Kind != exec.FailAssert {
		t.Fatalf("unexpected failure %v", rep.FirstFailure)
	}
}

func TestExploreCountsRFClassesOnReorder(t *testing.T) {
	// Section 3's worked example: reorder has few reads-from classes
	// despite exponentially many interleavings. For a two-setter reorder,
	// the checker's two reads each observe either the initial write or a
	// setter write; class count must be far below schedule count.
	reorder2 := func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		s1 := t.Go("s1", func(w *exec.Thread) { w.Write(a, 1); w.Write(b, -1) })
		s2 := t.Go("s2", func(w *exec.Thread) { w.Write(a, 1); w.Write(b, -1) })
		ck := t.Go("ck", func(w *exec.Thread) {
			av, bv := w.Read(a), w.Read(b)
			w.Assert((av == 0 && bv == 0) || (av == 1 && bv == -1), "reorder")
		})
		t.JoinAll(s1, s2, ck)
	}
	rep := systematic.Explore("reorder_2", reorder2, systematic.ExploreOptions{MaxExecutions: 400000})
	if !rep.Complete {
		t.Skipf("enumeration not complete in budget (%d execs)", rep.Executions)
	}
	if rep.FirstBug == 0 {
		t.Fatal("exhaustive enumeration must find the reorder bug")
	}
	if rep.Classes >= rep.Executions/10 {
		t.Errorf("expected far fewer rf classes than schedules: %d classes / %d schedules",
			rep.Classes, rep.Executions)
	}
	t.Logf("reorder_3: %d schedules, %d rf classes, first bug at %d",
		rep.Executions, rep.Classes, rep.FirstBug)
}

func TestExploreRespectsBudget(t *testing.T) {
	p := bench.MustGet("CS/reorder_10")
	rep := systematic.Explore(p.Name, p.Body, systematic.ExploreOptions{MaxExecutions: 50})
	if rep.Executions > 50 {
		t.Fatalf("budget exceeded: %d", rep.Executions)
	}
	if rep.Complete {
		t.Fatal("reorder_10 cannot be enumerated in 50 schedules")
	}
}

func TestICBFindsShallowBugs(t *testing.T) {
	for _, name := range []string{"CS/account", "CS/deadlock01", "CS/lazy01"} {
		p := bench.MustGet(name)
		rep := systematic.ICB(p.Name, p.Body, systematic.ICBOptions{
			MaxExecutions: 5000, StopAtFirstBug: true,
		})
		if rep.FirstBug == 0 {
			t.Errorf("%s: ICB missed a shallow bug in %d schedules", name, rep.Executions)
			continue
		}
		t.Logf("%s: ICB bug at %d", name, rep.FirstBug)
	}
}

func TestICBReorderLinearInThreads(t *testing.T) {
	// The reorder bug is one preemption deep; with reverse-spawn-order
	// targets ICB must find it in O(threads) schedules, mirroring
	// PERIOD's near-linear column in the paper's table.
	p := bench.MustGet("CS/reorder_10")
	rep := systematic.ICB(p.Name, p.Body, systematic.ICBOptions{
		MaxExecutions: 20000, StopAtFirstBug: true,
	})
	if rep.FirstBug == 0 {
		t.Fatal("ICB missed reorder_10")
	}
	if rep.FirstBug > 500 {
		t.Errorf("ICB needed %d schedules on reorder_10; expected O(threads)", rep.FirstBug)
	}
	t.Logf("reorder_10: ICB bug at %d", rep.FirstBug)
}

func TestICBDeterminism(t *testing.T) {
	p := bench.MustGet("CS/account")
	r1 := systematic.ICB(p.Name, p.Body, systematic.ICBOptions{MaxExecutions: 200})
	r2 := systematic.ICB(p.Name, p.Body, systematic.ICBOptions{MaxExecutions: 200})
	if r1.FirstBug != r2.FirstBug || r1.Executions != r2.Executions {
		t.Fatalf("ICB not deterministic: %+v vs %+v", r1, r2)
	}
}
