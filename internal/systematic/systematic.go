// Package systematic provides the two enumerative baselines of the
// evaluation:
//
//   - Explore — an exhaustive depth-first enumeration of the scheduling
//     decision tree with reads-from class accounting: the stand-in for the
//     GenMC stateless model checker. Precise and complete on small
//     programs, hopeless on wide ones, exactly as in the paper's table
//     (where GenMC errors out or is omitted on most subjects).
//
//   - ICB — deterministic iterative preemption bounding over a
//     non-preemptive baseline schedule, preferring recently spawned
//     threads as preemption targets: the stand-in for PERIOD's systematic
//     periodical exploration (strong on shallow bugs, paying a large
//     schedule cost on wide programs).
package systematic

import (
	"context"

	"rff/internal/exec"
)

// ExploreOptions bounds the exhaustive enumeration.
type ExploreOptions struct {
	// MaxExecutions caps the number of schedules explored. Required.
	MaxExecutions int
	// MaxSteps bounds each execution (0 = engine default).
	MaxSteps int
	// StopAtFirstBug ends the exploration at the first failing schedule.
	StopAtFirstBug bool
	// OnExecution, if non-nil, is invoked with every counted execution's
	// result before its trace is reclaimed — the visitor the conformance
	// harness uses to collect the full enumerated behavior set. The
	// callback must not retain the result's trace (its backing arrays are
	// recycled into the next execution); cancelled partial executions are
	// never reported.
	OnExecution func(res *exec.Result)
}

// ExploreReport summarizes an exhaustive enumeration.
type ExploreReport struct {
	// Executions is the number of schedules run.
	Executions int
	// FirstBug is the 1-based execution index of the first failure
	// (0 = none found).
	FirstBug int
	// FirstFailure describes the first failure.
	FirstFailure *exec.Failure
	// Classes counts the distinct reads-from equivalence classes
	// observed — the quantity partial-order and reads-from reduction
	// techniques exploit (exponentially fewer classes than schedules).
	Classes int
	// Complete reports whether the whole decision tree was enumerated
	// within the budget.
	Complete bool
}

// forced replays a fixed prefix of decision indices, then always picks the
// first enabled event, recording the branching width at every step so the
// driver can advance to the next unexplored leaf.
type forced struct {
	prefix []int
	pos    int
	widths []int
}

func (f *forced) Name() string     { return "DFS" }
func (f *forced) Begin(seed int64) { f.pos = 0; f.widths = f.widths[:0] }
func (f *forced) Pick(v *exec.View) int {
	choice := 0
	if f.pos < len(f.prefix) {
		choice = f.prefix[f.pos]
		if choice >= len(v.Enabled) {
			// The tree shifted under a diverging prefix; clamp. This
			// cannot happen for prefixes harvested from real runs.
			choice = len(v.Enabled) - 1
		}
	}
	f.widths = append(f.widths, len(v.Enabled))
	f.pos++
	return choice
}
func (f *forced) Executed(exec.Event) {}
func (f *forced) End(*exec.Trace)     {}

// Explore exhaustively enumerates the scheduling tree of the program in
// depth-first lexicographic order.
func Explore(name string, prog exec.Program, opts ExploreOptions) *ExploreReport {
	return ExploreContext(context.Background(), name, prog, opts)
}

// ExploreContext is Explore under a context: cancellation stops the
// in-flight execution within one scheduling step and returns the
// enumeration state reached so far (a cancelled partial execution is
// discarded, so the report is a prefix of the uninterrupted one).
func ExploreContext(ctx context.Context, name string, prog exec.Program, opts ExploreOptions) *ExploreReport {
	if opts.MaxExecutions <= 0 {
		panic("systematic.Explore: MaxExecutions must be positive")
	}
	rep := &ExploreReport{}
	classes := make(map[uint64]struct{})
	sched := &forced{}
	// Signatures of all enumerated traces resolve through one table, and
	// trace arrays recycle between executions.
	intern := exec.NewInternTable()
	recycler := exec.NewRecycler()

	for rep.Executions < opts.MaxExecutions {
		res := exec.Run(name, prog, exec.Config{
			Scheduler: sched,
			Ctx:       ctx,
			MaxSteps:  opts.MaxSteps,
			Intern:    intern,
			Recycle:   recycler,
		})
		if res.Cancelled {
			// The abandoned run recorded a bogus widths/prefix state;
			// stop here rather than advance the tree from it.
			recycler.Reclaim(res.Trace)
			break
		}
		rep.Executions++
		classes[res.Trace.RFSignature()] = struct{}{}
		if opts.OnExecution != nil {
			opts.OnExecution(res)
		}
		buggy := res.Buggy()
		recycler.Reclaim(res.Trace)
		if buggy && rep.FirstBug == 0 {
			rep.FirstBug = rep.Executions
			rep.FirstFailure = res.Failure
			if opts.StopAtFirstBug {
				break
			}
		}

		// Advance to the next leaf: deepest step with an untried sibling.
		full := make([]int, len(sched.widths))
		copy(full, sched.prefix)
		i := len(full) - 1
		for i >= 0 && full[i]+1 >= sched.widths[i] {
			i--
		}
		if i < 0 {
			rep.Complete = true
			break
		}
		next := make([]int, i+1)
		copy(next, full[:i+1])
		next[i]++
		sched.prefix = next
	}
	rep.Classes = len(classes)
	return rep
}

// ICBOptions bounds the preemption-bounded exploration.
type ICBOptions struct {
	// MaxExecutions caps the number of schedules. Required.
	MaxExecutions int
	// MaxSteps bounds each execution (0 = engine default).
	MaxSteps int
	// MaxBound caps the preemption bound (default 2).
	MaxBound int
	// StopAtFirstBug ends the exploration at the first failing schedule.
	StopAtFirstBug bool
	// OnExecution, if non-nil, is invoked with every counted execution's
	// result (see ExploreOptions.OnExecution for the retention rules).
	OnExecution func(res *exec.Result)
}

// ICBReport summarizes a preemption-bounded exploration.
type ICBReport struct {
	Executions   int
	FirstBug     int
	FirstFailure *exec.Failure
	// BoundReached is the largest preemption bound fully enumerated.
	BoundReached int
}

// preemption forces a switch to a target thread at (or as soon as possible
// after) a given step of the run.
type preemption struct {
	step   int
	target exec.ThreadID
}

// icbScheduler runs non-preemptively (current thread keeps running while
// enabled), applying the configured preemptions in order. A preemption
// whose target is not yet enabled stays armed until it is.
type icbScheduler struct {
	preemptions []preemption
	nextP       int
	step        int
	current     exec.ThreadID
	// maxThread records the highest thread ID seen, so the driver learns
	// the (deterministic) thread universe from the baseline run.
	maxThread exec.ThreadID
	// steps records the baseline length for the driver.
	steps int
}

func (s *icbScheduler) Name() string { return "ICB" }
func (s *icbScheduler) Begin(seed int64) {
	s.nextP = 0
	s.step = 0
	s.current = 0
	s.steps = 0
	s.maxThread = 0
}

func (s *icbScheduler) Pick(v *exec.View) int {
	defer func() { s.step++ }()
	for _, p := range v.Enabled {
		if p.Thread > s.maxThread {
			s.maxThread = p.Thread
		}
	}
	// Armed preemption: switch as soon as the target is enabled.
	if s.nextP < len(s.preemptions) && s.step >= s.preemptions[s.nextP].step {
		want := s.preemptions[s.nextP].target
		for i, p := range v.Enabled {
			if p.Thread == want {
				s.nextP++
				s.current = want
				return i
			}
		}
	}
	// Keep running the current thread while it is enabled.
	for i, p := range v.Enabled {
		if p.Thread == s.current {
			return i
		}
	}
	// Current thread blocked or exited: fall to the lowest-ID enabled.
	s.current = v.Enabled[0].Thread
	return 0
}
func (s *icbScheduler) Executed(exec.Event) { s.steps++ }
func (s *icbScheduler) End(*exec.Trace)     {}

// ICB explores the program with iterative preemption bounding: bound 0 is
// the non-preemptive baseline; bound k+1 extends every bound-k schedule
// with one more forced switch. Preemption targets are tried in reverse
// spawn order (most recently created threads first), which mirrors
// PERIOD's bias toward exercising late-spawned checker threads early.
func ICB(name string, prog exec.Program, opts ICBOptions) *ICBReport {
	return ICBContext(context.Background(), name, prog, opts)
}

// ICBContext is ICB under a context: cancellation stops the in-flight
// execution within one scheduling step and ends the exploration,
// discarding the cancelled partial execution.
func ICBContext(ctx context.Context, name string, prog exec.Program, opts ICBOptions) *ICBReport {
	if opts.MaxExecutions <= 0 {
		panic("systematic.ICB: MaxExecutions must be positive")
	}
	if opts.MaxBound <= 0 {
		opts.MaxBound = 2
	}
	rep := &ICBReport{}
	sched := &icbScheduler{}

	runOne := func(ps []preemption) (stop bool) {
		sched.preemptions = ps
		res := exec.Run(name, prog, exec.Config{Scheduler: sched, Ctx: ctx, MaxSteps: opts.MaxSteps})
		if res.Cancelled {
			return true
		}
		rep.Executions++
		if opts.OnExecution != nil {
			opts.OnExecution(res)
		}
		if res.Buggy() && rep.FirstBug == 0 {
			rep.FirstBug = rep.Executions
			rep.FirstFailure = res.Failure
			if opts.StopAtFirstBug {
				return true
			}
		}
		return rep.Executions >= opts.MaxExecutions
	}

	// Bound 0: baseline, which also discovers the thread universe and
	// schedule length (both deterministic).
	if runOne(nil) {
		return rep
	}
	nThreads := int(sched.maxThread)
	baseLen := sched.steps
	rep.BoundReached = 0

	// targets in reverse spawn order.
	targets := make([]exec.ThreadID, 0, nThreads)
	for id := nThreads; id >= 1; id-- {
		targets = append(targets, exec.ThreadID(id))
	}

	// enumerate extends a preemption list by one switch in all ways.
	var enumerate func(prefix []preemption, fromStep, depth int) bool
	enumerate = func(prefix []preemption, fromStep, depth int) bool {
		for _, tgt := range targets {
			for s := fromStep; s <= baseLen; s++ {
				ps := append(append([]preemption(nil), prefix...), preemption{step: s, target: tgt})
				if depth == 1 {
					if runOne(ps) {
						return true
					}
				} else if enumerate(ps, s+1, depth-1) {
					return true
				}
			}
		}
		return false
	}

	for bound := 1; bound <= opts.MaxBound; bound++ {
		if enumerate(nil, 0, bound) {
			return rep
		}
		rep.BoundReached = bound
	}
	return rep
}
