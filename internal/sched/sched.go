// Package sched provides the baseline schedulers used by the evaluation:
// a uniform random walk, a deterministic round-robin, an exact replayer,
// Partial Order Sampling (POS, Yuan et al. CAV'18), and PCT (Burckhardt et
// al. ASPLOS'10). RFF's proactive reads-from scheduler lives in
// internal/core and layers on top of POS from this package.
package sched

import (
	"math/rand"

	"rff/internal/exec"
)

// Random is the unbiased random-walk scheduler: at every scheduling point
// it picks uniformly among enabled events. It is the naive sampling
// baseline the paper's Section 1 calls "optimistic".
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random scheduler.
func NewRandom() *Random { return &Random{} }

// Name implements exec.Scheduler.
func (s *Random) Name() string { return "Random" }

// Begin implements exec.Scheduler.
func (s *Random) Begin(seed int64) { s.rng = rand.New(rand.NewSource(seed)) }

// Pick implements exec.Scheduler.
func (s *Random) Pick(v *exec.View) int { return s.rng.Intn(len(v.Enabled)) }

// Executed implements exec.Scheduler.
func (s *Random) Executed(exec.Event) {}

// End implements exec.Scheduler.
func (s *Random) End(*exec.Trace) {}

// RoundRobin deterministically prefers the lowest-numbered enabled thread.
// It is useful in tests and as the most boring possible schedule.
type RoundRobin struct{}

// NewRoundRobin returns a RoundRobin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements exec.Scheduler.
func (s *RoundRobin) Name() string { return "RoundRobin" }

// Begin implements exec.Scheduler.
func (s *RoundRobin) Begin(int64) {}

// Pick implements exec.Scheduler.
func (s *RoundRobin) Pick(v *exec.View) int { return 0 }

// Executed implements exec.Scheduler.
func (s *RoundRobin) Executed(exec.Event) {}

// End implements exec.Scheduler.
func (s *RoundRobin) End(*exec.Trace) {}

// Replay re-executes a recorded decision sequence (Trace.ThreadOrder),
// giving deterministic reproduction of any previously observed schedule —
// the reproducibility property Deterministic Multi-Threading buys the
// paper's implementation. If the recorded thread is not currently enabled
// (which cannot happen when replaying against the same program), Replay
// falls back to the first enabled event.
type Replay struct {
	order []exec.ThreadID
	pos   int
}

// NewReplay returns a scheduler replaying the given decision sequence.
func NewReplay(order []exec.ThreadID) *Replay { return &Replay{order: order} }

// Name implements exec.Scheduler.
func (s *Replay) Name() string { return "Replay" }

// Begin implements exec.Scheduler.
func (s *Replay) Begin(int64) { s.pos = 0 }

// Pick implements exec.Scheduler.
func (s *Replay) Pick(v *exec.View) int {
	if s.pos < len(s.order) {
		want := s.order[s.pos]
		s.pos++
		for i, p := range v.Enabled {
			if p.Thread == want {
				return i
			}
		}
	}
	return 0
}

// Executed implements exec.Scheduler.
func (s *Replay) Executed(exec.Event) {}

// End implements exec.Scheduler.
func (s *Replay) End(*exec.Trace) {}
