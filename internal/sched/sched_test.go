package sched_test

import (
	"reflect"
	"testing"

	"rff/internal/exec"
	"rff/internal/sched"
)

// twoWriters: two threads race a write each; checker reads.
func twoWriters(t *exec.Thread) {
	x := t.NewVar("x", 0)
	a := t.Go("a", func(w *exec.Thread) { w.Write(x, 1) })
	b := t.Go("b", func(w *exec.Thread) { w.Write(x, 2) })
	t.JoinAll(a, b)
	t.Read(x)
}

func TestPOSDeterministicPerSeed(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r1 := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewPOS(), Seed: seed})
		r2 := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewPOS(), Seed: seed})
		if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
			t.Fatalf("seed %d: POS not deterministic", seed)
		}
	}
}

func TestPOSExploresBothOrders(t *testing.T) {
	// Over many seeds POS must produce both final values of x.
	seen := map[int64]bool{}
	for seed := int64(0); seed < 50; seed++ {
		res := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewPOS(), Seed: seed})
		last := res.Trace.Event(res.Trace.Len())
		seen[last.Val] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("POS failed to explore both write orders: %v", seen)
	}
}

func TestPCTDepthOneIsStrictPriority(t *testing.T) {
	// With depth 1 there are no change points: thread priorities are
	// fixed, so the same seed always yields the same trace and different
	// seeds reorder threads.
	outcomes := map[int64]bool{}
	for seed := int64(0); seed < 40; seed++ {
		s := sched.NewPCT(1)
		res := exec.Run("p", twoWriters, exec.Config{Scheduler: s, Seed: seed})
		last := res.Trace.Event(res.Trace.Len())
		outcomes[last.Val] = true
	}
	if !outcomes[1] || !outcomes[2] {
		t.Fatalf("PCT priorities never flipped across seeds: %v", outcomes)
	}
}

func TestPCTAdaptsLengthEstimate(t *testing.T) {
	s := sched.NewPCT(3)
	long := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		for i := 0; i < 200; i++ {
			t.Write(x, int64(i))
		}
	}
	res := exec.Run("p", long, exec.Config{Scheduler: s, Seed: 1})
	if res.Trace.Len() < 200 {
		t.Fatalf("short trace: %d", res.Trace.Len())
	}
	// A second Begin must not panic and must still schedule fine with the
	// larger estimate.
	res = exec.Run("p", long, exec.Config{Scheduler: s, Seed: 2})
	if res.Buggy() {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
}

func TestReplayFallsBackGracefully(t *testing.T) {
	// A bogus decision list (threads that are never enabled) must not
	// wedge the run.
	order := []exec.ThreadID{99, 99, 99}
	res := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewReplay(order)})
	if res.Buggy() || res.Truncated {
		t.Fatalf("replay fallback broke the run: %+v", res)
	}
}

func TestRoundRobinPrefersLowestThread(t *testing.T) {
	res := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewRoundRobin()})
	// Main (t1) runs to its join; then a (t2) fully; then b (t3): final
	// value of x must be 2, written by b.
	last := res.Trace.Event(res.Trace.Len())
	if last.Val != 2 {
		t.Fatalf("unexpected final read %d", last.Val)
	}
}

func TestRandomDiffersAcrossSeeds(t *testing.T) {
	diff := false
	base := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewRandom(), Seed: 0})
	for seed := int64(1); seed < 20 && !diff; seed++ {
		res := exec.Run("p", twoWriters, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		if !reflect.DeepEqual(base.Trace.Events, res.Trace.Events) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("20 seeds produced identical schedules")
	}
}
