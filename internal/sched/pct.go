package sched

import (
	"math/rand"
	"sort"

	"rff/internal/exec"
)

// PCT implements the Probabilistic Concurrency Testing scheduler
// (Burckhardt, Kothari, Musuvathi, Nagarakatte — ASPLOS 2010) with bug
// depth d: threads receive distinct random priorities above d; the
// highest-priority enabled thread always runs; at d-1 random change points
// (sampled over the estimated execution length) the currently scheduled
// thread's priority drops below all others. The paper evaluates PCT at
// depth 3, which was the strongest setting in the SCTBench study.
//
// The execution-length estimate adapts across runs (maximum trace length
// seen so far), as in practical PCT implementations that cannot know n in
// advance.
type PCT struct {
	depth int
	rng   *rand.Rand

	prio    map[exec.ThreadID]int
	changes map[int]int // step -> change-point index (1-based)
	step    int
	nextLow int // priority assigned at the k-th change point: depth-k

	estLen int
}

// NewPCT returns a PCT scheduler with the given bug-depth parameter.
func NewPCT(depth int) *PCT {
	if depth < 1 {
		depth = 1
	}
	return &PCT{depth: depth, estLen: 64}
}

// Name implements exec.Scheduler.
func (s *PCT) Name() string {
	if s.depth == 3 {
		return "PCT3"
	}
	return "PCT" + string(rune('0'+s.depth%10))
}

// Begin implements exec.Scheduler.
func (s *PCT) Begin(seed int64) {
	s.rng = rand.New(rand.NewSource(seed))
	s.prio = make(map[exec.ThreadID]int)
	s.changes = make(map[int]int)
	s.step = 0
	// Sample d-1 distinct change points over the estimated length.
	points := make(map[int]struct{})
	for len(points) < s.depth-1 && len(points) < s.estLen {
		points[1+s.rng.Intn(s.estLen)] = struct{}{}
	}
	ordered := make([]int, 0, len(points))
	for p := range points {
		ordered = append(ordered, p)
	}
	sort.Ints(ordered)
	for i, p := range ordered {
		s.changes[p] = i + 1
	}
}

// Pick implements exec.Scheduler: run the highest-priority enabled thread;
// at change points, demote it.
func (s *PCT) Pick(v *exec.View) int {
	s.step++
	best := -1
	bestPrio := 0
	for i, p := range v.Enabled {
		pr, ok := s.prio[p.Thread]
		if !ok {
			// New threads draw a random priority above the depth band;
			// collisions are broken by thread ID and are harmless.
			pr = s.depth + 1 + s.rng.Intn(1<<20)
			s.prio[p.Thread] = pr
		}
		if best < 0 || pr > bestPrio {
			best = i
			bestPrio = pr
		}
	}
	if k, isChange := s.changes[s.step]; isChange {
		s.prio[v.Enabled[best].Thread] = s.depth - k
	}
	return best
}

// Executed implements exec.Scheduler.
func (s *PCT) Executed(exec.Event) {}

// End implements exec.Scheduler: adapt the length estimate.
func (s *PCT) End(t *exec.Trace) {
	if n := len(t.Decisions); n > s.estLen {
		s.estLen = n
	}
}
