package sched

import (
	"math/rand"

	"rff/internal/exec"
)

// eventKey identifies one pending event instance within an execution: a
// thread's k-th operation. Scores are attached to instances, not abstract
// events, per the POS algorithm.
type eventKey struct {
	thread exec.ThreadID
	seq    int
}

// POS implements Partial Order Sampling (Yuan, Yang, Gu — CAV 2018): every
// pending event receives a uniform random score when first observed; the
// enabled event with the highest score executes next; after a step, the
// scores of events racing with the executed one are re-drawn. POS both is
// an evaluation baseline (RQ2's ablation) and the randomization layer RFF
// degrades to when no abstract-schedule constraint applies.
type POS struct {
	rng    *rand.Rand
	scores map[eventKey]float64
}

// NewPOS returns a POS scheduler.
func NewPOS() *POS { return &POS{} }

// Name implements exec.Scheduler.
func (s *POS) Name() string { return "POS" }

// Begin implements exec.Scheduler.
func (s *POS) Begin(seed int64) {
	s.rng = rand.New(rand.NewSource(seed))
	s.scores = make(map[eventKey]float64)
}

// Pick implements exec.Scheduler: argmax of per-event random scores, with
// score resets for events racing with the chosen one.
func (s *POS) Pick(v *exec.View) int {
	best := s.ArgMax(v.Enabled, nil)
	chosen := v.Enabled[best]
	// Reset scores of racing events (the chosen event's own score dies
	// with its key: the thread's next pending has a larger seq).
	for _, p := range v.Enabled {
		if exec.Races(p, chosen) {
			delete(s.scores, eventKey{p.Thread, p.Seq})
		}
	}
	delete(s.scores, eventKey{chosen.Thread, chosen.Seq})
	return best
}

// ArgMax returns the index of the highest-scored pending among candidates,
// assigning fresh random scores to first-seen events. If restrict is
// non-nil, only indices i with restrict[i] true compete (used by RFF to run
// POS within a priority class); restrict must contain at least one true.
func (s *POS) ArgMax(candidates []exec.Pending, restrict []bool) int {
	best := -1
	var bestScore float64
	for i, p := range candidates {
		k := eventKey{p.Thread, p.Seq}
		sc, ok := s.scores[k]
		if !ok {
			sc = s.rng.Float64()
			s.scores[k] = sc
		}
		if restrict != nil && !restrict[i] {
			continue
		}
		if best < 0 || sc > bestScore {
			best = i
			bestScore = sc
		}
	}
	return best
}

// ResetRacing re-draws the scores of candidates racing with chosen; exposed
// for RFF, which performs its own Pick but must preserve POS's reset rule.
func (s *POS) ResetRacing(candidates []exec.Pending, chosen exec.Pending) {
	for _, p := range candidates {
		if exec.Races(p, chosen) {
			delete(s.scores, eventKey{p.Thread, p.Seq})
		}
	}
	delete(s.scores, eventKey{chosen.Thread, chosen.Seq})
}

// Executed implements exec.Scheduler.
func (s *POS) Executed(exec.Event) {}

// End implements exec.Scheduler.
func (s *POS) End(*exec.Trace) {}
