package schedeval

import (
	"fmt"
	"strings"

	"rff/internal/conformance"
)

// PolicyReport is one budget policy's aggregated distributions and its
// comparison against the uniform baseline.
type PolicyReport struct {
	Policy string `json:"policy"`
	// Pool and Spent sum the per-seed campaign entitlements and actual
	// executions.
	Pool  int64 `json:"pool"`
	Spent int64 `json:"spent"`
	// Reallocations counts epoch shares that differed from the cell's
	// previous share, summed across campaigns.
	Reallocations int `json:"reallocations"`
	// Bugs counts (seed, cell) pairs that found a bug.
	Bugs int `json:"bugs"`
	// TTFB summarizes the global first-bug execution indexes — the
	// schema shared with the conformance report.
	TTFB conformance.TTFB `json:"ttfb"`
	// CoverageMean is the mean final ground-truth coverage per cell, in
	// percent. Coverage[i] is the mean coverage at Report.Checkpoints[i]
	// global executions.
	CoverageMean float64   `json:"coverage_mean_pct"`
	Coverage     []float64 `json:"coverage_pct"`
	// CoverageP and TTFBP are two-sided Mann-Whitney p-values against
	// the uniform baseline's per-cell samples (1 for the baseline
	// itself, and for TTFB when either side found no bugs).
	CoverageP float64 `json:"coverage_p"`
	TTFBP     float64 `json:"ttfb_p"`
	// WorseThanUniform is the verdict bit: uniform's final coverage is
	// significantly better than this policy's at the run's alpha.
	WorseThanUniform bool `json:"worse_than_uniform,omitempty"`
}

// Report is the outcome of one sched-eval run.
type Report struct {
	Seeds    []int64  `json:"seeds"`
	Programs int      `json:"programs"`
	Specs    []string `json:"specs"`
	Budget   int      `json:"budget"`
	Epochs   int      `json:"epochs"`
	Trials   int      `json:"trials"`
	Grammar  string   `json:"grammar"`
	Alpha    float64  `json:"alpha"`
	// Checked counts (seed, program) pairs evaluated; Skipped the
	// candidates whose ground truth did not enumerate.
	Checked int `json:"checked"`
	Skipped int `json:"skipped"`
	// Checkpoints are the global execution counts the coverage curves
	// sample (powers of two up to the campaign pool).
	Checkpoints []int `json:"checkpoints"`
	// Policies holds one entry per policy, uniform first.
	Policies []PolicyReport `json:"policies"`
	// Verdict is "pass" or a FAIL: line naming the losing policy.
	Verdict string `json:"verdict"`
	// Err records an aborted run.
	Err string `json:"error,omitempty"`
}

// OK reports whether the run completed and every assertion held.
func (r *Report) OK() bool { return r.Err == "" && r.Verdict == "pass" }

// Summary renders the deterministic human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sched-eval: seeds %v, %d programs/seed (%d checked, %d skipped), grammar %s\n",
		r.Seeds, r.Programs, r.Checked, r.Skipped, r.Grammar)
	fmt.Fprintf(&b, "matrix: %s; budget %d x %d epochs, %d trials, alpha %.2f\n",
		strings.Join(r.Specs, ","), r.Budget, r.Epochs, r.Trials, r.Alpha)
	fmt.Fprintf(&b, "%-12s %10s %10s %7s %5s %9s %7s %8s %8s\n",
		"policy", "pool", "spent", "realloc", "bugs", "ttfb-med", "cov%", "cov-p", "ttfb-p")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "%-12s %10d %10d %7d %5d %9s %7.1f %8.4f %8.4f\n",
			p.Policy, p.Pool, p.Spent, p.Reallocations, p.Bugs,
			p.TTFB.String(), p.CoverageMean, p.CoverageP, p.TTFBP)
	}
	fmt.Fprintf(&b, "verdict: %s\n", r.Verdict)
	if r.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", r.Err)
	}
	return b.String()
}

// CoverageCurves renders the per-policy coverage-vs-executions series.
func (r *Report) CoverageCurves() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "executions")
	for _, cp := range r.Checkpoints {
		fmt.Fprintf(&b, " %8d", cp)
	}
	b.WriteByte('\n')
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "%-12s", p.Policy)
		for _, c := range p.Coverage {
			fmt.Fprintf(&b, " %8.1f", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
