package schedeval

import (
	"encoding/json"
	"reflect"
	"testing"

	"rff/internal/conformance"
)

// smallOpts is a PR-sized sched-eval: a few programs, two specs, the
// uniform baseline against one adaptive policy.
func smallOpts(seed int64) Options {
	return Options{
		Programs: 3,
		Seeds:    []int64{seed},
		Specs:    []string{"rff", "pos"},
		Policies: []string{"uniform", "ucb"},
		Budget:   150,
		Epochs:   4,
	}
}

// TestSmallRun: the harness completes, scores coverage against ground
// truth, and produces the uniform-first policy table.
func TestSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sched-eval runs full campaigns")
	}
	rep := Run(smallOpts(1))
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	if rep.Checked != 3 {
		t.Fatalf("checked %d programs, want 3", rep.Checked)
	}
	if len(rep.Policies) != 2 || rep.Policies[0].Policy != "uniform" || rep.Policies[1].Policy != "ucb" {
		t.Fatalf("policy table wrong: %+v", rep.Policies)
	}
	if len(rep.Checkpoints) == 0 {
		t.Fatal("no coverage checkpoints")
	}
	for _, p := range rep.Policies {
		if p.Spent == 0 || p.Pool == 0 {
			t.Fatalf("policy %s: no executions accounted", p.Policy)
		}
		if p.Spent > p.Pool {
			t.Fatalf("policy %s: spent %d > pool %d", p.Policy, p.Spent, p.Pool)
		}
		if p.CoverageMean <= 0 || p.CoverageMean > 100 {
			t.Fatalf("policy %s: implausible mean coverage %.1f%%", p.Policy, p.CoverageMean)
		}
		if len(p.Coverage) != len(rep.Checkpoints) {
			t.Fatalf("policy %s: curve length %d, checkpoints %d", p.Policy, len(p.Coverage), len(rep.Checkpoints))
		}
		for j := 1; j < len(p.Coverage); j++ {
			if p.Coverage[j] < p.Coverage[j-1] {
				t.Fatalf("policy %s: coverage curve not monotone: %v", p.Policy, p.Coverage)
			}
		}
	}
	if rep.Policies[0].CoverageP != 1 {
		t.Fatalf("baseline p-value %v, want 1", rep.Policies[0].CoverageP)
	}
	if p := rep.Policies[1].CoverageP; p <= 0 || p > 1 {
		t.Fatalf("ucb coverage p-value %v out of range", p)
	}
	if rep.Summary() == "" || rep.CoverageCurves() == "" {
		t.Fatal("empty rendered report")
	}
}

// TestDeterministic: identical options give byte-identical reports and
// the worker count changes nothing — the property the CI smoke job
// asserts with cmp(1).
func TestDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sched-eval runs full campaigns")
	}
	opts := smallOpts(2)
	opts.Programs = 2
	a := Run(opts)
	b := Run(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs diverged:\n%s\nvs\n%s", mustJSON(a), mustJSON(b))
	}
	opts.Workers = 4
	c := Run(opts)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("worker count changed the report:\n%s\nvs\n%s", mustJSON(a), mustJSON(c))
	}
	if a.Summary() != b.Summary() || a.CoverageCurves() != b.CoverageCurves() {
		t.Fatal("rendered reports diverged between identical runs")
	}
}

// TestUniformNotWorseThanItself: comparing uniform against a second
// adaptive policy must never flag the baseline, and a clean run passes
// its own verdict.
func TestVerdictPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("sched-eval runs full campaigns")
	}
	rep := Run(smallOpts(3))
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	if rep.Policies[0].WorseThanUniform {
		t.Fatal("baseline flagged as worse than itself")
	}
	if !rep.OK() && rep.Policies[1].CoverageP >= rep.Alpha {
		t.Fatalf("verdict failed without significance: %s", rep.Verdict)
	}
}

// TestDefaults: fill() produces the documented defaults and forces the
// uniform baseline to the front.
func TestDefaults(t *testing.T) {
	o := Options{Policies: []string{"ucb", "uniform", "fox"}}
	o.fill()
	if o.Programs != 12 || o.Budget != 300 || o.Alpha != 0.05 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if !reflect.DeepEqual(o.Policies, []string{"uniform", "ucb", "fox"}) {
		t.Fatalf("uniform not fronted: %v", o.Policies)
	}
	var d Options
	d.fill()
	if d.Policies[0] != "uniform" || len(d.Policies) < 2 {
		t.Fatalf("default policy set wrong: %v", d.Policies)
	}
}

// TestUnknownPolicyPanics: fill() rejects unknown policies loudly.
func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	o := Options{Policies: []string{"uniform", "bogus"}}
	o.fill()
}

func mustJSON(v any) string {
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestVerdictTTFB pins the -assert-ttfb semantics on synthetic
// reports: a tie passes (epoch 1 is allocated identically by every
// policy, so shallow workloads tie at the floor), strictly worse
// fails, strictly better passes, and a side without bugs fails.
func TestVerdictTTFB(t *testing.T) {
	mk := func(medians ...float64) *Report {
		rep := &Report{}
		for i, m := range medians {
			pr := PolicyReport{Policy: "uniform"}
			if i > 0 {
				pr.Policy = "ucb"
			}
			if m > 0 {
				pr.TTFB = conformance.TTFB{Samples: 1, Mean: m, Median: m}
			}
			rep.Policies = append(rep.Policies, pr)
		}
		return rep
	}
	opts := Options{AssertTTFB: true}
	cases := []struct {
		rep  *Report
		pass bool
	}{
		{mk(1.0, 1.0), true},  // tie at the floor
		{mk(5.0, 3.0), true},  // adaptive strictly better
		{mk(3.0, 5.0), false}, // adaptive strictly worse
		{mk(3.0, 0), false},   // adaptive found no bugs
		{mk(0, 3.0), false},   // uniform found no bugs
	}
	for i, c := range cases {
		got := verdict(c.rep, opts)
		if (got == "pass") != c.pass {
			t.Errorf("case %d: verdict %q, want pass=%v", i, got, c.pass)
		}
	}
}
