// Package schedeval is the statistical harness that decides whether
// adaptive budget scheduling (internal/budget) actually pays off: it
// runs a seeded progen workload — N programs x every strategy spec x S
// seeds — once under the uniform baseline policy and once under each
// adaptive policy, records the time-to-first-bug and the ground-truth
// coverage-at-checkpoint distributions, and compares each adaptive
// policy against uniform with the Mann-Whitney U test.
//
// The verdict the harness asserts is deliberately one-sided: an
// adaptive policy must never be SIGNIFICANTLY WORSE than uniform on
// final coverage (p < alpha with uniform's median higher fails the
// run). Optionally (AssertTTFB) it additionally demands that the best
// adaptive policy's median time-to-first-bug not be worse than
// uniform's. The TTFB assert is beat-or-tie rather than strictly-beat
// on purpose: epoch 1 is allocated identically by every policy (no
// reward has arrived yet), so on workloads whose bugs surface inside
// the first epoch's share the medians tie at the floor by
// construction — a tie is the no-regression outcome, not a win for
// uniform.
//
// Everything is a pure function of (seeds, options): the workload,
// every campaign, the sample vectors, the p-values, and both rendered
// reports are bit-identical across reruns and worker counts.
package schedeval

import (
	"context"
	"fmt"
	"sort"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/campaign"
	"rff/internal/conformance"
	"rff/internal/progen"
	"rff/internal/stats"
	"rff/internal/strategy"
	"rff/internal/telemetry"
)

// Options configures a sched-eval run. The zero value of every field
// selects the default noted on it.
type Options struct {
	// Programs is the number of checked programs per seed (default 12).
	// Candidates whose ground truth does not enumerate (or enumerates
	// zero rf-pairs) are skipped deterministically, exactly like the
	// conformance harness.
	Programs int
	// Seeds are the workload seeds; each seed generates its own program
	// set and campaign seed stream (default [1]).
	Seeds []int64
	// Specs are the strategy specs in the matrix (default
	// strategy.Names()).
	Specs []string
	// Policies are the budget policies to compare (default: "uniform"
	// plus every registered adaptive policy). "uniform" is the baseline
	// and is prepended when missing.
	Policies []string
	// Trials per (spec, program) cell for randomized strategies
	// (default 1).
	Trials int
	// Budget is the per-cell execution entitlement; the matrix pool is
	// Budget x cells, reallocated by the policy (default 300).
	Budget int
	// Epochs is the number of allocation epochs (default
	// budget.DefaultEpochs).
	Epochs int
	// GTBudget caps ground-truth enumeration per program (default 60000).
	GTBudget int
	// MaxSteps bounds every execution (default 4096).
	MaxSteps int
	// Workers bounds each campaign's fleet pool (default 1; results are
	// identical at any worker count).
	Workers int
	// MaxCandidates caps generator candidates per seed (default 6x
	// Programs).
	MaxCandidates int
	// Grammar names the progen grammar (default "core").
	Grammar string
	// Alpha is the significance level for the Mann-Whitney verdicts
	// (default 0.05).
	Alpha float64
	// AssertTTFB additionally fails the run when the best adaptive
	// policy's median time-to-first-bug is worse than uniform's (ties
	// pass: see the package comment).
	AssertTTFB bool
	// Telemetry, if non-nil, receives every campaign's metrics/events.
	Telemetry telemetry.Sink
	// Progress, if non-nil, is called after each completed (seed,
	// policy) campaign.
	Progress func(done, total int)
}

func (o *Options) fill() {
	if o.Programs <= 0 {
		o.Programs = 12
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if len(o.Specs) == 0 {
		o.Specs = strategy.Names()
	}
	if len(o.Policies) == 0 {
		o.Policies = append([]string{"uniform"}, budget.AdaptivePolicies()...)
	} else if o.Policies[0] != "uniform" {
		rest := make([]string, 0, len(o.Policies))
		for _, p := range o.Policies {
			if p != "uniform" {
				rest = append(rest, p)
			}
		}
		o.Policies = append([]string{"uniform"}, rest...)
	}
	for _, p := range o.Policies {
		if !budget.ValidPolicy(p) {
			panic(fmt.Sprintf("schedeval: unknown budget policy %q (registered: %v)", p, budget.Policies()))
		}
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Budget <= 0 {
		o.Budget = 300
	}
	if o.Epochs <= 0 {
		o.Epochs = budget.DefaultEpochs
	}
	if o.GTBudget <= 0 {
		o.GTBudget = 60000
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4096
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 6 * o.Programs
	}
	if o.Grammar == "" {
		o.Grammar = "core"
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.05
	}
}

// workload is one seed's checked program set with ground truth.
type workload struct {
	programs []bench.Program
	gt       map[string]map[string]struct{} // program name -> GT rf-pairs
	skipped  int
}

// buildWorkload generates one seed's program set, enumerating each
// candidate's ground truth and skipping — deterministically — the ones
// that do not enumerate completely or expose zero rf-pairs.
func buildWorkload(ctx context.Context, opts Options, seed int64) (*workload, error) {
	features, err := progen.ParseGrammar(opts.Grammar)
	if err != nil {
		return nil, fmt.Errorf("schedeval: %w", err)
	}
	gen := progen.NewGenerator(seed, progen.Options{Features: features})
	w := &workload{gt: make(map[string]map[string]struct{})}
	for len(w.programs) < opts.Programs {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("schedeval: workload aborted: %w", ctx.Err())
		}
		if len(w.programs)+w.skipped >= opts.MaxCandidates {
			return nil, fmt.Errorf("schedeval: seed %d gave up after %d candidates (%d checked, %d skipped)",
				seed, opts.MaxCandidates, len(w.programs), w.skipped)
		}
		bp := gen.Next().Bench()
		pairs, ok := conformance.EnumeratePairs(ctx, bp.Name, bp.Body, opts.GTBudget, opts.MaxSteps)
		if !ok || len(pairs) == 0 {
			w.skipped++
			continue
		}
		w.programs = append(w.programs, bp)
		w.gt[bp.Name] = pairs
	}
	return w, nil
}

// policySamples accumulates one policy's raw distributions across
// every (seed, cell).
type policySamples struct {
	cov      []float64 // final GT-coverage fraction per cell
	ttfb     []float64 // global first-bug index per bug-finding cell
	covSums  []float64 // per-checkpoint coverage-fraction sums
	covCells int       // cells folded into covSums
	pool     int64
	spent    int64
	realloc  int
	bugs     int
}

// Run executes a sched-eval run to completion.
func Run(opts Options) *Report { return RunContext(context.Background(), opts) }

// RunContext executes a sched-eval run under ctx. For fixed (seeds,
// options) an uninterrupted run's report is bit-identical across
// repetitions and worker counts.
func RunContext(ctx context.Context, opts Options) *Report {
	opts.fill()
	rep := &Report{
		Seeds:    opts.Seeds,
		Programs: opts.Programs,
		Specs:    opts.Specs,
		Budget:   opts.Budget,
		Epochs:   opts.Epochs,
		Trials:   opts.Trials,
		Grammar:  opts.Grammar,
		Alpha:    opts.Alpha,
	}

	samples := make([]*policySamples, len(opts.Policies))
	for i := range samples {
		samples[i] = &policySamples{}
	}

	total := len(opts.Seeds) * len(opts.Policies)
	done := 0
	for _, seed := range opts.Seeds {
		w, err := buildWorkload(ctx, opts, seed)
		if err != nil {
			rep.Err = err.Error()
			return rep
		}
		rep.Checked += len(w.programs)
		rep.Skipped += w.skipped

		for pi, policy := range opts.Policies {
			if ctx.Err() != nil {
				rep.Err = fmt.Sprintf("schedeval: aborted: %v", ctx.Err())
				return rep
			}
			m, err := strategy.RunMatrix(ctx, opts.Specs, w.programs, strategy.Config{
				Trials:    opts.Trials,
				Budget:    opts.Budget,
				MaxSteps:  opts.MaxSteps,
				BaseSeed:  seed,
				Workers:   opts.Workers,
				Telemetry: opts.Telemetry,
				Budgeter: &budget.Config{
					Policy:        policy,
					Epochs:        opts.Epochs,
					CollectCovers: true,
				},
			})
			if err != nil {
				rep.Err = fmt.Sprintf("schedeval: %v", err)
				return rep
			}
			br := m.BudgetReport
			if br == nil {
				rep.Err = "schedeval: campaign returned no budget report"
				return rep
			}
			if len(rep.Checkpoints) == 0 {
				rep.Checkpoints = conformance.Checkpoints(int(br.Pool))
			}
			foldCampaign(samples[pi], br, w, rep.Checkpoints)
			done++
			if opts.Progress != nil {
				opts.Progress(done, total)
			}
		}
	}

	rep.Policies = make([]PolicyReport, len(opts.Policies))
	base := samples[0]
	for i, policy := range opts.Policies {
		s := samples[i]
		pr := PolicyReport{
			Policy:        policy,
			Pool:          s.pool,
			Spent:         s.spent,
			Reallocations: s.realloc,
			Bugs:          s.bugs,
			TTFB:          conformance.NewTTFB(s.ttfb),
			CoverageMean:  stats.Mean(s.cov) * 100,
			CoverageP:     1,
			TTFBP:         1,
		}
		pr.Coverage = make([]float64, len(rep.Checkpoints))
		if s.covCells > 0 {
			for j, sum := range s.covSums {
				pr.Coverage[j] = sum / float64(s.covCells) * 100
			}
		}
		if i > 0 {
			_, pr.CoverageP = stats.MannWhitneyU(s.cov, base.cov)
			if len(s.ttfb) > 0 && len(base.ttfb) > 0 {
				_, pr.TTFBP = stats.MannWhitneyU(s.ttfb, base.ttfb)
			}
			if pr.CoverageP < opts.Alpha && stats.Median(base.cov) > stats.Median(s.cov) {
				pr.WorseThanUniform = true
			}
		}
		rep.Policies[i] = pr
	}

	rep.Verdict = verdict(rep, opts)
	return rep
}

// foldCampaign folds one campaign's budget report into a policy's
// sample vectors, scoring coverage against the workload's ground truth.
func foldCampaign(s *policySamples, br *campaign.BudgetReport, w *workload, cp []int) {
	s.pool += br.Pool
	s.spent += br.Spent
	s.realloc += br.Reallocations
	if len(s.covSums) == 0 {
		s.covSums = make([]float64, len(cp))
	}
	for _, cell := range br.Cells {
		gtPairs := w.gt[cell.Program]
		var coverTimes []int
		for _, c := range cell.Covers {
			if _, ok := gtPairs[c.Pair]; ok {
				coverTimes = append(coverTimes, int(c.At))
			}
		}
		sort.Ints(coverTimes)
		curve := conformance.CoverageAt(cp, coverTimes, len(gtPairs))
		for j, f := range curve {
			s.covSums[j] += f
		}
		s.covCells++
		final := 0.0
		if len(curve) > 0 {
			final = curve[len(curve)-1]
		}
		s.cov = append(s.cov, final)
		if cell.Bug && cell.FirstBug > 0 {
			s.bugs++
			s.ttfb = append(s.ttfb, float64(cell.FirstBug))
		}
	}
}

// verdict renders the pass/fail decision the CI jobs assert on.
func verdict(rep *Report, opts Options) string {
	for _, pr := range rep.Policies[1:] {
		if pr.WorseThanUniform {
			return fmt.Sprintf("FAIL: policy %s is significantly worse than uniform on final coverage (p=%.4f)",
				pr.Policy, pr.CoverageP)
		}
	}
	if opts.AssertTTFB && len(rep.Policies) > 1 {
		uni := rep.Policies[0].TTFB
		best := -1.0
		bestPolicy := ""
		for _, pr := range rep.Policies[1:] {
			if pr.TTFB.Samples > 0 && (best < 0 || pr.TTFB.Median < best) {
				best = pr.TTFB.Median
				bestPolicy = pr.Policy
			}
		}
		switch {
		case uni.Samples == 0 || best < 0:
			return "FAIL: ttfb assertion requested but a side found no bugs"
		case best > uni.Median:
			return fmt.Sprintf("FAIL: best adaptive ttfb median %.1f (%s) is worse than uniform's %.1f",
				best, bestPolicy, uni.Median)
		}
	}
	return "pass"
}
