// Package race implements a happens-before data-race detector over
// recorded traces — the ThreadSanitizer-style dynamic analysis the paper's
// related work positions alongside controlled concurrency testing. It
// complements RFF's crash oracle: an execution that does not crash can
// still witness a pair of conflicting, causally unordered plain accesses,
// and reporting those pairs surfaces the racy pattern even on benign
// interleavings.
//
// Happens-before is computed with vector clocks over the engine's full
// synchronization vocabulary: program order, spawn/join, mutex and rwlock
// release→acquire, condition signal→wakeup, semaphore post→wait, barrier
// generations, channel send→receive and close→receive, WaitGroup
// Done→Wait, and atomic RMWs (which synchronize like C11 seq_cst
// operations and never race with each other).
package race

import (
	"fmt"
	"sort"

	"rff/internal/exec"
)

// VC is a vector clock mapping thread IDs to logical times.
type VC map[exec.ThreadID]int

// clone copies the clock.
func (v VC) clone() VC {
	out := make(VC, len(v))
	for t, c := range v {
		out[t] = c
	}
	return out
}

// join merges another clock into v (pointwise max).
func (v VC) join(o VC) {
	for t, c := range o {
		if c > v[t] {
			v[t] = c
		}
	}
}

// leq reports whether v happens-before-or-equals o (pointwise ≤).
func (v VC) leq(o VC) bool {
	for t, c := range v {
		if c > o[t] {
			return false
		}
	}
	return true
}

// Race is one detected data race: two conflicting accesses to the same
// variable, at least one of them a plain (non-atomic) write or read
// paired with a write, unordered by happens-before. A is the earlier
// event in the trace.
type Race struct {
	Var  string
	A, B exec.Event
}

// String renders the race for reports.
func (r Race) String() string {
	return fmt.Sprintf("race on %s: %s || %s", r.Var, r.A, r.B)
}

// AbstractKey identifies the race by its unordered abstract access pair,
// for deduplication across executions.
func (r Race) AbstractKey() string {
	a, b := r.A.Abstract().String(), r.B.Abstract().String()
	if b < a {
		a, b = b, a
	}
	return a + " || " + b
}

// access is one recorded memory access with its clock.
type access struct {
	ev     exec.Event
	vc     VC
	atomic bool
}

// detector carries the per-trace analysis state.
type detector struct {
	threads map[exec.ThreadID]VC
	// objAccum accumulates release clocks per sync object, so an
	// exclusive acquirer that reads-from the last of several reader
	// releases still happens-after all of them.
	objAccum map[exec.VarID]VC
	// releaseVC maps release-event IDs to their (accumulated) clocks;
	// acquires join the clock of the exact event their reads-from edge
	// names.
	releaseVC map[int]VC
	condVC    map[exec.VarID]VC // signal clocks of condition variables
	atomicVC  map[exec.VarID]VC // release chains through atomic vars
	lastWait  map[exec.ThreadID]exec.VarID

	reads  map[exec.VarID][]access
	writes map[exec.VarID][]access
	races  []Race
}

func newDetector() *detector {
	return &detector{
		threads:   make(map[exec.ThreadID]VC),
		objAccum:  make(map[exec.VarID]VC),
		releaseVC: make(map[int]VC),
		condVC:    make(map[exec.VarID]VC),
		atomicVC:  make(map[exec.VarID]VC),
		lastWait:  make(map[exec.ThreadID]exec.VarID),
		reads:     make(map[exec.VarID][]access),
		writes:    make(map[exec.VarID][]access),
	}
}

// acquireFrom joins the release clock of the event the acquire reads-from
// (a no-op when the source was not a release, e.g. a reader acquiring
// after another reader).
func (d *detector) acquireFrom(th exec.ThreadID, rf int) {
	if rel, ok := d.releaseVC[rf]; ok {
		d.clock(th).join(rel)
	}
}

// releaseObj publishes the thread's clock on the object (accumulating)
// and records it under the event ID.
func (d *detector) releaseObj(th exec.ThreadID, id exec.VarID, eventID int) {
	if d.objAccum[id] == nil {
		d.objAccum[id] = VC{}
	}
	d.objAccum[id].join(d.clock(th))
	d.releaseVC[eventID] = d.objAccum[id].clone()
}

func (d *detector) clock(th exec.ThreadID) VC {
	vc, ok := d.threads[th]
	if !ok {
		vc = VC{th: 0}
		d.threads[th] = vc
	}
	return vc
}

func (d *detector) tick(th exec.ThreadID) { d.clock(th)[th]++ }

func (d *detector) acquire(th exec.ThreadID, m map[exec.VarID]VC, id exec.VarID) {
	if rel, ok := m[id]; ok {
		d.clock(th).join(rel)
	}
}

func (d *detector) release(th exec.ThreadID, m map[exec.VarID]VC, id exec.VarID) {
	m[id] = d.clock(th).clone()
}

// checkAccess compares the access against conflicting history and records
// it.
func (d *detector) checkAccess(e exec.Event, isWrite, atomic bool) {
	vc := d.clock(e.Thread).clone()
	cur := access{ev: e, vc: vc, atomic: atomic}
	report := func(prev access) {
		if prev.ev.Thread == e.Thread {
			return
		}
		if prev.atomic && atomic {
			return // atomic-atomic pairs synchronize, they don't race
		}
		if !prev.vc.leq(vc) {
			d.races = append(d.races, Race{Var: e.VarStr, A: prev.ev, B: e})
		}
	}
	if isWrite {
		for _, prev := range d.reads[e.Var] {
			report(prev)
		}
	}
	for _, prev := range d.writes[e.Var] {
		report(prev)
	}
	if isWrite {
		d.writes[e.Var] = append(d.writes[e.Var], cur)
	} else {
		d.reads[e.Var] = append(d.reads[e.Var], cur)
	}
}

// barrierGen describes one barrier generation; all its events share the
// instance, and the generation clock is computed once at the first event
// (when every member is parked and their clocks are final).
type barrierGen struct {
	members []exec.ThreadID
	clock   VC
}

// scanBarrierGenerations groups barrier events into generations of
// `parties` consecutive arrivals per barrier (parties is the barrier's
// init value, recorded in its OpVarInit event).
func scanBarrierGenerations(t *exec.Trace) map[int]*barrierGen {
	parties := make(map[exec.VarID]int)
	type genState struct {
		ids []int
		gen *barrierGen
	}
	open := make(map[exec.VarID]*genState)
	out := make(map[int]*barrierGen)
	for _, e := range t.Events {
		switch e.Op {
		case exec.OpVarInit:
			// Only consulted for vars that turn out to be barriers.
			parties[e.Var] = int(e.Val)
		case exec.OpBarrier:
			g := open[e.Var]
			if g == nil {
				g = &genState{gen: &barrierGen{}}
				open[e.Var] = g
			}
			g.ids = append(g.ids, e.ID)
			g.gen.members = append(g.gen.members, e.Thread)
			out[e.ID] = g.gen
			if p := parties[e.Var]; p > 0 && len(g.ids) == p {
				delete(open, e.Var) // generation complete
			}
		}
	}
	return out
}

// Detect runs happens-before race detection over the trace and returns
// all conflicting unordered plain-access pairs, ordered by trace position.
func Detect(t *exec.Trace) []Race {
	d := newDetector()
	generations := scanBarrierGenerations(t)
	for _, e := range t.Events {
		th := e.Thread
		switch e.Op {
		case exec.OpSpawn:
			d.tick(th)
			d.clock(e.Target).join(d.clock(th))
		case exec.OpJoin:
			// The engine enables joins only after the target exits, so
			// the target's current clock is its final clock.
			if vc, ok := d.threads[e.Target]; ok {
				d.clock(th).join(vc)
			}
			d.tick(th)
		case exec.OpLock, exec.OpWLock:
			d.acquireFrom(th, e.RF)
			d.tick(th)
		case exec.OpRLock:
			// A later reader's acquisition reads-from this one (readers
			// don't release the word for each other), so republish the
			// at-acquisition clock — it carries the last writer's
			// release forward without ordering the readers' critical
			// sections against each other.
			d.acquireFrom(th, e.RF)
			d.releaseVC[e.ID] = d.clock(th).clone()
			d.tick(th)
		case exec.OpLockRe:
			// Wakeup: join both the mutex release this acquisition
			// reads-from and the signal clock of the condition this
			// thread was waiting on.
			d.acquireFrom(th, e.RF)
			if cond, ok := d.lastWait[th]; ok {
				d.acquire(th, d.condVC, cond)
			}
			d.tick(th)
		case exec.OpTryLock:
			if e.Val == 1 {
				d.acquireFrom(th, e.RF)
			}
			d.tick(th)
		case exec.OpUnlock, exec.OpWUnlock, exec.OpRUnlock:
			d.tick(th)
			d.releaseObj(th, e.Var, e.ID)
		case exec.OpWait:
			// Releases the bound mutex: the next acquirer of the mutex
			// reads-from this event, so publishing under the event ID is
			// exactly right; remember the cond for the wakeup join.
			d.lastWait[th] = e.Var
			d.tick(th)
			d.releaseObj(th, e.Var, e.ID)
		case exec.OpSignal, exec.OpBroadcast:
			d.tick(th)
			d.release(th, d.condVC, e.Var)
		case exec.OpSemPost:
			d.tick(th)
			d.releaseObj(th, e.Var, e.ID)
		case exec.OpSemWait:
			d.acquireFrom(th, e.RF)
			d.tick(th)
		case exec.OpBarrier:
			// All-to-all: at the first event of a generation every party
			// is already parked at the barrier, so their current clocks
			// are exactly their arrival clocks — join them all into the
			// generation clock, which each member's event then joins.
			if gen, ok := generations[e.ID]; ok {
				if gen.clock == nil {
					gen.clock = VC{}
					for _, member := range gen.members {
						gen.clock.join(d.clock(member))
					}
				}
				d.clock(th).join(gen.clock)
			}
			d.tick(th)
		case exec.OpSend, exec.OpClose, exec.OpWgAdd:
			// Release side of the channel/WaitGroup edges: the matching
			// receive (or WaitGroup wait) reads-from this event.
			d.tick(th)
			d.releaseObj(th, e.Var, e.ID)
		case exec.OpTrySend:
			d.tick(th)
			if e.Ok {
				d.releaseObj(th, e.Var, e.ID)
			}
		case exec.OpRecv, exec.OpTryRecv:
			// Acquire side: join the clock of the send (or close) this
			// receive reads-from. A would-block TryRecv has no edge.
			if e.RF != 0 {
				d.acquireFrom(th, e.RF)
			}
			d.tick(th)
		case exec.OpWgWait:
			// objAccum accumulation means the final Done's release clock
			// carries every earlier Done's clock, so one join orders the
			// waiter after all workers.
			d.acquireFrom(th, e.RF)
			d.tick(th)
		case exec.OpRead, exec.OpWrite:
			if e.Atomic {
				// Atomic RMW halves synchronize through the variable.
				d.acquire(th, d.atomicVC, e.Var)
				d.checkAccess(e, e.Op == exec.OpWrite, true)
				d.tick(th)
				d.release(th, d.atomicVC, e.Var)
			} else {
				d.checkAccess(e, e.Op == exec.OpWrite, false)
				d.tick(th)
			}
		default:
			d.tick(th)
		}
	}
	sort.Slice(d.races, func(i, j int) bool {
		if d.races[i].A.ID != d.races[j].A.ID {
			return d.races[i].A.ID < d.races[j].A.ID
		}
		return d.races[i].B.ID < d.races[j].B.ID
	})
	return d.races
}

// DistinctKeys deduplicates races by abstract access pair, sorted — the
// campaign-level race accounting unit.
func DistinctKeys(races []Race) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, r := range races {
		k := r.AbstractKey()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
