package race_test

import (
	"testing"

	"rff/internal/exec"
	"rff/internal/race"
	"rff/internal/sched"
)

// run executes the program under a fixed scheduler and returns its races.
func run(t *testing.T, prog exec.Program, s exec.Scheduler, seed int64) []race.Race {
	t.Helper()
	res := exec.Run("race-test", prog, exec.Config{Scheduler: s, Seed: seed})
	if res.Failure != nil && res.Failure.Kind != exec.FailAssert {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	return race.Detect(res.Trace)
}

// sweep runs many seeds and returns whether any/every execution raced.
func sweep(t *testing.T, prog exec.Program, n int) (any bool, all bool) {
	t.Helper()
	all = true
	for seed := int64(0); seed < int64(n); seed++ {
		races := run(t, prog, sched.NewRandom(), seed)
		if len(races) > 0 {
			any = true
		} else {
			all = false
		}
	}
	return
}

func TestUnlockedWritesRaceOnEveryInterleaving(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		a := t.Go("a", func(w *exec.Thread) { w.Write(x, 1) })
		b := t.Go("b", func(w *exec.Thread) { w.Write(x, 2) })
		t.JoinAll(a, b)
	}
	_, all := sweep(t, prog, 50)
	if !all {
		t.Fatal("unsynchronized write-write must race under every schedule")
	}
}

func TestLockedAccessesNeverRace(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		m := t.NewMutex("m")
		mk := func(w *exec.Thread) {
			w.Lock(m)
			w.Add(x, 1)
			w.Unlock(m)
		}
		a, b := t.Go("a", mk), t.Go("b", mk)
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("lock-protected accesses must never be reported")
	}
}

func TestSpawnJoinOrderAccesses(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		t.Write(x, 1) // before spawn: ordered with child
		c := t.Go("c", func(w *exec.Thread) { w.Write(x, 2) })
		t.Join(c)
		t.Write(x, 3) // after join: ordered with child
	}
	any, _ := sweep(t, prog, 50)
	if any {
		t.Fatal("spawn/join-ordered accesses must never race")
	}
}

func TestAtomicsDoNotRace(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		mk := func(w *exec.Thread) { w.AtomicAdd(x, 1) }
		a, b := t.Go("a", mk), t.Go("b", mk)
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("atomic-atomic access pairs must not be reported")
	}
}

func TestMixedAtomicPlainRaces(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		a := t.Go("a", func(w *exec.Thread) { w.AtomicAdd(x, 1) })
		b := t.Go("b", func(w *exec.Thread) { w.Write(x, 9) })
		t.JoinAll(a, b)
	}
	_, all := sweep(t, prog, 50)
	if !all {
		t.Fatal("plain write vs atomic RMW is a data race and must be reported")
	}
}

func TestReadReadNeverRaces(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 7)
		a := t.Go("a", func(w *exec.Thread) { w.Read(x) })
		b := t.Go("b", func(w *exec.Thread) { w.Read(x) })
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 50)
	if any {
		t.Fatal("read-read pairs are not races")
	}
}

func TestCondSignalCreatesEdge(t *testing.T) {
	// Producer writes data before signaling; consumer reads it after the
	// wakeup: no race, because signal→wakeup is an HB edge.
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		cv := t.NewCond("cv", m)
		data := t.NewVar("data", 0)
		ready := t.NewVar("ready", 0)
		consumer := t.Go("consumer", func(w *exec.Thread) {
			w.Lock(m)
			for w.Read(ready) == 0 {
				w.Wait(cv)
			}
			w.Unlock(m)
			w.Read(data) // safe: producer wrote before the signal
		})
		producer := t.Go("producer", func(w *exec.Thread) {
			w.Write(data, 42)
			w.Lock(m)
			w.Write(ready, 1)
			w.Signal(cv)
			w.Unlock(m)
		})
		t.JoinAll(consumer, producer)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("signal-ordered accesses must never race")
	}
}

func TestSemaphoreHandoffCreatesEdge(t *testing.T) {
	prog := func(t *exec.Thread) {
		s := t.NewSemaphore("s", 0)
		data := t.NewVar("data", 0)
		consumer := t.Go("consumer", func(w *exec.Thread) {
			w.SemWait(s)
			w.Read(data)
		})
		producer := t.Go("producer", func(w *exec.Thread) {
			w.Write(data, 1)
			w.SemPost(s)
		})
		t.JoinAll(consumer, producer)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("post→wait ordered accesses must never race")
	}
}

func TestBarrierSeparatesPhases(t *testing.T) {
	prog := func(t *exec.Thread) {
		bar := t.NewBarrier("bar", 2)
		x := t.NewVar("x", 0)
		a := t.Go("a", func(w *exec.Thread) {
			w.Write(x, 1)
			w.BarrierWait(bar)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.BarrierWait(bar)
			w.Read(x) // strictly after a's write
		})
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("barrier-separated accesses must never race")
	}
}

func TestRWLockReaderWriterEdges(t *testing.T) {
	// Readers between writer sections: all ordered through the rwlock.
	prog := func(t *exec.Thread) {
		rw := t.NewRWMutex("rw")
		x := t.NewVar("x", 0)
		wtr := t.Go("writer", func(w *exec.Thread) {
			w.WLock(rw)
			w.Write(x, 1)
			w.WUnlock(rw)
		})
		r1 := t.Go("r1", func(w *exec.Thread) {
			w.RLock(rw)
			w.Read(x)
			w.RUnlock(rw)
		})
		r2 := t.Go("r2", func(w *exec.Thread) {
			w.RLock(rw)
			w.Read(x)
			w.RUnlock(rw)
		})
		t.JoinAll(wtr, r1, r2)
	}
	any, _ := sweep(t, prog, 150)
	if any {
		t.Fatal("rwlock-protected accesses must never race")
	}
}

func TestRaceSurvivesBenignInterleaving(t *testing.T) {
	// The racy bluetooth pattern: even executions that do NOT crash
	// must still be reported racy (the detector's whole point).
	prog := func(t *exec.Thread) {
		flag := t.NewVar("flag", 0)
		stopped := t.NewVar("stopped", 0)
		a := t.Go("worker", func(w *exec.Thread) {
			if w.Read(flag) == 0 {
				w.Read(stopped)
			}
		})
		b := t.Go("stopper", func(w *exec.Thread) {
			w.Write(flag, 1)
			w.Write(stopped, 1)
		})
		t.JoinAll(a, b)
	}
	foundRace := false
	for seed := int64(0); seed < 50 && !foundRace; seed++ {
		races := run(t, prog, sched.NewRandom(), seed)
		for _, r := range races {
			if r.Var == "stopped" || r.Var == "flag" {
				foundRace = true
			}
		}
	}
	if !foundRace {
		t.Fatal("racy pattern never reported across 50 benign runs")
	}
}

func TestDistinctKeysDeduplicates(t *testing.T) {
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		mk := func(w *exec.Thread) {
			for i := 0; i < 3; i++ {
				w.Write(x, int64(i))
			}
		}
		a, b := t.Go("a", mk), t.Go("b", mk)
		t.JoinAll(a, b)
	}
	res := exec.Run("dedupe", prog, exec.Config{Scheduler: sched.NewRandom(), Seed: 4})
	races := race.Detect(res.Trace)
	if len(races) == 0 {
		t.Skip("interleaving happened to order all writes")
	}
	keys := race.DistinctKeys(races)
	// Both threads write at the same source line: one abstract pair.
	if len(keys) != 1 {
		t.Fatalf("want 1 distinct abstract race, got %v", keys)
	}
	if len(races) < len(keys) {
		t.Fatal("dedup grew the set")
	}
}

func TestChanSendRecvCreatesEdge(t *testing.T) {
	// Writer publishes x, sends; reader receives, reads x. The
	// send->recv edge orders the accesses under every schedule.
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		ch := t.NewChan("ch", 0)
		a := t.Go("a", func(w *exec.Thread) {
			w.Write(x, 1)
			w.Send(ch, 0)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.Recv(ch)
			w.Read(x)
		})
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("send->recv handoff must order the accesses")
	}
}

func TestChanCloseRecvCreatesEdge(t *testing.T) {
	// Publication via close: the drained receive reads-from the close,
	// so the pre-close write is ordered before the post-receive read.
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		ch := t.NewChan("ch", 0)
		a := t.Go("a", func(w *exec.Thread) {
			w.Write(x, 1)
			w.Close(ch)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.Recv(ch)
			w.Read(x)
		})
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("close->recv must order the accesses")
	}
}

func TestChanUnrelatedAccessesStillRace(t *testing.T) {
	// The channel handoff must not over-synchronize: accesses on a
	// variable unrelated to the handoff still race.
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		ch := t.NewChan("ch", 1)
		a := t.Go("a", func(w *exec.Thread) {
			w.Send(ch, 0)
			w.Write(x, 1)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.Write(x, 2)
			w.Recv(ch)
		})
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if !any {
		t.Fatal("writes not ordered by the handoff must still race on some schedule")
	}
}

func TestWaitGroupCreatesEdge(t *testing.T) {
	// Worker writes then Done; waiter Waits then reads. Done->Wait is a
	// release->acquire pair, and accumulation covers multiple workers.
	prog := func(t *exec.Thread) {
		x := t.NewVar("x", 0)
		y := t.NewVar("y", 0)
		wg := t.NewWaitGroup("wg")
		t.WgAdd(wg, 2)
		a := t.Go("a", func(w *exec.Thread) {
			w.Write(x, 1)
			w.WgDone(wg)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.Write(y, 1)
			w.WgDone(wg)
		})
		t.WgWait(wg)
		t.Read(x)
		t.Read(y)
		t.JoinAll(a, b)
	}
	any, _ := sweep(t, prog, 100)
	if any {
		t.Fatal("WaitGroup Done->Wait must order every worker's writes before the waiter's reads")
	}
}
