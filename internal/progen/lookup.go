package progen

import (
	"strconv"
	"strings"
)

// ParseName splits a generated program name ("gen/s42/0007") into its
// generator seed and stream index. ok is false for anything that is not
// a well-formed generated-program name.
func ParseName(name string) (seed int64, index int, ok bool) {
	rest, found := strings.CutPrefix(name, "gen/s")
	if !found {
		return 0, 0, false
	}
	seedStr, idxStr, found := strings.Cut(rest, "/")
	if !found || seedStr == "" || idxStr == "" {
		return 0, 0, false
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	index, err = strconv.Atoi(idxStr)
	if err != nil || index < 0 {
		return 0, 0, false
	}
	return seed, index, true
}

// FromName regenerates a program from its name alone by replaying the
// generator stream under default Options up to the named index. This is
// what lets an artifact mentioning "gen/s42/0007" be replayed months
// later with no corpus on disk: equal names imply equal programs, so
// the regenerated body is the one the artifact was recorded against.
//
// Only programs generated with default Options are reachable this way
// (the name does not encode the options); that covers every campaign
// surface that persists artifacts — the service and the conformance
// harness both generate with defaults.
func FromName(name string) (*Program, bool) {
	seed, index, ok := ParseName(name)
	if !ok {
		return nil, false
	}
	g := NewGenerator(seed, Options{})
	var p *Program
	for i := 0; i <= index; i++ {
		p = g.Next()
	}
	return p, true
}
