package progen

import (
	"strconv"
	"strings"
)

// ParseName splits a generated program name into its grammar features,
// generator seed, and stream index. Core-grammar names look like
// "gen/s42/0007"; feature grammars carry the grammar segment, as in
// "gen/chan/s42/0007". ok is false for anything that is not a
// well-formed generated-program name.
func ParseName(name string) (feats Features, seed int64, index int, ok bool) {
	rest, found := strings.CutPrefix(name, "gen/")
	if !found {
		return 0, 0, 0, false
	}
	if !strings.HasPrefix(rest, "s") || !hasSeedPrefix(rest) {
		grammar, tail, found := strings.Cut(rest, "/")
		if !found {
			return 0, 0, 0, false
		}
		f, err := ParseGrammar(grammar)
		if err != nil || f == 0 {
			return 0, 0, 0, false
		}
		feats, rest = f, tail
	}
	seedStr, idxStr, found := strings.Cut(strings.TrimPrefix(rest, "s"), "/")
	if !strings.HasPrefix(rest, "s") || !found || seedStr == "" || idxStr == "" {
		return 0, 0, 0, false
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return 0, 0, 0, false
	}
	index, err = strconv.Atoi(idxStr)
	if err != nil || index < 0 {
		return 0, 0, 0, false
	}
	return feats, seed, index, true
}

// hasSeedPrefix reports whether rest starts with a seed segment
// ("s<int>/..."), distinguishing "s42/0007" from a grammar named with a
// leading s (e.g. "sync/s1/0001").
func hasSeedPrefix(rest string) bool {
	seg, _, found := strings.Cut(rest, "/")
	if !found {
		return false
	}
	_, err := strconv.ParseInt(strings.TrimPrefix(seg, "s"), 10, 64)
	return strings.HasPrefix(seg, "s") && err == nil
}

// FromName regenerates a program from its name alone by replaying the
// generator stream — under default Options plus the features the name's
// grammar segment encodes — up to the named index. This is what lets an
// artifact mentioning "gen/chan/s42/0007" be replayed months later with
// no corpus on disk: equal names imply equal programs, so the
// regenerated body is the one the artifact was recorded against.
//
// Only programs generated with default size Options are reachable this
// way (the name encodes the grammar but not the size bounds); that
// covers every campaign surface that persists artifacts — the service
// and the conformance harness both generate with default sizes.
func FromName(name string) (*Program, bool) {
	feats, seed, index, ok := ParseName(name)
	if !ok {
		return nil, false
	}
	g := NewGenerator(seed, Options{Features: feats})
	var p *Program
	for i := 0; i <= index; i++ {
		p = g.Next()
	}
	return p, true
}
