// Package progen is a seeded, deterministic generator of small concurrent
// programs over the internal/exec API: 2–4 worker threads performing
// shared-variable reads/writes, non-atomic and atomic read-modify-writes,
// mutex regions, yields, and assertions, drawn from a size-bounded
// grammar.
//
// The point of the generator is conformance testing (internal/
// conformance): programs are kept small enough that internal/systematic
// can enumerate their complete scheduling tree, turning the exhaustive
// enumeration into a ground-truth oracle for every randomized strategy.
// The per-thread scheduling-point budget therefore shrinks as the thread
// count grows — the decision tree's width is the product of the threads'
// op counts, and enumerability is the whole game.
//
// Determinism: the emitted program stream is a pure function of the
// generator seed and options. Generated programs are loop-free, so every
// schedule either terminates or deadlocks (balanced lock regions; the
// only blocking is lock acquisition and the final joins), and every
// failure is one of: assertion violation (racy register or final-state
// asserts) or deadlock (nested lock regions acquired in opposite
// orders).
package progen

import (
	"fmt"
	"math/rand"

	"rff/internal/bench"
	"rff/internal/exec"
)

// Options bounds the generated grammar. The zero value selects the
// defaults noted on each field.
type Options struct {
	// MinThreads and MaxThreads bound the worker thread count
	// (defaults 2 and 4).
	MinThreads, MaxThreads int
	// MaxVars bounds the shared-variable count (default 3, min 1).
	MaxVars int
	// MaxMutexes bounds the mutex count (default 2; 0 is a valid draw).
	MaxMutexes int
	// OpBudget overrides the per-thread scheduling-point budget
	// (0 = derived from the drawn thread count: 5 for 2 threads,
	// 3 for 3, 2 for 4).
	OpBudget int
	// MaxSteps bounds the validation execution (0 = 4096); generated
	// programs are two orders of magnitude shorter.
	MaxSteps int
	// Features enables optional grammar productions (channels,
	// WaitGroups, condition variables, reader/writer locks). The zero
	// value keeps the historical core grammar, whose draw stream — and
	// therefore every "gen/s<seed>/<idx>" program — is unchanged.
	Features Features
}

func (o *Options) fill() {
	if o.MinThreads <= 0 {
		o.MinThreads = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 4
	}
	if o.MaxThreads < o.MinThreads {
		o.MaxThreads = o.MinThreads
	}
	if o.MaxVars <= 0 {
		o.MaxVars = 3
	}
	if o.MaxMutexes < 0 {
		o.MaxMutexes = 0
	} else if o.MaxMutexes == 0 {
		o.MaxMutexes = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4096
	}
}

// opBudget is the per-thread scheduling-point budget by thread count:
// the decision-tree width grows roughly multinomially in these (the
// spawn sequence interleaves too), so more threads get fewer operations
// each. Empirically, these keep most trees under ~30k leaves.
func opBudget(threads int) int {
	switch threads {
	case 2:
		return 5
	case 3:
		return 2
	default:
		return 1
	}
}

// StmtKind enumerates the grammar's statement forms.
type StmtKind uint8

const (
	// StLoad reads a shared variable into a thread-local register.
	StLoad StmtKind = iota + 1
	// StStore writes a constant to a shared variable.
	StStore
	// StStoreReg writes register+delta to a shared variable.
	StStoreReg
	// StAddNA is a non-atomic read-modify-write (x += d as separate
	// read and write scheduling points — the classic lost-update race).
	StAddNA
	// StAtomicAdd is an atomic fetch-add.
	StAtomicAdd
	// StCAS is an atomic compare-and-swap.
	StCAS
	// StYield is a pure scheduling point.
	StYield
	// StAssert checks register Cmp Const; a passing assert is invisible
	// to the scheduler, a failing one raises FailAssert.
	StAssert
	// StLocked is lock(m); Body; unlock(m). Nested regions over
	// distinct mutexes are the grammar's deadlock source.
	StLocked

	// The remaining kinds are feature-gated (Options.Features); the core
	// grammar never draws them.

	// StSend is a blocking channel send of Const on channel Chan.
	StSend
	// StRecv is a blocking channel receive from Chan into register Reg.
	StRecv
	// StClose closes channel Chan (a second close crashes).
	StClose
	// StTrySend is a non-blocking send attempt of Const on Chan.
	StTrySend
	// StTryRecv is a non-blocking receive attempt from Chan into Reg.
	StTryRecv
	// StSelect is a two-case select: case 0 receives from Chan; case 1
	// sends Const on Chan2 when SelSend, else receives from Chan2. The
	// received value (if any) lands in Reg.
	StSelect
	// StWgDone decrements the program's WaitGroup; appended to the
	// designated doner workers' bodies, never drawn inside stmts.
	StWgDone
	// StCondWait waits on condition Cond; generated only inside a locked
	// region of the condition's bound mutex.
	StCondWait
	// StSignal signals condition Cond.
	StSignal
	// StBroadcast broadcasts condition Cond.
	StBroadcast
	// StRLocked is rlock(rw); Body; runlock(rw).
	StRLocked
	// StWLocked is wlock(rw); Body; wunlock(rw).
	StWLocked
)

// Cmp is an assertion comparison operator.
type Cmp uint8

// The comparison operators assertions draw from.
const (
	CmpEq Cmp = iota + 1
	CmpNe
	CmpLe
	CmpGe
)

// String renders the operator.
func (c Cmp) String() string {
	switch c {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLe:
		return "<="
	case CmpGe:
		return ">="
	}
	return "?"
}

// eval applies the comparison.
func (c Cmp) eval(v, k int64) bool {
	switch c {
	case CmpEq:
		return v == k
	case CmpNe:
		return v != k
	case CmpLe:
		return v <= k
	case CmpGe:
		return v >= k
	}
	return false
}

// Stmt is one statement of a generated worker body. Which fields are
// meaningful depends on Kind.
type Stmt struct {
	Kind  StmtKind
	Var   int   // shared variable index (loads/stores/RMWs)
	Mutex int   // mutex index (StLocked)
	Reg   int   // register index (StLoad, StStoreReg, StAssert, receives)
	Delta int64 // StStoreReg, StAddNA, StAtomicAdd
	Old   int64 // StCAS expected value
	New   int64 // StCAS replacement value
	Const int64 // StStore value, StAssert comparand, sent value
	Cmp   Cmp   // StAssert operator
	Body  []Stmt

	// Feature-grammar operands.
	Chan    int  // channel index (sends/receives/close; select case 0)
	Chan2   int  // select case 1's channel
	SelSend bool // select case 1 is a send
	Cond    int  // condition index (StCondWait/StSignal/StBroadcast)
	RW      int  // reader/writer lock index (StRLocked/StWLocked)
	// Loc is the statement's synthetic source location ("w2.3"):
	// distinct per statement, so each one is its own abstract event.
	Loc string
}

// FinalAssert is a sequential assertion main runs on a variable's final
// value after joining every worker.
type FinalAssert struct {
	Var   int
	Cmp   Cmp
	Const int64
}

// Program is one generated program: the AST plus the interpreter over it
// (Body). Vars are named x0..x{NVars-1}, mutexes m0..m{NMutexes-1},
// worker threads w1..wN.
type Program struct {
	// Name identifies the program ("gen/s42/0007"): generator seed plus
	// candidate index, so equal names imply equal programs.
	Name string
	// Seed and Index locate the program in its generator's stream.
	Seed  int64
	Index int

	// Features records the grammar the program was drawn from (encoded
	// in Name for non-core grammars).
	Features Features

	NVars    int
	NMutexes int
	// Inits holds each variable's initial value.
	Inits []int64
	// Threads holds each worker's statement list.
	Threads [][]Stmt
	// Finals are main's post-join assertions.
	Finals []FinalAssert

	// Feature-grammar structure (all zero for the core grammar).
	NChans    int
	ChanCaps  []int // per-channel buffer capacity (0 = rendezvous)
	NRWs      int
	NConds    int
	CondMutex []int // per-condition bound mutex index
	// UseWg wires a WaitGroup through the program: main adds WgAdds
	// before spawning, the WgDoners workers each append a Done, and main
	// waits before joining. A deliberate add/done mismatch makes the
	// wait deadlock (adds too high) or the last Done panic (too low).
	UseWg    bool
	WgAdds   int
	WgDoners []bool
}

// Bench wraps the program for the campaign.Tool interface.
func (p *Program) Bench() bench.Program {
	return bench.Program{
		Name:    p.Name,
		Suite:   "gen",
		Bug:     bench.BugNone,
		Threads: len(p.Threads),
		Desc:    fmt.Sprintf("generated: %d threads, %d vars, %d mutexes", len(p.Threads), p.NVars, p.NMutexes),
		Body:    p.Body(),
	}
}

// Generator emits a deterministic stream of validated programs.
type Generator struct {
	seed int64
	opts Options
	rng  *rand.Rand
	idx  int
}

// NewGenerator builds a generator. The stream it emits is a pure
// function of (seed, opts).
func NewGenerator(seed int64, opts Options) *Generator {
	opts.fill()
	return &Generator{seed: seed, opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// Next generates, validates, and returns the stream's next program. The
// validation run executes the program once under a fixed deterministic
// scheduler and checks the trace against the engine's invariants
// (exec.Validate); a violation is a generator/engine bug and panics.
func (g *Generator) Next() *Program {
	p := g.gen()
	res := exec.Run(p.Name, p.Body(), exec.Config{
		Scheduler: firstEnabled{},
		MaxSteps:  g.opts.MaxSteps,
	})
	if res.Truncated {
		panic(fmt.Sprintf("progen: %s exceeded %d steps — generator op budget broken", p.Name, g.opts.MaxSteps))
	}
	if err := res.Trace.Validate(); err != nil {
		panic(fmt.Sprintf("progen: %s produced an invalid trace: %v", p.Name, err))
	}
	return p
}

// firstEnabled is the validation scheduler: always picks the first
// enabled pending op, making the run a pure function of the program.
type firstEnabled struct{}

func (firstEnabled) Name() string        { return "first-enabled" }
func (firstEnabled) Begin(int64)         {}
func (firstEnabled) Pick(*exec.View) int { return 0 }
func (firstEnabled) Executed(exec.Event) {}
func (firstEnabled) End(*exec.Trace)     {}

// gen draws one candidate program from the grammar. Every feature draw
// is gated behind Options.Features != 0, keeping the core grammar's rng
// stream — and therefore its emitted programs — byte-identical to the
// pre-feature generator.
func (g *Generator) gen() *Program {
	r := g.rng
	p := &Program{
		Seed:     g.seed,
		Index:    g.idx,
		Features: g.opts.Features,
		Name:     fmt.Sprintf("gen/s%d/%04d", g.seed, g.idx),
	}
	if g.opts.Features != 0 {
		p.Name = fmt.Sprintf("gen/%s/s%d/%04d", GrammarName(g.opts.Features), g.seed, g.idx)
	}
	g.idx++

	threads := g.opts.MinThreads + r.Intn(g.opts.MaxThreads-g.opts.MinThreads+1)
	p.NVars = 1 + r.Intn(g.opts.MaxVars)
	p.NMutexes = r.Intn(g.opts.MaxMutexes + 1)
	p.Inits = make([]int64, p.NVars)
	for i := range p.Inits {
		p.Inits[i] = int64(r.Intn(3))
	}

	if f := g.opts.Features; f != 0 {
		if f&FeatChan != 0 {
			p.NChans = 1 + r.Intn(2)
			p.ChanCaps = make([]int, p.NChans)
			for i := range p.ChanCaps {
				p.ChanCaps[i] = r.Intn(3)
			}
		}
		if f&FeatCond != 0 {
			if p.NMutexes == 0 {
				p.NMutexes = 1 // conditions need a mutex to bind to
			}
			p.NConds = r.Intn(2)
			p.CondMutex = make([]int, p.NConds)
			for i := range p.CondMutex {
				p.CondMutex[i] = r.Intn(p.NMutexes)
			}
		}
		if f&FeatRWMutex != 0 {
			p.NRWs = r.Intn(2)
		}
		if f&FeatWaitGroup != 0 && r.Intn(3) > 0 {
			p.UseWg = true
			doners := 1 + r.Intn(threads)
			p.WgDoners = make([]bool, threads)
			for i := 0; i < doners; i++ {
				p.WgDoners[i] = true
			}
			p.WgAdds = doners
			switch r.Intn(8) {
			case 0:
				p.WgAdds++ // one Done short: main's wait deadlocks
			case 1:
				p.WgAdds-- // one Done extra: the last Done panics
			}
		}
	}

	budget := g.opts.OpBudget
	if budget <= 0 {
		budget = opBudget(threads)
	}
	p.Threads = make([][]Stmt, threads)
	for t := 0; t < threads; t++ {
		counter := 0
		b := budget
		if p.UseWg && p.WgDoners[t] {
			b-- // the appended Done costs one scheduling point
		}
		p.Threads[t] = g.stmts(p, b, 0, -1, -1, t+1, &counter)
		if p.UseWg && p.WgDoners[t] {
			p.Threads[t] = append(p.Threads[t], Stmt{Kind: StWgDone, Loc: fmt.Sprintf("w%d.done", t+1)})
		}
	}

	// Post-join assertions on final variable values, most of the time.
	if r.Intn(10) < 7 {
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			p.Finals = append(p.Finals, FinalAssert{
				Var:   r.Intn(p.NVars),
				Cmp:   g.cmp(),
				Const: int64(r.Intn(6) - 1),
			})
		}
	}
	return p
}

// cmp draws an assertion operator.
func (g *Generator) cmp() Cmp { return Cmp(1 + g.rng.Intn(4)) }

// stmts draws a statement list costing at most budget scheduling points.
// depth is the lock-nesting depth, held the mutex index held by the
// enclosing region and heldRW the rwlock index held (-1 = none); tid and
// counter feed the synthetic source locations.
func (g *Generator) stmts(p *Program, budget, depth, held, heldRW, tid int, counter *int) []Stmt {
	r := g.rng
	var out []Stmt
	asserts := 0
	for budget > 0 {
		s := Stmt{Loc: fmt.Sprintf("w%d.%d", tid, *counter)}
		*counter++
		// Weighted kind choice; zero-cost asserts are capped so the
		// loop always terminates. Core draws from [0,20); feature
		// grammars widen the range, with the added kinds in [20,30).
		kmax := 20
		if g.opts.Features != 0 {
			kmax = 30
		}
		k := r.Intn(kmax)
		switch {
		case k < 4: // load
			s.Kind, s.Var, s.Reg = StLoad, r.Intn(p.NVars), r.Intn(2)
			budget--
		case k < 7: // store const
			s.Kind, s.Var, s.Const = StStore, r.Intn(p.NVars), int64(r.Intn(5))
			budget--
		case k < 9: // store reg+delta
			s.Kind, s.Var, s.Reg, s.Delta = StStoreReg, r.Intn(p.NVars), r.Intn(2), int64(r.Intn(3))
			budget--
		case k < 12 && budget >= 2: // non-atomic increment (2 points)
			s.Kind, s.Var, s.Delta = StAddNA, r.Intn(p.NVars), int64(1+r.Intn(3))
			budget -= 2
		case k < 14: // atomic fetch-add
			s.Kind, s.Var, s.Delta = StAtomicAdd, r.Intn(p.NVars), int64(1+r.Intn(3))
			budget--
		case k < 15: // CAS
			s.Kind, s.Var = StCAS, r.Intn(p.NVars)
			s.Old, s.New = int64(r.Intn(4)), int64(r.Intn(5))
			budget--
		case k < 16: // yield
			s.Kind = StYield
			budget--
		case k < 17 && asserts < 2: // register assert (0 points when passing)
			s.Kind, s.Reg = StAssert, r.Intn(2)
			s.Cmp, s.Const = g.cmp(), int64(r.Intn(6)-1)
			asserts++
		case k < 20 && p.NMutexes > 0 && depth < 2 && budget >= 3: // lock region
			m := r.Intn(p.NMutexes)
			if m == held { // never re-acquire the held mutex
				m = (m + 1) % p.NMutexes
			}
			if m == held {
				continue // single mutex already held: no region possible
			}
			s.Kind, s.Mutex = StLocked, m
			inner := 1 + r.Intn(budget-2)
			s.Body = g.stmts(p, inner, depth+1, m, heldRW, tid, counter)
			budget -= 2 + inner
		case k < 22 && p.NChans > 0: // non-blocking send attempt
			s.Kind, s.Chan, s.Const = StTrySend, r.Intn(p.NChans), int64(1+r.Intn(4))
			budget--
		case k < 24 && p.NChans > 0: // non-blocking receive attempt
			s.Kind, s.Chan, s.Reg = StTryRecv, r.Intn(p.NChans), r.Intn(2)
			budget--
		case k < 25 && p.NChans > 0: // blocking send (may deadlock)
			s.Kind, s.Chan, s.Const = StSend, r.Intn(p.NChans), int64(1+r.Intn(4))
			budget--
		case k < 26 && p.NChans > 0: // blocking receive (may deadlock)
			s.Kind, s.Chan, s.Reg = StRecv, r.Intn(p.NChans), r.Intn(2)
			budget--
		case k < 27 && p.NChans > 0: // close (a racing second close crashes)
			s.Kind, s.Chan = StClose, r.Intn(p.NChans)
			budget--
		case k < 28 && p.NChans > 0: // two-case select
			s.Kind, s.Chan, s.Reg = StSelect, r.Intn(p.NChans), r.Intn(2)
			s.Chan2 = r.Intn(p.NChans)
			s.SelSend = r.Intn(2) == 0
			s.Const = int64(1 + r.Intn(4))
			budget--
		case k < 29 && p.NConds > 0: // condition ops
			s.Cond = r.Intn(p.NConds)
			if held >= 0 && held == p.CondMutex[s.Cond] && budget >= 2 {
				s.Kind = StCondWait // only while holding the bound mutex
				budget -= 2         // OpWait + the relock
			} else if r.Intn(2) == 0 {
				s.Kind = StSignal
				budget--
			} else {
				s.Kind = StBroadcast
				budget--
			}
		case p.NRWs > 0 && depth < 2 && budget >= 3: // rw region (k in [29,30))
			rw := r.Intn(p.NRWs)
			if rw == heldRW {
				continue // never nest on the held rwlock
			}
			if r.Intn(2) == 0 {
				s.Kind = StWLocked
			} else {
				s.Kind = StRLocked
			}
			s.RW = rw
			inner := 1 + r.Intn(budget-2)
			s.Body = g.stmts(p, inner, depth+1, held, rw, tid, counter)
			budget -= 2 + inner
		default:
			continue
		}
		out = append(out, s)
	}
	return out
}
