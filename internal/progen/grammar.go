package progen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Features is a bitmask selecting optional grammar productions beyond the
// core read/write/mutex vocabulary. The zero value is the core grammar,
// whose draw stream is byte-identical to what the generator emitted
// before features existed — names like "gen/s42/0007" stay stable.
type Features uint32

const (
	// FeatChan adds channel productions: send, receive, close,
	// try-send/try-recv, and two-case selects over the program's
	// channels. Reachable new failure kinds: send-on-closed,
	// close-of-closed, and channel deadlock.
	FeatChan Features = 1 << iota
	// FeatWaitGroup adds a WaitGroup joining a subset of the workers,
	// with occasional add/done mismatches (a counter deadlock or a
	// negative-counter panic).
	FeatWaitGroup
	// FeatCond adds condition-variable waits (inside the bound mutex's
	// region) and signal/broadcast statements.
	FeatCond
	// FeatRWMutex adds reader/writer lock regions.
	FeatRWMutex
)

// grammars maps the named grammars the CLI and conformance harness
// expose to their feature sets.
var grammars = map[string]Features{
	"core": 0,
	"chan": FeatChan | FeatWaitGroup,
	"sync": FeatCond | FeatRWMutex,
	"all":  FeatChan | FeatWaitGroup | FeatCond | FeatRWMutex,
}

// ParseGrammar resolves a grammar name ("core", "chan", "sync", "all" —
// or a raw "f<hex>" feature mask for unregistered combinations) to its
// feature set.
func ParseGrammar(name string) (Features, error) {
	if f, ok := grammars[name]; ok {
		return f, nil
	}
	if hex, found := strings.CutPrefix(name, "f"); found {
		if v, err := strconv.ParseUint(hex, 16, 32); err == nil {
			return Features(v), nil
		}
	}
	return 0, fmt.Errorf("unknown grammar %q (have %s)", name, strings.Join(Grammars(), ", "))
}

// GrammarName inverts ParseGrammar: the registered name when one exists,
// the "f<hex>" encoding otherwise. The result round-trips through
// ParseGrammar, which is what keeps generated-program names replayable.
func GrammarName(f Features) string {
	for name, feats := range grammars {
		if feats == f {
			return name
		}
	}
	return fmt.Sprintf("f%x", uint32(f))
}

// Grammars lists the registered grammar names, sorted.
func Grammars() []string {
	names := make([]string, 0, len(grammars))
	for name := range grammars {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
