package progen

import (
	"testing"

	"rff/internal/exec"
	"rff/internal/systematic"
)

// TestDeterministicStream: two generators with the same seed emit
// byte-identical program streams; a different seed diverges quickly.
func TestDeterministicStream(t *testing.T) {
	a := NewGenerator(42, Options{})
	b := NewGenerator(42, Options{})
	same := true
	for i := 0; i < 30; i++ {
		pa, pb := a.Next(), b.Next()
		if pa.Source() != pb.Source() {
			t.Fatalf("program %d diverged between identical seeds:\n%s\nvs\n%s", i, pa.Source(), pb.Source())
		}
		if pa.Name != pb.Name {
			t.Fatalf("program %d names diverged: %q vs %q", i, pa.Name, pb.Name)
		}
	}
	c := NewGenerator(43, Options{})
	a2 := NewGenerator(42, Options{})
	for i := 0; i < 10; i++ {
		if a2.Next().Source() != c.Next().Source() {
			same = false
		}
	}
	if same {
		t.Fatal("10 programs identical across different seeds — seed is ignored")
	}
}

// TestGeneratedProgramsValidate: every generated program yields traces
// satisfying the engine invariants under both a fixed and a randomized
// scheduler, and never comes near the step bound.
func TestGeneratedProgramsValidate(t *testing.T) {
	g := NewGenerator(7, Options{})
	for i := 0; i < 40; i++ {
		p := g.Next() // Next panics on an invalid trace already
		body := p.Body()
		for seed := int64(0); seed < 3; seed++ {
			res := exec.Run(p.Name, body, exec.Config{Scheduler: &randomWalk{}, Seed: seed, MaxSteps: 4096})
			if res.Truncated {
				t.Fatalf("%s truncated under random walk", p.Name)
			}
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("%s invalid trace under random walk: %v", p.Name, err)
			}
			if res.Failure != nil {
				switch res.Failure.Kind {
				case exec.FailAssert, exec.FailDeadlock:
				default:
					t.Fatalf("%s unexpected failure kind %v: %v", p.Name, res.Failure.Kind, res.Failure)
				}
			}
		}
	}
}

// TestGrammarBounds: thread counts, per-thread statement shapes, and
// final asserts stay inside the documented grammar bounds.
func TestGrammarBounds(t *testing.T) {
	g := NewGenerator(11, Options{})
	for i := 0; i < 60; i++ {
		p := g.Next()
		if n := len(p.Threads); n < 2 || n > 4 {
			t.Fatalf("%s has %d threads, want 2..4", p.Name, n)
		}
		if p.NVars < 1 || p.NVars > 3 {
			t.Fatalf("%s has %d vars, want 1..3", p.Name, p.NVars)
		}
		if p.NMutexes > 2 {
			t.Fatalf("%s has %d mutexes, want <=2", p.Name, p.NMutexes)
		}
		for ti, body := range p.Threads {
			if len(body) == 0 {
				t.Fatalf("%s thread %d is empty", p.Name, ti)
			}
		}
	}
}

// TestEnumerable: the decision trees of generated programs are small
// enough for systematic.Explore to finish — the property the
// conformance harness's ground-truth oracle depends on. A modest
// completion rate is tolerated (conformance skips incomplete programs
// deterministically), but most programs must enumerate.
func TestEnumerable(t *testing.T) {
	if testing.Short() {
		t.Skip("enumeration is slow under -short")
	}
	g := NewGenerator(3, Options{})
	const n = 25
	complete := 0
	for i := 0; i < n; i++ {
		p := g.Next()
		rep := systematic.Explore(p.Name, p.Body(), systematic.ExploreOptions{
			MaxExecutions: 60000,
			MaxSteps:      4096,
		})
		if rep.Complete {
			complete++
		}
	}
	if complete < n*2/3 {
		t.Fatalf("only %d/%d generated programs enumerable within 60k executions", complete, n)
	}
}

// randomWalk picks uniformly among enabled ops (thread-local rng; test
// only).
type randomWalk struct{ state uint64 }

func (r *randomWalk) Name() string     { return "random-walk" }
func (r *randomWalk) Begin(seed int64) { r.state = uint64(seed)*2862933555777941757 + 3037000493 }
func (r *randomWalk) Pick(v *exec.View) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(len(v.Enabled)))
}
func (r *randomWalk) Executed(exec.Event) {}
func (r *randomWalk) End(*exec.Trace)     {}
