package progen

import (
	"fmt"
	"strings"

	"rff/internal/exec"
)

// env bundles the shared objects a generated program's workers operate
// on.
type env struct {
	vars  []*exec.Var
	mus   []*exec.Mutex
	chans []*exec.Chan
	rws   []*exec.RWMutex
	conds []*exec.Cond
	wg    *exec.WaitGroup
}

// Body builds the exec.Program interpreting the AST. Every statement
// executes through the explicit-location thread API (ReadAt, WriteAt,
// LockAt, ...) with its own synthetic location, so each statement is a
// distinct abstract event op(x)@loc — exactly what the reads-from
// machinery keys on.
func (p *Program) Body() exec.Program {
	return func(t *exec.Thread) {
		e := &env{
			vars:  make([]*exec.Var, p.NVars),
			mus:   make([]*exec.Mutex, p.NMutexes),
			chans: make([]*exec.Chan, p.NChans),
			rws:   make([]*exec.RWMutex, p.NRWs),
			conds: make([]*exec.Cond, p.NConds),
		}
		for i := range e.vars {
			e.vars[i] = t.NewVar(fmt.Sprintf("x%d", i), p.Inits[i])
		}
		for i := range e.mus {
			e.mus[i] = t.NewMutex(fmt.Sprintf("m%d", i))
		}
		for i := range e.chans {
			e.chans[i] = t.NewChan(fmt.Sprintf("ch%d", i), p.ChanCaps[i])
		}
		for i := range e.rws {
			e.rws[i] = t.NewRWMutex(fmt.Sprintf("rw%d", i))
		}
		for i := range e.conds {
			e.conds[i] = t.NewCond(fmt.Sprintf("c%d", i), e.mus[p.CondMutex[i]])
		}
		if p.UseWg {
			e.wg = t.NewWaitGroup("wg")
			t.WgAddAt(e.wg, int64(p.WgAdds), "main.wgadd")
		}
		children := make([]*exec.Thread, len(p.Threads))
		for i, body := range p.Threads {
			body := body
			children[i] = t.Go(fmt.Sprintf("w%d", i+1), func(w *exec.Thread) {
				var regs [2]int64
				runStmts(w, body, e, &regs)
			})
		}
		if p.UseWg {
			t.WgWaitAt(e.wg, "main.wgwait")
		}
		t.JoinAll(children...)
		// Sequential epilogue: read every final value, then assert.
		finals := make([]int64, p.NVars)
		for i, v := range e.vars {
			finals[i] = t.ReadAt(v, fmt.Sprintf("main.final.%d", i))
		}
		for i, a := range p.Finals {
			t.AssertAt(a.Cmp.eval(finals[a.Var], a.Const),
				fmt.Sprintf("x%d %s %d", a.Var, a.Cmp, a.Const),
				fmt.Sprintf("main.assert.%d", i))
		}
	}
}

// runStmts interprets one statement list on thread w.
func runStmts(w *exec.Thread, stmts []Stmt, e *env, regs *[2]int64) {
	for _, s := range stmts {
		switch s.Kind {
		case StLoad:
			regs[s.Reg] = w.ReadAt(e.vars[s.Var], s.Loc)
		case StStore:
			w.WriteAt(e.vars[s.Var], s.Const, s.Loc)
		case StStoreReg:
			w.WriteAt(e.vars[s.Var], regs[s.Reg]+s.Delta, s.Loc)
		case StAddNA:
			w.AddAt(e.vars[s.Var], s.Delta, s.Loc)
		case StAtomicAdd:
			w.AtomicAddAt(e.vars[s.Var], s.Delta, s.Loc)
		case StCAS:
			w.CASAt(e.vars[s.Var], s.Old, s.New, s.Loc)
		case StYield:
			w.YieldAt(s.Loc)
		case StAssert:
			w.AssertAt(s.Cmp.eval(regs[s.Reg], s.Const),
				fmt.Sprintf("r%d %s %d", s.Reg, s.Cmp, s.Const), s.Loc)
		case StLocked:
			w.LockAt(e.mus[s.Mutex], s.Loc)
			runStmts(w, s.Body, e, regs)
			w.UnlockAt(e.mus[s.Mutex], s.Loc)
		case StSend:
			w.SendAt(e.chans[s.Chan], s.Const, s.Loc)
		case StRecv:
			v, _ := w.RecvAt(e.chans[s.Chan], s.Loc)
			regs[s.Reg] = v
		case StClose:
			w.CloseAt(e.chans[s.Chan], s.Loc)
		case StTrySend:
			w.TrySendAt(e.chans[s.Chan], s.Const, s.Loc)
		case StTryRecv:
			v, _, recvd := w.TryRecvAt(e.chans[s.Chan], s.Loc)
			if recvd {
				regs[s.Reg] = v
			}
		case StSelect:
			cases := []exec.SelectCase{exec.RecvCase(e.chans[s.Chan])}
			if s.SelSend {
				cases = append(cases, exec.SendCase(e.chans[s.Chan2], s.Const))
			} else {
				cases = append(cases, exec.RecvCase(e.chans[s.Chan2]))
			}
			_, v, ok := w.SelectAt(s.Loc, cases...)
			if ok {
				regs[s.Reg] = v
			}
		case StWgDone:
			w.WgDoneAt(e.wg, s.Loc)
		case StCondWait:
			w.WaitAt(e.conds[s.Cond], s.Loc)
		case StSignal:
			w.SignalAt(e.conds[s.Cond], s.Loc)
		case StBroadcast:
			w.BroadcastAt(e.conds[s.Cond], s.Loc)
		case StRLocked:
			w.RLockAt(e.rws[s.RW], s.Loc)
			runStmts(w, s.Body, e, regs)
			w.RUnlockAt(e.rws[s.RW], s.Loc)
		case StWLocked:
			w.WLockAt(e.rws[s.RW], s.Loc)
			runStmts(w, s.Body, e, regs)
			w.WUnlockAt(e.rws[s.RW], s.Loc)
		default:
			panic(fmt.Sprintf("progen: unknown statement kind %d", s.Kind))
		}
	}
}

// Source renders the program as deterministic pseudo-code — the artifact
// tests and humans diff when two "identical" generator streams disagree.
func (p *Program) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for i, init := range p.Inits {
		fmt.Fprintf(&b, "var x%d = %d\n", i, init)
	}
	for i := 0; i < p.NMutexes; i++ {
		fmt.Fprintf(&b, "mutex m%d\n", i)
	}
	for i := 0; i < p.NChans; i++ {
		fmt.Fprintf(&b, "chan ch%d cap %d\n", i, p.ChanCaps[i])
	}
	for i := 0; i < p.NRWs; i++ {
		fmt.Fprintf(&b, "rwmutex rw%d\n", i)
	}
	for i := 0; i < p.NConds; i++ {
		fmt.Fprintf(&b, "cond c%d on m%d\n", i, p.CondMutex[i])
	}
	if p.UseWg {
		fmt.Fprintf(&b, "waitgroup wg add %d\n", p.WgAdds)
	}
	for i, body := range p.Threads {
		fmt.Fprintf(&b, "thread w%d {\n", i+1)
		writeStmts(&b, body, 1)
		b.WriteString("}\n")
	}
	for _, a := range p.Finals {
		fmt.Fprintf(&b, "final assert x%d %s %d\n", a.Var, a.Cmp, a.Const)
	}
	return b.String()
}

// writeStmts renders a statement list at the given indent depth.
func writeStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s.Kind {
		case StLoad:
			fmt.Fprintf(b, "%sr%d = x%d", ind, s.Reg, s.Var)
		case StStore:
			fmt.Fprintf(b, "%sx%d = %d", ind, s.Var, s.Const)
		case StStoreReg:
			fmt.Fprintf(b, "%sx%d = r%d + %d", ind, s.Var, s.Reg, s.Delta)
		case StAddNA:
			fmt.Fprintf(b, "%sx%d += %d", ind, s.Var, s.Delta)
		case StAtomicAdd:
			fmt.Fprintf(b, "%satomic x%d += %d", ind, s.Var, s.Delta)
		case StCAS:
			fmt.Fprintf(b, "%scas(x%d, %d, %d)", ind, s.Var, s.Old, s.New)
		case StYield:
			fmt.Fprintf(b, "%syield", ind)
		case StAssert:
			fmt.Fprintf(b, "%sassert r%d %s %d", ind, s.Reg, s.Cmp, s.Const)
		case StLocked:
			fmt.Fprintf(b, "%slock m%d {\t// %s\n", ind, s.Mutex, s.Loc)
			writeStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}", ind)
		case StSend:
			fmt.Fprintf(b, "%sch%d <- %d", ind, s.Chan, s.Const)
		case StRecv:
			fmt.Fprintf(b, "%sr%d = <-ch%d", ind, s.Reg, s.Chan)
		case StClose:
			fmt.Fprintf(b, "%sclose(ch%d)", ind, s.Chan)
		case StTrySend:
			fmt.Fprintf(b, "%strysend(ch%d, %d)", ind, s.Chan, s.Const)
		case StTryRecv:
			fmt.Fprintf(b, "%sr%d = tryrecv(ch%d)", ind, s.Reg, s.Chan)
		case StSelect:
			arm := fmt.Sprintf("recv ch%d", s.Chan2)
			if s.SelSend {
				arm = fmt.Sprintf("send ch%d %d", s.Chan2, s.Const)
			}
			fmt.Fprintf(b, "%sselect { recv ch%d -> r%d | %s }", ind, s.Chan, s.Reg, arm)
		case StWgDone:
			fmt.Fprintf(b, "%swg.done()", ind)
		case StCondWait:
			fmt.Fprintf(b, "%swait(c%d)", ind, s.Cond)
		case StSignal:
			fmt.Fprintf(b, "%ssignal(c%d)", ind, s.Cond)
		case StBroadcast:
			fmt.Fprintf(b, "%sbroadcast(c%d)", ind, s.Cond)
		case StRLocked:
			fmt.Fprintf(b, "%srlock rw%d {\t// %s\n", ind, s.RW, s.Loc)
			writeStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}", ind)
		case StWLocked:
			fmt.Fprintf(b, "%swlock rw%d {\t// %s\n", ind, s.RW, s.Loc)
			writeStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}", ind)
		}
		fmt.Fprintf(b, "\t// %s\n", s.Loc)
	}
}
