package progen

import (
	"fmt"
	"strings"

	"rff/internal/exec"
)

// Body builds the exec.Program interpreting the AST. Every statement
// executes through the explicit-location thread API (ReadAt, WriteAt,
// LockAt, ...) with its own synthetic location, so each statement is a
// distinct abstract event op(x)@loc — exactly what the reads-from
// machinery keys on.
func (p *Program) Body() exec.Program {
	return func(t *exec.Thread) {
		vars := make([]*exec.Var, p.NVars)
		for i := range vars {
			vars[i] = t.NewVar(fmt.Sprintf("x%d", i), p.Inits[i])
		}
		mus := make([]*exec.Mutex, p.NMutexes)
		for i := range mus {
			mus[i] = t.NewMutex(fmt.Sprintf("m%d", i))
		}
		children := make([]*exec.Thread, len(p.Threads))
		for i, body := range p.Threads {
			body := body
			children[i] = t.Go(fmt.Sprintf("w%d", i+1), func(w *exec.Thread) {
				var regs [2]int64
				runStmts(w, body, vars, mus, &regs)
			})
		}
		t.JoinAll(children...)
		// Sequential epilogue: read every final value, then assert.
		finals := make([]int64, p.NVars)
		for i, v := range vars {
			finals[i] = t.ReadAt(v, fmt.Sprintf("main.final.%d", i))
		}
		for i, a := range p.Finals {
			t.AssertAt(a.Cmp.eval(finals[a.Var], a.Const),
				fmt.Sprintf("x%d %s %d", a.Var, a.Cmp, a.Const),
				fmt.Sprintf("main.assert.%d", i))
		}
	}
}

// runStmts interprets one statement list on thread w.
func runStmts(w *exec.Thread, stmts []Stmt, vars []*exec.Var, mus []*exec.Mutex, regs *[2]int64) {
	for _, s := range stmts {
		switch s.Kind {
		case StLoad:
			regs[s.Reg] = w.ReadAt(vars[s.Var], s.Loc)
		case StStore:
			w.WriteAt(vars[s.Var], s.Const, s.Loc)
		case StStoreReg:
			w.WriteAt(vars[s.Var], regs[s.Reg]+s.Delta, s.Loc)
		case StAddNA:
			w.AddAt(vars[s.Var], s.Delta, s.Loc)
		case StAtomicAdd:
			w.AtomicAddAt(vars[s.Var], s.Delta, s.Loc)
		case StCAS:
			w.CASAt(vars[s.Var], s.Old, s.New, s.Loc)
		case StYield:
			w.YieldAt(s.Loc)
		case StAssert:
			w.AssertAt(s.Cmp.eval(regs[s.Reg], s.Const),
				fmt.Sprintf("r%d %s %d", s.Reg, s.Cmp, s.Const), s.Loc)
		case StLocked:
			w.LockAt(mus[s.Mutex], s.Loc)
			runStmts(w, s.Body, vars, mus, regs)
			w.UnlockAt(mus[s.Mutex], s.Loc)
		default:
			panic(fmt.Sprintf("progen: unknown statement kind %d", s.Kind))
		}
	}
}

// Source renders the program as deterministic pseudo-code — the artifact
// tests and humans diff when two "identical" generator streams disagree.
func (p *Program) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for i, init := range p.Inits {
		fmt.Fprintf(&b, "var x%d = %d\n", i, init)
	}
	for i := 0; i < p.NMutexes; i++ {
		fmt.Fprintf(&b, "mutex m%d\n", i)
	}
	for i, body := range p.Threads {
		fmt.Fprintf(&b, "thread w%d {\n", i+1)
		writeStmts(&b, body, 1)
		b.WriteString("}\n")
	}
	for _, a := range p.Finals {
		fmt.Fprintf(&b, "final assert x%d %s %d\n", a.Var, a.Cmp, a.Const)
	}
	return b.String()
}

// writeStmts renders a statement list at the given indent depth.
func writeStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s.Kind {
		case StLoad:
			fmt.Fprintf(b, "%sr%d = x%d", ind, s.Reg, s.Var)
		case StStore:
			fmt.Fprintf(b, "%sx%d = %d", ind, s.Var, s.Const)
		case StStoreReg:
			fmt.Fprintf(b, "%sx%d = r%d + %d", ind, s.Var, s.Reg, s.Delta)
		case StAddNA:
			fmt.Fprintf(b, "%sx%d += %d", ind, s.Var, s.Delta)
		case StAtomicAdd:
			fmt.Fprintf(b, "%satomic x%d += %d", ind, s.Var, s.Delta)
		case StCAS:
			fmt.Fprintf(b, "%scas(x%d, %d, %d)", ind, s.Var, s.Old, s.New)
		case StYield:
			fmt.Fprintf(b, "%syield", ind)
		case StAssert:
			fmt.Fprintf(b, "%sassert r%d %s %d", ind, s.Reg, s.Cmp, s.Const)
		case StLocked:
			fmt.Fprintf(b, "%slock m%d {\t// %s\n", ind, s.Mutex, s.Loc)
			writeStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}", ind)
		}
		fmt.Fprintf(b, "\t// %s\n", s.Loc)
	}
}
