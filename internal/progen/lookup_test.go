package progen

import "testing"

func TestParseName(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		index int
		ok    bool
	}{
		{"gen/s42/0007", 42, 7, true},
		{"gen/s-3/0000", -3, 0, true},
		{"gen/s1/12345", 1, 12345, true},
		{"CS/reorder_10", 0, 0, false},
		{"gen/s42", 0, 0, false},
		{"gen/s/0007", 0, 0, false},
		{"gen/s42/", 0, 0, false},
		{"gen/sx/0007", 0, 0, false},
		{"gen/s42/-1", 0, 0, false},
	}
	for _, c := range cases {
		seed, index, ok := ParseName(c.name)
		if ok != c.ok || seed != c.seed || index != c.index {
			t.Errorf("ParseName(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.name, seed, index, ok, c.seed, c.index, c.ok)
		}
	}
}

func TestFromNameRoundTrip(t *testing.T) {
	g := NewGenerator(42, Options{})
	for i := 0; i < 10; i++ {
		want := g.Next()
		got, ok := FromName(want.Name)
		if !ok {
			t.Fatalf("FromName(%q) failed", want.Name)
		}
		if got.Source() != want.Source() {
			t.Fatalf("FromName(%q) regenerated a different program:\n%s\nvs\n%s",
				want.Name, got.Source(), want.Source())
		}
	}
	if _, ok := FromName("CS/account"); ok {
		t.Fatal("FromName accepted a non-generated name")
	}
}
