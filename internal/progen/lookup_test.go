package progen

import "testing"

func TestParseName(t *testing.T) {
	cases := []struct {
		name  string
		feats Features
		seed  int64
		index int
		ok    bool
	}{
		{"gen/s42/0007", 0, 42, 7, true},
		{"gen/s-3/0000", 0, -3, 0, true},
		{"gen/s1/12345", 0, 1, 12345, true},
		{"gen/chan/s42/0007", FeatChan | FeatWaitGroup, 42, 7, true},
		{"gen/sync/s7/0001", FeatCond | FeatRWMutex, 7, 1, true},
		{"gen/all/s1/0000", FeatChan | FeatWaitGroup | FeatCond | FeatRWMutex, 1, 0, true},
		{"gen/f5/s1/0000", FeatChan | FeatCond, 1, 0, true},
		{"CS/reorder_10", 0, 0, 0, false},
		{"gen/s42", 0, 0, 0, false},
		{"gen/s/0007", 0, 0, 0, false},
		{"gen/s42/", 0, 0, 0, false},
		{"gen/sx/0007", 0, 0, 0, false},
		{"gen/s42/-1", 0, 0, 0, false},
		{"gen/bogus/s42/0007", 0, 0, 0, false},
		{"gen/chan/42/0007", 0, 0, 0, false},
	}
	for _, c := range cases {
		feats, seed, index, ok := ParseName(c.name)
		if ok != c.ok || feats != c.feats || seed != c.seed || index != c.index {
			t.Errorf("ParseName(%q) = (%v, %d, %d, %v), want (%v, %d, %d, %v)",
				c.name, feats, seed, index, ok, c.feats, c.seed, c.index, c.ok)
		}
	}
}

func TestFromNameRoundTrip(t *testing.T) {
	for _, grammar := range Grammars() {
		feats, err := ParseGrammar(grammar)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGenerator(42, Options{Features: feats})
		for i := 0; i < 10; i++ {
			want := g.Next()
			got, ok := FromName(want.Name)
			if !ok {
				t.Fatalf("FromName(%q) failed", want.Name)
			}
			if got.Source() != want.Source() {
				t.Fatalf("FromName(%q) regenerated a different program:\n%s\nvs\n%s",
					want.Name, got.Source(), want.Source())
			}
		}
	}
	if _, ok := FromName("CS/account"); ok {
		t.Fatal("FromName accepted a non-generated name")
	}
}
