package strategy

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Info is the machine-readable description of one registered strategy —
// the shared wire shape behind `rff tools -json` and the daemon's
// `GET /v1/tools` discovery endpoint, so scripts and service clients
// parse one format.
type Info struct {
	// Name is the registry key ("pct").
	Name string `json:"name"`
	// Usage is the spec grammar ("pct:<depth>").
	Usage string `json:"usage"`
	// Summary is the one-line description.
	Summary string `json:"summary"`
	// Tool is the canonical tool name the bare spec resolves to ("PCT3").
	Tool string `json:"tool"`
	// Canonical is the canonical form of the bare spec ("pct:3").
	Canonical string `json:"canonical"`
	// Aliases lists alternative spellings that resolve to this strategy,
	// sorted; deprecated ones are suffixed " (deprecated)".
	Aliases []string `json:"aliases,omitempty"`
	// Deterministic reports whether the tool runs a single trial.
	Deterministic bool `json:"deterministic"`
}

// Describe builds the registry's Info list, sorted by name. Resolution
// uses an empty Config, which every registered factory accepts.
func Describe() ([]Info, error) {
	aliasesOf := make(map[string][]string)
	for name, al := range aliases {
		target, err := ParseSpec(al.target)
		if err != nil {
			return nil, fmt.Errorf("alias %q has malformed target %q: %w", name, al.target, err)
		}
		label := name
		if al.deprecated {
			label += " (deprecated)"
		}
		aliasesOf[target.Name] = append(aliasesOf[target.Name], label)
	}
	var out []Info
	for _, e := range Entries() {
		tl, err := Resolve(e.Name, Config{})
		if err != nil {
			return nil, fmt.Errorf("resolving %q: %w", e.Name, err)
		}
		canon, err := Canonical(e.Name)
		if err != nil {
			return nil, fmt.Errorf("canonicalizing %q: %w", e.Name, err)
		}
		als := aliasesOf[e.Name]
		sort.Strings(als)
		out = append(out, Info{
			Name:          e.Name,
			Usage:         e.Usage,
			Summary:       e.Summary,
			Tool:          tl.Name(),
			Canonical:     canon,
			Aliases:       als,
			Deterministic: tl.Deterministic(),
		})
	}
	return out, nil
}

// WriteJSON encodes the registry listing as indented JSON to w — the
// one encoder both the CLI flag and the service endpoint call.
func WriteJSON(w io.Writer) error {
	infos, err := Describe()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(infos)
}
