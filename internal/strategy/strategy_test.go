package strategy_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"rff/internal/bench"
	"rff/internal/strategy"
)

// TestCanonicalRoundTrip: parsing a spec, canonicalizing it, and
// re-canonicalizing the result must be a fixed point — the canonical
// form is itself a valid spec naming the same tool.
func TestCanonicalRoundTrip(t *testing.T) {
	specs := []string{
		"rff", "rff:nofb", "pos", "pct", "pct:3", "pct:7", "random",
		"qlearn", "qlearn:alpha=0.3:gamma=0.9", "qlearn:eps=0.25",
		"period", "period:2", "period:3", "genmc",
		"RFF", " pos ", "PCT:7", // case/whitespace insensitivity
	}
	for _, s := range specs {
		c1, err := strategy.Canonical(s)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", s, err)
		}
		c2, err := strategy.Canonical(c1)
		if err != nil {
			t.Fatalf("Canonical not re-parseable: Canonical(%q) = %q: %v", s, c1, err)
		}
		if c1 != c2 {
			t.Errorf("Canonical not idempotent: %q -> %q -> %q", s, c1, c2)
		}
		// The canonical spec and the original must name the same tool.
		a := strategy.MustResolve(s, strategy.Config{})
		b := strategy.MustResolve(c1, strategy.Config{})
		if a.Name() != b.Name() {
			t.Errorf("%q and its canonical %q resolve to different tools: %s vs %s",
				s, c1, a.Name(), b.Name())
		}
	}
}

// TestSpecToToolName pins the spec -> canonical tool name mapping. The
// pre-existing names (RFF, POS, PCT3, ...) seed the golden matrix
// tests' trial seeds, so changing any of them breaks bit-compatibility.
func TestSpecToToolName(t *testing.T) {
	want := map[string]string{
		"rff":              "RFF",
		"rff:nofb":         "RFF-nofb",
		"rff-nofb":         "RFF-nofb",
		"pos":              "POS",
		"pct":              "PCT3",
		"pct:3":            "PCT3",
		"pct:7":            "PCT7",
		"random":           "Random",
		"qlearn":           "QLearning-RF",
		"qlearn:alpha=0.3": "QLearning-RF(alpha=0.3)",
		"period":           "PERIOD*",
		"period:2":         "PERIOD*",
		"period:3":         "PERIOD*(b=3)",
		"genmc":            "GenMC*",
	}
	for spec, name := range want {
		tl, err := strategy.Resolve(spec, strategy.Config{})
		if err != nil {
			t.Errorf("Resolve(%q): %v", spec, err)
			continue
		}
		if tl.Name() != name {
			t.Errorf("Resolve(%q).Name() = %q, want %q", spec, tl.Name(), name)
		}
	}
}

// TestQLearnCanonicalization: hyperparameters canonicalize to a fixed
// key order with canonical float formatting, independent of input order.
func TestQLearnCanonicalization(t *testing.T) {
	a, err := strategy.Canonical("qlearn:gamma=0.90:alpha=0.50")
	if err != nil {
		t.Fatal(err)
	}
	b, err := strategy.Canonical("qlearn:alpha=0.5:gamma=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != "qlearn:alpha=0.5:gamma=0.9" {
		t.Fatalf("qlearn canonicalization diverged: %q vs %q", a, b)
	}
}

func TestMalformedSpecsRejected(t *testing.T) {
	cases := []string{
		"", ":", "pct:", "pct:0", "pct:-1", "pct:x", "pct:3:4",
		"period:0", "period:two", "rff:fast", "pos:1",
		"qlearn:alpha", "qlearn:alpha=0", "qlearn:alpha=2", "qlearn:alpha=0.5:alpha=0.5",
		"qlearn:learningrate=0.5", "qlearn:reward=0", "pct3:3",
	}
	for _, s := range cases {
		if _, err := strategy.Resolve(s, strategy.Config{}); err == nil {
			t.Errorf("Resolve(%q) unexpectedly succeeded", s)
		}
	}
}

// TestUnknownSpecErrorListsRegistered: the unknown-strategy error must
// enumerate the registry so a CLI typo is self-correcting.
func TestUnknownSpecErrorListsRegistered(t *testing.T) {
	_, err := strategy.Resolve("pso", strategy.Config{})
	if err == nil {
		t.Fatal("unknown strategy resolved")
	}
	for _, name := range strategy.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered strategy %q", err, name)
		}
	}
}

// TestDeprecatedAliasWarnsOnce: "pct3" still resolves, but announces
// its replacement through the DeprecationWarning hook.
func TestDeprecatedAliasWarns(t *testing.T) {
	var warnings []string
	old := strategy.DeprecationWarning
	strategy.DeprecationWarning = func(msg string) { warnings = append(warnings, msg) }
	defer func() { strategy.DeprecationWarning = old }()

	tl, err := strategy.Resolve("pct3", strategy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Name() != "PCT3" {
		t.Fatalf("pct3 resolved to %q, want PCT3", tl.Name())
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "pct:3") {
		t.Fatalf("want one deprecation warning naming pct:3, got %v", warnings)
	}

	// The non-deprecated alias is silent.
	warnings = nil
	if tl := strategy.MustResolve("rff-nofb", strategy.Config{}); tl.Name() != "RFF-nofb" {
		t.Fatalf("rff-nofb resolved to %q", tl.Name())
	}
	if len(warnings) != 0 {
		t.Fatalf("rff-nofb should not warn, got %v", warnings)
	}
}

// TestDefaultSpecs pins the evaluation panel and its table order.
func TestDefaultSpecs(t *testing.T) {
	tools, err := strategy.ResolveAll(strategy.DefaultSpecs(), strategy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"PCT3", "PERIOD*", "RFF", "POS", "QLearning-RF", "GenMC*"}
	if len(tools) != len(want) {
		t.Fatalf("DefaultSpecs resolved to %d tools, want %d", len(tools), len(want))
	}
	for i, tl := range tools {
		if tl.Name() != want[i] {
			t.Errorf("DefaultSpecs[%d] = %s, want %s", i, tl.Name(), want[i])
		}
	}
}

func TestResolveAllRejectsDuplicates(t *testing.T) {
	// "pct" defaults to depth 3, so it collides with the explicit spec.
	if _, err := strategy.ResolveAll([]string{"pct:3", "pct"}, strategy.Config{}); err == nil {
		t.Fatal("duplicate canonical specs accepted")
	}
	if _, err := strategy.ResolveAll([]string{"pct:3", "pct:7"}, strategy.Config{}); err != nil {
		t.Fatalf("distinct pct depths rejected: %v", err)
	}
}

func TestParseSpecs(t *testing.T) {
	got, err := strategy.ParseSpecs(" pos, pct:7 ,rff")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "pos" || got[1] != "pct:7" || got[2] != "rff" {
		t.Fatalf("ParseSpecs = %v", got)
	}
	for _, bad := range []string{"", "pos,,rff", ","} {
		if _, err := strategy.ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestEveryStrategyHonorsCancellation: a trial started under an already
// cancelled context must stop within one scheduling step — no strategy
// may burn a multi-million-schedule budget first. This covers every
// registered entry, so a new strategy cannot land without wiring ctx
// through its scheduler loop.
func TestEveryStrategyHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := bench.MustGet("SafeStack")
	const hugeBudget = 50_000_000
	for _, e := range strategy.Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tl := strategy.MustResolve(e.Name, strategy.Config{})
			start := time.Now()
			out := tl.Run(ctx, p, hugeBudget, 0, 1)
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("cancelled trial still took %v", elapsed)
			}
			if !out.Errored() {
				t.Fatalf("cancelled trial did not record an error: %+v", out)
			}
			if out.Found() {
				t.Fatalf("cancelled trial claims a bug: %+v", out)
			}
			// At most one scheduling step ran; a cancelled partial
			// execution is discarded, never counted.
			if out.Executions != 0 {
				t.Fatalf("cancelled trial counted %d executions, want 0", out.Executions)
			}
		})
	}
}

// TestMidTrialCancellationStopsPromptly: cancelling a running trial cuts
// it off mid-budget, and the outcome reports how far it got.
func TestMidTrialCancellationStopsPromptly(t *testing.T) {
	p := bench.MustGet("SafeStack")
	const hugeBudget = 50_000_000
	for _, spec := range []string{"rff", "pos"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			tl := strategy.MustResolve(spec, strategy.Config{})
			start := time.Now()
			out := tl.Run(ctx, p, hugeBudget, 0, 1)
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("cancelled trial still took %v", elapsed)
			}
			if !out.Errored() {
				t.Fatalf("aborted trial did not record an error: %+v", out)
			}
			if out.Executions >= hugeBudget {
				t.Fatalf("trial ran its full %d budget despite cancellation", out.Executions)
			}
		})
	}
}
