package strategy

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestDescribeCoversRegistry(t *testing.T) {
	old := DeprecationWarning
	DeprecationWarning = func(string) {}
	defer func() { DeprecationWarning = old }()

	infos, err := Describe()
	if err != nil {
		t.Fatal(err)
	}
	names := Names()
	if len(infos) != len(names) {
		t.Fatalf("Describe returned %d entries, registry has %d", len(infos), len(names))
	}
	byName := make(map[string]Info, len(infos))
	for i, in := range infos {
		if in.Name != names[i] {
			t.Errorf("entry %d: name %q, want sorted %q", i, in.Name, names[i])
		}
		if in.Tool == "" || in.Usage == "" || in.Summary == "" || in.Canonical == "" {
			t.Errorf("entry %q has empty fields: %+v", in.Name, in)
		}
		// The advertised canonical spec must itself resolve to the
		// advertised tool name.
		tl, err := Resolve(in.Canonical, Config{})
		if err != nil {
			t.Errorf("canonical %q does not resolve: %v", in.Canonical, err)
		} else if tl.Name() != in.Tool {
			t.Errorf("canonical %q resolves to %q, advertised %q", in.Canonical, tl.Name(), in.Tool)
		}
		byName[in.Name] = in
	}
	// Known shape checks: pct canonicalizes its default depth, genmc is
	// deterministic, rff has its nofb alias attached via rff-nofb? (the
	// rff-nofb alias targets rff:nofb, so it lands on "rff").
	if in := byName["pct"]; in.Canonical != "pct:3" {
		t.Errorf("pct canonical = %q, want pct:3", in.Canonical)
	}
	if in := byName["genmc"]; !in.Deterministic {
		t.Error("genmc not marked deterministic")
	}
}

func TestWriteJSONIsParseable(t *testing.T) {
	old := DeprecationWarning
	DeprecationWarning = func(string) {}
	defer func() { DeprecationWarning = old }()

	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var infos []Info
	if err := json.Unmarshal(buf.Bytes(), &infos); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, buf.String())
	}
	if len(infos) != len(Names()) {
		t.Fatalf("parsed %d entries, want %d", len(infos), len(Names()))
	}
	// Two encodings are byte-identical: the listing is deterministic.
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteJSON is not deterministic")
	}
}
