package strategy

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/exec"
	"rff/internal/qlearn"
	"rff/internal/sched"
	"rff/internal/systematic"
)

// The built-in lineup: the paper's evaluation panel plus the naive
// random baseline. Everything constructing a campaign.Tool lives here —
// the grep-lint CI step keeps it that way.
func init() {
	Register(Entry{
		Name:    "rff",
		Usage:   "rff[:nofb]",
		Summary: "greybox reads-from fuzzer; arg nofb ablates the feedback (RQ3)",
		Normalize: func(sp Spec) (Spec, error) {
			switch {
			case len(sp.Args) == 0:
				return sp, nil
			case len(sp.Args) == 1 && sp.Args[0] == "nofb":
				return sp, nil
			}
			return Spec{}, fmt.Errorf("rff takes at most the single argument \"nofb\"")
		},
		Factory: func(sp Spec, cfg Config) (campaign.Tool, error) {
			return campaign.RFFTool{
				NoFeedback: len(sp.Args) == 1,
				Telemetry:  cfg.Telemetry,
				Observer:   cfg.Observer,
				Shards:     cfg.Shards,
				ShardFast:  cfg.ShardFast,
			}, nil
		},
	})

	Register(Entry{
		Name:    "pos",
		Usage:   "pos",
		Summary: "Partial Order Sampling baseline (Yuan et al., CAV'18)",
		Factory: func(_ Spec, cfg Config) (campaign.Tool, error) {
			return campaign.SchedulerTool{
				ToolName:  "POS",
				Factory:   func() exec.Scheduler { return sched.NewPOS() },
				Telemetry: cfg.Telemetry,
				Observer:  cfg.Observer,
			}, nil
		},
	})

	Register(Entry{
		Name:    "pct",
		Usage:   "pct:<depth>",
		Summary: "PCT at the given bug depth, default 3 (Burckhardt et al., ASPLOS'10)",
		Normalize: func(sp Spec) (Spec, error) {
			depth := 3
			switch len(sp.Args) {
			case 0:
			case 1:
				d, err := strconv.Atoi(sp.Args[0])
				if err != nil {
					return Spec{}, fmt.Errorf("pct depth must be a positive integer, got %q", sp.Args[0])
				}
				if d < 1 {
					return Spec{}, fmt.Errorf("pct depth must be >= 1, got %d", d)
				}
				depth = d
			default:
				return Spec{}, fmt.Errorf("pct takes a single depth argument")
			}
			// The depth parameterizes the tool name, so the canonical
			// spec always spells it out.
			return Spec{Name: "pct", Args: []string{strconv.Itoa(depth)}}, nil
		},
		Factory: func(sp Spec, cfg Config) (campaign.Tool, error) {
			depth, _ := strconv.Atoi(sp.Args[0])
			return campaign.SchedulerTool{
				ToolName:  fmt.Sprintf("PCT%d", depth),
				Factory:   func() exec.Scheduler { return sched.NewPCT(depth) },
				Telemetry: cfg.Telemetry,
				Observer:  cfg.Observer,
			}, nil
		},
	})

	Register(Entry{
		Name:    "random",
		Usage:   "random",
		Summary: "uniform random walk over enabled events",
		Factory: func(_ Spec, cfg Config) (campaign.Tool, error) {
			return campaign.SchedulerTool{
				ToolName:  "Random",
				Factory:   func() exec.Scheduler { return sched.NewRandom() },
				Telemetry: cfg.Telemetry,
				Observer:  cfg.Observer,
			}, nil
		},
	})

	Register(Entry{
		Name:      "qlearn",
		Usage:     "qlearn[:alpha=A][:gamma=G][:epsilon=E][:reward=R]",
		Summary:   "Q-Learning-RF baseline of RQ4; hyperparameters default to the paper's",
		Normalize: normalizeQLearn,
		Factory: func(sp Spec, cfg Config) (campaign.Tool, error) {
			qcfg, err := qlearnConfig(sp)
			if err != nil {
				return nil, err
			}
			name := "QLearning-RF"
			if len(sp.Args) > 0 {
				name += "(" + strings.Join(sp.Args, ",") + ")"
			}
			return campaign.SchedulerTool{
				ToolName:  name,
				Factory:   func() exec.Scheduler { return qlearn.New(qcfg) },
				Telemetry: cfg.Telemetry,
				Observer:  cfg.Observer,
			}, nil
		},
	})

	Register(Entry{
		Name:    "period",
		Usage:   "period[:<bound>]",
		Summary: "preemption-bounded systematic stand-in for PERIOD, default bound 2",
		Normalize: func(sp Spec) (Spec, error) {
			switch len(sp.Args) {
			case 0:
				return sp, nil
			case 1:
				b, err := strconv.Atoi(sp.Args[0])
				if err != nil || b < 1 {
					return Spec{}, fmt.Errorf("period bound must be a positive integer, got %q", sp.Args[0])
				}
				if b == 2 {
					// The default bound does not parameterize the name;
					// strip it so "period:2" and "period" are one tool.
					return Spec{Name: "period"}, nil
				}
				return sp, nil
			default:
				return Spec{}, fmt.Errorf("period takes a single bound argument")
			}
		},
		Factory: func(sp Spec, cfg Config) (campaign.Tool, error) {
			bound := 2
			name := "PERIOD*"
			if len(sp.Args) == 1 {
				bound, _ = strconv.Atoi(sp.Args[0])
				name = fmt.Sprintf("PERIOD*(b=%d)", bound)
			}
			return campaign.SystematicTool{
				ToolName: name,
				Observer: cfg.Observer,
				Explore: func(ctx context.Context, p bench.Program, budget, maxSteps int, obs campaign.ResultObserver) campaign.Outcome {
					rep := systematic.ICBContext(ctx, p.Name, p.Body, systematic.ICBOptions{
						MaxExecutions:  budget,
						MaxSteps:       maxSteps,
						MaxBound:       bound,
						StopAtFirstBug: true,
						OnExecution:    obs,
					})
					return systematicOutcome(ctx, rep.FirstBug, rep.Executions, budget)
				},
			}, nil
		},
	})

	Register(Entry{
		Name:    "genmc",
		Usage:   "genmc",
		Summary: "exhaustive-enumeration stand-in for the GenMC model checker",
		Factory: func(_ Spec, cfg Config) (campaign.Tool, error) {
			return campaign.SystematicTool{
				ToolName: "GenMC*",
				Observer: cfg.Observer,
				Explore: func(ctx context.Context, p bench.Program, budget, maxSteps int, obs campaign.ResultObserver) campaign.Outcome {
					rep := systematic.ExploreContext(ctx, p.Name, p.Body, systematic.ExploreOptions{
						MaxExecutions:  budget,
						MaxSteps:       maxSteps,
						StopAtFirstBug: true,
						OnExecution:    obs,
					})
					return systematicOutcome(ctx, rep.FirstBug, rep.Executions, budget)
				},
			}, nil
		},
	})

	// Legacy spellings. "pct3" predates parameterized specs and is
	// deprecated; "rff-nofb" remains the documented hyphenated form.
	RegisterAlias("pct3", "pct:3", true)
	RegisterAlias("rff-nofb", "rff:nofb", false)
}

// systematicOutcome maps an enumeration report to a trial outcome,
// recording a censored error when the trial was cut short by ctx.
func systematicOutcome(ctx context.Context, firstBug, executions, budget int) campaign.Outcome {
	out := campaign.Outcome{FirstBug: firstBug, Executions: executions, Budget: budget}
	if err := ctx.Err(); err != nil && firstBug == 0 {
		out.Err = fmt.Sprintf("trial aborted after %d schedules: %v", executions, err)
	}
	return out
}

// qlearnKeys is the canonical hyperparameter order of the qlearn spec.
var qlearnKeys = []string{"alpha", "gamma", "epsilon", "reward"}

// normalizeQLearn validates key=value hyperparameter arguments and
// rewrites them into canonical order with canonically formatted values.
func normalizeQLearn(sp Spec) (Spec, error) {
	vals := map[string]float64{}
	for _, a := range sp.Args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return Spec{}, fmt.Errorf("qlearn argument %q is not key=value", a)
		}
		if k == "eps" {
			k = "epsilon"
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("qlearn %s must be a number, got %q", k, v)
		}
		switch k {
		case "alpha", "gamma":
			if f <= 0 || f > 1 {
				return Spec{}, fmt.Errorf("qlearn %s must be in (0, 1], got %v", k, f)
			}
		case "epsilon":
			if f <= 0 || f > 1 {
				return Spec{}, fmt.Errorf("qlearn epsilon must be in (0, 1], got %v", f)
			}
		case "reward":
			if f == 0 {
				return Spec{}, fmt.Errorf("qlearn reward must be non-zero")
			}
		default:
			return Spec{}, fmt.Errorf("unknown qlearn parameter %q (known: %s)", k, strings.Join(qlearnKeys, ", "))
		}
		if _, dup := vals[k]; dup {
			return Spec{}, fmt.Errorf("duplicate qlearn parameter %q", k)
		}
		vals[k] = f
	}
	out := Spec{Name: "qlearn"}
	for _, k := range qlearnKeys {
		if f, ok := vals[k]; ok {
			out.Args = append(out.Args, k+"="+strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	return out, nil
}

// qlearnConfig builds the learner config from a normalized spec.
func qlearnConfig(sp Spec) (qlearn.Config, error) {
	var cfg qlearn.Config
	for _, a := range sp.Args {
		k, v, _ := strings.Cut(a, "=")
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, fmt.Errorf("qlearn %s must be a number, got %q", k, v)
		}
		switch k {
		case "alpha":
			cfg.Alpha = f
		case "gamma":
			cfg.Gamma = f
		case "epsilon":
			cfg.Epsilon = f
		case "reward":
			cfg.Reward = f
		}
	}
	return cfg, nil
}
