package strategy_test

import (
	"reflect"
	"testing"

	"rff/internal/strategy"
)

// FuzzParseSpec: spec parsing and canonicalization never panic on
// arbitrary input; parsed specs round-trip through String, and
// Canonical is idempotent whenever it succeeds.
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		"rff", "rff:nofb", "pos", "pct", "pct:3", "pct:7", "random",
		"qlearn", "qlearn:alpha=0.3:eps=0.1", "period", "period:2",
		"genmc", "pct3", "PCT:3", " pos ", "rff,pos", "pct:", ":", "",
		"a:b=c:d", "pct:0", "pct:-1", "qlearn:alpha=x", "no-such-tool",
	} {
		f.Add(s)
	}
	// Deprecated aliases print to stderr by default; a fuzzer feeding
	// them in a loop would flood the log.
	old := strategy.DeprecationWarning
	strategy.DeprecationWarning = func(string) {}
	defer func() { strategy.DeprecationWarning = old }()

	f.Fuzz(func(t *testing.T, s string) {
		sp, err := strategy.ParseSpec(s)
		if err != nil {
			return
		}
		// Parse is a normalizer: its output re-parses to itself.
		sp2, err := strategy.ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("parsed spec %q does not re-parse: %v", sp.String(), err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("spec round trip changed: %+v vs %+v", sp, sp2)
		}
		c, err := strategy.Canonical(s)
		if err != nil {
			return // unknown strategy or bad arguments: a clean error, not a panic
		}
		c2, err := strategy.Canonical(c)
		if err != nil {
			t.Fatalf("canonical spec %q rejected by Canonical: %v", c, err)
		}
		if c2 != c {
			t.Fatalf("Canonical not idempotent: %q -> %q -> %q", s, c, c2)
		}
	})
}
