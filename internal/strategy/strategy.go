// Package strategy is the registry of concurrency testing strategies:
// it maps parameterized spec strings ("rff", "rff:nofb", "pos", "pct:3",
// "pct:7", "random", "qlearn", "period", "genmc") to factories that
// build configured campaign.Tool values from a uniform Config.
//
// Which scheduler runs, with which parameters, is itself the experiment
// — so strategies are data, not code: every layer that needs a tool
// (the campaign matrix runner, both CLIs, the perf harness, tests)
// resolves it here instead of constructing it by hand. That guarantees
// the telemetry sink, context/deadline semantics, and canonical naming
// are threaded identically for every strategy.
//
// Spec grammar:
//
//	spec  := name (":" arg)*
//	arg   := value | key "=" value
//	specs := spec ("," spec)*
//
// Names are case-insensitive; arguments are validated per strategy (see
// the registered usages). The canonical form of a spec — Canonical —
// makes defaults explicit where they parameterize the tool name
// ("pct" -> "pct:3") and strips them where they do not
// ("period:2" -> "period"), so equal tools have equal canonical specs.
package strategy

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/campaign"
	"rff/internal/telemetry"
)

// Spec is a parsed strategy spec: a registry name plus raw arguments.
type Spec struct {
	// Name is the lower-cased registry key ("pct").
	Name string
	// Args are the ":"-separated arguments ("7", "alpha=0.3").
	Args []string
}

// String renders the spec back to its textual form.
func (s Spec) String() string {
	if len(s.Args) == 0 {
		return s.Name
	}
	return s.Name + ":" + strings.Join(s.Args, ":")
}

// ParseSpec parses one spec string. It validates only the grammar;
// name and argument validation happen at resolution.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("empty strategy spec")
	}
	parts := strings.Split(s, ":")
	sp := Spec{Name: strings.ToLower(strings.TrimSpace(parts[0]))}
	if sp.Name == "" {
		return Spec{}, fmt.Errorf("malformed strategy spec %q: missing name", s)
	}
	for _, a := range parts[1:] {
		a = strings.TrimSpace(a)
		if a == "" {
			return Spec{}, fmt.Errorf("malformed strategy spec %q: empty argument", s)
		}
		sp.Args = append(sp.Args, a)
	}
	return sp, nil
}

// ParseSpecs splits a comma-separated spec list ("pos,pct:7,rff") into
// its individual spec strings, dropping surrounding whitespace.
func ParseSpecs(s string) ([]string, error) {
	var out []string
	for _, one := range strings.Split(s, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			return nil, fmt.Errorf("empty entry in strategy spec list %q", s)
		}
		out = append(out, one)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty strategy spec list")
	}
	return out, nil
}

// Config is the uniform construction context handed to every strategy
// factory, and — via RunMatrix — the campaign-level settings of a
// matrix run. Factories consume what they need (today: the telemetry
// sink); the budget/deadline fields parameterize the trials every
// resolved tool runs under, so they live here rather than on any
// individual strategy.
type Config struct {
	// Telemetry, if non-nil, is threaded exactly once into every
	// resolved tool that supports per-execution instrumentation.
	Telemetry telemetry.Sink
	// Observer, if non-nil, is threaded into every resolved tool and
	// sees every counted execution's result (before its trace is
	// reclaimed) — the conformance harness's cross-check hook. Every
	// registered strategy honours it.
	Observer campaign.ResultObserver
	// Trials per (tool, program) cell; deterministic tools run once.
	Trials int
	// Budget is the schedule budget per trial.
	Budget int
	// MaxSteps bounds each execution (0 = engine default).
	MaxSteps int
	// BaseSeed seeds the campaign's per-cell seed stream
	// (campaign.TrialSeed).
	BaseSeed int64
	// Workers bounds concurrent trials (0 = GOMAXPROCS).
	Workers int
	// TrialTimeout, if positive, arms a per-trial wall-clock deadline;
	// every strategy stops a timed-out trial within one scheduling step
	// and records a censored, errored outcome.
	TrialTimeout time.Duration
	// Progress, if non-nil, is called after each completed trial.
	Progress func(done, total int)
	// Shards, when >= 1, runs RFF trials on the sharded work-stealing
	// runner with that many worker shards (campaign.RFFTool.Shards).
	// Unlike Workers this is not an execution hint: the sharded runner
	// is a distinct deterministic algorithm, so Shards changes results
	// and participates in cache identity. Other strategies ignore it.
	Shards int
	// ShardFast drops the sharded runner's epoch barrier — fast but
	// nondeterministic. Only meaningful with Shards >= 1.
	ShardFast bool
	// Budgeter, when non-nil with a non-empty Policy, runs the matrix
	// under adaptive budget scheduling (internal/budget): the total
	// execution pool is reallocated across (tool, program) cells at
	// epoch barriers by the named policy. Like Shards it changes
	// results and participates in cache identity. RunMatrix validates
	// it; the two are mutually exclusive (the sharded runner's observer
	// sees only failures, which would starve the reward signal).
	Budgeter *budget.Config
}

// Factory builds a configured tool from a normalized spec.
type Factory func(spec Spec, cfg Config) (campaign.Tool, error)

// Entry is one registered strategy.
type Entry struct {
	// Name is the registry key ("pct").
	Name string
	// Usage is the spec grammar shown in docs and errors ("pct:<depth>").
	Usage string
	// Summary is a one-line description.
	Summary string
	// Normalize validates the spec's arguments and rewrites them to
	// canonical form (fill defaults that parameterize the tool name,
	// strip ones that do not). Nil accepts only argument-less specs.
	Normalize func(Spec) (Spec, error)
	// Factory builds the tool from a normalized spec.
	Factory Factory
}

// alias maps a legacy spelling to its canonical spec string.
type alias struct {
	target     string
	deprecated bool
}

var (
	registry = map[string]Entry{}
	aliases  = map[string]alias{}
)

// DeprecationWarning is called once per resolution of a deprecated
// alias. The default prints to stderr; tests may override it.
var DeprecationWarning = func(msg string) {
	fmt.Fprintln(os.Stderr, "warning: "+msg)
}

// Register adds a strategy to the registry. It panics on a duplicate or
// invalid name — registration is an init-time programming error, not a
// runtime condition.
func Register(e Entry) {
	if e.Name == "" || e.Name != strings.ToLower(e.Name) || strings.ContainsAny(e.Name, ":,= \t") {
		panic(fmt.Sprintf("strategy.Register: invalid name %q", e.Name))
	}
	if e.Factory == nil {
		panic(fmt.Sprintf("strategy.Register: %q has no factory", e.Name))
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("strategy.Register: duplicate name %q", e.Name))
	}
	if _, dup := aliases[e.Name]; dup {
		panic(fmt.Sprintf("strategy.Register: name %q shadows an alias", e.Name))
	}
	registry[e.Name] = e
}

// RegisterAlias maps a legacy spelling ("pct3") to a canonical spec
// ("pct:3"). Deprecated aliases emit a DeprecationWarning when resolved.
func RegisterAlias(name, target string, deprecated bool) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("strategy.RegisterAlias: alias %q shadows a registered name", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("strategy.RegisterAlias: duplicate alias %q", name))
	}
	aliases[name] = alias{target: target, deprecated: deprecated}
}

// Names returns the registered strategy names, sorted. Aliases are not
// included — they resolve to these.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Entries returns the registered strategies sorted by name, for help
// listings.
func Entries() []Entry {
	out := make([]Entry, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// normalize parses a spec string, resolves aliases (warning on
// deprecated ones), and validates + canonicalizes the arguments.
func normalize(specStr string) (Spec, error) {
	sp, err := ParseSpec(specStr)
	if err != nil {
		return Spec{}, err
	}
	if al, ok := aliases[sp.Name]; ok {
		if len(sp.Args) > 0 {
			return Spec{}, fmt.Errorf("strategy spec %q: alias %q takes no arguments (use %q)",
				specStr, sp.Name, al.target)
		}
		if al.deprecated {
			DeprecationWarning(fmt.Sprintf("strategy spec %q is deprecated; use %q", sp.Name, al.target))
		}
		if sp, err = ParseSpec(al.target); err != nil {
			return Spec{}, fmt.Errorf("alias %q has malformed target: %w", specStr, err)
		}
	}
	e, ok := registry[sp.Name]
	if !ok {
		return Spec{}, fmt.Errorf("unknown strategy %q (registered: %s)",
			specStr, strings.Join(Names(), ", "))
	}
	if e.Normalize == nil {
		if len(sp.Args) > 0 {
			return Spec{}, fmt.Errorf("strategy %q takes no arguments (got %q)", sp.Name, specStr)
		}
		return sp, nil
	}
	nsp, err := e.Normalize(sp)
	if err != nil {
		return Spec{}, fmt.Errorf("strategy spec %q: %w", specStr, err)
	}
	return nsp, nil
}

// Canonical returns the canonical form of a spec string: aliases
// resolved, arguments validated, defaults made explicit or stripped per
// strategy. Canonical is idempotent, and two specs resolving to the
// same configured tool share one canonical form.
func Canonical(specStr string) (string, error) {
	sp, err := normalize(specStr)
	if err != nil {
		return "", err
	}
	return sp.String(), nil
}

// Resolve builds the configured tool a spec names, threading cfg
// (today: the telemetry sink) into it exactly once.
func Resolve(specStr string, cfg Config) (campaign.Tool, error) {
	sp, err := normalize(specStr)
	if err != nil {
		return nil, err
	}
	return registry[sp.Name].Factory(sp, cfg)
}

// MustResolve is Resolve for static specs in tests and examples; it
// panics on error.
func MustResolve(specStr string, cfg Config) campaign.Tool {
	t, err := Resolve(specStr, cfg)
	if err != nil {
		panic("strategy.MustResolve: " + err.Error())
	}
	return t
}

// ResolveAll resolves a list of spec strings in order.
func ResolveAll(specs []string, cfg Config) ([]campaign.Tool, error) {
	tools := make([]campaign.Tool, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		t, err := Resolve(s, cfg)
		if err != nil {
			return nil, err
		}
		if seen[t.Name()] {
			return nil, fmt.Errorf("duplicate strategy %q in spec list (canonical name %s)", s, t.Name())
		}
		seen[t.Name()] = true
		tools = append(tools, t)
	}
	return tools, nil
}

// DefaultSpecs is the evaluation's default tool lineup in table order —
// the panel the paper compares (PCT-3, PERIOD, RFF, POS, Q-Learning-RF,
// GenMC).
func DefaultSpecs() []string {
	return []string{"pct:3", "period", "rff", "pos", "qlearn", "genmc"}
}

// RunMatrix resolves the specs and executes the evaluation matrix under
// ctx on campaign.RunMatrixContext, mapping Config onto the matrix
// options. It is the one construction path from spec strings to matrix
// results: the sink, seeds, and deadlines are threaded identically for
// every strategy.
func RunMatrix(ctx context.Context, specs []string, programs []bench.Program, cfg Config) (*campaign.MatrixResult, error) {
	tools, err := ResolveAll(specs, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Budgeter != nil && cfg.Budgeter.Policy != "" {
		if err := cfg.Budgeter.Validate(); err != nil {
			return nil, err
		}
		if cfg.Shards >= 1 {
			return nil, fmt.Errorf("budget policy %q cannot be combined with sharded trials: the shard runner's observer sees only failing executions, so budget cells would earn no coverage reward", cfg.Budgeter.Policy)
		}
	}
	return campaign.RunMatrixContext(ctx, tools, programs, campaign.MatrixOptions{
		Trials:       cfg.Trials,
		Budget:       cfg.Budget,
		MaxSteps:     cfg.MaxSteps,
		BaseSeed:     cfg.BaseSeed,
		Workers:      cfg.Workers,
		TrialTimeout: cfg.TrialTimeout,
		Progress:     cfg.Progress,
		Telemetry:    cfg.Telemetry,
		Budgeter:     cfg.Budgeter,
	}), nil
}
