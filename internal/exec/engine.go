package exec

import (
	"context"
	"fmt"
	"strings"

	"rff/internal/telemetry"
)

// Config parameterizes one execution.
type Config struct {
	// Scheduler decides every scheduling point. Required.
	Scheduler Scheduler
	// Seed is passed to the scheduler's Begin; with a deterministic
	// scheduler the whole execution is a pure function of (program, seed).
	Seed int64
	// Ctx, if non-nil, is checked at every scheduling step: once it is
	// cancelled the engine stops within one step, tears down the PUT's
	// goroutines, and returns a Result with Cancelled set. A nil (or
	// never-cancelled) context changes nothing — the check is one nil
	// test plus a non-blocking channel poll per step.
	Ctx context.Context
	// MaxSteps bounds the number of recorded events (livelock guard).
	// Zero means DefaultMaxSteps.
	MaxSteps int
	// Telemetry, if non-nil, receives per-execution engine metrics
	// (executions, steps-per-schedule histogram, truncations). Nil costs
	// a single branch per execution.
	Telemetry telemetry.Sink
	// Intern, if non-nil, is the campaign-shared abstract-event intern
	// table: the trace's Summary resolves events and reads-from pairs to
	// dense IDs through it, so feedback state keyed on those IDs stays
	// comparable across every execution of the campaign. Nil gives the
	// trace a private table on first Summary call.
	Intern *InternTable
	// Recycle, if non-nil, reuses trace backing arrays across executions
	// and pre-sizes the engine's thread/object tables from the previous
	// run (see Recycler). The caller must Reclaim each finished trace to
	// close the loop.
	Recycle *Recycler
}

// DefaultMaxSteps is the per-execution event budget used when
// Config.MaxSteps is zero.
const DefaultMaxSteps = 20000

// Result is the outcome of one controlled execution.
type Result struct {
	Program string
	Seed    int64
	Trace   *Trace
	// Failure is non-nil if the execution crashed (assertion, deadlock,
	// memory-safety, panic).
	Failure *Failure
	// Truncated reports that the step budget was exhausted before the
	// program finished (treated as a non-buggy execution).
	Truncated bool
	// Cancelled reports that Config.Ctx was cancelled mid-execution and
	// the run was abandoned. A cancelled execution is neither buggy nor
	// complete; callers should discard its (partial) trace after
	// reclaiming it.
	Cancelled bool
}

// Buggy reports whether the execution exposed a bug.
func (r *Result) Buggy() bool { return r.Failure != nil }

// Steps returns the number of events executed.
func (r *Result) Steps() int { return r.Trace.Len() }

type noteKind uint8

const (
	noteParked noteKind = iota + 1
	noteExited
)

type notice struct {
	th   *Thread
	kind noteKind
}

// Engine serializes one execution of a Program under a Scheduler. A fresh
// Engine is built per execution by Run; it is not reusable.
type Engine struct {
	cfg  Config
	name string

	threads   []*Thread // index = ThreadID-1
	objs      []*object // index = VarID-1
	objByName map[string]*object

	trace   *Trace
	notify  chan notice
	running int // PUT goroutines currently executing (not parked/exited)

	// done is Config.Ctx's cancellation channel (nil when no context was
	// supplied), polled once per scheduling step.
	done <-chan struct{}

	// Per-step scratch, reused across the whole execution: the candidate
	// list, the scheduler's View, and its Enabled slice are rebuilt in
	// place every scheduling point instead of allocated fresh.
	candBuf []*Thread
	view    View

	failure   *Failure
	truncated bool
	cancelled bool
	abort     bool
}

// Run executes program p to completion (or bug / deadlock / step budget)
// under cfg and returns the result. It is safe to call Run concurrently
// from multiple goroutines; each call owns an independent engine.
func Run(name string, p Program, cfg Config) *Result {
	if cfg.Scheduler == nil {
		panic("exec.Run: Config.Scheduler is required")
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	e := &Engine{
		cfg:    cfg,
		name:   name,
		trace:  &Trace{intern: cfg.Intern},
		notify: make(chan notice),
	}
	if cfg.Ctx != nil {
		e.done = cfg.Ctx.Done()
	}
	if r := cfg.Recycle; r != nil {
		// Adopt the previous execution's backing arrays and sizes: traces
		// of one program barely vary, so these capacities fit immediately.
		e.trace.Events, e.trace.Decisions = r.take()
		e.threads = make([]*Thread, 0, r.prevThreads)
		e.objs = make([]*object, 0, r.prevObjs)
		e.objByName = make(map[string]*object, r.prevObjs)
	} else {
		e.objByName = make(map[string]*object)
	}
	cfg.Scheduler.Begin(cfg.Seed)

	main := &Thread{name: "main", eng: e, body: p, grant: make(chan struct{})}
	e.addThread(main)
	main.state = tRunning
	e.running = 1
	go main.run()

	e.loop()
	e.teardown()

	cfg.Scheduler.End(e.trace)
	if r := cfg.Recycle; r != nil {
		r.record(len(e.threads), len(e.objs), e.trace.Len())
	}
	if t := cfg.Telemetry; t != nil {
		t.Add(telemetry.MEngineExecutions, 1)
		t.Observe(telemetry.MStepsPerSchedule, int64(e.trace.Len()))
		if e.truncated {
			t.Add(telemetry.MEngineTruncated, 1)
		}
	}
	return &Result{
		Program:   name,
		Seed:      cfg.Seed,
		Trace:     e.trace,
		Failure:   e.failure,
		Truncated: e.truncated,
		Cancelled: e.cancelled,
	}
}

// addThread registers a thread and assigns its ID.
func (e *Engine) addThread(th *Thread) {
	e.threads = append(e.threads, th)
	th.id = ThreadID(len(e.threads))
}

func (e *Engine) thread(id ThreadID) *Thread { return e.threads[id-1] }

// quiesce blocks until no PUT goroutine is running (all live threads are
// parked at pending events or have exited).
func (e *Engine) quiesce() {
	for e.running > 0 {
		n := <-e.notify
		e.running--
		switch n.kind {
		case noteParked:
			n.th.state = tParked
		case noteExited:
			n.th.state = tExited
		}
	}
}

// loop is the main scheduling loop: quiesce, collect enabled pendings, let
// the scheduler pick, execute one step.
func (e *Engine) loop() {
	for {
		e.quiesce()
		if e.failure != nil {
			return // thread panic or engine-detected misuse
		}
		if th := e.failedThread(); th != nil {
			p := th.pending
			e.record(Event{Thread: th.id, Op: OpFail, Loc: p.Loc})
			e.failure = &Failure{Kind: p.FailKind, Msg: p.FailMsg, Thread: th.id, Loc: p.Loc}
			return
		}
		if e.done != nil {
			select {
			case <-e.done:
				e.cancelled = true
				return
			default:
			}
		}
		cands := e.enabledThreads()
		if len(cands) == 0 {
			if blocked := e.parkedThreads(); len(blocked) > 0 {
				e.failure = e.deadlockFailure(blocked)
			}
			return // normal termination: every thread exited
		}
		if e.trace.Len() >= e.cfg.MaxSteps {
			e.truncated = true
			return
		}
		// Rebuild the scheduler's view in place: the View and its Enabled
		// slice are only valid for the duration of Pick (see Scheduler).
		enabled := e.view.Enabled[:0]
		for _, th := range cands {
			enabled = append(enabled, th.pending)
		}
		e.view = View{Step: e.trace.Len(), Enabled: enabled, eng: e}
		idx := e.cfg.Scheduler.Pick(&e.view)
		if idx < 0 || idx >= len(cands) {
			panic(fmt.Sprintf("exec: scheduler %q returned out-of-range index %d (enabled %d)",
				e.cfg.Scheduler.Name(), idx, len(cands)))
		}
		e.step(cands[idx])
	}
}

// parkedThreads returns live parked threads in thread-ID order.
func (e *Engine) parkedThreads() []*Thread {
	var out []*Thread
	for _, th := range e.threads {
		if th.state == tParked {
			out = append(out, th)
		}
	}
	return out
}

// enabledThreads returns parked threads whose pending event is enabled, in
// thread-ID order (the deterministic candidate order seen by schedulers).
// The returned slice is engine-owned scratch, overwritten each step.
func (e *Engine) enabledThreads() []*Thread {
	out := e.candBuf[:0]
	for _, th := range e.threads {
		if th.state == tParked && e.enabled(th) {
			out = append(out, th)
		}
	}
	e.candBuf = out
	return out
}

// enabled implements the enabledness rules: locks need a free mutex,
// condition reacquires additionally need a signal, joins need an exited
// target, unbuffered sends need a parked receiver, receives need a
// delivered value or a closed channel, WaitGroup waits need a zero
// counter; everything else is always enabled.
func (e *Engine) enabled(th *Thread) bool {
	p := th.pending
	switch p.Op {
	case OpLock:
		return e.objs[p.Var-1].holder == nil
	case OpLockRe:
		return th.signaled && e.objs[p.Var-1].holder == nil
	case OpJoin:
		return e.thread(p.Target).exited
	case OpRLock:
		return e.objs[p.Var-1].writer == nil
	case OpWLock:
		o := e.objs[p.Var-1]
		return o.writer == nil && o.readers == 0
	case OpSemWait:
		return e.objs[p.Var-1].val > 0
	case OpBarrier:
		o := e.objs[p.Var-1]
		if o.releasing[th] {
			return true
		}
		return e.barrierArrivals(o) >= int(o.val)
	case OpSend:
		o := e.objs[p.Var-1]
		if o.closed {
			return true // crashes with send-on-closed when scheduled
		}
		if o.cap > 0 {
			return len(o.buf) < o.cap
		}
		return e.chanReceiver(o, th) != nil
	case OpRecv:
		if th.chanMatched {
			return true
		}
		o := e.objs[p.Var-1]
		return len(o.buf) > 0 || o.closed
	case OpSelect:
		if th.chanMatched {
			return true
		}
		for _, c := range p.Cases {
			if e.caseReady(c, th) {
				return true
			}
		}
		return false
	case OpWgWait:
		return e.objs[p.Var-1].val == 0
	default:
		return true
	}
}

// chanReceiver returns the lowest-ID parked thread able to complete a
// rendezvous on the unbuffered channel o: an unmatched thread pending a
// receive on o, or a select containing a receive case on o. The sender
// itself is excluded (a thread cannot rendezvous with itself); nil when
// no receiver is available.
func (e *Engine) chanReceiver(o *object, sender *Thread) *Thread {
	for _, th := range e.threads {
		if th == sender || th.state != tParked || th.chanMatched {
			continue
		}
		p := th.pending
		if p.Op == OpRecv && p.Var == o.id {
			return th
		}
		if p.Op == OpSelect {
			for _, c := range p.Cases {
				if !c.Send && c.Ch.obj == o {
					return th
				}
			}
		}
	}
	return nil
}

// recvCaseIndex returns the index of the first receive case on o in the
// select pending p. The match that set chanMatched guarantees one exists.
func recvCaseIndex(p Pending, o *object) int {
	for i, c := range p.Cases {
		if !c.Send && c.Ch.obj == o {
			return i
		}
	}
	panic("exec: matched select has no receive case on the channel")
}

// caseReady reports whether one select arm of thread th could fire right
// now. A send arm on a closed channel counts as ready: firing it crashes
// with send-on-closed, exactly like a plain send.
func (e *Engine) caseReady(c SelectCase, th *Thread) bool {
	o := c.Ch.obj
	if c.Send {
		if o.closed {
			return true
		}
		if o.cap > 0 {
			return len(o.buf) < o.cap
		}
		return e.chanReceiver(o, th) != nil
	}
	return len(o.buf) > 0 || o.closed
}

// barrierArrivals counts the threads parked at the barrier for the
// *current* generation — waiters already released but not yet scheduled
// belong to the previous generation and must not count.
func (e *Engine) barrierArrivals(o *object) int {
	n := 0
	for _, th := range e.threads {
		if th.state == tParked && th.pending.Op == OpBarrier && th.pending.Var == o.id && !o.releasing[th] {
			n++
		}
	}
	return n
}

// failedThread returns the thread parked at an OpFail pending, if any. At
// most one can appear per quiesce since only one thread ran.
func (e *Engine) failedThread() *Thread {
	for _, th := range e.threads {
		if th.state == tParked && th.pending.Op == OpFail {
			return th
		}
	}
	return nil
}

func (e *Engine) liveCount() int {
	n := 0
	for _, th := range e.threads {
		if th.state != tExited {
			n++
		}
	}
	return n
}

// record appends an event to the trace, assigns its ID, and reports it to
// the scheduler. Returns the event ID.
func (e *Engine) record(ev Event) int {
	ev.ID = e.trace.Len() + 1
	e.trace.Events = append(e.trace.Events, ev)
	e.cfg.Scheduler.Executed(ev)
	return ev.ID
}

// resume grants the thread its step; it runs PUT code until its next park
// or exit.
func (e *Engine) resume(th *Thread) {
	th.state = tRunning
	e.running++
	th.grant <- struct{}{}
}

// misuse reports incorrect API usage by the PUT (e.g. unlocking an unheld
// mutex) as a crash, matching undefined-behaviour outcomes in pthreads.
func (e *Engine) misuse(th *Thread, msg string) {
	e.failure = &Failure{Kind: FailPanic, Msg: msg, Thread: th.id, Loc: th.pending.Loc}
}

// step executes the chosen thread's pending event: applies its semantics to
// the shared state, records trace events, and resumes the thread.
func (e *Engine) step(th *Thread) {
	p := th.pending
	e.trace.Decisions = append(e.trace.Decisions, th.id)
	switch p.Op {
	case OpVarInit:
		o := th.newObj
		th.newObj = nil
		if _, dup := e.objByName[o.name]; dup {
			e.misuse(th, fmt.Sprintf("duplicate shared object name %q", o.name))
			return
		}
		e.objs = append(e.objs, o)
		o.id = VarID(len(e.objs))
		e.objByName[o.name] = o
		ev := Event{Thread: th.id, Op: OpVarInit, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val}
		o.lastWrite = e.record(ev)
		e.resume(th)

	case OpRead:
		o := e.objs[p.Var-1]
		e.record(Event{Thread: th.id, Op: OpRead, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val, RF: o.lastWrite, Atomic: p.RMW != RMWNone})
		th.retVal = o.val
		th.retOK = false
		switch p.RMW {
		case RMWNone:
		case RMWCAS:
			if o.val == p.CASOld {
				o.val = p.Val
				o.lastWrite = e.record(Event{Thread: th.id, Op: OpWrite, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val, Atomic: true})
				th.retOK = true
			}
		case RMWAdd:
			o.val += p.Val
			o.lastWrite = e.record(Event{Thread: th.id, Op: OpWrite, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val, Atomic: true})
		case RMWSwap:
			o.val = p.Val
			o.lastWrite = e.record(Event{Thread: th.id, Op: OpWrite, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val, Atomic: true})
		}
		e.resume(th)

	case OpWrite:
		o := e.objs[p.Var-1]
		o.val = p.Val
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpWrite, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val})
		e.resume(th)

	case OpLock:
		// A lock acquisition reads the lock word released by the last
		// unlock/wait (or the initializer) and overwrites it — so it both
		// carries a reads-from edge and is a reads-from source.
		o := e.objs[p.Var-1]
		o.holder = th
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpLock, Var: o.id, VarStr: o.name, Loc: p.Loc, RF: o.lastWrite})
		e.resume(th)

	case OpUnlock:
		o := e.objs[p.Var-1]
		if o.holder != th {
			e.misuse(th, fmt.Sprintf("unlock of mutex %q not held by thread %d", o.name, th.id))
			return
		}
		o.holder = nil
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpUnlock, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpWait:
		o := e.objs[p.Var-1]
		m := o.mutex.obj
		if m.holder != th {
			e.misuse(th, fmt.Sprintf("wait on condition %q without holding mutex %q", o.name, m.name))
			return
		}
		m.holder = nil
		o.waiters = append(o.waiters, th)
		// The wait releases the mutex: its event becomes the mutex
		// word's last write, so the next acquisition reads-from it.
		m.lastWrite = e.record(Event{Thread: th.id, Op: OpWait, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th) // thread immediately reparks at OpLockRe

	case OpLockRe:
		o := e.objs[p.Var-1]
		o.holder = th
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpLockRe, Var: o.id, VarStr: o.name, Loc: p.Loc, RF: o.lastWrite})
		e.resume(th)

	case OpSignal:
		o := e.objs[p.Var-1]
		if len(o.waiters) > 0 {
			w := o.waiters[0]
			o.waiters = o.waiters[1:]
			w.signaled = true
		}
		e.record(Event{Thread: th.id, Op: OpSignal, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpBroadcast:
		o := e.objs[p.Var-1]
		for _, w := range o.waiters {
			w.signaled = true
		}
		o.waiters = nil
		e.record(Event{Thread: th.id, Op: OpBroadcast, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpSpawn:
		child := th.newChild
		th.newChild = nil
		e.addThread(child)
		child.state = tParked
		child.pending = Pending{Thread: child.id, Op: OpBegin, Loc: p.Loc}
		e.record(Event{Thread: th.id, Op: OpSpawn, Loc: p.Loc, Target: child.id})
		e.resume(th)

	case OpBegin:
		e.record(Event{Thread: th.id, Op: OpBegin, Loc: p.Loc})
		th.state = tRunning
		e.running++
		go th.run()

	case OpJoin:
		e.record(Event{Thread: th.id, Op: OpJoin, Loc: p.Loc, Target: p.Target})
		e.resume(th)

	case OpYield:
		e.record(Event{Thread: th.id, Op: OpYield, Loc: p.Loc})
		e.resume(th)

	case OpTryLock:
		o := e.objs[p.Var-1]
		ev := Event{Thread: th.id, Op: OpTryLock, Var: o.id, VarStr: o.name, Loc: p.Loc}
		if o.holder == nil {
			o.holder = th
			ev.Val = 1
			ev.RF = o.lastWrite
			o.lastWrite = e.record(ev)
			th.retOK = true
		} else {
			e.record(ev) // failed attempt: no edge, no word update
			th.retOK = false
		}
		e.resume(th)

	case OpRLock:
		o := e.objs[p.Var-1]
		o.readers++
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpRLock, Var: o.id, VarStr: o.name, Loc: p.Loc, RF: o.lastWrite})
		e.resume(th)

	case OpRUnlock:
		o := e.objs[p.Var-1]
		if o.readers == 0 {
			e.misuse(th, fmt.Sprintf("read-unlock of rwlock %q with no readers", o.name))
			return
		}
		o.readers--
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpRUnlock, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpWLock:
		o := e.objs[p.Var-1]
		o.writer = th
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpWLock, Var: o.id, VarStr: o.name, Loc: p.Loc, RF: o.lastWrite})
		e.resume(th)

	case OpWUnlock:
		o := e.objs[p.Var-1]
		if o.writer != th {
			e.misuse(th, fmt.Sprintf("write-unlock of rwlock %q not held by thread %d", o.name, th.id))
			return
		}
		o.writer = nil
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpWUnlock, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpSemWait:
		o := e.objs[p.Var-1]
		o.val--
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpSemWait, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val, RF: o.lastWrite})
		e.resume(th)

	case OpSemPost:
		o := e.objs[p.Var-1]
		o.val++
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpSemPost, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val})
		e.resume(th)

	case OpBarrier:
		o := e.objs[p.Var-1]
		if !o.releasing[th] {
			// Final arrival: open the gate for everyone parked here.
			if o.releasing == nil {
				o.releasing = make(map[*Thread]bool)
			}
			for _, other := range e.threads {
				if other.state == tParked && other.pending.Op == OpBarrier && other.pending.Var == o.id {
					o.releasing[other] = true
				}
			}
		}
		delete(o.releasing, th)
		e.record(Event{Thread: th.id, Op: OpBarrier, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpSend:
		o := e.objs[p.Var-1]
		if e.execSend(th, o, p.Val, p.Loc) {
			e.resume(th)
		}

	case OpRecv:
		o := e.objs[p.Var-1]
		e.execRecv(th, o, p.Loc)
		e.resume(th)

	case OpClose:
		o := e.objs[p.Var-1]
		if o.closed {
			e.failure = &Failure{Kind: FailCloseClosed,
				Msg: fmt.Sprintf("close of closed channel %q", o.name), Thread: th.id, Loc: p.Loc}
			return
		}
		o.closed = true
		o.closeEv = e.record(Event{Thread: th.id, Op: OpClose, Var: o.id, VarStr: o.name, Loc: p.Loc})
		e.resume(th)

	case OpTrySend:
		o := e.objs[p.Var-1]
		if o.closed {
			e.failure = &Failure{Kind: FailSendClosed,
				Msg: fmt.Sprintf("send on closed channel %q", o.name), Thread: th.id, Loc: p.Loc}
			return
		}
		ev := Event{Thread: th.id, Op: OpTrySend, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: p.Val}
		th.retOK = false
		switch {
		case o.cap > 0 && len(o.buf) < o.cap:
			ev.Ok = true
			id := e.record(ev)
			o.buf = append(o.buf, chanElem{val: p.Val, src: id})
			th.retOK = true
		case o.cap == 0:
			if rcv := e.chanReceiver(o, th); rcv != nil {
				ev.Ok = true
				e.deliver(rcv, o, p.Val, e.record(ev))
				th.retOK = true
			} else {
				e.record(ev) // would block: recorded no-op, no edge
			}
		default:
			e.record(ev) // buffer full: recorded no-op, no edge
		}
		e.resume(th)

	case OpTryRecv:
		o := e.objs[p.Var-1]
		ev := Event{Thread: th.id, Op: OpTryRecv, Var: o.id, VarStr: o.name, Loc: p.Loc}
		th.retVal, th.retOK, th.retRecvd = 0, false, false
		switch {
		case len(o.buf) > 0:
			el := o.buf[0]
			o.buf = o.buf[1:]
			ev.Val, ev.RF, ev.Ok = el.val, el.src, true
			th.retVal, th.retOK, th.retRecvd = el.val, true, true
		case o.closed:
			ev.RF = o.closeEv // closed and drained: reads-from the close
			th.retRecvd = true
		}
		e.record(ev)
		e.resume(th)

	case OpSelect:
		if th.chanMatched {
			// A sender already committed this select to its matched
			// receive case; complete the handoff.
			i := th.chanCase
			e.execRecv(th, p.Cases[i].Ch.obj, p.Loc)
			th.retCase = i
			e.resume(th)
			return
		}
		fired := -1
		for i, c := range p.Cases {
			if e.caseReady(c, th) {
				fired = i
				break
			}
		}
		if fired < 0 {
			panic("exec: select scheduled with no ready case")
		}
		c := p.Cases[fired]
		th.retCase = fired
		if c.Send {
			if !e.execSend(th, c.Ch.obj, c.Val, p.Loc) {
				return // send-on-closed crash
			}
			th.retVal, th.retOK = 0, true
		} else {
			e.execRecv(th, c.Ch.obj, p.Loc)
		}
		e.resume(th)

	case OpWgAdd:
		o := e.objs[p.Var-1]
		o.val += p.Val
		if o.val < 0 {
			e.misuse(th, fmt.Sprintf("negative WaitGroup counter on %q", o.name))
			return
		}
		o.lastWrite = e.record(Event{Thread: th.id, Op: OpWgAdd, Var: o.id, VarStr: o.name, Loc: p.Loc, Val: o.val})
		e.resume(th)

	case OpWgWait:
		o := e.objs[p.Var-1]
		e.record(Event{Thread: th.id, Op: OpWgWait, Var: o.id, VarStr: o.name, Loc: p.Loc, RF: o.lastWrite})
		e.resume(th)

	default:
		panic(fmt.Sprintf("exec: unschedulable pending op %v", p.Op))
	}
}

// execSend applies send semantics for th on channel o at loc: crash on a
// closed channel, enqueue on a buffered one, deliver into the matched
// receiver's transfer slot on a rendezvous. Returns false when the send
// crashed (the execution ends; th is not resumed).
func (e *Engine) execSend(th *Thread, o *object, val int64, loc string) bool {
	if o.closed {
		e.failure = &Failure{Kind: FailSendClosed,
			Msg: fmt.Sprintf("send on closed channel %q", o.name), Thread: th.id, Loc: loc}
		return false
	}
	ev := Event{Thread: th.id, Op: OpSend, Var: o.id, VarStr: o.name, Loc: loc, Val: val}
	if o.cap > 0 {
		id := e.record(ev)
		o.buf = append(o.buf, chanElem{val: val, src: id})
		return true
	}
	rcv := e.chanReceiver(o, th)
	if rcv == nil {
		panic("exec: unbuffered send scheduled with no receiver parked")
	}
	e.deliver(rcv, o, val, e.record(ev))
	return true
}

// deliver deposits a rendezvous value into the receiver's transfer slot.
// The receiver's pending (plain receive or select) becomes enabled and
// records its receive event — reading-from sendID — when scheduled.
func (e *Engine) deliver(rcv *Thread, o *object, val int64, sendID int) {
	rcv.chanMatched = true
	rcv.chanVal = val
	rcv.chanRF = sendID
	if rcv.pending.Op == OpSelect {
		rcv.chanCase = recvCaseIndex(rcv.pending, o)
	} else {
		rcv.chanCase = 0
	}
}

// execRecv applies receive semantics for th on channel o at loc: drain
// the transfer slot (rendezvous match), pop the buffer head, or observe
// the close of a drained channel. Sets the thread's return values.
func (e *Engine) execRecv(th *Thread, o *object, loc string) {
	ev := Event{Thread: th.id, Op: OpRecv, Var: o.id, VarStr: o.name, Loc: loc}
	switch {
	case th.chanMatched:
		th.chanMatched = false
		ev.Val, ev.RF, ev.Ok = th.chanVal, th.chanRF, true
	case len(o.buf) > 0:
		el := o.buf[0]
		o.buf = o.buf[1:]
		ev.Val, ev.RF, ev.Ok = el.val, el.src, true
	default: // closed and drained: the zero value, reading-from the close
		ev.RF = o.closeEv
	}
	e.record(ev)
	th.retVal, th.retOK = ev.Val, ev.Ok
}

// deadlockFailure builds the failure report for a detected deadlock.
func (e *Engine) deadlockFailure(blocked []*Thread) *Failure {
	var b strings.Builder
	for i, th := range blocked {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "t%d(%s) blocked at %s", th.id, th.name, th.pending.Op)
		if th.pending.VarName != "" {
			fmt.Fprintf(&b, "(%s)", th.pending.VarName)
		}
		if th.pending.Loc != "" {
			fmt.Fprintf(&b, "@%s", th.pending.Loc)
		}
	}
	return &Failure{Kind: FailDeadlock, Msg: b.String()}
}

// teardown unwinds every remaining thread: parked goroutines are granted
// with the abort flag set, making their next park panic through the PUT
// body; threads never started (parked at OpBegin) are simply marked
// exited. After teardown no PUT goroutine of this engine survives.
func (e *Engine) teardown() {
	e.abort = true
	for _, th := range e.threads {
		if th.state != tParked {
			continue
		}
		if th.pending.Op == OpBegin {
			th.state = tExited
			th.exited = true
			continue
		}
		th.state = tRunning
		e.running++
		th.grant <- struct{}{}
		e.quiesce()
	}
}
