package exec

import "fmt"

// FailureKind classifies the bug oracles the engine reports, mirroring the
// paper's evaluation (assertion violations, deadlocks, memory-safety
// failures detected by a crash oracle).
type FailureKind uint8

const (
	// FailAssert is a violated Thread.Assert — the dominant bug class in
	// SCTBench (34/49 programs).
	FailAssert FailureKind = iota + 1
	// FailDeadlock is reported by the engine's built-in deadlock detector
	// when live threads remain but no pending event is enabled.
	FailDeadlock
	// FailMemory is a simulated memory-safety violation (use-after-free,
	// null dereference, double free) raised by Thread.FailMemory; it is
	// the stand-in for the segfault oracle on the ConVul CVE programs.
	FailMemory
	// FailPanic is a runtime panic escaping PUT code (e.g. an index out
	// of range in thread-local logic) — the analogue of a native crash.
	FailPanic
	// FailSendClosed is a send (or non-blocking send attempt) on a closed
	// channel — the Go runtime panic "send on closed channel", promoted
	// to its own kind because it is the signature channel-race bug class.
	FailSendClosed
	// FailCloseClosed is a close of an already-closed channel (Go's
	// "close of closed channel" panic).
	FailCloseClosed
)

var failureNames = [...]string{
	FailAssert:      "assertion violation",
	FailDeadlock:    "deadlock",
	FailMemory:      "memory-safety violation",
	FailPanic:       "panic",
	FailSendClosed:  "send on closed channel",
	FailCloseClosed: "close of closed channel",
}

// NumFailureKinds is the number of defined kinds (including the zero
// "unknown"); valid kinds are FailureKind(1) .. FailureKind(NumFailureKinds-1).
// Consumers that invert String (e.g. artifact decoding, triage) range
// over this instead of naming the last kind.
const NumFailureKinds = len(failureNames)

// String names the failure kind.
func (k FailureKind) String() string {
	if int(k) < len(failureNames) && failureNames[k] != "" {
		return failureNames[k]
	}
	return "unknown failure"
}

// Failure describes a bug manifestation in one execution.
type Failure struct {
	Kind   FailureKind
	Msg    string
	Thread ThreadID // thread that failed (0 for deadlock)
	Loc    string   // source location of the failing operation, if known
}

// Error implements the error interface so a Failure can flow through error
// plumbing in harnesses.
func (f *Failure) Error() string {
	if f.Loc != "" {
		return fmt.Sprintf("%s at %s (thread %d): %s", f.Kind, f.Loc, f.Thread, f.Msg)
	}
	return fmt.Sprintf("%s (thread %d): %s", f.Kind, f.Thread, f.Msg)
}
