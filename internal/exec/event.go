package exec

import (
	"fmt"
	"sort"
	"strings"
)

// Event is one executed step of a concrete schedule: the paper's
// e = <id, t, op(x)@l> extended with the observed/stored value and, for
// reads, the reads-from edge.
type Event struct {
	ID     int      // 1-based position in the trace
	Thread ThreadID // executing thread
	Op     Op
	Var    VarID  // shared object operated on (0 if none, e.g. spawn/yield)
	VarStr string // stable name of the shared object ("" if none)
	Loc    string // source location of the operation
	Val    int64  // value read or written (reads/writes/init only)
	RF     int    // reads only: trace ID of the write event observed
	// Atomic marks the read/write halves of atomic RMWs (CAS,
	// fetch-add, swap): they synchronize rather than race, which the
	// happens-before race detector relies on.
	Atomic bool
	// Ok marks successful channel operations: a receive that observed a
	// sent value (false for the zero value of a closed drained channel)
	// and a try-send/try-recv that went through. False elsewhere.
	Ok     bool
	Target ThreadID
	// Target is the spawned thread for OpSpawn and the joined thread for
	// OpJoin; 0 otherwise.
}

// Abstract projects the concrete event to its abstract event op(x)@loc.
func (e Event) Abstract() AbstractEvent {
	return AbstractEvent{Op: e.Op, Var: e.VarStr, Loc: e.Loc}
}

// String renders the event compactly for logs and test diagnostics.
func (e Event) String() string {
	s := fmt.Sprintf("#%d t%d %s", e.ID, e.Thread, e.Op)
	if e.VarStr != "" {
		s += "(" + e.VarStr + ")"
	}
	if e.Loc != "" {
		s += "@" + e.Loc
	}
	switch {
	case e.Op.IsRead():
		s += fmt.Sprintf("=%d<-#%d", e.Val, e.RF)
	case e.Op.IsWrite():
		s += fmt.Sprintf("=%d", e.Val)
	case e.Op == OpRecv || e.Op == OpTryRecv:
		s += fmt.Sprintf("=%d,ok=%t<-#%d", e.Val, e.Ok, e.RF)
	case e.Op == OpSend || e.Op == OpTrySend:
		s += fmt.Sprintf("=%d", e.Val)
		if e.Op == OpTrySend {
			s += fmt.Sprintf(",ok=%t", e.Ok)
		}
	case e.Op == OpSpawn || e.Op == OpJoin:
		s += fmt.Sprintf("->t%d", e.Target)
	}
	return s
}

// Trace is the concrete schedule observed by one execution: the ordered
// event sequence plus the reads-from function (stored on the read events
// themselves).
type Trace struct {
	Events []Event
	// Decisions records the thread chosen at each scheduling point, in
	// order. Unlike Events it is exactly one entry per scheduler Pick
	// (an RMW records two events for one decision), so feeding it to a
	// replay scheduler reproduces the trace.
	Decisions []ThreadID

	// intern resolves abstract events to dense IDs in the memoized
	// summary: the campaign-shared table when the execution ran with
	// Config.Intern, a lazily created private table otherwise.
	intern *InternTable
	// summary memoizes the single-pass feedback digest (pairs, signature,
	// abstract events) so every consumer shares one derivation.
	summary       *Summary
	summaryBuilds int
}

// Len returns the number of events in the trace.
func (t *Trace) Len() int { return len(t.Events) }

// Event returns the event with trace ID id (1-based).
func (t *Trace) Event(id int) Event { return t.Events[id-1] }

// RFPairs returns the abstract reads-from pairs of the trace, one per read
// event, deduplicated and sorted deterministically. This is the feedback
// signal of the fuzzer: an execution is interesting when it exhibits a pair
// never seen before. The slice is the memoized Summary's and must not be
// mutated.
func (t *Trace) RFPairs() []RFPair { return t.Summary().Pairs }

// SortRFPairs orders pairs deterministically (by read then write).
func SortRFPairs(pairs []RFPair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Read != pairs[j].Read {
			return lessAbstract(pairs[i].Read, pairs[j].Read)
		}
		return lessAbstract(pairs[i].Write, pairs[j].Write)
	})
}

func lessAbstract(a, b AbstractEvent) bool {
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.Loc != b.Loc {
		return a.Loc < b.Loc
	}
	return a.Op < b.Op
}

// RFSignature hashes the trace's reads-from combination — the set of
// abstract reads-from pairs — to a single value. Two reads-from equivalent
// executions have equal signatures; the fuzzer's power schedule counts how
// often each signature has been observed (the paper's f(alpha)), and the
// Figure 5 experiment plots the frequency distribution of signatures.
func (t *Trace) RFSignature() uint64 { return t.Summary().Sig }

// HashRFPair hashes one reads-from pair; the commutative combination of
// pair hashes (XOR) is the state abstraction used by the Q-Learning-RF
// baseline (Section 5.5). The hash is inline FNV-1a over the pair's string
// encoding — allocation-free, and bit-identical to the historical
// hash/fnv-based implementation.
func HashRFPair(p RFPair) uint64 {
	h := fnvAbstract(uint64(fnvOffset64), p.Write)
	h = fnvByte(h, 1)
	return fnvAbstract(h, p.Read)
}

// AbstractEvents returns the deduplicated, deterministically ordered
// abstract events observed by the trace. The fuzzer accumulates these into
// its event pool E, from which mutation constraints are drawn. The slice
// is the memoized Summary's and must not be mutated.
func (t *Trace) AbstractEvents() []AbstractEvent { return t.Summary().Events }

// ThreadOrder returns a copy of the scheduling decisions of the run;
// feeding it to a replay scheduler reproduces the trace exactly.
func (t *Trace) ThreadOrder() []ThreadID {
	order := make([]ThreadID, len(t.Decisions))
	copy(order, t.Decisions)
	return order
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
