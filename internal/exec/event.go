package exec

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Event is one executed step of a concrete schedule: the paper's
// e = <id, t, op(x)@l> extended with the observed/stored value and, for
// reads, the reads-from edge.
type Event struct {
	ID     int      // 1-based position in the trace
	Thread ThreadID // executing thread
	Op     Op
	Var    VarID  // shared object operated on (0 if none, e.g. spawn/yield)
	VarStr string // stable name of the shared object ("" if none)
	Loc    string // source location of the operation
	Val    int64  // value read or written (reads/writes/init only)
	RF     int    // reads only: trace ID of the write event observed
	// Atomic marks the read/write halves of atomic RMWs (CAS,
	// fetch-add, swap): they synchronize rather than race, which the
	// happens-before race detector relies on.
	Atomic bool
	Target ThreadID
	// Target is the spawned thread for OpSpawn and the joined thread for
	// OpJoin; 0 otherwise.
}

// Abstract projects the concrete event to its abstract event op(x)@loc.
func (e Event) Abstract() AbstractEvent {
	return AbstractEvent{Op: e.Op, Var: e.VarStr, Loc: e.Loc}
}

// String renders the event compactly for logs and test diagnostics.
func (e Event) String() string {
	s := fmt.Sprintf("#%d t%d %s", e.ID, e.Thread, e.Op)
	if e.VarStr != "" {
		s += "(" + e.VarStr + ")"
	}
	if e.Loc != "" {
		s += "@" + e.Loc
	}
	switch {
	case e.Op.IsRead():
		s += fmt.Sprintf("=%d<-#%d", e.Val, e.RF)
	case e.Op.IsWrite():
		s += fmt.Sprintf("=%d", e.Val)
	case e.Op == OpSpawn || e.Op == OpJoin:
		s += fmt.Sprintf("->t%d", e.Target)
	}
	return s
}

// Trace is the concrete schedule observed by one execution: the ordered
// event sequence plus the reads-from function (stored on the read events
// themselves).
type Trace struct {
	Events []Event
	// Decisions records the thread chosen at each scheduling point, in
	// order. Unlike Events it is exactly one entry per scheduler Pick
	// (an RMW records two events for one decision), so feeding it to a
	// replay scheduler reproduces the trace.
	Decisions []ThreadID
}

// Len returns the number of events in the trace.
func (t *Trace) Len() int { return len(t.Events) }

// Event returns the event with trace ID id (1-based).
func (t *Trace) Event(id int) Event { return t.Events[id-1] }

// RFPairs extracts the abstract reads-from pairs of the trace, one per read
// event, deduplicated and sorted deterministically. This is the feedback
// signal of the fuzzer: an execution is interesting when it exhibits a pair
// never seen before.
func (t *Trace) RFPairs() []RFPair {
	seen := make(map[RFPair]struct{})
	var pairs []RFPair
	for _, e := range t.Events {
		if !e.Op.ReadsFrom() || e.RF == 0 {
			continue
		}
		p := RFPair{Write: t.Event(e.RF).Abstract(), Read: e.Abstract()}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		pairs = append(pairs, p)
	}
	SortRFPairs(pairs)
	return pairs
}

// SortRFPairs orders pairs deterministically (by read then write).
func SortRFPairs(pairs []RFPair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Read != pairs[j].Read {
			return lessAbstract(pairs[i].Read, pairs[j].Read)
		}
		return lessAbstract(pairs[i].Write, pairs[j].Write)
	})
}

func lessAbstract(a, b AbstractEvent) bool {
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.Loc != b.Loc {
		return a.Loc < b.Loc
	}
	return a.Op < b.Op
}

// RFSignature hashes the trace's reads-from combination — the set of
// abstract reads-from pairs — to a single value. Two reads-from equivalent
// executions have equal signatures; the fuzzer's power schedule counts how
// often each signature has been observed (the paper's f(alpha)), and the
// Figure 5 experiment plots the frequency distribution of signatures.
func (t *Trace) RFSignature() uint64 {
	h := fnv.New64a()
	for _, p := range t.RFPairs() {
		h.Write([]byte(p.Write.Var))
		h.Write([]byte{byte(p.Write.Op)})
		h.Write([]byte(p.Write.Loc))
		h.Write([]byte(p.Read.Var))
		h.Write([]byte{byte(p.Read.Op)})
		h.Write([]byte(p.Read.Loc))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// HashRFPair hashes one reads-from pair; the commutative combination of
// pair hashes (XOR) is the state abstraction used by the Q-Learning-RF
// baseline (Section 5.5).
func HashRFPair(p RFPair) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.Write.Var))
	h.Write([]byte{byte(p.Write.Op)})
	h.Write([]byte(p.Write.Loc))
	h.Write([]byte{1})
	h.Write([]byte(p.Read.Var))
	h.Write([]byte{byte(p.Read.Op)})
	h.Write([]byte(p.Read.Loc))
	return h.Sum64()
}

// AbstractEvents returns the deduplicated, deterministically ordered
// abstract events observed by the trace. The fuzzer accumulates these into
// its event pool E, from which mutation constraints are drawn.
func (t *Trace) AbstractEvents() []AbstractEvent {
	seen := make(map[AbstractEvent]struct{})
	var evs []AbstractEvent
	for _, e := range t.Events {
		a := e.Abstract()
		if a.Var == "" {
			continue // spawn/yield/etc. carry no shared object
		}
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		evs = append(evs, a)
	}
	sort.Slice(evs, func(i, j int) bool { return lessAbstract(evs[i], evs[j]) })
	return evs
}

// ThreadOrder returns a copy of the scheduling decisions of the run;
// feeding it to a replay scheduler reproduces the trace exactly.
func (t *Trace) ThreadOrder() []ThreadID {
	order := make([]ThreadID, len(t.Decisions))
	copy(order, t.Decisions)
	return order
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
