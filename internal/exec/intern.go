package exec

import "sync"

// EventID is the dense identifier of an interned AbstractEvent. IDs are
// assigned in first-intern order starting at 0, so a deterministic
// campaign (fixed program and seed) assigns identical IDs across runs.
// Feedback state keys on EventIDs (and on PairIDs built from them) instead
// of multi-string structs, which turns the hot-path map operations of the
// fuzzing loop into integer hashing.
type EventID uint32

// PairID packs an abstract reads-from pair into a single comparable word:
// the interned write event in the high 32 bits, the read in the low 32.
// Two pairs interned through the same table are equal iff their PairIDs
// are.
type PairID uint64

// MakePairID packs (write, read) into a PairID.
func MakePairID(write, read EventID) PairID {
	return PairID(write)<<32 | PairID(read)
}

// WriteID returns the interned write event of the pair.
func (p PairID) WriteID() EventID { return EventID(p >> 32) }

// ReadID returns the interned read event of the pair.
func (p PairID) ReadID() EventID { return EventID(p & 0xffffffff) }

// InternTable maps AbstractEvents to dense EventIDs. A campaign shares one
// table across all of its executions (the fuzzer threads it through
// exec.Config), so abstract-event identities — and everything keyed on
// them — survive across executions as plain integers. The table is
// mutex-guarded: campaigns are single-threaded so the lock is uncontended,
// but a shared table stays safe if traces are summarized concurrently.
type InternTable struct {
	mu     sync.Mutex
	ids    map[AbstractEvent]EventID
	events []AbstractEvent
}

// NewInternTable returns an empty table.
func NewInternTable() *InternTable {
	return &InternTable{ids: make(map[AbstractEvent]EventID, 64)}
}

// Intern returns the dense ID of ae, assigning the next free ID on first
// sight.
func (t *InternTable) Intern(ae AbstractEvent) EventID {
	t.mu.Lock()
	id, ok := t.ids[ae]
	if !ok {
		id = EventID(len(t.events))
		t.ids[ae] = id
		t.events = append(t.events, ae)
	}
	t.mu.Unlock()
	return id
}

// Event returns the AbstractEvent interned under id. It panics on IDs the
// table never assigned.
func (t *InternTable) Event(id EventID) AbstractEvent {
	t.mu.Lock()
	ae := t.events[id]
	t.mu.Unlock()
	return ae
}

// Pair returns the RFPair packed into pid.
func (t *InternTable) Pair(pid PairID) RFPair {
	t.mu.Lock()
	p := RFPair{Write: t.events[pid.WriteID()], Read: t.events[pid.ReadID()]}
	t.mu.Unlock()
	return p
}

// Len returns the number of distinct events interned so far.
func (t *InternTable) Len() int {
	t.mu.Lock()
	n := len(t.events)
	t.mu.Unlock()
	return n
}

// Events returns a snapshot of the interned events in ID order —
// events[i] is the event with EventID i. Used by determinism tests and
// diagnostics.
func (t *InternTable) Events() []AbstractEvent {
	t.mu.Lock()
	out := append([]AbstractEvent(nil), t.events...)
	t.mu.Unlock()
	return out
}

// FNV-1a, inlined over strings so hashing the hot path's abstract events
// allocates nothing: hash/fnv's Write takes []byte, and converting the
// Var/Loc strings per call was a measurable share of the observe phase.
// The constants and byte order match hash/fnv.New64a exactly, keeping
// every signature bit-identical to the pre-interning implementation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds s into the running FNV-1a state h.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvByte folds one byte into the running FNV-1a state h.
func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// fnvAbstract folds an abstract event's (Var, Op, Loc) encoding into h —
// the per-event unit of the signature and pair-hash streams.
func fnvAbstract(h uint64, ae AbstractEvent) uint64 {
	h = fnvString(h, ae.Var)
	h = fnvByte(h, byte(ae.Op))
	return fnvString(h, ae.Loc)
}
