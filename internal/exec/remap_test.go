package exec

import (
	"math/rand"
	"testing"
)

// randAbstract draws a small random abstract event; the narrow value
// space forces heavy overlap between independently built tables.
func randAbstract(rng *rand.Rand) AbstractEvent {
	ops := []Op{OpRead, OpWrite, OpLock, OpUnlock}
	vars := []string{"x", "y", "z", "m"}
	locs := []string{"a.go:1", "a.go:2", "b.go:7", "c.go:9"}
	return AbstractEvent{
		Op:  ops[rng.Intn(len(ops))],
		Var: vars[rng.Intn(len(vars))],
		Loc: locs[rng.Intn(len(locs))],
	}
}

// TestRemapperPreservesEventIdentity checks the Remapper contract on two
// independently built tables: source IDs naming equal abstract events
// remap to one destination ID, and unequal events stay apart.
func TestRemapperPreservesEventIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, global := NewInternTable(), NewInternTable(), NewInternTable()

	// Intern overlapping event streams in different orders so a and b
	// disagree about nearly every dense ID.
	var aIDs, bIDs []EventID
	for i := 0; i < 200; i++ {
		aIDs = append(aIDs, a.Intern(randAbstract(rng)))
		bIDs = append(bIDs, b.Intern(randAbstract(rng)))
	}

	ra, rb := NewRemapper(a, global), NewRemapper(b, global)
	for _, ida := range aIDs {
		for _, idb := range bIDs {
			ga, gb := ra.Remap(ida), rb.Remap(idb)
			same := a.Event(ida) == b.Event(idb)
			if same != (ga == gb) {
				t.Fatalf("remap broke identity: a[%d]=%v -> %d, b[%d]=%v -> %d",
					ida, a.Event(ida), ga, idb, b.Event(idb), gb)
			}
			if global.Event(ga) != a.Event(ida) {
				t.Fatalf("global table resolves %d to %v, want %v", ga, global.Event(ga), a.Event(ida))
			}
		}
	}
}

// TestRemapperPreservesPairIdentity is the satellite property test:
// PairIDs built against two independently grown tables remap to equal
// global PairIDs exactly when they denote the same abstract reads-from
// pair — so cross-shard feedback folding cannot conflate or split pairs.
func TestRemapperPreservesPairIdentity(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		rng := rand.New(rand.NewSource(trial))
		a, b, global := NewInternTable(), NewInternTable(), NewInternTable()

		makePairs := func(tbl *InternTable) []PairID {
			var out []PairID
			for i := 0; i < 64; i++ {
				w := tbl.Intern(randAbstract(rng))
				r := tbl.Intern(randAbstract(rng))
				out = append(out, MakePairID(w, r))
			}
			return out
		}
		pa, pb := makePairs(a), makePairs(b)

		ra, rb := NewRemapper(a, global), NewRemapper(b, global)
		for _, x := range pa {
			for _, y := range pb {
				gx, gy := ra.RemapPair(x), rb.RemapPair(y)
				same := a.Pair(x) == b.Pair(y)
				if same != (gx == gy) {
					t.Fatalf("seed %d: pair identity broken: %v -> %d vs %v -> %d",
						trial, a.Pair(x), gx, b.Pair(y), gy)
				}
				if global.Pair(gx) != a.Pair(x) {
					t.Fatalf("seed %d: global pair %d resolves to %v, want %v",
						trial, gx, global.Pair(gx), a.Pair(x))
				}
			}
		}
	}
}

// TestRemapperIdentityOnSameTable: remapping a table into a fresh table
// in ID order is the identity mapping — first-intern order is preserved.
func TestRemapperIdentityOnSameTable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src, dst := NewInternTable(), NewInternTable()
	for i := 0; i < 100; i++ {
		src.Intern(randAbstract(rng))
	}
	r := NewRemapper(src, dst)
	for id := 0; id < src.Len(); id++ {
		if got := r.Remap(EventID(id)); got != EventID(id) {
			t.Fatalf("in-order remap of %d gave %d", id, got)
		}
	}
	// Cached second pass must agree.
	for id := 0; id < src.Len(); id++ {
		if got := r.Remap(EventID(id)); got != EventID(id) {
			t.Fatalf("cached remap of %d gave %d", id, got)
		}
	}
}
