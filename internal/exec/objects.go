package exec

// objKind distinguishes the classes of shared objects in the engine's
// registry.
type objKind uint8

const (
	objVar objKind = iota + 1
	objMutex
	objCond
	objRWMutex
	objSemaphore
	objBarrier
	objChan
	objWaitGroup
)

// chanElem is one buffered channel element together with the trace ID of
// the send that produced it — the reads-from source of the receive that
// will pop it.
type chanElem struct {
	val int64
	src int
}

// object is the engine-side record for one shared object.
type object struct {
	id   VarID
	kind objKind
	name string

	// data variables
	val       int64
	lastWrite int // trace ID of the last write (init write included)

	// mutexes
	holder *Thread // nil when free

	// condition variables
	mutex   *Mutex
	waiters []*Thread // FIFO wait queue

	// reader-writer locks
	readers int
	writer  *Thread

	// barriers (val doubles as the party count; semaphores use val as
	// the live count)
	releasing map[*Thread]bool

	// channels (val doubles as the WaitGroup counter)
	cap     int        // buffer capacity (0 = rendezvous)
	buf     []chanElem // FIFO buffered elements
	closed  bool
	closeEv int // trace ID of the OpClose event, once closed
}

// Var is a shared integer variable: the PUT-visible handle for one shared
// memory location. All access goes through Thread.Read/Write/etc. so every
// access is a scheduling point, exactly as under the paper's binary
// instrumentation.
type Var struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the variable (used in abstract events).
func (v *Var) Name() string { return v.obj.name }

// ID returns the variable's per-execution ID.
func (v *Var) ID() VarID { return v.obj.id }

// Mutex is a non-reentrant mutual-exclusion lock with pthread-like
// semantics: relocking by the holder blocks forever (a detectable
// deadlock), unlocking a mutex not held by the caller is a program error.
type Mutex struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the mutex.
func (m *Mutex) Name() string { return m.obj.name }

// ID returns the mutex's per-execution ID.
func (m *Mutex) ID() VarID { return m.obj.id }

// Cond is a condition variable bound to a Mutex, with pthread semantics:
// signals with no waiters are lost, waiters reacquire the mutex before
// returning from Wait, wakeup order is FIFO and deterministic.
type Cond struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the condition variable.
func (c *Cond) Name() string { return c.obj.name }

// ID returns the condition variable's per-execution ID.
func (c *Cond) ID() VarID { return c.obj.id }

// Mutex returns the mutex the condition variable is bound to.
func (c *Cond) Mutex() *Mutex { return &Mutex{obj: c.obj.mutex.obj, eng: c.eng} }

// RWMutex is a reader-writer lock with pthread_rwlock semantics: any
// number of concurrent readers, or one writer; writers wait for all
// readers to drain.
type RWMutex struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the lock.
func (m *RWMutex) Name() string { return m.obj.name }

// ID returns the lock's per-execution ID.
func (m *RWMutex) ID() VarID { return m.obj.id }

// Semaphore is a counting semaphore with sem_wait/sem_post semantics:
// waits block while the count is zero.
type Semaphore struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the semaphore.
func (s *Semaphore) Name() string { return s.obj.name }

// ID returns the semaphore's per-execution ID.
func (s *Semaphore) ID() VarID { return s.obj.id }

// Barrier is a pthread_barrier: Wait blocks until the configured number
// of parties have arrived, then releases them all.
type Barrier struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the barrier.
func (b *Barrier) Name() string { return b.obj.name }

// ID returns the barrier's per-execution ID.
func (b *Barrier) ID() VarID { return b.obj.id }

// Parties returns the number of threads the barrier synchronizes.
func (b *Barrier) Parties() int { return int(b.obj.val) }

// Chan is a typed integer channel with Go semantics: unbuffered channels
// rendezvous (a send is enabled only while a receiver is parked on the
// channel), buffered channels queue up to Cap values FIFO, receives on a
// closed drained channel yield (0, false), sends on a closed channel
// crash. Every operation is one scheduling point.
type Chan struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the channel.
func (c *Chan) Name() string { return c.obj.name }

// ID returns the channel's per-execution ID.
func (c *Chan) ID() VarID { return c.obj.id }

// Cap returns the buffer capacity (0 for an unbuffered channel).
func (c *Chan) Cap() int { return c.obj.cap }

// WaitGroup is a sync.WaitGroup analogue: Add moves the counter, Done is
// Add(-1), WgWait blocks until the counter is zero. A negative counter
// crashes, matching Go.
type WaitGroup struct {
	obj *object
	eng *Engine
}

// Name returns the stable name of the WaitGroup.
func (w *WaitGroup) Name() string { return w.obj.name }

// ID returns the WaitGroup's per-execution ID.
func (w *WaitGroup) ID() VarID { return w.obj.id }
