package exec_test

import (
	"reflect"
	"testing"

	"rff/internal/exec"
	"rff/internal/sched"
)

// seqProgram: single thread, no concurrency — sanity of events and rf.
func seqProgram(t *exec.Thread) {
	a := t.NewVar("a", 0)
	t.Write(a, 7)
	v := t.Read(a)
	t.Assert(v == 7, "read-back")
}

func run(t *testing.T, p exec.Program, s exec.Scheduler, seed int64) *exec.Result {
	t.Helper()
	return exec.Run("test", p, exec.Config{Scheduler: s, Seed: seed})
}

func TestSequentialTraceAndRF(t *testing.T) {
	res := run(t, seqProgram, sched.NewRoundRobin(), 1)
	if res.Buggy() {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	tr := res.Trace
	if tr.Len() != 3 { // init, write, read
		t.Fatalf("want 3 events, got %d:\n%s", tr.Len(), tr)
	}
	rd := tr.Event(3)
	if !rd.Op.IsRead() || rd.Val != 7 || rd.RF != 2 {
		t.Fatalf("bad read event: %+v", rd)
	}
	pairs := tr.RFPairs()
	if len(pairs) != 1 {
		t.Fatalf("want 1 rf pair, got %v", pairs)
	}
	if pairs[0].Write.Op != exec.OpWrite || pairs[0].Read.Op != exec.OpRead {
		t.Fatalf("bad rf pair %v", pairs[0])
	}
}

func TestReadObservesInitialWrite(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		a := t.NewVar("a", 42)
		v := t.Read(a)
		t.Assert(v == 42, "init value")
	}, sched.NewRoundRobin(), 1)
	if res.Buggy() {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	rd := res.Trace.Event(2)
	if rd.RF != 1 || res.Trace.Event(rd.RF).Op != exec.OpVarInit {
		t.Fatalf("read should observe init write: %+v", rd)
	}
}

func TestAssertionFailureReported(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		t.Assert(false, "boom")
	}, sched.NewRoundRobin(), 1)
	if !res.Buggy() || res.Failure.Kind != exec.FailAssert {
		t.Fatalf("want assertion failure, got %v", res.Failure)
	}
	if res.Failure.Msg != "boom" {
		t.Fatalf("bad message %q", res.Failure.Msg)
	}
	last := res.Trace.Event(res.Trace.Len())
	if last.Op != exec.OpFail {
		t.Fatalf("trace should end with OpFail, got %v", last)
	}
}

func TestPanicBecomesCrash(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		var s []int
		_ = s[3] // index out of range
	}, sched.NewRoundRobin(), 1)
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want panic failure, got %v", res.Failure)
	}
}

func TestSpawnJoinAndSharedCounter(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		c := t.NewVar("c", 0)
		m := t.NewMutex("m")
		worker := func(w *exec.Thread) {
			w.Lock(m)
			w.Add(c, 1)
			w.Unlock(m)
		}
		t1 := t.Go("w1", worker)
		t2 := t.Go("w2", worker)
		t.JoinAll(t1, t2)
		t.Assert(t.Read(c) == 2, "counter")
	}, sched.NewRandom(), 7)
	if res.Buggy() {
		t.Fatalf("locked counter must always reach 2: %v\n%s", res.Failure, res.Trace)
	}
}

func TestUnlockedCounterCanLoseUpdates(t *testing.T) {
	prog := func(t *exec.Thread) {
		c := t.NewVar("c", 0)
		worker := func(w *exec.Thread) { w.Add(c, 1) }
		t1 := t.Go("w1", worker)
		t2 := t.Go("w2", worker)
		t.JoinAll(t1, t2)
		t.Assert(t.Read(c) == 2, "lost update")
	}
	lost := false
	for seed := int64(0); seed < 200 && !lost; seed++ {
		res := run(t, prog, sched.NewRandom(), seed)
		if res.Buggy() {
			if res.Failure.Kind != exec.FailAssert {
				t.Fatalf("unexpected failure kind: %v", res.Failure)
			}
			lost = true
		}
	}
	if !lost {
		t.Fatal("random scheduling never exposed the lost update in 200 runs")
	}
}

func TestDeadlockDetection(t *testing.T) {
	prog := func(t *exec.Thread) {
		m1 := t.NewMutex("m1")
		m2 := t.NewMutex("m2")
		a := t.Go("a", func(w *exec.Thread) {
			w.Lock(m1)
			w.Yield()
			w.Lock(m2)
			w.Unlock(m2)
			w.Unlock(m1)
		})
		b := t.Go("b", func(w *exec.Thread) {
			w.Lock(m2)
			w.Yield()
			w.Lock(m1)
			w.Unlock(m1)
			w.Unlock(m2)
		})
		t.JoinAll(a, b)
	}
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		res := run(t, prog, sched.NewRandom(), seed)
		if res.Buggy() {
			if res.Failure.Kind != exec.FailDeadlock {
				t.Fatalf("unexpected failure: %v", res.Failure)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("ABBA deadlock never detected in 200 random runs")
	}
}

func TestCondWaitSignal(t *testing.T) {
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		cv := t.NewCond("cv", m)
		ready := t.NewVar("ready", 0)
		consumer := t.Go("consumer", func(w *exec.Thread) {
			w.Lock(m)
			for w.Read(ready) == 0 {
				w.Wait(cv)
			}
			w.Unlock(m)
		})
		producer := t.Go("producer", func(w *exec.Thread) {
			w.Lock(m)
			w.Write(ready, 1)
			w.Signal(cv)
			w.Unlock(m)
		})
		t.JoinAll(consumer, producer)
	}
	// The while-loop re-check makes this correct under every schedule.
	for seed := int64(0); seed < 100; seed++ {
		res := run(t, prog, sched.NewRandom(), seed)
		if res.Buggy() {
			t.Fatalf("seed %d: correct producer/consumer failed: %v\n%s", seed, res.Failure, res.Trace)
		}
	}
}

func TestLostSignalDeadlocks(t *testing.T) {
	// If the consumer checks the flag without holding the lock before
	// waiting, the signal can be lost and the consumer blocks forever.
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		cv := t.NewCond("cv", m)
		consumer := t.Go("consumer", func(w *exec.Thread) {
			w.Lock(m)
			w.Wait(cv) // unconditional wait: lost-signal bug
			w.Unlock(m)
		})
		producer := t.Go("producer", func(w *exec.Thread) {
			w.Lock(m)
			w.Signal(cv)
			w.Unlock(m)
		})
		t.JoinAll(consumer, producer)
	}
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		res := run(t, prog, sched.NewRandom(), seed)
		if res.Buggy() && res.Failure.Kind == exec.FailDeadlock {
			found = true
		}
	}
	if !found {
		t.Fatal("lost signal never produced a deadlock in 200 runs")
	}
}

func TestCASAtomicity(t *testing.T) {
	// A CAS-based lock implemented by the PUT must actually exclude.
	prog := func(t *exec.Thread) {
		lock := t.NewVar("lock", 0)
		c := t.NewVar("c", 0)
		worker := func(w *exec.Thread) {
			for {
				if _, ok := w.CAS(lock, 0, 1); ok {
					break
				}
				w.Yield()
			}
			w.Add(c, 1)
			w.Write(lock, 0)
		}
		t1 := t.Go("w1", worker)
		t2 := t.Go("w2", worker)
		t.JoinAll(t1, t2)
		t.Assert(t.Read(c) == 2, "CAS lock exclusion")
	}
	for seed := int64(0); seed < 100; seed++ {
		res := run(t, prog, sched.NewRandom(), seed)
		if res.Failure != nil {
			t.Fatalf("seed %d: CAS spinlock failed: %v\n%s", seed, res.Failure, res.Trace)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	prog := func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		w1 := t.Go("w1", func(w *exec.Thread) { w.Write(a, 1); w.Write(b, -1) })
		ck := t.Go("ck", func(w *exec.Thread) {
			av, bv := w.Read(a), w.Read(b)
			w.Assert((av == 0 && bv == 0) || (av == 1 && bv == -1), "reorder")
		})
		t.JoinAll(w1, ck)
	}
	orig := run(t, prog, sched.NewRandom(), 12345)
	rep := run(t, prog, sched.NewReplay(orig.Trace.ThreadOrder()), 0)
	if !reflect.DeepEqual(orig.Trace.Events, rep.Trace.Events) {
		t.Fatalf("replay diverged:\n--- orig\n%s--- replay\n%s", orig.Trace, rep.Trace)
	}
	if (orig.Failure == nil) != (rep.Failure == nil) {
		t.Fatalf("replay failure mismatch: %v vs %v", orig.Failure, rep.Failure)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	prog := func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		ts := make([]*exec.Thread, 4)
		for i := range ts {
			ts[i] = t.Go("w", func(w *exec.Thread) { w.Add(a, 1) })
		}
		t.JoinAll(ts...)
	}
	r1 := run(t, prog, sched.NewRandom(), 99)
	r2 := run(t, prog, sched.NewRandom(), 99)
	if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
		t.Fatal("same seed produced different traces")
	}
	r3 := run(t, prog, sched.NewPOS(), 99)
	r4 := run(t, prog, sched.NewPOS(), 99)
	if !reflect.DeepEqual(r3.Trace.Events, r4.Trace.Events) {
		t.Fatal("POS same seed produced different traces")
	}
}

func TestStepBudgetTruncates(t *testing.T) {
	prog := func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		for {
			t.Write(a, 1) // infinite loop of events
		}
	}
	res := exec.Run("loop", prog, exec.Config{Scheduler: sched.NewRoundRobin(), MaxSteps: 50})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.Buggy() {
		t.Fatalf("truncation must not be a bug: %v", res.Failure)
	}
	if res.Trace.Len() != 50 {
		t.Fatalf("want 50 events, got %d", res.Trace.Len())
	}
}

func TestUnlockNotHeldIsCrash(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		m := t.NewMutex("m")
		t.Unlock(m)
	}, sched.NewRoundRobin(), 1)
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want misuse crash, got %v", res.Failure)
	}
}

func TestAtomicAddAndSwap(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		a := t.NewVar("a", 10)
		old := t.AtomicAdd(a, 5)
		t.Assert(old == 10, "fetch-add old")
		t.Assert(t.Read(a) == 15, "fetch-add new")
		prev := t.AtomicSwap(a, 99)
		t.Assert(prev == 15, "swap old")
		t.Assert(t.Read(a) == 99, "swap new")
	}, sched.NewRoundRobin(), 1)
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
}

func TestRMWRecordsReadAndWrite(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		t.CAS(a, 0, 1)
	}, sched.NewRoundRobin(), 1)
	tr := res.Trace
	if tr.Len() != 3 {
		t.Fatalf("want init+read+write, got:\n%s", tr)
	}
	if !tr.Event(2).Op.IsRead() || !tr.Event(3).Op.IsWrite() {
		t.Fatalf("RMW event shapes wrong:\n%s", tr)
	}
	if len(tr.Decisions) != 2 { // init + CAS: one decision each
		t.Fatalf("want 2 decisions, got %d", len(tr.Decisions))
	}
}

func TestFailedCASDoesNotWrite(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		a := t.NewVar("a", 5)
		v, ok := t.CAS(a, 0, 1)
		t.Assert(!ok && v == 5, "failed CAS")
		t.Assert(t.Read(a) == 5, "value unchanged")
	}, sched.NewRoundRobin(), 1)
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		cv := t.NewCond("cv", m)
		ready := t.NewVar("ready", 0)
		mk := func(w *exec.Thread) {
			w.Lock(m)
			for w.Read(ready) == 0 {
				w.Wait(cv)
			}
			w.Unlock(m)
		}
		a, b := t.Go("a", mk), t.Go("b", mk)
		p := t.Go("p", func(w *exec.Thread) {
			w.Lock(m)
			w.Write(ready, 1)
			w.Broadcast(cv)
			w.Unlock(m)
		})
		t.JoinAll(a, b, p)
	}
	for seed := int64(0); seed < 100; seed++ {
		res := run(t, prog, sched.NewRandom(), seed)
		if res.Buggy() {
			t.Fatalf("seed %d: broadcast program failed: %v\n%s", seed, res.Failure, res.Trace)
		}
	}
}

func TestJoinBlocksUntilExit(t *testing.T) {
	res := run(t, func(t *exec.Thread) {
		done := t.NewVar("done", 0)
		c := t.Go("c", func(w *exec.Thread) { w.Write(done, 1) })
		t.Join(c)
		t.Assert(t.Read(done) == 1, "join ordering")
	}, sched.NewRandom(), 3)
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
}

func TestViewLastWrite(t *testing.T) {
	// Use a probe scheduler to observe View state mid-run.
	probe := &probeScheduler{inner: sched.NewRoundRobin()}
	exec.Run("probe", func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		t.Write(a, 3)
		t.Read(a)
	}, exec.Config{Scheduler: probe, Seed: 1})
	if !probe.sawInitWrite {
		t.Error("View.LastWrite never reported the init write")
	}
	if !probe.sawRealWrite {
		t.Error("View.LastWrite never reported the real write")
	}
}

type probeScheduler struct {
	inner        exec.Scheduler
	sawInitWrite bool
	sawRealWrite bool
}

func (p *probeScheduler) Name() string     { return "probe" }
func (p *probeScheduler) Begin(seed int64) { p.inner.Begin(seed) }
func (p *probeScheduler) Pick(v *exec.View) int {
	if ae, _, ok := v.LastWrite("a"); ok {
		switch ae.Op {
		case exec.OpVarInit:
			p.sawInitWrite = true
		case exec.OpWrite:
			p.sawRealWrite = true
		}
	}
	return p.inner.Pick(v)
}
func (p *probeScheduler) Executed(ev exec.Event) { p.inner.Executed(ev) }
func (p *probeScheduler) End(t *exec.Trace)      { p.inner.End(t) }
