package exec

import "sort"

// Summary is the per-trace feedback digest the fuzzing loop consumes: the
// deduplicated abstract reads-from pairs, the reads-from combination
// signature, and the deduplicated abstract events — all derived in a
// single traversal of the trace and memoized, so Feedback.Observe,
// EventPool.AddTrace, and any TraceObserver share one computation instead
// of re-deriving (and re-sorting) the same data per consumer.
//
// Pairs/PairIDs and Events/EventIDs are parallel slices: PairIDs[i] is
// Pairs[i] interned through Table, likewise EventIDs[i] for Events[i].
// Callers must treat all slices as read-only.
type Summary struct {
	// Pairs is the trace's abstract reads-from pairs, deduplicated and
	// deterministically sorted (by read, then write).
	Pairs []RFPair
	// PairIDs holds the interned form of Pairs, parallel to it.
	PairIDs []PairID
	// Events is the trace's deduplicated abstract events over shared
	// objects, deterministically sorted.
	Events []AbstractEvent
	// EventIDs holds the interned form of Events, parallel to it.
	EventIDs []EventID
	// Sig is the reads-from combination signature — bit-identical to the
	// historical Trace.RFSignature hash (FNV-1a over the sorted pairs'
	// string encodings), so recorded results and golden files remain
	// comparable across versions.
	Sig uint64
	// Table is the intern table the IDs resolve through: the campaign's
	// shared table when the execution ran with Config.Intern set, or a
	// private per-trace table otherwise.
	Table *InternTable
}

// Summary returns the trace's feedback digest, computing it on first call
// and returning the memoized value afterwards. Not safe for concurrent
// first use; a trace belongs to the goroutine that ran its execution.
func (t *Trace) Summary() *Summary {
	if t.summary == nil {
		t.summary = t.buildSummary()
		t.summaryBuilds++
	}
	return t.summary
}

// summaryBuildCount reports how many times the summary was (re)built —
// the memoization regression guard; it must stay at 1 however many
// consumers read the trace.
func (t *Trace) summaryBuildCount() int { return t.summaryBuilds }

// buildSummary derives pairs, signature, and abstract events in one pass
// over the events.
func (t *Trace) buildSummary() *Summary {
	tab := t.intern
	if tab == nil {
		tab = NewInternTable()
		t.intern = tab
	}
	s := &Summary{Table: tab}

	// ids[i] is 1 + the interned ID of event i's abstraction, 0 while
	// unassigned; reads resolve their writer through it in O(1).
	ids := make([]EventID, len(t.Events))
	seenEv := make(map[EventID]struct{}, 64)
	seenPair := make(map[PairID]struct{}, 32)
	for i := range t.Events {
		e := &t.Events[i]
		if e.VarStr == "" {
			continue // spawn/yield/etc. carry no shared object
		}
		id := tab.Intern(AbstractEvent{Op: e.Op, Var: e.VarStr, Loc: e.Loc})
		ids[i] = id + 1
		if _, dup := seenEv[id]; !dup {
			seenEv[id] = struct{}{}
			s.EventIDs = append(s.EventIDs, id)
			s.Events = append(s.Events, tab.Event(id))
		}
		if e.Op.ReadsFrom() && e.RF != 0 {
			wid := ids[e.RF-1]
			if wid == 0 {
				// The writer precedes its reader in the trace, so its ID
				// was assigned above unless it carries no shared object —
				// intern it directly to stay faithful to the pair set.
				wid = tab.Intern(t.Events[e.RF-1].Abstract()) + 1
				ids[e.RF-1] = wid
			}
			pid := MakePairID(wid-1, id)
			if _, dup := seenPair[pid]; !dup {
				seenPair[pid] = struct{}{}
				s.PairIDs = append(s.PairIDs, pid)
				s.Pairs = append(s.Pairs, RFPair{Write: tab.Event(wid - 1), Read: tab.Event(id)})
			}
		}
	}

	sort.Sort(pairsByReadWrite{s.Pairs, s.PairIDs})
	sort.Sort(eventsByAbstract{s.Events, s.EventIDs})

	h := uint64(fnvOffset64)
	for _, p := range s.Pairs {
		h = fnvAbstract(h, p.Write)
		h = fnvAbstract(h, p.Read)
		h = fnvByte(h, 0)
	}
	s.Sig = h
	return s
}

// pairsByReadWrite co-sorts Pairs and PairIDs in the deterministic
// (read, write) order of SortRFPairs.
type pairsByReadWrite struct {
	pairs []RFPair
	ids   []PairID
}

func (s pairsByReadWrite) Len() int { return len(s.pairs) }
func (s pairsByReadWrite) Less(i, j int) bool {
	if s.pairs[i].Read != s.pairs[j].Read {
		return lessAbstract(s.pairs[i].Read, s.pairs[j].Read)
	}
	return lessAbstract(s.pairs[i].Write, s.pairs[j].Write)
}
func (s pairsByReadWrite) Swap(i, j int) {
	s.pairs[i], s.pairs[j] = s.pairs[j], s.pairs[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// eventsByAbstract co-sorts Events and EventIDs in lessAbstract order.
type eventsByAbstract struct {
	events []AbstractEvent
	ids    []EventID
}

func (s eventsByAbstract) Len() int           { return len(s.events) }
func (s eventsByAbstract) Less(i, j int) bool { return lessAbstract(s.events[i], s.events[j]) }
func (s eventsByAbstract) Swap(i, j int) {
	s.events[i], s.events[j] = s.events[j], s.events[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}
