package exec

import "fmt"

// Validate checks the structural invariants of a recorded trace:
//
//   - event IDs are 1..n in order;
//   - every reads-from edge points backward at an event that acts as a
//     write;
//   - memory reads observe the most recent prior write to their variable
//     (sequential consistency) and return exactly the value it wrote;
//   - lock acquisitions read-from the most recent prior lock-word update.
//
// It returns the first violation found, or nil. Property tests run it
// against randomly generated programs under every scheduler.
func (t *Trace) Validate() error {
	lastWrite := make(map[string]int)             // var name -> event ID
	pendingSends := make(map[string]map[int]bool) // chan name -> undelivered send IDs
	closeOf := make(map[string]int)               // chan name -> OpClose event ID
	for i, e := range t.Events {
		if e.ID != i+1 {
			return fmt.Errorf("event %d has ID %d", i+1, e.ID)
		}
		// Channel operations have their own reads-from discipline: a
		// receive reads-from a *pending* (not-yet-delivered) send on its
		// channel — delivery order is FIFO per buffer but rendezvous
		// matching interleaves with it — or from the close once drained.
		switch e.Op {
		case OpSend:
			if pendingSends[e.VarStr] == nil {
				pendingSends[e.VarStr] = make(map[int]bool)
			}
			pendingSends[e.VarStr][e.ID] = true
			continue
		case OpTrySend:
			if e.Ok {
				if pendingSends[e.VarStr] == nil {
					pendingSends[e.VarStr] = make(map[int]bool)
				}
				pendingSends[e.VarStr][e.ID] = true
			}
			continue
		case OpClose:
			if prev, dup := closeOf[e.VarStr]; dup {
				return fmt.Errorf("event %v closes %q already closed at #%d", e, e.VarStr, prev)
			}
			closeOf[e.VarStr] = e.ID
			continue
		case OpRecv, OpTryRecv:
			if e.RF == 0 {
				// Only a would-block TryRecv carries no edge.
				if e.Op != OpTryRecv || e.Ok {
					return fmt.Errorf("event %v: receive without reads-from edge", e)
				}
				continue
			}
			if e.RF <= 0 || e.RF >= e.ID {
				return fmt.Errorf("event %v: reads-from edge %d out of range", e, e.RF)
			}
			src := t.Event(e.RF)
			switch src.Op {
			case OpClose:
				if e.Ok || e.Val != 0 {
					return fmt.Errorf("event %v reads-from close %v but is not a zero-value receive", e, src)
				}
			case OpSend, OpTrySend:
				if !e.Ok {
					return fmt.Errorf("event %v reads-from send %v but reports ok=false", e, src)
				}
				if e.Val != src.Val {
					return fmt.Errorf("event %v received %d, sender %v sent %d", e, e.Val, src, src.Val)
				}
				if !pendingSends[e.VarStr][e.RF] {
					return fmt.Errorf("event %v reads-from send %d already delivered or on another channel", e, e.RF)
				}
				delete(pendingSends[e.VarStr], e.RF)
			default:
				return fmt.Errorf("event %v reads-from %v, not a send or close", e, src)
			}
			continue
		}
		if e.Op.ReadsFrom() && !(e.Op == OpTryLock && e.Val == 0) {
			if e.RF <= 0 || e.RF >= e.ID {
				return fmt.Errorf("event %v: reads-from edge %d out of range", e, e.RF)
			}
			src := t.Event(e.RF)
			if !src.Op.ActsAsWrite() {
				return fmt.Errorf("event %v reads-from non-write %v", e, src)
			}
			if last, ok := lastWrite[e.VarStr]; !ok || last != e.RF {
				// One sanctioned exception: a lock acquisition may
				// read-from a condition wait's release of the mutex; the
				// wait event is recorded under the cond's name, so the
				// per-name tracking cannot see the redirect. Accept when
				// the source is a wait and nothing touched the mutex word
				// since (last < RF).
				if !(src.Op == OpWait && (!ok || last < e.RF) && e.Op != OpRead) {
					return fmt.Errorf("event %v reads-from %d, but last write to %q is %d",
						e, e.RF, e.VarStr, last)
				}
			}
			if e.Op == OpRead && e.Val != src.Val {
				return fmt.Errorf("event %v read value %d, writer %v wrote %d",
					e, e.Val, src, src.Val)
			}
		}
		// Update last-write tracking mirroring the engine's semantics.
		switch e.Op {
		case OpVarInit, OpWrite, OpLock, OpLockRe, OpUnlock,
			OpWLock, OpWUnlock, OpRLock, OpRUnlock, OpSemWait, OpSemPost,
			OpWgAdd:
			lastWrite[e.VarStr] = e.ID
		case OpTryLock:
			if e.Val == 1 { // only successful attempts update the word
				lastWrite[e.VarStr] = e.ID
			}
		case OpWait:
			// The wait also releases its mutex; the redirect is handled
			// by the exception above since the binding is not recorded
			// in the trace.
			lastWrite[e.VarStr] = e.ID
		}
	}
	return nil
}
