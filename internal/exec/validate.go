package exec

import "fmt"

// Validate checks the structural invariants of a recorded trace:
//
//   - event IDs are 1..n in order;
//   - every reads-from edge points backward at an event that acts as a
//     write;
//   - memory reads observe the most recent prior write to their variable
//     (sequential consistency) and return exactly the value it wrote;
//   - lock acquisitions read-from the most recent prior lock-word update.
//
// It returns the first violation found, or nil. Property tests run it
// against randomly generated programs under every scheduler.
func (t *Trace) Validate() error {
	lastWrite := make(map[string]int) // var name -> event ID
	for i, e := range t.Events {
		if e.ID != i+1 {
			return fmt.Errorf("event %d has ID %d", i+1, e.ID)
		}
		if e.Op.ReadsFrom() && !(e.Op == OpTryLock && e.Val == 0) {
			if e.RF <= 0 || e.RF >= e.ID {
				return fmt.Errorf("event %v: reads-from edge %d out of range", e, e.RF)
			}
			src := t.Event(e.RF)
			if !src.Op.ActsAsWrite() {
				return fmt.Errorf("event %v reads-from non-write %v", e, src)
			}
			if last, ok := lastWrite[e.VarStr]; !ok || last != e.RF {
				// One sanctioned exception: a lock acquisition may
				// read-from a condition wait's release of the mutex; the
				// wait event is recorded under the cond's name, so the
				// per-name tracking cannot see the redirect. Accept when
				// the source is a wait and nothing touched the mutex word
				// since (last < RF).
				if !(src.Op == OpWait && (!ok || last < e.RF) && e.Op != OpRead) {
					return fmt.Errorf("event %v reads-from %d, but last write to %q is %d",
						e, e.RF, e.VarStr, last)
				}
			}
			if e.Op == OpRead && e.Val != src.Val {
				return fmt.Errorf("event %v read value %d, writer %v wrote %d",
					e, e.Val, src, src.Val)
			}
		}
		// Update last-write tracking mirroring the engine's semantics.
		switch e.Op {
		case OpVarInit, OpWrite, OpLock, OpLockRe, OpUnlock,
			OpWLock, OpWUnlock, OpRLock, OpRUnlock, OpSemWait, OpSemPost:
			lastWrite[e.VarStr] = e.ID
		case OpTryLock:
			if e.Val == 1 { // only successful attempts update the word
				lastWrite[e.VarStr] = e.ID
			}
		case OpWait:
			// The wait also releases its mutex; the redirect is handled
			// by the exception above since the binding is not recorded
			// in the trace.
			lastWrite[e.VarStr] = e.ID
		}
	}
	return nil
}
