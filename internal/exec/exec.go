// Package exec implements a deterministic, user-mode controlled-concurrency
// execution engine: the substrate on which the RFF schedule fuzzer and all
// baseline schedulers run.
//
// The engine plays the role of the paper's E9Patch instrumentation plus the
// libsched.so user-mode scheduler: every shared-memory access and
// synchronization operation performed by a program under test (PUT) is a
// serialized scheduling point. A PUT is an ordinary Go function written
// against the Thread API (Read, Write, Lock, Unlock, Wait, Signal, Go, Join,
// Assert, ...). Each virtual thread is a goroutine that parks at every API
// call, publishing the event it is about to execute; the engine computes the
// set of enabled pending events and asks a pluggable Scheduler to pick one.
// Exactly one PUT goroutine runs at any instant, so execution is fully
// serialized, sequentially consistent, and — for a deterministic scheduler
// and fixed seed — bit-for-bit reproducible.
//
// The engine records a Trace of events together with the reads-from function
// (each read is mapped to the write event it observed), detects deadlocks
// (live threads with no enabled event), converts assertion failures and
// PUT panics into structured Failures, and enforces a step budget against
// livelock.
package exec

// ThreadID identifies a virtual thread within one execution. The main
// thread is always thread 1; children are numbered in spawn order, which is
// deterministic for a deterministic scheduler.
type ThreadID int32

// VarID identifies a shared object (variable, mutex, or condition variable)
// within one execution. IDs are assigned in creation order.
type VarID int32

// Op enumerates the kinds of events the engine intercepts. Every Op is a
// scheduling point.
type Op uint8

const (
	// OpNone is the zero Op; it never appears in a trace.
	OpNone Op = iota
	// OpVarInit is the synthetic initial write recorded when a shared
	// variable is created. It is the reads-from source for reads that
	// observe the initial value (the paper's "w(b)@l1" initial write).
	OpVarInit
	// OpRead is a shared-memory load.
	OpRead
	// OpWrite is a shared-memory store.
	OpWrite
	// OpLock acquires a mutex; enabled only while the mutex is free.
	OpLock
	// OpUnlock releases a mutex; always enabled for the holder.
	OpUnlock
	// OpWait atomically releases a mutex and blocks on a condition
	// variable. The subsequent reacquisition appears as OpLockRe.
	OpWait
	// OpLockRe reacquires the mutex after a condition wait; enabled only
	// once the thread has been signaled and the mutex is free.
	OpLockRe
	// OpSignal wakes (at most) one condition-variable waiter. A signal
	// with no waiters is lost, matching pthread semantics.
	OpSignal
	// OpBroadcast wakes all current condition-variable waiters.
	OpBroadcast
	// OpSpawn creates a child thread. The child starts parked at OpBegin.
	OpSpawn
	// OpBegin is the first event of every spawned thread (thread start).
	OpBegin
	// OpJoin waits for a target thread to finish; enabled once it has.
	OpJoin
	// OpYield is a pure scheduling point with no semantic effect.
	OpYield
	// OpFail is the pending marker for a failing assertion or explicit
	// failure; it ends the execution and is recorded as the final event.
	OpFail
	// OpTryLock attempts a mutex acquisition without blocking; always
	// enabled, it acquires when the mutex is free and fails otherwise.
	OpTryLock
	// OpRLock acquires a reader-writer lock in shared mode; enabled
	// while no writer holds the lock.
	OpRLock
	// OpRUnlock releases a shared hold.
	OpRUnlock
	// OpWLock acquires a reader-writer lock exclusively; enabled while
	// no reader or writer holds it.
	OpWLock
	// OpWUnlock releases the exclusive hold.
	OpWUnlock
	// OpSemWait decrements a semaphore; enabled while the count is
	// positive.
	OpSemWait
	// OpSemPost increments a semaphore; always enabled.
	OpSemPost
	// OpBarrier joins a barrier; enabled once the final participant has
	// arrived (the engine releases all waiters in arrival order).
	OpBarrier
	// OpSend sends a value on a channel. On an unbuffered channel it is
	// enabled only while a receiver is parked on the channel (rendezvous);
	// on a buffered channel while there is capacity. Sending on a closed
	// channel crashes with FailSendClosed, matching Go.
	OpSend
	// OpRecv receives from a channel; enabled once a value has been
	// delivered (rendezvous match or buffered element) or the channel is
	// closed. A receive from a closed, drained channel reads-from the
	// close event and observes the zero value.
	OpRecv
	// OpClose closes a channel; always enabled. Closing an already-closed
	// channel crashes with FailCloseClosed.
	OpClose
	// OpTrySend is a non-blocking send attempt (select-with-default's send
	// arm); always enabled, it delivers when the send would not block and
	// is a recorded no-op otherwise.
	OpTrySend
	// OpTryRecv is a non-blocking receive attempt; always enabled, with
	// three outcomes: a value, closed-and-drained, or would-block.
	OpTryRecv
	// OpSelect is the pending marker for a deterministic select over
	// channel cases. It never appears in a trace: executing a select
	// records the OpSend/OpRecv event of the case it fires.
	OpSelect
	// OpWgAdd adjusts a WaitGroup counter (Done is Add(-1)); always
	// enabled. Dropping the counter below zero crashes, matching Go.
	OpWgAdd
	// OpWgWait blocks until a WaitGroup counter is zero; its event
	// reads-from the counter update (or init) that released it.
	OpWgWait
)

var opNames = [...]string{
	OpNone:      "none",
	OpVarInit:   "init",
	OpRead:      "r",
	OpWrite:     "w",
	OpLock:      "lock",
	OpUnlock:    "unlock",
	OpWait:      "wait",
	OpLockRe:    "relock",
	OpSignal:    "signal",
	OpBroadcast: "broadcast",
	OpSpawn:     "spawn",
	OpBegin:     "begin",
	OpJoin:      "join",
	OpYield:     "yield",
	OpFail:      "fail",
	OpTryLock:   "trylock",
	OpRLock:     "rlock",
	OpRUnlock:   "runlock",
	OpWLock:     "wlock",
	OpWUnlock:   "wunlock",
	OpSemWait:   "semwait",
	OpSemPost:   "sempost",
	OpBarrier:   "barrier",
	OpSend:      "send",
	OpRecv:      "recv",
	OpClose:     "close",
	OpTrySend:   "trysend",
	OpTryRecv:   "tryrecv",
	OpSelect:    "select",
	OpWgAdd:     "wgadd",
	OpWgWait:    "wgwait",
}

// NumOps is the number of defined ops (including OpNone); valid ops are
// Op(1) .. Op(NumOps-1). Consumers that enumerate the vocabulary (e.g.
// artifact decoding) range over this instead of naming the last op.
const NumOps = len(opNames)

// String returns the short mnemonic used in traces and abstract events.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// IsWrite reports whether the op stores to a shared variable (including the
// synthetic initial write).
func (o Op) IsWrite() bool { return o == OpWrite || o == OpVarInit }

// IsRead reports whether the op loads from a shared variable.
func (o Op) IsRead() bool { return o == OpRead }

// ReadsFrom reports whether events of this op carry a reads-from edge.
// Besides memory loads this includes blocking acquisitions of sync words:
// at the binary level a mutex/rwlock/semaphore is a shared word, and a
// pthread lock reads the state the previous release (or the initializer)
// wrote — the paper's instrumentation intercepts exactly those accesses,
// which is what lets RFF steer acquisition order with reads-from
// constraints. (A successful OpTryLock also carries an edge; a failed one
// does not.) Channel receives read-from the send that produced the value
// (or the close, when drained), and a WaitGroup wait reads-from the
// counter update that released it — so channel and WaitGroup
// communication is visible to the reads-from feedback exactly like
// memory. (A would-block OpTryRecv carries no edge.)
func (o Op) ReadsFrom() bool {
	switch o {
	case OpRead, OpLock, OpLockRe, OpWLock, OpRLock, OpSemWait, OpTryLock,
		OpRecv, OpTryRecv, OpWgWait:
		return true
	}
	return false
}

// ActsAsWrite reports whether events of this op can be the source of a
// reads-from edge: memory stores, variable initialization, the sync-word
// updates performed by acquisitions and releases, channel sends and
// closes, and WaitGroup counter updates.
func (o Op) ActsAsWrite() bool {
	switch o {
	case OpWrite, OpVarInit, OpLock, OpLockRe, OpUnlock, OpWait,
		OpWLock, OpWUnlock, OpRLock, OpRUnlock, OpSemWait, OpSemPost, OpTryLock,
		OpSend, OpTrySend, OpClose, OpWgAdd:
		return true
	}
	return false
}

// IsChannel reports whether the op targets a channel.
func (o Op) IsChannel() bool {
	switch o {
	case OpSend, OpRecv, OpClose, OpTrySend, OpTryRecv, OpSelect:
		return true
	}
	return false
}

// AbstractEvent is the paper's abstract event e_a = op(x)@loc: an operation,
// the shared object it targets (by stable name, so identities survive across
// executions), and the source location of the access. A concrete Event
// instantiates an AbstractEvent when all three fields agree.
type AbstractEvent struct {
	Op  Op
	Var string
	Loc string
}

// String renders the abstract event as op(x)@loc.
func (a AbstractEvent) String() string {
	return a.Op.String() + "(" + a.Var + ")@" + a.Loc
}

// IsZero reports whether a is the zero AbstractEvent.
func (a AbstractEvent) IsZero() bool { return a.Op == OpNone && a.Var == "" && a.Loc == "" }

// RFPair is one reads-from observation: the read event and the write event
// it observed its value from, both abstracted. The set of RFPairs of an
// execution is the paper's reads-from function restricted to abstract
// events; two executions with equal event sets and equal RFPair sets are
// reads-from equivalent.
type RFPair struct {
	Write AbstractEvent
	Read  AbstractEvent
}

// String renders the pair as "w(x)@l1 -rf-> r(x)@l2".
func (p RFPair) String() string {
	return p.Write.String() + " -rf-> " + p.Read.String()
}
