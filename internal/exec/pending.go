package exec

// RMWKind distinguishes the atomic read-modify-write flavours. An RMW is a
// single scheduling point that records a read event followed (possibly
// conditionally, for CAS) by a write event with no preemption in between,
// matching the atomicity of the underlying hardware instruction.
type RMWKind uint8

const (
	// RMWNone marks a plain (non-RMW) operation.
	RMWNone RMWKind = iota
	// RMWCAS is compare-and-swap: the write happens iff the read value
	// equals the expected value.
	RMWCAS
	// RMWAdd is atomic fetch-and-add.
	RMWAdd
	// RMWSwap is atomic exchange.
	RMWSwap
)

// Pending describes the event a parked thread is about to execute. The
// engine exposes the enabled Pendings to the Scheduler each step; picking
// one grants its thread a single step.
type Pending struct {
	Thread  ThreadID
	Seq     int // thread-local op counter; (Thread, Seq) identifies this event instance
	Op      Op
	Var     VarID
	VarName string
	Loc     string
	Val     int64 // value to write (writes), delta (RMWAdd), new value (RMWSwap/CAS)
	Target  ThreadID

	// RMW metadata (Op is OpRead for all RMWs; IsWriteLike additionally
	// holds so conflict detection sees the store half).
	RMW    RMWKind
	CASOld int64

	// Failure metadata for OpFail pendings.
	FailKind FailureKind
	FailMsg  string

	// Cases holds the channel cases of an OpSelect pending (Var is 0; a
	// select targets several channels at once).
	Cases []SelectCase
}

// SelectCase is one arm of a deterministic select: a send of Val on Ch,
// or a receive from Ch. Build cases with SendCase and RecvCase.
type SelectCase struct {
	Ch   *Chan
	Send bool
	Val  int64
}

// SendCase returns a select arm that sends v on ch.
func SendCase(ch *Chan, v int64) SelectCase { return SelectCase{Ch: ch, Send: true, Val: v} }

// RecvCase returns a select arm that receives from ch.
func RecvCase(ch *Chan) SelectCase { return SelectCase{Ch: ch} }

// Abstract projects the pending operation to the abstract event it would
// instantiate if executed. For RMWs this is the read half; use
// AbstractWrite for the store half.
func (p Pending) Abstract() AbstractEvent {
	return AbstractEvent{Op: p.Op, Var: p.VarName, Loc: p.Loc}
}

// AbstractWrite returns the abstract event under which this pending would
// be recorded as a reads-from *source*, and ok=false for non-writing
// pendings. For a plain write it equals Abstract(); for an RMW it is the
// store half; for lock-word updates (lock/unlock/wait) it is the event
// itself, since later acquisitions read-from the recorded lock event.
func (p Pending) AbstractWrite() (AbstractEvent, bool) {
	switch {
	case p.Op == OpWrite, p.Op == OpLock, p.Op == OpLockRe, p.Op == OpUnlock, p.Op == OpWait,
		p.Op == OpSend, p.Op == OpClose, p.Op == OpWgAdd:
		return p.Abstract(), true
	case p.RMW != RMWNone:
		return AbstractEvent{Op: OpWrite, Var: p.VarName, Loc: p.Loc}, true
	}
	return AbstractEvent{}, false
}

// IsWriteLike reports whether executing the pending acts as a reads-from
// source on its variable (stores, RMWs, and lock-word updates).
func (p Pending) IsWriteLike() bool {
	return p.Op == OpWrite || p.RMW != RMWNone || p.Op.ActsAsWrite() && p.Op != OpVarInit
}

// IsReadLike reports whether executing the pending carries a reads-from
// edge (loads, RMWs, and lock acquisitions).
func (p Pending) IsReadLike() bool { return p.Op.ReadsFrom() }

// View is the scheduler's window onto the engine state at one scheduling
// decision: the enabled pending events (in deterministic thread-ID order)
// plus read-only queries about variables and the execution so far.
type View struct {
	// Step is the number of events executed so far.
	Step int
	// Enabled lists the enabled pending events, ordered by thread ID.
	Enabled []Pending

	eng *Engine
}

// LastWrite returns the abstract event and trace ID of the most recent
// reads-from source on the named shared object — the last write for a data
// variable, the last lock-word update for a mutex (the synthetic init
// event if untouched). For a channel it is the event the *next* receive
// would read-from: the send at the head of the buffer, or the close once
// drained — the definition the proactive constraint machines need to
// judge whether a target send is currently observable. ok is false if no
// such object (or source) exists yet.
func (v *View) LastWrite(varName string) (ae AbstractEvent, id int, ok bool) {
	o := v.eng.objByName[varName]
	if o == nil {
		return AbstractEvent{}, 0, false
	}
	if o.kind == objChan {
		switch {
		case len(o.buf) > 0:
			id = o.buf[0].src
		case o.closed:
			id = o.closeEv
		default:
			return AbstractEvent{}, 0, false
		}
		return v.eng.trace.Event(id).Abstract(), id, true
	}
	if o.lastWrite == 0 {
		return AbstractEvent{}, 0, false
	}
	return v.eng.trace.Event(o.lastWrite).Abstract(), o.lastWrite, true
}

// VarValue returns the current value of the named variable.
func (v *View) VarValue(varName string) (val int64, ok bool) {
	o := v.eng.objByName[varName]
	if o == nil || o.kind != objVar {
		return 0, false
	}
	return o.val, true
}

// LiveThreads returns the number of threads that have started and not yet
// exited (parked, blocked, or pending — not necessarily enabled).
func (v *View) LiveThreads() int { return v.eng.liveCount() }

// Races reports whether two pending events conflict: both target the same
// shared variable with at least one write half, from different threads —
// or contend for the same mutex. This is the racing relation used by POS
// to reset priority scores.
func Races(a, b Pending) bool {
	if a.Thread == b.Thread || a.Var == 0 || a.Var != b.Var {
		return false
	}
	if a.Op == OpLock && b.Op == OpLock {
		return true
	}
	if a.Op.IsChannel() && b.Op.IsChannel() {
		// Every pair of channel operations on the same channel conflicts:
		// even two receives compete for the same queue elements, so their
		// order is observable. (Selects have Var 0 and never reach here.)
		return true
	}
	dataA := a.IsReadLike() || a.IsWriteLike()
	dataB := b.IsReadLike() || b.IsWriteLike()
	return dataA && dataB && (a.IsWriteLike() || b.IsWriteLike())
}

// Scheduler decides, at every step of an execution, which enabled pending
// event runs next. Implementations include uniform random walk, POS, PCT,
// the Q-Learning-RF baseline, and RFF's proactive reads-from scheduler.
//
// The engine drives a scheduler through one execution as:
//
//	Begin(seed); { Pick(view); Executed(event) }*; End(trace)
//
// A scheduler instance may keep cross-execution state (PCT's length
// estimates, Q-Learning's table); per-execution state must be reset in
// Begin.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Begin starts a new execution with the given randomness seed.
	Begin(seed int64)
	// Pick returns the index into v.Enabled of the event to execute.
	// The engine guarantees len(v.Enabled) > 0 and treats out-of-range
	// returns as a scheduler bug (panic). The View and its Enabled slice
	// are engine-owned scratch, valid only for the duration of the call;
	// schedulers must copy anything they keep.
	Pick(v *View) int
	// Executed reports the event (or, for RMWs, the read half followed
	// by a second call with the write half) that just ran.
	Executed(ev Event)
	// End reports the completed trace of the execution.
	End(t *Trace)
}
