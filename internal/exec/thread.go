package exec

import "fmt"

// Program is the body of a virtual thread. The main program and every
// spawned thread have this signature; all interaction with shared state
// goes through the Thread parameter.
type Program func(t *Thread)

// tstate tracks a thread's lifecycle from the engine's perspective.
type tstate uint8

const (
	tRunning tstate = iota + 1 // executing PUT code; engine is waiting for it to park
	tParked                    // parked at a pending event
	tExited                    // body returned (or was aborted)
)

// abortPanic is the sentinel thrown through PUT code to unwind threads when
// the engine tears an execution down.
type abortPanic struct{}

// Thread is a virtual thread handle: the API surface PUT code uses for all
// shared-state interaction. Every method that touches shared state parks
// the goroutine and waits for the engine's scheduler to grant the step, so
// each call is one scheduling point (one instrumented instruction in the
// paper's terms).
type Thread struct {
	id   ThreadID
	name string
	eng  *Engine
	body Program

	seq     int
	pending Pending
	state   tstate
	grant   chan struct{}

	// engine-managed blocking state
	signaled bool    // condition wait has been signaled; may reacquire
	exited   bool    // body returned
	newObj   *object // object being registered by an OpVarInit park
	newChild *Thread // child being registered by an OpSpawn park

	// channel rendezvous transfer slot: a sender executing against this
	// parked receiver (a plain recv or a select with a matching recv
	// case) deposits the value here; the receiver's pending becomes
	// enabled and completes the handoff when scheduled.
	chanMatched bool
	chanVal     int64
	chanRF      int // trace ID of the matching send event
	chanCase    int // select case index the match bound (0 for plain recv)

	// results handed back by the engine on grant
	retVal   int64
	retOK    bool
	retRecvd bool // TryRecv: a receive happened (value or closed), vs would-block
	retCase  int  // Select: index of the fired case
}

// ID returns the thread's ID (main is 1; children numbered in spawn order).
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's name as given at spawn.
func (t *Thread) Name() string { return t.name }

// park publishes the pending event and blocks until the engine grants the
// step (or aborts the execution).
func (t *Thread) park(p Pending) {
	t.seq++
	p.Thread = t.id
	p.Seq = t.seq
	t.pending = p
	t.eng.notify <- notice{th: t, kind: noteParked}
	<-t.grant
	if t.eng.abort {
		panic(abortPanic{})
	}
}

// run executes the thread body, converting stray panics into crash
// failures and always notifying the engine of thread exit.
func (t *Thread) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortPanic); !ok && !t.eng.abort && t.eng.failure == nil {
				// The engine is quiescent while this thread runs, so
				// recording the failure here is race-free.
				t.eng.failure = &Failure{
					Kind:   FailPanic,
					Msg:    fmt.Sprint(r),
					Thread: t.id,
				}
			}
		}
		t.exited = true
		t.eng.notify <- notice{th: t, kind: noteExited}
	}()
	t.body(t)
}

// --- shared-object creation -------------------------------------------------

// NewVar creates a shared integer variable initialized to init. Creation
// records the synthetic initial write event (the reads-from source for
// reads observing the initial value). Names must be unique per execution.
func (t *Thread) NewVar(name string, init int64) *Var {
	o := &object{kind: objVar, name: name, val: init}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1), Val: init})
	return &Var{obj: o, eng: t.eng}
}

// NewVars creates n shared variables named name[0..n-1], all initialized to
// init — the engine's analogue of a shared array.
func (t *Thread) NewVars(name string, n int, init int64) []*Var {
	loc := callerLoc(1)
	vars := make([]*Var, n)
	for i := range vars {
		nm := fmt.Sprintf("%s[%d]", name, i)
		o := &object{kind: objVar, name: nm, val: init}
		t.newObj = o
		t.park(Pending{Op: OpVarInit, VarName: nm, Loc: loc, Val: init})
		vars[i] = &Var{obj: o, eng: t.eng}
	}
	return vars
}

// NewMutex creates a mutex. Names must be unique per execution.
func (t *Thread) NewMutex(name string) *Mutex {
	o := &object{kind: objMutex, name: name}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1)})
	return &Mutex{obj: o, eng: t.eng}
}

// NewCond creates a condition variable bound to m.
func (t *Thread) NewCond(name string, m *Mutex) *Cond {
	o := &object{kind: objCond, name: name, mutex: m}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1)})
	return &Cond{obj: o, eng: t.eng}
}

// --- memory operations --------------------------------------------------------

// Read loads the variable's current value. One scheduling point; records a
// read event whose reads-from edge points at the last write.
func (t *Thread) Read(v *Var) int64 {
	t.park(Pending{Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: callerLoc(1)})
	return t.retVal
}

// ReadAt is Read with an explicit source location, for PUT helpers that
// want call-site-independent abstract events.
func (t *Thread) ReadAt(v *Var, loc string) int64 {
	t.park(Pending{Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: loc})
	return t.retVal
}

// Write stores val into the variable. One scheduling point.
func (t *Thread) Write(v *Var, val int64) {
	t.park(Pending{Op: OpWrite, Var: v.obj.id, VarName: v.obj.name, Loc: callerLoc(1), Val: val})
}

// WriteAt is Write with an explicit source location.
func (t *Thread) WriteAt(v *Var, val int64, loc string) {
	t.park(Pending{Op: OpWrite, Var: v.obj.id, VarName: v.obj.name, Loc: loc, Val: val})
}

// AddAt is Add with an explicit source location for both halves.
func (t *Thread) AddAt(v *Var, delta int64, loc string) int64 {
	t.park(Pending{Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: loc})
	nv := t.retVal + delta
	t.park(Pending{Op: OpWrite, Var: v.obj.id, VarName: v.obj.name, Loc: loc, Val: nv})
	return nv
}

// CASAt is CAS with an explicit source location.
func (t *Thread) CASAt(v *Var, old, new int64, loc string) (int64, bool) {
	t.park(Pending{
		Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: loc,
		RMW: RMWCAS, CASOld: old, Val: new,
	})
	return t.retVal, t.retOK
}

// AtomicAddAt is AtomicAdd with an explicit source location.
func (t *Thread) AtomicAddAt(v *Var, delta int64, loc string) int64 {
	t.park(Pending{
		Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: loc,
		RMW: RMWAdd, Val: delta,
	})
	return t.retVal
}

// Add performs a NON-atomic increment: a read scheduling point followed by
// an independent write scheduling point, exactly like a compiled `x += d`
// (load; add; store). Other threads may interleave between the halves —
// the classic lost-update race.
func (t *Thread) Add(v *Var, delta int64) int64 {
	loc := callerLoc(1)
	t.park(Pending{Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: loc})
	nv := t.retVal + delta
	t.park(Pending{Op: OpWrite, Var: v.obj.id, VarName: v.obj.name, Loc: loc, Val: nv})
	return nv
}

// CAS performs an atomic compare-and-swap: one scheduling point recording a
// read event and, iff the read value equals old, a write event with no
// preemption in between. Returns the observed value and whether the swap
// happened.
func (t *Thread) CAS(v *Var, old, new int64) (int64, bool) {
	t.park(Pending{
		Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: callerLoc(1),
		RMW: RMWCAS, CASOld: old, Val: new,
	})
	return t.retVal, t.retOK
}

// AtomicAdd performs an atomic fetch-and-add in one scheduling point,
// returning the previous value.
func (t *Thread) AtomicAdd(v *Var, delta int64) int64 {
	t.park(Pending{
		Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: callerLoc(1),
		RMW: RMWAdd, Val: delta,
	})
	return t.retVal
}

// AtomicSwap atomically exchanges the variable's value in one scheduling
// point, returning the previous value.
func (t *Thread) AtomicSwap(v *Var, new int64) int64 {
	t.park(Pending{
		Op: OpRead, Var: v.obj.id, VarName: v.obj.name, Loc: callerLoc(1),
		RMW: RMWSwap, Val: new,
	})
	return t.retVal
}

// --- synchronization ----------------------------------------------------------

// Lock acquires the mutex; the pending lock is enabled only while the mutex
// is free, so contention is a genuine scheduling choice.
func (t *Thread) Lock(m *Mutex) {
	t.park(Pending{Op: OpLock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
}

// LockAt is Lock with an explicit source location.
func (t *Thread) LockAt(m *Mutex, loc string) {
	t.park(Pending{Op: OpLock, Var: m.obj.id, VarName: m.obj.name, Loc: loc})
}

// Unlock releases the mutex. Unlocking a mutex the thread does not hold is
// reported as a crash (undefined behaviour in pthreads).
func (t *Thread) Unlock(m *Mutex) {
	t.park(Pending{Op: OpUnlock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
}

// UnlockAt is Unlock with an explicit source location.
func (t *Thread) UnlockAt(m *Mutex, loc string) {
	t.park(Pending{Op: OpUnlock, Var: m.obj.id, VarName: m.obj.name, Loc: loc})
}

// Wait atomically releases the condition's mutex and blocks until signaled,
// then reacquires the mutex before returning (two events: OpWait and
// OpLockRe). The caller must hold the mutex.
func (t *Thread) Wait(c *Cond) {
	loc := callerLoc(1)
	t.park(Pending{Op: OpWait, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
	t.signaled = false
	t.park(Pending{Op: OpLockRe, Var: c.obj.mutex.obj.id, VarName: c.obj.mutex.obj.name, Loc: loc})
}

// WaitAt is Wait with an explicit source location.
func (t *Thread) WaitAt(c *Cond, loc string) {
	t.park(Pending{Op: OpWait, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
	t.signaled = false
	t.park(Pending{Op: OpLockRe, Var: c.obj.mutex.obj.id, VarName: c.obj.mutex.obj.name, Loc: loc})
}

// Signal wakes the longest-waiting thread blocked on the condition, if any;
// a signal with no waiters is lost (pthread semantics — the source of
// several SCTBench bugs).
func (t *Thread) Signal(c *Cond) {
	t.park(Pending{Op: OpSignal, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1)})
}

// SignalAt is Signal with an explicit source location.
func (t *Thread) SignalAt(c *Cond, loc string) {
	t.park(Pending{Op: OpSignal, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
}

// Broadcast wakes all threads currently blocked on the condition.
func (t *Thread) Broadcast(c *Cond) {
	t.park(Pending{Op: OpBroadcast, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1)})
}

// BroadcastAt is Broadcast with an explicit source location.
func (t *Thread) BroadcastAt(c *Cond, loc string) {
	t.park(Pending{Op: OpBroadcast, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
}

// --- threads -------------------------------------------------------------------

// Go spawns a child thread executing body. The child is created parked at
// its OpBegin event; its body runs only once the scheduler picks it.
func (t *Thread) Go(name string, body Program) *Thread {
	child := &Thread{name: name, eng: t.eng, body: body, grant: make(chan struct{})}
	t.newChild = child
	t.park(Pending{Op: OpSpawn, Loc: callerLoc(1)})
	return child
}

// Join blocks until the child thread has finished; enabled only once the
// target has exited.
func (t *Thread) Join(child *Thread) {
	t.park(Pending{Op: OpJoin, Loc: callerLoc(1), Target: child.id})
}

// JoinAll joins each thread in order.
func (t *Thread) JoinAll(children ...*Thread) {
	loc := callerLoc(1)
	for _, c := range children {
		t.park(Pending{Op: OpJoin, Loc: loc, Target: c.id})
	}
}

// Yield is a pure scheduling point (sched_yield analogue).
func (t *Thread) Yield() {
	t.park(Pending{Op: OpYield, Loc: callerLoc(1)})
}

// YieldAt is Yield with an explicit source location.
func (t *Thread) YieldAt(loc string) {
	t.park(Pending{Op: OpYield, Loc: loc})
}

// --- oracles --------------------------------------------------------------------

// Assert checks a PUT invariant over already-read (thread-local) values.
// A passing assert is not a scheduling point; a failing assert ends the
// execution with an assertion-violation failure — the paper's primary bug
// oracle.
func (t *Thread) Assert(cond bool, msg string) {
	if cond {
		return
	}
	t.park(Pending{Op: OpFail, Loc: callerLoc(1), FailKind: FailAssert, FailMsg: msg})
}

// AssertAt is Assert with an explicit source location for the failure
// event, so interpreted programs (internal/progen) get per-statement
// abstract events instead of one shared interpreter call site.
func (t *Thread) AssertAt(cond bool, msg, loc string) {
	if cond {
		return
	}
	t.park(Pending{Op: OpFail, Loc: loc, FailKind: FailAssert, FailMsg: msg})
}

// Assertf is Assert with formatted message construction on failure only.
func (t *Thread) Assertf(cond bool, format string, args ...any) {
	if cond {
		return
	}
	t.park(Pending{Op: OpFail, Loc: callerLoc(1), FailKind: FailAssert, FailMsg: fmt.Sprintf(format, args...)})
}

// FailMemory reports a simulated memory-safety violation (use-after-free,
// null dereference, double free) — the crash oracle for the ConVul-style
// programs.
func (t *Thread) FailMemory(msg string) {
	t.park(Pending{Op: OpFail, Loc: callerLoc(1), FailKind: FailMemory, FailMsg: msg})
}

// Fail reports an explicit crash with the given kind.
func (t *Thread) Fail(kind FailureKind, msg string) {
	t.park(Pending{Op: OpFail, Loc: callerLoc(1), FailKind: kind, FailMsg: msg})
}

// --- reader-writer locks --------------------------------------------------------

// NewRWMutex creates a reader-writer lock. Names must be unique per
// execution.
func (t *Thread) NewRWMutex(name string) *RWMutex {
	o := &object{kind: objRWMutex, name: name}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1)})
	return &RWMutex{obj: o, eng: t.eng}
}

// RLock acquires the lock in shared mode; enabled while no writer holds
// it (readers never block each other).
func (t *Thread) RLock(m *RWMutex) {
	t.park(Pending{Op: OpRLock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
}

// RLockAt is RLock with an explicit source location.
func (t *Thread) RLockAt(m *RWMutex, loc string) {
	t.park(Pending{Op: OpRLock, Var: m.obj.id, VarName: m.obj.name, Loc: loc})
}

// RUnlock releases a shared hold.
func (t *Thread) RUnlock(m *RWMutex) {
	t.park(Pending{Op: OpRUnlock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
}

// RUnlockAt is RUnlock with an explicit source location.
func (t *Thread) RUnlockAt(m *RWMutex, loc string) {
	t.park(Pending{Op: OpRUnlock, Var: m.obj.id, VarName: m.obj.name, Loc: loc})
}

// WLock acquires the lock exclusively; enabled only once every reader and
// writer has released.
func (t *Thread) WLock(m *RWMutex) {
	t.park(Pending{Op: OpWLock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
}

// WLockAt is WLock with an explicit source location.
func (t *Thread) WLockAt(m *RWMutex, loc string) {
	t.park(Pending{Op: OpWLock, Var: m.obj.id, VarName: m.obj.name, Loc: loc})
}

// WUnlock releases the exclusive hold.
func (t *Thread) WUnlock(m *RWMutex) {
	t.park(Pending{Op: OpWUnlock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
}

// WUnlockAt is WUnlock with an explicit source location.
func (t *Thread) WUnlockAt(m *RWMutex, loc string) {
	t.park(Pending{Op: OpWUnlock, Var: m.obj.id, VarName: m.obj.name, Loc: loc})
}

// TryLock attempts to acquire the mutex without blocking, reporting
// whether it succeeded. The attempt is a scheduling point either way.
func (t *Thread) TryLock(m *Mutex) bool {
	t.park(Pending{Op: OpTryLock, Var: m.obj.id, VarName: m.obj.name, Loc: callerLoc(1)})
	return t.retOK
}

// --- semaphores ------------------------------------------------------------------

// NewSemaphore creates a counting semaphore with the given initial count.
func (t *Thread) NewSemaphore(name string, initial int64) *Semaphore {
	o := &object{kind: objSemaphore, name: name, val: initial}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1), Val: initial})
	return &Semaphore{obj: o, eng: t.eng}
}

// SemWait decrements the semaphore, blocking while the count is zero
// (sem_wait).
func (t *Thread) SemWait(s *Semaphore) {
	t.park(Pending{Op: OpSemWait, Var: s.obj.id, VarName: s.obj.name, Loc: callerLoc(1)})
}

// SemPost increments the semaphore, potentially unblocking a waiter
// (sem_post).
func (t *Thread) SemPost(s *Semaphore) {
	t.park(Pending{Op: OpSemPost, Var: s.obj.id, VarName: s.obj.name, Loc: callerLoc(1)})
}

// --- barriers ---------------------------------------------------------------------

// NewBarrier creates a barrier for the given number of parties.
func (t *Thread) NewBarrier(name string, parties int) *Barrier {
	o := &object{kind: objBarrier, name: name, val: int64(parties)}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1), Val: int64(parties)})
	return &Barrier{obj: o, eng: t.eng}
}

// BarrierWait joins the barrier, blocking until all parties have arrived
// (pthread_barrier_wait).
func (t *Thread) BarrierWait(b *Barrier) {
	t.park(Pending{Op: OpBarrier, Var: b.obj.id, VarName: b.obj.name, Loc: callerLoc(1)})
}

// --- channels ---------------------------------------------------------------------

// NewChan creates a channel with the given buffer capacity (0 =
// unbuffered rendezvous). Names must be unique per execution.
func (t *Thread) NewChan(name string, capacity int) *Chan {
	if capacity < 0 {
		capacity = 0
	}
	o := &object{kind: objChan, name: name, cap: capacity}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1), Val: int64(capacity)})
	return &Chan{obj: o, eng: t.eng}
}

// Send sends v on the channel: on an unbuffered channel it blocks until a
// receiver is parked on the channel (rendezvous), on a buffered channel
// until there is capacity. Sending on a closed channel crashes with
// FailSendClosed, matching Go.
func (t *Thread) Send(c *Chan, v int64) {
	t.park(Pending{Op: OpSend, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1), Val: v})
}

// SendAt is Send with an explicit source location.
func (t *Thread) SendAt(c *Chan, v int64, loc string) {
	t.park(Pending{Op: OpSend, Var: c.obj.id, VarName: c.obj.name, Loc: loc, Val: v})
}

// Recv receives from the channel, blocking until a value is available or
// the channel is closed. Like Go's v, ok := <-ch it returns the value and
// whether it was a real send (false: closed and drained, v is 0).
func (t *Thread) Recv(c *Chan) (int64, bool) {
	t.park(Pending{Op: OpRecv, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1)})
	return t.retVal, t.retOK
}

// RecvAt is Recv with an explicit source location.
func (t *Thread) RecvAt(c *Chan, loc string) (int64, bool) {
	t.park(Pending{Op: OpRecv, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
	return t.retVal, t.retOK
}

// Close closes the channel. Parked senders become enabled and crash with
// FailSendClosed when scheduled; receivers drain the buffer and then
// observe (0, false). Closing twice crashes with FailCloseClosed.
func (t *Thread) Close(c *Chan) {
	t.park(Pending{Op: OpClose, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1)})
}

// CloseAt is Close with an explicit source location.
func (t *Thread) CloseAt(c *Chan, loc string) {
	t.park(Pending{Op: OpClose, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
}

// TrySend attempts a non-blocking send (select { case ch <- v: default: }),
// reporting whether the value was delivered. On an unbuffered channel it
// succeeds only against a parked receiver. Sending on a closed channel
// crashes even when non-blocking, matching Go.
func (t *Thread) TrySend(c *Chan, v int64) bool {
	t.park(Pending{Op: OpTrySend, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1), Val: v})
	return t.retOK
}

// TrySendAt is TrySend with an explicit source location.
func (t *Thread) TrySendAt(c *Chan, v int64, loc string) bool {
	t.park(Pending{Op: OpTrySend, Var: c.obj.id, VarName: c.obj.name, Loc: loc, Val: v})
	return t.retOK
}

// TryRecv attempts a non-blocking receive. recvd reports whether a
// receive happened at all (would-block: false); ok distinguishes a sent
// value from the zero value of a closed drained channel. An unbuffered
// channel only yields closure this way: the engine's rendezvous is
// sender-active, so a non-blocking receive never pairs with a blocked
// sender (see DESIGN.md §15).
func (t *Thread) TryRecv(c *Chan) (v int64, ok, recvd bool) {
	t.park(Pending{Op: OpTryRecv, Var: c.obj.id, VarName: c.obj.name, Loc: callerLoc(1)})
	return t.retVal, t.retOK, t.retRecvd
}

// TryRecvAt is TryRecv with an explicit source location.
func (t *Thread) TryRecvAt(c *Chan, loc string) (v int64, ok, recvd bool) {
	t.park(Pending{Op: OpTryRecv, Var: c.obj.id, VarName: c.obj.name, Loc: loc})
	return t.retVal, t.retOK, t.retRecvd
}

// Select blocks until one of the cases can fire, then fires exactly one —
// deterministically the lowest-index ready case, so a (program, schedule)
// pair always fires the same arm and replay is exact. It returns the
// fired case's index, and for receive cases the received value and ok
// flag (Go's v, ok := <-ch). There is no default case: express
// non-blocking arms with TrySend/TryRecv.
func (t *Thread) Select(cases ...SelectCase) (idx int, v int64, ok bool) {
	return t.SelectAt(callerLoc(1), cases...)
}

// SelectAt is Select with an explicit source location, recorded on
// whichever case event fires.
func (t *Thread) SelectAt(loc string, cases ...SelectCase) (idx int, v int64, ok bool) {
	if len(cases) == 0 {
		panic("exec: select with no cases")
	}
	names := make([]byte, 0, 16)
	for i, c := range cases {
		if i > 0 {
			names = append(names, ',')
		}
		names = append(names, c.Ch.obj.name...)
	}
	t.park(Pending{Op: OpSelect, VarName: string(names), Loc: loc, Cases: cases})
	return t.retCase, t.retVal, t.retOK
}

// --- wait groups ------------------------------------------------------------------

// NewWaitGroup creates a WaitGroup with a zero counter. Names must be
// unique per execution.
func (t *Thread) NewWaitGroup(name string) *WaitGroup {
	o := &object{kind: objWaitGroup, name: name}
	t.newObj = o
	t.park(Pending{Op: OpVarInit, VarName: name, Loc: callerLoc(1)})
	return &WaitGroup{obj: o, eng: t.eng}
}

// WgAdd moves the WaitGroup counter by delta. A negative counter crashes,
// matching sync.WaitGroup.
func (t *Thread) WgAdd(w *WaitGroup, delta int64) {
	t.park(Pending{Op: OpWgAdd, Var: w.obj.id, VarName: w.obj.name, Loc: callerLoc(1), Val: delta})
}

// WgAddAt is WgAdd with an explicit source location.
func (t *Thread) WgAddAt(w *WaitGroup, delta int64, loc string) {
	t.park(Pending{Op: OpWgAdd, Var: w.obj.id, VarName: w.obj.name, Loc: loc, Val: delta})
}

// WgDone is WgAdd(-1).
func (t *Thread) WgDone(w *WaitGroup) {
	t.park(Pending{Op: OpWgAdd, Var: w.obj.id, VarName: w.obj.name, Loc: callerLoc(1), Val: -1})
}

// WgDoneAt is WgDone with an explicit source location.
func (t *Thread) WgDoneAt(w *WaitGroup, loc string) {
	t.park(Pending{Op: OpWgAdd, Var: w.obj.id, VarName: w.obj.name, Loc: loc, Val: -1})
}

// WgWait blocks until the WaitGroup counter is zero. Its event reads-from
// the counter update (or init) that released it.
func (t *Thread) WgWait(w *WaitGroup) {
	t.park(Pending{Op: OpWgWait, Var: w.obj.id, VarName: w.obj.name, Loc: callerLoc(1)})
}

// WgWaitAt is WgWait with an explicit source location.
func (t *Thread) WgWaitAt(w *WaitGroup, loc string) {
	t.park(Pending{Op: OpWgWait, Var: w.obj.id, VarName: w.obj.name, Loc: loc})
}
