package exec

// Recycler carries reusable buffers and size hints across executions of
// the same program. Traces of one program have near-identical event and
// thread counts from run to run, so a campaign that threads a Recycler
// through exec.Config (and returns each finished trace via Reclaim) runs
// every execution after the first into pre-sized, already-allocated
// backing arrays instead of growing them from zero.
//
// A Recycler is single-campaign state: use one per fuzzing loop, never
// share one across concurrently running executions.
type Recycler struct {
	events    []Event
	decisions []ThreadID

	// Size hints recorded at the end of each run; the next run pre-sizes
	// its thread table, object registry, and trace from them.
	prevThreads int
	prevObjs    int
	prevSteps   int
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler { return &Recycler{} }

// take hands the pooled trace arrays to a starting engine (nil slices on
// first use) and detaches them from the recycler so a missing Reclaim can
// never alias two traces.
func (r *Recycler) take() (events []Event, decisions []ThreadID) {
	events, decisions = r.events[:0:cap(r.events)], r.decisions[:0:cap(r.decisions)]
	r.events, r.decisions = nil, nil
	return events, decisions
}

// record stores the finished engine's sizes as hints for the next run.
func (r *Recycler) record(threads, objs, steps int) {
	r.prevThreads, r.prevObjs, r.prevSteps = threads, objs, steps
}

// Reclaim returns t's backing arrays to the recycler and invalidates the
// trace: after Reclaim, the trace, its summary, and any slices obtained
// from them must no longer be used. Call it once every consumer of the
// execution's result is done — the fuzzer does so at the end of each
// iteration, after feedback, pool, and TraceObserver have run. A nil
// trace is a no-op.
func (r *Recycler) Reclaim(t *Trace) {
	if t == nil {
		return
	}
	r.events = t.Events[:0:cap(t.Events)]
	r.decisions = t.Decisions[:0:cap(t.Decisions)]
	t.Events, t.Decisions = nil, nil
	t.summary = nil
}
