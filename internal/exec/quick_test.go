package exec_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rff/internal/exec"
	"rff/internal/sched"
)

// genProgram builds a random but always-terminating program from a seed:
// up to 4 worker threads, each a straight-line sequence of reads, writes,
// non-atomic adds, CASes and balanced lock/unlock pairs over a small set
// of shared variables and mutexes. No loops, so every schedule terminates
// or deadlocks — either way the trace must validate.
func genProgram(seed int64) exec.Program {
	return func(t *exec.Thread) {
		rng := rand.New(rand.NewSource(seed))
		nVars := 1 + rng.Intn(3)
		nMux := rng.Intn(3)
		nThreads := 1 + rng.Intn(4)

		vars := make([]*exec.Var, nVars)
		for i := range vars {
			vars[i] = t.NewVar(varName(i), int64(rng.Intn(5)))
		}
		muxes := make([]*exec.Mutex, nMux)
		for i := range muxes {
			muxes[i] = t.NewMutex("m" + string(rune('0'+i)))
		}

		type step struct{ op, varIdx, muxIdx, val int }
		mkSteps := func(r *rand.Rand) []step {
			n := 1 + r.Intn(8)
			var steps []step
			held := -1
			for i := 0; i < n; i++ {
				op := r.Intn(6)
				if op == 4 && (nMux == 0 || held >= 0) {
					op = 0
				}
				if op == 5 {
					op = 1
				}
				s := step{op: op, val: r.Intn(10)}
				if nVars > 0 {
					s.varIdx = r.Intn(nVars)
				}
				if op == 4 {
					s.muxIdx = r.Intn(nMux)
					held = s.muxIdx
					steps = append(steps, s)
					// Do one protected op, then unlock.
					steps = append(steps, step{op: r.Intn(2), varIdx: r.Intn(nVars), val: r.Intn(10)})
					steps = append(steps, step{op: 5, muxIdx: held})
					held = -1
					continue
				}
				steps = append(steps, s)
			}
			return steps
		}

		runSteps := func(w *exec.Thread, steps []step) {
			for _, s := range steps {
				switch s.op {
				case 0:
					w.Read(vars[s.varIdx])
				case 1:
					w.Write(vars[s.varIdx], int64(s.val))
				case 2:
					w.Add(vars[s.varIdx], 1)
				case 3:
					w.CAS(vars[s.varIdx], int64(s.val), int64(s.val+1))
				case 4:
					w.Lock(muxes[s.muxIdx])
				case 5:
					w.Unlock(muxes[s.muxIdx])
				}
			}
		}

		children := make([]*exec.Thread, nThreads)
		for i := range children {
			steps := mkSteps(rand.New(rand.NewSource(seed + int64(i)*7919)))
			children[i] = t.Go("w", func(w *exec.Thread) { runSteps(w, steps) })
		}
		t.JoinAll(children...)
	}
}

func varName(i int) string { return "v" + string(rune('0'+i)) }

// TestQuickTraceInvariants: every trace produced by any scheduler on any
// generated program satisfies the reads-from invariants.
func TestQuickTraceInvariants(t *testing.T) {
	schedulers := []func() exec.Scheduler{
		func() exec.Scheduler { return sched.NewRandom() },
		func() exec.Scheduler { return sched.NewPOS() },
		func() exec.Scheduler { return sched.NewPCT(3) },
	}
	f := func(progSeed, schedSeed int64) bool {
		prog := genProgram(progSeed)
		for _, mk := range schedulers {
			res := exec.Run("quick", prog, exec.Config{Scheduler: mk(), Seed: schedSeed})
			if err := res.Trace.Validate(); err != nil {
				t.Logf("progSeed=%d schedSeed=%d: %v\n%s", progSeed, schedSeed, err, res.Trace)
				return false
			}
			if res.Failure != nil && res.Failure.Kind != exec.FailDeadlock {
				t.Logf("progSeed=%d: unexpected failure %v", progSeed, res.Failure)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReplayRoundTrip: replaying any trace's decisions reproduces it
// event-for-event.
func TestQuickReplayRoundTrip(t *testing.T) {
	f := func(progSeed, schedSeed int64) bool {
		prog := genProgram(progSeed)
		orig := exec.Run("quick", prog, exec.Config{Scheduler: sched.NewPOS(), Seed: schedSeed})
		rep := exec.Run("quick", prog, exec.Config{Scheduler: sched.NewReplay(orig.Trace.ThreadOrder())})
		if orig.Trace.Len() != rep.Trace.Len() {
			return false
		}
		for i := range orig.Trace.Events {
			if orig.Trace.Events[i] != rep.Trace.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRFSignatureInvariance: the reads-from signature is a pure
// function of the rf-pair set — equal traces agree, and the signature is
// stable across recomputation.
func TestQuickRFSignatureInvariance(t *testing.T) {
	f := func(progSeed, schedSeed int64) bool {
		prog := genProgram(progSeed)
		res := exec.Run("quick", prog, exec.Config{Scheduler: sched.NewPOS(), Seed: schedSeed})
		return res.Trace.RFSignature() == res.Trace.RFSignature() &&
			len(res.Trace.RFPairs()) <= res.Trace.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashRFPairCommutative: XOR-combination of pair hashes is order
// independent (the property the Q-Learning state abstraction requires).
func TestQuickHashRFPairCommutative(t *testing.T) {
	mk := func(a, b, c, d byte) exec.RFPair {
		return exec.RFPair{
			Write: exec.AbstractEvent{Op: exec.OpWrite, Var: string(rune('a' + a%4)), Loc: string(rune('l' + b%4))},
			Read:  exec.AbstractEvent{Op: exec.OpRead, Var: string(rune('a' + c%4)), Loc: string(rune('l' + d%4))},
		}
	}
	f := func(a1, b1, c1, d1, a2, b2, c2, d2 byte) bool {
		p1, p2 := mk(a1, b1, c1, d1), mk(a2, b2, c2, d2)
		return exec.HashRFPair(p1)^exec.HashRFPair(p2) == exec.HashRFPair(p2)^exec.HashRFPair(p1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesCorruption: Validate must reject manufactured bad
// traces, not just accept good ones.
func TestValidateCatchesCorruption(t *testing.T) {
	res := exec.Run("quick", genProgram(5), exec.Config{Scheduler: sched.NewPOS(), Seed: 5})
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	// Corrupt a read's rf edge.
	bad := *res.Trace
	bad.Events = append([]exec.Event(nil), res.Trace.Events...)
	corrupted := false
	for i := range bad.Events {
		if bad.Events[i].Op.ReadsFrom() {
			bad.Events[i].RF = bad.Events[i].ID // forward edge: invalid
			corrupted = true
			break
		}
	}
	if corrupted {
		if err := bad.Validate(); err == nil {
			t.Fatal("corrupted trace accepted")
		}
	}
}
