package exec

// Remapper translates EventIDs assigned by one InternTable into the IDs
// of another, preserving abstract-event identity: two IDs that name the
// same AbstractEvent in the source table remap to one ID in the
// destination. The sharded campaign runner uses one Remapper per shard
// to fold shard-locally interned summaries into the campaign-global
// table at epoch merges.
//
// Translations are cached in a dense array indexed by source ID, so the
// steady-state remap of a hot event is one bounds check and one load.
// A Remapper is NOT safe for concurrent use — the merge barrier owns it.
type Remapper struct {
	from, to *InternTable
	// cache[src] holds dst+1 (0 = not yet translated; EventID 0 is a
	// valid destination ID, so the slot is offset by one).
	cache []EventID
}

// NewRemapper returns a remapper translating from's IDs into to's.
func NewRemapper(from, to *InternTable) *Remapper {
	if from == nil || to == nil {
		panic("exec.NewRemapper: nil table")
	}
	return &Remapper{from: from, to: to}
}

// Remap translates one source EventID, interning the underlying abstract
// event into the destination table on first sight. It panics on IDs the
// source table never assigned (as InternTable.Event does).
func (r *Remapper) Remap(id EventID) EventID {
	if int(id) < len(r.cache) {
		if v := r.cache[id]; v != 0 {
			return v - 1
		}
	} else {
		grown := make([]EventID, int(id)+1)
		copy(grown, r.cache)
		r.cache = grown
	}
	dst := r.to.Intern(r.from.Event(id))
	r.cache[id] = dst + 1
	return dst
}

// RemapPair translates a packed reads-from PairID: the write and read
// halves are remapped independently, so the result identifies the same
// abstract (write, read) pair in the destination table.
func (r *Remapper) RemapPair(pid PairID) PairID {
	return MakePairID(r.Remap(pid.WriteID()), r.Remap(pid.ReadID()))
}
