package exec_test

import (
	"encoding/json"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// chanProgramFromBytes interprets data as opcode streams for three
// workers over two channels (one rendezvous, one buffered) and a
// WaitGroup. Any byte string yields a terminating, loop-free program:
// every schedule either completes, deadlocks, or crashes with one of the
// channel failure kinds — all legitimate engine outcomes, never panics.
func chanProgramFromBytes(data []byte) exec.Program {
	const perWorker = 6
	return func(t *exec.Thread) {
		chans := []*exec.Chan{t.NewChan("c0", 0), t.NewChan("c1", 1)}
		wg := t.NewWaitGroup("wg")
		t.WgAdd(wg, 3)
		names := []string{"w1", "w2", "w3"}
		var workers []*exec.Thread
		for w := 0; w < 3; w++ {
			var ops []byte
			for i := w; i < len(data) && len(ops) < perWorker; i += 3 {
				ops = append(ops, data[i])
			}
			workers = append(workers, t.Go(names[w], func(w *exec.Thread) {
				for _, b := range ops {
					fuzzOp(w, b, chans, wg)
				}
				w.WgDone(wg)
			}))
		}
		t.WgWait(wg)
		t.JoinAll(workers...)
	}
}

// fuzzOp executes one opcode. Blocking ops can strand the worker (a
// detectable deadlock); close and send can crash — both are outcomes the
// engine must report cleanly.
func fuzzOp(w *exec.Thread, b byte, chans []*exec.Chan, wg *exec.WaitGroup) {
	ch := chans[(b>>4)&1]
	switch b % 8 {
	case 0:
		w.TrySend(ch, int64(b))
	case 1:
		w.TryRecv(ch)
	case 2:
		w.Send(ch, int64(b))
	case 3:
		w.Recv(ch)
	case 4:
		w.Close(ch)
	case 5:
		w.Select(exec.RecvCase(chans[0]), exec.SendCase(chans[1], int64(b)))
	case 6:
		w.Yield()
	case 7:
		w.WgAdd(wg, int64(b%3))
	}
}

// FuzzChanProgram: for any opcode string and scheduler seed, the engine
// neither panics nor records an invalid trace; the decision sequence
// replays to a bit-identical trace; and a failing run's artifact
// round-trips through encode/decode and reproduces the same failure.
func FuzzChanProgram(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{2, 3, 6}, int64(1))                   // rendezvous handoff
	f.Add([]byte{4, 2, 4}, int64(2))                   // close, send-on-closed, close-of-closed
	f.Add([]byte{5, 2, 3, 0x12, 0x11, 0x14}, int64(3)) // select + buffered channel ops
	f.Add([]byte{7, 7, 7, 2, 2, 2}, int64(4))          // WaitGroup skew + stranded sends
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		prog := chanProgramFromBytes(data)
		res := exec.Run("fuzz/chan", prog, exec.Config{
			Scheduler: sched.NewRandom(), Seed: seed, MaxSteps: 2048,
		})
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("invalid trace: %v\n%s", err, res.Trace)
		}

		rep := exec.Run("fuzz/chan", prog, exec.Config{
			Scheduler: sched.NewReplay(res.Trace.ThreadOrder()), MaxSteps: 2048,
		})
		if res.Trace.String() != rep.Trace.String() {
			t.Fatalf("replay diverged:\n%s\nvs\n%s", res.Trace, rep.Trace)
		}
		if res.Buggy() != rep.Buggy() || (res.Buggy() && res.Failure.Kind != rep.Failure.Kind) {
			t.Fatalf("replay failure mismatch: %v vs %v", res.Failure, rep.Failure)
		}

		if !res.Buggy() {
			return
		}
		// A failing run must survive the artifact round-trip and still
		// reproduce the same failure kind from the decoded decisions.
		art := &core.Artifact{
			Program:     "fuzz/chan",
			Seed:        seed,
			FailureKind: res.Failure.Kind.String(),
			FailureMsg:  res.Failure.Msg,
			FailureLoc:  res.Failure.Loc,
			Thread:      int32(res.Failure.Thread),
		}
		for _, d := range res.Trace.ThreadOrder() {
			art.Decisions = append(art.Decisions, int32(d))
		}
		raw, err := json.Marshal(art)
		if err != nil {
			t.Fatalf("encoding artifact: %v", err)
		}
		dec, err := core.DecodeArtifact(raw)
		if err != nil {
			t.Fatalf("decoding artifact: %v", err)
		}
		order := make([]exec.ThreadID, len(dec.Decisions))
		for i, d := range dec.Decisions {
			order[i] = exec.ThreadID(d)
		}
		rerun := exec.Run("fuzz/chan", prog, exec.Config{
			Scheduler: sched.NewReplay(order), MaxSteps: 2048,
		})
		if !rerun.Buggy() || rerun.Failure.Kind.String() != dec.FailureKind {
			t.Fatalf("artifact replay did not reproduce %q: %v", dec.FailureKind, rerun.Failure)
		}
	})
}
