package exec

// White-box tests for the hot-path machinery: PairID packing, intern-table
// ID assignment, the inlined FNV-1a (which must stay bit-identical to
// hash/fnv.New64a), and the single-build memoization of Trace.Summary.

import (
	"hash/fnv"
	"testing"
)

// firstEnabled always picks the first enabled event — a scheduler local to
// this package (the real ones live in internal/sched, which imports exec).
type firstEnabled struct{}

func (firstEnabled) Name() string     { return "first" }
func (firstEnabled) Begin(int64)      {}
func (firstEnabled) Pick(v *View) int { return 0 }
func (firstEnabled) Executed(Event)   {}
func (firstEnabled) End(*Trace)       {}

// hotpathProg is a two-writer/two-reader racy program producing several
// distinct abstract events and reads-from pairs.
func hotpathProg(t *Thread) {
	x := t.NewVar("x", 0)
	y := t.NewVar("y", 0)
	w := t.Go("w", func(t *Thread) {
		t.Write(x, 1)
		t.Write(y, 1)
	})
	r := t.Go("r", func(t *Thread) {
		if t.Read(y) == 1 {
			_ = t.Read(x)
		}
		t.Write(x, 2)
	})
	t.JoinAll(w, r)
	_ = t.Read(x)
}

func runHotpath(t *testing.T) *Trace {
	t.Helper()
	res := Run("hotpath", hotpathProg, Config{Scheduler: firstEnabled{}, Seed: 1})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	return res.Trace
}

func TestPairIDPackUnpack(t *testing.T) {
	cases := []struct{ w, r EventID }{
		{0, 0}, {0, 1}, {1, 0}, {7, 13},
		{0xffffffff, 0}, {0, 0xffffffff}, {0xffffffff, 0xfffffffe},
	}
	for _, c := range cases {
		pid := MakePairID(c.w, c.r)
		if pid.WriteID() != c.w || pid.ReadID() != c.r {
			t.Errorf("MakePairID(%d, %d) roundtrip gave (%d, %d)",
				c.w, c.r, pid.WriteID(), pid.ReadID())
		}
	}
	if MakePairID(1, 2) == MakePairID(2, 1) {
		t.Error("pair packing must be direction-sensitive")
	}
}

func TestInternTableAssignsDenseDeterministicIDs(t *testing.T) {
	evs := []AbstractEvent{
		{Op: OpWrite, Var: "x", Loc: "a:1"},
		{Op: OpRead, Var: "x", Loc: "a:2"},
		{Op: OpWrite, Var: "y", Loc: "a:3"},
	}
	a, b := NewInternTable(), NewInternTable()
	for i, ae := range evs {
		ida, idb := a.Intern(ae), b.Intern(ae)
		if ida != EventID(i) || idb != EventID(i) {
			t.Fatalf("event %d interned as (%d, %d), want dense first-seen order", i, ida, idb)
		}
	}
	// Re-interning is stable, and lookups roundtrip.
	for i, ae := range evs {
		if id := a.Intern(ae); id != EventID(i) {
			t.Fatalf("re-intern of event %d gave %d", i, id)
		}
		if got := a.Event(EventID(i)); got != ae {
			t.Fatalf("Event(%d) = %+v, want %+v", i, got, ae)
		}
	}
	if a.Len() != len(evs) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(evs))
	}
	pid := MakePairID(0, 1)
	if p := a.Pair(pid); p.Write != evs[0] || p.Read != evs[1] {
		t.Fatalf("Pair(%v) = %+v", pid, p)
	}
}

func TestInlineFNVMatchesStdlib(t *testing.T) {
	samples := []string{"", "x", "balance", "pop:head", "a longer location string"}
	for _, s := range samples {
		ref := fnv.New64a()
		ref.Write([]byte(s))
		if got := fnvString(uint64(fnvOffset64), s); got != ref.Sum64() {
			t.Errorf("fnvString(%q) = %#x, want %#x", s, got, ref.Sum64())
		}
	}
	ref := fnv.New64a()
	ref.Write([]byte{0x42})
	if got := fnvByte(uint64(fnvOffset64), 0x42); got != ref.Sum64() {
		t.Errorf("fnvByte = %#x, want %#x", got, ref.Sum64())
	}
}

// refHashAbstract is the historical hash/fnv encoding of an abstract event.
func refHashAbstract(h interface{ Write([]byte) (int, error) }, ae AbstractEvent) {
	h.Write([]byte(ae.Var))
	h.Write([]byte{byte(ae.Op)})
	h.Write([]byte(ae.Loc))
}

func TestHashRFPairMatchesStdlibReference(t *testing.T) {
	tr := runHotpath(t)
	for _, p := range tr.RFPairs() {
		ref := fnv.New64a()
		refHashAbstract(ref, p.Write)
		ref.Write([]byte{1})
		refHashAbstract(ref, p.Read)
		if got := HashRFPair(p); got != ref.Sum64() {
			t.Errorf("HashRFPair(%v) = %#x, want stdlib reference %#x", p, got, ref.Sum64())
		}
	}
}

func TestRFSignatureMatchesStdlibReference(t *testing.T) {
	tr := runHotpath(t)
	pairs := tr.RFPairs()
	if len(pairs) == 0 {
		t.Fatal("program produced no rf pairs")
	}
	ref := fnv.New64a()
	for _, p := range pairs { // RFPairs is already deterministically sorted
		refHashAbstract(ref, p.Write)
		refHashAbstract(ref, p.Read)
		ref.Write([]byte{0})
	}
	if got := tr.RFSignature(); got != ref.Sum64() {
		t.Fatalf("RFSignature = %#x, want stdlib reference %#x", got, ref.Sum64())
	}
}

func TestSummaryBuildsOnce(t *testing.T) {
	tr := runHotpath(t)
	// Hit every consumer-facing accessor several times, the way the
	// fuzzing loop's observe phase does (Feedback, EventPool, power
	// schedule, observers).
	for i := 0; i < 3; i++ {
		if len(tr.RFPairs()) == 0 {
			t.Fatal("no rf pairs")
		}
		_ = tr.RFSignature()
		if len(tr.AbstractEvents()) == 0 {
			t.Fatal("no abstract events")
		}
		_ = tr.Summary()
	}
	if n := tr.summaryBuildCount(); n != 1 {
		t.Fatalf("summary built %d times, want exactly 1", n)
	}
}

func TestMemoizedAccessorsAllocateNothing(t *testing.T) {
	tr := runHotpath(t)
	tr.Summary() // warm the memo
	allocs := testing.AllocsPerRun(100, func() {
		_ = tr.RFPairs()
		_ = tr.RFSignature()
		_ = tr.AbstractEvents()
	})
	if allocs != 0 {
		t.Fatalf("memoized accessors allocated %.1f objects/run, want 0", allocs)
	}
}

func TestSummaryConsistentAcrossTables(t *testing.T) {
	// The same execution summarized through a shared table and through a
	// private one must agree on everything except the ID namespace.
	shared := NewInternTable()
	shared.Intern(AbstractEvent{Op: OpWrite, Var: "pre-existing", Loc: "z:0"}) // offset the IDs
	a := Run("hotpath", hotpathProg, Config{Scheduler: firstEnabled{}, Seed: 1}).Trace
	b := Run("hotpath", hotpathProg, Config{Scheduler: firstEnabled{}, Seed: 1, Intern: shared}).Trace
	sa, sb := a.Summary(), b.Summary()
	if sa.Sig != sb.Sig {
		t.Fatalf("signatures diverge across tables: %#x vs %#x", sa.Sig, sb.Sig)
	}
	if len(sa.Pairs) != len(sb.Pairs) {
		t.Fatalf("pair counts diverge: %d vs %d", len(sa.Pairs), len(sb.Pairs))
	}
	for i := range sa.Pairs {
		if sa.Pairs[i] != sb.Pairs[i] {
			t.Fatalf("pair %d diverges: %+v vs %+v", i, sa.Pairs[i], sb.Pairs[i])
		}
		// The parallel ID slices must resolve back to the same pairs.
		if got := sb.Table.Pair(sb.PairIDs[i]); got != sb.Pairs[i] {
			t.Fatalf("PairIDs[%d] resolves to %+v, want %+v", i, got, sb.Pairs[i])
		}
	}
}
