package exec

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// locCache interns "file.go:line" strings for program counters so that
// repeated events at the same call site share one string and location
// capture stays cheap inside the event hot path.
var locCache sync.Map // uintptr -> string

// callerLoc returns the source location ("file.go:123", base name only) of
// the caller skip frames above callerLoc itself. It is the engine's analogue
// of the paper's instruction address l in op(x)@l: PUT code gets stable,
// human-readable event locations with zero annotation burden.
func callerLoc(skip int) string {
	pc, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return "?"
	}
	if v, hit := locCache.Load(pc); hit {
		return v.(string)
	}
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	loc := file + ":" + strconv.Itoa(line)
	locCache.Store(pc, loc)
	return loc
}
