package exec_test

import (
	"testing"

	"rff/internal/exec"
	"rff/internal/sched"
)

func TestRWMutexSharedReaders(t *testing.T) {
	// Two readers may hold the lock simultaneously; a writer excludes
	// both. The "inside" counter checks overlap is possible and writer
	// exclusion holds.
	prog := func(t *exec.Thread) {
		rw := t.NewRWMutex("rw")
		inside := t.NewVar("inside", 0)
		data := t.NewVar("data", 0)
		reader := func(w *exec.Thread) {
			w.RLock(rw)
			w.AtomicAdd(inside, 1)
			w.Read(data)
			w.AtomicAdd(inside, -1)
			w.RUnlock(rw)
		}
		writer := func(w *exec.Thread) {
			w.WLock(rw)
			n := w.Read(inside)
			w.Assertf(n == 0, "writer overlapped %d readers", n)
			w.Write(data, 1)
			w.WUnlock(rw)
		}
		r1, r2 := t.Go("r1", reader), t.Go("r2", reader)
		wr := t.Go("w", writer)
		t.JoinAll(r1, r2, wr)
	}
	for seed := int64(0); seed < 200; seed++ {
		res := exec.Run("rw", prog, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		if res.Buggy() {
			t.Fatalf("seed %d: rwlock exclusion violated: %v\n%s", seed, res.Failure, res.Trace)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRWMutexWriterBlocksUntilReadersDrain(t *testing.T) {
	// A single reader holding the lock keeps the writer disabled: under
	// round-robin the reader (spawned first) wins, and the writer's
	// lock event must come after the reader's unlock.
	prog := func(t *exec.Thread) {
		rw := t.NewRWMutex("rw")
		r := t.Go("r", func(w *exec.Thread) {
			w.RLock(rw)
			w.Yield()
			w.RUnlock(rw)
		})
		wr := t.Go("w", func(w *exec.Thread) {
			w.WLock(rw)
			w.WUnlock(rw)
		})
		t.JoinAll(r, wr)
	}
	res := exec.Run("rw", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
	var runlockAt, wlockAt int
	for _, e := range res.Trace.Events {
		switch e.Op {
		case exec.OpRUnlock:
			runlockAt = e.ID
		case exec.OpWLock:
			wlockAt = e.ID
		}
	}
	if wlockAt < runlockAt {
		t.Fatalf("writer locked before reader released:\n%s", res.Trace)
	}
	// The write-lock's rf edge points at the read-unlock.
	if res.Trace.Event(wlockAt).RF != runlockAt {
		t.Fatalf("wlock should read-from runlock: %v", res.Trace.Event(wlockAt))
	}
}

func TestTryLock(t *testing.T) {
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		t.Lock(m)
		got := t.Go("got", func(w *exec.Thread) {
			if w.TryLock(m) {
				w.Fail(exec.FailAssert, "trylock succeeded on held mutex")
			}
		})
		t.Join(got)
		t.Unlock(m)
		if !t.TryLock(m) {
			t.Fail(exec.FailAssert, "trylock failed on free mutex")
		}
		t.Unlock(m)
	}
	res := exec.Run("try", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	// Consumer waits twice on a zero semaphore; producer posts twice.
	// Under every schedule the consumer's waits follow matching posts.
	prog := func(t *exec.Thread) {
		s := t.NewSemaphore("s", 0)
		done := t.NewVar("done", 0)
		c := t.Go("c", func(w *exec.Thread) {
			w.SemWait(s)
			w.SemWait(s)
			w.Write(done, 1)
		})
		p := t.Go("p", func(w *exec.Thread) {
			w.SemPost(s)
			w.SemPost(s)
		})
		t.JoinAll(c, p)
		t.Assert(t.Read(done) == 1, "consumer finished")
	}
	for seed := int64(0); seed < 100; seed++ {
		res := exec.Run("sem", prog, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSemaphoreDeadlockDetected(t *testing.T) {
	res := exec.Run("sem", func(t *exec.Thread) {
		s := t.NewSemaphore("s", 0)
		t.SemWait(s) // nobody posts
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("want deadlock, got %v", res.Failure)
	}
}

func TestBarrierReleasesAllParties(t *testing.T) {
	prog := func(t *exec.Thread) {
		b := t.NewBarrier("b", 3)
		before := t.NewVar("before", 0)
		workers := make([]*exec.Thread, 3)
		for i := range workers {
			workers[i] = t.Go("w", func(w *exec.Thread) {
				w.AtomicAdd(before, 1)
				w.BarrierWait(b)
				// Every thread past the barrier must see all arrivals.
				w.Assertf(w.Read(before) == 3, "crossed barrier before all arrived: %d", w.Read(before))
			})
		}
		t.JoinAll(workers...)
	}
	for seed := int64(0); seed < 100; seed++ {
		res := exec.Run("barrier", prog, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	prog := func(t *exec.Thread) {
		b := t.NewBarrier("b", 2)
		phase := t.NewVar("phase", 0)
		mk := func(w *exec.Thread) {
			w.BarrierWait(b)
			w.AtomicAdd(phase, 1)
			w.BarrierWait(b)
			w.Assertf(w.Read(phase) == 2, "second phase started early: %d", w.Read(phase))
		}
		a, c := t.Go("a", mk), t.Go("c", mk)
		t.JoinAll(a, c)
	}
	for seed := int64(0); seed < 100; seed++ {
		res := exec.Run("barrier2", prog, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	}
}

func TestBarrierMissingPartyDeadlocks(t *testing.T) {
	res := exec.Run("barrier", func(t *exec.Thread) {
		b := t.NewBarrier("b", 2)
		t.BarrierWait(b) // the second party never comes
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("want deadlock, got %v", res.Failure)
	}
}

func TestRWMisuseCrashes(t *testing.T) {
	res := exec.Run("rw", func(t *exec.Thread) {
		rw := t.NewRWMutex("rw")
		t.RUnlock(rw)
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want misuse crash, got %v", res.Failure)
	}
	res = exec.Run("rw", func(t *exec.Thread) {
		rw := t.NewRWMutex("rw")
		t.WUnlock(rw)
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want misuse crash, got %v", res.Failure)
	}
}
