package exec_test

import (
	"strings"
	"testing"

	"rff/internal/exec"
	"rff/internal/sched"
)

func TestCondWakeupIsFIFO(t *testing.T) {
	// Two waiters, one signal: the longest-waiting thread wakes first.
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		cv := t.NewCond("cv", m)
		woken := t.NewVar("woken", 0)
		waiter := func(id int64) exec.Program {
			return func(w *exec.Thread) {
				w.Lock(m)
				w.Wait(cv)
				if w.Read(woken) == 0 {
					w.Write(woken, id)
				}
				w.Unlock(m)
			}
		}
		w1 := t.Go("w1", waiter(1))
		// Ensure w1 waits first under round-robin (spawn order = run order).
		w2 := t.Go("w2", waiter(2))
		sig := t.Go("sig", func(w *exec.Thread) {
			w.Lock(m)
			w.Signal(cv)
			w.Signal(cv)
			w.Unlock(m)
		})
		t.JoinAll(w1, w2, sig)
		t.Assert(t.Read(woken) == 1, "FIFO wakeup")
	}
	res := exec.Run("fifo", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("FIFO violated: %v\n%s", res.Failure, res.Trace)
	}
}

func TestWaitWithoutMutexIsCrash(t *testing.T) {
	res := exec.Run("misuse", func(t *exec.Thread) {
		m := t.NewMutex("m")
		cv := t.NewCond("cv", m)
		t.Wait(cv) // without holding m
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want misuse crash, got %v", res.Failure)
	}
}

func TestExplicitLocationAPIs(t *testing.T) {
	res := exec.Run("loc", func(t *exec.Thread) {
		v := t.NewVar("v", 0)
		t.WriteAt(v, 1, "store@custom")
		if t.ReadAt(v, "load@custom") != 1 {
			t.Fail(exec.FailAssert, "bad read")
		}
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
	var sawStore, sawLoad bool
	for _, e := range res.Trace.Events {
		if e.Loc == "store@custom" && e.Op == exec.OpWrite {
			sawStore = true
		}
		if e.Loc == "load@custom" && e.Op == exec.OpRead {
			sawLoad = true
		}
	}
	if !sawStore || !sawLoad {
		t.Fatalf("explicit locations missing:\n%s", res.Trace)
	}
}

func TestNewVarsNaming(t *testing.T) {
	res := exec.Run("arr", func(t *exec.Thread) {
		vs := t.NewVars("buf", 3, 7)
		if len(vs) != 3 {
			t.Fail(exec.FailAssert, "len")
		}
		for i, v := range vs {
			want := "buf[" + string(rune('0'+i)) + "]"
			if v.Name() != want {
				t.Fail(exec.FailAssert, "name "+v.Name())
			}
			if t.Read(v) != 7 {
				t.Fail(exec.FailAssert, "init")
			}
		}
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
}

func TestDuplicateVarNameIsCrash(t *testing.T) {
	res := exec.Run("dup", func(t *exec.Thread) {
		t.NewVar("x", 0)
		t.NewVar("x", 1)
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want duplicate-name crash, got %v", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "duplicate") {
		t.Fatalf("unhelpful message %q", res.Failure.Msg)
	}
}

func TestThreadIdentity(t *testing.T) {
	res := exec.Run("ids", func(t *exec.Thread) {
		if t.ID() != 1 || t.Name() != "main" {
			t.Fail(exec.FailAssert, "main identity")
		}
		c := t.Go("child", func(w *exec.Thread) {
			if w.ID() != 2 || w.Name() != "child" {
				w.Fail(exec.FailAssert, "child identity")
			}
		})
		t.Join(c)
		if c.ID() != 2 {
			t.Fail(exec.FailAssert, "handle id")
		}
	}, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v", res.Failure)
	}
}

func TestLockRFPairs(t *testing.T) {
	// Lock acquisitions appear in the reads-from relation: the second
	// lock reads-from the first unlock.
	prog := func(t *exec.Thread) {
		m := t.NewMutex("m")
		t.Lock(m)
		t.Unlock(m)
		t.Lock(m)
		t.Unlock(m)
	}
	res := exec.Run("locks", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	var lockReads int
	for _, p := range res.Trace.RFPairs() {
		if p.Read.Op == exec.OpLock {
			lockReads++
			if p.Read.Var != "m" {
				t.Fatalf("lock pair on wrong var: %v", p)
			}
		}
	}
	if lockReads < 2 {
		t.Fatalf("expected lock rf pairs, got %v", res.Trace.RFPairs())
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureErrorFormatting(t *testing.T) {
	f := &exec.Failure{Kind: exec.FailAssert, Msg: "boom", Thread: 2, Loc: "x.go:3"}
	if got := f.Error(); !strings.Contains(got, "assertion violation") ||
		!strings.Contains(got, "x.go:3") || !strings.Contains(got, "boom") {
		t.Fatalf("bad error %q", got)
	}
	f2 := &exec.Failure{Kind: exec.FailDeadlock, Msg: "stuck"}
	if got := f2.Error(); !strings.Contains(got, "deadlock") {
		t.Fatalf("bad error %q", got)
	}
}

func TestOpStringAndPredicates(t *testing.T) {
	if exec.OpRead.String() != "r" || exec.OpWrite.String() != "w" {
		t.Fatal("op mnemonics")
	}
	if !exec.OpVarInit.IsWrite() || !exec.OpVarInit.ActsAsWrite() {
		t.Fatal("init must act as write")
	}
	if !exec.OpLock.ReadsFrom() || !exec.OpLock.ActsAsWrite() {
		t.Fatal("lock must read-from and act as write")
	}
	if exec.OpSignal.ReadsFrom() || exec.OpSignal.ActsAsWrite() {
		t.Fatal("signal is a pure sync marker")
	}
}
