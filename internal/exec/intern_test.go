package exec_test

// Black-box determinism tests for the campaign-shared intern table: a
// fixed program and seed must assign identical dense IDs (and identical
// signature streams) across independent campaigns, because feedback state
// keyed on those IDs is compared across runs and golden files.

import (
	"reflect"
	"testing"

	"rff/internal/exec"
	"rff/internal/sched"
)

// racyProg produces a healthy variety of abstract events and interleaving-
// dependent reads-from pairs.
func racyProg(t *exec.Thread) {
	x := t.NewVar("x", 0)
	y := t.NewVar("y", 0)
	m := t.NewMutex("m")
	w := t.Go("w", func(t *exec.Thread) {
		t.Lock(m)
		t.Write(x, 1)
		t.Unlock(m)
		t.Write(y, 1)
	})
	r := t.Go("r", func(t *exec.Thread) {
		if t.Read(y) == 1 {
			t.Lock(m)
			_ = t.Read(x)
			t.Unlock(m)
		}
		t.Write(x, 2)
	})
	t.JoinAll(w, r)
}

// campaign runs n POS executions with deterministic per-run seeds through
// the given table, returning every execution's signature.
func campaign(t *testing.T, table *exec.InternTable, n int) []uint64 {
	t.Helper()
	s := sched.NewPOS()
	sigs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		res := exec.Run("racy", racyProg, exec.Config{
			Scheduler: s,
			Seed:      int64(i)*2654435761 + 17,
			Intern:    table,
		})
		if res.Failure != nil {
			t.Fatalf("run %d failed: %v", i, res.Failure)
		}
		sigs = append(sigs, res.Trace.RFSignature())
	}
	return sigs
}

func TestInternTableDeterministicAcrossCampaigns(t *testing.T) {
	const n = 50
	ta, tb := exec.NewInternTable(), exec.NewInternTable()
	sa := campaign(t, ta, n)
	sb := campaign(t, tb, n)

	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("per-execution signatures diverge between identical campaigns")
	}
	// The tables must have assigned the same IDs to the same events, in
	// the same first-intern order.
	ea, eb := ta.Events(), tb.Events()
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("intern tables diverge:\n  a: %v\n  b: %v", ea, eb)
	}
	if ta.Len() == 0 {
		t.Fatal("campaign interned no events")
	}
	for i, ae := range ea {
		if id := tb.Intern(ae); id != exec.EventID(i) {
			t.Fatalf("event %v has ID %d in table a but %d in table b", ae, i, id)
		}
	}
}
