package exec_test

import (
	"strings"
	"testing"

	"rff/internal/exec"
	"rff/internal/sched"
)

// runSeeds executes prog under the random scheduler for many seeds and
// hands each result to check. Every trace must validate.
func runSeeds(t *testing.T, name string, prog exec.Program, seeds int64, check func(int64, *exec.Result)) {
	t.Helper()
	for seed := int64(0); seed < seeds; seed++ {
		res := exec.Run(name, prog, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: invalid trace: %v\n%s", seed, err, res.Trace)
		}
		check(seed, res)
	}
}

func TestChanRendezvousTransfersValue(t *testing.T) {
	// Unbuffered: the sender is enabled only while the receiver parks,
	// so the value always arrives intact regardless of schedule.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 0)
		p := t.Go("p", func(w *exec.Thread) { w.Send(ch, 42) })
		c := t.Go("c", func(w *exec.Thread) {
			v, ok := w.Recv(ch)
			w.Assertf(ok && v == 42, "got (%d,%t), want (42,true)", v, ok)
		})
		t.JoinAll(p, c)
	}
	runSeeds(t, "rendezvous", prog, 100, func(seed int64, res *exec.Result) {
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	})
}

func TestChanBufferedFIFO(t *testing.T) {
	// A capacity-2 buffer preserves send order for a single producer.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 2)
		p := t.Go("p", func(w *exec.Thread) {
			w.Send(ch, 1)
			w.Send(ch, 2)
		})
		c := t.Go("c", func(w *exec.Thread) {
			a, _ := w.Recv(ch)
			b, _ := w.Recv(ch)
			w.Assertf(a == 1 && b == 2, "got %d,%d, want 1,2", a, b)
		})
		t.JoinAll(p, c)
	}
	runSeeds(t, "fifo", prog, 100, func(seed int64, res *exec.Result) {
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	})
}

func TestChanRecvOnClosedDrained(t *testing.T) {
	// Receiving from a closed, drained channel yields (0, false) and the
	// receive event reads-from the close.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 1)
		t.Send(ch, 7)
		t.Close(ch)
		v, ok := t.Recv(ch)
		t.Assertf(ok && v == 7, "buffered value lost: (%d,%t)", v, ok)
		v, ok = t.Recv(ch)
		t.Assertf(!ok && v == 0, "drained recv got (%d,%t), want (0,false)", v, ok)
	}
	runSeeds(t, "closed-drain", prog, 10, func(seed int64, res *exec.Result) {
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	})
}

func TestChanSendOnClosedCrashes(t *testing.T) {
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 1)
		t.Close(ch)
		t.Send(ch, 1)
	}
	res := exec.Run("send-closed", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailSendClosed {
		t.Fatalf("want FailSendClosed, got %v", res.Failure)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
}

func TestChanCloseOfClosedCrashes(t *testing.T) {
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 0)
		t.Close(ch)
		t.Close(ch)
	}
	res := exec.Run("close-closed", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailCloseClosed {
		t.Fatalf("want FailCloseClosed, got %v", res.Failure)
	}
}

func TestChanTrySendOutcomes(t *testing.T) {
	// On a full capacity-1 buffer TrySend reports false without blocking;
	// after a drain it succeeds.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 1)
		t.Assert(t.TrySend(ch, 1), "send into empty buffer failed")
		t.Assert(!t.TrySend(ch, 2), "send into full buffer succeeded")
		v, ok := t.Recv(ch)
		t.Assertf(ok && v == 1, "got (%d,%t)", v, ok)
		t.Assert(t.TrySend(ch, 3), "send after drain failed")
	}
	res := exec.Run("trysend", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v\n%s", res.Failure, res.Trace)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChanTryRecvOutcomes(t *testing.T) {
	// TryRecv distinguishes would-block (recvd=false), a value
	// (ok=true), and closure (recvd=true, ok=false).
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 1)
		_, _, recvd := t.TryRecv(ch)
		t.Assert(!recvd, "empty open channel delivered")
		t.Send(ch, 9)
		v, ok, recvd := t.TryRecv(ch)
		t.Assertf(recvd && ok && v == 9, "got (%d,%t,%t)", v, ok, recvd)
		t.Close(ch)
		v, ok, recvd = t.TryRecv(ch)
		t.Assertf(recvd && !ok && v == 0, "closed: got (%d,%t,%t)", v, ok, recvd)
	}
	res := exec.Run("tryrecv", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v\n%s", res.Failure, res.Trace)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChanTrySendOnClosedCrashes(t *testing.T) {
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 1)
		t.Close(ch)
		t.TrySend(ch, 1)
	}
	res := exec.Run("trysend-closed", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailSendClosed {
		t.Fatalf("want FailSendClosed, got %v", res.Failure)
	}
}

func TestSelectPicksLowestReadyCase(t *testing.T) {
	// Both channels hold a value, so case 0 must fire: selection among
	// ready cases is deterministic by index.
	prog := func(t *exec.Thread) {
		a := t.NewChan("a", 1)
		b := t.NewChan("b", 1)
		t.Send(a, 1)
		t.Send(b, 2)
		idx, v, ok := t.Select(exec.RecvCase(a), exec.RecvCase(b))
		t.Assertf(idx == 0 && v == 1 && ok, "got (%d,%d,%t), want (0,1,true)", idx, v, ok)
	}
	res := exec.Run("select-det", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v\n%s", res.Failure, res.Trace)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectFanIn(t *testing.T) {
	// Two producers on separate unbuffered channels, one consumer
	// selecting over both: every schedule delivers both values.
	prog := func(t *exec.Thread) {
		a := t.NewChan("a", 0)
		b := t.NewChan("b", 0)
		sum := t.NewVar("sum", 0)
		p1 := t.Go("p1", func(w *exec.Thread) { w.Send(a, 1) })
		p2 := t.Go("p2", func(w *exec.Thread) { w.Send(b, 2) })
		c := t.Go("c", func(w *exec.Thread) {
			for i := 0; i < 2; i++ {
				_, v, ok := w.Select(exec.RecvCase(a), exec.RecvCase(b))
				w.Assert(ok, "fan-in receive not ok")
				w.Write(sum, w.Read(sum)+v)
			}
			w.Assertf(w.Read(sum) == 3, "sum %d, want 3", w.Read(sum))
		})
		t.JoinAll(p1, p2, c)
	}
	runSeeds(t, "fanin", prog, 200, func(seed int64, res *exec.Result) {
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	})
}

func TestSelectSendArm(t *testing.T) {
	// A select whose only ready arm is a send fires it; the parked
	// receiver observes the value.
	prog := func(t *exec.Thread) {
		a := t.NewChan("a", 0)
		b := t.NewChan("b", 0)
		c := t.Go("c", func(w *exec.Thread) {
			v, ok := w.Recv(b)
			w.Assertf(ok && v == 5, "got (%d,%t)", v, ok)
		})
		p := t.Go("p", func(w *exec.Thread) {
			idx, _, ok := w.Select(exec.RecvCase(a), exec.SendCase(b, 5))
			w.Assertf(idx == 1 && ok, "got (%d,%t), want (1,true)", idx, ok)
		})
		t.JoinAll(c, p)
	}
	runSeeds(t, "select-send", prog, 100, func(seed int64, res *exec.Result) {
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	})
}

func TestChanDeadlockDetected(t *testing.T) {
	// Receive on an empty open channel no one ever sends on: the
	// engine's deadlock detector must fire and name the channel.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 0)
		t.Recv(ch)
	}
	res := exec.Run("chan-deadlock", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("want FailDeadlock, got %v", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "ch") {
		t.Fatalf("deadlock message does not name the channel: %q", res.Failure.Msg)
	}
}

func TestSelectDeadlockDetected(t *testing.T) {
	// A select with no ready case and no other threads deadlocks; the
	// message lists the channels involved.
	prog := func(t *exec.Thread) {
		a := t.NewChan("a", 0)
		b := t.NewChan("b", 0)
		t.Select(exec.RecvCase(a), exec.RecvCase(b))
	}
	res := exec.Run("select-deadlock", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("want FailDeadlock, got %v", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "a,b") {
		t.Fatalf("deadlock message does not list select channels: %q", res.Failure.Msg)
	}
}

func TestUnbufferedSendBlocksWithoutReceiver(t *testing.T) {
	// The rendezvous discipline: a lone unbuffered send is never
	// enabled, so the program deadlocks rather than completing.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 0)
		t.Send(ch, 1)
	}
	res := exec.Run("send-blocks", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("want FailDeadlock, got %v", res.Failure)
	}
}

func TestWaitGroupGatesWaiter(t *testing.T) {
	// The waiter must observe both workers' writes: WgWait is enabled
	// only once the counter returns to zero.
	prog := func(t *exec.Thread) {
		wg := t.NewWaitGroup("wg")
		x := t.NewVar("x", 0)
		y := t.NewVar("y", 0)
		t.WgAdd(wg, 2)
		w1 := t.Go("w1", func(w *exec.Thread) {
			w.Write(x, 1)
			w.WgDone(wg)
		})
		w2 := t.Go("w2", func(w *exec.Thread) {
			w.Write(y, 1)
			w.WgDone(wg)
		})
		t.WgWait(wg)
		t.Assertf(t.Read(x) == 1 && t.Read(y) == 1, "waiter ran early: x=%d y=%d", t.Read(x), t.Read(y))
		t.JoinAll(w1, w2)
	}
	runSeeds(t, "wg-gate", prog, 200, func(seed int64, res *exec.Result) {
		if res.Buggy() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Failure, res.Trace)
		}
	})
}

func TestWaitGroupNegativeCounterPanics(t *testing.T) {
	prog := func(t *exec.Thread) {
		wg := t.NewWaitGroup("wg")
		t.WgDone(wg)
	}
	res := exec.Run("wg-negative", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailPanic {
		t.Fatalf("want FailPanic, got %v", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "negative WaitGroup counter") {
		t.Fatalf("unexpected message %q", res.Failure.Msg)
	}
}

func TestWaitGroupMissingDoneDeadlocks(t *testing.T) {
	prog := func(t *exec.Thread) {
		wg := t.NewWaitGroup("wg")
		t.WgAdd(wg, 1)
		t.WgWait(wg)
	}
	res := exec.Run("wg-deadlock", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if !res.Buggy() || res.Failure.Kind != exec.FailDeadlock {
		t.Fatalf("want FailDeadlock, got %v", res.Failure)
	}
}

func TestChanReplayReproducesTrace(t *testing.T) {
	// Decision-sequence replay must reproduce a channel-heavy trace
	// bit-identically, including a send-on-closed crash.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 1)
		p := t.Go("p", func(w *exec.Thread) {
			w.Send(ch, 1)
			w.Send(ch, 2)
		})
		k := t.Go("k", func(w *exec.Thread) { w.Close(ch) })
		c := t.Go("c", func(w *exec.Thread) {
			w.Recv(ch)
			w.Recv(ch)
		})
		t.JoinAll(p, k, c)
	}
	for seed := int64(0); seed < 100; seed++ {
		res := exec.Run("replay", prog, exec.Config{Scheduler: sched.NewRandom(), Seed: seed})
		rep := exec.Run("replay", prog, exec.Config{Scheduler: sched.NewReplay(res.Trace.ThreadOrder())})
		if res.Trace.String() != rep.Trace.String() {
			t.Fatalf("seed %d: replay diverged\noriginal:\n%s\nreplay:\n%s", seed, res.Trace, rep.Trace)
		}
		if res.Buggy() != rep.Buggy() || (res.Buggy() && res.Failure.Kind != rep.Failure.Kind) {
			t.Fatalf("seed %d: failure mismatch: %v vs %v", seed, res.Failure, rep.Failure)
		}
	}
}

func TestChanRFPairsFeedSummary(t *testing.T) {
	// send->recv must surface as an abstract reads-from pair so the
	// fuzzer's feedback distinguishes channel schedules.
	prog := func(t *exec.Thread) {
		ch := t.NewChan("ch", 0)
		p := t.Go("p", func(w *exec.Thread) { w.SendAt(ch, 1, "send.loc") })
		c := t.Go("c", func(w *exec.Thread) { w.RecvAt(ch, "recv.loc") })
		t.JoinAll(p, c)
	}
	res := exec.Run("rfpairs", prog, exec.Config{Scheduler: sched.NewRoundRobin()})
	if res.Buggy() {
		t.Fatalf("%v\n%s", res.Failure, res.Trace)
	}
	found := false
	for _, pr := range res.Trace.RFPairs() {
		if pr.Read.Op == exec.OpRecv && pr.Read.Loc == "recv.loc" &&
			pr.Write.Op == exec.OpSend && pr.Write.Loc == "send.loc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no send->recv rf pair in %v", res.Trace.RFPairs())
	}
}
