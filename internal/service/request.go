// Package service is the rffd campaign daemon: an HTTP/JSON API over a
// bounded job queue, a scheduler that runs submitted campaigns through
// the strategy registry and the fleet pool, live telemetry streamed as
// Server-Sent Events (with replay-from-start for late subscribers), and
// a content-addressed artifact store that makes identical re-submissions
// cache hits instead of re-runs.
//
// The layering is queue → scheduler → fleet → store: Submit validates a
// CampaignRequest at the API boundary (spec canonicalization through
// internal/strategy, program resolution through bench/progen), the
// scheduler's workers execute each job's evaluation matrix under a
// per-job context, and a finished job persists its report, crash
// artifacts, and event history as content-addressed blobs indexed by
// the request's cache key.
package service

import (
	"encoding/json"
	"fmt"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/progen"
	"rff/internal/store"
	"rff/internal/strategy"
)

// Request-size ceilings: the daemon is long-lived and multi-tenant, so
// a single submission cannot claim unbounded compute.
const (
	// MaxBudget bounds schedules per trial.
	MaxBudget = 10_000_000
	// MaxTrials bounds trials per (tool, program) cell.
	MaxTrials = 1000
	// MaxProgenCount bounds generated programs per campaign.
	MaxProgenCount = 64
	// MaxShards bounds worker shards per RFF trial.
	MaxShards = 64
	// MaxBudgetEpochs bounds allocation epochs under an adaptive budget
	// policy.
	MaxBudgetEpochs = 64
)

// CampaignRequest is the submission body of POST /v1/campaigns: which
// program(s) to fuzz, under which strategies, with how much compute.
// Exactly one of Program / ProgenSeed selects the workload.
type CampaignRequest struct {
	// Program names a built-in benchmark program (see `rff list` or
	// GET /v1/programs).
	Program string `json:"program,omitempty"`
	// ProgenSeed, when non-zero, generates the workload from the
	// internal/progen grammar instead: a deterministic stream of small
	// concurrent programs that is a pure function of the seed.
	ProgenSeed int64 `json:"progen_seed,omitempty"`
	// ProgenCount is how many generated programs to draw (default 1).
	ProgenCount int `json:"progen_count,omitempty"`
	// Tools are strategy specs resolved through internal/strategy
	// (default ["rff"]). Validation canonicalizes them, so "pct" and
	// "pct:3" submit identical campaigns.
	Tools []string `json:"tools,omitempty"`
	// Budget is the schedule budget per trial (default 2000).
	Budget int `json:"budget,omitempty"`
	// Trials per (tool, program) cell (default 1).
	Trials int `json:"trials,omitempty"`
	// MaxSteps bounds each execution (0 = engine default).
	MaxSteps int `json:"max_steps,omitempty"`
	// Seed is the campaign base seed (default 1); every trial derives
	// its own seed from it via campaign.TrialSeed.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the job's fleet pool (0 = GOMAXPROCS). Results are
	// bit-identical at any worker count, so Workers is an execution
	// hint: it is excluded from the cache key.
	Workers int `json:"workers,omitempty"`
	// Shards, when >= 1, runs RFF trials on the sharded work-stealing
	// runner with that many worker shards. Unlike Workers, Shards is NOT
	// an execution hint: the sharded runner is a distinct (still
	// deterministic) algorithm whose reports differ from the sequential
	// loop's, so Shards stays in the cache key.
	Shards int `json:"shards,omitempty"`
	// BudgetPolicy, when non-empty, runs the campaign under the adaptive
	// budget allocator (internal/budget): the matrix's per-cell budgets
	// become a shared pool reallocated across epochs by per-cell reward.
	// Like Shards, the policy changes the computation (and its report),
	// so it stays in the cache key. Mutually exclusive with Shards.
	BudgetPolicy string `json:"budget_policy,omitempty"`
	// BudgetEpochs is the allocation epoch count under BudgetPolicy
	// (default budget.DefaultEpochs; must be 0 when BudgetPolicy is
	// empty).
	BudgetEpochs int `json:"budget_epochs,omitempty"`
}

// Canonicalize validates the request at the API boundary and returns
// its canonical form: defaults filled, strategy specs canonicalized.
// Two requests describing the same campaign canonicalize identically —
// the property the cache key relies on.
func (r CampaignRequest) Canonicalize() (CampaignRequest, error) {
	c := r
	switch {
	case c.Program == "" && c.ProgenSeed == 0:
		return c, fmt.Errorf("one of program / progen_seed is required")
	case c.Program != "" && c.ProgenSeed != 0:
		return c, fmt.Errorf("program and progen_seed are mutually exclusive")
	case c.Program != "":
		if _, ok := bench.Get(c.Program); !ok {
			return c, fmt.Errorf("unknown program %q", c.Program)
		}
		if c.ProgenCount != 0 {
			return c, fmt.Errorf("progen_count requires progen_seed")
		}
	default: // progen workload
		if c.ProgenSeed < 0 {
			return c, fmt.Errorf("progen_seed must be positive")
		}
		if c.ProgenCount == 0 {
			c.ProgenCount = 1
		}
		if c.ProgenCount < 0 || c.ProgenCount > MaxProgenCount {
			return c, fmt.Errorf("progen_count %d out of range [1, %d]", c.ProgenCount, MaxProgenCount)
		}
	}
	if len(c.Tools) == 0 {
		c.Tools = []string{"rff"}
	}
	canon := make([]string, len(c.Tools))
	seen := make(map[string]bool, len(c.Tools))
	for i, spec := range c.Tools {
		cs, err := strategy.Canonical(spec)
		if err != nil {
			return c, fmt.Errorf("tools[%d]: %w", i, err)
		}
		if seen[cs] {
			return c, fmt.Errorf("tools[%d]: duplicate spec %q (canonical %q)", i, spec, cs)
		}
		seen[cs] = true
		canon[i] = cs
	}
	c.Tools = canon
	if c.Budget == 0 {
		c.Budget = 2000
	}
	if c.Budget < 0 || c.Budget > MaxBudget {
		return c, fmt.Errorf("budget %d out of range [1, %d]", c.Budget, MaxBudget)
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Trials < 0 || c.Trials > MaxTrials {
		return c, fmt.Errorf("trials %d out of range [1, %d]", c.Trials, MaxTrials)
	}
	if c.MaxSteps < 0 {
		return c, fmt.Errorf("max_steps must be non-negative")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("workers must be non-negative")
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return c, fmt.Errorf("shards %d out of range [0, %d]", c.Shards, MaxShards)
	}
	if c.BudgetPolicy == "" {
		if c.BudgetEpochs != 0 {
			return c, fmt.Errorf("budget_epochs requires budget_policy")
		}
	} else {
		if c.Shards >= 1 {
			return c, fmt.Errorf("budget_policy and shards are mutually exclusive: the shard runner's observer sees only failures, so sharded cells earn no coverage reward")
		}
		if c.BudgetEpochs == 0 {
			c.BudgetEpochs = budget.DefaultEpochs
		}
		if c.BudgetEpochs > MaxBudgetEpochs {
			return c, fmt.Errorf("budget_epochs %d out of range [1, %d]", c.BudgetEpochs, MaxBudgetEpochs)
		}
		bc := budget.Config{Policy: c.BudgetPolicy, Epochs: c.BudgetEpochs}
		if err := bc.Validate(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// CacheKey derives the campaign's content-addressed cache key: the
// SumID of the canonical request JSON with execution hints (Workers)
// stripped, so the same campaign at a different parallelism reuses the
// stored result. Call on a canonicalized request.
func (r CampaignRequest) CacheKey() (store.ID, []byte, error) {
	k := r
	k.Workers = 0
	data, err := json.Marshal(k)
	if err != nil {
		return "", nil, fmt.Errorf("marshaling cache key: %w", err)
	}
	return store.SumID(data), data, nil
}

// Programs resolves the request's workload to concrete benchmark
// programs. Progen workloads regenerate deterministically from the
// seed, so an artifact fetched later always has a program to replay
// against.
func (r CampaignRequest) Programs() ([]bench.Program, error) {
	if r.Program != "" {
		p, ok := bench.Get(r.Program)
		if !ok {
			return nil, fmt.Errorf("unknown program %q", r.Program)
		}
		return []bench.Program{p}, nil
	}
	g := progen.NewGenerator(r.ProgenSeed, progen.Options{})
	out := make([]bench.Program, 0, r.ProgenCount)
	for i := 0; i < r.ProgenCount; i++ {
		out = append(out, g.Next().Bench())
	}
	return out, nil
}
