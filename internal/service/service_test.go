package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rff/internal/budget"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
	"rff/internal/store"
	"rff/internal/telemetry"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = st
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, req CampaignRequest) JobView {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e["error"])
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobView{}
}

func getBody(t *testing.T, ts *httptest.Server, path string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (%s)", path, resp.StatusCode, wantStatus, buf.String())
	}
	return buf.Bytes()
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	ID    string
	Event string
	Data  string
}

// readSSE consumes the stream until it ends, the predicate matches, or
// the timeout lapses.
func readSSE(t *testing.T, ts *httptest.Server, path string, until func(sseEvent) bool) []sseEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+path, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseEvent{}) {
				events = append(events, cur)
				if until != nil && until(cur) {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.ID = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.Event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.Data = line[len("data: "):]
		}
	}
	return events
}

func isTerminalEvent(ev sseEvent) bool {
	return ev.Event == EvJobDone || ev.Event == EvJobFailed || ev.Event == EvJobCancelled
}

// TestEndToEnd is the acceptance path: submit a campaign against a
// benchmark with a known assertion bug, watch it complete over SSE,
// fetch the report and a crash artifact by content id, and replay the
// artifact's decision sequence to reproduce the original failure.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	v := submit(t, ts, CampaignRequest{
		Program: "CS/account",
		Tools:   []string{"rff"},
		Budget:  3000,
		Trials:  2,
		Seed:    7,
	})
	if v.State != JobQueued && v.State != JobRunning && v.State != JobDone {
		t.Fatalf("fresh job state %q", v.State)
	}
	if v.CacheHit {
		t.Fatal("fresh submission reported a cache hit")
	}

	// SSE stream (attached while running or after): must end with a
	// terminal event and start from event 1.
	events := readSSE(t, ts, "/v1/jobs/"+v.ID+"/events", isTerminalEvent)
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	if events[0].ID != "1" {
		t.Fatalf("stream did not replay from the start: first id %s", events[0].ID)
	}
	last := events[len(events)-1]
	if last.Event != EvJobDone {
		t.Fatalf("terminal event %q, want %q (data: %s)", last.Event, EvJobDone, last.Data)
	}

	done := waitTerminal(t, ts, v.ID)
	if done.State != JobDone {
		t.Fatalf("job state %q (error %q)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Report == "" {
		t.Fatal("done job has no stored report")
	}

	// Report: CS/account under rff with this budget finds the bug.
	var res CampaignResult
	if err := json.Unmarshal(getBody(t, ts, "/v1/jobs/"+v.ID+"/report", 200), &res); err != nil {
		t.Fatal(err)
	}
	if res.BugsFound == 0 {
		t.Fatal("campaign found no bugs in CS/account")
	}
	if len(res.Artifacts) == 0 {
		t.Fatal("campaign stored no crash artifacts")
	}

	// Artifact: fetch by content id, decode, and replay. The recorded
	// decision sequence must reproduce the original failure kind.
	ref := res.Artifacts[0]
	raw := getBody(t, ts, "/v1/artifacts/"+string(ref.ID), 200)
	if got := store.SumID(raw); got != ref.ID {
		t.Fatalf("artifact content hash %s != advertised id %s", got, ref.ID)
	}
	art, err := core.DecodeArtifact(raw)
	if err != nil {
		t.Fatalf("decoding fetched artifact: %v", err)
	}
	prog, err := done.Request.Programs()
	if err != nil {
		t.Fatal(err)
	}
	replay := exec.Run(art.Program, prog[0].Body, exec.Config{
		Scheduler: sched.NewReplay(art.ThreadOrder()),
	})
	if replay.Failure == nil {
		t.Fatal("replaying the artifact reproduced no failure")
	}
	if got := replay.Failure.Kind.String(); got != ref.FailureKind {
		t.Fatalf("replayed failure kind %q, want %q", got, ref.FailureKind)
	}
}

// TestCacheHit submits the identical campaign twice: the second job must
// be served from the store without re-running, and the two fetched
// reports must be byte-identical. A different worker count must not
// break the hit — workers are an execution hint, not part of the key.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := CampaignRequest{ProgenSeed: 42, ProgenCount: 2, Tools: []string{"rff", "random"}, Budget: 300, Trials: 2}

	first := submit(t, ts, req)
	done1 := waitTerminal(t, ts, first.ID)
	if done1.State != JobDone {
		t.Fatalf("first job: %s (%s)", done1.State, done1.Error)
	}
	if done1.CacheHit {
		t.Fatal("first submission was a cache hit")
	}
	report1 := getBody(t, ts, "/v1/jobs/"+first.ID+"/report", 200)

	req.Workers = 2 // execution hint: must not change the cache key
	second := submit(t, ts, req)
	if !second.CacheHit {
		t.Fatal("identical re-submission did not hit the cache")
	}
	if second.State != JobDone {
		t.Fatalf("cached job state %q, want done", second.State)
	}
	report2 := getBody(t, ts, "/v1/jobs/"+second.ID+"/report", 200)
	if !bytes.Equal(report1, report2) {
		t.Fatal("cached report differs from the original")
	}

	// The cached job's SSE stream still terminates for late subscribers.
	events := readSSE(t, ts, "/v1/jobs/"+second.ID+"/events", nil)
	if len(events) < 2 || events[0].Event != EvJobCached || events[len(events)-1].Event != EvJobDone {
		t.Fatalf("cached job events: %+v", events)
	}

	// A genuinely different campaign must miss.
	req.Workers = 0
	req.Seed = 99
	third := submit(t, ts, req)
	if third.CacheHit {
		t.Fatal("different seed hit the cache")
	}
	waitTerminal(t, ts, third.ID)
}

// TestSSELateSubscriber attaches to the event stream only after the job
// finished and must still see the complete history, in order, ending
// with the terminal event.
func TestSSELateSubscriber(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	v := submit(t, ts, CampaignRequest{ProgenSeed: 5, Budget: 200})
	waitTerminal(t, ts, v.ID)

	events := readSSE(t, ts, "/v1/jobs/"+v.ID+"/events", nil)
	if len(events) < 2 {
		t.Fatalf("late subscriber saw %d events", len(events))
	}
	for i, ev := range events {
		if want := fmt.Sprintf("%d", i+1); ev.ID != want {
			t.Fatalf("event %d has id %s, want %s", i, ev.ID, want)
		}
	}
	if events[0].Event != EvJobQueued {
		t.Fatalf("first event %q, want %q", events[0].Event, EvJobQueued)
	}
	if last := events[len(events)-1]; last.Event != EvJobDone {
		t.Fatalf("last event %q, want %q", last.Event, EvJobDone)
	}
}

// TestCancelRunning cancels an expensive job mid-run and expects the
// cancelled state with no cached entry.
func TestCancelRunning(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	v := submit(t, ts, CampaignRequest{
		Program: "CS/reorder_100",
		Budget:  MaxBudget,
		Trials:  MaxTrials,
	})
	// Wait until it is actually running so the cancel exercises the
	// context path, then cancel over HTTP.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := srv.Job(v.ID)
		if ok && j.State() == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	done := waitTerminal(t, ts, v.ID)
	if done.State != JobCancelled {
		t.Fatalf("state %q, want cancelled", done.State)
	}
	if done.Result != nil {
		t.Fatal("cancelled job cached a partial result")
	}
	getBody(t, ts, "/v1/jobs/"+v.ID+"/report", 404)
}

// TestValidation exercises the 400 surface of POST /v1/campaigns.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []string{
		`{}`, // no workload
		`{"program":"CS/account","progen_seed":3}`,         // both workloads
		`{"program":"no/such/program"}`,                    // unknown program
		`{"program":"CS/account","tools":["warp-drive"]}`,  // unknown tool
		`{"program":"CS/account","tools":["pct","pct:3"]}`, // duplicate after canonicalization
		`{"program":"CS/account","budget":-1}`,             // bad budget
		`{"progen_seed":1,"progen_count":1000}`,            // progen_count over cap
		`{"program":"CS/account","unknown_field":true}`,    // unknown field
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	// And the 404 surface.
	getBody(t, ts, "/v1/jobs/nope", 404)
	getBody(t, ts, "/v1/jobs/nope/report", 404)
	getBody(t, ts, "/v1/artifacts/"+string(store.SumID([]byte("absent"))), 404)
	getBody(t, ts, "/v1/artifacts/not-a-hash", 400)
}

// TestToolsAndPrograms checks the discovery endpoints return parseable,
// non-empty listings, with /v1/tools matching rff tools -json's shape.
func TestToolsAndPrograms(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var tools []map[string]any
	if err := json.Unmarshal(getBody(t, ts, "/v1/tools", 200), &tools); err != nil {
		t.Fatal(err)
	}
	if len(tools) == 0 {
		t.Fatal("no tools listed")
	}
	names := make(map[string]bool)
	for _, tl := range tools {
		names[tl["name"].(string)] = true
	}
	for _, want := range []string{"rff", "random", "pct"} {
		if !names[want] {
			t.Errorf("tool %q missing from /v1/tools", want)
		}
	}
	var programs []map[string]any
	if err := json.Unmarshal(getBody(t, ts, "/v1/programs", 200), &programs); err != nil {
		t.Fatal(err)
	}
	if len(programs) == 0 {
		t.Fatal("no programs listed")
	}
}

// TestDrainPersistsQueue drains a server whose workers never started:
// the queued jobs must persist and a new server over the same store
// must restore them.
func TestDrainPersistsQueue(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): submissions enqueue but never execute, like jobs
	// arriving in a drain window.
	if _, err := srv.Submit(CampaignRequest{ProgenSeed: 11, Budget: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(CampaignRequest{ProgenSeed: 12, Budget: 100}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(CampaignRequest{ProgenSeed: 13}); err == nil {
		t.Fatal("draining server accepted a submission")
	}

	// A new daemon instance over the same data dir resumes the queue.
	srv2, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	jobs := srv2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("restored %d jobs, want 2", len(jobs))
	}
	srv2.Start()
	deadline := time.Now().Add(60 * time.Second)
	for _, j := range jobs {
		for !j.State().Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("restored job %s never finished", j.ID)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if j.State() != JobDone {
			t.Fatalf("restored job %s: %s", j.ID, j.State())
		}
	}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv2.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	// Everything ran: the persisted queue must be gone.
	srv3, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(srv3.Jobs()); n != 0 {
		t.Fatalf("clean drain left %d persisted jobs", n)
	}
}

// TestQueueFull fills the bounded queue on an unstarted server and
// expects 503 on overflow.
func TestQueueFull(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := int64(1); i <= 2; i++ {
		submit(t, ts, CampaignRequest{ProgenSeed: i, Budget: 100})
	}
	body, _ := json.Marshal(CampaignRequest{ProgenSeed: 3, Budget: 100})
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: status %d, want 503", resp.StatusCode)
	}
}

// TestJobDeadline arms a tiny per-job deadline against a huge campaign
// and expects a non-done terminal state instead of a hang.
func TestJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{JobDeadline: 50 * time.Millisecond})
	v := submit(t, ts, CampaignRequest{
		Program: "CS/reorder_100",
		Budget:  MaxBudget,
		Trials:  MaxTrials,
	})
	done := waitTerminal(t, ts, v.ID)
	if done.State == JobDone {
		t.Fatal("deadline-bound job completed a MaxBudget campaign in 50ms")
	}
	if done.Result != nil {
		t.Fatal("deadlined job cached a partial result")
	}
}

// TestRequestLog checks the logging middleware emits http-request
// events and counts requests on the daemon sink.
func TestRequestLog(t *testing.T) {
	hub := telemetry.NewHub()
	var buf bytes.Buffer
	hub.Events = telemetry.NewEventWriter(&buf)
	_, ts := newTestServer(t, Options{Telemetry: hub})
	getBody(t, ts, "/v1/healthz", 200)
	getBody(t, ts, "/v1/tools", 200)
	hub.Events.Flush()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("request log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if ev.Kind != EvHTTPRequest {
			t.Fatalf("event kind %q, want %q", ev.Kind, EvHTTPRequest)
		}
		if ev.Fields["method"] != "GET" {
			t.Fatalf("logged method %v", ev.Fields["method"])
		}
	}
}

// TestCanonicalizeDefaults pins the canonical form: defaults filled and
// alias specs rewritten, so equivalent submissions share a cache key.
func TestCanonicalizeDefaults(t *testing.T) {
	c, err := CampaignRequest{Program: "CS/account", Tools: []string{"pct"}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget != 2000 || c.Trials != 1 || c.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if len(c.Tools) != 1 || !strings.HasPrefix(c.Tools[0], "pct:") {
		t.Fatalf("pct did not canonicalize: %v", c.Tools)
	}
	k1, _, err := c.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CampaignRequest{Program: "CS/account", Tools: []string{c.Tools[0]}, Budget: 2000, Trials: 1, Seed: 1, Workers: 8}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := c2.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("equivalent requests derived different cache keys")
	}
}

// TestDrainDoesNotFlipCompletedJob pins the drain-race fix: a job whose
// campaign fully completed (blobs persisted) before the drain cancelled
// its context must finish done and indexed, not cancelled — flipping it
// used to orphan its stored artifacts and requeue the whole campaign.
func TestDrainDoesNotFlipCompletedJob(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st, MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the server's base context in the window between the
	// campaign finishing and the terminal state being recorded — the
	// exact interleaving a drain deadline produces.
	srv.testAfterRun = func() { srv.stop() }
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v := submit(t, ts, CampaignRequest{
		Program: "CS/account",
		Tools:   []string{"rff"},
		Budget:  2000,
		Trials:  1,
		Seed:    7,
	})
	done := waitTerminal(t, ts, v.ID)
	if done.State != JobDone {
		t.Fatalf("completed job flipped to %q (error %q)", done.State, done.Error)
	}
	if done.Result == nil {
		t.Fatal("done job has no stored result")
	}
	entry := srv.index.Get(done.Result.Key)
	if entry == nil {
		t.Fatal("completed job has no index entry — artifacts orphaned")
	}
	for _, id := range append([]store.ID{entry.Report}, entry.Artifacts...) {
		if !st.Has(id) {
			t.Fatalf("index references missing blob %s", id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// The job completed; nothing should have been requeued for the next
	// daemon instance.
	if _, err := New(Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	if n := len(srv.Jobs()); n != 1 {
		t.Fatalf("expected 1 job, got %d", n)
	}
}

// TestVerifyIndexDropsOrphans: startup must drop index entries whose
// blobs are missing (the leftovers of an interrupted persist), and keep
// healthy ones.
func TestVerifyIndexDropsOrphans(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := store.OpenIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	report, err := st.Put([]byte(`{"ok":true}`))
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := st.Put([]byte(`{"artifact":1}`))
	if err != nil {
		t.Fatal(err)
	}
	healthy := store.SumID([]byte("healthy"))
	noReport := store.SumID([]byte("no-report"))
	noArtifact := store.SumID([]byte("no-artifact"))
	for _, e := range []*store.Entry{
		{Key: healthy, Report: report, Artifacts: []store.ID{artifact}},
		{Key: noReport, Report: store.SumID([]byte("missing blob"))},
		{Key: noArtifact, Report: report, Artifacts: []store.ID{store.SumID([]byte("gone"))}},
	} {
		if err := idx.Put(e); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if srv.index.Get(healthy) == nil {
		t.Fatal("healthy entry dropped")
	}
	if srv.index.Get(noReport) != nil {
		t.Fatal("entry with a missing report survived")
	}
	if srv.index.Get(noArtifact) != nil {
		t.Fatal("entry with a missing artifact survived")
	}
	// The cleanup persisted: a re-opened index agrees.
	idx2, err := store.OpenIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Len() != 1 {
		t.Fatalf("persisted index has %d entries, want 1", idx2.Len())
	}
}

// TestTriageIntegration: with TriageDir set, a completed campaign's
// artifacts are clustered in the background, served by /v1/clusters,
// and persisted as a regression corpus that survives a restart.
func TestTriageIntegration(t *testing.T) {
	triageDir := t.TempDir()
	hub := telemetry.NewHub()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{Store: st, TriageDir: triageDir, Telemetry: hub})

	v := submit(t, ts, CampaignRequest{
		Program: "CS/account",
		Tools:   []string{"rff"},
		Budget:  3000,
		Trials:  2,
		Seed:    7,
	})
	done := waitTerminal(t, ts, v.ID)
	if done.State != JobDone {
		t.Fatalf("job state %q (error %q)", done.State, done.Error)
	}

	// Triage runs on the worker after the job seals; poll briefly.
	deadline := time.Now().Add(30 * time.Second)
	for srv.triager.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.triager.Len() == 0 {
		t.Fatal("no clusters after a bug-finding campaign")
	}

	var rep struct {
		Clusters []struct {
			Cluster struct {
				ID   string `json:"id"`
				Hits int    `json:"hits"`
			} `json:"cluster"`
			Replay string `json:"replay"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal(getBody(t, ts, "/v1/clusters", 200), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) == 0 {
		t.Fatal("/v1/clusters returned no clusters")
	}
	first := rep.Clusters[0]
	if first.Cluster.Hits == 0 || first.Replay == "" {
		t.Fatalf("bad cluster row: %+v", first)
	}

	var detail struct {
		ID        string         `json:"id"`
		Canonical *core.Artifact `json:"canonical"`
	}
	if err := json.Unmarshal(getBody(t, ts, "/v1/clusters/"+first.Cluster.ID, 200), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Canonical == nil || detail.Canonical.Program != "CS/account" {
		t.Fatalf("cluster detail missing canonical artifact: %+v", detail)
	}
	getBody(t, ts, "/v1/clusters/c-000000000000", 404)

	// triage_* telemetry reached the daemon sink.
	snap := hub.Snapshot()
	data, err := snap.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(telemetry.MTriageClusters)) {
		t.Errorf("metrics snapshot lacks %s:\n%s", telemetry.MTriageClusters, data)
	}

	// The corpus persisted and reloads into a fresh daemon.
	srv2, err := New(Options{Store: st, TriageDir: triageDir})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.triager.Len() != srv.triager.Len() {
		t.Fatalf("restarted daemon loaded %d clusters, want %d", srv2.triager.Len(), srv.triager.Len())
	}
}

// TestClustersUnavailableWithoutTriage: the endpoints 503 when the
// daemon runs without -triage.
func TestClustersUnavailableWithoutTriage(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	getBody(t, ts, "/v1/clusters", 503)
	getBody(t, ts, "/v1/clusters/c-000000000000", 503)
}

// TestBudgetedCampaign runs a campaign under an adaptive budget policy:
// the stored report must carry the allocator's accounting, the policy
// must be part of the cache key (same campaign under a different policy
// misses), and invalid budget requests must be rejected at Submit.
func TestBudgetedCampaign(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	req := CampaignRequest{
		Program:      "CS/account",
		Tools:        []string{"rff", "random"},
		Budget:       500,
		Trials:       2,
		Seed:         7,
		BudgetPolicy: "ucb",
		BudgetEpochs: 4,
	}
	v := submit(t, ts, req)
	done := waitTerminal(t, ts, v.ID)
	if done.State != JobDone {
		t.Fatalf("job state %q (error %q)", done.State, done.Error)
	}
	if done.Request.BudgetPolicy != "ucb" || done.Request.BudgetEpochs != 4 {
		t.Fatalf("canonical request lost the budget config: %+v", done.Request)
	}

	var res CampaignResult
	if err := json.Unmarshal(getBody(t, ts, "/v1/jobs/"+v.ID+"/report", 200), &res); err != nil {
		t.Fatal(err)
	}
	if res.BudgetReport == nil {
		t.Fatal("budgeted campaign's report has no budget_report")
	}
	br := res.BudgetReport
	// Epochs in the report is the count actually executed — the
	// allocator stops early once every cell is done.
	if br.Policy != "ucb" || br.Epochs < 1 || br.Epochs > 4 {
		t.Fatalf("budget report policy/epochs = %s/%d, want ucb/1..4", br.Policy, br.Epochs)
	}
	if len(br.Cells) != len(res.Tools)*len(res.Programs) {
		t.Fatalf("budget report has %d cells, want %d", len(br.Cells), len(res.Tools)*len(res.Programs))
	}
	if br.Spent <= 0 || br.Spent > br.Pool {
		t.Fatalf("budget report spent %d of pool %d", br.Spent, br.Pool)
	}

	// Same campaign, different policy: a distinct computation, so a
	// cache miss. Epochs default when omitted.
	req2 := req
	req2.BudgetPolicy = "eps-greedy"
	req2.BudgetEpochs = 0
	v2 := submit(t, ts, req2)
	if v2.CacheHit {
		t.Fatal("different budget policy hit the cache")
	}
	done2 := waitTerminal(t, ts, v2.ID)
	if done2.State != JobDone {
		t.Fatalf("second job state %q (error %q)", done2.State, done2.Error)
	}
	if done2.Request.BudgetEpochs != budget.DefaultEpochs {
		t.Fatalf("budget_epochs defaulted to %d, want %d", done2.Request.BudgetEpochs, budget.DefaultEpochs)
	}

	// Identical budgeted re-submission: a hit.
	again := submit(t, ts, req)
	if !again.CacheHit {
		t.Fatal("identical budgeted re-submission did not hit the cache")
	}

	// Invalid budget configurations are rejected at the API boundary.
	bad := []string{
		`{"program":"CS/account","budget_policy":"warp-drive"}`,               // unknown policy
		`{"program":"CS/account","budget_epochs":4}`,                          // epochs without policy
		`{"program":"CS/account","budget_policy":"ucb","shards":2}`,           // budgeted + sharded
		`{"program":"CS/account","budget_policy":"ucb","budget_epochs":1000}`, // epochs over cap
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}
