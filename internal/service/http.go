package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rff/internal/bench"
	"rff/internal/store"
	"rff/internal/strategy"
	"rff/internal/telemetry"
	"rff/internal/triage"
)

// RequestError marks a client mistake (HTTP 400).
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// NotFoundError marks a missing resource (HTTP 404).
type NotFoundError struct{ Err error }

func (e *NotFoundError) Error() string { return e.Err.Error() }
func (e *NotFoundError) Unwrap() error { return e.Err }

// UnavailableError marks a full queue or draining server (HTTP 503).
type UnavailableError struct{ Err error }

func (e *UnavailableError) Error() string { return e.Err.Error() }
func (e *UnavailableError) Unwrap() error { return e.Err }

// MHTTPRequests counts daemon HTTP requests per {method, route}.
const MHTTPRequests = "http_requests"

// Handler returns the daemon's HTTP API:
//
//	GET    /v1/healthz            liveness
//	GET    /v1/tools              strategy registry (rff tools -json shape)
//	GET    /v1/programs           benchmark program listing
//	POST   /v1/campaigns          submit a campaign
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	POST   /v1/jobs/{id}/cancel   cancel a job (DELETE /v1/jobs/{id} too)
//	GET    /v1/jobs/{id}/events   live SSE stream, replayed from event 1
//	GET    /v1/jobs/{id}/report   the job's stored report blob
//	GET    /v1/artifacts/{id}     any stored blob by content id
//	GET    /v1/clusters           triage clusters, ranked (requires -triage)
//	GET    /v1/clusters/{id}      one cluster with its canonical artifact
//	GET    /v1/metrics            daemon telemetry snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/tools", s.handleTools)
	mux.HandleFunc("GET /v1/programs", s.handlePrograms)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	mux.HandleFunc("GET /v1/clusters/{id}", s.handleCluster)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s.logging(mux)
}

// statusWriter captures the response status for the request log while
// passing http.Flusher through — the SSE handler needs per-event
// flushing even under the logging wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logging is the structured request log: every request emits an
// http-request event and bumps the http_requests counter on the
// daemon-level telemetry sink.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if t := s.opts.Telemetry; t != nil {
			t.Add(MHTTPRequests, 1,
				telemetry.L("method", r.Method),
				telemetry.L("status", fmt.Sprintf("%d", sw.status)))
			t.Emit(EvHTTPRequest, telemetry.Fields{
				"method":   r.Method,
				"path":     r.URL.Path,
				"status":   sw.status,
				"dur_ms":   time.Since(start).Milliseconds(),
				"remote":   r.RemoteAddr,
				"bytes_in": r.ContentLength,
			})
		}
	})
}

// writeJSON renders a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses with a JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var reqErr *RequestError
	var nfErr *NotFoundError
	var unavErr *UnavailableError
	switch {
	case errors.As(err, &reqErr):
		status = http.StatusBadRequest
	case errors.As(err, &nfErr):
		status = http.StatusNotFound
	case errors.As(err, &unavErr):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": len(s.Jobs())})
}

// handleTools serves the strategy registry through the same encoder as
// `rff tools -json`.
func (s *Server) handleTools(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := strategy.WriteJSON(w); err != nil {
		writeError(w, err)
	}
}

// programView is one row of GET /v1/programs.
type programView struct {
	Name    string `json:"name"`
	Suite   string `json:"suite"`
	Bug     string `json:"bug"`
	Threads int    `json:"threads"`
	Desc    string `json:"desc,omitempty"`
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	var out []programView
	for _, p := range bench.All() {
		out = append(out, programView{
			Name:    p.Name,
			Suite:   string(p.Suite),
			Bug:     string(p.Bug),
			Threads: p.Threads,
			Desc:    p.Desc,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, &RequestError{fmt.Errorf("malformed request body: %w", err)})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, &NotFoundError{fmt.Errorf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleReport serves the job's stored report blob.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, &NotFoundError{fmt.Errorf("no job %q", r.PathValue("id"))})
		return
	}
	v := j.View()
	if v.Result == nil {
		writeError(w, &NotFoundError{fmt.Errorf("job %s has no report (state %s)", j.ID, v.State)})
		return
	}
	data, err := s.store.Get(v.Result.Report)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleArtifact serves any stored blob — crash artifacts, reports,
// event histories — by content address.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := store.ID(r.PathValue("id"))
	if !id.Valid() {
		writeError(w, &RequestError{fmt.Errorf("invalid content id %q", id)})
		return
	}
	data, err := s.store.Get(id)
	if err != nil {
		writeError(w, &NotFoundError{err})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Content-ID", string(id))
	w.Write(data)
}

// handleClusters serves the ranked triage report over the live cluster
// set (the same ranking `rffbench triage` prints).
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if s.triager == nil {
		writeError(w, &UnavailableError{fmt.Errorf("triage is not enabled (start rffd with -triage)")})
		return
	}
	writeJSON(w, http.StatusOK, triage.BuildReport(s.triager, s.opts.TriageDir, nil))
}

// handleCluster serves one cluster with its canonical minimal artifact.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.triager == nil {
		writeError(w, &UnavailableError{fmt.Errorf("triage is not enabled (start rffd with -triage)")})
		return
	}
	c := s.triager.Cluster(r.PathValue("id"))
	if c == nil {
		writeError(w, &NotFoundError{fmt.Errorf("no cluster %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, clusterView{Cluster: c, Canonical: c.Canonical})
}

// handleMetrics serves the daemon hub's snapshot when the daemon sink
// is a *telemetry.Hub; otherwise an empty snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap telemetry.Snapshot
	if h, ok := s.opts.Telemetry.(*telemetry.Hub); ok {
		snap = h.Snapshot()
	}
	data, err := snap.MarshalJSONIndent()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// handleEvents is the SSE bridge: the job's full event history replays
// from event 1 (late subscribers see everything, in order), then live
// events stream until the job reaches a terminal state or the client
// disconnects. Event seq numbers become SSE ids, kinds become SSE
// event names.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, &NotFoundError{fmt.Errorf("no job %q", r.PathValue("id"))})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.events.Subscribe()
	defer cancel()
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // stream sealed: job reached a terminal state
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one telemetry event as a Server-Sent Event.
func writeSSE(w http.ResponseWriter, ev telemetry.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return nil // skip unserializable payloads, keep the stream
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}
