package service

import (
	"encoding/json"

	"rff/internal/core"
	"rff/internal/store"
	"rff/internal/triage"
)

// triageEntry feeds a completed campaign's artifacts through the triage
// pipeline and persists the updated regression corpus. It runs on the
// scheduler worker after the job seals its terminal event, so triage
// latency (minimization probes) never delays the job's API-visible
// completion; identical artifacts re-observed by later campaigns dedup
// by content inside the triager.
func (s *Server) triageEntry(entry *store.Entry) {
	if s.triager == nil || entry == nil || len(entry.Artifacts) == 0 {
		return
	}
	// The report blob carries the per-artifact tool attribution the
	// index entry doesn't.
	tools := map[store.ID]string{}
	if data, err := s.store.Get(entry.Report); err == nil {
		var res CampaignResult
		if json.Unmarshal(data, &res) == nil {
			for _, ref := range res.Artifacts {
				tools[ref.ID] = ref.Tool
			}
		}
	}
	for _, id := range entry.Artifacts {
		data, err := s.store.Get(id)
		if err != nil {
			s.logf("triage: fetching artifact %s: %v", id, err)
			continue
		}
		a, err := core.DecodeArtifact(data)
		if err != nil {
			s.logf("triage: decoding artifact %s: %v", id, err)
			continue
		}
		if _, err := s.triager.Add(a, tools[id]); err != nil {
			s.logf("triage: artifact %s: %v", id, err)
		}
	}
	s.triageMu.Lock()
	defer s.triageMu.Unlock()
	if err := triage.SaveCorpus(s.triager, s.opts.TriageDir); err != nil {
		s.logf("triage: saving corpus: %v", err)
	}
}

// clusterView is GET /v1/clusters/{id}: the cluster plus its canonical
// minimal artifact inlined, so a client can replay without a second
// fetch.
type clusterView struct {
	*triage.Cluster
	Canonical *core.Artifact `json:"canonical,omitempty"`
}
