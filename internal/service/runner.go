package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"rff/internal/budget"
	"rff/internal/campaign"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/store"
	"rff/internal/strategy"
	"rff/internal/telemetry"
)

// newReplayArtifact packs one observed failure into the standard crash
// artifact shape (the same core.Artifact that `rff replay` consumes).
func newReplayArtifact(program string, seed int64, f *exec.Failure, decisions []exec.ThreadID) *core.Artifact {
	return core.NewArtifact(program, core.FailureRecord{
		Seed:      seed,
		Failure:   f,
		Decisions: decisions,
	})
}

// encodeArtifact renders the canonical artifact bytes — identical to
// Artifact.Save's format, so a fetched blob is a valid crash file.
func encodeArtifact(a *core.Artifact) ([]byte, error) {
	return core.EncodeArtifact(a)
}

// runJob executes one campaign end to end: resolve the workload and
// tools, run the evaluation matrix under the job's context, persist the
// report + artifacts + event history into the store, and record the
// index entry that makes the next identical submission a cache hit.
//
// The returned error is an infrastructure failure (job → failed);
// ctx cancellation surfaces as context.Canceled (job → cancelled).
func (s *Server) runJob(ctx context.Context, j *Job) (*store.Entry, error) {
	req := j.Request
	sink := telemetry.Sink(j.events)

	programs, err := req.Programs()
	if err != nil {
		return nil, err
	}
	// Per-spec resolution (instead of strategy.ResolveAll) threads a
	// per-tool artifact collector through each tool's Observer, so a
	// stored artifact knows which strategy exposed it. The collector
	// learns its tool's canonical name right after resolution, before
	// any trial can observe a result.
	tools := make([]campaign.Tool, len(req.Tools))
	collectors := make([]*artifactCollector, len(req.Tools))
	for i, spec := range req.Tools {
		col := newArtifactCollector("")
		tl, err := strategy.Resolve(spec, strategy.Config{
			Telemetry: sink,
			Observer:  col.observe,
			Shards:    req.Shards,
		})
		if err != nil {
			return nil, err
		}
		col.tool = tl.Name()
		collectors[i] = col
		tools[i] = tl
	}

	opts := campaign.MatrixOptions{
		Trials:    req.Trials,
		Budget:    req.Budget,
		MaxSteps:  req.MaxSteps,
		BaseSeed:  req.Seed,
		Workers:   req.Workers,
		Telemetry: sink,
	}
	if req.BudgetPolicy != "" {
		opts.Budgeter = &budget.Config{Policy: req.BudgetPolicy, Epochs: req.BudgetEpochs}
	}
	m := campaign.RunMatrixContext(ctx, tools, programs, opts)
	if err := ctx.Err(); err != nil {
		// A cancelled matrix is a checkpoint, not a result: don't cache
		// partial outcomes under the campaign's key.
		return nil, err
	}

	// Assemble and persist the deterministic result.
	res := &CampaignResult{
		Request:      json.RawMessage(j.CanonJSON),
		Tools:        m.Tools,
		Programs:     m.Programs,
		Budget:       m.Budget,
		Outcomes:     m.Outcomes,
		BudgetReport: m.BudgetReport,
	}
	for _, tool := range m.Tools {
		for _, p := range m.Programs {
			for _, o := range m.Outcomes[tool][p] {
				if o.Found() {
					res.BugsFound++
				}
			}
		}
	}
	entry := &store.Entry{
		Key:       j.Key,
		Request:   json.RawMessage(j.CanonJSON),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, col := range collectors {
		col.mu.Lock()
		arts := append([]collectedArtifact(nil), col.arts...)
		col.mu.Unlock()
		// Content addressing already dedups within a tool; sorting by
		// (program, id) erases observation-order nondeterminism.
		sort.Slice(arts, func(a, b int) bool {
			if arts[a].ref.Program != arts[b].ref.Program {
				return arts[a].ref.Program < arts[b].ref.Program
			}
			return arts[a].ref.ID < arts[b].ref.ID
		})
		for _, ca := range arts {
			id, err := s.store.Put(ca.data)
			if err != nil {
				return nil, fmt.Errorf("storing artifact: %w", err)
			}
			if id != ca.ref.ID {
				return nil, fmt.Errorf("artifact id mismatch: %s != %s", id, ca.ref.ID)
			}
			res.Artifacts = append(res.Artifacts, ca.ref)
			entry.Artifacts = append(entry.Artifacts, ca.ref.ID)
		}
	}

	reportData, err := EncodeResult(res)
	if err != nil {
		return nil, fmt.Errorf("encoding report: %w", err)
	}
	if entry.Report, err = s.store.Put(reportData); err != nil {
		return nil, fmt.Errorf("storing report: %w", err)
	}
	return entry, nil
}

// finishJob emits the terminal event, seals the event stream, persists
// it as the job's coverage/event blob, and records the index entry.
func (s *Server) finishJob(j *Job, entry *store.Entry, runErr error) {
	switch {
	case runErr == nil:
		j.events.Emit(EvJobDone, telemetry.Fields{
			"job":       j.ID,
			"report":    entry.Report,
			"artifacts": len(entry.Artifacts),
		})
	case errors.Is(runErr, context.Canceled):
		j.events.Emit(EvJobCancelled, telemetry.Fields{"job": j.ID, "error": runErr.Error()})
	default:
		j.events.Emit(EvJobFailed, telemetry.Fields{"job": j.ID, "error": runErr.Error()})
	}
	j.events.Close()

	if runErr == nil {
		// The event history (trial-done stream, first-bug marks, corpus
		// growth) is the campaign's convergence record; store it beside
		// the report. Failure to persist events degrades to a report-only
		// entry rather than failing the finished campaign.
		if evData := j.events.HistoryJSONL(); len(evData) > 0 {
			if id, err := s.store.Put(evData); err == nil {
				entry.Events = id
			}
		}
		if err := s.index.Put(entry); err != nil {
			s.logf("job %s: recording index entry: %v", j.ID, err)
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case runErr == nil:
		j.state = JobDone
		j.entry = entry
	case errors.Is(runErr, context.Canceled):
		j.state = JobCancelled
		j.errMsg = runErr.Error()
	default:
		j.state = JobFailed
		j.errMsg = runErr.Error()
	}
}
