package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rff/internal/store"
	"rff/internal/telemetry"
	"rff/internal/triage"
)

// Options configures a Server.
type Options struct {
	// Store is the content-addressed blob store (required).
	Store *store.Store
	// MaxJobs bounds concurrently running campaigns (0 = GOMAXPROCS).
	MaxJobs int
	// QueueCap bounds queued-but-not-running jobs (0 = 64); a full
	// queue rejects submissions rather than buffering without bound.
	QueueCap int
	// JobDeadline, if positive, arms a wall-clock deadline on every
	// job's context; a job past it stops within one scheduling step and
	// fails with a deadline error.
	JobDeadline time.Duration
	// Telemetry, if non-nil, receives daemon-level metrics and the
	// structured request log (http-request events).
	Telemetry telemetry.Sink
	// DefaultShards, when >= 1, fills CampaignRequest.Shards for
	// submissions that leave it unset, before canonicalization — so the
	// default participates in the cache key exactly like an explicit
	// value, and flipping the daemon default never serves results
	// computed by the other algorithm.
	DefaultShards int
	// TriageDir, if non-empty, enables background triage: every
	// completed job's artifacts are minimized and clustered into the
	// regression corpus rooted at this directory (loaded at startup, so
	// clusters accumulate across daemon restarts), and the /v1/clusters
	// endpoints serve the live cluster set.
	TriageDir string
	// TriageBudget bounds per-artifact minimization probes during
	// background triage (0 = the triage default).
	TriageBudget int
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server is the rffd campaign service: a bounded job queue, a pool of
// scheduler workers draining it through the fleet-backed matrix runner,
// and the content-addressed result store. Construct with New, call
// Start to begin executing jobs, and Drain for graceful shutdown.
type Server struct {
	opts  Options
	store *store.Store
	index *store.Index

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    chan *Job
	nextID   int
	draining bool

	baseCtx context.Context
	stop    context.CancelFunc
	workers sync.WaitGroup
	started bool

	// triager clusters completed jobs' artifacts (nil = triage off);
	// triageMu serializes corpus writes across scheduler workers.
	triager  *triage.Triager
	triageMu sync.Mutex

	// testAfterRun, if set, runs between a job's campaign finishing and
	// its terminal state being recorded — the hook drain-race tests use
	// to cancel the server inside that window deterministically.
	testAfterRun func()
}

// New builds a server over the store, restoring any queue persisted by
// a previous drain. Jobs do not execute until Start.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("service: Options.Store is required")
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	idx, err := store.OpenIndex(opts.Store)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		store:   opts.Store,
		index:   idx,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, opts.QueueCap),
		baseCtx: ctx,
		stop:    cancel,
	}
	s.verifyIndex()
	if opts.TriageDir != "" {
		tr, err := triage.LoadCorpus(opts.TriageDir, triage.Config{
			Budget: opts.TriageBudget,
			Sink:   opts.Telemetry,
		})
		if err != nil {
			return nil, fmt.Errorf("service: loading triage corpus: %w", err)
		}
		s.triager = tr
		if n := tr.Len(); n > 0 {
			s.logf("loaded triage corpus: %d cluster(s)", n)
		}
	}
	if n, err := s.restoreQueue(); err != nil {
		s.logf("restoring persisted queue: %v", err)
	} else if n > 0 {
		s.logf("restored %d queued job(s) from a previous drain", n)
	}
	return s, nil
}

// verifyIndex drops index entries that reference missing blobs — the
// leftovers of a crash or drain that interrupted a job between its blob
// writes and the index record (an entry without its report or artifacts
// would serve cache hits whose fetches 404). A dropped entry just means
// that campaign re-runs on its next submission.
func (s *Server) verifyIndex() {
	for _, e := range s.index.Entries() {
		missing := store.ID("")
		switch {
		case !s.store.Has(e.Report):
			missing = e.Report
		case e.Events != "" && !s.store.Has(e.Events):
			missing = e.Events
		default:
			for _, id := range e.Artifacts {
				if !s.store.Has(id) {
					missing = id
					break
				}
			}
		}
		if missing == "" {
			continue
		}
		s.logf("index entry %s references missing blob %s; dropping it", e.Key, missing)
		if err := s.index.Delete(e.Key); err != nil {
			s.logf("dropping index entry %s: %v", e.Key, err)
		}
	}
}

// Store returns the server's blob store.
func (s *Server) Store() *store.Store { return s.store }

// Index returns the campaign result index.
func (s *Server) Index() *store.Index { return s.index }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Start launches the scheduler workers. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for w := 0; w < s.opts.MaxJobs; w++ {
		s.workers.Add(1)
		go s.worker()
	}
}

// worker drains the queue until it closes (Drain). Jobs reached after
// draining began are left queued — they persist to disk for the next
// daemon instance instead of delaying shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			continue // stays JobQueued; Drain persists it
		}
		s.execute(j)
	}
}

// execute transitions one queued job through running to a terminal
// state. Cancel-before-start and drain-cancellation both surface as
// context.Canceled.
func (s *Server) execute(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if s.opts.JobDeadline > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.opts.JobDeadline)
		defer tcancel()
	}

	j.mu.Lock()
	if j.cancelled || j.state != JobQueued {
		// Cancelled while queued: finish without running.
		j.mu.Unlock()
		s.finishJob(j, nil, context.Canceled)
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	j.events.Emit(EvJobStarted, telemetry.Fields{
		"job":     j.ID,
		"tools":   j.Request.Tools,
		"budget":  j.Request.Budget,
		"trials":  j.Request.Trials,
		"workers": j.Request.Workers,
	})
	// runJob checks ctx itself before persisting anything, so a nil
	// error here means a complete, fully-stored result — record it as
	// done even if a drain cancelled the context afterwards. (Flipping
	// a completed job to cancelled post-hoc used to leave its persisted
	// artifact blobs unindexed and requeue the whole campaign.)
	entry, err := s.runJob(ctx, j)
	if s.testAfterRun != nil {
		s.testAfterRun()
	}
	s.finishJob(j, entry, err)
	if err == nil {
		s.triageEntry(entry)
	}
	s.logf("job %s: %s", j.ID, j.State())
}

// Submit validates, canonicalizes, and enqueues a campaign. An
// identical already-completed campaign short-circuits: the job is born
// done with the stored result and CacheHit set, its event stream
// carrying job-cached + job-done so SSE consumers see a terminal event.
func (s *Server) Submit(req CampaignRequest) (*Job, error) {
	if req.Shards == 0 {
		req.Shards = s.opts.DefaultShards
	}
	canonReq, err := req.Canonicalize()
	if err != nil {
		return nil, &RequestError{err}
	}
	key, canonJSON, err := canonReq.CacheKey()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &UnavailableError{fmt.Errorf("server is draining")}
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), canonReq, key, canonJSON, time.Now())
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)

	if entry := s.index.Get(key); entry != nil {
		// Cache hit: the stored result is returned without re-fuzzing.
		j.state = JobDone
		j.cacheHit = true
		j.entry = entry
		j.finished = time.Now()
		s.mu.Unlock()
		j.events.Emit(EvJobCached, telemetry.Fields{"job": j.ID, "key": key})
		j.events.Emit(EvJobDone, telemetry.Fields{
			"job":       j.ID,
			"report":    entry.Report,
			"artifacts": len(entry.Artifacts),
			"cache_hit": true,
		})
		j.events.Close()
		s.logf("job %s: cache hit (%s)", j.ID, key)
		return j, nil
	}

	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, &UnavailableError{fmt.Errorf("job queue is full (%d queued)", s.opts.QueueCap)}
	}
	s.mu.Unlock()
	j.events.Emit(EvJobQueued, telemetry.Fields{"job": j.ID, "key": key})
	return j, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Cancel requests cancellation: a queued job is marked and skipped when
// a worker reaches it; a running job's context is cancelled, stopping
// every strategy within one scheduling step. Terminal jobs are a no-op.
func (s *Server) Cancel(id string) (*Job, error) {
	j, ok := s.Job(id)
	if !ok {
		return nil, &NotFoundError{fmt.Errorf("no job %q", id)}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state.Terminal():
		// Nothing to do.
	case j.state == JobRunning && j.cancel != nil:
		j.cancelled = true
		j.cancel()
	default:
		j.cancelled = true
	}
	return j, nil
}

// Drain is graceful shutdown: stop accepting submissions, let running
// jobs finish until ctx expires, then cancel the stragglers (their
// checkpointed state is discarded and they requeue), and persist every
// job that never ran so a restarted daemon resumes them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	started := s.started
	close(s.queue)
	s.mu.Unlock()

	if started {
		finished := make(chan struct{})
		go func() {
			s.workers.Wait()
			close(finished)
		}()
		select {
		case <-finished:
		case <-ctx.Done():
			// Deadline: cancel in-flight jobs; every strategy observes
			// its context within one scheduling step.
			s.stop()
			<-finished
		}
	}
	return s.persistQueue()
}
