package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// queueFile is the persisted form of the not-yet-run queue: the
// canonical requests of every job a draining daemon did not execute,
// written next to the store so the next daemon instance resumes them.
type queueFile struct {
	Jobs []CampaignRequest `json:"jobs"`
}

// queuePath is the persisted queue's location under the store root.
func (s *Server) queuePath() string {
	return filepath.Join(s.store.Root(), "queue.json")
}

// persistQueue writes every still-queued, not-user-cancelled job's
// request to queue.json (atomically; an empty queue removes the file).
// Jobs the drain cancelled mid-run are requeued too: their partial
// state was discarded, so the next daemon re-runs them from scratch
// (or serves them from cache if a twin completed meanwhile).
func (s *Server) persistQueue() error {
	s.mu.Lock()
	var qf queueFile
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		requeue := (j.state == JobQueued && !j.cancelled) ||
			(j.state == JobCancelled && !j.cancelled) // drain-cancelled mid-run
		j.mu.Unlock()
		if requeue {
			qf.Jobs = append(qf.Jobs, j.Request)
		}
	}
	s.mu.Unlock()

	path := s.queuePath()
	if len(qf.Jobs) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("service: removing %s: %w", path, err)
		}
		return nil
	}
	data, err := json.MarshalIndent(qf, "", "  ")
	if err != nil {
		return fmt.Errorf("service: marshaling queue: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: %w", err)
	}
	s.logf("persisted %d queued job(s) to %s", len(qf.Jobs), path)
	return nil
}

// restoreQueue re-submits the persisted queue of a previous drain and
// removes the file. Requests whose campaigns completed elsewhere in the
// meantime resolve as cache hits.
func (s *Server) restoreQueue() (int, error) {
	path := s.queuePath()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var qf queueFile
	if err := json.Unmarshal(data, &qf); err != nil {
		return 0, fmt.Errorf("malformed %s: %w", path, err)
	}
	n := 0
	for i, req := range qf.Jobs {
		if _, err := s.Submit(req); err != nil {
			s.logf("restored job %d: %v", i, err)
			continue
		}
		n++
	}
	if err := os.Remove(path); err != nil {
		return n, err
	}
	return n, nil
}
