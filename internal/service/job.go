package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"rff/internal/campaign"
	"rff/internal/exec"
	"rff/internal/store"
	"rff/internal/telemetry"
)

// JobState is a job's lifecycle position. Transitions are
// queued → running → {done, failed, cancelled}, with cache hits going
// straight from queued to done.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job-lifecycle event kinds, emitted into each job's event stream
// alongside the campaign events (campaign-start, trial-done, ...). The
// last event of every stream is one of the three terminal kinds, so an
// SSE consumer can stop at job-done / job-failed / job-cancelled.
const (
	EvJobQueued    = "job-queued"
	EvJobStarted   = "job-started"
	EvJobCached    = "job-cached"
	EvJobDone      = "job-done"
	EvJobFailed    = "job-failed"
	EvJobCancelled = "job-cancelled"
	// EvHTTPRequest is the daemon's structured request log, emitted to
	// the daemon-level telemetry sink (not per-job streams).
	EvHTTPRequest = "http-request"
)

// Job is one submitted campaign moving through the queue.
type Job struct {
	// ID is the daemon-assigned job identifier ("job-000001").
	ID string
	// Request is the canonical campaign request.
	Request CampaignRequest
	// Key is the campaign cache key; CanonJSON the JSON it hashes.
	Key       store.ID
	CanonJSON []byte

	// events is the job's telemetry bridge: the campaign sink, the SSE
	// replay source, and (persisted at completion) the coverage record.
	events *telemetry.Broadcast
	// hub collects the job's metrics behind the bridge.
	hub *telemetry.Hub

	mu        sync.Mutex
	state     JobState
	errMsg    string
	cacheHit  bool
	created   time.Time
	started   time.Time
	finished  time.Time
	entry     *store.Entry
	cancelled bool // cancel requested (observed by queued jobs)
	cancel    context.CancelFunc
}

// newJob builds a queued job with a live event bridge.
func newJob(id string, req CampaignRequest, key store.ID, canon []byte, now time.Time) *Job {
	hub := telemetry.NewHub()
	return &Job{
		ID:        id,
		Request:   req,
		Key:       key,
		CanonJSON: canon,
		events:    telemetry.NewBroadcast(hub),
		hub:       hub,
		state:     JobQueued,
		created:   now,
	}
}

// JobView is the API snapshot of a job (GET /v1/jobs/{id}).
type JobView struct {
	ID       string          `json:"id"`
	State    JobState        `json:"state"`
	Request  CampaignRequest `json:"request"`
	Key      store.ID        `json:"key"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Error    string          `json:"error,omitempty"`
	Created  string          `json:"created"`
	Started  string          `json:"started,omitempty"`
	Finished string          `json:"finished,omitempty"`
	// Result points at the stored blobs once the job is done.
	Result *store.Entry `json:"result,omitempty"`
}

// View snapshots the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		State:    j.state,
		Request:  j.Request,
		Key:      j.Key,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
		Result:   j.entry,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// --- campaign result ---------------------------------------------------------

// ArtifactRef ties one stored crash artifact to the (tool, program)
// cell that produced it.
type ArtifactRef struct {
	// ID is the artifact blob's content address (a core.Artifact JSON).
	ID store.ID `json:"id"`
	// Tool is the canonical strategy name that exposed the failure.
	Tool string `json:"tool"`
	// Program is the program the failure occurred in.
	Program string `json:"program"`
	// FailureKind is the bug class ("assertion violation", "deadlock", ...).
	FailureKind string `json:"failure_kind"`
}

// CampaignResult is the stored report blob: a pure function of the
// canonical request (no timestamps, no worker counts), so identical
// campaigns — at any parallelism — produce byte-identical reports. The
// cache-hit contract and the CI byte-identity diff both lean on this.
type CampaignResult struct {
	// Request echoes the canonical request (execution hints stripped).
	Request json.RawMessage `json:"request"`
	// Tools and Programs index Outcomes in evaluation order.
	Tools    []string `json:"tools"`
	Programs []string `json:"programs"`
	Budget   int      `json:"budget"`
	// Outcomes[tool][program] is the per-trial outcome list, exactly
	// campaign.MatrixResult's shape.
	Outcomes map[string]map[string][]campaign.Outcome `json:"outcomes"`
	// Artifacts lists every distinct crash artifact, sorted by
	// (tool, program, id).
	Artifacts []ArtifactRef `json:"artifacts,omitempty"`
	// BugsFound counts (tool, program, trial) cells that exposed a bug.
	BugsFound int `json:"bugs_found"`
	// BudgetReport records the adaptive allocator's accounting when the
	// request set budget_policy: the allocation trace, per-cell spend,
	// and reallocation count. Nil for fixed-budget campaigns.
	BudgetReport *campaign.BudgetReport `json:"budget_report,omitempty"`
}

// EncodeResult renders the canonical report bytes that get stored (and
// diffed for byte-identity in CI).
func EncodeResult(res *CampaignResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// --- artifact collection -----------------------------------------------------

// collectedArtifact is one failure captured during a job, with its
// serialized core.Artifact bytes.
type collectedArtifact struct {
	ref  ArtifactRef
	data []byte
}

// artifactCollector is a per-tool campaign.ResultObserver that turns
// every failing execution into a content-addressed crash artifact.
// Observers run concurrently across fleet workers, so the collector
// locks; content addressing dedups identical failures, and the final
// artifact list is sorted, keeping stored results independent of
// worker scheduling.
type artifactCollector struct {
	tool string

	mu   sync.Mutex
	seen map[store.ID]bool
	arts []collectedArtifact
}

func newArtifactCollector(tool string) *artifactCollector {
	return &artifactCollector{tool: tool, seen: make(map[store.ID]bool)}
}

// observe implements campaign.ResultObserver. It copies everything it
// keeps — the trace is recycled after it returns.
func (c *artifactCollector) observe(res *exec.Result) {
	if res.Failure == nil {
		return
	}
	f := *res.Failure
	art := newReplayArtifact(res.Program, res.Seed, &f, res.Trace.ThreadOrder())
	data, err := encodeArtifact(art)
	if err != nil {
		return // unserializable failure: droppable, the outcome still records it
	}
	id := store.SumID(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[id] {
		return
	}
	c.seen[id] = true
	c.arts = append(c.arts, collectedArtifact{
		ref: ArtifactRef{
			ID:          id,
			Tool:        c.tool,
			Program:     res.Program,
			FailureKind: f.Kind.String(),
		},
		data: data,
	})
}
