package bench

import "rff/internal/exec"

// SafeStack is the hardest subject in the paper's evaluation: the
// lock-free index stack from RADBench (originating in a ThreadSanitizer
// test by Dmitry Vyukov). Its ABA bug needs three threads and a long,
// precise interleaving; no evaluated tool exposes it within the time
// budget. The paper uses it for the Figure 5 exploration-evenness
// experiment because its CAS loops generate a rich space of reads-from
// combinations.

func init() {
	register(Program{
		Name: "SafeStack", Suite: "SafeStack", Bug: BugNone, Threads: 3,
		Desc: "lock-free index stack with an ABA window between reading head->next and the CAS; three threads pop/push concurrently",
		Body: safeStackProgram,
	})
}

// safeStackProgram implements the SafeStack algorithm over engine vars:
// head holds the index of the top node, next[i] links node i to its
// successor, count tracks occupancy. Pop reads head and next[head], then
// CASes head to the successor — the unprotected gap between the next read
// and the CAS is the ABA window.
func safeStackProgram(t *exec.Thread) {
	const n = 6
	head := t.NewVar("head", 0)
	count := t.NewVar("count", n)
	next := t.NewVars("next", n, 0)
	owned := t.NewVars("owned", n, 0) // oracle: at most one owner per node
	for i := 0; i < n; i++ {
		if i == n-1 {
			t.Write(next[i], -1)
		} else {
			t.Write(next[i], int64(i+1))
		}
	}

	pop := func(w *exec.Thread) int64 {
		for spin := 0; spin < 4; spin++ {
			if w.Read(count) <= 1 {
				return -1
			}
			h := w.Read(head)
			if h < 0 {
				return -1
			}
			nx := w.Read(next[h]) // ABA window opens here
			if _, ok := w.CAS(head, h, nx); ok {
				w.AtomicAdd(count, -1)
				return h
			}
			w.Yield()
		}
		return -1
	}
	push := func(w *exec.Thread, idx int64) {
		for spin := 0; spin < 6; spin++ {
			h := w.Read(head)
			w.Write(next[idx], h)
			if _, ok := w.CAS(head, h, idx); ok {
				w.AtomicAdd(count, 1)
				return
			}
			w.Yield()
		}
	}

	worker := func(w *exec.Thread) {
		for round := 0; round < 3; round++ {
			idx := pop(w)
			if idx < 0 {
				w.Yield()
				continue
			}
			// Oracle: an ABA-corrupted CAS hands the same node to two
			// threads.
			prev := w.AtomicAdd(owned[idx], 1)
			w.Assertf(prev == 0, "node %d popped by two threads (ABA)", idx)
			w.AtomicAdd(owned[idx], -1)
			push(w, idx)
		}
	}
	a := t.Go("w0", worker)
	b := t.Go("w1", worker)
	c := t.Go("w2", worker)
	t.JoinAll(a, b, c)
}
