package bench

import "rff/internal/exec"

// The Splash2 suite ports the three SPLASH-2 kernels SCTBench retains
// (barnes, fft, lu) down to the shared accesses carrying each harness's
// planted assertion: global reductions and tree updates performed with
// missing or wrong-scope locking.

func init() {
	register(Program{
		Name: "Splash2/barnes", Suite: "Splash2", Bug: BugAssert, Threads: 3,
		Desc: "tree-cell body counter updated by three builders with a read-modify-write race under a cell lock taken too late",
		Body: barnesProgram,
	})
	register(Program{
		Name: "Splash2/fft", Suite: "Splash2", Bug: BugAssert, Threads: 2,
		Desc: "the transpose-phase checksum is accumulated without the global lock: a lost update breaks the final checksum",
		Body: fftProgram,
	})
	register(Program{
		Name: "Splash2/lu", Suite: "Splash2", Bug: BugAssert, Threads: 2,
		Desc: "the pivot column counter races between the factor and update phases",
		Body: luProgram,
	})
}

// barnesProgram: late lock acquisition around a tree-cell update.
func barnesProgram(t *exec.Thread) {
	cellBodies := t.NewVar("cell.bodies", 0)
	cellLock := t.NewMutex("cell.lock")
	builder := func(w *exec.Thread) {
		// The original reads the cell state before deciding whether to
		// lock, so the read races with other builders' updates.
		n := w.Read(cellBodies)
		w.Lock(cellLock)
		w.Write(cellBodies, n+1)
		w.Unlock(cellLock)
	}
	a := t.Go("builder0", builder)
	b := t.Go("builder1", builder)
	c := t.Go("builder2", builder)
	t.JoinAll(a, b, c)
	t.Assertf(t.Read(cellBodies) == 3, "bodies lost in tree build: %d/3", t.Read(cellBodies))
}

// fftProgram: the transpose phase is barrier-separated, but worker 0
// reads its partner's partial sum before reaching the barrier (the
// code-motion bug) — under the wrong interleaving it folds a zero into
// the checksum.
func fftProgram(t *exec.Thread) {
	bar := t.NewBarrier("transpose", 2)
	partial := t.NewVars("partial", 2, 0)
	worker := func(self, other int, val int64) exec.Program {
		return func(w *exec.Thread) {
			w.Write(partial[self], val)
			if self == 0 {
				// BUG: reads the partner's partial before the barrier.
				sum := w.Read(partial[0]) + w.Read(partial[other])
				w.BarrierWait(bar)
				w.Assertf(sum == 8, "transpose checksum mismatch: %d/8", sum)
				return
			}
			w.BarrierWait(bar)
		}
	}
	a := t.Go("fft0", worker(0, 1, 3))
	b := t.Go("fft1", worker(1, 0, 5))
	t.JoinAll(a, b)
}

// luProgram: pivot counter raced between phases.
func luProgram(t *exec.Thread) {
	pivot := t.NewVar("pivot", 0)
	done := t.NewVar("done", 0)
	factor := t.Go("factor", func(w *exec.Thread) {
		p := w.Read(pivot)
		w.Write(pivot, p+1)
		w.Write(done, 1)
	})
	update := t.Go("update", func(w *exec.Thread) {
		if w.Read(done) == 1 {
			return // factorization finished; nothing to race with
		}
		// Race ahead of the factor phase and bump the pivot (the bug:
		// the phases were meant to be barrier-separated).
		p := w.Read(pivot)
		w.Write(pivot, p+1)
		w.Assertf(w.Read(pivot) == p+1, "factor phase raced the update: pivot %d, expected %d",
			w.Read(pivot), p+1)
	})
	t.JoinAll(factor, update)
}
