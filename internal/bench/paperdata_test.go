package bench_test

import (
	"testing"

	"rff/internal/bench"
)

func TestPaperDataCoversRegistry(t *testing.T) {
	// Every registered program must have a paper row (CS/twostage_4/5-style
	// rows we did not port are simply absent from both sides).
	for _, p := range bench.All() {
		if p.Suite == "Extras" || p.Suite == "Chan" {
			continue // beyond the paper's subject set by design
		}
		if _, ok := bench.PaperAppendixB[p.Name]; !ok {
			t.Errorf("program %q has no paper Appendix B row", p.Name)
		}
	}
}

func TestPaperDataRowsComplete(t *testing.T) {
	for prog, row := range bench.PaperAppendixB {
		for _, tool := range bench.PaperTools {
			if _, ok := row[tool]; !ok {
				t.Errorf("paper row %q missing tool %q", prog, tool)
			}
		}
		if len(row) != len(bench.PaperTools) {
			t.Errorf("paper row %q has %d cells, want %d", prog, len(row), len(bench.PaperTools))
		}
	}
}

func TestPaperCellRendering(t *testing.T) {
	cases := map[string]bench.PaperCell{
		"6 ± 4":   {Mean: 6, Std: 4},
		"45 ± 6*": {Mean: 45, Std: 6, Partial: true},
		"3 ± 0†":  {Mean: 3, Std: 0, NoDeadlock: true},
		"4 ± 1*†": {Mean: 4, Std: 1, Partial: true, NoDeadlock: true},
		"-":       {Never: true},
		"Error":   {Error: true},
	}
	for want, cell := range cases {
		if got := cell.String(); got != want {
			t.Errorf("cell %+v renders %q, want %q", cell, got, want)
		}
	}
}

func TestPaperCellFor(t *testing.T) {
	c, ok := bench.PaperCellFor("CS/reorder_100", "RFF")
	if !ok || c.Mean != 6 || c.Std != 4 {
		t.Fatalf("reorder_100 RFF cell wrong: %+v ok=%v", c, ok)
	}
	if _, ok := bench.PaperCellFor("CS/reorder_100", "NoSuchTool"); ok {
		t.Fatal("phantom tool")
	}
	if _, ok := bench.PaperCellFor("NoSuchProgram", "RFF"); ok {
		t.Fatal("phantom program")
	}
	// The headline SafeStack row: nobody finds it.
	for _, tool := range bench.PaperTools {
		c, _ := bench.PaperCellFor("SafeStack", tool)
		if tool == "GenMC" {
			if !c.Error {
				t.Errorf("SafeStack GenMC should be Error")
			}
		} else if !c.Never {
			t.Errorf("SafeStack %s should be '-'", tool)
		}
	}
}
