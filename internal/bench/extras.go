package bench

import "rff/internal/exec"

// The Extras suite goes beyond the paper's 49 subjects: curated programs
// exercising the engine's remaining pthread surface (reader-writer locks,
// semaphores, trylock, barriers), in the spirit of the artifact's
// "additional curated examples not discussed in the paper". They are
// excluded from the paper-reproduction matrix by default.

func init() {
	register(Program{
		Name: "Extras/reorder_2", Suite: "Extras", Bug: BugAssert, Threads: 3,
		Desc: "two-setter reorder, small enough for exhaustive enumeration — the subject of the E8 reads-from class count",
		Body: reorderProgram(2),
	})
	register(Program{
		Name: "Extras/rwlock_upgrade", Suite: "Extras", Bug: BugAssert, Threads: 3,
		Desc: "two readers release the rwlock and re-acquire it as writers to apply an update computed under the read lock: the classic unsafe upgrade loses one update",
		Body: rwlockUpgradeProgram,
	})
	register(Program{
		Name: "Extras/semaphore_leak", Suite: "Extras", Bug: BugDeadlock, Threads: 2,
		Desc: "the producer's error path skips its sem_post, deadlocking a consumer that already committed to waiting",
		Body: semaphoreLeakProgram,
	})
	register(Program{
		Name: "Extras/trylock_fallback", Suite: "Extras", Bug: BugAssert, Threads: 2,
		Desc: "a trylock failure takes an unsynchronized fallback path that races the lock holder",
		Body: trylockFallbackProgram,
	})
	register(Program{
		Name: "Extras/barrier_phase_leak", Suite: "Extras", Bug: BugAssert, Threads: 3,
		Desc: "one worker updates the next phase's input before the barrier because its guard reads a stale phase counter",
		Body: barrierPhaseLeakProgram,
	})
}

// rwlockUpgradeProgram: read-compute-upgrade-write without holding the
// lock across the upgrade.
func rwlockUpgradeProgram(t *exec.Thread) {
	rw := t.NewRWMutex("rw")
	counter := t.NewVar("counter", 0)
	upgrader := func(w *exec.Thread) {
		w.RLock(rw)
		v := w.Read(counter) // compute under shared lock
		w.RUnlock(rw)
		w.WLock(rw) // unsafe upgrade: the world may have changed
		w.Write(counter, v+1)
		w.WUnlock(rw)
	}
	a, b := t.Go("a", upgrader), t.Go("b", upgrader)
	t.JoinAll(a, b)
	t.Assertf(t.Read(counter) == 2, "upgrade lost an update: %d/2", t.Read(counter))
}

// semaphoreLeakProgram: a sem_post skipped on the racy error path.
func semaphoreLeakProgram(t *exec.Thread) {
	items := t.NewSemaphore("items", 0)
	errFlag := t.NewVar("err", 0)
	consumer := t.Go("consumer", func(w *exec.Thread) {
		if w.Read(errFlag) != 0 {
			return // producer reported failure before we committed
		}
		w.SemWait(items) // may wait forever if the producer bailed late
	})
	producer := t.Go("producer", func(w *exec.Thread) {
		// The producer fails after the consumer's error check but
		// before posting.
		w.Write(errFlag, 1)
		// BUG: early return on error skips w.SemPost(items).
	})
	t.JoinAll(consumer, producer)
}

// trylockFallbackProgram: failed trylock falls back to unsynchronized
// access.
func trylockFallbackProgram(t *exec.Thread) {
	m := t.NewMutex("m")
	shared := t.NewVar("shared", 0)
	holder := t.Go("holder", func(w *exec.Thread) {
		w.Lock(m)
		v := w.Read(shared)
		w.Yield()
		w.Write(shared, v+10)
		w.Unlock(m)
	})
	opportunist := t.Go("opportunist", func(w *exec.Thread) {
		if w.TryLock(m) {
			v := w.Read(shared)
			w.Write(shared, v+1)
			w.Unlock(m)
			return
		}
		// BUG: lock busy — update anyway.
		v := w.Read(shared)
		w.Write(shared, v+1)
	})
	t.JoinAll(holder, opportunist)
	t.Assertf(t.Read(shared) == 11, "fallback path lost an update: %d/11", t.Read(shared))
}

// barrierPhaseLeakProgram: a stale phase-guard lets one worker run ahead.
func barrierPhaseLeakProgram(t *exec.Thread) {
	bar := t.NewBarrier("phase", 2)
	input := t.NewVar("input", 1)
	phase := t.NewVar("phase_no", 0)
	fast := t.Go("fast", func(w *exec.Thread) {
		if w.Read(phase) == 0 {
			// BUG: believes phase 0 is still running and "pre-stages"
			// phase 1 input early.
			w.Write(input, 2)
		}
		w.BarrierWait(bar)
	})
	slow := t.Go("slow", func(w *exec.Thread) {
		v := w.Read(input) // phase-0 computation
		w.Write(phase, 1)
		w.BarrierWait(bar)
		w.Assertf(v == 1, "phase-0 read saw phase-1 input: %d", v)
	})
	t.JoinAll(fast, slow)
}
