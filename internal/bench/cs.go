package bench

import (
	"fmt"

	"rff/internal/exec"
)

// The CS suite ports the Cordeiro/Fischer context-bounded verification
// benchmarks as packaged in SCTBench: small pthread programs with planted
// assertion violations and deadlocks. These dominate the paper's Appendix
// B table (account, bluetooth_driver, reorder_*, twostage_*, ...).

func init() {
	for _, n := range []int{3, 4, 5, 10, 20, 50, 100} {
		n := n
		register(Program{
			Name:    fmt.Sprintf("CS/reorder_%d", n),
			Suite:   "CS",
			Bug:     BugAssert,
			Threads: n + 1,
			Desc: fmt.Sprintf("%d setter threads write a=1 then b=-1; a checker asserts (a,b) is "+
				"(0,0) or (1,-1) — fails only when it reads between some setter's two writes (Figure 1)", n),
			Body: reorderProgram(n),
		})
	}
	for _, n := range []int{1, 20, 50, 100} {
		n := n
		name := "CS/twostage"
		if n > 1 {
			name = fmt.Sprintf("CS/twostage_%d", n)
		}
		register(Program{
			Name:    name,
			Suite:   "CS",
			Bug:     BugAssert,
			Threads: n + 1,
			Desc: fmt.Sprintf("%d two-stage updaters set data1 under lock A then data2 under lock B; "+
				"a reader asserts data2 == data1+1 and fails when it runs between someone's stages", n),
			Body: twostageProgram(n),
		})
	}
	register(Program{
		Name: "CS/account", Suite: "CS", Bug: BugAssert, Threads: 2,
		Desc: "unsynchronized deposit and withdraw race on the balance; main asserts the final balance",
		Body: accountProgram,
	})
	register(Program{
		Name: "CS/bluetooth_driver", Suite: "CS", Bug: BugAssert, Threads: 2,
		Desc: "driver worker checks stoppingFlag, then touches the device; the stopper sets stoppingFlag and stopped in between (QW2004)",
		Body: bluetoothProgram,
	})
	register(Program{
		Name: "CS/carter01", Suite: "CS", Bug: BugDeadlock, Threads: 2,
		Desc: "conditional lock ordering: both threads take locks A and B in opposite orders behind data-dependent branches",
		Body: carterProgram,
	})
	register(Program{
		Name: "CS/circular_buffer", Suite: "CS", Bug: BugAssert, Threads: 2,
		Desc: "producer/consumer over a ring buffer with a non-atomic element count; racing updates corrupt FIFO order",
		Body: circularBufferProgram,
	})
	register(Program{
		Name: "CS/deadlock01", Suite: "CS", Bug: BugDeadlock, Threads: 2,
		Desc: "classic ABBA: thread 1 locks A then B, thread 2 locks B then A",
		Body: deadlock01Program,
	})
	register(Program{
		Name: "CS/lazy01", Suite: "CS", Bug: BugAssert, Threads: 3,
		Desc: "three lazy initializers add 1, 2 and read; the assert fires when the reader sees the full sum",
		Body: lazy01Program,
	})
	register(Program{
		Name: "CS/queue", Suite: "CS", Bug: BugAssert, Threads: 2,
		Desc: "enqueue and dequeue share a non-atomic element count; racing updates break the FIFO invariant",
		Body: queueProgram,
	})
	register(Program{
		Name: "CS/stack", Suite: "CS", Bug: BugAssert, Threads: 2,
		Desc: "push and pop race on the unprotected top-of-stack index; the bounds assertion fires on over/underflow",
		Body: stackProgram,
	})
	register(Program{
		Name: "CS/token_ring", Suite: "CS", Bug: BugAssert, Threads: 4,
		Desc: "four threads pass a token by unsynchronized read-increment-write; lost updates break the final count",
		Body: tokenRingProgram,
	})
	register(Program{
		Name: "CS/wronglock", Suite: "CS", Bug: BugAssert, Threads: 3,
		Desc: "one updater guards the counter with lock L, two others with lock M: mutual exclusion silently fails",
		Body: wronglockProgram(1, 2),
	})
	register(Program{
		Name: "CS/wronglock_3", Suite: "CS", Bug: BugAssert, Threads: 4,
		Desc: "wronglock with three threads on the wrong lock",
		Body: wronglockProgram(1, 3),
	})
}

// reorderProgram is the paper's Figure 1 subject: n setters, one checker.
func reorderProgram(n int) exec.Program {
	return func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		threads := make([]*exec.Thread, 0, n+1)
		for i := 0; i < n; i++ {
			threads = append(threads, t.Go("setter", func(w *exec.Thread) {
				w.Write(a, 1)
				w.Write(b, -1)
			}))
		}
		threads = append(threads, t.Go("checker", func(w *exec.Thread) {
			av := w.Read(a)
			bv := w.Read(b)
			w.Assert((av == 0 && bv == 0) || (av == 1 && bv == -1),
				"checker saw a partial setter update")
		}))
		t.JoinAll(threads...)
	}
}

// twostageProgram: n updaters run stage 1 (data1=42 under lock A) and then
// stage 2 (data2=data1+1 under lock B); the reader fails if it observes
// stage 1's effect without any completed stage 2.
func twostageProgram(n int) exec.Program {
	return func(t *exec.Thread) {
		data1 := t.NewVar("data1", 0)
		data2 := t.NewVar("data2", 0)
		mA := t.NewMutex("mA")
		mB := t.NewMutex("mB")
		threads := make([]*exec.Thread, 0, n+1)
		for i := 0; i < n; i++ {
			threads = append(threads, t.Go("updater", func(w *exec.Thread) {
				w.Lock(mA)
				w.Write(data1, 42)
				w.Unlock(mA)
				w.Lock(mB)
				d1 := w.Read(data1)
				w.Write(data2, d1+1)
				w.Unlock(mB)
			}))
		}
		threads = append(threads, t.Go("reader", func(w *exec.Thread) {
			w.Lock(mA)
			d1 := w.Read(data1)
			w.Unlock(mA)
			if d1 == 0 {
				return // no stage completed yet: nothing to check
			}
			w.Lock(mB)
			d2 := w.Read(data2)
			w.Unlock(mB)
			w.Assert(d2 == d1+1, "reader ran between an updater's two stages")
		}))
		t.JoinAll(threads...)
	}
}

// accountProgram: classic unsynchronized bank account.
func accountProgram(t *exec.Thread) {
	balance := t.NewVar("balance", 100)
	dep := t.Go("deposit", func(w *exec.Thread) {
		b := w.Read(balance)
		w.Write(balance, b+50)
	})
	wdr := t.Go("withdraw", func(w *exec.Thread) {
		b := w.Read(balance)
		w.Write(balance, b-50)
	})
	t.JoinAll(dep, wdr)
	t.Assert(t.Read(balance) == 100, "deposit or withdrawal lost")
}

// bluetoothProgram models the QW2004 Bluetooth driver stop race.
func bluetoothProgram(t *exec.Thread) {
	stoppingFlag := t.NewVar("stoppingFlag", 0)
	stopped := t.NewVar("stopped", 0)
	pendingIO := t.NewVar("pendingIO", 1)

	adder := t.Go("BCSP_PnpAdd", func(w *exec.Thread) {
		if w.Read(stoppingFlag) != 0 {
			return // driver shutting down; bail out
		}
		// Driver believes it is safe to work: bump pending I/O and touch
		// the device.
		p := w.Read(pendingIO)
		w.Write(pendingIO, p+1)
		w.Assert(w.Read(stopped) == 0, "device used after stop completed")
		p = w.Read(pendingIO)
		w.Write(pendingIO, p-1)
	})
	stopper := t.Go("BCSP_PnpStop", func(w *exec.Thread) {
		w.Write(stoppingFlag, 1)
		p := w.Read(pendingIO)
		w.Write(pendingIO, p-1)
		// In the original the stopper waits for pending I/O to drain; the
		// race fires regardless because the adder checked stoppingFlag
		// before the store became visible.
		w.Write(stopped, 1)
	})
	t.JoinAll(adder, stopper)
}

// carterProgram: data-dependent opposite lock orders.
func carterProgram(t *exec.Thread) {
	mA := t.NewMutex("A")
	mB := t.NewMutex("B")
	x := t.NewVar("x", 0)
	t1 := t.Go("t1", func(w *exec.Thread) {
		w.Lock(mA)
		v := w.Read(x)
		w.Write(x, v+1)
		w.Lock(mB)
		w.Unlock(mB)
		w.Unlock(mA)
	})
	t2 := t.Go("t2", func(w *exec.Thread) {
		w.Lock(mB)
		v := w.Read(x)
		w.Write(x, v+2)
		w.Lock(mA)
		w.Unlock(mA)
		w.Unlock(mB)
	})
	t.JoinAll(t1, t2)
}

// circularBufferProgram: ring buffer with a racy element count.
func circularBufferProgram(t *exec.Thread) {
	const size = 4
	const items = 5
	buf := t.NewVars("buf", size, 0)
	count := t.NewVar("count", 0)

	producer := t.Go("producer", func(w *exec.Thread) {
		in := 0
		for i := 1; i <= items; i++ {
			for tries := 0; w.Read(count) >= size; tries++ {
				if tries > 2*items {
					return // consumer stalled; give up quietly
				}
				w.Yield()
			}
			w.Write(buf[in], int64(i))
			in = (in + 1) % size
			c := w.Read(count)
			w.Write(count, c+1) // non-atomic: the bug
		}
	})
	consumer := t.Go("consumer", func(w *exec.Thread) {
		out := 0
		for i := 1; i <= items; i++ {
			for tries := 0; w.Read(count) <= 0; tries++ {
				if tries > 2*items {
					return
				}
				w.Yield()
			}
			v := w.Read(buf[out])
			out = (out + 1) % size
			c := w.Read(count)
			w.Write(count, c-1) // non-atomic: the bug
			w.Assertf(v == int64(i), "FIFO order broken: got %d want %d", v, i)
		}
	})
	t.JoinAll(producer, consumer)
}

// deadlock01Program: unconditional ABBA deadlock.
func deadlock01Program(t *exec.Thread) {
	mA := t.NewMutex("A")
	mB := t.NewMutex("B")
	t1 := t.Go("t1", func(w *exec.Thread) {
		w.Lock(mA)
		w.Yield()
		w.Lock(mB)
		w.Unlock(mB)
		w.Unlock(mA)
	})
	t2 := t.Go("t2", func(w *exec.Thread) {
		w.Lock(mB)
		w.Yield()
		w.Lock(mA)
		w.Unlock(mA)
		w.Unlock(mB)
	})
	t.JoinAll(t1, t2)
}

// lazy01Program: the SV-COMP lazy01 three-thread assertion.
func lazy01Program(t *exec.Thread) {
	m := t.NewMutex("m")
	data := t.NewVar("data", 0)
	t1 := t.Go("t1", func(w *exec.Thread) {
		w.Lock(m)
		d := w.Read(data)
		w.Write(data, d+1)
		w.Unlock(m)
	})
	t2 := t.Go("t2", func(w *exec.Thread) {
		w.Lock(m)
		d := w.Read(data)
		w.Write(data, d+2)
		w.Unlock(m)
	})
	t3 := t.Go("t3", func(w *exec.Thread) {
		w.Lock(m)
		d := w.Read(data)
		w.Unlock(m)
		w.Assert(d < 3, "reader observed both updates (lazy01 reachable assert)")
	})
	t.JoinAll(t1, t2, t3)
}

// queueProgram: FIFO with a racy shared element count.
func queueProgram(t *exec.Thread) {
	const n = 4
	slots := t.NewVars("q", n, 0)
	amount := t.NewVar("amount", 0)

	enq := t.Go("enqueue", func(w *exec.Thread) {
		for i := 1; i <= n; i++ {
			// BUG: the element count is published before the slot is
			// written, so a racing dequeuer can read an empty slot.
			a := w.Read(amount)
			w.Write(amount, a+1)
			w.Write(slots[i-1], int64(i))
		}
	})
	deq := t.Go("dequeue", func(w *exec.Thread) {
		got := 0
		for tries := 0; got < n && tries < 6*n; tries++ {
			a := w.Read(amount)
			if a <= 0 {
				w.Yield()
				continue
			}
			v := w.Read(slots[got])
			w.Assertf(v == int64(got+1), "dequeued %d want %d (count published early)", v, got+1)
			got++
			w.Write(amount, a-1)
		}
	})
	t.JoinAll(enq, deq)
}

// stackProgram follows the SV-COMP stack_bad shape: pushes and pops are
// individually locked, but the popper gates on a sticky "stack has
// elements" flag instead of the live count, so it can pop from an empty
// stack.
func stackProgram(t *exec.Thread) {
	const size = 3
	arr := t.NewVars("s", size, 0)
	top := t.NewVar("top", 0)
	flag := t.NewVar("flag", 0)
	m := t.NewMutex("m")

	pusher := t.Go("push", func(w *exec.Thread) {
		for i := 1; i <= size; i++ {
			w.Lock(m)
			tp := w.Read(top)
			w.Write(arr[tp], int64(i))
			w.Write(top, tp+1)
			w.Write(flag, 1) // "stack non-empty" — never cleared: the bug
			w.Unlock(m)
		}
	})
	popper := t.Go("pop", func(w *exec.Thread) {
		for i := 0; i < size; i++ {
			w.Lock(m)
			if w.Read(flag) != 0 {
				tp := w.Read(top)
				w.Assertf(tp > 0, "pop from empty stack (stale non-empty flag)")
				w.Read(arr[tp-1])
				w.Write(top, tp-1)
			}
			w.Unlock(m)
		}
	})
	t.JoinAll(pusher, popper)
}

// tokenRingProgram: four unsynchronized token increments.
func tokenRingProgram(t *exec.Thread) {
	token := t.NewVar("token", 0)
	const n = 4
	threads := make([]*exec.Thread, n)
	for i := range threads {
		threads[i] = t.Go("node", func(w *exec.Thread) {
			v := w.Read(token)
			w.Write(token, v+1)
		})
	}
	t.JoinAll(threads...)
	t.Assertf(t.Read(token) == n, "token lost in the ring: %d/%d", t.Read(token), n)
}

// wronglockProgram: nRight threads guard the counter with the correct lock,
// nWrong threads with a different one.
func wronglockProgram(nRight, nWrong int) exec.Program {
	return func(t *exec.Thread) {
		data := t.NewVar("data", 0)
		lockL := t.NewMutex("L")
		lockM := t.NewMutex("M")
		total := nRight + nWrong
		threads := make([]*exec.Thread, 0, total)
		for i := 0; i < nRight; i++ {
			threads = append(threads, t.Go("right", func(w *exec.Thread) {
				w.Lock(lockL)
				d := w.Read(data)
				w.Write(data, d+1)
				w.Unlock(lockL)
			}))
		}
		for i := 0; i < nWrong; i++ {
			threads = append(threads, t.Go("wrong", func(w *exec.Thread) {
				w.Lock(lockM)
				d := w.Read(data)
				w.Write(data, d+1)
				w.Unlock(lockM)
			}))
		}
		t.JoinAll(threads...)
		t.Assertf(t.Read(data) == int64(total), "update lost under mismatched locks: %d/%d",
			t.Read(data), total)
	}
}
