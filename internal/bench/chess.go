package bench

import (
	"fmt"

	"rff/internal/exec"
)

// The Chess suite ports the CHESS work-stealing queue benchmarks
// (Musuvathi et al., OSDI'08): a Cilk-style deque where the owner pushes
// and pops at the tail and thieves steal from the head. Each variant has
// the suite's characteristic owner/thief race in which one element is
// taken twice (or lost); the oracle marks every take with an atomic
// claim so a double take crashes immediately.

func init() {
	register(Program{
		Name: "Chess/WorkStealQueue", Suite: "Chess", Bug: BugAssert, Threads: 2,
		Desc: "lock-based WSQ with an unsynchronized pop fast path: owner and thief can both take the last element",
		Body: wsqProgram(wsqLocked, 3, 1),
	})
	register(Program{
		Name: "Chess/InterlockedWorkStealQueue", Suite: "Chess", Bug: BugAssert, Threads: 2,
		Desc: "WSQ whose thieves use CAS on head; the owner's unsynchronized pop still races on the final element",
		Body: wsqProgram(wsqInterlocked, 3, 1),
	})
	register(Program{
		Name: "Chess/StateWorkStealQueue", Suite: "Chess", Bug: BugAssert, Threads: 2,
		Desc: "WSQ with a per-item state array claimed without synchronization: conflicting claims fire the state assert",
		Body: wsqProgram(wsqState, 3, 1),
	})
	register(Program{
		Name: "Chess/InterlockedWorkStealQueueWithState", Suite: "Chess", Bug: BugAssert, Threads: 2,
		Desc: "CAS-based WSQ with item states: the narrower owner/thief window still double-claims under one interleaving",
		Body: wsqProgram(wsqInterlockedState, 4, 1),
	})
}

// wsqVariant selects the synchronization scheme under test.
type wsqVariant uint8

const (
	wsqLocked wsqVariant = iota
	wsqInterlocked
	wsqState
	wsqInterlockedState
)

// wsq is the shared deque state.
type wsq struct {
	head, tail *exec.Var
	arr        []*exec.Var
	state      []*exec.Var // item claim states (state variants only)
	lock       *exec.Mutex
	claims     []*exec.Var // oracle: per-item atomic take counters
}

// newWSQ builds the deque with the given capacity.
func newWSQ(t *exec.Thread, cap int, withState bool) *wsq {
	q := &wsq{
		head:   t.NewVar("head", 0),
		tail:   t.NewVar("tail", 0),
		arr:    t.NewVars("arr", cap, 0),
		lock:   t.NewMutex("qlock"),
		claims: t.NewVars("claims", cap, 0),
	}
	if withState {
		q.state = t.NewVars("state", cap, 0)
	}
	return q
}

// take is the oracle: every successful take of item (value v = index+1)
// must be unique across owner and thieves.
func (q *wsq) take(t *exec.Thread, idx int64, who string) {
	prev := t.AtomicAdd(q.claims[idx], 1)
	t.Assertf(prev == 0, "item %d taken twice (second taker: %s)", idx, who)
}

// claimState models the state-array variants' per-item claim protocol:
// read-check-write without synchronization.
func (q *wsq) claimState(t *exec.Thread, idx int64, who string) {
	s := t.Read(q.state[idx])
	t.Assertf(s == 0, "item %d state already claimed (second claimer: %s)", idx, who)
	t.Write(q.state[idx], 1)
}

// push appends at the tail (owner only).
func (q *wsq) push(t *exec.Thread, v int64) {
	tl := t.Read(q.tail)
	t.Write(q.arr[tl], v)
	t.Write(q.tail, tl+1)
}

// pop removes from the tail. The fast path is the CHESS bug: tail is
// decremented and the element taken with only a stale head check, so a
// concurrent steal of the same (last) element goes unnoticed.
func (q *wsq) pop(t *exec.Thread, variant wsqVariant) (int64, bool) {
	tl := t.Read(q.tail) - 1
	if tl < 0 {
		return 0, false
	}
	t.Write(q.tail, tl)
	h := t.Read(q.head)
	if h > tl {
		// Queue looked empty: restore and retry under the lock.
		t.Write(q.tail, tl+1)
		t.Lock(q.lock)
		h = t.Read(q.head)
		tl = t.Read(q.tail) - 1
		if h > tl {
			t.Unlock(q.lock)
			return 0, false
		}
		t.Write(q.tail, tl)
		v := t.Read(q.arr[tl])
		t.Unlock(q.lock)
		return v, true
	}
	// BUG: when h == tl a thief may be taking arr[tl] right now.
	v := t.Read(q.arr[tl])
	return v, true
}

// steal removes from the head (thieves).
func (q *wsq) steal(t *exec.Thread, variant wsqVariant) (int64, bool) {
	switch variant {
	case wsqLocked, wsqState:
		t.Lock(q.lock)
		h := t.Read(q.head)
		tl := t.Read(q.tail)
		if h >= tl {
			t.Unlock(q.lock)
			return 0, false
		}
		v := t.Read(q.arr[h])
		t.Write(q.head, h+1)
		t.Unlock(q.lock)
		return v, true
	default: // wsqInterlocked, wsqInterlockedState
		h := t.Read(q.head)
		tl := t.Read(q.tail)
		if h >= tl {
			return 0, false
		}
		v := t.Read(q.arr[h])
		if _, ok := t.CAS(q.head, h, h+1); ok {
			return v, true
		}
		return 0, false
	}
}

// wsqProgram builds the benchmark body: the owner pushes `items` items and
// pops them back while `thieves` thieves steal concurrently.
func wsqProgram(variant wsqVariant, items, thieves int) exec.Program {
	withState := variant == wsqState || variant == wsqInterlockedState
	return func(t *exec.Thread) {
		q := newWSQ(t, items, withState)
		owner := t.Go("owner", func(w *exec.Thread) {
			for i := 0; i < items; i++ {
				q.push(w, int64(i))
			}
			for i := 0; i < items; i++ {
				v, ok := q.pop(w, variant)
				if !ok {
					continue
				}
				if withState {
					q.claimState(w, v, "owner")
				}
				q.take(w, v, "owner")
			}
		})
		ths := make([]*exec.Thread, 0, thieves+1)
		ths = append(ths, owner)
		for i := 0; i < thieves; i++ {
			ths = append(ths, t.Go(fmt.Sprintf("thief%d", i), func(w *exec.Thread) {
				for tries := 0; tries < items+1; tries++ {
					v, ok := q.steal(w, variant)
					if !ok {
						w.Yield()
						continue
					}
					if withState {
						q.claimState(w, v, "thief")
					}
					q.take(w, v, "thief")
				}
			}))
		}
		t.JoinAll(ths...)
	}
}
