package bench

// PaperCell is one cell of the paper's Appendix B table: the mean ± std
// schedules-to-first-bug a tool reported on a program over 20 trials.
type PaperCell struct {
	Mean, Std float64
	// Partial marks "*": the tool missed the bug in at least one trial.
	Partial bool
	// Never marks "-": the tool never found the bug.
	Never bool
	// Error marks "Error": the tool could not run the program at all
	// (most GenMC rows).
	Error bool
	// NoDeadlock marks "†": the tool does not explicitly detect
	// deadlocks.
	NoDeadlock bool
}

// String renders the cell in the paper's notation.
func (c PaperCell) String() string {
	switch {
	case c.Error:
		return "Error"
	case c.Never:
		return "-"
	}
	s := itoa(int(c.Mean)) + " ± " + itoa(int(c.Std))
	if c.Partial {
		s += "*"
	}
	if c.NoDeadlock {
		s += "†"
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// PaperTools lists the Appendix B column order.
var PaperTools = []string{"PCT3", "PERIOD", "RFF", "POS", "QLearning-RF", "GenMC"}

func cell(mean, std float64) PaperCell { return PaperCell{Mean: mean, Std: std} }
func star(mean, std float64) PaperCell { return PaperCell{Mean: mean, Std: std, Partial: true} }
func starDag(mean, std float64) PaperCell {
	return PaperCell{Mean: mean, Std: std, Partial: true, NoDeadlock: true}
}
func dag(mean, std float64) PaperCell { return PaperCell{Mean: mean, Std: std, NoDeadlock: true} }
func never() PaperCell                { return PaperCell{Never: true} }
func errc() PaperCell                 { return PaperCell{Error: true} }

// PaperAppendixB is the paper's Appendix B ("Mean Number of Schedules to
// 1st Bug"), transcribed verbatim. Keyed by program, then tool (see
// PaperTools). Used by EXPERIMENTS.md generation to place reproduced
// numbers next to the originals.
var PaperAppendixB = map[string]map[string]PaperCell{
	"CB/aget-bug2":                    {"PCT3": cell(1, 0), "PERIOD": cell(9, 0), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"CB/pbzip2-0.9.4":                 {"PCT3": never(), "PERIOD": star(45, 6), "RFF": star(2, 0), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"CB/stringbuffer-jdk1.4":          {"PCT3": cell(195, 174), "PERIOD": cell(27, 37), "RFF": cell(15, 18), "POS": cell(18, 23), "QLearning-RF": cell(1405, 1592), "GenMC": errc()},
	"CS/account":                      {"PCT3": cell(9, 7), "PERIOD": cell(10, 0), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(6, 8), "GenMC": cell(5, 0)},
	"CS/bluetooth_driver":             {"PCT3": cell(161, 162), "PERIOD": cell(9, 0), "RFF": cell(45, 35), "POS": cell(72, 79), "QLearning-RF": cell(155, 154), "GenMC": cell(4, 0)},
	"CS/carter01":                     {"PCT3": cell(5, 4), "PERIOD": starDag(4, 1), "RFF": cell(2, 1), "POS": cell(2, 1), "QLearning-RF": cell(1, 0), "GenMC": dag(4, 0)},
	"CS/circular_buffer":              {"PCT3": cell(5, 4), "PERIOD": cell(3, 0), "RFF": cell(2, 1), "POS": cell(2, 1), "QLearning-RF": cell(2, 1), "GenMC": cell(8, 0)},
	"CS/deadlock01":                   {"PCT3": cell(20, 20), "PERIOD": dag(3, 0), "RFF": cell(5, 4), "POS": cell(4, 3), "QLearning-RF": cell(1, 0), "GenMC": dag(3, 0)},
	"CS/lazy01":                       {"PCT3": cell(10, 6), "PERIOD": cell(7, 2), "RFF": cell(6, 6), "POS": cell(5, 4), "QLearning-RF": cell(12, 15), "GenMC": cell(5, 0)},
	"CS/queue":                        {"PCT3": cell(12, 14), "PERIOD": cell(4, 1), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(1, 0), "GenMC": cell(22, 0)},
	"CS/reorder_10":                   {"PCT3": cell(2356, 2302), "PERIOD": cell(27, 0), "RFF": cell(6, 4), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"CS/reorder_100":                  {"PCT3": star(7447, 0), "PERIOD": cell(297, 0), "RFF": cell(6, 4), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"CS/reorder_20":                   {"PCT3": cell(2128, 2284), "PERIOD": cell(39, 0), "RFF": cell(6, 4), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"CS/reorder_3":                    {"PCT3": cell(241, 336), "PERIOD": cell(6, 0), "RFF": cell(7, 5), "POS": cell(223, 166), "QLearning-RF": star(45843, 32338), "GenMC": errc()},
	"CS/reorder_4":                    {"PCT3": cell(395, 320), "PERIOD": cell(9, 0), "RFF": cell(6, 5), "POS": cell(1464, 1829), "QLearning-RF": never(), "GenMC": errc()},
	"CS/reorder_5":                    {"PCT3": cell(1126, 1045), "PERIOD": cell(12, 0), "RFF": cell(6, 4), "POS": star(4377, 4208), "QLearning-RF": never(), "GenMC": errc()},
	"CS/reorder_50":                   {"PCT3": star(12346, 6682), "PERIOD": cell(129, 0), "RFF": cell(6, 4), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"CS/stack":                        {"PCT3": cell(2, 2), "PERIOD": cell(8, 0), "RFF": cell(2, 1), "POS": cell(2, 2), "QLearning-RF": cell(1, 0), "GenMC": cell(20, 0)},
	"CS/token_ring":                   {"PCT3": cell(8, 6), "PERIOD": cell(2, 0), "RFF": cell(5, 5), "POS": cell(7, 5), "QLearning-RF": cell(12, 12), "GenMC": cell(14, 0)},
	"CS/twostage":                     {"PCT3": cell(9, 9), "PERIOD": cell(4, 0), "RFF": cell(8, 7), "POS": cell(15, 16), "QLearning-RF": cell(336, 501), "GenMC": cell(3, 0)},
	"CS/twostage_100":                 {"PCT3": star(3888, 3473), "PERIOD": cell(690, 0), "RFF": cell(56, 71), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"CS/twostage_20":                  {"PCT3": cell(188, 168), "PERIOD": cell(76, 0), "RFF": cell(22, 19), "POS": cell(185, 215), "QLearning-RF": never(), "GenMC": errc()},
	"CS/twostage_50":                  {"PCT3": cell(849, 870), "PERIOD": cell(286, 0), "RFF": cell(35, 27), "POS": star(1984, 1238), "QLearning-RF": never(), "GenMC": errc()},
	"CS/wronglock":                    {"PCT3": cell(88, 98), "PERIOD": cell(4, 2), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(37, 32), "GenMC": cell(3, 0)},
	"CS/wronglock_3":                  {"PCT3": cell(40, 36), "PERIOD": cell(5, 1), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(37, 32), "GenMC": errc()},
	"Chess/InterlockedWorkStealQueue": {"PCT3": star(24, 19), "PERIOD": cell(57, 0), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": never(), "GenMC": errc()},
	"Chess/InterlockedWorkStealQueueWithState": {"PCT3": star(16, 0), "PERIOD": cell(224, 80), "RFF": cell(7, 6), "POS": cell(9, 9), "QLearning-RF": cell(16, 14), "GenMC": errc()},
	"Chess/StateWorkStealQueue":                {"PCT3": star(12, 0), "PERIOD": cell(249, 101), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": never(), "GenMC": errc()},
	"Chess/WorkStealQueue":                     {"PCT3": cell(12, 14), "PERIOD": cell(57, 0), "RFF": cell(10, 8), "POS": cell(10, 9), "QLearning-RF": never(), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2009-3547":      {"PCT3": cell(6, 5), "PERIOD": cell(2, 0), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2011-2183":      {"PCT3": cell(9, 9), "PERIOD": cell(3, 0), "RFF": cell(2, 2), "POS": cell(2, 1), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2013-1792":      {"PCT3": cell(87, 65), "PERIOD": cell(13, 0), "RFF": cell(23, 43), "POS": cell(50, 62), "QLearning-RF": cell(388, 361), "GenMC": cell(1, 0)},
	"ConVul-CVE-Benchmarks/CVE-2015-7550":      {"PCT3": cell(8, 7), "PERIOD": cell(3, 0), "RFF": cell(6, 5), "POS": cell(7, 7), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2016-1972":      {"PCT3": never(), "PERIOD": star(3, 0), "RFF": cell(39, 29), "POS": cell(86, 78), "QLearning-RF": star(74, 39), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2016-1973":      {"PCT3": cell(8, 5), "PERIOD": cell(6, 0), "RFF": cell(3, 3), "POS": cell(7, 6), "QLearning-RF": cell(5947, 6063), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2016-7911":      {"PCT3": cell(16, 13), "PERIOD": cell(3, 0), "RFF": cell(13, 10), "POS": cell(12, 11), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2016-9806":      {"PCT3": cell(4, 3), "PERIOD": cell(6, 0), "RFF": cell(11, 8), "POS": cell(14, 10), "QLearning-RF": cell(554, 577), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2017-15265":     {"PCT3": never(), "PERIOD": cell(11, 0), "RFF": cell(36, 39), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"ConVul-CVE-Benchmarks/CVE-2017-6346":      {"PCT3": cell(15, 11), "PERIOD": cell(5, 0), "RFF": cell(5, 4), "POS": cell(13, 14), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"Inspect_benchmarks/boundedBuffer":         {"PCT3": cell(15, 16), "PERIOD": star(8, 7), "RFF": cell(8, 7), "POS": cell(6, 5), "QLearning-RF": cell(14, 13), "GenMC": errc()},
	"Inspect_benchmarks/ctrace-test":           {"PCT3": cell(1, 0), "PERIOD": cell(3, 0), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(1, 0), "GenMC": cell(1, 0)},
	"Inspect_benchmarks/qsort_mt":              {"PCT3": cell(3838, 4458), "PERIOD": cell(27, 0), "RFF": cell(322, 344), "POS": cell(646, 753), "QLearning-RF": never(), "GenMC": errc()},
	"SafeStack":                                {"PCT3": never(), "PERIOD": never(), "RFF": never(), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"Splash2/barnes":                           {"PCT3": never(), "PERIOD": cell(2, 0), "RFF": cell(3, 3), "POS": cell(2, 2), "QLearning-RF": cell(2, 1), "GenMC": errc()},
	"Splash2/fft":                              {"PCT3": cell(1, 0), "PERIOD": cell(2, 0), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(1, 0), "GenMC": errc()},
	"Splash2/lu":                               {"PCT3": never(), "PERIOD": cell(2, 1), "RFF": cell(1, 0), "POS": cell(1, 0), "QLearning-RF": cell(47, 38), "GenMC": errc()},
	"RADBench/bug4":                            {"PCT3": star(15599, 9907), "PERIOD": never(), "RFF": cell(163, 151), "POS": cell(216, 209), "QLearning-RF": never(), "GenMC": errc()},
	"RADBench/bug5":                            {"PCT3": never(), "PERIOD": never(), "RFF": never(), "POS": never(), "QLearning-RF": never(), "GenMC": errc()},
	"RADBench/bug6":                            {"PCT3": cell(61, 49), "PERIOD": dag(24, 0), "RFF": cell(4, 3), "POS": cell(11, 8), "QLearning-RF": cell(1, 0), "GenMC": errc()},
}

// PaperCellFor returns the paper's cell for (program, tool), if recorded.
func PaperCellFor(program, tool string) (PaperCell, bool) {
	row, ok := PaperAppendixB[program]
	if !ok {
		return PaperCell{}, false
	}
	c, ok := row[tool]
	return c, ok
}
