package bench

import "rff/internal/exec"

// Obj is a simulated heap object for the ConVul-style memory-safety
// programs: an allocation whose lifetime is tracked through a shared state
// variable, so that use-after-free, double-free and null-dereference bugs
// surface as crashes on exactly the racy interleavings that trigger them
// in the original CVEs (see DESIGN.md, "Substitutions").
//
// The state variable is ordinary shared memory: every lifetime check is a
// read event and every free is a write event, so the reads-from relation
// over object states is precisely what distinguishes buggy interleavings —
// the property RFF's feedback needs to steer.
type Obj struct {
	state *exec.Var // objAlive, objFreed, or objNull
	data  *exec.Var // payload; reading it models a dereference
	name  string
}

const (
	objNull  = 0
	objAlive = 1
	objFreed = 2
)

// NewObj allocates a live simulated object. Must be called from the thread
// that owns allocation (usually main, before spawning).
func NewObj(t *exec.Thread, name string) *Obj {
	return &Obj{
		state: t.NewVar(name+".state", objAlive),
		data:  t.NewVar(name+".data", 0),
		name:  name,
	}
}

// NewNullObj allocates an object reference that starts null (for
// initialize-then-use races).
func NewNullObj(t *exec.Thread, name string) *Obj {
	return &Obj{
		state: t.NewVar(name+".state", objNull),
		data:  t.NewVar(name+".data", 0),
		name:  name,
	}
}

// Alloc (re)initializes the object, modelling the allocation/installation
// step of initialize-then-publish patterns.
func (o *Obj) Alloc(t *exec.Thread) {
	t.Write(o.state, objAlive)
}

// Use dereferences the object: crashes with a memory-safety failure when
// the object is freed or null at the moment of access.
func (o *Obj) Use(t *exec.Thread) int64 {
	switch t.Read(o.state) {
	case objFreed:
		t.FailMemory("use-after-free of " + o.name)
	case objNull:
		t.FailMemory("null dereference of " + o.name)
	}
	return t.Read(o.data)
}

// Store writes through the object, with the same lifetime checks as Use.
func (o *Obj) Store(t *exec.Thread, v int64) {
	switch t.Read(o.state) {
	case objFreed:
		t.FailMemory("use-after-free (write) of " + o.name)
	case objNull:
		t.FailMemory("null dereference (write) of " + o.name)
	}
	t.Write(o.data, v)
}

// Free releases the object: freeing twice is a double-free crash. The
// free itself is atomic (the allocator's metadata update), so a racing
// double free is always caught — the race the CVE programs plant lives in
// the *guards* around Free, not inside it.
func (o *Obj) Free(t *exec.Thread) {
	if prev := t.AtomicSwap(o.state, objFreed); prev == objFreed {
		t.FailMemory("double free of " + o.name)
	}
}

// FreeUnchecked releases without the double-free check (for CVEs whose
// crash is elsewhere).
func (o *Obj) FreeUnchecked(t *exec.Thread) {
	t.Write(o.state, objFreed)
}

// Alive reads the lifetime state without crashing — the "check" half of
// the check-then-use races.
func (o *Obj) Alive(t *exec.Thread) bool {
	return t.Read(o.state) == objAlive
}

// Refcount is a simulated reference counter guarding an object, as in the
// kernel get/put races (CVE-2016-7911 and friends). Dropping the count to
// zero frees the object; racing get/put pairs can resurrect or double-free
// it.
type Refcount struct {
	count *exec.Var
	obj   *Obj
}

// NewRefcount creates a counter with the given initial count guarding obj.
func NewRefcount(t *exec.Thread, name string, initial int64, obj *Obj) *Refcount {
	return &Refcount{count: t.NewVar(name+".refs", initial), obj: obj}
}

// Get increments the counter non-atomically (read then write) — the racy
// kernel fast path.
func (r *Refcount) Get(t *exec.Thread) {
	c := t.Read(r.count)
	t.Write(r.count, c+1)
}

// Put decrements non-atomically and frees the object when the count
// reaches zero.
func (r *Refcount) Put(t *exec.Thread) {
	c := t.Read(r.count)
	t.Write(r.count, c-1)
	if c-1 == 0 {
		r.obj.Free(t)
	}
}

// Count reads the current count.
func (r *Refcount) Count(t *exec.Thread) int64 { return t.Read(r.count) }
