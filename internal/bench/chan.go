package bench

import (
	"rff/internal/exec"
)

// The Chan suite exercises the engine's channel and WaitGroup vocabulary
// with the classic Go concurrency shapes: producer/consumer handoffs,
// select fan-in, close races, and WaitGroup joins. The buggy variants
// plant the channel-specific failure kinds (send-on-closed, close-of-
// closed, channel deadlock) reachable only on some interleavings, so the
// suite doubles as the regression surface for channel-aware scheduling.

func init() {
	register(Program{
		Name: "Chan/prodcons", Suite: "Chan", Bug: BugNone, Threads: 3,
		Desc: "two producers hand five values each to a consumer over a capacity-2 channel; the consumer sums and main asserts the total",
		Body: prodconsProgram,
	})
	register(Program{
		Name: "Chan/fanin_select", Suite: "Chan", Bug: BugNone, Threads: 3,
		Desc: "two producers on distinct rendezvous channels, a consumer selecting over both; every interleaving must deliver all values",
		Body: faninSelectProgram,
	})
	register(Program{
		Name: "Chan/close_race", Suite: "Chan", Bug: BugAssert, Threads: 3,
		Desc: "a producer sends while a closer closes the same channel: schedules that close first crash with send-on-closed",
		Body: closeRaceProgram,
	})
	register(Program{
		Name: "Chan/double_close", Suite: "Chan", Bug: BugAssert, Threads: 3,
		Desc: "two workers close the same channel behind a racy guard flag: both observing the flag unset crashes with close-of-closed",
		Body: doubleCloseProgram,
	})
	register(Program{
		Name: "Chan/missing_recv", Suite: "Chan", Bug: BugDeadlock, Threads: 3,
		Desc: "consumer drains a rendezvous channel as many times as a racy counter says producers sent; an undercount leaves a producer blocked forever",
		Body: missingRecvProgram,
	})
	register(Program{
		Name: "Chan/wg_pipeline", Suite: "Chan", Bug: BugNone, Threads: 3,
		Desc: "workers publish results into a buffered channel and signal a WaitGroup; main waits, drains, and asserts the sum",
		Body: wgPipelineProgram,
	})
}

// prodconsProgram: two producers, one consumer, buffered channel.
func prodconsProgram(t *exec.Thread) {
	ch := t.NewChan("ch", 2)
	total := t.NewVar("total", 0)
	producer := func(base int64) exec.Program {
		return func(w *exec.Thread) {
			for i := int64(0); i < 5; i++ {
				w.Send(ch, base+i)
			}
		}
	}
	p1 := t.Go("p1", producer(1))
	p2 := t.Go("p2", producer(100))
	c := t.Go("c", func(w *exec.Thread) {
		var sum int64
		for i := 0; i < 10; i++ {
			v, ok := w.Recv(ch)
			w.Assert(ok, "channel closed early")
			sum += v
		}
		w.Write(total, sum)
	})
	t.JoinAll(p1, p2, c)
	// 1+2+3+4+5 + 100+101+102+103+104 = 15 + 510
	t.Assertf(t.Read(total) == 525, "total %d, want 525", t.Read(total))
}

// faninSelectProgram: select over two rendezvous channels.
func faninSelectProgram(t *exec.Thread) {
	a := t.NewChan("a", 0)
	b := t.NewChan("b", 0)
	total := t.NewVar("total", 0)
	p1 := t.Go("p1", func(w *exec.Thread) {
		w.Send(a, 1)
		w.Send(a, 2)
	})
	p2 := t.Go("p2", func(w *exec.Thread) {
		w.Send(b, 10)
		w.Send(b, 20)
	})
	c := t.Go("c", func(w *exec.Thread) {
		var sum int64
		for i := 0; i < 4; i++ {
			_, v, ok := w.Select(exec.RecvCase(a), exec.RecvCase(b))
			w.Assert(ok, "fan-in receive failed")
			sum += v
		}
		w.Write(total, sum)
	})
	t.JoinAll(p1, p2, c)
	t.Assertf(t.Read(total) == 33, "total %d, want 33", t.Read(total))
}

// closeRaceProgram: send racing a close — the channel-native analogue of
// the classic use-after-free shape.
func closeRaceProgram(t *exec.Thread) {
	ch := t.NewChan("ch", 1)
	p := t.Go("p", func(w *exec.Thread) {
		w.Send(ch, 1) // crashes when the closer won the race
	})
	k := t.Go("k", func(w *exec.Thread) {
		w.Close(ch)
	})
	c := t.Go("c", func(w *exec.Thread) {
		w.TryRecv(ch)
	})
	t.JoinAll(p, k, c)
}

// doubleCloseProgram: a racy closed-flag check guards close, so two
// threads can both decide to close — close-of-closed on those schedules.
func doubleCloseProgram(t *exec.Thread) {
	ch := t.NewChan("ch", 1)
	flag := t.NewVar("flag", 0)
	closer := func(w *exec.Thread) {
		if w.Read(flag) == 0 {
			w.Write(flag, 1)
			w.Close(ch)
		}
	}
	a := t.Go("a", closer)
	b := t.Go("b", closer)
	c := t.Go("c", func(w *exec.Thread) {
		w.TryRecv(ch)
	})
	t.JoinAll(a, b, c)
}

// missingRecvProgram: the consumer decides how many values to drain from
// a racy non-atomic counter; reading it before the last producer bumps
// it strands that producer on a rendezvous send forever.
func missingRecvProgram(t *exec.Thread) {
	ch := t.NewChan("ch", 0)
	n := t.NewVar("n", 0)
	producer := func(w *exec.Thread) {
		w.Add(n, 1) // non-atomic: read and write are separate steps
		w.Send(ch, 1)
	}
	p1 := t.Go("p1", producer)
	p2 := t.Go("p2", producer)
	c := t.Go("c", func(w *exec.Thread) {
		k := w.Read(n)
		for i := int64(0); i < k; i++ {
			w.Recv(ch)
		}
	})
	t.JoinAll(p1, p2, c)
}

// wgPipelineProgram: WaitGroup-gated drain of a buffered results channel.
func wgPipelineProgram(t *exec.Thread) {
	ch := t.NewChan("ch", 2)
	wg := t.NewWaitGroup("wg")
	t.WgAdd(wg, 2)
	worker := func(v int64) exec.Program {
		return func(w *exec.Thread) {
			w.Send(ch, v)
			w.WgDone(wg)
		}
	}
	a := t.Go("a", worker(3))
	b := t.Go("b", worker(4))
	t.WgWait(wg)
	// Both sends happen-before the waits' return: the buffer holds both.
	v1, _ := t.Recv(ch)
	v2, _ := t.Recv(ch)
	t.Assertf(v1+v2 == 7, "sum %d, want 7", v1+v2)
	t.JoinAll(a, b)
}
