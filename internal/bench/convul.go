package bench

import "rff/internal/exec"

// The ConVul suite distills the ten real-world CVEs of the ConVul
// benchmark (Cai et al.) to their racy access cores: check-then-use null
// dereferences, get/put refcount races, revoke-vs-read use-after-frees and
// guard-flag double frees. Each program keeps the original's thread
// structure and the interleaving window that triggers the crash; the
// simulated heap (memsim.go) provides the crash oracle.

func init() {
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2009-3547", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "pipe release NULLs inode->i_pipe between another thread's check and dereference",
		Body: cve20093547,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2011-2183", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "ksm scan uses an mm_struct while the exiting task frees it after the liveness check",
		Body: cve20112183,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2013-1792", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "keyring shadow-cred race: reader samples the refcount, the exiting thread drops the last reference, the reader resurrects and uses the freed creds",
		Body: cve20131792,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2015-7550", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "keyctl_read checks the key under lock, drops the lock, then reads the payload the revoker freed",
		Body: cve20157550,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2016-1972", Suite: "ConVul", Bug: BugMemory, Threads: 3,
		Desc: "Mozilla buffer-swap race: a reader resolves the current buffer index while a rotator retires and frees the buffer it is about to use, behind a second guard",
		Body: cve20161972,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2016-1973", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "Mozilla graphics UAF: the compositor frees a texture the painter is still addressing",
		Body: cve20161973,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2016-7911", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "ioprio get/put race on a non-atomic refcount frees the io_context under a concurrent getter",
		Body: cve20167911,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2016-9806", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "netlink double bind: both paths see the socket unbound and both free the old group table",
		Body: cve20169806,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2017-15265", Suite: "ConVul", Bug: BugMemory, Threads: 3,
		Desc: "ALSA sequencer: port creation publishes to the client table before init completes while a deleter frees it through the table",
		Body: cve201715265,
	})
	register(Program{
		Name: "ConVul-CVE-Benchmarks/CVE-2017-6346", Suite: "ConVul", Bug: BugMemory, Threads: 2,
		Desc: "packet fanout: setsockopt frees the ring while a racing sender still transmits through it",
		Body: cve20176346,
	})
}

// cve20093547: check-then-dereference against a concurrent NULLing close.
func cve20093547(t *exec.Thread) {
	pipe := NewObj(t, "i_pipe")
	reader := t.Go("pipe_read_open", func(w *exec.Thread) {
		if !pipe.Alive(w) {
			return // already closed
		}
		// ... lock-free fast path continues with the cached pointer ...
		pipe.Use(w) // crashes if the closer won the race
	})
	closer := t.Go("pipe_release", func(w *exec.Thread) {
		w.Write(pipe.state, objNull) // inode->i_pipe = NULL
	})
	t.JoinAll(reader, closer)
}

// cve20112183: liveness check under lock, use after dropping it.
func cve20112183(t *exec.Thread) {
	mm := NewObj(t, "mm_struct")
	lock := t.NewMutex("ksm_lock")
	scanner := t.Go("ksm_scan", func(w *exec.Thread) {
		w.Lock(lock)
		alive := mm.Alive(w)
		w.Unlock(lock)
		if !alive {
			return
		}
		mm.Use(w) // the exiting task may free between unlock and here
	})
	exiter := t.Go("exit_mm", func(w *exec.Thread) {
		w.Lock(lock)
		w.Unlock(lock)
		mm.Free(w)
	})
	t.JoinAll(scanner, exiter)
}

// cve20131792: refcount sample → drop-to-zero free → resurrecting get →
// use. Needs three orderings to line up, making it markedly harder than
// the two-step races.
func cve20131792(t *exec.Thread) {
	cred := NewObj(t, "cred")
	rc := NewRefcount(t, "cred", 1, cred)
	installed := t.NewVar("installed", 0)

	reader := t.Go("key_read", func(w *exec.Thread) {
		if rc.Count(w) <= 0 {
			return // creds already gone
		}
		if w.Read(installed) == 0 {
			w.Yield() // wait for installation to settle (racy)
		}
		rc.Get(w) // resurrection after free: the bug's first half
		cred.Use(w)
		rc.Put(w)
	})
	exiter := t.Go("task_exit", func(w *exec.Thread) {
		w.Write(installed, 1)
		rc.Put(w) // drops the last legitimate reference
	})
	t.JoinAll(reader, exiter)
}

// cve20157550: locked check, unlocked payload read vs. revoke.
func cve20157550(t *exec.Thread) {
	key := NewObj(t, "key")
	sem := t.NewMutex("key_sem")
	reader := t.Go("keyctl_read", func(w *exec.Thread) {
		w.Lock(sem)
		alive := key.Alive(w)
		w.Unlock(sem)
		if !alive {
			return
		}
		key.Use(w) // payload read outside the semaphore
	})
	revoker := t.Go("keyctl_revoke", func(w *exec.Thread) {
		w.Lock(sem)
		key.Free(w)
		w.Unlock(sem)
	})
	t.JoinAll(reader, revoker)
}

// cve20161972: three threads; the reader must resolve the index before the
// rotator swaps AND dereference after the retirer frees — a deeper window
// that plain sampling rarely hits.
func cve20161972(t *exec.Thread) {
	bufA := NewObj(t, "bufA")
	bufB := NewObj(t, "bufB")
	current := t.NewVar("current", 0) // 0 -> bufA, 1 -> bufB
	retired := t.NewVar("retired", 0)

	reader := t.Go("reader", func(w *exec.Thread) {
		idx := w.Read(current)
		buf := bufA
		if idx == 1 {
			buf = bufB
		}
		if w.Read(retired) != 0 && !buf.Alive(w) {
			return // noticed the rotation in time
		}
		buf.Use(w)
	})
	rotator := t.Go("rotator", func(w *exec.Thread) {
		w.Write(current, 1)
		w.Write(retired, 1)
	})
	retirer := t.Go("retirer", func(w *exec.Thread) {
		if w.Read(retired) != 0 {
			bufA.Free(w)
		}
	})
	t.JoinAll(reader, rotator, retirer)
}

// cve20161973: straightforward free-under-use between two threads.
func cve20161973(t *exec.Thread) {
	tex := NewObj(t, "texture")
	painter := t.Go("painter", func(w *exec.Thread) {
		if !tex.Alive(w) {
			return
		}
		tex.Store(w, 7)
	})
	compositor := t.Go("compositor", func(w *exec.Thread) {
		tex.Free(w)
	})
	t.JoinAll(painter, compositor)
}

// cve20167911: non-atomic get/put refcount race.
func cve20167911(t *exec.Thread) {
	ioc := NewObj(t, "io_context")
	rc := NewRefcount(t, "ioc", 1, ioc)
	getter := t.Go("get_task_ioprio", func(w *exec.Thread) {
		if rc.Count(w) <= 0 {
			return
		}
		rc.Get(w) // non-atomic: may resurrect a freed context
		ioc.Use(w)
		rc.Put(w)
	})
	putter := t.Go("put_io_context", func(w *exec.Thread) {
		rc.Put(w)
	})
	t.JoinAll(getter, putter)
}

// cve20169806: both threads pass the "unbound" guard, both free.
func cve20169806(t *exec.Thread) {
	groups := NewObj(t, "groups")
	bound := t.NewVar("bound", 0)
	bind := func(w *exec.Thread) {
		if w.Read(bound) != 0 {
			return // someone already rebound; nothing to free
		}
		w.Write(bound, 1)
		groups.Free(w) // double free when both saw bound==0
	}
	a := t.Go("netlink_bind", bind)
	b := t.Go("netlink_setsockopt", bind)
	t.JoinAll(a, b)
}

// cve201715265: publish-before-init plus a racing deleter; three threads.
func cve201715265(t *exec.Thread) {
	port := NewNullObj(t, "port")
	table := t.NewVar("client_table", 0)

	creator := t.Go("create_port", func(w *exec.Thread) {
		w.Write(table, 1) // publish to the client table (too early)
		port.Alloc(w)     // initialization completes after publication
	})
	user := t.Go("use_port", func(w *exec.Thread) {
		if w.Read(table) == 0 {
			return // not visible yet
		}
		port.Use(w) // crashes if still null or already deleted
	})
	deleter := t.Go("delete_port", func(w *exec.Thread) {
		if w.Read(table) != 0 {
			port.FreeUnchecked(w)
		}
	})
	t.JoinAll(creator, user, deleter)
}

// cve20176346: teardown frees the ring under an in-flight sender.
func cve20176346(t *exec.Thread) {
	ring := NewObj(t, "fanout_ring")
	active := t.NewVar("active", 1)
	sender := t.Go("packet_send", func(w *exec.Thread) {
		if w.Read(active) == 0 {
			return
		}
		ring.Use(w)
		ring.Store(w, 1)
	})
	teardown := t.Go("fanout_release", func(w *exec.Thread) {
		w.Write(active, 0)
		ring.Free(w)
	})
	t.JoinAll(sender, teardown)
}
