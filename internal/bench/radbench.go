package bench

import "rff/internal/exec"

// The RADBench suite ports the three RADBench browser bugs SCTBench uses:
// two deep SpiderMonkey races (bug4, bug5) and a Chromium condition-
// variable deadlock (bug6). bug4 and especially bug5 are among the hardest
// subjects in the paper's table — bug5 is found by no tool in any trial.

func init() {
	register(Program{
		Name: "RADBench/bug4", Suite: "RADBench", Bug: BugMemory, Threads: 3,
		Desc: "SpiderMonkey atomize race: two threads insert the same atom while the GC sweeps the table; needs a three-way ordering chain",
		Body: radBug4Program,
	})
	register(Program{
		Name: "RADBench/bug5", Suite: "RADBench", Bug: BugAssert, Threads: 3,
		Desc: "SpiderMonkey request-depth race requiring a six-step ordering chain across three threads; no evaluated tool finds it",
		Body: radBug5Program,
	})
	register(Program{
		Name: "RADBench/bug6", Suite: "RADBench", Bug: BugDeadlock, Threads: 2,
		Desc: "Chromium watchdog: the disarm signal can fire between the watcher's check and wait, hanging the watcher forever",
		Body: radBug6Program,
	})
}

// radBug4Program: check-insert-sweep chain across three threads.
func radBug4Program(t *exec.Thread) {
	table := t.NewVar("atom_table", 0) // 0 empty, 1 inserted
	pinned := t.NewVar("pinned", 0)
	atom := NewObj(t, "atom")

	atomizeA := t.Go("atomizeA", func(w *exec.Thread) {
		if w.Read(table) == 0 {
			w.Write(table, 1) // insert the atom
			w.Write(pinned, 1)
		}
		atom.Use(w)
	})
	atomizeB := t.Go("atomizeB", func(w *exec.Thread) {
		if w.Read(table) == 0 {
			// Double insert: both threads saw the table empty. The
			// second insert unpins the first thread's atom.
			w.Write(table, 1)
			w.Write(pinned, 0)
		}
		atom.Use(w)
	})
	gc := t.Go("gc_sweep", func(w *exec.Thread) {
		if w.Read(table) == 1 && w.Read(pinned) == 0 {
			atom.FreeUnchecked(w) // sweep the unpinned atom
		}
	})
	t.JoinAll(atomizeA, atomizeB, gc)
}

// radBug5Program: the failure requires a perfect 16-step request/GC
// alternation on the depth counter — the same pair of abstract events
// must hand off correctly at every loop iteration, a *temporal* pattern a
// single set of reads-from constraints cannot pin down (RFF's positive
// constraints are existential and retire after one satisfaction). Every
// mis-step bails out silently. This mirrors the paper's bug5 row, which
// no evaluated tool exposes in any trial.
func radBug5Program(t *exec.Thread) {
	const rounds = 8
	depth := t.NewVar("request_depth", 0)
	done := t.NewVar("gc_done", 0)

	requester := t.Go("requester", func(w *exec.Thread) {
		for i := int64(0); i < rounds; i++ {
			if w.Read(depth) != 2*i {
				return // GC fell behind or raced ahead: normal path
			}
			w.Write(depth, 2*i+1)
		}
		// Perfect alternation survived: the request outran every GC
		// acknowledgement. If the GC has not finished either, the
		// original deadlocks on the request depth — modelled as the
		// assertion below.
		w.Assert(w.Read(done) != 0, "request depth corrupted after full alternation")
	})
	gc := t.Go("gc", func(w *exec.Thread) {
		for i := int64(0); i < rounds; i++ {
			if w.Read(depth) != 2*i+1 {
				return
			}
			w.Write(depth, 2*i+2)
		}
		w.Write(done, 1)
	})
	helper := t.Go("helper", func(w *exec.Thread) {
		// The helper only observes; its reads enrich the reads-from
		// space without participating in the failure.
		w.Read(depth)
		w.Read(done)
		w.Read(depth)
	})
	t.JoinAll(requester, gc, helper)
}

// radBug6Program: watchdog disarm signal lost between check and wait.
func radBug6Program(t *exec.Thread) {
	m := t.NewMutex("watchdog_lock")
	cv := t.NewCond("watchdog_cv", m)
	armed := t.NewVar("armed", 1)

	watcher := t.Go("watcher", func(w *exec.Thread) {
		// BUG: the armed check happens before taking the lock, so the
		// disarm signal can fire in the gap.
		if w.Read(armed) == 1 {
			w.Lock(m)
			w.Wait(cv)
			w.Unlock(m)
		}
	})
	disarmer := t.Go("disarmer", func(w *exec.Thread) {
		w.Write(armed, 0)
		w.Lock(m)
		w.Signal(cv)
		w.Unlock(m)
	})
	t.JoinAll(watcher, disarmer)
}
