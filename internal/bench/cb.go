package bench

import "rff/internal/exec"

// The CB suite ports SCTBench's "concurrency bugs" applications: the aget
// downloader, the pbzip2 parallel compressor, and the JDK 1.4 StringBuffer
// — thousand-line production programs in the original, distilled here to
// the threads and shared accesses that participate in each bug.

func init() {
	register(Program{
		Name: "CB/aget-bug2", Suite: "CB", Bug: BugAssert, Threads: 2,
		Desc: "two download threads bump the shared bytes-written counter without the lock; the progress accounting loses an update",
		Body: agetBug2Program,
	})
	register(Program{
		Name: "CB/pbzip2-0.9.4", Suite: "CB", Bug: BugDeadlock, Threads: 2,
		Desc: "the consumer checks fifo->empty outside the mutex: the producer's only signal can fire before the consumer waits, deadlocking the pipeline",
		Body: pbzip2Program,
	})
	register(Program{
		Name: "CB/stringbuffer-jdk1.4", Suite: "CB", Bug: BugAssert, Threads: 2,
		Desc: "StringBuffer.getChars samples the length, then copies after a concurrent delete shrank the buffer (JDK 1.4 race)",
		Body: stringBufferProgram,
	})
}

// agetBug2Program: unsynchronized progress counter updates.
func agetBug2Program(t *exec.Thread) {
	bwritten := t.NewVar("bwritten", 0)
	lock := t.NewMutex("bwritten_mutex")
	dl := func(chunk int64) exec.Program {
		return func(w *exec.Thread) {
			// The original takes the lock for the history array but
			// updates bwritten outside it.
			w.Lock(lock)
			w.Unlock(lock)
			b := w.Read(bwritten)
			w.Write(bwritten, b+chunk)
		}
	}
	a := t.Go("http_get_0", dl(100))
	b := t.Go("http_get_1", dl(50))
	t.JoinAll(a, b)
	t.Assertf(t.Read(bwritten) == 150, "progress lost: %d/150 bytes accounted", t.Read(bwritten))
}

// pbzip2Program: lost-wakeup pipeline shutdown.
func pbzip2Program(t *exec.Thread) {
	m := t.NewMutex("fifo_mut")
	notEmpty := t.NewCond("notEmpty", m)
	empty := t.NewVar("fifo_empty", 1)
	blocks := t.NewVar("blocks", 0)

	consumer := t.Go("consumer", func(w *exec.Thread) {
		// BUG: the emptiness check happens without holding fifo_mut.
		if w.Read(empty) == 1 {
			w.Lock(m)
			w.Wait(notEmpty) // the producer's signal may already be gone
			w.Unlock(m)
		}
		w.Lock(m)
		b := w.Read(blocks)
		w.Write(blocks, b-1)
		w.Unlock(m)
	})
	producer := t.Go("producer", func(w *exec.Thread) {
		w.Lock(m)
		b := w.Read(blocks)
		w.Write(blocks, b+1)
		w.Write(empty, 0)
		w.Signal(notEmpty) // fires exactly once
		w.Unlock(m)
	})
	t.JoinAll(consumer, producer)
}

// stringBufferProgram: length sampled before a racing delete.
func stringBufferProgram(t *exec.Thread) {
	length := t.NewVar("sb.count", 4)
	lock := t.NewMutex("sb.lock")

	getChars := t.Go("getChars", func(w *exec.Thread) {
		// getChars is NOT synchronized in JDK 1.4: it samples count...
		n := w.Read(length)
		// ... prepares the destination ...
		w.Yield()
		// ... and copies; by now a synchronized delete may have shrunk
		// the buffer, making the copy read out of bounds.
		cur := w.Read(length)
		w.Assertf(n <= cur, "ArrayIndexOutOfBounds: copying %d chars from a %d-char buffer", n, cur)
	})
	deleter := t.Go("delete", func(w *exec.Thread) {
		w.Lock(lock)
		n := w.Read(length)
		if n >= 4 {
			w.Write(length, n-4)
		}
		w.Unlock(lock)
	})
	t.JoinAll(getChars, deleter)
}
