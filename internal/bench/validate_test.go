package bench_test

import (
	"testing"

	"rff/internal/bench"
	"rff/internal/exec"
	"rff/internal/race"
	"rff/internal/sched"
)

// TestAllProgramTracesValidate runs every registered program under every
// scheduler family and validates the reads-from invariants of every trace
// — the suite-wide consistency check tying the benchmarks to the engine's
// semantics.
func TestAllProgramTracesValidate(t *testing.T) {
	mkScheds := func() []exec.Scheduler {
		return []exec.Scheduler{sched.NewRandom(), sched.NewPOS(), sched.NewPCT(3)}
	}
	for _, p := range bench.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 5; seed++ {
				for _, s := range mkScheds() {
					res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: s, Seed: seed, MaxSteps: 5000})
					if err := res.Trace.Validate(); err != nil {
						t.Fatalf("seed %d under %s: %v", seed, s.Name(), err)
					}
				}
			}
		})
	}
}

// TestRaceDetectorOnSuite sanity-checks the happens-before detector
// against the suite's ground truth: the pure-deadlock programs plant no
// data race, while the racy-assert programs do.
func TestRaceDetectorOnSuite(t *testing.T) {
	racy := []string{"CS/account", "CS/token_ring", "Splash2/barnes", "CB/aget-bug2",
		"Inspect_benchmarks/ctrace-test"}
	for _, name := range racy {
		p := bench.MustGet(name)
		found := false
		for seed := int64(0); seed < 30 && !found; seed++ {
			res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewRandom(), Seed: seed, MaxSteps: 5000})
			found = len(race.Detect(res.Trace)) > 0
		}
		if !found {
			t.Errorf("%s: no data race reported in 30 executions of a racy program", name)
		}
	}
	// deadlock01 is fully lock-ordered: its bug is a deadlock, not a race.
	p := bench.MustGet("CS/deadlock01")
	for seed := int64(0); seed < 30; seed++ {
		res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewRandom(), Seed: seed, MaxSteps: 5000})
		if races := race.Detect(res.Trace); len(races) > 0 {
			t.Fatalf("deadlock01 reported a spurious data race: %v", races[0])
		}
	}
}
