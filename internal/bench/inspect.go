package bench

import "rff/internal/exec"

// The Inspect suite ports the University of Utah Inspect benchmarks used
// in SCTBench: a condition-variable bounded buffer with the classic
// if-instead-of-while wakeup bug, the ctrace library race, and the
// qsort_mt work-handoff termination race.

func init() {
	register(Program{
		Name: "Inspect_benchmarks/boundedBuffer", Suite: "Inspect", Bug: BugAssert, Threads: 4,
		Desc: "two producers and two consumers share one condition variable and re-check with `if`: a wrong wakeup overflows or underflows the buffer",
		Body: boundedBufferProgram,
	})
	register(Program{
		Name: "Inspect_benchmarks/ctrace-test", Suite: "Inspect", Bug: BugAssert, Threads: 2,
		Desc: "the ctrace event counter is updated without the trace lock; a lost update trips the final count assert",
		Body: ctraceProgram,
	})
	register(Program{
		Name: "Inspect_benchmarks/qsort_mt", Suite: "Inspect", Bug: BugAssert, Threads: 3,
		Desc: "parallel quicksort decrements the pending-work counter before enqueueing subtasks: workers can observe a transiently idle pool and terminate early",
		Body: qsortMTProgram,
	})
}

// boundedBufferProgram: capacity-1 buffer, one shared condition variable,
// `if` re-checks — the canonical wrong-wakeup bug.
func boundedBufferProgram(t *exec.Thread) {
	const cap = 1
	const perThread = 2
	m := t.NewMutex("m")
	cv := t.NewCond("cv", m)
	count := t.NewVar("count", 0)

	producer := func(w *exec.Thread) {
		for i := 0; i < perThread; i++ {
			w.Lock(m)
			if w.Read(count) == cap {
				w.Wait(cv) // BUG: must be `while`
			}
			c := w.Read(count)
			w.Assertf(c < cap, "buffer overflow: count=%d", c)
			w.Write(count, c+1)
			w.Signal(cv)
			w.Unlock(m)
		}
	}
	consumer := func(w *exec.Thread) {
		for i := 0; i < perThread; i++ {
			w.Lock(m)
			if w.Read(count) == 0 {
				w.Wait(cv) // BUG: must be `while`
			}
			c := w.Read(count)
			w.Assertf(c > 0, "buffer underflow: count=%d", c)
			w.Write(count, c-1)
			w.Signal(cv)
			w.Unlock(m)
		}
	}
	p1 := t.Go("p1", producer)
	p2 := t.Go("p2", producer)
	c1 := t.Go("c1", consumer)
	c2 := t.Go("c2", consumer)
	t.JoinAll(p1, p2, c1, c2)
}

// ctraceProgram: trace events counted without the lock.
func ctraceProgram(t *exec.Thread) {
	events := t.NewVar("trace_events", 0)
	lock := t.NewMutex("trace_lock")
	worker := func(w *exec.Thread) {
		w.Lock(lock)
		w.Unlock(lock) // the lock guards the buffer, not the counter
		e := w.Read(events)
		w.Write(events, e+1)
	}
	a := t.Go("a", worker)
	b := t.Go("b", worker)
	t.JoinAll(a, b)
	t.Assertf(t.Read(events) == 2, "trace event lost: %d/2", t.Read(events))
}

// qsortMTProgram: a three-worker task pool where the root task spawns two
// subtasks but the shared pending counter is decremented before the
// subtasks are enqueued, opening a termination race.
func qsortMTProgram(t *exec.Thread) {
	const workers = 3
	queue := t.NewVars("task", 4, 0) // task slots; value = task id + 1
	qlen := t.NewVar("qlen", 0)
	qlock := t.NewMutex("qlock")
	pending := t.NewVar("pending", 1)
	processed := t.NewVar("processed", 0)

	// Seed the root task (id 1).
	t.Write(queue[0], 1)
	t.Write(qlen, 1)

	worker := func(w *exec.Thread) {
		// Each worker handles at most two partitions before retiring, as
		// in the original's bounded thread pool.
		done := 0
		for tries := 0; tries < 24 && done < 2; tries++ {
			if w.Read(pending) == 0 {
				return // pool looks idle: terminate (possibly too early)
			}
			w.Lock(qlock)
			n := w.Read(qlen)
			var task int64
			if n > 0 {
				task = w.Read(queue[n-1])
				w.Write(qlen, n-1)
			}
			w.Unlock(qlock)
			if task == 0 {
				w.Yield()
				continue
			}
			// "Sort" the partition.
			w.AtomicAdd(processed, 1)
			done++
			if task == 1 {
				// BUG: the root marks itself done before publishing its
				// two subtasks, so pending transiently reads 0.
				p := w.Read(pending)
				w.Write(pending, p-1)
				w.Lock(qlock)
				n := w.Read(qlen)
				w.Write(queue[n], 2)
				w.Write(queue[n+1], 3)
				w.Write(qlen, n+2)
				w.Unlock(qlock)
				p = w.Read(pending)
				w.Write(pending, p+2)
			} else {
				p := w.Read(pending)
				w.Write(pending, p-1)
			}
		}
	}
	ws := make([]*exec.Thread, workers)
	for i := range ws {
		ws[i] = t.Go("worker", worker)
	}
	t.JoinAll(ws...)
	t.Assertf(t.Read(processed) == 3, "partitions left unsorted: %d/3 (early termination)",
		t.Read(processed))
}
