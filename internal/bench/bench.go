// Package bench is the evaluation workload: Go ports of the SCTBench and
// ConVul benchmark programs the paper evaluates on (Section 5.1), written
// against the controlled execution engine in internal/exec. Each program
// preserves the thread structure, shared-variable access pattern, and bug
// of its C/pthread original, so schedules-to-first-bug is comparable in
// shape to the paper's Appendix B even though the substrate differs (see
// DESIGN.md, "Substitutions").
//
// Programs register themselves in a global registry; the campaign runner,
// CLI and benchmarks look them up by name.
package bench

import (
	"fmt"
	"sort"

	"rff/internal/exec"
)

// BugType classifies a program's planted bug, mirroring the paper's
// breakdown: 34 assertion violations, 4 deadlocks, 13 memory-safety
// issues across the 49 programs (numbers for the original suites).
type BugType uint8

const (
	// BugAssert marks an assertion-violation bug.
	BugAssert BugType = iota + 1
	// BugDeadlock marks a deadlock bug.
	BugDeadlock
	// BugMemory marks a concurrency memory-safety bug (UAF, double
	// free, null dereference) simulated via the memsim helpers.
	BugMemory
	// BugNone marks a program with no reachable bug known to any tool
	// (SafeStack in practice within realistic budgets).
	BugNone
)

// String names the bug type.
func (b BugType) String() string {
	switch b {
	case BugAssert:
		return "assert"
	case BugDeadlock:
		return "deadlock"
	case BugMemory:
		return "memory"
	case BugNone:
		return "none"
	}
	return "bug?"
}

// Program is one registered benchmark.
type Program struct {
	// Name is the registry key, matching the paper's naming
	// ("CS/reorder_10", "ConVul-CVE-Benchmarks/CVE-2016-9806", ...).
	Name string
	// Suite groups programs as in Appendix B (CS, Chess, ConVul, ...).
	Suite string
	// Bug is the planted bug class.
	Bug BugType
	// Threads is the number of threads the program spawns (excluding
	// main), for documentation and sanity checks.
	Threads int
	// Desc describes the bug scenario in a sentence.
	Desc string
	// Body is the program under test.
	Body exec.Program
}

var (
	registry = make(map[string]Program)
	ordered  []string
)

// register adds a program; duplicate names are programmer errors.
func register(p Program) {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate program %q", p.Name))
	}
	if p.Body == nil {
		panic(fmt.Sprintf("bench: program %q has no body", p.Name))
	}
	registry[p.Name] = p
	ordered = append(ordered, p.Name)
}

// Get looks a program up by name.
func Get(name string) (Program, bool) {
	p, ok := registry[name]
	return p, ok
}

// MustGet looks a program up by name and panics when absent.
func MustGet(name string) Program {
	p, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("bench: unknown program %q", name))
	}
	return p
}

// All returns every registered program sorted by name.
func All() []Program {
	names := Names()
	out := make([]Program, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Names returns all program names, sorted.
func Names() []string {
	out := make([]string, len(ordered))
	copy(out, ordered)
	sort.Strings(out)
	return out
}

// Suites returns the distinct suite names, sorted.
func Suites() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, p := range registry {
		if _, dup := seen[p.Suite]; !dup {
			seen[p.Suite] = struct{}{}
			out = append(out, p.Suite)
		}
	}
	sort.Strings(out)
	return out
}

// BySuite returns the programs of one suite, sorted by name.
func BySuite(suite string) []Program {
	var out []Program
	for _, p := range All() {
		if p.Suite == suite {
			out = append(out, p)
		}
	}
	return out
}
