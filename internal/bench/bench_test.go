package bench_test

import (
	"testing"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

func TestRegistry(t *testing.T) {
	all := bench.All()
	if len(all) < 40 {
		t.Fatalf("expected at least 40 registered programs, got %d", len(all))
	}
	seen := make(map[string]bool)
	for _, p := range all {
		if seen[p.Name] {
			t.Errorf("duplicate program %q", p.Name)
		}
		seen[p.Name] = true
		if p.Suite == "" || p.Desc == "" || p.Body == nil {
			t.Errorf("program %q missing metadata", p.Name)
		}
		if p.Bug == 0 {
			t.Errorf("program %q has no bug type", p.Name)
		}
	}
	if _, ok := bench.Get("CS/reorder_100"); !ok {
		t.Error("reorder_100 not registered")
	}
	if _, ok := bench.Get("no/such/program"); ok {
		t.Error("Get returned a phantom program")
	}
	suites := bench.Suites()
	want := map[string]bool{"CS": true, "Chess": true, "ConVul": true, "Inspect": true,
		"CB": true, "Splash2": true, "RADBench": true, "SafeStack": true, "Extras": true,
		"Chan": true}
	for _, s := range suites {
		if !want[s] {
			t.Errorf("unexpected suite %q", s)
		}
		delete(want, s)
	}
	for s := range want {
		t.Errorf("missing suite %q", s)
	}
}

// TestProgramsTerminate runs every program under several schedulers and
// seeds: all must finish within the step budget (bugs are fine; hangs and
// truncations are not).
func TestProgramsTerminate(t *testing.T) {
	for _, p := range bench.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				for _, s := range []exec.Scheduler{sched.NewRandom(), sched.NewPOS()} {
					res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: s, Seed: seed})
					if res.Truncated {
						t.Fatalf("seed %d under %s: execution truncated (livelock?)", seed, s.Name())
					}
				}
			}
			res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: sched.NewRoundRobin()})
			if res.Truncated {
				t.Fatal("round-robin execution truncated")
			}
		})
	}
}

// hardPrograms are the subjects the paper's tools also fail on within
// realistic budgets; bug reachability is not asserted for them.
var hardPrograms = map[string]bool{
	"SafeStack":     true,
	"RADBench/bug5": true,
}

// TestBugsReachableByRFF is the suite's integration test: the RFF fuzzer
// must expose every non-hard program's bug within a modest budget.
func TestBugsReachableByRFF(t *testing.T) {
	if testing.Short() {
		t.Skip("bug reachability sweep is not -short friendly")
	}
	for _, p := range bench.All() {
		p := p
		if hardPrograms[p.Name] || p.Bug == bench.BugNone {
			continue // no reachable bug to find (or none within budget)
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rep := core.NewFuzzer(p.Name, p.Body, core.Options{
				Budget: 3000, Seed: 1, StopAtFirstBug: true,
			}).Run()
			if !rep.FoundBug() {
				t.Fatalf("RFF did not reach the bug in %d schedules", rep.Executions)
			}
			got := rep.Failures[0].Failure.Kind
			switch p.Bug {
			case bench.BugDeadlock:
				if got != exec.FailDeadlock {
					t.Logf("note: expected deadlock, first failure was %v (%s)", got,
						rep.Failures[0].Failure.Msg)
				}
			case bench.BugMemory:
				if got != exec.FailMemory {
					t.Logf("note: expected memory failure, first failure was %v (%s)", got,
						rep.Failures[0].Failure.Msg)
				}
			}
			t.Logf("bug at schedule %d (%v: %s)", rep.FirstBug, got, rep.Failures[0].Failure.Msg)
		})
	}
}

// TestReorder100Headline reproduces the paper's Section 2 claim: RFF
// exposes reorder_100 in a handful of schedules while POS fails in any
// reasonable budget.
func TestReorder100Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("headline check is not -short friendly")
	}
	p := bench.MustGet("CS/reorder_100")
	for trial := int64(0); trial < 5; trial++ {
		rep := core.NewFuzzer(p.Name, p.Body, core.Options{
			Budget: 300, Seed: 1000 + trial, StopAtFirstBug: true,
		}).Run()
		if !rep.FoundBug() {
			t.Fatalf("trial %d: RFF missed reorder_100 in %d schedules", trial, rep.Executions)
		}
		if rep.FirstBug > 100 {
			t.Errorf("trial %d: RFF needed %d schedules (paper: ~6)", trial, rep.FirstBug)
		}
	}
	// POS baseline: must NOT find it in the same tiny budget.
	pos := sched.NewPOS()
	for seed := int64(0); seed < 300; seed++ {
		res := exec.Run(p.Name, p.Body, exec.Config{Scheduler: pos, Seed: seed})
		if res.Buggy() {
			t.Fatalf("POS found reorder_100 at seed %d — program too easy", seed)
		}
	}
}
