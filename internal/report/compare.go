package report

import (
	"fmt"
	"strings"

	"rff/internal/bench"
	"rff/internal/campaign"
)

// toolPaperName maps this repo's tool names onto the paper's Appendix B
// column names (the stand-ins drop their "*" marker).
func toolPaperName(tool string) string {
	switch tool {
	case "PERIOD*":
		return "PERIOD"
	case "GenMC*":
		return "GenMC"
	default:
		return tool
	}
}

// AppendixBVsPaper renders the reproduced Appendix B cells side by side
// with the paper's originals ("measured | paper"), the artifact
// EXPERIMENTS.md is built from.
func AppendixBVsPaper(m *campaign.MatrixResult) string {
	headers := []string{"Benchmark/program"}
	for _, tool := range m.Tools {
		headers = append(headers, tool+" (ours)", toolPaperName(tool)+" (paper)")
	}
	var rows [][]string
	for _, p := range m.Programs {
		row := []string{p}
		for _, tool := range m.Tools {
			mean, std, missed := m.MeanStd(tool, p)
			row = append(row, Cell(mean, std, missed, len(m.Outcomes[tool][p])))
			if pc, ok := bench.PaperCellFor(p, toolPaperName(tool)); ok {
				row = append(row, pc.String())
			} else {
				row = append(row, "?")
			}
		}
		rows = append(rows, row)
	}
	return Table(headers, rows)
}

// ShapeChecks evaluates the qualitative claims the reproduction must
// preserve and renders a pass/fail list:
//
//  1. RFF finds the most bugs of all tools;
//  2. POS misses the wide reorder/twostage subjects RFF cracks;
//  3. SafeStack is the hardest subject for every tool;
//  4. RFF beats Q-Learning-RF on bugs found.
func ShapeChecks(m *campaign.MatrixResult) string {
	var b strings.Builder
	check := func(name string, ok bool, detail string) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-52s %s\n", mark, name, detail)
	}

	meanBugs := func(tool string) float64 {
		counts := m.BugsFoundPerTrial(tool)
		s := 0.0
		for _, c := range counts {
			s += c
		}
		if len(counts) == 0 {
			return 0
		}
		return s / float64(len(counts))
	}

	rff := meanBugs("RFF")
	best := true
	detail := fmt.Sprintf("RFF=%.1f", rff)
	for _, tool := range m.Tools {
		if tool == "RFF" {
			continue
		}
		v := meanBugs(tool)
		detail += fmt.Sprintf(" %s=%.1f", tool, v)
		if v > rff {
			best = false
		}
	}
	check("RFF finds the most bugs", best, detail)

	posMissesWide := true
	var missDetail []string
	for _, p := range []string{"CS/reorder_50", "CS/reorder_100"} {
		if outs, ok := m.Outcomes["POS"][p]; ok {
			for _, o := range outs {
				if o.Found() {
					posMissesWide = false
				}
			}
			_, _, missed := m.MeanStd("RFF", p)
			if missed > 0 {
				posMissesWide = posMissesWide && false
			}
			missDetail = append(missDetail, p)
		}
	}
	check("POS misses wide reorder subjects that RFF cracks", posMissesWide,
		strings.Join(missDetail, ", "))

	if _, ok := m.Outcomes["RFF"]["SafeStack"]; ok {
		hardest := true
		var worst string
		for _, tool := range m.Tools {
			mean, _, missed := m.MeanStd(tool, "SafeStack")
			outs := len(m.Outcomes[tool]["SafeStack"])
			if missed == outs {
				continue // never found: consistent with "hardest"
			}
			// Compare against subjects the tool finds in *every* trial;
			// partially-found programs are already harder-than-budget
			// in some trials and not a fair yardstick.
			for _, p := range m.Programs {
				if p == "SafeStack" || p == "RADBench/bug5" {
					continue
				}
				om, _, omMissed := m.MeanStd(tool, p)
				if omMissed > 0 {
					continue
				}
				if om > mean {
					hardest = false
					worst = fmt.Sprintf("%s on %s (%.0f > %.0f)", tool, p, om, mean)
				}
			}
		}
		check("SafeStack is each tool's hardest reliably-found subject", hardest, worst)
	}

	if ql := meanBugs("QLearning-RF"); ql > 0 {
		check("RFF beats Q-Learning-RF on bugs found", rff >= ql,
			fmt.Sprintf("RFF=%.1f QL=%.1f", rff, ql))
	}
	return b.String()
}
