package report_test

import (
	"strings"
	"testing"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/report"
	"rff/internal/strategy"
)

func TestTableAlignment(t *testing.T) {
	out := report.Table([]string{"a", "long-header"}, [][]string{
		{"wide-cell", "1"},
		{"x", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w+2 {
			t.Fatalf("line %d wider than header: %q", i, l)
		}
	}
}

func TestCellFormats(t *testing.T) {
	if got := report.Cell(12.4, 3.2, 0, 20); got != "12 ± 3" {
		t.Fatalf("plain cell: %q", got)
	}
	if got := report.Cell(12.4, 3.2, 2, 20); got != "12 ± 3*" {
		t.Fatalf("partial-miss cell: %q", got)
	}
	if got := report.Cell(0, 0, 20, 20); got != "-" {
		t.Fatalf("all-miss cell: %q", got)
	}
}

func TestEndToEndRendering(t *testing.T) {
	tools, err := strategy.ResolveAll([]string{"rff", "pos"}, strategy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	progs := []bench.Program{bench.MustGet("CS/account"), bench.MustGet("CS/lazy01")}
	m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{Trials: 2, Budget: 200, BaseSeed: 5})

	tab := report.AppendixB(m)
	for _, want := range []string{"CS/account", "CS/lazy01", "RFF", "POS", "bugs found"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	fig4 := report.Fig4ASCII(m, m.Tools)
	if !strings.Contains(fig4, "legend") || !strings.Contains(fig4, "R=RFF") {
		t.Errorf("fig4 missing legend:\n%s", fig4)
	}
	csv := report.Fig4CSV(m, m.Tools)
	if !strings.HasPrefix(csv, "tool,schedules,cumulative_bugs\n") {
		t.Errorf("bad fig4 csv header: %q", csv[:40])
	}

	d := campaign.RFDistributionPOS(bench.MustGet("CS/lazy01"), 100, 1, 0)
	fig5 := report.Fig5ASCII(d, 10)
	if !strings.Contains(fig5, "POS") || !strings.Contains(fig5, "#") {
		t.Errorf("bad fig5:\n%s", fig5)
	}
	if !strings.Contains(report.Fig5CSV(d), "rank,frequency") {
		t.Error("bad fig5 csv")
	}
}
