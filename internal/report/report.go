// Package report renders the evaluation artifacts as text: the Appendix B
// style table, the Figure 4 cumulative-bugs curves (ASCII plot + CSV), and
// the Figure 5 reads-from frequency histogram.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rff/internal/campaign"
	"rff/internal/exec"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Cell formats one Appendix-B table cell: "mean ± std", with the paper's
// markers — "*" when some trials missed the bug, "-" when all did.
func Cell(mean, std float64, missed, trials int) string {
	if trials == 0 {
		return "?"
	}
	if missed == trials {
		return "-"
	}
	s := fmt.Sprintf("%.0f ± %.0f", mean, std)
	if missed > 0 {
		s += "*"
	}
	return s
}

// AppendixB renders the schedules-to-first-bug table for every program and
// tool in the matrix — the reproduction of the paper's Appendix B.
func AppendixB(m *campaign.MatrixResult) string {
	headers := append([]string{"Benchmark/program"}, m.Tools...)
	var rows [][]string
	for _, p := range m.Programs {
		row := []string{p}
		for _, tool := range m.Tools {
			mean, std, missed := m.MeanStd(tool, p)
			row = append(row, Cell(mean, std, missed, len(m.Outcomes[tool][p])))
		}
		rows = append(rows, row)
	}
	// Summary row: mean bugs found per trial.
	sum := []string{"bugs found (mean/trial)"}
	for _, tool := range m.Tools {
		counts := m.BugsFoundPerTrial(tool)
		mean := 0.0
		for _, c := range counts {
			mean += c
		}
		if len(counts) > 0 {
			mean /= float64(len(counts))
		}
		sum = append(sum, fmt.Sprintf("%.1f", mean))
	}
	rows = append(rows, sum)
	return Table(headers, rows)
}

// Fig4CSV emits the cumulative curves as CSV (tool, schedules, bugs).
func Fig4CSV(m *campaign.MatrixResult, tools []string) string {
	var b strings.Builder
	b.WriteString("tool,schedules,cumulative_bugs\n")
	for _, tool := range tools {
		for _, pt := range m.CumulativeCurve(tool) {
			fmt.Fprintf(&b, "%s,%d,%d\n", tool, pt.Schedules, pt.Bugs)
		}
	}
	return b.String()
}

// Fig4ASCII draws the cumulative bugs-vs-log(schedules) chart — the
// reproduction of Figure 4. Each tool gets a marker; higher and further
// left is better.
func Fig4ASCII(m *campaign.MatrixResult, tools []string) string {
	const width, height = 72, 20
	maxBugs := 0
	maxSched := 1
	curves := make(map[string][]campaign.CurvePoint)
	for _, tool := range tools {
		c := m.CumulativeCurve(tool)
		curves[tool] = c
		for _, pt := range c {
			if pt.Bugs > maxBugs {
				maxBugs = pt.Bugs
			}
			if pt.Schedules > maxSched {
				maxSched = pt.Schedules
			}
		}
	}
	if maxBugs == 0 {
		return "(no bugs found by any tool)\n"
	}
	markers := []byte{'R', 'P', 'p', 'o', 'q', 'g', 'x', '+'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	logMax := math.Log10(float64(maxSched) + 1)
	for ti, tool := range tools {
		mark := markers[ti%len(markers)]
		for _, pt := range curves[tool] {
			x := int(math.Log10(float64(pt.Schedules)+1) / logMax * float64(width-1))
			y := height - 1 - int(float64(pt.Bugs-1)/float64(maxBugs)*float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cumulative bugs found vs log(schedules) — max %d bugs\n", maxBugs)
	for i, row := range grid {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%5d ", maxBugs)
		} else if i == height-1 {
			label = "    1 "
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("      +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "       1%sschedules (log)%s%d\n",
		strings.Repeat(" ", width/2-9), strings.Repeat(" ", width/2-10), maxSched)
	b.WriteString("legend: ")
	for ti, tool := range tools {
		if ti > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", markers[ti%len(markers)], tool)
	}
	b.WriteByte('\n')
	return b.String()
}

// Fig5ASCII renders a reads-from combination frequency distribution as a
// log-scale bar chart (combinations sorted by decreasing frequency), with
// the evenness summary the paper's RQ3 discussion draws from it.
func Fig5ASCII(d *campaign.Distribution, maxBars int) string {
	freq := append([]int(nil), d.Freq...)
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	if maxBars <= 0 {
		maxBars = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d schedules over %d distinct reads-from combinations (max share %.1f%%)\n",
		d.Config, d.Schedules, len(freq), d.MaxShare()*100)
	shown := freq
	if len(shown) > maxBars {
		shown = shown[:maxBars]
	}
	const barWidth = 60
	logMax := math.Log10(float64(freq[0]) + 1)
	for i, f := range shown {
		n := int(math.Log10(float64(f)+1) / logMax * barWidth)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(&b, "%4d %6d %s\n", i+1, f, strings.Repeat("#", n))
	}
	if len(freq) > len(shown) {
		fmt.Fprintf(&b, "     ... %d more combinations\n", len(freq)-len(shown))
	}
	return b.String()
}

// Fig5CSV emits a distribution as CSV (rank, frequency).
func Fig5CSV(d *campaign.Distribution) string {
	freq := append([]int(nil), d.Freq...)
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	var b strings.Builder
	fmt.Fprintf(&b, "# %s, %d schedules\n", d.Config, d.Schedules)
	b.WriteString("rank,frequency\n")
	for i, f := range freq {
		fmt.Fprintf(&b, "%d,%d\n", i+1, f)
	}
	return b.String()
}

// Timeline renders a trace as a per-thread timeline: one column per
// thread, one row per event, making handoffs and preemptions visually
// obvious in replay output.
func Timeline(t *exec.Trace) string {
	maxThread := exec.ThreadID(0)
	for _, e := range t.Events {
		if e.Thread > maxThread {
			maxThread = e.Thread
		}
	}
	var b strings.Builder
	b.WriteString("     ")
	for th := exec.ThreadID(1); th <= maxThread; th++ {
		fmt.Fprintf(&b, " %-10s", fmt.Sprintf("t%d", th))
	}
	b.WriteByte('\n')
	for _, e := range t.Events {
		fmt.Fprintf(&b, "%4d ", e.ID)
		for th := exec.ThreadID(1); th <= maxThread; th++ {
			if th != e.Thread {
				b.WriteString(" .         ")
				continue
			}
			cell := e.Op.String()
			if e.VarStr != "" {
				cell += "(" + e.VarStr + ")"
			}
			if len(cell) > 10 {
				cell = cell[:10]
			}
			fmt.Fprintf(&b, " %-10s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
