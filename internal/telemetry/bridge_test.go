package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestBroadcastLateSubscriberReplaysFullHistory(t *testing.T) {
	b := NewBroadcast(nil)
	const early = 50
	for i := 0; i < early; i++ {
		b.Emit("ev", Fields{"i": i})
	}

	// A subscriber arriving after `early` events must see the complete
	// history first, in order, then every live event, also in order,
	// with no gap and no duplicate at the splice point.
	replay, ch, cancel := b.Subscribe()
	defer cancel()
	if len(replay) != early {
		t.Fatalf("replay length = %d, want %d", len(replay), early)
	}
	const late = 50
	for i := early; i < early+late; i++ {
		b.Emit("ev", Fields{"i": i})
	}
	b.Close()

	var all []Event
	all = append(all, replay...)
	for ev := range ch {
		all = append(all, ev)
	}
	if len(all) != early+late {
		t.Fatalf("subscriber saw %d events, want %d", len(all), early+late)
	}
	for i, ev := range all {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		// Fields round-trip through the history untouched.
		if got, ok := ev.Fields["i"].(int); !ok || got != i {
			t.Fatalf("event %d payload = %v", i, ev.Fields["i"])
		}
	}
}

func TestBroadcastSubscriberAfterCloseStillReplays(t *testing.T) {
	b := NewBroadcast(nil)
	b.Emit("a", nil)
	b.Emit("b", nil)
	b.Close()
	b.Emit("dropped-after-close", nil)

	replay, ch, cancel := b.Subscribe()
	defer cancel()
	if len(replay) != 2 || replay[0].Kind != "a" || replay[1].Kind != "b" {
		t.Fatalf("replay after close = %+v", replay)
	}
	if _, open := <-ch; open {
		t.Fatal("live channel open after Close")
	}
}

func TestBroadcastConcurrentEmitters(t *testing.T) {
	b := NewBroadcast(nil)
	_, ch, cancel := b.Subscribe()
	defer cancel()

	const emitters, perEmitter = 8, 40
	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				b.Emit("ev", Fields{"emitter": e, "i": i})
			}
		}(e)
	}
	wg.Wait()
	b.Close()

	// Seq numbers are a contiguous 1..N permutation-free sequence even
	// under concurrent emitters, and the live channel delivers them in
	// history order.
	hist := b.History()
	if len(hist) != emitters*perEmitter {
		t.Fatalf("history length = %d, want %d", len(hist), emitters*perEmitter)
	}
	i := 0
	for ev := range ch {
		if ev.Seq != int64(i+1) {
			t.Fatalf("live event %d has seq %d", i, ev.Seq)
		}
		i++
	}
	if i != emitters*perEmitter {
		t.Fatalf("live channel delivered %d events, want %d", i, emitters*perEmitter)
	}
}

func TestBroadcastStalledSubscriberIsDisconnected(t *testing.T) {
	b := NewBroadcast(nil)
	_, ch, cancel := b.Subscribe()
	defer cancel()
	// Never drain: after the buffer fills, the emitter must disconnect
	// the subscriber instead of blocking.
	for i := 0; i < subBuffer+10; i++ {
		b.Emit("ev", nil)
	}
	n := 0
	for range ch {
		n++
	}
	if n > subBuffer {
		t.Fatalf("stalled subscriber received %d events, buffer is %d", n, subBuffer)
	}
	if len(b.History()) != subBuffer+10 {
		t.Fatal("emitter lost events while disconnecting a stalled subscriber")
	}
}

func TestBroadcastDelegatesMetrics(t *testing.T) {
	h := NewHub()
	b := NewBroadcast(h)
	var s Sink = b
	s.Add(MSchedulesExecuted, 2)
	s.Set(MCorpusSize, 9)
	s.Observe(MStepsPerSchedule, 5)
	snap := h.Snapshot()
	if snap.Value(MSchedulesExecuted) != 2 || snap.Value(MCorpusSize) != 9 {
		t.Fatalf("metrics did not reach the inner sink: %+v", snap)
	}

	// HistoryJSONL renders one parseable line per event.
	b.Emit("x", Fields{"k": "v"})
	b.Emit("y", nil)
	lines := decodeLines(t, b.HistoryJSONL())
	if len(lines) != 2 || lines[0].Kind != "x" || lines[1].Seq != 2 {
		t.Fatalf("HistoryJSONL = %+v", lines)
	}
}

// TestEventWriterConcurrentWriters hammers the JSONL sink from many
// goroutines and asserts the stream stays line-atomic: every line
// parses, seq numbers form exactly 1..N with no gap or duplicate, and
// nothing is dropped.
func TestEventWriterConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	const writers, perWriter = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ew.Emit("concurrent", Fields{"writer": w, "i": i, "pad": fmt.Sprintf("%0128d", i)})
			}
		}(w)
	}
	wg.Wait()
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	if ew.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", ew.Dropped())
	}
	evs := decodeLines(t, buf.Bytes())
	const total = writers * perWriter
	if len(evs) != total {
		t.Fatalf("decoded %d events, want %d", len(evs), total)
	}
	seen := make(map[int64]bool, total)
	for _, ev := range evs {
		if ev.Seq < 1 || ev.Seq > total || seen[ev.Seq] {
			t.Fatalf("seq %d out of range or duplicated", ev.Seq)
		}
		seen[ev.Seq] = true
		if ev.Kind != "concurrent" {
			t.Fatalf("unexpected kind %q", ev.Kind)
		}
	}
	// Per-writer emission order is preserved in the stream: for each
	// writer, the i fields must appear in increasing order of seq.
	lastI := make(map[int]float64, writers)
	for seq := int64(1); seq <= total; seq++ {
		for _, ev := range evs {
			if ev.Seq != seq {
				continue
			}
			w := int(ev.Fields["writer"].(float64))
			i := ev.Fields["i"].(float64)
			if prev, ok := lastI[w]; ok && i <= prev {
				t.Fatalf("writer %d emitted i=%v after i=%v", w, i, prev)
			}
			lastI[w] = i
		}
	}
}
