// Package telemetry is the fuzzer's observability layer: a lock-cheap
// metrics registry (atomic counters, gauges, and log-bucketed
// histograms), a deterministic JSON-serializable Snapshot of that
// registry, a streaming JSONL event sink, and a periodic progress
// reporter for long campaigns.
//
// Instrumented code (the engine loop, the fuzzing loop, the campaign
// matrix driver) holds a Sink and guards every call with a nil check,
// so a campaign without telemetry pays one predicted branch per
// instrumentation point. The concrete *Hub additionally tolerates nil
// receivers, making the zero value a safe no-op even when stored inside
// a non-nil Sink interface.
package telemetry

// Label is one name=value dimension of a metric (e.g. tool="RFF",
// program="CS/reorder_10"). Metrics with the same name but different
// label sets are independent series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Fields is the free-form payload of an event. Values must be
// JSON-marshalable; encoding/json sorts the keys, keeping every emitted
// line deterministic for a deterministic campaign.
type Fields map[string]any

// Sink receives metric updates and structured events from instrumented
// code. Implementations must be safe for concurrent use; every method
// must be cheap enough to call once per executed schedule.
//
// A nil Sink means telemetry is disabled: instrumentation points check
// for nil before calling.
type Sink interface {
	// Add increments the counter name{labels} by delta.
	Add(name string, delta int64, labels ...Label)
	// Set sets the gauge name{labels} to value.
	Set(name string, value int64, labels ...Label)
	// Observe records value into the log-bucketed histogram name{labels}.
	Observe(name string, value int64, labels ...Label)
	// Emit appends a structured event to the campaign's event stream.
	Emit(kind string, fields Fields)
}

// Metric names used by the built-in instrumentation points. Counters
// unless noted otherwise.
const (
	// MSchedulesExecuted counts executed schedules per {program}.
	MSchedulesExecuted = "schedules_executed"
	// MSchedulesCrashed counts schedules that exposed a bug per {program}.
	MSchedulesCrashed = "schedules_crashed"
	// MRFPairsNew counts never-before-seen reads-from pairs per {program}.
	MRFPairsNew = "rf_pairs_new"
	// MRFCombosNew counts new reads-from combinations per {program}.
	MRFCombosNew = "rf_combos_new"
	// MCorpusSize is a gauge: the current corpus size per {program}.
	MCorpusSize = "corpus_size"
	// MCorpusAdds counts schedules added to the corpus per {program}.
	MCorpusAdds = "corpus_additions"
	// MEnergyAssigned is a histogram of power-schedule energy per stage.
	MEnergyAssigned = "energy_assigned"
	// MConstraintSatisfied counts positive constraints witnessed by the
	// proactive scheduler per {program}.
	MConstraintSatisfied = "constraint_satisfied"
	// MConstraintRejected counts negative constraints violated per {program}.
	MConstraintRejected = "constraint_rejected"
	// MObserverPanics counts recovered TraceObserver panics per {program}.
	MObserverPanics = "observer_panics"
	// MStepsPerSchedule is a histogram of events per execution (engine).
	MStepsPerSchedule = "steps_per_schedule"
	// MEngineExecutions counts engine executions (all tools).
	MEngineExecutions = "engine_executions"
	// MEngineTruncated counts executions cut off by the step budget.
	MEngineTruncated = "engine_truncated"
	// MTrialsDone counts completed matrix trials per {tool,program}.
	MTrialsDone = "trials_done"
	// MTrialPanics counts matrix trials aborted by a recovered panic.
	MTrialPanics = "trial_panics"
	// MFleetCellsDone counts completed fleet cells; each worker merges
	// its local count into the counter once, at the pool barrier.
	MFleetCellsDone = "fleet_cells_done"
	// MFleetCellDuration is a histogram of per-cell wall-clock time in
	// microseconds.
	MFleetCellDuration = "fleet_cell_duration"
	// MFleetWorkersBusy is a live gauge of fleet workers currently
	// inside a cell (reset to 0 at the pool barrier).
	MFleetWorkersBusy = "fleet_workers_busy"
	// MFleetUtilization is a gauge set at the pool barrier: the percent
	// of worker wall-clock spent inside cells, 0-100.
	MFleetUtilization = "fleet_utilization_pct"
	// MConformancePrograms counts generated programs checked by the
	// conformance harness.
	MConformancePrograms = "conformance_programs"
	// MConformanceSkipped counts generated programs skipped because
	// systematic enumeration did not complete within the ground-truth
	// budget.
	MConformanceSkipped = "conformance_skipped"
	// MConformanceViolations counts soundness violations (behaviors
	// observed outside the enumerated ground-truth set) per {tool}.
	MConformanceViolations = "conformance_violations"
	// MConformanceReplays counts failure replay checks per {tool};
	// MConformanceReplayFailures counts the ones that did not reproduce.
	MConformanceReplays        = "conformance_replays"
	MConformanceReplayFailures = "conformance_replay_failures"
	// MConformanceCoverage is a histogram of final ground-truth rf-pair
	// coverage per {tool}, in percent (one observation per program).
	MConformanceCoverage = "conformance_rf_coverage_pct"
	// MShardExecs counts executions run per {program,shard} of a sharded
	// campaign (including executions later discarded by a deterministic
	// stop-at-first-bug truncation — it measures work done, not counted
	// budget).
	MShardExecs = "shard_execs"
	// MShardSteals counts execution batches a shard stole from another
	// shard's deque, per {program,shard}.
	MShardSteals = "shard_steals"
	// MShardMergeNS is a histogram of epoch merge-barrier wall-clock in
	// nanoseconds per {program}.
	MShardMergeNS = "shard_merge_ns"
	// MShardUtilization is a gauge set at campaign end: the percent of
	// shard wall-clock spent executing batches, 0-100, per {program}.
	MShardUtilization = "shard_utilization_pct"
	// MTriageClusters is a gauge tracking the number of distinct failure
	// clusters in the triage corpus.
	MTriageClusters = "triage_clusters_total"
	// MTriageMinimizeSteps counts candidate executions (probes) spent
	// minimizing artifacts during triage.
	MTriageMinimizeSteps = "triage_minimize_steps"
	// MTriageDedupHits counts artifacts that triage recognized as
	// already-ingested content or as members of an existing cluster.
	MTriageDedupHits = "triage_dedup_hits"
	// MBudgetEpochs counts adaptive-budget allocation barriers run by a
	// budgeted campaign matrix.
	MBudgetEpochs = "budget_epochs"
	// MBudgetReallocations counts cells whose epoch share differed from
	// their previous-epoch share — how much the policy actually moved
	// budget around.
	MBudgetReallocations = "budget_reallocations"
	// MBudgetShare is a gauge set at campaign end: the percent of the
	// matrix's spent executions each {tool, program} cell received,
	// 0-100.
	MBudgetShare = "budget_share_pct"
)

// Event kinds emitted by the built-in instrumentation points.
const (
	// EvCampaignStart opens a campaign's event stream.
	EvCampaignStart = "campaign-start"
	// EvCampaignDone closes a campaign's event stream.
	EvCampaignDone = "campaign-done"
	// EvFirstBug fires when a fuzzing campaign finds its first failure.
	EvFirstBug = "first-bug"
	// EvInteresting fires when a mutant is added to the corpus.
	EvInteresting = "interesting-schedule"
	// EvTrialDone fires after every successfully completed matrix trial.
	EvTrialDone = "trial-done"
	// EvTrialError fires (at the merge barrier, in deterministic cell
	// order) for every matrix trial that aborted with an infrastructure
	// failure; its fields carry the cell identity, error, and panic
	// stack.
	EvTrialError = "trial_error"
	// EvConformanceProgram fires after the conformance harness finishes
	// cross-checking one generated program against its ground truth.
	EvConformanceProgram = "conformance-program"
	// EvConformanceViolation fires for every soundness or replay
	// violation, with the offending tool, program, and behavior.
	EvConformanceViolation = "conformance-violation"
	// EvEpochMerge fires after every sharded-campaign merge barrier. Its
	// fields are deterministic (epoch index, counted executions, corpus
	// size) — never wall-clock or shard attribution — so the event stream
	// of a deterministic sharded campaign is identical at every shard
	// count.
	EvEpochMerge = "epoch-merge"
	// EvBudgetEpoch fires after every adaptive-budget allocation barrier
	// with the epoch index, pool, per-epoch executions, new pairs, and
	// live cell count. All fields are deterministic, so the budgeted
	// event stream is identical at every worker count.
	EvBudgetEpoch = "budget-epoch"
)

// Hub is the standard Sink implementation: a metrics Registry plus an
// optional JSONL event stream. A nil *Hub (or a Hub with nil parts) is
// a valid no-op, so callers may pass hubs around without guarding.
type Hub struct {
	Metrics *Registry
	Events  *EventWriter
}

// NewHub returns a Hub with a fresh registry and no event stream.
func NewHub() *Hub { return &Hub{Metrics: NewRegistry()} }

// Add implements Sink.
func (h *Hub) Add(name string, delta int64, labels ...Label) {
	if h == nil || h.Metrics == nil {
		return
	}
	h.Metrics.Counter(name, labels...).Add(delta)
}

// Set implements Sink.
func (h *Hub) Set(name string, value int64, labels ...Label) {
	if h == nil || h.Metrics == nil {
		return
	}
	h.Metrics.Gauge(name, labels...).Set(value)
}

// Observe implements Sink.
func (h *Hub) Observe(name string, value int64, labels ...Label) {
	if h == nil || h.Metrics == nil {
		return
	}
	h.Metrics.Histogram(name, labels...).Observe(value)
}

// Emit implements Sink.
func (h *Hub) Emit(kind string, fields Fields) {
	if h == nil || h.Events == nil {
		return
	}
	h.Events.Emit(kind, fields)
}

// Snapshot returns the current state of the hub's registry (empty when
// the hub or its registry is nil).
func (h *Hub) Snapshot() Snapshot {
	if h == nil || h.Metrics == nil {
		return Snapshot{}
	}
	return h.Metrics.Snapshot()
}

// Flush forces any buffered events out to the underlying writer.
func (h *Hub) Flush() {
	if h == nil || h.Events == nil {
		return
	}
	h.Events.Flush()
}
