package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// Broadcast is the Sink→stream bridge behind the service daemon's SSE
// endpoint: it records every emitted event in an ordered in-memory
// history and fans it out to any number of subscribers. A subscriber
// arriving mid-campaign (or after it finished) first replays the full
// history from event 1, then receives live events — with no gap and no
// duplicate, because registration and the history copy happen under one
// lock.
//
// Metric updates (Add/Set/Observe) delegate to the wrapped inner sink,
// so a Broadcast drops transparently into any code path that already
// threads a Sink. Emit is fan-out only; a subscriber that stops
// draining is disconnected rather than allowed to stall the campaign.
type Broadcast struct {
	inner Sink // receives Add/Set/Observe (may be nil)

	mu      sync.Mutex
	history []Event
	subs    map[int]chan Event
	nextSub int
	closed  bool
	now     func() time.Time
}

// subBuffer is each subscriber's live-channel capacity. A subscriber
// falling more than a buffer behind the emitter is closed (the SSE
// layer reports the disconnect; the client reconnects and replays).
const subBuffer = 1024

// NewBroadcast builds a bridge over an optional inner sink.
func NewBroadcast(inner Sink) *Broadcast {
	return &Broadcast{inner: inner, subs: make(map[int]chan Event), now: time.Now}
}

// Add implements Sink by delegating to the inner sink.
func (b *Broadcast) Add(name string, delta int64, labels ...Label) {
	if b.inner != nil {
		b.inner.Add(name, delta, labels...)
	}
}

// Set implements Sink by delegating to the inner sink.
func (b *Broadcast) Set(name string, value int64, labels ...Label) {
	if b.inner != nil {
		b.inner.Set(name, value, labels...)
	}
}

// Observe implements Sink by delegating to the inner sink.
func (b *Broadcast) Observe(name string, value int64, labels ...Label) {
	if b.inner != nil {
		b.inner.Observe(name, value, labels...)
	}
}

// Emit implements Sink: the event is appended to the history and
// delivered to every live subscriber in emission order. Events after
// Close are dropped.
func (b *Broadcast) Emit(kind string, fields Fields) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	ev := Event{
		Seq:    int64(len(b.history)) + 1,
		TS:     b.now().UTC().Format(time.RFC3339Nano),
		Kind:   kind,
		Fields: fields,
	}
	b.history = append(b.history, ev)
	for id, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			// Subscriber stalled past its buffer: disconnect it rather
			// than block the campaign.
			close(ch)
			delete(b.subs, id)
		}
	}
}

// Subscribe registers a consumer. replay is the complete event history
// so far, in order; ch then yields every later event, also in order,
// and is closed when the Broadcast closes or the subscriber stalls.
// cancel deregisters (idempotent; ch is closed).
func (b *Broadcast) Subscribe() (replay []Event, ch <-chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]Event(nil), b.history...)
	c := make(chan Event, subBuffer)
	if b.closed {
		close(c)
		return replay, c, func() {}
	}
	id := b.nextSub
	b.nextSub++
	b.subs[id] = c
	return replay, c, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if sc, ok := b.subs[id]; ok {
			close(sc)
			delete(b.subs, id)
		}
	}
}

// Close marks the stream terminal: every subscriber channel is closed
// and later Emits are dropped. The history stays readable.
func (b *Broadcast) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		close(ch)
		delete(b.subs, id)
	}
}

// History returns a copy of the events emitted so far.
func (b *Broadcast) History() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.history...)
}

// HistoryJSONL renders the history as JSON Lines — the persistent form
// the service stores next to a campaign's report.
func (b *Broadcast) HistoryJSONL() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []byte
	for _, ev := range b.history {
		line, err := json.Marshal(ev)
		if err != nil {
			continue // unmarshalable payload: skip the line, keep the stream
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}
