package telemetry

import (
	"encoding/json"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move up and down (e.g. corpus size).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log2 buckets: bucket 0 holds values
// <= 0, bucket i >= 1 holds [2^(i-1), 2^i). bits.Len64 of a positive
// int64 is at most 63, so 64 buckets cover the full range.
const histBuckets = 64

// Histogram is a fixed-size log2-bucketed histogram. Observations cost
// three atomic adds and no allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketOf maps a value to its log2 bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketLow returns the inclusive lower bound of bucket i (0 for the
// catch-all <=0 bucket).
func bucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << uint(i-1)
}

// metricMeta remembers how a registered series was named so snapshots
// can reconstruct it.
type metricMeta struct {
	name   string
	labels []Label
}

// Registry is a lock-cheap metrics store: series resolution is a
// read-locked map hit (write-locked only on first use of a series) and
// every update after resolution is a plain atomic operation. Callers on
// hot paths may also resolve a *Counter/*Gauge/*Histogram handle once
// and update it directly.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]metricMeta
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]metricMeta),
	}
}

// metricKey builds the canonical series key: the metric name followed
// by its labels sorted by label name.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.Grow(len(name) + 16*len(ls))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// rememberLocked records series metadata; callers hold r.mu.
func (r *Registry) rememberLocked(key, name string, labels []Label) {
	if _, ok := r.meta[key]; ok {
		return
	}
	r.meta[key] = metricMeta{name: name, labels: append([]Label(nil), labels...)}
}

// Counter resolves (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
		r.rememberLocked(k, name, labels)
	}
	return c
}

// Gauge resolves (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	k := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{}
		r.gauges[k] = g
		r.rememberLocked(k, name, labels)
	}
	return g
}

// Histogram resolves (creating if needed) the histogram name{labels}.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	k := metricKey(name, labels)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = &Histogram{}
		r.hists[k] = h
		r.rememberLocked(k, name, labels)
	}
	return h
}

// --- snapshots ---------------------------------------------------------------

// BucketCount is one populated histogram bucket: Count observations in
// [Low, 2*Low) (Low = 0 holds values <= 0).
type BucketCount struct {
	Low   int64 `json:"low"`
	Count int64 `json:"count"`
}

// HistogramData is a histogram's serialized state; only populated
// buckets appear, in ascending bound order.
type HistogramData struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Metric is one series in a snapshot.
type Metric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"` // "counter", "gauge", "histogram"
	Value  int64             `json:"value"`
	Hist   *HistogramData    `json:"histogram,omitempty"`

	key string // canonical series key, for sorting and lookups
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name
// then canonical label key — marshaling the same state always yields
// identical bytes (encoding/json also sorts the Labels map keys).
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out = append(out, r.metricLocked(k, "counter", c.Value(), nil))
	}
	for k, g := range r.gauges {
		out = append(out, r.metricLocked(k, "gauge", g.Value(), nil))
	}
	for k, h := range r.hists {
		hd := &HistogramData{Count: h.Count(), Sum: h.Sum()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hd.Buckets = append(hd.Buckets, BucketCount{Low: bucketLow(i), Count: n})
			}
		}
		out = append(out, r.metricLocked(k, "histogram", hd.Count, hd))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].key < out[j].key
	})
	return Snapshot{Metrics: out}
}

// metricLocked builds one snapshot entry; callers hold r.mu.
func (r *Registry) metricLocked(key, kind string, value int64, hd *HistogramData) Metric {
	m := Metric{Name: key, Kind: kind, Value: value, Hist: hd, key: key}
	if meta, ok := r.meta[key]; ok {
		m.Name = meta.name
		if len(meta.labels) > 0 {
			m.Labels = make(map[string]string, len(meta.labels))
			for _, l := range meta.labels {
				m.Labels[l.Name] = l.Value
			}
		}
	}
	return m
}

// MarshalJSONIndent renders the snapshot as stable, human-diffable JSON.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// find returns the snapshot entry with exactly this series key.
func (s Snapshot) find(name string, labels []Label) (Metric, bool) {
	k := metricKey(name, labels)
	for _, m := range s.Metrics {
		if m.key == k {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns the value of the counter or gauge with exactly these
// labels (0 if the series does not exist).
func (s Snapshot) Value(name string, labels ...Label) int64 {
	m, ok := s.find(name, labels)
	if !ok {
		return 0
	}
	return m.Value
}

// Total sums the values of every series with the given name across all
// label sets (for histograms this totals observation counts).
func (s Snapshot) Total(name string) int64 {
	var t int64
	for _, m := range s.Metrics {
		if m.Name == name {
			t += m.Value
		}
	}
	return t
}

// Histogram returns the serialized histogram with exactly these labels
// (nil if the series does not exist).
func (s Snapshot) Histogram(name string, labels ...Label) *HistogramData {
	m, ok := s.find(name, labels)
	if !ok {
		return nil
	}
	return m.Hist
}
