package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one decoded line of a campaign's JSONL event stream.
type Event struct {
	// Seq is the 1-based emission sequence number.
	Seq int64 `json:"seq"`
	// TS is the wall-clock emission time (RFC 3339, UTC).
	TS string `json:"ts"`
	// Kind names the event (see the Ev* constants).
	Kind string `json:"kind"`
	// Fields is the event's payload.
	Fields Fields `json:"fields,omitempty"`
}

// EventWriter streams events as JSON Lines through an internal buffer.
// Writes are failure-tolerant: the first underlying write error is
// recorded and every later event is counted as dropped instead of
// crashing the campaign. All methods are safe for concurrent use and on
// a nil receiver.
type EventWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	err     error
	seq     int64
	dropped int64
	now     func() time.Time
}

// NewEventWriter wraps w in a buffered JSONL event stream. Callers own
// w's lifecycle; call Flush before closing it.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{bw: bufio.NewWriterSize(w, 32<<10), now: time.Now}
}

// Emit appends one event line. Events arriving after a write error are
// silently dropped (see Err and Dropped).
func (ew *EventWriter) Emit(kind string, fields Fields) {
	if ew == nil {
		return
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		ew.dropped++
		return
	}
	ew.seq++
	line, err := json.Marshal(Event{
		Seq:    ew.seq,
		TS:     ew.now().UTC().Format(time.RFC3339Nano),
		Kind:   kind,
		Fields: fields,
	})
	if err != nil {
		// Unmarshalable payload: drop this event but keep the stream open.
		ew.dropped++
		ew.seq--
		return
	}
	line = append(line, '\n')
	if _, err := ew.bw.Write(line); err != nil {
		ew.err = err
		ew.dropped++
	}
}

// Flush forces buffered lines out to the underlying writer.
func (ew *EventWriter) Flush() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return ew.err
	}
	if err := ew.bw.Flush(); err != nil {
		ew.err = err
	}
	return ew.err
}

// Err returns the first write error, if any.
func (ew *EventWriter) Err() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.err
}

// Dropped returns how many events were discarded after a failure.
func (ew *EventWriter) Dropped() int64 {
	if ew == nil {
		return 0
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.dropped
}
