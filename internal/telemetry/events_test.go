package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// decodeLines parses every JSONL line of a stream.
func decodeLines(t *testing.T, data []byte) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

func TestEventWriterStream(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.now = func() time.Time { return time.Unix(1700000000, 0) }
	ew.Emit(EvCampaignStart, Fields{"program": "p", "budget": 100})
	ew.Emit(EvFirstBug, Fields{"execution": 7})
	ew.Emit(EvCampaignDone, nil)
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := decodeLines(t, buf.Bytes())
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	kinds := []string{EvCampaignStart, EvFirstBug, EvCampaignDone}
	for i, ev := range evs {
		if ev.Kind != kinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, kinds[i])
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.TS == "" {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	if evs[0].Fields["program"] != "p" {
		t.Errorf("fields round-trip failed: %+v", evs[0].Fields)
	}
}

// failingWriter errors on every write.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestEventWriterFailureTolerant(t *testing.T) {
	ew := NewEventWriter(failingWriter{})
	ew.Emit("a", nil)
	if err := ew.Flush(); err == nil {
		t.Fatal("expected flush error from failing writer")
	}
	// Later events are dropped, never panicking or blocking.
	ew.Emit("b", nil)
	ew.Emit("c", nil)
	if ew.Err() == nil {
		t.Fatal("Err() should report the first failure")
	}
	if ew.Dropped() < 2 {
		t.Fatalf("Dropped() = %d, want >= 2", ew.Dropped())
	}
}

func TestEventWriterUnmarshalablePayload(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.Emit("bad", Fields{"ch": make(chan int)}) // not JSON-marshalable
	ew.Emit("good", nil)
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := decodeLines(t, buf.Bytes())
	if len(evs) != 1 || evs[0].Kind != "good" || evs[0].Seq != 1 {
		t.Fatalf("stream after bad payload = %+v", evs)
	}
	if ew.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", ew.Dropped())
	}
}

func TestHubEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	h := NewHub()
	h.Events = NewEventWriter(&buf)
	var s Sink = h
	s.Add(MSchedulesExecuted, 3, L("program", "p"))
	s.Set(MCorpusSize, 4, L("program", "p"))
	s.Observe(MStepsPerSchedule, 17)
	s.Emit(EvTrialDone, Fields{"trial": 0})
	h.Flush()

	snap := h.Snapshot()
	if got := snap.Value(MSchedulesExecuted, L("program", "p")); got != 3 {
		t.Fatalf("schedules = %d, want 3", got)
	}
	if got := snap.Value(MCorpusSize, L("program", "p")); got != 4 {
		t.Fatalf("corpus = %d, want 4", got)
	}
	if hd := snap.Histogram(MStepsPerSchedule); hd == nil || hd.Count != 1 || hd.Sum != 17 {
		t.Fatalf("steps histogram = %+v", hd)
	}
	if evs := decodeLines(t, buf.Bytes()); len(evs) != 1 || evs[0].Kind != EvTrialDone {
		t.Fatalf("events = %+v", evs)
	}
	line := ProgressLine(snap)
	if !strings.Contains(line, "schedules=3") || !strings.Contains(line, "corpus=4") {
		t.Fatalf("progress line = %q", line)
	}
}

func TestReporterTicksAndStops(t *testing.T) {
	var ticks atomic.Int64
	r := StartReporter(time.Millisecond, func() { ticks.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	if ticks.Load() < 3 {
		t.Fatalf("reporter ticked %d times, want >= 3", ticks.Load())
	}
	n := ticks.Load()
	time.Sleep(10 * time.Millisecond)
	if ticks.Load() != n {
		t.Fatal("reporter kept ticking after Stop")
	}

	// Degenerate configurations return a nil, safe reporter.
	StartReporter(0, func() {}).Stop()
	StartReporter(time.Second, nil).Stop()
}
