package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Reporter invokes a callback at a fixed interval on a background
// goroutine — the periodic progress heartbeat of a long campaign.
type Reporter struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartReporter begins ticking every interval. It returns nil (a valid
// no-op reporter) when interval is zero or the callback is nil.
func StartReporter(interval time.Duration, tick func()) *Reporter {
	if interval <= 0 || tick == nil {
		return nil
	}
	r := &Reporter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				tick()
			}
		}
	}()
	return r
}

// Stop halts the reporter and waits for any in-flight tick to finish.
// Safe on a nil receiver and idempotent.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// ProgressLine renders a snapshot's headline counters as one compact
// human-readable line — the default payload for periodic reporting.
func ProgressLine(s Snapshot) string {
	line := fmt.Sprintf("schedules=%d new-pairs=%d combos=%d corpus=%d crashes=%d",
		s.Total(MSchedulesExecuted), s.Total(MRFPairsNew), s.Total(MRFCombosNew),
		s.Total(MCorpusSize), s.Total(MSchedulesCrashed))
	if trials := s.Total(MTrialsDone); trials > 0 {
		line += fmt.Sprintf(" trials=%d", trials)
	}
	return line
}
