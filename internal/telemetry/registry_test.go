package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("sched", L("tool", "RFF")).Add(1)
				r.Gauge("corpus").Set(int64(i))
				r.Histogram("steps").Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("sched", L("tool", "RFF")).Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("steps")
	if h.Count() != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
	wantSum := int64(workers) * perWorker * (perWorker - 1) / 2
	if h.Sum() != wantSum {
		t.Fatalf("hist sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v   int64
		low int64
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8}, {1023, 512}, {1024, 1024},
	}
	for _, c := range cases {
		if got := bucketLow(bucketOf(c.v)); got != c.low {
			t.Errorf("bucketLow(bucketOf(%d)) = %d, want %d", c.v, got, c.low)
		}
	}
}

// buildRegistry populates the same logical state touching series in the
// given order, to prove snapshots are insertion-order independent.
func buildRegistry(order []int) *Registry {
	r := NewRegistry()
	ops := []func(){
		func() { r.Counter("sched", L("tool", "RFF"), L("program", "p1")).Add(7) },
		func() { r.Counter("sched", L("program", "p1"), L("tool", "POS")).Add(3) },
		func() { r.Gauge("corpus", L("program", "p1")).Set(11) },
		func() { r.Histogram("steps").Observe(5) },
		func() { r.Counter("pairs").Add(42) },
	}
	for _, i := range order {
		ops[i]()
	}
	return r
}

func TestSnapshotDeterministic(t *testing.T) {
	a := buildRegistry([]int{0, 1, 2, 3, 4})
	b := buildRegistry([]int{4, 3, 2, 1, 0})
	ja, err := a.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ across insertion orders:\n%s\n---\n%s", ja, jb)
	}
	// Snapshotting the same registry twice is also byte-identical.
	ja2, _ := a.Snapshot().MarshalJSONIndent()
	if !bytes.Equal(ja, ja2) {
		t.Fatal("re-snapshotting the same registry changed the bytes")
	}
	// And the result is valid JSON with sorted metric names.
	var decoded Snapshot
	if err := json.Unmarshal(ja, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for i := 1; i < len(decoded.Metrics); i++ {
		if decoded.Metrics[i-1].Name > decoded.Metrics[i].Name {
			t.Fatalf("metrics unsorted: %q after %q", decoded.Metrics[i].Name, decoded.Metrics[i-1].Name)
		}
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("sched", L("tool", "RFF")).Add(5)
	r.Counter("sched", L("tool", "POS")).Add(2)
	r.Histogram("steps", L("program", "p")).Observe(100)
	s := r.Snapshot()

	if got := s.Value("sched", L("tool", "RFF")); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if got := s.Total("sched"); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	h := s.Histogram("steps", L("program", "p"))
	if h == nil || h.Count != 1 || h.Sum != 100 {
		t.Fatalf("histogram lookup = %+v", h)
	}
	if s.Histogram("steps") != nil {
		t.Fatal("histogram lookup without labels should miss")
	}
	if got := s.Value("missing"); got != 0 {
		t.Fatalf("missing series value = %d, want 0", got)
	}
}

func TestNilHubIsNoop(t *testing.T) {
	var h *Hub
	// None of these may panic, including through the Sink interface.
	var s Sink = h
	s.Add("x", 1)
	s.Set("x", 1, L("a", "b"))
	s.Observe("x", 1)
	s.Emit("kind", Fields{"k": "v"})
	h.Flush()
	if got := h.Snapshot(); len(got.Metrics) != 0 {
		t.Fatalf("nil hub snapshot has %d metrics", len(got.Metrics))
	}
}

// TestSnapshotDeterministicUnderConcurrentWriters drives the same total
// workload into two registries through different goroutine counts and
// interleavings, then requires byte-identical snapshots: a parallel
// campaign's post-barrier metrics must not depend on how its workers'
// updates raced. (Run under -race in CI, this also proves the registry
// safe for concurrent fleet emission.)
func TestSnapshotDeterministicUnderConcurrentWriters(t *testing.T) {
	apply := func(writers int) []byte {
		r := NewRegistry()
		var wg sync.WaitGroup
		// 240 units of work split evenly across the writers, each unit
		// touching counters, gauges, and histograms on shared and
		// per-program series.
		const units = 240
		per := units / writers
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each writer owns the global unit range [w*per, (w+1)*per),
				// so the union of all writers' work is the same 240 units
				// at every writer count — only the interleaving differs.
				for g := w * per; g < (w+1)*per; g++ {
					r.Counter("fleet_cells_done").Add(1)
					r.Counter("schedules_executed", L("program", "p"+string(rune('0'+g%3)))).Add(2)
					r.Histogram("steps").Observe(int64(g % 7))
				}
			}(w)
		}
		wg.Wait()
		// Gauges are last-write-wins; a deterministic campaign sets them
		// to a merge-time value after the barrier, as the fleet does.
		r.Gauge("fleet_workers_busy").Set(0)
		data, err := r.Snapshot().MarshalJSONIndent()
		if err != nil {
			t.Fatalf("marshaling snapshot: %v", err)
		}
		return data
	}
	base := apply(1)
	for _, writers := range []int{2, 4, 8} {
		if got := apply(writers); !bytes.Equal(got, base) {
			t.Errorf("snapshot with %d writers diverged:\n%s\nvs\n%s", writers, base, got)
		}
	}
}
