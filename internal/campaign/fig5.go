package campaign

import (
	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/sched"
)

// Distribution is the Figure 5 data for one configuration: how often each
// distinct reads-from combination was exercised over a fixed number of
// schedules, in first-observation order.
type Distribution struct {
	Config string
	// Freq[i] is the observation count of the i-th combination.
	Freq []int
	// Schedules is the total executions performed.
	Schedules int
}

// Combinations returns the number of distinct combinations observed.
func (d *Distribution) Combinations() int { return len(d.Freq) }

// MaxShare returns the fraction of all executions spent in the single most
// frequent combination — the paper's ">50% in one sequence" headline for
// feedback-less exploration.
func (d *Distribution) MaxShare() float64 {
	if d.Schedules == 0 {
		return 0
	}
	max := 0
	for _, f := range d.Freq {
		if f > max {
			max = f
		}
	}
	return float64(max) / float64(d.Schedules)
}

// RFDistributionPOS measures the reads-from combination distribution of
// plain POS over n schedules (Figure 5, top).
func RFDistributionPOS(p bench.Program, n int, seed int64, maxSteps int) *Distribution {
	fb := core.NewFeedback()
	s := sched.NewPOS()
	// One intern table and recycler for the whole measurement: feedback
	// keys stay dense integers and trace arrays are reused run to run.
	intern := exec.NewInternTable()
	recycler := exec.NewRecycler()
	for i := 1; i <= n; i++ {
		res := exec.Run(p.Name, p.Body, exec.Config{
			Scheduler: s,
			Seed:      subSeed(seed, i),
			MaxSteps:  maxSteps,
			Intern:    intern,
			Recycle:   recycler,
		})
		fb.Observe(res.Trace)
		recycler.Reclaim(res.Trace)
	}
	return &Distribution{Config: "POS", Freq: fb.SigFrequencies(), Schedules: n}
}

// RFDistributionRFF measures the distribution of the full fuzzer (Figure
// 5, bottom) or of its feedback-ablated variant (RQ3) over n schedules;
// bugs do not stop the campaign, matching the paper's 10000-schedule runs.
func RFDistributionRFF(p bench.Program, n int, seed int64, maxSteps int, feedback bool) *Distribution {
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget:          n,
		MaxSteps:        maxSteps,
		Seed:            seed,
		DisableFeedback: !feedback,
	}).Run()
	name := "RFF"
	if !feedback {
		name = "RFF w/o feedback"
	}
	return &Distribution{Config: name, Freq: rep.SigFrequencies, Schedules: rep.Executions}
}
