// Package campaign runs the evaluation matrix: every (tool, program,
// trial) combination with a schedule budget, collecting schedules-to-
// first-bug outcomes. It is the engine behind the Figure 4 curves, the
// Appendix B table, and the RQ2/RQ4 comparisons.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/fleet"
	"rff/internal/shard"
	"rff/internal/stats"
	"rff/internal/telemetry"
)

// Outcome is the result of one campaign trial.
type Outcome struct {
	// FirstBug is the number of schedules until the first failure
	// (0 = no bug found within the budget).
	FirstBug int
	// Executions is the number of schedules actually run.
	Executions int
	// Budget is the schedule budget the trial ran under.
	Budget int
	// CorpusSize and UniqueSigs carry the greybox fuzzer's final
	// feedback state (zero for tools without a corpus); the parallel-
	// determinism golden tests compare them across worker counts, so a
	// merge bug that perturbs anything beyond the first-bug schedule
	// still trips.
	CorpusSize int
	UniqueSigs int
	// Err records an infrastructure failure — e.g. a panic recovered
	// inside the tool, or a cancelled trial deadline — that aborted the
	// trial. Such trials count as censored no-bug outcomes in the
	// statistics.
	Err string
	// Stack is the recovered panic's stack trace (scrubbed of its
	// nondeterministic goroutine header), empty unless the trial
	// panicked.
	Stack string
}

// Found reports whether the trial exposed the bug.
func (o Outcome) Found() bool { return o.FirstBug > 0 }

// Errored reports whether the trial aborted with an infrastructure
// failure instead of running to its budget.
func (o Outcome) Errored() bool { return o.Err != "" }

// Sample converts the outcome to a survival observation (censored at the
// budget when no bug was found).
func (o Outcome) Sample() stats.Sample {
	if o.Found() {
		return stats.Sample{Time: float64(o.FirstBug), Observed: true}
	}
	return stats.Sample{Time: float64(o.Budget), Observed: false}
}

// Tool is one concurrency testing technique under evaluation. Concrete
// tools are constructed exclusively through the internal/strategy
// registry, which resolves parameterized spec strings ("rff", "pct:7",
// ...) to configured Tool values.
type Tool interface {
	// Name identifies the tool in reports ("RFF", "POS", "PCT3", ...).
	// It is the canonical strategy name: seeds, telemetry labels, and
	// result ordering all key on it.
	Name() string
	// Deterministic tools (model checkers) run a single trial.
	Deterministic() bool
	// Run performs one trial on the program. Cancelling ctx stops the
	// trial within one scheduling step; the interrupted trial records an
	// Err and counts as a censored no-bug outcome.
	Run(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64) Outcome
}

// ResultObserver receives every counted execution's result during a trial
// — the hook the conformance harness threads through every tool to compare
// observed behaviors against the systematically enumerated ground truth.
// Observers run before the trace is reclaimed and must not retain it.
type ResultObserver func(res *exec.Result)

// ObservableTool is the optional Tool extension the budgeted matrix
// runner uses to watch the executions of the trials it schedules:
// WithObserver returns a copy of the tool whose runs additionally
// invoke obs, chained after any observer the tool already carries.
// Every built-in tool implements it; a tool that does not simply runs
// unobserved (its budget cells earn zero coverage reward).
type ObservableTool interface {
	Tool
	WithObserver(obs ResultObserver) Tool
}

// chainObservers composes two observers, tolerating nil on either side.
func chainObservers(a, b ResultObserver) ResultObserver {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(res *exec.Result) {
		a(res)
		b(res)
	}
}

// subSeed derives a per-execution seed from a trial seed; splitmix64-style
// mixing keeps streams independent across executions.
func subSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// splitmix is one splitmix64 scrambling round.
func splitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TrialSeed derives one matrix cell's RNG seed purely from the campaign
// seed and the cell's identity (tool, program, trial index). Because no
// stream position or worker assignment enters the hash, sequential and
// parallel matrix runs — at any worker count and completion order —
// draw identical seeds for identical cells.
func TrialSeed(base int64, tool, program string, trial int) int64 {
	// Scrambling the program hash before folding in the tool hash keeps
	// concatenation collisions and (tool, program) swaps apart.
	h := splitmix(hashString(tool) ^ splitmix(hashString(program)))
	z := splitmix(uint64(base) ^ h)
	z = splitmix(z ^ uint64(uint32(trial)))
	return int64(z)
}

// --- RFF ---------------------------------------------------------------------

// RFFTool runs the core greybox fuzzer.
type RFFTool struct {
	// NoFeedback ablates the greybox feedback (the "RFF w/o feedback"
	// configuration of RQ3).
	NoFeedback bool
	// Telemetry, if non-nil, is threaded into every trial's fuzzer (and
	// through it the execution engine).
	Telemetry telemetry.Sink
	// Observer, if non-nil, sees every counted execution's result.
	// Sharded trials (Shards >= 1) narrow the contract: the observer is
	// invoked only for counted *failing* executions, with a synthesized
	// result carrying the program, seed, failure, and replay decisions
	// but no live trace.
	Observer ResultObserver
	// Shards, when >= 1, runs each trial on the sharded work-stealing
	// runner (internal/shard) with that many worker shards instead of
	// the sequential fuzzer. The sharded runner is a different — still
	// fully deterministic — algorithm: its reports are bit-identical
	// across reruns and shard counts, but not to the sequential loop's.
	// 0 keeps the sequential fuzzer.
	Shards int
	// ShardFast drops the sharded runner's epoch barrier (shard.Options
	// .Fast): maximum throughput, nondeterministic results. Only
	// meaningful with Shards >= 1.
	ShardFast bool
}

// Name implements Tool.
func (t RFFTool) Name() string {
	if t.NoFeedback {
		return "RFF-nofb"
	}
	return "RFF"
}

// Deterministic implements Tool.
func (t RFFTool) Deterministic() bool { return false }

// WithObserver implements ObservableTool.
func (t RFFTool) WithObserver(obs ResultObserver) Tool {
	t.Observer = chainObservers(t.Observer, obs)
	return t
}

// Run implements Tool.
func (t RFFTool) Run(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64) Outcome {
	return t.runScratch(ctx, p, budget, maxSteps, seed, nil)
}

// runScratch implements scratchRunner: a fleet worker's recycler carries
// trace buffers across the trials the worker runs. Cancelling ctx stops
// the fuzzer within one scheduling step of the in-flight execution; the
// interrupted trial records how far it got and an Err.
func (t RFFTool) runScratch(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64, ws *workerState) Outcome {
	if t.Shards >= 1 {
		return t.runSharded(ctx, p, budget, maxSteps, seed)
	}
	opts := core.Options{
		Budget:          budget,
		MaxSteps:        maxSteps,
		Seed:            seed,
		DisableFeedback: t.NoFeedback,
		StopAtFirstBug:  true,
		Telemetry:       t.Telemetry,
		ResultObserver:  t.Observer,
	}
	if ws != nil {
		opts.Recycle = ws.recycler
	}
	rep := core.NewFuzzer(p.Name, p.Body, opts).RunContext(ctx)
	out := Outcome{
		FirstBug:   rep.FirstBug,
		Executions: rep.Executions,
		Budget:     budget,
		CorpusSize: rep.CorpusSize,
		UniqueSigs: rep.UniqueSigs,
	}
	if err := ctx.Err(); err != nil && rep.FirstBug == 0 && rep.Executions < budget {
		out.Err = fmt.Sprintf("trial aborted after %d schedules: %v", rep.Executions, err)
	}
	return out
}

// runSharded runs the trial on the work-stealing sharded runner. The
// shard runner owns its own per-shard recyclers, so the fleet worker's
// scratch recycler is not threaded through.
func (t RFFTool) runSharded(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64) Outcome {
	opts := shard.Options{
		Budget:          budget,
		MaxSteps:        maxSteps,
		Seed:            seed,
		DisableFeedback: t.NoFeedback,
		StopAtFirstBug:  true,
		Telemetry:       t.Telemetry,
		Shards:          t.Shards,
		Fast:            t.ShardFast,
	}
	if t.Observer != nil {
		opts.FailureObserver = func(res *exec.Result) { t.Observer(res) }
	}
	rep := shard.FuzzContext(ctx, p.Name, p.Body, opts)
	out := Outcome{
		FirstBug:   rep.FirstBug,
		Executions: rep.Executions,
		Budget:     budget,
		CorpusSize: rep.CorpusSize,
		UniqueSigs: rep.UniqueSigs,
	}
	if err := ctx.Err(); err != nil && rep.FirstBug == 0 && rep.Executions < budget {
		out.Err = fmt.Sprintf("trial aborted after %d schedules: %v", rep.Executions, err)
	}
	return out
}

// --- scheduler-based tools ------------------------------------------------------

// SchedulerTool evaluates a per-execution scheduler (POS, PCT, Random,
// Q-Learning): the program is run repeatedly under fresh seeds until a bug
// or the budget. The factory is invoked once per trial so cross-execution
// state (PCT length estimates, Q-tables) accumulates within a trial.
type SchedulerTool struct {
	ToolName string
	Factory  func() exec.Scheduler
	// Telemetry, if non-nil, is threaded into every execution's engine.
	Telemetry telemetry.Sink
	// Observer, if non-nil, sees every counted execution's result.
	Observer ResultObserver
}

// Name implements Tool.
func (t SchedulerTool) Name() string { return t.ToolName }

// Deterministic implements Tool.
func (t SchedulerTool) Deterministic() bool { return false }

// WithObserver implements ObservableTool.
func (t SchedulerTool) WithObserver(obs ResultObserver) Tool {
	t.Observer = chainObservers(t.Observer, obs)
	return t
}

// Run implements Tool.
func (t SchedulerTool) Run(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64) Outcome {
	return t.runScratch(ctx, p, budget, maxSteps, seed, nil)
}

// runScratch implements scratchRunner. ctx is threaded into every
// execution's engine (stopping a cancelled execution within one
// scheduling step) and checked between executions; the interrupted
// trial records how far it got and an Err, counting as a censored
// no-bug outcome.
func (t SchedulerTool) runScratch(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64, ws *workerState) Outcome {
	s := t.Factory()
	out := Outcome{Budget: budget}
	var labels []telemetry.Label
	if t.Telemetry != nil {
		labels = []telemetry.Label{telemetry.L("tool", t.ToolName), telemetry.L("program", p.Name)}
	}
	// The trial never inspects traces after the crash check, so their
	// backing arrays recycle straight into the next execution — and,
	// under a fleet worker, across every trial the worker runs.
	recycler := exec.NewRecycler()
	if ws != nil {
		recycler = ws.recycler
	}
	for i := 1; i <= budget; i++ {
		if err := ctx.Err(); err != nil {
			out.Err = fmt.Sprintf("trial aborted after %d schedules: %v", out.Executions, err)
			break
		}
		res := exec.Run(p.Name, p.Body, exec.Config{
			Scheduler: s,
			Seed:      subSeed(seed, i),
			Ctx:       ctx,
			MaxSteps:  maxSteps,
			Telemetry: t.Telemetry,
			Recycle:   recycler,
		})
		if res.Cancelled {
			// The abandoned partial execution is discarded uncounted.
			recycler.Reclaim(res.Trace)
			out.Err = fmt.Sprintf("trial aborted after %d schedules: %v", out.Executions, ctx.Err())
			break
		}
		out.Executions = i
		if t.Observer != nil {
			t.Observer(res)
		}
		if tel := t.Telemetry; tel != nil {
			tel.Add(telemetry.MSchedulesExecuted, 1, labels...)
			if res.Buggy() {
				tel.Add(telemetry.MSchedulesCrashed, 1, labels...)
			}
		}
		crashed := res.Buggy()
		recycler.Reclaim(res.Trace)
		if crashed {
			out.FirstBug = i
			break
		}
	}
	return out
}

// --- systematic tools ------------------------------------------------------------

// SystematicTool adapts a deterministic enumerative explorer (the GenMC
// and PERIOD stand-ins built by internal/strategy on top of
// internal/systematic) to the Tool interface. The trial seed is ignored:
// the exploration is a pure function of the program and budget.
type SystematicTool struct {
	ToolName string
	// Observer, if non-nil, sees every counted execution's result; Run
	// hands it to Explore so WithObserver composition reaches the
	// enumeration loop.
	Observer ResultObserver
	// Explore runs the enumeration under ctx — cancellation must stop it
	// within one scheduling step — and returns the trial outcome. obs
	// (possibly nil) must see every counted execution.
	Explore func(ctx context.Context, p bench.Program, budget, maxSteps int, obs ResultObserver) Outcome
}

// Name implements Tool.
func (t SystematicTool) Name() string { return t.ToolName }

// Deterministic implements Tool.
func (t SystematicTool) Deterministic() bool { return true }

// WithObserver implements ObservableTool.
func (t SystematicTool) WithObserver(obs ResultObserver) Tool {
	t.Observer = chainObservers(t.Observer, obs)
	return t
}

// Run implements Tool.
func (t SystematicTool) Run(ctx context.Context, p bench.Program, budget, maxSteps int, _ int64) Outcome {
	return t.Explore(ctx, p, budget, maxSteps, t.Observer)
}

// --- matrix runner ----------------------------------------------------------------

// MatrixOptions configures a full evaluation run.
type MatrixOptions struct {
	// Trials per (tool, program); deterministic tools always run once.
	Trials int
	// Budget is the schedule budget per trial.
	Budget int
	// MaxSteps bounds each execution (0 = engine default).
	MaxSteps int
	// BaseSeed makes the whole matrix reproducible: every cell's seed is
	// TrialSeed(BaseSeed, tool, program, trial), so results are
	// bit-identical at any worker count.
	BaseSeed int64
	// Workers caps concurrent trials (0 = GOMAXPROCS).
	Workers int
	// Parallelism is the legacy name for Workers, honoured when Workers
	// is 0.
	Parallelism int
	// TrialTimeout, if positive, arms a wall-clock deadline on every
	// trial. Scheduler-based tools (POS, PCT, Random, Q-Learning) stop
	// at the deadline mid-trial and record an errored outcome; other
	// tools only observe it between trials. Note that a timeout makes
	// outcomes wall-clock-dependent — leave it 0 for reproducible
	// matrices.
	TrialTimeout time.Duration
	// Progress, if non-nil, is called after each completed trial.
	Progress func(done, total int)
	// Telemetry, if non-nil, receives matrix-level metrics (completed
	// trials per tool/program, recovered trial panics, fleet worker
	// metrics) and the campaign event stream (campaign-start,
	// trial-done, trial_error, campaign-done).
	Telemetry telemetry.Sink
	// Budgeter, when non-nil with a non-empty Policy, switches the
	// matrix to adaptive budget scheduling: the total execution pool
	// (Budget x Trials x cells) is spent in epochs, reallocated across
	// (tool, program) cells by the named policy. Callers must validate
	// the config first (budget.Config.Validate); an invalid policy
	// panics here. TrialTimeout applies per epoch cell rather than per
	// trial in this mode.
	Budgeter *budget.Config
}

// workerState is the campaign's per-fleet-worker scratch: allocation
// caches that are unsafe to share across threads but profit from reuse
// across the trials one worker runs sequentially. The abstract-event
// InternTable deliberately stays trial-owned (inside each fuzzer):
// dense EventIDs are assigned in first-intern order, so a worker-shared
// table would leak trial scheduling into ID assignment.
type workerState struct {
	recycler *exec.Recycler
}

// scratchRunner is the optional Tool extension the matrix runner uses
// when it owns the trial's execution context: ctx carries the trial
// deadline and ws the worker's caches.
type scratchRunner interface {
	runScratch(ctx context.Context, p bench.Program, budget, maxSteps int, seed int64, ws *workerState) Outcome
}

// MatrixResult holds every trial outcome, indexed by tool then program.
type MatrixResult struct {
	Tools    []string
	Programs []string
	Budget   int
	// Outcomes[tool][program] is the per-trial outcome list.
	Outcomes map[string]map[string][]Outcome
	// BudgetReport records the adaptive allocation schedule; nil for
	// fixed-budget (non-Budgeter) matrices.
	BudgetReport *BudgetReport `json:",omitempty"`
}

// RunMatrix executes the evaluation matrix, parallelizing across trials
// on a fleet worker pool. See RunMatrixContext for the guarantees.
func RunMatrix(tools []Tool, programs []bench.Program, opts MatrixOptions) *MatrixResult {
	return RunMatrixContext(context.Background(), tools, programs, opts)
}

// RunMatrixContext executes the evaluation matrix under ctx. The matrix
// decomposes into independent (tool, program, trial) cells; a fleet
// pool runs them concurrently (MatrixOptions.Workers bounds the pool)
// and the merge barrier re-orders completed cells into the exact
// sequential result. Every cell draws its seed from TrialSeed, no
// mutable state is shared across workers, and aggregate telemetry is
// merged at the barrier in cell order — so the returned MatrixResult is
// bit-identical at any worker count.
//
// A panicking trial is contained by the pool: its outcome records the
// error and the scrubbed panic stack, and the matrix keeps running.
// Cancelling ctx aborts unstarted cells (their outcomes record the
// cancellation error); cells already inside a non-interruptible tool
// finish first.
func RunMatrixContext(ctx context.Context, tools []Tool, programs []bench.Program, opts MatrixOptions) *MatrixResult {
	if opts.Trials <= 0 {
		opts.Trials = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 2000
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = opts.Parallelism
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Budgeter != nil && opts.Budgeter.Policy != "" {
		return runMatrixBudgeted(ctx, tools, programs, opts, workers)
	}

	res := &MatrixResult{
		Budget:   opts.Budget,
		Outcomes: make(map[string]map[string][]Outcome),
	}
	type job struct {
		tool    Tool
		program bench.Program
		trial   int
		budget  int
	}
	var jobs []job
	for _, tl := range tools {
		res.Tools = append(res.Tools, tl.Name())
		res.Outcomes[tl.Name()] = make(map[string][]Outcome)
		trials := opts.Trials
		budget := opts.Budget
		if tl.Deterministic() {
			// Deterministic tools run once but receive the same total
			// compute as a randomized tool's trial set (the paper gives
			// every tool the same wall-clock budget).
			trials = 1
			budget *= opts.Trials
		}
		for _, p := range programs {
			res.Outcomes[tl.Name()][p.Name] = make([]Outcome, trials)
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{tl, p, tr, budget})
			}
		}
	}
	for _, p := range programs {
		res.Programs = append(res.Programs, p.Name)
	}

	if t := opts.Telemetry; t != nil {
		t.Emit(telemetry.EvCampaignStart, telemetry.Fields{
			"tools":    res.Tools,
			"programs": len(res.Programs),
			"trials":   opts.Trials,
			"budget":   opts.Budget,
			"jobs":     len(jobs),
			"workers":  workers,
		})
	}

	cells := make([]fleet.Cell[Outcome], len(jobs))
	for i, j := range jobs {
		j := j
		cells[i] = fleet.Cell[Outcome]{
			ID: fmt.Sprintf("%s/%s[%d]", j.tool.Name(), j.program.Name, j.trial),
			// The canonical strategy name labels the fleet's per-cell
			// telemetry series, keeping per-strategy durations apart.
			Spec: j.tool.Name(),
			Run: func(ctx context.Context, s *fleet.Scratch) (Outcome, error) {
				seed := TrialSeed(opts.BaseSeed, j.tool.Name(), j.program.Name, j.trial)
				var out Outcome
				if sr, ok := j.tool.(scratchRunner); ok {
					ws, _ := s.State.(*workerState)
					out = sr.runScratch(ctx, j.program, j.budget, opts.MaxSteps, seed, ws)
				} else {
					out = j.tool.Run(ctx, j.program, j.budget, opts.MaxSteps, seed)
				}
				// Streamed while the matrix runs, tagged with the full
				// cell identity so interleaved workers stay told apart.
				// The terminal event of a panicking cell is instead the
				// trial_error emitted at the merge barrier.
				if t := opts.Telemetry; t != nil && !out.Errored() {
					t.Emit(telemetry.EvTrialDone, telemetry.Fields{
						"tool":       j.tool.Name(),
						"program":    j.program.Name,
						"trial":      j.trial,
						"executions": out.Executions,
						"first_bug":  out.FirstBug,
						"worker":     s.Worker,
					})
				}
				return out, nil
			},
		}
	}

	results := fleet.Run(ctx, cells, fleet.Options{
		Workers:     workers,
		CellTimeout: opts.TrialTimeout,
		NewState:    func(int) any { return &workerState{recycler: exec.NewRecycler()} },
		OnDone:      opts.Progress,
		Telemetry:   opts.Telemetry,
	})

	// Merge barrier: fold completed cells back into matrix order. The
	// result maps, the aggregate counters, and the trial_error events
	// are all populated in deterministic cell order here, independent of
	// which worker finished which cell when.
	for i, r := range results {
		j := jobs[i]
		out := r.Value
		if r.Err != nil {
			out = Outcome{Budget: j.budget, Err: r.Err.Error(), Stack: r.Stack}
		}
		res.Outcomes[j.tool.Name()][j.program.Name][j.trial] = out
		if t := opts.Telemetry; t != nil {
			labels := []telemetry.Label{{Name: "tool", Value: j.tool.Name()}, {Name: "program", Value: j.program.Name}}
			t.Add(telemetry.MTrialsDone, 1, labels...)
			if out.Errored() {
				t.Add(telemetry.MTrialPanics, 1, labels...)
				fields := telemetry.Fields{
					"tool":    j.tool.Name(),
					"program": j.program.Name,
					"trial":   j.trial,
					"error":   out.Err,
				}
				if out.Stack != "" {
					fields["stack"] = out.Stack
				}
				t.Emit(telemetry.EvTrialError, fields)
			}
		}
	}
	if t := opts.Telemetry; t != nil {
		t.Emit(telemetry.EvCampaignDone, telemetry.Fields{
			"jobs":   len(jobs),
			"errors": len(res.TrialErrors()),
		})
	}
	return res
}

// TrialErrors lists the trials that aborted with an infrastructure
// error, as "tool/program[trial]: err" strings in matrix order. A trial
// that died in a panic carries its (indented) stack trace after the
// error line.
func (m *MatrixResult) TrialErrors() []string {
	var out []string
	for _, tool := range m.Tools {
		for _, p := range m.Programs {
			for tr, o := range m.Outcomes[tool][p] {
				if !o.Errored() {
					continue
				}
				s := fmt.Sprintf("%s/%s[%d]: %s", tool, p, tr, o.Err)
				if o.Stack != "" {
					s += "\n    " + strings.ReplaceAll(strings.TrimRight(o.Stack, "\n"), "\n", "\n    ")
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// hashString is a small FNV-1a for seed derivation.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Samples returns the survival samples of a (tool, program) cell.
func (m *MatrixResult) Samples(tool, program string) []stats.Sample {
	outs := m.Outcomes[tool][program]
	ss := make([]stats.Sample, len(outs))
	for i, o := range outs {
		ss[i] = o.Sample()
	}
	return ss
}

// MeanStd returns the mean and standard deviation of schedules-to-bug over
// the trials that found the bug, plus how many trials missed it.
func (m *MatrixResult) MeanStd(tool, program string) (mean, std float64, missed int) {
	var xs []float64
	for _, o := range m.Outcomes[tool][program] {
		if o.Found() {
			xs = append(xs, float64(o.FirstBug))
		} else {
			missed++
		}
	}
	return stats.Mean(xs), stats.Std(xs), missed
}

// BugsFoundPerTrial returns, for each trial index, how many programs the
// tool found a bug in — the distribution behind the paper's "finds bugs in
// μ = 46.1 programs" comparison.
func (m *MatrixResult) BugsFoundPerTrial(tool string) []float64 {
	progs := m.Outcomes[tool]
	trials := 0
	for _, outs := range progs {
		if len(outs) > trials {
			trials = len(outs)
		}
	}
	counts := make([]float64, trials)
	for _, outs := range progs {
		for tr, o := range outs {
			if o.Found() {
				counts[tr]++
			}
		}
	}
	return counts
}

// CurvePoint is one step of a cumulative bugs-vs-schedules curve.
type CurvePoint struct {
	Schedules int
	Bugs      int
}

// CumulativeCurve builds the Figure 4 series for a tool: for every trial
// and program where a bug was found, a point at (schedules, cumulative
// bugs found at or below that schedule count), across all trials.
func (m *MatrixResult) CumulativeCurve(tool string) []CurvePoint {
	var times []int
	for _, outs := range m.Outcomes[tool] {
		for _, o := range outs {
			if o.Found() {
				times = append(times, o.FirstBug)
			}
		}
	}
	if len(times) == 0 {
		return nil
	}
	// Sort ascending and emit cumulative counts.
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	pts := make([]CurvePoint, 0, len(times))
	for i, t := range times {
		pts = append(pts, CurvePoint{Schedules: t, Bugs: i + 1})
	}
	return pts
}

// SignificantWins counts the programs where tool a finds bugs in
// significantly fewer schedules than tool b by the log-rank test at the
// paper's alpha of 0.05 — the RQ1/RQ2 per-program comparisons.
func (m *MatrixResult) SignificantWins(a, b string, alpha float64) (aWins, bWins int) {
	for _, p := range m.Programs {
		sa := m.Samples(a, p)
		sb := m.Samples(b, p)
		if stats.SignificantlyFewer(sa, sb, alpha) {
			aWins++
		}
		if stats.SignificantlyFewer(sb, sa, alpha) {
			bWins++
		}
	}
	return
}
