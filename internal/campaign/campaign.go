// Package campaign runs the evaluation matrix: every (tool, program,
// trial) combination with a schedule budget, collecting schedules-to-
// first-bug outcomes. It is the engine behind the Figure 4 curves, the
// Appendix B table, and the RQ2/RQ4 comparisons.
package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"rff/internal/bench"
	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/qlearn"
	"rff/internal/sched"
	"rff/internal/stats"
	"rff/internal/systematic"
	"rff/internal/telemetry"
)

// Outcome is the result of one campaign trial.
type Outcome struct {
	// FirstBug is the number of schedules until the first failure
	// (0 = no bug found within the budget).
	FirstBug int
	// Executions is the number of schedules actually run.
	Executions int
	// Budget is the schedule budget the trial ran under.
	Budget int
	// Err records an infrastructure failure — e.g. a panic recovered
	// inside the tool — that aborted the trial. Such trials count as
	// censored no-bug outcomes in the statistics.
	Err string
}

// Found reports whether the trial exposed the bug.
func (o Outcome) Found() bool { return o.FirstBug > 0 }

// Errored reports whether the trial aborted with an infrastructure
// failure instead of running to its budget.
func (o Outcome) Errored() bool { return o.Err != "" }

// Sample converts the outcome to a survival observation (censored at the
// budget when no bug was found).
func (o Outcome) Sample() stats.Sample {
	if o.Found() {
		return stats.Sample{Time: float64(o.FirstBug), Observed: true}
	}
	return stats.Sample{Time: float64(o.Budget), Observed: false}
}

// Tool is one concurrency testing technique under evaluation.
type Tool interface {
	// Name identifies the tool in reports ("RFF", "POS", "PCT3", ...).
	Name() string
	// Deterministic tools (model checkers) run a single trial.
	Deterministic() bool
	// Run performs one trial on the program.
	Run(p bench.Program, budget, maxSteps int, seed int64) Outcome
}

// subSeed derives a per-execution seed from a trial seed; splitmix64-style
// mixing keeps streams independent across executions.
func subSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// --- RFF ---------------------------------------------------------------------

// RFFTool runs the core greybox fuzzer.
type RFFTool struct {
	// NoFeedback ablates the greybox feedback (the "RFF w/o feedback"
	// configuration of RQ3).
	NoFeedback bool
	// Telemetry, if non-nil, is threaded into every trial's fuzzer (and
	// through it the execution engine).
	Telemetry telemetry.Sink
}

// Name implements Tool.
func (t RFFTool) Name() string {
	if t.NoFeedback {
		return "RFF-nofb"
	}
	return "RFF"
}

// Deterministic implements Tool.
func (t RFFTool) Deterministic() bool { return false }

// Run implements Tool.
func (t RFFTool) Run(p bench.Program, budget, maxSteps int, seed int64) Outcome {
	rep := core.NewFuzzer(p.Name, p.Body, core.Options{
		Budget:          budget,
		MaxSteps:        maxSteps,
		Seed:            seed,
		DisableFeedback: t.NoFeedback,
		StopAtFirstBug:  true,
		Telemetry:       t.Telemetry,
	}).Run()
	return Outcome{FirstBug: rep.FirstBug, Executions: rep.Executions, Budget: budget}
}

// --- scheduler-based tools ------------------------------------------------------

// SchedulerTool evaluates a per-execution scheduler (POS, PCT, Random,
// Q-Learning): the program is run repeatedly under fresh seeds until a bug
// or the budget. The factory is invoked once per trial so cross-execution
// state (PCT length estimates, Q-tables) accumulates within a trial.
type SchedulerTool struct {
	ToolName string
	Factory  func() exec.Scheduler
	// Telemetry, if non-nil, is threaded into every execution's engine.
	Telemetry telemetry.Sink
}

// Name implements Tool.
func (t SchedulerTool) Name() string { return t.ToolName }

// Deterministic implements Tool.
func (t SchedulerTool) Deterministic() bool { return false }

// Run implements Tool.
func (t SchedulerTool) Run(p bench.Program, budget, maxSteps int, seed int64) Outcome {
	s := t.Factory()
	out := Outcome{Budget: budget}
	var labels []telemetry.Label
	if t.Telemetry != nil {
		labels = []telemetry.Label{telemetry.L("tool", t.ToolName), telemetry.L("program", p.Name)}
	}
	// The trial never inspects traces after the crash check, so their
	// backing arrays recycle straight into the next execution.
	recycler := exec.NewRecycler()
	for i := 1; i <= budget; i++ {
		res := exec.Run(p.Name, p.Body, exec.Config{
			Scheduler: s,
			Seed:      subSeed(seed, i),
			MaxSteps:  maxSteps,
			Telemetry: t.Telemetry,
			Recycle:   recycler,
		})
		out.Executions = i
		if tel := t.Telemetry; tel != nil {
			tel.Add(telemetry.MSchedulesExecuted, 1, labels...)
			if res.Buggy() {
				tel.Add(telemetry.MSchedulesCrashed, 1, labels...)
			}
		}
		crashed := res.Buggy()
		recycler.Reclaim(res.Trace)
		if crashed {
			out.FirstBug = i
			break
		}
	}
	return out
}

// NewPOSTool returns the Partial Order Sampling baseline.
func NewPOSTool() SchedulerTool {
	return SchedulerTool{ToolName: "POS", Factory: func() exec.Scheduler { return sched.NewPOS() }}
}

// NewPCTTool returns the PCT baseline at the given depth (the paper uses 3).
func NewPCTTool(depth int) SchedulerTool {
	return SchedulerTool{
		ToolName: fmt.Sprintf("PCT%d", depth),
		Factory:  func() exec.Scheduler { return sched.NewPCT(depth) },
	}
}

// NewRandomTool returns the naive uniform random walk.
func NewRandomTool() SchedulerTool {
	return SchedulerTool{ToolName: "Random", Factory: func() exec.Scheduler { return sched.NewRandom() }}
}

// NewQLearnTool returns the Q-Learning-RF baseline of RQ4.
func NewQLearnTool() SchedulerTool {
	return SchedulerTool{
		ToolName: "QLearning-RF",
		Factory:  func() exec.Scheduler { return qlearn.New(qlearn.Config{}) },
	}
}

// --- systematic tools ------------------------------------------------------------

// GenMCTool is the exhaustive-enumeration stand-in for the GenMC stateless
// model checker.
type GenMCTool struct{}

// Name implements Tool.
func (GenMCTool) Name() string { return "GenMC*" }

// Deterministic implements Tool.
func (GenMCTool) Deterministic() bool { return true }

// Run implements Tool.
func (GenMCTool) Run(p bench.Program, budget, maxSteps int, _ int64) Outcome {
	rep := systematic.Explore(p.Name, p.Body, systematic.ExploreOptions{
		MaxExecutions:  budget,
		MaxSteps:       maxSteps,
		StopAtFirstBug: true,
	})
	return Outcome{FirstBug: rep.FirstBug, Executions: rep.Executions, Budget: budget}
}

// PeriodTool is the preemption-bounded systematic stand-in for PERIOD.
type PeriodTool struct{}

// Name implements Tool.
func (PeriodTool) Name() string { return "PERIOD*" }

// Deterministic implements Tool.
func (PeriodTool) Deterministic() bool { return true }

// Run implements Tool.
func (PeriodTool) Run(p bench.Program, budget, maxSteps int, _ int64) Outcome {
	rep := systematic.ICB(p.Name, p.Body, systematic.ICBOptions{
		MaxExecutions:  budget,
		MaxSteps:       maxSteps,
		StopAtFirstBug: true,
	})
	return Outcome{FirstBug: rep.FirstBug, Executions: rep.Executions, Budget: budget}
}

// DefaultTools returns the evaluation's tool lineup in table order.
func DefaultTools() []Tool {
	return []Tool{
		NewPCTTool(3),
		PeriodTool{},
		RFFTool{},
		NewPOSTool(),
		NewQLearnTool(),
		GenMCTool{},
	}
}

// --- matrix runner ----------------------------------------------------------------

// MatrixOptions configures a full evaluation run.
type MatrixOptions struct {
	// Trials per (tool, program); deterministic tools always run once.
	Trials int
	// Budget is the schedule budget per trial.
	Budget int
	// MaxSteps bounds each execution (0 = engine default).
	MaxSteps int
	// BaseSeed makes the whole matrix reproducible.
	BaseSeed int64
	// Parallelism caps concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, is called after each completed trial.
	Progress func(done, total int)
	// Telemetry, if non-nil, receives matrix-level metrics (completed
	// trials per tool/program, recovered trial panics) and the campaign
	// event stream (campaign-start, trial-done, campaign-done).
	Telemetry telemetry.Sink
}

// MatrixResult holds every trial outcome, indexed by tool then program.
type MatrixResult struct {
	Tools    []string
	Programs []string
	Budget   int
	// Outcomes[tool][program] is the per-trial outcome list.
	Outcomes map[string]map[string][]Outcome
}

// RunMatrix executes the evaluation matrix, parallelizing across trials.
func RunMatrix(tools []Tool, programs []bench.Program, opts MatrixOptions) *MatrixResult {
	if opts.Trials <= 0 {
		opts.Trials = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 2000
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}

	res := &MatrixResult{
		Budget:   opts.Budget,
		Outcomes: make(map[string]map[string][]Outcome),
	}
	type job struct {
		tool    Tool
		program bench.Program
		trial   int
	}
	var jobs []job
	for _, tl := range tools {
		res.Tools = append(res.Tools, tl.Name())
		res.Outcomes[tl.Name()] = make(map[string][]Outcome)
		trials := opts.Trials
		if tl.Deterministic() {
			// Deterministic tools run once but receive the same total
			// compute as a randomized tool's trial set (the paper gives
			// every tool the same wall-clock budget).
			trials = 1
		}
		for _, p := range programs {
			res.Outcomes[tl.Name()][p.Name] = make([]Outcome, trials)
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{tl, p, tr})
			}
		}
	}
	for _, p := range programs {
		res.Programs = append(res.Programs, p.Name)
	}

	if t := opts.Telemetry; t != nil {
		t.Emit(telemetry.EvCampaignStart, telemetry.Fields{
			"tools":    res.Tools,
			"programs": len(res.Programs),
			"trials":   opts.Trials,
			"budget":   opts.Budget,
			"jobs":     len(jobs),
		})
	}

	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, opts.Parallelism)
		mu   sync.Mutex
		done int
	)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			seed := subSeed(opts.BaseSeed, j.trial*1000003) ^ int64(len(j.program.Name))<<32 ^ subSeed(int64(hashString(j.program.Name)), j.trial)
			budget := opts.Budget
			if j.tool.Deterministic() {
				budget *= opts.Trials
			}
			out := runTrial(j.tool, j.program, budget, opts.MaxSteps, seed)
			if t := opts.Telemetry; t != nil {
				labels := []telemetry.Label{{Name: "tool", Value: j.tool.Name()}, {Name: "program", Value: j.program.Name}}
				t.Add(telemetry.MTrialsDone, 1, labels...)
				fields := telemetry.Fields{
					"tool":       j.tool.Name(),
					"program":    j.program.Name,
					"trial":      j.trial,
					"executions": out.Executions,
					"first_bug":  out.FirstBug,
				}
				if out.Errored() {
					t.Add(telemetry.MTrialPanics, 1, labels...)
					fields["error"] = out.Err
				}
				t.Emit(telemetry.EvTrialDone, fields)
			}
			mu.Lock()
			res.Outcomes[j.tool.Name()][j.program.Name][j.trial] = out
			done++
			if opts.Progress != nil {
				opts.Progress(done, len(jobs))
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t := opts.Telemetry; t != nil {
		t.Emit(telemetry.EvCampaignDone, telemetry.Fields{
			"jobs":   len(jobs),
			"errors": len(res.TrialErrors()),
		})
	}
	return res
}

// runTrial runs one trial, converting a panicking tool into a failed
// Outcome so a single broken (tool, program) cell cannot take down the
// whole evaluation matrix.
func runTrial(tl Tool, p bench.Program, budget, maxSteps int, seed int64) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = Outcome{Budget: budget, Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	return tl.Run(p, budget, maxSteps, seed)
}

// TrialErrors lists the trials that aborted with an infrastructure
// error, as "tool/program[trial]: err" strings in matrix order.
func (m *MatrixResult) TrialErrors() []string {
	var out []string
	for _, tool := range m.Tools {
		for _, p := range m.Programs {
			for tr, o := range m.Outcomes[tool][p] {
				if o.Errored() {
					out = append(out, fmt.Sprintf("%s/%s[%d]: %s", tool, p, tr, o.Err))
				}
			}
		}
	}
	return out
}

// hashString is a small FNV-1a for seed derivation.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Samples returns the survival samples of a (tool, program) cell.
func (m *MatrixResult) Samples(tool, program string) []stats.Sample {
	outs := m.Outcomes[tool][program]
	ss := make([]stats.Sample, len(outs))
	for i, o := range outs {
		ss[i] = o.Sample()
	}
	return ss
}

// MeanStd returns the mean and standard deviation of schedules-to-bug over
// the trials that found the bug, plus how many trials missed it.
func (m *MatrixResult) MeanStd(tool, program string) (mean, std float64, missed int) {
	var xs []float64
	for _, o := range m.Outcomes[tool][program] {
		if o.Found() {
			xs = append(xs, float64(o.FirstBug))
		} else {
			missed++
		}
	}
	return stats.Mean(xs), stats.Std(xs), missed
}

// BugsFoundPerTrial returns, for each trial index, how many programs the
// tool found a bug in — the distribution behind the paper's "finds bugs in
// μ = 46.1 programs" comparison.
func (m *MatrixResult) BugsFoundPerTrial(tool string) []float64 {
	progs := m.Outcomes[tool]
	trials := 0
	for _, outs := range progs {
		if len(outs) > trials {
			trials = len(outs)
		}
	}
	counts := make([]float64, trials)
	for _, outs := range progs {
		for tr, o := range outs {
			if o.Found() {
				counts[tr]++
			}
		}
	}
	return counts
}

// CurvePoint is one step of a cumulative bugs-vs-schedules curve.
type CurvePoint struct {
	Schedules int
	Bugs      int
}

// CumulativeCurve builds the Figure 4 series for a tool: for every trial
// and program where a bug was found, a point at (schedules, cumulative
// bugs found at or below that schedule count), across all trials.
func (m *MatrixResult) CumulativeCurve(tool string) []CurvePoint {
	var times []int
	for _, outs := range m.Outcomes[tool] {
		for _, o := range outs {
			if o.Found() {
				times = append(times, o.FirstBug)
			}
		}
	}
	if len(times) == 0 {
		return nil
	}
	// Sort ascending and emit cumulative counts.
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	pts := make([]CurvePoint, 0, len(times))
	for i, t := range times {
		pts = append(pts, CurvePoint{Schedules: t, Bugs: i + 1})
	}
	return pts
}

// SignificantWins counts the programs where tool a finds bugs in
// significantly fewer schedules than tool b by the log-rank test at the
// paper's alpha of 0.05 — the RQ1/RQ2 per-program comparisons.
func (m *MatrixResult) SignificantWins(a, b string, alpha float64) (aWins, bWins int) {
	for _, p := range m.Programs {
		sa := m.Samples(a, p)
		sb := m.Samples(b, p)
		if stats.SignificantlyFewer(sa, sb, alpha) {
			aWins++
		}
		if stats.SignificantlyFewer(sb, sa, alpha) {
			bWins++
		}
	}
	return
}
