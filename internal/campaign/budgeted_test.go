package campaign_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"rff/internal/budget"
	"rff/internal/campaign"
)

// budgetedOpts is the small budgeted matrix the determinism tests run.
func budgetedOpts(policy string, workers int) campaign.MatrixOptions {
	return campaign.MatrixOptions{
		Trials:   2,
		Budget:   200,
		BaseSeed: 99,
		Workers:  workers,
		Budgeter: &budget.Config{Policy: policy, Epochs: 4, CollectCovers: true},
	}
}

// TestBudgetedMatrixBitIdenticalAcrossWorkerCounts extends the fleet's
// determinism promise to the epoch loop: the outcome matrix AND the
// budget report (allocation trace, per-cell accounting, first-cover
// events) must serialize to identical JSON at any worker count.
func TestBudgetedMatrixBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 tools x 2 programs x 2 trials x 4 epochs at three worker counts")
	}
	for _, policy := range budget.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			run := func(workers int) []byte {
				m := campaign.RunMatrix(
					mustTools(t, "rff", "pos"),
					miniPrograms(t, "CS/account", "CS/lazy01"),
					budgetedOpts(policy, workers),
				)
				data, err := json.Marshal(m)
				if err != nil {
					t.Fatalf("marshaling matrix: %v", err)
				}
				return data
			}
			base := run(1)
			for _, workers := range []int{3, runtime.GOMAXPROCS(0)} {
				if got := run(workers); string(got) != string(base) {
					t.Errorf("budgeted matrix (%s) at %d workers diverged from sequential run",
						policy, workers)
				}
			}
		})
	}
}

// TestBudgetedMatrixConservation checks the report's books: every
// epoch's shares sum to its pool, pools sum to the total entitlement,
// and per-cell spent never exceeds allocated.
func TestBudgetedMatrixConservation(t *testing.T) {
	m := campaign.RunMatrix(
		mustTools(t, "rff", "pos"),
		miniPrograms(t, "CS/account", "CS/lazy01"),
		budgetedOpts("ucb", 2),
	)
	rep := m.BudgetReport
	if rep == nil {
		t.Fatal("budgeted matrix returned no BudgetReport")
	}
	if rep.Policy != "ucb" {
		t.Fatalf("policy = %q", rep.Policy)
	}
	var pools int64
	for _, e := range rep.Trace {
		sum := 0
		for _, s := range e.Shares {
			if s < 0 {
				t.Fatalf("epoch %d: negative share", e.Epoch)
			}
			sum += s
		}
		if sum != e.Pool {
			// The pool may go unspent only once every cell is done.
			live := false
			for _, c := range rep.Cells {
				if !c.Done {
					live = true
				}
			}
			if live || sum != 0 {
				t.Fatalf("epoch %d: shares sum to %d, pool %d", e.Epoch, sum, e.Pool)
			}
		}
		pools += int64(e.Pool)
	}
	// 2 tools x 2 programs x (budget 200 x trials 2) = 1600 entitlement.
	if rep.Pool != 1600 {
		t.Fatalf("pool = %d, want 1600", rep.Pool)
	}
	var spent int64
	for _, c := range rep.Cells {
		if c.Spent > c.Allocated {
			t.Fatalf("cell %s/%s spent %d > allocated %d", c.Tool, c.Program, c.Spent, c.Allocated)
		}
		if len(c.Covers) == 0 && c.NewPairs > 0 {
			t.Fatalf("cell %s/%s: %d new pairs but no covers recorded", c.Tool, c.Program, c.NewPairs)
		}
		spent += c.Spent
	}
	if spent != rep.Spent {
		t.Fatalf("cells spend %d, report says %d", spent, rep.Spent)
	}
	if rep.Spent > rep.Pool {
		t.Fatalf("spent %d exceeds pool %d", rep.Spent, rep.Pool)
	}
}

// TestBudgetedUniformOneEpochMatchesFixed pins the compatibility
// invariant the EpochSeed identity buys: a uniform policy with a
// single epoch is the classic fixed-budget matrix — same seeds, same
// budgets — so FirstBug and Executions must agree cell for cell.
func TestBudgetedUniformOneEpochMatchesFixed(t *testing.T) {
	tools := mustTools(t, "rff", "pos", "genmc")
	progs := miniPrograms(t, "CS/account", "CS/lazy01")
	fixed := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{
		Trials: 2, Budget: 200, BaseSeed: 7, Workers: 2,
	})
	budgeted := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{
		Trials: 2, Budget: 200, BaseSeed: 7, Workers: 2,
		Budgeter: &budget.Config{Policy: "uniform", Epochs: 1},
	})
	for _, tool := range fixed.Tools {
		for _, p := range fixed.Programs {
			fo := fixed.Outcomes[tool][p]
			bo := budgeted.Outcomes[tool][p]
			if len(fo) != len(bo) {
				t.Fatalf("%s/%s: trial counts differ: %d vs %d", tool, p, len(fo), len(bo))
			}
			for tr := range fo {
				if fo[tr].FirstBug != bo[tr].FirstBug || fo[tr].Executions != bo[tr].Executions {
					t.Errorf("%s/%s[%d]: fixed (bug=%d execs=%d) vs budgeted (bug=%d execs=%d)",
						tool, p, tr, fo[tr].FirstBug, fo[tr].Executions, bo[tr].FirstBug, bo[tr].Executions)
				}
			}
		}
	}
}

// TestBudgetedMatrixFindsBugs: sanity that adaptive scheduling still
// finds the seeded bugs and reports global first-bug indexes.
func TestBudgetedMatrixFindsBugs(t *testing.T) {
	m := campaign.RunMatrix(
		mustTools(t, "rff"),
		miniPrograms(t, "CS/account"),
		campaign.MatrixOptions{
			Trials: 2, Budget: 400, BaseSeed: 3, Workers: 2,
			Budgeter: &budget.Config{Policy: "eps-greedy", Epochs: 4},
		},
	)
	found := false
	for _, o := range m.Outcomes["RFF"]["CS/account"] {
		if o.Found() {
			found = true
		}
	}
	if !found {
		t.Fatal("no trial found the CS/account bug under a budgeted matrix")
	}
	cell := m.BudgetReport.Cells[0]
	if !cell.Bug || cell.FirstBug <= 0 {
		t.Fatalf("cell report missed the bug: %+v", cell)
	}
	if cell.FirstBug > m.BudgetReport.Spent {
		t.Fatalf("global first-bug index %d beyond total spent %d", cell.FirstBug, m.BudgetReport.Spent)
	}
}
