package campaign_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"rff/internal/campaign"
)

// TestMatrixBitIdenticalAcrossWorkerCounts is the parallel-orchestration
// golden test: the full matrix result — first-bug schedules, execution
// counts, corpus sizes, and signature-combination counts of every
// (tool, program, trial) cell — must serialize to byte-identical JSON
// whether the fleet ran with 1 worker, 4, or GOMAXPROCS. Any seed
// derivation that leaks stream position, any cross-worker state
// sharing, or any merge-order dependence breaks this.
func TestMatrixBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 tools x 3 programs x 3 trials at three worker counts")
	}
	run := func(workers int) []byte {
		m := campaign.RunMatrix(
			mustTools(t, "rff", "pos"),
			miniPrograms(t, "CS/account", "CS/lazy01", "CS/reorder_3"),
			campaign.MatrixOptions{Trials: 3, Budget: 300, BaseSeed: 99, Workers: workers},
		)
		// MatrixResult marshals deterministically field by field: the
		// Tools/Programs slices pin iteration order and encoding/json
		// sorts the outcome map keys.
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshaling matrix: %v", err)
		}
		return data
	}

	base := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(workers); string(got) != string(base) {
			t.Errorf("matrix at %d workers diverged from sequential run:\n 1: %s\n%2d: %s",
				workers, base, workers, got)
		}
	}
}

// TestTrialSeedProperties pins the seed-derivation contract: seeds
// depend on every identity component and nothing else.
func TestTrialSeedProperties(t *testing.T) {
	base := campaign.TrialSeed(1, "RFF", "CS/account", 0)
	same := campaign.TrialSeed(1, "RFF", "CS/account", 0)
	if base != same {
		t.Fatal("TrialSeed is not a pure function")
	}
	perturbed := []int64{
		campaign.TrialSeed(2, "RFF", "CS/account", 0),
		campaign.TrialSeed(1, "POS", "CS/account", 0),
		campaign.TrialSeed(1, "RFF", "CS/lazy01", 0),
		campaign.TrialSeed(1, "RFF", "CS/account", 1),
		// Concatenation shuffles between tool and program must not
		// collide.
		campaign.TrialSeed(1, "RFFCS/", "account", 0),
	}
	for i, s := range perturbed {
		if s == base {
			t.Errorf("perturbation %d did not change the seed", i)
		}
	}
}
