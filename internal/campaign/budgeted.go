package campaign

import (
	"context"
	"fmt"

	"rff/internal/bench"
	"rff/internal/budget"
	"rff/internal/exec"
	"rff/internal/fleet"
	"rff/internal/telemetry"
)

// This file is the adaptive-budget matrix runner: instead of handing
// every (tool, program, trial) cell a fixed budget up front, the total
// execution pool (Budget x Trials x cells) is spent in epochs. Each
// epoch is one fleet wave; at the barrier the runner folds every
// cell's marginal rf-pair coverage and first-bug events into the
// budget.Allocator, which decides the next epoch's shares. All
// allocation decisions happen at the barrier in deterministic cell
// order from barrier-merged data, so the outcome matrix, the
// allocation trace, and the budget report are bit-identical at any
// worker count.

// PairCover records the first time a (tool, program) cell covered an
// rf-pair, at an epoch-granular global execution index: executions
// spent by the whole matrix before the cell's epoch began, plus the
// cell's local index within the epoch.
type PairCover struct {
	Pair string `json:"pair"`
	At   int64  `json:"at"`
}

// BudgetCellReport is one (tool, program) cell's allocation record.
type BudgetCellReport struct {
	Tool      string `json:"tool"`
	Program   string `json:"program"`
	Allocated int64  `json:"allocated"`
	Spent     int64  `json:"spent"`
	NewPairs  int64  `json:"new_pairs"`
	// SharePct is the cell's percentage of the matrix's total spent
	// executions.
	SharePct float64 `json:"share_pct"`
	// FirstBug is the epoch-granular global execution index of the
	// cell's first failure (0 = none): matrix executions before the
	// finding epoch plus the finding trial's local index.
	FirstBug int64 `json:"first_bug,omitempty"`
	Bug      bool  `json:"bug"`
	Done     bool  `json:"done"`
	// Covers lists first-cover events when Config.CollectCovers was
	// set; the sched-eval harness turns these into coverage-at-
	// checkpoint curves.
	Covers []PairCover `json:"covers,omitempty"`
}

// BudgetReport is the machine-readable record of a budgeted matrix:
// the policy, the full allocation trace, and per-cell accounting. It
// is a pure function of (seed, policy, budget), like the outcomes.
type BudgetReport struct {
	Policy        string                   `json:"policy"`
	Epochs        int                      `json:"epochs"`
	MinShare      int                      `json:"min_share"`
	Pool          int64                    `json:"pool"`
	Spent         int64                    `json:"spent"`
	Reallocations int                      `json:"reallocations"`
	Cells         []BudgetCellReport       `json:"cells"`
	Trace         []budget.EpochAllocation `json:"trace"`
}

// pairCollector gathers one epoch cell's executions and first-seen
// rf-pairs. Only its own fleet cell touches it during the wave; the
// merge barrier reads it afterwards.
type pairCollector struct {
	execs int
	seen  map[string]int
	order []string
}

func newPairCollector() *pairCollector {
	return &pairCollector{seen: make(map[string]int)}
}

func (c *pairCollector) observe(res *exec.Result) {
	c.execs++
	if res.Trace == nil {
		return
	}
	for _, p := range res.Trace.RFPairs() {
		k := p.String()
		if _, ok := c.seen[k]; !ok {
			c.seen[k] = c.execs
			c.order = append(c.order, k)
		}
	}
}

// budgetedTrial is one trial's cumulative state across epochs.
type budgetedTrial struct {
	cum      int64
	firstBug int64
	corpus   int
	sigs     int
	err      string
	stack    string
	done     bool
}

// budgetedPair is one allocator cell: a (tool, program) pair and its
// trials, plus the pair's cumulative rf-pair set.
type budgetedPair struct {
	tool     Tool
	toolName string
	program  bench.Program
	trials   []budgetedTrial
	seen     map[string]struct{}
	covers   []PairCover
	firstBug int64
	bug      bool
	done     bool
}

func runMatrixBudgeted(ctx context.Context, tools []Tool, programs []bench.Program, opts MatrixOptions, workers int) *MatrixResult {
	bcfg := *opts.Budgeter
	maxTrials := 1
	var pairs []*budgetedPair
	res := &MatrixResult{
		Budget:   opts.Budget,
		Outcomes: make(map[string]map[string][]Outcome),
	}
	for _, tl := range tools {
		res.Tools = append(res.Tools, tl.Name())
		res.Outcomes[tl.Name()] = make(map[string][]Outcome)
		trials := opts.Trials
		if tl.Deterministic() {
			// As in the fixed matrix, deterministic tools run a single
			// trial that absorbs the whole per-pair entitlement.
			trials = 1
		}
		if trials > maxTrials {
			maxTrials = trials
		}
		for _, p := range programs {
			res.Outcomes[tl.Name()][p.Name] = make([]Outcome, trials)
			pairs = append(pairs, &budgetedPair{
				tool:     tl,
				toolName: tl.Name(),
				program:  p,
				trials:   make([]budgetedTrial, trials),
				seen:     make(map[string]struct{}),
			})
		}
	}
	for _, p := range programs {
		res.Programs = append(res.Programs, p.Name)
	}
	if len(pairs) == 0 {
		return res
	}

	// The pair floor must fund every live trial of a funded pair, or
	// the last trial of a multi-trial pair could starve forever.
	if bcfg.MinShare < maxTrials {
		bcfg.MinShare = maxTrials
	}
	allocSeed := int64(splitmix(uint64(opts.BaseSeed) ^ hashString("budget-allocator")))
	alloc, err := budget.New(len(pairs), allocSeed, bcfg)
	if err != nil {
		// Every entry point validates the config before reaching the
		// matrix; failing loudly beats silently falling back to fixed
		// budgets.
		panic(fmt.Sprintf("campaign: invalid budget config: %v", err))
	}
	bcfg = alloc.Config()
	totalPool := int64(opts.Budget) * int64(opts.Trials) * int64(len(pairs))
	epochs := bcfg.Epochs
	basePool := totalPool / int64(epochs)
	extra := totalPool % int64(epochs)

	if t := opts.Telemetry; t != nil {
		t.Emit(telemetry.EvCampaignStart, telemetry.Fields{
			"tools":         res.Tools,
			"programs":      len(res.Programs),
			"trials":        opts.Trials,
			"budget":        opts.Budget,
			"budget_policy": bcfg.Policy,
			"epochs":        epochs,
			"pool":          totalPool,
			"workers":       workers,
		})
	}

	var globalSpent int64
	for e := 0; e < epochs && ctx.Err() == nil && alloc.Active() > 0; e++ {
		pool := basePool
		if int64(e) < extra {
			pool++
		}
		shares := alloc.Allocate(int(pool))

		// Fan the epoch out: each funded pair's share splits evenly
		// across its live trials (remainder to the lowest indexes),
		// and every funded (pair, trial) becomes one fleet cell.
		type epochJob struct {
			pair  int
			trial int
			share int
			col   *pairCollector
		}
		var jobs []epochJob
		for pi, share := range shares {
			if share <= 0 {
				continue
			}
			ps := pairs[pi]
			var live []int
			for ti := range ps.trials {
				if !ps.trials[ti].done {
					live = append(live, ti)
				}
			}
			base, rem := share/len(live), share%len(live)
			for k, ti := range live {
				s := base
				if k < rem {
					s++
				}
				if s > 0 {
					jobs = append(jobs, epochJob{pair: pi, trial: ti, share: s, col: newPairCollector()})
				}
			}
		}
		cells := make([]fleet.Cell[Outcome], len(jobs))
		for i, j := range jobs {
			j := j
			ps := pairs[j.pair]
			cells[i] = fleet.Cell[Outcome]{
				ID:   fmt.Sprintf("%s/%s[%d]@e%d", ps.toolName, ps.program.Name, j.trial, e),
				Spec: ps.toolName,
				Run: func(cctx context.Context, s *fleet.Scratch) (Outcome, error) {
					tool := ps.tool
					if ot, ok := tool.(ObservableTool); ok {
						tool = ot.WithObserver(j.col.observe)
					}
					seed := budget.EpochSeed(TrialSeed(opts.BaseSeed, ps.toolName, ps.program.Name, j.trial), e)
					if sr, ok := tool.(scratchRunner); ok {
						ws, _ := s.State.(*workerState)
						return sr.runScratch(cctx, ps.program, j.share, opts.MaxSteps, seed, ws), nil
					}
					return tool.Run(cctx, ps.program, j.share, opts.MaxSteps, seed), nil
				},
			}
		}
		results := fleet.Run(ctx, cells, fleet.Options{
			Workers:     workers,
			CellTimeout: opts.TrialTimeout,
			NewState:    func(int) any { return &workerState{recycler: exec.NewRecycler()} },
			Telemetry:   opts.Telemetry,
		})

		// Barrier: fold the wave back in deterministic job order, then
		// feed the allocator. Nothing below reads anything
		// scheduling-dependent.
		epochExecs := make([]int64, len(pairs))
		epochNew := make([]int, len(pairs))
		epochBug := make([]bool, len(pairs))
		for i, r := range results {
			j := jobs[i]
			ps := pairs[j.pair]
			ts := &ps.trials[j.trial]
			out := r.Value
			if r.Err != nil {
				out = Outcome{Err: r.Err.Error(), Stack: r.Stack}
			}
			if out.Found() && ts.firstBug == 0 {
				ts.firstBug = ts.cum + int64(out.FirstBug)
				ts.done = true
				epochBug[j.pair] = true
				if cand := globalSpent + int64(out.FirstBug); ps.firstBug == 0 || cand < ps.firstBug {
					ps.firstBug = cand
				}
				ps.bug = true
			}
			if out.Errored() {
				ts.err = out.Err
				ts.stack = out.Stack
				ts.done = true
			}
			ts.cum += int64(out.Executions)
			if out.CorpusSize > 0 {
				ts.corpus = out.CorpusSize
			}
			if out.UniqueSigs > 0 {
				ts.sigs = out.UniqueSigs
			}
			epochExecs[j.pair] += int64(out.Executions)
			for _, pk := range j.col.order {
				if _, dup := ps.seen[pk]; dup {
					continue
				}
				ps.seen[pk] = struct{}{}
				epochNew[j.pair]++
				if bcfg.CollectCovers {
					ps.covers = append(ps.covers, PairCover{Pair: pk, At: globalSpent + int64(j.col.seen[pk])})
				}
			}
		}
		var waveExecs int64
		var waveNew int
		for pi, ps := range pairs {
			if ps.done {
				continue
			}
			alloc.Observe(pi, budget.Reward{
				Executions: int(epochExecs[pi]),
				NewPairs:   epochNew[pi],
				FirstBug:   epochBug[pi],
			})
			allDone := true
			for ti := range ps.trials {
				if !ps.trials[ti].done {
					allDone = false
					break
				}
			}
			if allDone {
				ps.done = true
				alloc.MarkDone(pi)
			}
			waveExecs += epochExecs[pi]
			waveNew += epochNew[pi]
		}
		globalSpent += waveExecs
		if t := opts.Telemetry; t != nil {
			t.Add(telemetry.MBudgetEpochs, 1)
			t.Emit(telemetry.EvBudgetEpoch, telemetry.Fields{
				"epoch":      e,
				"pool":       pool,
				"executions": waveExecs,
				"new_pairs":  waveNew,
				"active":     alloc.Active(),
				"spent":      globalSpent,
			})
		}
		if opts.Progress != nil {
			opts.Progress(e+1, epochs)
		}
	}

	// Final accounting in matrix order: outcomes, trial events, and the
	// budget report.
	cancelled := ctx.Err()
	for _, ps := range pairs {
		for ti := range ps.trials {
			ts := &ps.trials[ti]
			if cancelled != nil && !ts.done && ts.err == "" && ts.firstBug == 0 {
				ts.err = fmt.Sprintf("trial aborted after %d schedules: %v", ts.cum, cancelled)
			}
			out := Outcome{
				FirstBug:   int(ts.firstBug),
				Executions: int(ts.cum),
				Budget:     int(ts.cum),
				CorpusSize: ts.corpus,
				UniqueSigs: ts.sigs,
				Err:        ts.err,
				Stack:      ts.stack,
			}
			res.Outcomes[ps.toolName][ps.program.Name][ti] = out
			if t := opts.Telemetry; t != nil {
				labels := []telemetry.Label{{Name: "tool", Value: ps.toolName}, {Name: "program", Value: ps.program.Name}}
				t.Add(telemetry.MTrialsDone, 1, labels...)
				if out.Errored() {
					t.Add(telemetry.MTrialPanics, 1, labels...)
					fields := telemetry.Fields{
						"tool":    ps.toolName,
						"program": ps.program.Name,
						"trial":   ti,
						"error":   out.Err,
					}
					if out.Stack != "" {
						fields["stack"] = out.Stack
					}
					t.Emit(telemetry.EvTrialError, fields)
				} else {
					t.Emit(telemetry.EvTrialDone, telemetry.Fields{
						"tool":       ps.toolName,
						"program":    ps.program.Name,
						"trial":      ti,
						"executions": out.Executions,
						"first_bug":  out.FirstBug,
					})
				}
			}
		}
	}

	states := alloc.Cells()
	rep := &BudgetReport{
		Policy:        bcfg.Policy,
		Epochs:        alloc.Epoch(),
		MinShare:      bcfg.MinShare,
		Pool:          totalPool,
		Spent:         globalSpent,
		Reallocations: alloc.Reallocations(),
		Trace:         alloc.Trace(),
	}
	for pi, ps := range pairs {
		st := states[pi]
		cell := BudgetCellReport{
			Tool:      ps.toolName,
			Program:   ps.program.Name,
			Allocated: st.Allocated,
			Spent:     st.Spent,
			NewPairs:  st.NewPairs,
			FirstBug:  ps.firstBug,
			Bug:       ps.bug,
			Done:      ps.done,
			Covers:    ps.covers,
		}
		if globalSpent > 0 {
			cell.SharePct = 100 * float64(st.Spent) / float64(globalSpent)
		}
		rep.Cells = append(rep.Cells, cell)
		if t := opts.Telemetry; t != nil {
			t.Set(telemetry.MBudgetShare, int64(cell.SharePct+0.5),
				telemetry.L("tool", ps.toolName), telemetry.L("program", ps.program.Name))
		}
	}
	res.BudgetReport = rep
	if t := opts.Telemetry; t != nil {
		t.Add(telemetry.MBudgetReallocations, int64(rep.Reallocations))
		t.Emit(telemetry.EvCampaignDone, telemetry.Fields{
			"epochs": rep.Epochs,
			"pool":   rep.Pool,
			"spent":  rep.Spent,
			"errors": len(res.TrialErrors()),
		})
	}
	return res
}
