package campaign_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"rff/internal/bench"
	"rff/internal/campaign"
	"rff/internal/strategy"
	"rff/internal/telemetry"
)

// mustTools resolves strategy specs into campaign tool lineups.
func mustTools(t *testing.T, specs ...string) []campaign.Tool {
	t.Helper()
	tools, err := strategy.ResolveAll(specs, strategy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tools
}

func miniPrograms(t *testing.T, names ...string) []bench.Program {
	t.Helper()
	var out []bench.Program
	for _, n := range names {
		out = append(out, bench.MustGet(n))
	}
	return out
}

func TestMatrixShapeAndDeterminism(t *testing.T) {
	tools := mustTools(t, "rff", "pos", "genmc")
	progs := miniPrograms(t, "CS/account", "CS/lazy01")
	opts := campaign.MatrixOptions{Trials: 3, Budget: 200, BaseSeed: 7, Parallelism: 2}
	m1 := campaign.RunMatrix(tools, progs, opts)
	m2 := campaign.RunMatrix(tools, progs, opts)

	if len(m1.Tools) != 3 || len(m1.Programs) != 2 {
		t.Fatalf("bad matrix shape: %v %v", m1.Tools, m1.Programs)
	}
	// Deterministic tool runs one trial; randomized tools run three.
	if got := len(m1.Outcomes["GenMC*"]["CS/account"]); got != 1 {
		t.Fatalf("deterministic tool should run 1 trial, got %d", got)
	}
	if got := len(m1.Outcomes["RFF"]["CS/account"]); got != 3 {
		t.Fatalf("RFF should run 3 trials, got %d", got)
	}
	// Same seed, same everything.
	for _, tool := range m1.Tools {
		for _, p := range m1.Programs {
			a, b := m1.Outcomes[tool][p], m2.Outcomes[tool][p]
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("matrix not reproducible at %s/%s[%d]: %+v vs %+v", tool, p, i, a[i], b[i])
				}
			}
		}
	}
}

func TestEasyBugsFoundByAllTools(t *testing.T) {
	tools := mustTools(t, "rff", "pos", "pct:3", "period", "qlearn")
	progs := miniPrograms(t, "CS/account")
	m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{Trials: 2, Budget: 500, BaseSeed: 1})
	for _, tool := range m.Tools {
		for _, o := range m.Outcomes[tool]["CS/account"] {
			if !o.Found() {
				t.Errorf("%s missed the trivial account bug (%d schedules)", tool, o.Executions)
			}
		}
	}
}

func TestCumulativeCurveMonotone(t *testing.T) {
	tools := []campaign.Tool{campaign.RFFTool{}}
	progs := miniPrograms(t, "CS/account", "CS/lazy01", "CS/reorder_3")
	m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{Trials: 3, Budget: 300, BaseSeed: 2})
	curve := m.CumulativeCurve("RFF")
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Schedules < curve[i-1].Schedules || curve[i].Bugs != curve[i-1].Bugs+1 {
			t.Fatalf("curve not cumulative at %d: %+v", i, curve)
		}
	}
	if curve[len(curve)-1].Bugs != 9 { // 3 programs x 3 trials, all found
		t.Fatalf("expected 9 cumulative bugs, got %d", curve[len(curve)-1].Bugs)
	}
}

func TestBugsFoundPerTrialAndWins(t *testing.T) {
	tools := mustTools(t, "rff", "pos")
	progs := miniPrograms(t, "CS/reorder_20", "CS/account")
	m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{Trials: 3, Budget: 400, BaseSeed: 3})
	rff := m.BugsFoundPerTrial("RFF")
	if len(rff) != 3 {
		t.Fatalf("want 3 trial counts, got %v", rff)
	}
	for _, c := range rff {
		if c != 2 {
			t.Fatalf("RFF should find both bugs every trial, got %v", rff)
		}
	}
	// POS cannot find reorder_20 in 400 schedules; RFF wins significantly.
	aw, bw := m.SignificantWins("RFF", "POS", 0.05)
	if aw < 1 {
		t.Errorf("expected RFF to win significantly on reorder_20 (wins=%d)", aw)
	}
	if bw != 0 {
		t.Errorf("POS should not beat RFF significantly anywhere (wins=%d)", bw)
	}
}

func TestFig5Distributions(t *testing.T) {
	p := bench.MustGet("SafeStack")
	const n = 400
	pos := campaign.RFDistributionPOS(p, n, 11, 0)
	rff := campaign.RFDistributionRFF(p, n, 11, 0, true)
	if pos.Schedules != n || rff.Schedules != n {
		t.Fatalf("wrong schedule counts: %d %d", pos.Schedules, rff.Schedules)
	}
	if pos.Combinations() < 2 || rff.Combinations() < 2 {
		t.Fatalf("SafeStack must show multiple rf combinations: pos=%d rff=%d",
			pos.Combinations(), rff.Combinations())
	}
	if s := pos.MaxShare(); s <= 0 || s > 1 {
		t.Fatalf("bad max share %v", s)
	}
	total := 0
	for _, f := range rff.Freq {
		total += f
	}
	if total != n {
		t.Fatalf("frequencies must sum to schedules: %d != %d", total, n)
	}
}

func TestOutcomeSampleCensoring(t *testing.T) {
	found := campaign.Outcome{FirstBug: 17, Executions: 17, Budget: 100}
	miss := campaign.Outcome{Executions: 100, Budget: 100}
	if s := found.Sample(); !s.Observed || s.Time != 17 {
		t.Fatalf("bad sample %+v", s)
	}
	if s := miss.Sample(); s.Observed || s.Time != 100 {
		t.Fatalf("bad censored sample %+v", s)
	}
}

// panicTool blows up on every trial — the infrastructure-failure case the
// matrix runner must survive.
type panicTool struct{}

func (panicTool) Name() string        { return "Panicker" }
func (panicTool) Deterministic() bool { return false }
func (panicTool) Run(context.Context, bench.Program, int, int, int64) campaign.Outcome {
	panic("tool exploded")
}

func TestMatrixRecoversTrialPanics(t *testing.T) {
	tools := append([]campaign.Tool{panicTool{}}, mustTools(t, "pos")...)
	progs := miniPrograms(t, "CS/account")
	m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{Trials: 2, Budget: 300, BaseSeed: 3})

	// Every panicking trial is recorded as a failed outcome, not a crash.
	for tr, o := range m.Outcomes["Panicker"]["CS/account"] {
		if !o.Errored() || o.Found() {
			t.Fatalf("trial %d should have errored: %+v", tr, o)
		}
		if o.Budget != 300 {
			t.Fatalf("errored trial lost its budget: %+v", o)
		}
		// The recovered stack is captured, points at the panic site, and
		// is scrubbed of its nondeterministic goroutine header.
		if !strings.Contains(o.Stack, "panicTool") {
			t.Fatalf("trial %d stack does not reach the panic site:\n%s", tr, o.Stack)
		}
		if strings.HasPrefix(o.Stack, "goroutine ") {
			t.Fatalf("trial %d stack kept its goroutine header:\n%s", tr, o.Stack)
		}
		// Errored trials count as censored no-bug samples.
		if s := o.Sample(); s.Observed || s.Time != 300 {
			t.Fatalf("bad censored sample for errored trial: %+v", s)
		}
	}
	// The healthy tool is unaffected.
	for _, o := range m.Outcomes["POS"]["CS/account"] {
		if o.Errored() || !o.Found() {
			t.Fatalf("POS trial harmed by sibling panics: %+v", o)
		}
	}
	errs := m.TrialErrors()
	if len(errs) != 2 {
		t.Fatalf("TrialErrors = %v, want 2 entries", errs)
	}
	for _, e := range errs {
		if !strings.Contains(e, "tool exploded") || !strings.Contains(e, "Panicker/CS/account") {
			t.Fatalf("unhelpful trial error %q", e)
		}
		if !strings.Contains(e, "panicTool") {
			t.Fatalf("trial error lost the panic stack: %q", e)
		}
	}
}

func TestMatrixTelemetry(t *testing.T) {
	var buf bytes.Buffer
	hub := telemetry.NewHub()
	hub.Events = telemetry.NewEventWriter(&buf)

	tools := []campaign.Tool{campaign.RFFTool{Telemetry: hub}, panicTool{}}
	progs := miniPrograms(t, "CS/account", "CS/lazy01")
	m := campaign.RunMatrix(tools, progs, campaign.MatrixOptions{
		Trials: 2, Budget: 200, BaseSeed: 5, Telemetry: hub,
	})
	hub.Flush()

	snap := hub.Snapshot()
	jobs := int64(len(m.Tools) * len(m.Programs) * 2)
	if got := snap.Total(telemetry.MTrialsDone); got != jobs {
		t.Fatalf("trials_done = %d, want %d", got, jobs)
	}
	if got := snap.Value(telemetry.MTrialsDone,
		telemetry.L("tool", "RFF"), telemetry.L("program", "CS/account")); got != 2 {
		t.Fatalf("per-cell trials_done = %d, want 2", got)
	}
	if got := snap.Total(telemetry.MTrialPanics); got != 4 {
		t.Fatalf("trial_panics = %d, want 4", got)
	}
	// The RFF trials carried the sink all the way into the fuzzer.
	if got := snap.Total(telemetry.MSchedulesExecuted); got == 0 {
		t.Fatal("fuzzer-level schedules_executed never incremented through the matrix")
	}

	var evs []telemetry.Event
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		evs = append(evs, ev)
	}
	if len(evs) < 2 || evs[0].Kind != telemetry.EvCampaignStart || evs[len(evs)-1].Kind != telemetry.EvCampaignDone {
		t.Fatalf("event stream not bracketed by campaign start/done (%d events)", len(evs))
	}
	// Every trial ends in exactly one terminal event: trial-done for a
	// healthy trial (emitted mid-run, tagged with its cell identity) or
	// trial_error for a panicked one (emitted at the merge barrier, with
	// the stack).
	trialDone, trialError := 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case telemetry.EvTrialDone:
			trialDone++
			if ev.Fields["tool"] == nil || ev.Fields["program"] == nil || ev.Fields["trial"] == nil {
				t.Fatalf("trial-done event missing cell identity: %+v", ev.Fields)
			}
		case telemetry.EvTrialError:
			trialError++
			if s, _ := ev.Fields["stack"].(string); !strings.Contains(s, "panicTool") {
				t.Fatalf("trial_error event lost the panic stack: %+v", ev.Fields)
			}
		}
	}
	if int64(trialDone+trialError) != jobs {
		t.Fatalf("terminal trial events = %d+%d, want %d", trialDone, trialError, jobs)
	}
	if trialError != 4 {
		t.Fatalf("trial_error events = %d, want 4", trialError)
	}
	// The fleet-level series arrived through the same sink: one cell per
	// job, durations for each, and an idle pool at the barrier.
	if got := snap.Total(telemetry.MFleetCellsDone); got != jobs {
		t.Fatalf("fleet_cells_done = %d, want %d", got, jobs)
	}
	// Cell durations are labeled by strategy so a snapshot separates
	// per-tool timing; the per-spec series must add up to one
	// observation per job.
	var durObs int64
	for _, tool := range m.Tools {
		if h := snap.Histogram(telemetry.MFleetCellDuration, telemetry.L("spec", tool)); h != nil {
			durObs += h.Count
		}
	}
	if durObs != jobs {
		t.Fatalf("fleet_cell_duration observations = %d, want %d", durObs, jobs)
	}
	if got := snap.Value(telemetry.MFleetWorkersBusy); got != 0 {
		t.Fatalf("fleet_workers_busy = %d at the barrier, want 0", got)
	}
}
