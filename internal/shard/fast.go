package shard

import (
	"context"
	"strconv"
	"sync"
	"time"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/telemetry"
)

// fuzzFast is the -fast relaxation: no epoch barrier. Every shard runs
// a fully independent core.Fuzzer (own corpus, feedback, pool, intern
// table, RNG stream), consuming the shared budget in batch-sized quotas
// stolen from the same deques the deterministic mode uses; the states
// merge exactly once, at the end, in shard order. Throughput approaches
// W independent campaigns — there is no synchronization between
// executions at all — but the split of the budget across shards depends
// on runtime interleaving, so the merged report is NOT stable across
// reruns or shard counts.
func fuzzFast(ctx context.Context, name string, prog exec.Program, opts Options) *core.Report {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	w := opts.Shards
	fuzzers := make([]*core.Fuzzer, w)
	var obsMu sync.Mutex
	for i := 0; i < w; i++ {
		copts := core.Options{
			// The shared budget is a cap, not a per-shard allowance: the
			// quota deques meter actual consumption.
			Budget:           opts.Budget,
			MaxSteps:         opts.MaxSteps,
			Seed:             mixSeed(opts.Seed, -1-i),
			Power:            opts.Power,
			Mutator:          opts.Mutator,
			DisableFeedback:  opts.DisableFeedback,
			DisableProactive: opts.DisableProactive,
			StopAtFirstBug:   opts.StopAtFirstBug,
			InitialCorpus:    opts.InitialCorpus,
			Telemetry:        opts.Telemetry,
		}
		if opts.FailureObserver != nil {
			// Narrow the per-execution hook to failures and serialize it:
			// the observer was written for a single-threaded campaign.
			fo := opts.FailureObserver
			copts.ResultObserver = func(res *exec.Result) {
				if res.Failure == nil {
					return
				}
				obsMu.Lock()
				fo(res)
				obsMu.Unlock()
			}
		}
		fuzzers[i] = core.NewFuzzer(name, prog, copts)
	}

	// Budget quotas: batch b grants min(Batch, Budget-b*Batch) counted
	// executions to whichever shard claims it.
	nb := (opts.Budget + opts.Batch - 1) / opts.Batch
	deques := make([]*Deque, w)
	for i := range deques {
		deques[i] = NewDeque(nb)
	}
	for b := 0; b < nb; b++ {
		deques[b%w].Push(b)
	}

	start := time.Now()
	steals := make([]int64, w)
	busy := make([]time.Duration, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fz := fuzzers[id]
			t0 := time.Now()
			defer func() { busy[id] = time.Since(t0) }()
			for !fz.Done() && ctx.Err() == nil {
				b := deques[id].Pop()
				if b < 0 {
					for i := 1; i < w && b < 0; i++ {
						b = deques[(id+i)%w].Steal()
					}
					if b < 0 {
						return // all quotas claimed
					}
					steals[id]++
				}
				quota := min(opts.Batch, opts.Budget-b*opts.Batch)
				fz.RunN(ctx, quota)
			}
			if fz.Done() && opts.StopAtFirstBug && fz.Finish().FirstBug > 0 {
				cancel() // first bug anywhere ends every shard
			}
		}(i)
	}
	wg.Wait()

	// Final merge, in shard order: shard corpora and feedback fold into
	// fresh global state, with shard-local pair IDs remapped through a
	// campaign-global intern table.
	rep := &core.Report{Program: name}
	corpus := core.NewCorpus(opts.InitialCorpus...)
	fb := core.NewFeedback()
	intern := exec.NewInternTable()
	failSeen := make(map[string]bool)
	for i, fz := range fuzzers {
		lrep := fz.Finish()
		rep.Executions += lrep.Executions
		// FirstBug in fast mode is the best (lowest) shard-local count —
		// a lower bound on "schedules to first bug", reported because the
		// true interleaved count is not well-defined without a barrier.
		if lrep.FirstBug > 0 && (rep.FirstBug == 0 || lrep.FirstBug < rep.FirstBug) {
			rep.FirstBug = lrep.FirstBug
		}
		for _, fr := range lrep.Failures {
			if k := failKey(fr.Failure); !failSeen[k] {
				failSeen[k] = true
				rep.Failures = append(rep.Failures, fr)
			}
		}
		corpus.Merge(fz.Corpus())
		rm := exec.NewRemapper(fz.Intern(), intern)
		fb.Merge(fz.Feedback(), rm.RemapPair)
		if t := opts.Telemetry; t != nil {
			labels := []telemetry.Label{telemetry.L("program", name), telemetry.L("shard", strconv.Itoa(i))}
			t.Add(telemetry.MShardExecs, int64(lrep.Executions), labels...)
			if steals[i] > 0 {
				t.Add(telemetry.MShardSteals, steals[i], labels...)
			}
		}
	}
	rep.CorpusSize = corpus.Len()
	rep.UniquePairs = fb.UniquePairs()
	rep.UniqueSigs = fb.UniqueSigs()
	rep.SigFrequencies = fb.SigFrequencies()
	if t := opts.Telemetry; t != nil {
		if wall := time.Since(start); wall > 0 {
			var total time.Duration
			for _, d := range busy {
				total += d
			}
			pct := int64(total * 100 / (wall * time.Duration(w)))
			t.Set(telemetry.MShardUtilization, min(pct, 100), telemetry.L("program", name))
		}
	}
	return rep
}
