package shard

import (
	"context"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/telemetry"
)

// Options configures a sharded fuzzing campaign on one program. The
// core fields mirror core.Options; the sharding fields control how the
// budget is spread across workers.
type Options struct {
	// Budget is the total number of counted executions. Required.
	Budget int
	// MaxSteps bounds each execution's event count (0 = engine default).
	MaxSteps int
	// Seed makes the whole campaign deterministic.
	Seed int64
	// Power tunes the power schedule.
	Power core.PowerConfig
	// Mutator tunes schedule mutation.
	Mutator core.MutatorConfig
	// DisableFeedback, DisableProactive and StopAtFirstBug are the
	// core.Options ablation/stop switches, unchanged.
	DisableFeedback  bool
	DisableProactive bool
	StopAtFirstBug   bool
	// InitialCorpus is Algorithm 1's S_init (ε when empty).
	InitialCorpus []core.Schedule
	// Telemetry, if non-nil, receives campaign metrics plus the sharding
	// series: shard_execs and shard_steals counters per {program,shard},
	// the shard_merge_ns histogram, the shard_utilization_pct gauge, and
	// epoch-merge events. The sink is called from W goroutines and must
	// be safe for concurrent use (telemetry.Hub is).
	Telemetry telemetry.Sink
	// FailureObserver, if non-nil, is invoked at the merge barrier with a
	// synthesized result for every counted failing execution, in counted
	// order. Unlike core.Options.ResultObserver it sees only failures,
	// and the result carries no live trace — only Program, Seed, Failure,
	// and a Trace holding the replay Decisions — because the shard that
	// ran the execution recycled its trace long before the barrier.
	FailureObserver func(res *exec.Result)

	// Shards is the worker count W (values < 1 mean 1). Each shard owns
	// a private intern table, recycler, and proactive scheduler; in
	// deterministic mode the report is identical for every value.
	Shards int
	// Epoch is K, the steady-state number of executions planned between
	// merge barriers (0 = DefaultEpoch). Epoch sizes ramp geometrically
	// (1, 2, 4, ... up to K): the first executions fold their feedback
	// back almost immediately — mirroring the sequential loop's early
	// learning, where the event pool seeds mutation from execution two
	// onward — and the barrier cost amortizes once the campaign is warm.
	// The deterministic report is a pure function of (Seed, Budget,
	// Epoch) — shard count and batch size never enter it.
	Epoch int
	// Batch is the number of executions per work-stealing deque item
	// (0 = DefaultBatch). Batching amortizes deque traffic and scheduler
	// wakeups over several executions.
	Batch int
	// Fast drops the epoch barrier: every shard runs an independent
	// fuzzing loop over a private corpus, stealing budget quotas instead
	// of planned batches, and states merge once at the end. Roughly the
	// throughput of W independent campaigns, but the report depends on
	// runtime interleaving — reruns and different shard counts may
	// differ. Use only when throughput matters more than replayability.
	Fast bool
}

// DefaultEpoch is the executions-per-epoch used when Options.Epoch is 0.
const DefaultEpoch = 256

// DefaultBatch is the executions-per-batch used when Options.Batch is 0.
const DefaultBatch = 16

// Fuzz runs the sharded campaign to completion.
func Fuzz(name string, prog exec.Program, opts Options) *core.Report {
	return FuzzContext(context.Background(), name, prog, opts)
}

// FuzzContext runs the sharded campaign under ctx. Cancellation stops
// every in-flight execution within one scheduling step; the returned
// report covers the longest merged prefix of counted executions, so an
// interrupted deterministic campaign reports a prefix of the
// uninterrupted one.
func FuzzContext(ctx context.Context, name string, prog exec.Program, opts Options) *core.Report {
	if opts.Budget <= 0 {
		panic("shard.Fuzz: Options.Budget must be positive")
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Epoch <= 0 {
		opts.Epoch = DefaultEpoch
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	if opts.Fast {
		return fuzzFast(ctx, name, prog, opts)
	}
	return newRunner(name, prog, opts).run(ctx)
}

// mixSeed derives the RNG seed of global execution index idx from the
// campaign seed — splitmix64-style, so per-execution streams are
// independent and depend only on (campaign seed, index), never on which
// shard runs the execution.
func mixSeed(seed int64, idx int) int64 {
	z := uint64(seed) ^ (uint64(int64(idx))+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// digest is the shard-side record of one executed schedule — everything
// the merge barrier needs, copied out of the trace before its backing
// arrays recycle into the shard's next execution. The pairIDs/eventIDs
// buffers persist across epochs (append into [:0]), so a steady-state
// epoch allocates nothing on the digest path.
type digest struct {
	done     bool // false = execution abandoned (ctx cancelled)
	shard    int  // which shard ran it; selects the remapper at merge
	sig      uint64
	pairIDs  []exec.PairID  // shard-local IDs
	eventIDs []exec.EventID // shard-local IDs
	mut      core.Schedule
	seed     int64
	failure  *exec.Failure
	// decisions replays the failing execution (nil for clean runs —
	// copying the schedule of every healthy execution would defeat
	// trace recycling).
	decisions []exec.ThreadID
}

// shardState is one worker shard's private world: its own intern table,
// trace recycler, proactive scheduler, and RNG, so the execution hot
// path takes no cross-shard lock. The remapper (shard table → campaign
// table) lives here too, but is only touched by the coordinator at the
// merge barrier.
type shardState struct {
	id     int
	deque  *Deque
	intern *exec.InternTable
	rec    *exec.Recycler
	sched  *core.Proactive
	src    rand.Source
	rng    *rand.Rand
	remap  *exec.Remapper

	// Per-epoch counters, folded into telemetry at the barrier.
	epochExecs     int64
	epochSteals    int64
	epochSatisfied int64
	epochRejected  int64
	// busy accumulates time spent executing batches, for the
	// utilization gauge.
	busy time.Duration

	labels []telemetry.Label // {program, shard}
}

// runner is the deterministic sharded campaign: a coordinator that
// plans epochs from frozen global state, W shards that execute the
// plan via work stealing, and a merge barrier that folds shard
// observations back into global state in global execution order.
type runner struct {
	name string
	prog exec.Program
	opts Options

	// Campaign-global state. Only the coordinator touches it: shards
	// read the frozen corpus entries and event pool during an epoch and
	// write nothing but their own digest slots.
	corpus *core.Corpus
	fb     *core.Feedback
	pool   *core.EventPool
	intern *exec.InternTable
	rep    *core.Report

	// Planner state, carried across epochs exactly like the sequential
	// fuzzer carries its stage across RunN calls.
	curEntry   *core.Entry
	energyLeft int
	stopped    bool

	shards  []*shardState
	plan    []*core.Entry // reused epoch plan (one entry per execution)
	digests []digest      // reused epoch digest slots

	// Merge-barrier scratch.
	pairScratch []exec.PairID
	failSeen    map[string]bool

	tel    telemetry.Sink
	labels []telemetry.Label
	start  time.Time
}

func newRunner(name string, prog exec.Program, opts Options) *runner {
	r := &runner{
		name:     name,
		prog:     prog,
		opts:     opts,
		corpus:   core.NewCorpus(opts.InitialCorpus...),
		fb:       core.NewFeedback(),
		pool:     core.NewEventPool(),
		intern:   exec.NewInternTable(),
		rep:      &core.Report{Program: name},
		plan:     make([]*core.Entry, 0, opts.Epoch),
		digests:  make([]digest, opts.Epoch),
		failSeen: make(map[string]bool),
		tel:      opts.Telemetry,
		labels:   []telemetry.Label{telemetry.L("program", name)},
	}
	for i := 0; i < opts.Shards; i++ {
		src := rand.NewSource(1) // reseeded per execution
		s := &shardState{
			id:     i,
			intern: exec.NewInternTable(),
			rec:    exec.NewRecycler(),
			sched:  core.NewProactive(),
			src:    src,
			rng:    rand.New(src),
			labels: []telemetry.Label{telemetry.L("program", name), telemetry.L("shard", strconv.Itoa(i))},
		}
		s.remap = exec.NewRemapper(s.intern, r.intern)
		r.shards = append(r.shards, s)
	}
	return r
}

func (r *runner) run(ctx context.Context) *core.Report {
	r.start = time.Now()
	epoch := 0
	ramp := 1
	for !r.done() && ctx.Err() == nil {
		k := min(ramp, r.opts.Epoch, r.opts.Budget-r.rep.Executions)
		ramp = min(ramp*2, r.opts.Epoch)
		plan := r.planEpoch(k)
		epochStart := r.rep.Executions
		r.runEpoch(ctx, plan, epochStart)
		interrupted := r.mergeEpoch(plan, epoch)
		epoch++
		if interrupted {
			break
		}
	}
	return r.finish()
}

func (r *runner) done() bool {
	return r.stopped || r.rep.Executions >= r.opts.Budget
}

// planEpoch freezes the next k executions: it walks the round-robin +
// power-schedule stage logic of the sequential loop (including the
// zero-energy skip) against the current — merged — global state, and
// returns the chosen entry for each of the epoch's execution slots.
// Feedback does not move during an epoch, so every energy decision in
// the plan depends only on state as of the previous barrier: this is
// what makes the schedule independent of shard count.
func (r *runner) planEpoch(k int) []*core.Entry {
	plan := r.plan[:0]
	for len(plan) < k {
		if r.energyLeft <= 0 {
			entry := r.corpus.PickNext()
			energy := 1
			if !r.opts.DisableFeedback {
				energy = r.corpus.Energy(entry, r.fb, r.opts.Power)
			}
			if t := r.tel; t != nil {
				t.Observe(telemetry.MEnergyAssigned, int64(energy), r.labels...)
			}
			r.curEntry, r.energyLeft = entry, energy
			continue
		}
		r.energyLeft--
		plan = append(plan, r.curEntry)
	}
	r.plan = plan
	return plan
}

// runEpoch distributes the plan's batches round-robin across the shard
// deques and runs W workers until every batch is claimed and executed.
// Shards fill disjoint digest slots, so the workers share nothing
// mutable but the deques themselves.
func (r *runner) runEpoch(ctx context.Context, plan []*core.Entry, epochStart int) {
	for i := range plan[:min(len(plan), len(r.digests))] {
		r.digests[i].done = false
	}
	nb := (len(plan) + r.opts.Batch - 1) / r.opts.Batch
	for _, s := range r.shards {
		if s.deque == nil || len(s.deque.buf) < nb {
			s.deque = NewDeque(nb)
		} else {
			s.deque.reset()
		}
	}
	for b := 0; b < nb; b++ {
		r.shards[b%len(r.shards)].deque.Push(b)
	}
	var wg sync.WaitGroup
	for _, s := range r.shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			r.work(ctx, s, plan, epochStart)
		}(s)
	}
	wg.Wait()
}

// work is one shard's epoch loop: pop from the own deque, steal when it
// runs dry, exit when no unclaimed batch remains anywhere. Claimed
// batches never reappear, so an empty sweep with zero unclaimed work is
// a permanent termination condition.
func (r *runner) work(ctx context.Context, s *shardState, plan []*core.Entry, epochStart int) {
	for {
		if ctx.Err() != nil {
			return
		}
		b := s.deque.Pop()
		if b < 0 {
			for i := 1; i < len(r.shards) && b < 0; i++ {
				b = r.shards[(s.id+i)%len(r.shards)].deque.Steal()
			}
			if b < 0 {
				if r.unclaimed() == 0 {
					return
				}
				runtime.Gosched()
				continue
			}
			s.epochSteals++
		}
		start := time.Now()
		lo := b * r.opts.Batch
		hi := min(lo+r.opts.Batch, len(plan))
		for i := lo; i < hi; i++ {
			if !r.execOne(ctx, s, plan[i], epochStart+i, &r.digests[i]) {
				s.busy += time.Since(start)
				return
			}
			s.epochExecs++
		}
		s.busy += time.Since(start)
	}
}

// unclaimed counts batches still sitting in some deque.
func (r *runner) unclaimed() int {
	n := 0
	for _, s := range r.shards {
		n += s.deque.Len()
	}
	return n
}

// execOne runs one planned execution on shard s and records its digest.
// The RNG is reseeded from (campaign seed, global index), so mutation
// and execution seed are a pure function of the slot — not of the shard
// or of what the shard ran before. Returns false when the execution was
// abandoned to a cancelled ctx (the digest slot stays un-done).
func (r *runner) execOne(ctx context.Context, s *shardState, entry *core.Entry, gidx int, d *digest) bool {
	s.src.Seed(mixSeed(r.opts.Seed, gidx))
	mut := core.Mutate(entry.Schedule, r.pool, s.rng, r.opts.Mutator)
	seed := s.rng.Int63()
	if r.opts.DisableProactive {
		s.sched.SetSchedule(core.EmptySchedule())
	} else {
		s.sched.SetSchedule(mut)
	}
	res := exec.Run(r.name, r.prog, exec.Config{
		Scheduler: s.sched,
		Seed:      seed,
		Ctx:       ctx,
		MaxSteps:  r.opts.MaxSteps,
		Telemetry: r.tel,
		Intern:    s.intern,
		Recycle:   s.rec,
	})
	if res.Cancelled {
		s.rec.Reclaim(res.Trace)
		return false
	}
	sum := res.Trace.Summary()
	d.shard = s.id
	d.sig = sum.Sig
	d.pairIDs = append(d.pairIDs[:0], sum.PairIDs...)
	d.eventIDs = append(d.eventIDs[:0], sum.EventIDs...)
	d.mut = mut
	d.seed = seed
	d.failure = res.Failure
	d.decisions = nil
	if res.Failure != nil {
		d.decisions = res.Trace.ThreadOrder()
	}
	if !r.opts.DisableProactive {
		s.epochSatisfied += int64(s.sched.SatisfiedCount())
		s.epochRejected += int64(s.sched.RejectedCount())
	}
	s.rec.Reclaim(res.Trace)
	d.done = true
	return true
}

// failKey is the failure-signature dedup key of the merge barrier.
func failKey(f *exec.Failure) string {
	return f.Kind.String() + "|" + strconv.Itoa(int(f.Thread)) + "|" + f.Loc + "|" + f.Msg
}

// mergeEpoch is the barrier: fold the epoch's digests into global state
// in global execution order. Shard-local event and pair IDs remap into
// the campaign table, feedback and the event pool observe exactly what
// they would have seen sequentially, failure signatures deduplicate,
// and interesting mutants join the corpus — all on the coordinator, so
// the fold is single-threaded and its order is the plan order. Returns
// true when the epoch was interrupted (some digest never executed);
// everything before the gap is already merged.
func (r *runner) mergeEpoch(plan []*core.Entry, epoch int) (interrupted bool) {
	start := time.Now()
	rep := r.rep
	for i := range plan {
		d := &r.digests[i]
		if !d.done {
			interrupted = true
			break
		}
		rm := r.shards[d.shard].remap
		r.pairScratch = r.pairScratch[:0]
		for _, pid := range d.pairIDs {
			r.pairScratch = append(r.pairScratch, rm.RemapPair(pid))
		}
		obs := r.fb.ObserveIDs(r.pairScratch, d.sig)
		for _, id := range d.eventIDs {
			gid := rm.Remap(id)
			r.pool.AddEvent(gid, r.intern.Event(gid))
		}
		rep.Executions++
		if plan[i].Sig == 0 {
			// Seed entries bind to their first observed combination, as in
			// the sequential loop — just one barrier later.
			plan[i].Sig = obs.Sig
		}
		crashed := d.failure != nil
		if t := r.tel; t != nil {
			t.Add(telemetry.MSchedulesExecuted, 1, r.labels...)
			if obs.NewPairs > 0 {
				t.Add(telemetry.MRFPairsNew, int64(obs.NewPairs), r.labels...)
			}
			if obs.NewSig {
				t.Add(telemetry.MRFCombosNew, 1, r.labels...)
			}
			if crashed {
				t.Add(telemetry.MSchedulesCrashed, 1, r.labels...)
			}
		}
		if crashed {
			if k := failKey(d.failure); !r.failSeen[k] {
				r.failSeen[k] = true
				rep.Failures = append(rep.Failures, core.FailureRecord{
					Schedule:  d.mut,
					Seed:      d.seed,
					Execution: rep.Executions,
					Failure:   d.failure,
					Decisions: d.decisions,
				})
			}
			if r.opts.FailureObserver != nil {
				r.opts.FailureObserver(&exec.Result{
					Program: r.name,
					Seed:    d.seed,
					Trace:   &exec.Trace{Decisions: d.decisions},
					Failure: d.failure,
				})
			}
			if rep.FirstBug == 0 {
				rep.FirstBug = rep.Executions
				if t := r.tel; t != nil {
					t.Emit(telemetry.EvFirstBug, telemetry.Fields{
						"program":   r.name,
						"execution": rep.Executions,
						"kind":      d.failure.Kind.String(),
						"msg":       d.failure.Msg,
					})
				}
			}
			if r.opts.StopAtFirstBug {
				r.stopped = true
			}
		}
		if !r.opts.DisableFeedback && r.fb.Interesting(obs, crashed) {
			if _, added := r.corpus.Add(&core.Entry{Schedule: d.mut, Sig: obs.Sig, Perf: obs.NewPairs}); added {
				if t := r.tel; t != nil {
					t.Add(telemetry.MCorpusAdds, 1, r.labels...)
					t.Set(telemetry.MCorpusSize, int64(r.corpus.Len()), r.labels...)
					t.Emit(telemetry.EvInteresting, telemetry.Fields{
						"program":     r.name,
						"execution":   rep.Executions,
						"new_pairs":   obs.NewPairs,
						"new_combo":   obs.NewSig,
						"crashed":     crashed,
						"corpus_size": r.corpus.Len(),
					})
				}
			}
		}
		if r.stopped {
			// Deterministic truncation: executions planned after the first
			// bug are discarded un-merged, whichever shard ran them.
			break
		}
	}
	if t := r.tel; t != nil {
		for _, s := range r.shards {
			if s.epochExecs > 0 {
				t.Add(telemetry.MShardExecs, s.epochExecs, s.labels...)
			}
			if s.epochSteals > 0 {
				t.Add(telemetry.MShardSteals, s.epochSteals, s.labels...)
			}
			if s.epochSatisfied > 0 {
				t.Add(telemetry.MConstraintSatisfied, s.epochSatisfied, r.labels...)
			}
			if s.epochRejected > 0 {
				t.Add(telemetry.MConstraintRejected, s.epochRejected, r.labels...)
			}
			s.epochExecs, s.epochSteals, s.epochSatisfied, s.epochRejected = 0, 0, 0, 0
		}
		t.Observe(telemetry.MShardMergeNS, time.Since(start).Nanoseconds(), r.labels...)
		t.Emit(telemetry.EvEpochMerge, telemetry.Fields{
			"program":     r.name,
			"epoch":       epoch,
			"executions":  rep.Executions,
			"corpus_size": r.corpus.Len(),
		})
	}
	return interrupted
}

// finish copies final feedback statistics into the report and publishes
// the utilization gauge.
func (r *runner) finish() *core.Report {
	rep := r.rep
	rep.CorpusSize = r.corpus.Len()
	rep.UniquePairs = r.fb.UniquePairs()
	rep.UniqueSigs = r.fb.UniqueSigs()
	rep.SigFrequencies = r.fb.SigFrequencies()
	if t := r.tel; t != nil {
		t.Set(telemetry.MCorpusSize, int64(rep.CorpusSize), r.labels...)
		wall := time.Since(r.start)
		if wall > 0 {
			var busy time.Duration
			for _, s := range r.shards {
				busy += s.busy
			}
			pct := int64(busy * 100 / (wall * time.Duration(len(r.shards))))
			t.Set(telemetry.MShardUtilization, min(pct, 100), r.labels...)
		}
	}
	return rep
}
