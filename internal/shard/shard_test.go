package shard_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"rff/internal/core"
	"rff/internal/exec"
	"rff/internal/progen"
	"rff/internal/sched"
	"rff/internal/shard"
	"rff/internal/telemetry"
)

// reorder is the paper's Figure 1 program with n setter threads — buggy,
// with a bug hard enough that a small campaign exercises real corpus
// growth before finding it.
func reorder(n int) exec.Program {
	return func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		threads := make([]*exec.Thread, 0, n+1)
		for i := 0; i < n; i++ {
			threads = append(threads, t.Go("set", func(w *exec.Thread) {
				w.Write(a, 1)
				w.Write(b, -1)
			}))
		}
		threads = append(threads, t.Go("check", func(w *exec.Thread) {
			av := w.Read(a)
			bv := w.Read(b)
			w.Assert((av == 0 && bv == 0) || (av == 1 && bv == -1), "reorder")
		}))
		t.JoinAll(threads...)
	}
}

// bugFree is reorder without the failing assertion, so campaigns run
// their full budget.
func bugFree(n int) exec.Program {
	return func(t *exec.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		threads := make([]*exec.Thread, 0, n+1)
		for i := 0; i < n; i++ {
			threads = append(threads, t.Go("set", func(w *exec.Thread) {
				w.Write(a, 1)
				w.Write(b, -1)
			}))
		}
		threads = append(threads, t.Go("check", func(w *exec.Thread) {
			w.Read(a)
			w.Read(b)
		}))
		t.JoinAll(threads...)
	}
}

func run(t *testing.T, prog exec.Program, opts shard.Options) *core.Report {
	t.Helper()
	return shard.Fuzz("prog", prog, opts)
}

// TestDeterministicAcrossShardCounts is the contract of the epoch
// barrier: at a fixed (seed, budget, epoch), the merged report is
// bit-identical whatever the shard count or batch size — and across
// reruns.
func TestDeterministicAcrossShardCounts(t *testing.T) {
	base := shard.Options{Budget: 400, Seed: 42, Epoch: 64}
	want := run(t, bugFree(3), base)
	if want.Executions != 400 {
		t.Fatalf("baseline ran %d executions, want the full budget", want.Executions)
	}
	if want.CorpusSize < 2 || want.UniquePairs == 0 {
		t.Fatalf("baseline campaign learned nothing: %+v", want)
	}
	for _, w := range []int{1, 2, 4, 7} {
		for _, batch := range []int{1, 4, 16} {
			opts := base
			opts.Shards, opts.Batch = w, batch
			got := run(t, bugFree(3), opts)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d batch=%d: report diverged\n got: %+v\nwant: %+v", w, batch, got, want)
			}
		}
	}
}

// TestDeterministicWithBug checks the deterministic stop-at-first-bug
// truncation: the first-bug schedule count, the deduplicated failure
// list, and the post-bug cutoff are identical at every shard count.
func TestDeterministicWithBug(t *testing.T) {
	base := shard.Options{Budget: 2000, Seed: 7, Epoch: 64, StopAtFirstBug: true}
	want := run(t, reorder(4), base)
	if want.FirstBug == 0 {
		t.Fatalf("baseline did not find the reorder bug in %d executions", want.Executions)
	}
	if want.Executions != want.FirstBug {
		t.Fatalf("stop-at-first-bug must cut the count at the bug: executions=%d first=%d",
			want.Executions, want.FirstBug)
	}
	if len(want.Failures) != 1 {
		t.Fatalf("failure dedup should leave one record, got %d", len(want.Failures))
	}
	for _, w := range []int{2, 4} {
		opts := base
		opts.Shards = w
		got := run(t, reorder(4), opts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: bug report diverged\n got: %+v\nwant: %+v", w, got, want)
		}
	}
}

// TestFailureDedupWithoutStop lets the campaign keep running past
// failures: every failing execution still counts, but the Failures list
// holds one record per distinct failure signature.
func TestFailureDedupWithoutStop(t *testing.T) {
	rep := run(t, reorder(2), shard.Options{Budget: 300, Seed: 3, Epoch: 64, Shards: 2})
	if rep.FirstBug == 0 {
		t.Fatal("expected the reorder bug within 300 executions")
	}
	if rep.Executions != 300 {
		t.Fatalf("without StopAtFirstBug the campaign must run its budget, ran %d", rep.Executions)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("identical assertion failures must dedup to one record, got %d", len(rep.Failures))
	}
}

// TestFailureObserverDeterministic asserts that the merge barrier hands
// the observer the same failing executions, in the same order, at every
// shard count.
func TestFailureObserverDeterministic(t *testing.T) {
	type seen struct {
		Seed      int64
		Decisions []exec.ThreadID
		Msg       string
	}
	collect := func(w int) []seen {
		var out []seen
		opts := shard.Options{Budget: 300, Seed: 3, Epoch: 64, Shards: w}
		opts.FailureObserver = func(res *exec.Result) {
			if res.Program != "prog" || res.Failure == nil {
				t.Errorf("observer got malformed result: %+v", res)
			}
			out = append(out, seen{res.Seed, res.Trace.ThreadOrder(), res.Failure.Msg})
		}
		run(t, reorder(2), opts)
		return out
	}
	want := collect(1)
	if len(want) == 0 {
		t.Fatal("no failing executions observed")
	}
	for _, w := range []int{2, 4} {
		if got := collect(w); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: observer stream diverged (%d vs %d failures)", w, len(got), len(want))
		}
	}
}

// TestShardTelemetry checks the per-shard accounting: shard_execs sums
// to the counted executions, the merge histogram has one observation
// per epoch, and the aggregate campaign counters match the report.
func TestShardTelemetry(t *testing.T) {
	hub := telemetry.NewHub()
	opts := shard.Options{Budget: 256, Seed: 9, Epoch: 64, Shards: 3, Telemetry: hub}
	rep := run(t, bugFree(3), opts)
	snap := hub.Snapshot()
	prog := telemetry.L("program", "prog")

	var shardSum int64
	for _, sh := range []string{"0", "1", "2"} {
		shardSum += snap.Value(telemetry.MShardExecs, prog, telemetry.L("shard", sh))
	}
	if shardSum != int64(rep.Executions) {
		t.Fatalf("shard_execs sums to %d, want %d", shardSum, rep.Executions)
	}
	if got := snap.Value(telemetry.MSchedulesExecuted, prog); got != int64(rep.Executions) {
		t.Fatalf("schedules_executed = %d, want %d", got, rep.Executions)
	}
	// Budget 256 at K=64 with the geometric ramp (1,2,4,8,16,32,64,64,64,1)
	// merges ten times.
	hd := snap.Histogram(telemetry.MShardMergeNS, prog)
	if hd == nil || hd.Count != 10 {
		t.Fatalf("shard_merge_ns histogram = %+v, want 10 observations", hd)
	}
	if got := snap.Value(telemetry.MCorpusSize, prog); got != int64(rep.CorpusSize) {
		t.Fatalf("corpus_size gauge = %d, want %d", got, rep.CorpusSize)
	}
}

// TestFastModeSmoke: the -fast relaxation still spends the whole budget
// across its shards, merges shard feedback into coherent totals, and
// finds the easy bug when asked to stop.
func TestFastModeSmoke(t *testing.T) {
	rep := run(t, bugFree(3), shard.Options{Budget: 300, Seed: 5, Shards: 4, Fast: true})
	if rep.Executions != 300 {
		t.Fatalf("fast mode ran %d executions, want the full budget", rep.Executions)
	}
	if rep.UniquePairs == 0 || rep.CorpusSize < 2 {
		t.Fatalf("fast-mode merge lost feedback state: %+v", rep)
	}
	if len(rep.SigFrequencies) != rep.UniqueSigs {
		t.Fatalf("merged SigFrequencies has %d series for %d sigs", len(rep.SigFrequencies), rep.UniqueSigs)
	}

	buggy := run(t, reorder(2), shard.Options{Budget: 2000, Seed: 5, Shards: 4, Fast: true, StopAtFirstBug: true})
	if buggy.FirstBug == 0 {
		t.Fatal("fast mode missed the reorder bug")
	}
	if len(buggy.Failures) == 0 {
		t.Fatal("fast mode dropped the failure record")
	}
}

// TestContextCancelPrefix: cancelling mid-campaign yields a merged
// prefix — counted executions never exceed the merged epochs and the
// report stays internally consistent.
func TestContextCancelPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	opts := shard.Options{Budget: 100000, Seed: 1, Epoch: 64, Shards: 2}
	hub := telemetry.NewHub()
	opts.Telemetry = hub
	// Cancel from a telemetry hook after a few merges: EvEpochMerge is
	// emitted once per barrier on the coordinator.
	opts.FailureObserver = nil
	go func() {
		// No external hook into the loop; just cancel after a moment of
		// real work by polling the counter.
		for hub.Snapshot().Value(telemetry.MSchedulesExecuted, telemetry.L("program", "prog")) < 128 {
		}
		cancel()
	}()
	rep := shard.FuzzContext(ctx, "prog", bugFree(3), opts)
	n = rep.Executions
	if n == 0 || n >= 100000 {
		t.Fatalf("cancelled campaign counted %d executions", n)
	}
	if rep.CorpusSize == 0 || len(rep.SigFrequencies) != rep.UniqueSigs {
		t.Fatalf("cancelled report inconsistent: %+v", rep)
	}
}

// TestDeterministicWithChannelOps extends the shard-count contract to
// the channel vocabulary: a chan-grammar progen program (channels,
// selects, WaitGroup) merges to a bit-identical report at every shard
// count. Channel rendezvous matching and transfer-slot state must not
// leak any execution-order dependence into the epoch merge.
func TestDeterministicWithChannelOps(t *testing.T) {
	feats, err := progen.ParseGrammar("chan")
	if err != nil {
		t.Fatal(err)
	}
	// Scan the stream for a channel-heavy program that neither crashes
	// nor deadlocks on every schedule, so the campaign runs its budget.
	gen := progen.NewGenerator(11, progen.Options{Features: feats})
	var prog exec.Program
	var name string
	for i := 0; i < 40; i++ {
		p := gen.Next()
		chanOps := strings.Count(p.Source(), "ch0") + strings.Count(p.Source(), "ch1")
		if chanOps < 2 {
			continue
		}
		res := exec.Run(p.Name, p.Body(), exec.Config{Scheduler: sched.NewRandom(), Seed: 1})
		if res.Buggy() {
			continue
		}
		prog, name = p.Body(), p.Name
		break
	}
	if prog == nil {
		t.Fatal("no suitable channel-heavy program in the first 40 candidates")
	}
	base := shard.Options{Budget: 300, Seed: 42, Epoch: 32}
	want := shard.Fuzz(name, prog, base)
	if want.Executions == 0 {
		t.Fatal("baseline ran nothing")
	}
	for _, w := range []int{1, 2, 4} {
		opts := base
		opts.Shards = w
		got := shard.Fuzz(name, prog, opts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: channel-program report diverged\n got: %+v\nwant: %+v", w, got, want)
		}
	}
}
