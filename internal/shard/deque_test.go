package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	d := NewDeque(8)
	for i := 0; i < 4; i++ {
		d.Push(i)
	}
	if got := d.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if v := d.Steal(); v != 0 {
		t.Fatalf("first steal = %d, want oldest (0)", v)
	}
	if v := d.Pop(); v != 3 {
		t.Fatalf("first pop = %d, want newest (3)", v)
	}
	if v := d.Steal(); v != 1 {
		t.Fatalf("second steal = %d, want 1", v)
	}
	if v := d.Pop(); v != 2 {
		t.Fatalf("second pop = %d, want 2", v)
	}
	if v := d.Pop(); v != -1 {
		t.Fatalf("pop on empty = %d, want -1", v)
	}
	if v := d.Steal(); v != -1 {
		t.Fatalf("steal on empty = %d, want -1", v)
	}
}

func TestDequeReuseAfterReset(t *testing.T) {
	d := NewDeque(4)
	for i := 0; i < 4; i++ {
		d.Push(i)
	}
	for d.Pop() >= 0 {
	}
	d.reset()
	d.Push(7)
	if v := d.Steal(); v != 7 {
		t.Fatalf("steal after reset = %d, want 7", v)
	}
}

// TestDequeConcurrentClaims hammers one owner popping against several
// thieves stealing: every pushed value must be claimed exactly once.
// Run under -race this doubles as the memory-model check.
func TestDequeConcurrentClaims(t *testing.T) {
	const n = 4096
	const thieves = 4
	d := NewDeque(n)
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	claimed := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() { // owner
		defer wg.Done()
		for {
			v := d.Pop()
			if v < 0 {
				if d.Len() == 0 {
					return
				}
				runtime.Gosched()
				continue
			}
			claimed[v].Add(1)
		}
	}()
	for i := 0; i < thieves; i++ {
		go func() {
			defer wg.Done()
			for {
				v := d.Steal()
				if v < 0 {
					if d.Len() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				claimed[v].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range claimed {
		if c := claimed[i].Load(); c != 1 {
			t.Fatalf("value %d claimed %d times, want exactly once", i, c)
		}
	}
}
