// Package shard executes one fuzzing campaign across W worker shards:
// work-stealing batch execution on the hot path, with zero cross-shard
// locking, punctuated by deterministic epoch merge barriers that fold
// shard-local observations back into campaign-global state. See
// DESIGN.md §13 for the full architecture and determinism contract.
package shard

import "sync/atomic"

// Deque is a Chase-Lev work-stealing deque of batch indices. The owner
// shard pushes and pops at the bottom; idle shards steal from the top
// with a CAS. The implementation follows Chase & Lev, "Dynamic Circular
// Work-Stealing Deque" (SPAA '05), with the simplification that all
// pushes happen before the epoch's workers start (the coordinator plans
// every batch up front), so Push never races with Steal and the buffer
// never needs to grow concurrently.
//
// Values are non-negative batch indices; Pop and Steal return -1 when
// the deque is empty (or the race for the last element was lost).
type Deque struct {
	top    atomic.Int64 // next index thieves steal from
	bottom atomic.Int64 // next index the owner pushes to
	buf    []atomic.Int64
}

// NewDeque returns a deque with capacity for n values.
func NewDeque(n int) *Deque {
	if n < 1 {
		n = 1
	}
	return &Deque{buf: make([]atomic.Int64, n)}
}

// reset empties the deque for reuse, keeping its buffer. Must not be
// called while workers run.
func (d *Deque) reset() {
	d.top.Store(0)
	d.bottom.Store(0)
}

// Push appends v at the bottom. Owner-only; in the epoch protocol all
// pushes happen on the coordinator before workers spawn, so Push never
// runs concurrently with Pop or Steal and must not be called once they
// do.
func (d *Deque) Push(v int) {
	b := d.bottom.Load()
	if int(b-d.top.Load()) >= len(d.buf) {
		panic("shard.Deque: push past capacity")
	}
	d.buf[int(b)%len(d.buf)].Store(int64(v))
	d.bottom.Store(b + 1)
}

// Pop removes and returns the most recently pushed value, or -1 when
// the deque is empty. Owner-only: at most one goroutine may Pop, but
// Pop runs concurrently with any number of Steals.
func (d *Deque) Pop() int {
	b := d.bottom.Load() - 1
	d.bottom.Store(b) // claim the bottom slot before reading top
	t := d.top.Load()
	if b < t {
		// Empty: undo the claim.
		d.bottom.Store(t)
		return -1
	}
	v := d.buf[int(b)%len(d.buf)].Load()
	if b > t {
		return int(v) // more than one element: no race possible
	}
	// Last element: race thieves for it via top.
	if !d.top.CompareAndSwap(t, t+1) {
		v = -1 // a thief won
	}
	d.bottom.Store(t + 1)
	return int(v)
}

// Steal removes and returns the oldest value, or -1 when the deque is
// empty or the CAS race was lost (callers should try another victim).
// Safe for any number of concurrent thieves alongside the owner's Pop.
func (d *Deque) Steal() int {
	t := d.top.Load()
	if d.bottom.Load() <= t {
		return -1
	}
	v := d.buf[int(t)%len(d.buf)].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return -1
	}
	return int(v)
}

// Len returns a point-in-time element count (diagnostics only).
func (d *Deque) Len() int {
	n := int(d.bottom.Load() - d.top.Load())
	if n < 0 {
		return 0
	}
	return n
}
