package budget

import (
	"reflect"
	"testing"
)

// FuzzBudgetPolicy drives every policy with an arbitrary reward stream
// decoded from the fuzz input and checks the allocator's safety
// invariants: no panic, no negative share, every epoch conserves the
// pool across live cells, done cells stay unfunded, and replaying the
// identical stream reproduces the identical trace.
func FuzzBudgetPolicy(f *testing.F) {
	f.Add(int64(1), uint8(0), []byte{})
	f.Add(int64(2), uint8(1), []byte{0x10, 0x03, 0xff, 0x00, 0x7f})
	f.Add(int64(3), uint8(2), []byte{0x01, 0x01, 0x01, 0x80, 0x80, 0x80})
	f.Add(int64(-9), uint8(3), []byte{0xde, 0xad, 0xbe, 0xef, 0x42, 0x42, 0x42, 0x42})
	f.Add(int64(1<<40), uint8(7), []byte{0x00, 0xff, 0x00, 0xff, 0x13, 0x37})

	names := Policies()
	f.Fuzz(func(t *testing.T, seed int64, policyByte uint8, stream []byte) {
		policy := names[int(policyByte)%len(names)]
		run := func() *Allocator {
			cells := 1
			if len(stream) > 0 {
				cells = 1 + int(stream[0])%9
			}
			a, err := New(cells, seed, Config{Policy: policy, MinShare: int(policyByte) % 4})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			pos := 1
			next := func() int {
				if pos >= len(stream) {
					return 0
				}
				v := int(stream[pos])
				pos++
				return v
			}
			for e := 0; e < 12; e++ {
				pool := next() * 4
				shares := a.Allocate(pool)
				sum, live := 0, 0
				for i, s := range shares {
					if s < 0 {
						t.Fatalf("policy %s epoch %d: negative share %d", policy, e, s)
					}
					if a.Done(i) {
						if s != 0 {
							t.Fatalf("policy %s epoch %d: done cell %d funded %d", policy, e, i, s)
						}
						continue
					}
					live++
					sum += s
				}
				if live > 0 && sum != pool && pool >= 0 {
					// With live cells the pool must be spent exactly —
					// never over-allocated, never leaked.
					t.Fatalf("policy %s epoch %d: allocated %d of pool %d across %d live cells",
						policy, e, sum, pool, live)
				}
				for i, s := range shares {
					if a.Done(i) {
						continue
					}
					b := next()
					exec := s
					if b%3 == 0 && exec > 0 {
						exec-- // cell stopped one short (bug/error)
					}
					np := 0
					if exec > 0 {
						np = b % (exec + 1)
					}
					a.Observe(i, Reward{Executions: exec, NewPairs: np, FirstBug: b&0x40 != 0})
					if b&0x80 != 0 {
						a.MarkDone(i)
					}
				}
			}
			return a
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Trace(), b.Trace()) {
			t.Fatalf("policy %s: replaying the same stream produced a different trace", policy)
		}
		if !reflect.DeepEqual(a.Cells(), b.Cells()) {
			t.Fatalf("policy %s: replaying the same stream produced different cell state", policy)
		}
	})
}
