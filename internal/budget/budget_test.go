package budget

import (
	"reflect"
	"testing"
)

// syntheticReward is a deterministic reward stream: cell i's yield in
// epoch e depends only on (seed, i, e), so two allocators fed the same
// stream must produce identical traces.
func syntheticReward(seed int64, cell, epoch, share int) Reward {
	r := NewRand(seed + int64(cell)*1000 + int64(epoch))
	if share == 0 {
		return Reward{}
	}
	return Reward{
		Executions: share,
		NewPairs:   r.Intn(share + 1),
		FirstBug:   r.Float64() < 0.02,
	}
}

// runStream drives an allocator through epochs of a synthetic stream
// and returns its trace.
func runStream(t *testing.T, policy string, seed int64, cells, epochs, pool int) *Allocator {
	t.Helper()
	a, err := New(cells, seed, Config{Policy: policy, Epochs: epochs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for e := 0; e < epochs; e++ {
		shares := a.Allocate(pool)
		for i, s := range shares {
			if a.Done(i) {
				continue
			}
			rw := syntheticReward(seed, i, e, s)
			a.Observe(i, rw)
			if rw.FirstBug {
				a.MarkDone(i)
			}
		}
	}
	return a
}

// TestConservation: every epoch's shares are non-negative, sum to the
// pool (while any cell is live), respect the floor, and never fund a
// done cell.
func TestConservation(t *testing.T) {
	for _, policy := range Policies() {
		t.Run(policy, func(t *testing.T) {
			const cells, epochs, pool = 6, 12, 100
			a, err := New(cells, 42, Config{Policy: policy, MinShare: 3})
			if err != nil {
				t.Fatal(err)
			}
			done := make(map[int]bool)
			for e := 0; e < epochs; e++ {
				shares := a.Allocate(pool)
				if len(shares) != cells {
					t.Fatalf("epoch %d: %d shares, want %d", e, len(shares), cells)
				}
				sum, live := 0, cells-len(done)
				for i, s := range shares {
					if s < 0 {
						t.Fatalf("epoch %d cell %d: negative share %d", e, i, s)
					}
					if done[i] && s != 0 {
						t.Fatalf("epoch %d: done cell %d funded %d", e, i, s)
					}
					if !done[i] && live > 0 && s < 3 && pool >= 3*live {
						t.Fatalf("epoch %d: cell %d starved below floor: %d", e, i, s)
					}
					sum += s
				}
				if live > 0 && sum != pool {
					t.Fatalf("epoch %d: shares sum to %d, want pool %d", e, sum, pool)
				}
				if live == 0 && sum != 0 {
					t.Fatalf("epoch %d: all done but allocated %d", e, sum)
				}
				for i, s := range shares {
					if done[i] {
						continue
					}
					a.Observe(i, syntheticReward(42, i, e, s))
					if e == i { // retire one cell per epoch
						a.MarkDone(i)
						done[i] = true
					}
				}
			}
			if got := a.Trace(); len(got) != epochs {
				t.Fatalf("trace has %d entries, want %d", len(got), epochs)
			}
		})
	}
}

// TestPoolSmallerThanCells: with fewer executions than live cells the
// floor degrades to one-each in cell order and nothing goes negative.
func TestPoolSmallerThanCells(t *testing.T) {
	a, err := New(8, 1, Config{Policy: "ucb"})
	if err != nil {
		t.Fatal(err)
	}
	shares := a.Allocate(3)
	want := []int{1, 1, 1, 0, 0, 0, 0, 0}
	if !reflect.DeepEqual(shares, want) {
		t.Fatalf("shares = %v, want %v", shares, want)
	}
}

// TestZeroPool allocates nothing but still records a trace entry.
func TestZeroPool(t *testing.T) {
	a, err := New(3, 1, Config{Policy: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Allocate(0) {
		if s != 0 {
			t.Fatalf("zero pool allocated %d", s)
		}
	}
	if a.Epoch() != 1 || len(a.Trace()) != 1 {
		t.Fatalf("epoch %d, trace %d; want 1, 1", a.Epoch(), len(a.Trace()))
	}
}

// TestAllDone: once every cell is marked done, allocation is all
// zeros regardless of pool.
func TestAllDone(t *testing.T) {
	a, err := New(4, 9, Config{Policy: "fox"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a.MarkDone(i)
	}
	for _, s := range a.Allocate(1000) {
		if s != 0 {
			t.Fatalf("done cell funded %d", s)
		}
	}
	if a.Active() != 0 {
		t.Fatalf("Active() = %d, want 0", a.Active())
	}
}

// TestDeterminism: the same (policy, seed, reward stream) yields a
// bit-identical trace and cell state on rerun.
func TestDeterminism(t *testing.T) {
	for _, policy := range Policies() {
		t.Run(policy, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				a := runStream(t, policy, seed, 5, 10, 90)
				b := runStream(t, policy, seed, 5, 10, 90)
				if !reflect.DeepEqual(a.Trace(), b.Trace()) {
					t.Fatalf("seed %d: traces differ:\n%v\n%v", seed, a.Trace(), b.Trace())
				}
				if !reflect.DeepEqual(a.Cells(), b.Cells()) {
					t.Fatalf("seed %d: cell state differs", seed)
				}
				if a.Reallocations() != b.Reallocations() {
					t.Fatalf("seed %d: reallocations differ: %d vs %d",
						seed, a.Reallocations(), b.Reallocations())
				}
			}
		})
	}
}

// TestAdaptiveShiftsBudget: under a stream where cell 0 yields pairs
// and the rest never do, every adaptive policy ends up granting cell 0
// strictly more than a uniform split would.
func TestAdaptiveShiftsBudget(t *testing.T) {
	for _, policy := range AdaptivePolicies() {
		t.Run(policy, func(t *testing.T) {
			const cells, epochs, pool = 4, 10, 100
			a, err := New(cells, 7, Config{Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < epochs; e++ {
				shares := a.Allocate(pool)
				for i, s := range shares {
					rw := Reward{Executions: s}
					if i == 0 {
						rw.NewPairs = s / 2
					}
					a.Observe(i, rw)
				}
			}
			cs := a.Cells()
			uniform := int64(epochs * pool / cells)
			if cs[0].Allocated <= uniform {
				t.Fatalf("cell 0 got %d executions, uniform split is %d — no adaptation",
					cs[0].Allocated, uniform)
			}
		})
	}
}

// TestValidate covers the config error paths every entry point relies
// on for early rejection.
func TestValidate(t *testing.T) {
	if err := (Config{Policy: "nope"}).Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := (Config{Policy: "ucb", MinShare: -1}).Validate(); err == nil {
		t.Fatal("negative min-share accepted")
	}
	if err := (Config{Policy: "ucb"}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(0, 1, Config{Policy: "ucb"}); err == nil {
		t.Fatal("zero cells accepted")
	}
	if _, err := New(2, 1, Config{Policy: "ucb", Epochs: -2}); err == nil {
		t.Fatal("negative epochs accepted")
	}
}

// TestPolicyList pins the catalog: the uniform baseline plus three
// adaptive policies, and AdaptivePolicies excludes the baseline.
func TestPolicyList(t *testing.T) {
	want := []string{"eps-greedy", "fox", "ucb", "uniform"}
	if got := Policies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Policies() = %v, want %v", got, want)
	}
	wantA := []string{"eps-greedy", "fox", "ucb"}
	if got := AdaptivePolicies(); !reflect.DeepEqual(got, wantA) {
		t.Fatalf("AdaptivePolicies() = %v, want %v", got, wantA)
	}
	for _, name := range Policies() {
		if !ValidPolicy(name) {
			t.Fatalf("ValidPolicy(%q) = false", name)
		}
	}
	if ValidPolicy("UNIFORM") || ValidPolicy("") {
		t.Fatal("invalid names accepted")
	}
}

// TestEpochSeed: epoch 0 is the identity (a one-epoch uniform campaign
// must reproduce the classic matrix), later epochs diverge.
func TestEpochSeed(t *testing.T) {
	if got := EpochSeed(12345, 0); got != 12345 {
		t.Fatalf("EpochSeed(s, 0) = %d, want identity", got)
	}
	seen := map[int64]bool{12345: true}
	for e := 1; e < 50; e++ {
		s := EpochSeed(12345, e)
		if seen[s] {
			t.Fatalf("epoch %d: seed collision %d", e, s)
		}
		seen[s] = true
	}
}

// TestDefaults: zero-valued config fields pick up package defaults.
func TestDefaults(t *testing.T) {
	a, err := New(2, 1, Config{Policy: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg := a.Config(); cfg.Epochs != DefaultEpochs || cfg.MinShare != DefaultMinShare {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
