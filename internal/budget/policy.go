package budget

import (
	"math"
	"sort"
)

// policy turns the allocator's cumulative cell view into relative
// allocation weights for the next epoch. Implementations may keep
// per-allocator state (fox does), but all randomness must come from
// the provided stream and every computation must be a pure function of
// (cells, epoch, stream position) so traces replay bit-identically.
type policy interface {
	name() string
	// weights fills w with a non-negative weight per cell; the
	// allocator ignores entries for done cells and falls back to
	// uniform when every weight is zero or non-finite.
	weights(cells []CellState, epoch int, rng *Rand, w []float64)
}

// policies maps a name to a fresh policy instance; each Allocator gets
// its own so stateful policies never share across campaigns.
var policies = map[string]func() policy{
	"uniform":    func() policy { return uniformPolicy{} },
	"ucb":        func() policy { return ucbPolicy{c: 1.0} },
	"eps-greedy": func() policy { return epsGreedyPolicy{eps: 0.1} },
	"fox":        func() policy { return &foxPolicy{alpha: 0.4} },
}

// Policies returns every registered policy name, sorted.
func Policies() []string {
	out := make([]string, 0, len(policies))
	for name := range policies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AdaptivePolicies returns every policy except the uniform baseline.
func AdaptivePolicies() []string {
	var out []string
	for _, name := range Policies() {
		if name != "uniform" {
			out = append(out, name)
		}
	}
	return out
}

// ValidPolicy reports whether name is registered.
func ValidPolicy(name string) bool {
	_, ok := policies[name]
	return ok
}

func newPolicy(name string) policy { return policies[name]() }

// uniformPolicy is the fixed-budget baseline: every live cell weighs
// the same, so the only adaptivity is the redistribution of done
// cells' shares.
type uniformPolicy struct{}

func (uniformPolicy) name() string { return "uniform" }

func (uniformPolicy) weights(cells []CellState, _ int, _ *Rand, w []float64) {
	for i := range cells {
		w[i] = 1
	}
}

// ucbPolicy allocates proportionally to an upper confidence bound on
// each cell's coverage yield: the lifetime pair rate (normalized to
// the best cell) plus an exploration bonus that shrinks as a cell
// accumulates funded epochs. Unfunded cells get the largest bonus, so
// nothing is written off before it has been tried.
type ucbPolicy struct{ c float64 }

func (ucbPolicy) name() string { return "ucb" }

func (p ucbPolicy) weights(cells []CellState, _ int, _ *Rand, w []float64) {
	maxRate := 0.0
	total := 1
	for i := range cells {
		total += cells[i].Funded
		if !cells[i].Done && cells[i].Rate > maxRate {
			maxRate = cells[i].Rate
		}
	}
	for i := range cells {
		norm := 0.0
		if maxRate > 0 {
			norm = cells[i].Rate / maxRate
		}
		bonus := p.c * math.Sqrt(2*math.Log(float64(total))/float64(cells[i].Funded+1))
		w[i] = norm + bonus
	}
}

// epsGreedyPolicy pours 1-eps of the pool onto the best-yielding cell
// (ties broken by one deterministic draw from the stream) and spreads
// eps uniformly. Before any reward arrives it stays uniform.
type epsGreedyPolicy struct{ eps float64 }

func (epsGreedyPolicy) name() string { return "eps-greedy" }

func (p epsGreedyPolicy) weights(cells []CellState, _ int, rng *Rand, w []float64) {
	best := -1.0
	for i := range cells {
		if !cells[i].Done && cells[i].Rate > best {
			best = cells[i].Rate
		}
	}
	active := 0
	var ties []int
	for i := range cells {
		if cells[i].Done {
			continue
		}
		active++
		if cells[i].Rate == best {
			ties = append(ties, i)
		}
	}
	if active == 0 {
		return
	}
	for i := range cells {
		if !cells[i].Done {
			w[i] = p.eps / float64(active)
		}
	}
	if best <= 0 {
		// No signal yet: stay uniform rather than crowning an
		// arbitrary cell.
		for i := range cells {
			if !cells[i].Done {
				w[i] = 1
			}
		}
		return
	}
	w[ties[rng.Intn(len(ties))]] += 1 - p.eps
}

// foxPolicy is a gradient bandit in the spirit of FOX's online
// stochastic control: per-cell preferences move by the advantage of
// the cell's latest epoch rate over the mean of its funded peers, and
// shares follow the softmax of the preferences. Advantages are
// normalized to the largest magnitude in the epoch so the step size is
// scale-free in the (tiny) pairs-per-execution rates.
type foxPolicy struct {
	alpha float64
	pref  []float64
}

func (*foxPolicy) name() string { return "fox" }

func (p *foxPolicy) weights(cells []CellState, epoch int, _ *Rand, w []float64) {
	if p.pref == nil {
		p.pref = make([]float64, len(cells))
	}
	var funded []int
	for i := range cells {
		if cells[i].LastFunded == epoch-1 {
			funded = append(funded, i)
		}
	}
	if len(funded) > 0 {
		mean := 0.0
		for _, i := range funded {
			mean += cells[i].LastRate
		}
		mean /= float64(len(funded))
		maxAbs := 0.0
		for _, i := range funded {
			if d := math.Abs(cells[i].LastRate - mean); d > maxAbs {
				maxAbs = d
			}
		}
		if maxAbs > 0 {
			for _, i := range funded {
				p.pref[i] += p.alpha * (cells[i].LastRate - mean) / maxAbs
				if p.pref[i] > 10 {
					p.pref[i] = 10
				}
				if p.pref[i] < -10 {
					p.pref[i] = -10
				}
			}
		}
	}
	maxPref := math.Inf(-1)
	for i := range cells {
		if !cells[i].Done && p.pref[i] > maxPref {
			maxPref = p.pref[i]
		}
	}
	if math.IsInf(maxPref, -1) {
		return
	}
	for i := range cells {
		if !cells[i].Done {
			w[i] = math.Exp(p.pref[i] - maxPref)
		}
	}
}
